// Speculative-precompute suite: the slider Predictor, the widget's
// speculate/adopt cycle (promote-on-match — a hit must be byte-identical
// to the non-speculating path, a miss must change nothing), and the
// serving layer's background speculation lifecycle: the accounting
// invariant speculated == spec_hit + spec_miss + spec_cancelled, SLO
// invisibility (zero interactive counters/histogram samples from spec
// work), and the cancellation races scripts/verify.sh --speculate runs
// under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/serve/load_generator.hpp"
#include "src/serve/metrics.hpp"
#include "src/serve/session_service.hpp"
#include "src/viz/predictor.hpp"
#include "src/viz/widget.hpp"

namespace {

using namespace rinkit;
using serve::RequestOutcome;
using serve::RequestStatus;
using serve::SessionService;
using serve::SliderEvent;
using viz::Prediction;
using viz::Predictor;
using viz::RinWidget;

md::Trajectory smallTrajectory(count frames = 6) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = frames;
    return md::TrajectoryGenerator(params).generate(md::chignolin());
}

const std::function<bool()> kNeverCancel = [] { return false; };

// Lets the service go fully idle: drain() first so every worker tail has
// run (speculation is enqueued *after* a request's future resolves), then
// wait out whatever speculation that scheduled.
void settle(SessionService& service) {
    service.drain();
    service.waitSpeculationIdle();
}

// Every enqueued speculation must end in exactly one judgement bucket.
// Holds once no speculation is queued or awaiting judgement — the tests
// close their sessions (resolving any pending one as cancelled) before
// checking.
void expectSpecInvariant(const serve::MetricsSnapshot& snap) {
    EXPECT_EQ(snap.counter("speculated"),
              snap.counter("spec_hit") + snap.counter("spec_miss") +
                  snap.counter("spec_cancelled"));
}

// ------------------------------------------------------------- Predictor

TEST(Predictor, NoPredictionWithoutHistory) {
    Predictor p;
    EXPECT_EQ(p.predict().kind, Prediction::Kind::None);
    p.observeCutoff(5.0); // one observation: a position, not a direction
    EXPECT_EQ(p.predict().kind, Prediction::Kind::None);
}

TEST(Predictor, MonotoneCutoffContinuation) {
    Predictor p;
    p.observeCutoff(5.0);
    p.observeCutoff(5.1);
    const auto pred = p.predict();
    ASSERT_EQ(pred.kind, Prediction::Kind::Cutoff);
    EXPECT_NEAR(pred.cutoff, 5.2, 1e-9);
}

TEST(Predictor, MonotoneFrameContinuationAndReversal) {
    Predictor::Options o;
    o.frameCount = 100;
    Predictor p(o);
    p.observeFrame(3);
    p.observeFrame(4);
    ASSERT_EQ(p.predict().kind, Prediction::Kind::Frame);
    EXPECT_EQ(p.predict().frame, 5);
    // The user reverses: the model adapts to the new direction.
    p.observeFrame(3);
    ASSERT_EQ(p.predict().kind, Prediction::Kind::Frame);
    EXPECT_EQ(p.predict().frame, 2);
}

TEST(Predictor, LastMovedSliderWins) {
    Predictor::Options o;
    o.frameCount = 100;
    Predictor p(o);
    p.observeFrame(1);
    p.observeFrame(2);
    p.observeCutoff(5.0);
    p.observeCutoff(5.5);
    ASSERT_EQ(p.predict().kind, Prediction::Kind::Cutoff);
    p.observeFrame(3);
    // Frame moved last but its step is stale history — continuation uses
    // the freshest delta on that slider.
    ASSERT_EQ(p.predict().kind, Prediction::Kind::Frame);
    EXPECT_EQ(p.predict().frame, 4);
}

TEST(Predictor, BoundaryPredictsNothing) {
    Predictor::Options o;
    o.frameCount = 4;
    o.minCutoff = 4.0;
    o.maxCutoff = 6.0;
    Predictor p(o);
    p.observeFrame(2);
    p.observeFrame(3); // next would be 4 == frameCount: off the slider
    EXPECT_EQ(p.predict().kind, Prediction::Kind::None);
    p.observeCutoff(5.9);
    p.observeCutoff(6.0); // next would exceed maxCutoff
    EXPECT_EQ(p.predict().kind, Prediction::Kind::None);
}

TEST(Predictor, ResetForgetsHistory) {
    Predictor p;
    p.observeCutoff(5.0);
    p.observeCutoff(5.2);
    ASSERT_NE(p.predict().kind, Prediction::Kind::None);
    p.reset();
    EXPECT_EQ(p.predict().kind, Prediction::Kind::None);
}

// ----------------------------------------------- widget speculate/adopt

// Drives a speculating widget and a plain twin through the same event
// sequence, speculating before each event on the speculating one. After
// every event both widgets must agree exactly: promote-on-match adoption
// is only legal because the speculated artifacts are the ones the real
// path would have produced.
void expectTwinsAgree(const RinWidget& spec, const RinWidget& plain) {
    EXPECT_EQ(spec.graph().numberOfEdges(), plain.graph().numberOfEdges());
    EXPECT_EQ(spec.scores(), plain.scores());
    ASSERT_EQ(spec.maxentLayout().size(), plain.maxentLayout().size());
    for (count i = 0; i < spec.maxentLayout().size(); ++i) {
        EXPECT_EQ(spec.maxentLayout()[i].x, plain.maxentLayout()[i].x) << i;
        EXPECT_EQ(spec.maxentLayout()[i].y, plain.maxentLayout()[i].y) << i;
        EXPECT_EQ(spec.maxentLayout()[i].z, plain.maxentLayout()[i].z) << i;
    }
    // The shipped figure must be byte-identical too — this is what proves
    // the pre-serialized edge traces a hit installs are the exact strings
    // the plain render path would have rebuilt.
    EXPECT_EQ(spec.figureJson(), plain.figureJson());
}

TEST(WidgetSpeculation, MonotoneCutoffSweepHitsAndMatchesPlainPath) {
    const auto traj = smallTrajectory();
    RinWidget::Options o;
    o.speculate = true;
    RinWidget spec(traj, o);
    RinWidget plain(traj, o); // same options; plain just never speculates

    double cutoff = 4.5;
    count hits = 0;
    for (int i = 0; i < 6; ++i) {
        if (spec.predictNext().valid() && spec.speculate(kNeverCancel)) {
            EXPECT_TRUE(spec.speculationPending());
        }
        cutoff += 0.1;
        const auto t = spec.setCutoff(cutoff);
        plain.setCutoff(cutoff);
        if (t.specHit) ++hits;
        expectTwinsAgree(spec, plain);
    }
    // The first tick has no direction to extrapolate; every later tick of
    // a monotone drag is predictable.
    EXPECT_GE(hits, 4u);
}

TEST(WidgetSpeculation, MonotoneFrameSweepHitsAndMatchesPlainPath) {
    const auto traj = smallTrajectory(6);
    RinWidget::Options o;
    o.speculate = true;
    RinWidget spec(traj, o);
    RinWidget plain(traj, o);

    count hits = 0;
    for (rinkit::index f = 1; f < 6; ++f) {
        if (spec.predictNext().valid() && spec.speculate(kNeverCancel)) {
            EXPECT_TRUE(spec.speculationPending());
        }
        const auto t = spec.setFrame(f);
        plain.setFrame(f);
        if (t.specHit) ++hits;
        expectTwinsAgree(spec, plain);
    }
    EXPECT_GE(hits, 3u);
}

TEST(WidgetSpeculation, HitServesMeasureFromCacheWithoutRecompute) {
    const auto traj = smallTrajectory();
    RinWidget::Options o;
    o.speculate = true;
    RinWidget w(traj, o);
    w.setCutoff(5.0);
    w.setCutoff(5.1);
    ASSERT_TRUE(w.speculate(kNeverCancel));
    const auto t = w.setCutoff(5.2);
    ASSERT_TRUE(t.specJudged);
    ASSERT_TRUE(t.specHit);
    // The adopted scores were stored into the exact result cache under the
    // new graph version — the measure phase is a cache hit, not a second
    // insert/recompute.
    EXPECT_TRUE(t.measureCacheHit);
    EXPECT_EQ(t.measureTier, viz::ResolutionTier::Exact);
}

TEST(WidgetSpeculation, WrongPredictionIsAMissAndChangesNothing) {
    const auto traj = smallTrajectory();
    RinWidget::Options o;
    o.speculate = true;
    RinWidget spec(traj, o);
    RinWidget plain(traj, o);

    // Build an upward drag, speculate +0.1, then reverse.
    spec.setCutoff(5.0);
    plain.setCutoff(5.0);
    spec.setCutoff(5.1);
    plain.setCutoff(5.1);
    ASSERT_TRUE(spec.speculate(kNeverCancel));
    const auto t = spec.setCutoff(4.9); // reversal: speculation was for 5.2
    plain.setCutoff(4.9);
    EXPECT_TRUE(t.specJudged);
    EXPECT_FALSE(t.specHit);
    EXPECT_FALSE(spec.speculationPending());
    expectTwinsAgree(spec, plain);
}

TEST(WidgetSpeculation, RefreshJudgesPendingSpeculationAMiss) {
    const auto traj = smallTrajectory();
    RinWidget::Options o;
    o.speculate = true;
    RinWidget w(traj, o);
    w.setCutoff(5.0);
    w.setCutoff(5.1);
    ASSERT_TRUE(w.speculate(kNeverCancel));
    ASSERT_TRUE(w.speculationPending());
    const auto t = w.refresh();
    EXPECT_TRUE(t.specJudged);
    EXPECT_FALSE(t.specHit);
    EXPECT_FALSE(w.speculationPending());
    // Refresh also resets the predictor: no stale direction survives.
    EXPECT_EQ(w.predictNext().kind, Prediction::Kind::None);
}

TEST(WidgetSpeculation, CancelledSpeculationLeavesNoPendingState) {
    const auto traj = smallTrajectory();
    RinWidget::Options o;
    o.speculate = true;
    RinWidget w(traj, o);
    w.setCutoff(5.0);
    w.setCutoff(5.1);
    EXPECT_FALSE(w.speculate([] { return true; })); // cancelled immediately
    EXPECT_FALSE(w.speculationPending());
    const auto t = w.setCutoff(5.2); // runs the ordinary path
    EXPECT_FALSE(t.specHit);
}

TEST(WidgetSpeculation, MeasureSwitchAfterSpeculationStillAdoptsGraphAndLayout) {
    const auto traj = smallTrajectory();
    RinWidget::Options o;
    o.speculate = true;
    RinWidget spec(traj, o);
    RinWidget plain(traj, o);
    spec.setCutoff(5.0);
    plain.setCutoff(5.0);
    spec.setCutoff(5.1);
    plain.setCutoff(5.1);
    ASSERT_TRUE(spec.speculate(kNeverCancel));
    // The user flips the measure before the predicted tick: a measure
    // event does not move the graph, so the speculation stays pending;
    // only its measure slot is stale.
    spec.setMeasure(viz::Measure::Betweenness);
    plain.setMeasure(viz::Measure::Betweenness);
    EXPECT_TRUE(spec.speculationPending());
    const auto t = spec.setCutoff(5.2);
    plain.setCutoff(5.2);
    EXPECT_TRUE(t.specJudged);
    EXPECT_TRUE(t.specHit);
    // The speculated Closeness scores must NOT have been promoted into
    // the Betweenness results: both widgets agree on the recomputed ones.
    expectTwinsAgree(spec, plain);
}

// ----------------------------------------------- service spec lifecycle

TEST(ServiceSpeculation, PacedMonotoneDragHitsAndKeepsInvariant) {
    const auto traj = smallTrajectory();
    SessionService service;
    RinWidget::Options wo;
    wo.speculate = true;
    const auto id = service.openSession(traj, wo);

    double cutoff = 4.5;
    for (int i = 0; i < 8; ++i) {
        cutoff += 0.1;
        const auto outcome = service.submit(id, SliderEvent::setCutoff(cutoff)).get();
        EXPECT_EQ(outcome.status, RequestStatus::Ok);
        // Paced client: the service goes idle between ticks, so every
        // speculation it schedules runs to completion before the next
        // submit judges it.
        settle(service);
    }

    service.closeSession(id); // resolves the final unjudged speculation
    const auto snap = service.metrics();
    EXPECT_GE(snap.counter("speculated"), 5u);
    EXPECT_GE(snap.counter("spec_hit"), 5u);
    expectSpecInvariant(snap);
    // Interactive accounting is untouched by speculation.
    EXPECT_EQ(snap.counter("submitted"), 8u);
    EXPECT_EQ(snap.counter("completed"), 8u);
}

TEST(ServiceSpeculation, SpeculationInvisibleToInteractiveAccounting) {
    const auto traj = smallTrajectory();
    SessionService service;
    RinWidget::Options wo;
    wo.speculate = true;
    const auto id = service.openSession(traj, wo);

    const count events = 6;
    double cutoff = 4.5;
    for (count i = 0; i < events; ++i) {
        cutoff += 0.1;
        service.submit(id, SliderEvent::setCutoff(cutoff)).get();
        settle(service);
    }

    const auto snap = service.metrics();
    ASSERT_GT(snap.counter("speculated"), 0u);
    // Zero speculative requests in admission/SLO accounting: the
    // submitted/completed ledger and the interactive latency histogram
    // count exactly the real events. Speculative CPU lands in its own
    // speculate_ms histogram.
    EXPECT_EQ(snap.counter("submitted"), events);
    EXPECT_EQ(snap.counter("completed"), events);
    EXPECT_EQ(snap.counter("rejected"), 0u);
    EXPECT_EQ(snap.histograms.at("server_ms").samples, events);
    EXPECT_EQ(snap.histograms.at("queue_ms").samples, events);
    EXPECT_GT(snap.histograms.at("speculate_ms").samples, 0u);
}

TEST(ServiceSpeculation, BurstSubmissionsCancelSpeculationsUnderRace) {
    // TSan target: real submits racing the background speculation task.
    // Interleaving-dependent — only the invariants are asserted.
    const auto traj = smallTrajectory();
    SessionService::Options so;
    so.workers = 2;
    SessionService service(so);
    RinWidget::Options wo;
    wo.speculate = true;
    const auto id = service.openSession(traj, wo);

    std::vector<std::future<RequestOutcome>> futures;
    double cutoff = 4.5;
    for (int burst = 0; burst < 10; ++burst) {
        for (int i = 0; i < 3; ++i) {
            cutoff += 0.1;
            futures.push_back(service.submit(id, SliderEvent::setCutoff(cutoff)));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (auto& f : futures) f.get();
    settle(service);
    service.closeSession(id);

    const auto snap = service.metrics();
    expectSpecInvariant(snap);
    EXPECT_EQ(snap.counter("submitted"), futures.size());
    // Each submission ends in exactly one interactive bucket, regardless
    // of how speculation interleaved.
    EXPECT_EQ(snap.counter("submitted"),
              snap.counter("completed") + snap.counter("coalesced") +
                  snap.counter("rejected"));
}

TEST(ServiceSpeculation, ManySessionsRacingSpeculation) {
    // TSan target: several sessions' speculations sharing the pool's
    // background queue while interactive work streams in.
    const auto traj = smallTrajectory();
    SessionService::Options so;
    so.workers = 4;
    SessionService service(so);
    RinWidget::Options wo;
    wo.speculate = true;

    std::vector<serve::SessionId> ids;
    for (int s = 0; s < 4; ++s) ids.push_back(service.openSession(traj, wo));

    std::vector<std::thread> clients;
    for (int s = 0; s < 4; ++s) {
        clients.emplace_back([&service, &ids, s] {
            double cutoff = 4.5 + 0.05 * s;
            for (int i = 0; i < 8; ++i) {
                cutoff += 0.1;
                service.submit(ids[static_cast<size_t>(s)], SliderEvent::setCutoff(cutoff)).get();
            }
        });
    }
    for (auto& t : clients) t.join();
    settle(service);
    for (const auto id : ids) service.closeSession(id);
    expectSpecInvariant(service.metrics());
}

TEST(ServiceSpeculation, CloseSessionResolvesPendingSpeculation) {
    const auto traj = smallTrajectory();
    SessionService service;
    RinWidget::Options wo;
    wo.speculate = true;
    const auto id = service.openSession(traj, wo);

    double cutoff = 4.5;
    for (int i = 0; i < 3; ++i) {
        cutoff += 0.1;
        service.submit(id, SliderEvent::setCutoff(cutoff)).get();
        settle(service);
    }
    // A completed speculation is pending judgement; closing the session
    // must resolve it (cancelled), not leak it.
    service.closeSession(id);
    service.waitSpeculationIdle();
    expectSpecInvariant(service.metrics());
}

TEST(ServiceSpeculation, ShutdownResolvesEverything) {
    const auto traj = smallTrajectory();
    auto service = std::make_unique<SessionService>();
    RinWidget::Options wo;
    wo.speculate = true;
    const auto id = service->openSession(traj, wo);
    double cutoff = 4.5;
    for (int i = 0; i < 3; ++i) {
        cutoff += 0.1;
        service->submit(id, SliderEvent::setCutoff(cutoff)).get();
        settle(*service); // nothing queued when shutdown hits
    }
    service->shutdown(); // resolves the pending speculation as cancelled
    const auto snap = service->metrics();
    service.reset();
    expectSpecInvariant(snap);
}

TEST(ServiceSpeculation, ExtractedSessionDropsSpeculationButKeepsState) {
    const auto traj = smallTrajectory();
    SessionService source, target;
    RinWidget::Options wo;
    wo.speculate = true;
    const auto id = source.openSession(traj, wo);
    double cutoff = 4.5;
    for (int i = 0; i < 3; ++i) {
        cutoff += 0.1;
        source.submit(id, SliderEvent::setCutoff(cutoff)).get();
        settle(source);
    }

    // Migration: the speculation's accounting stays on the source replica
    // (resolved cancelled); the widget state migrates clean.
    auto detached = source.extractSession(id);
    expectSpecInvariant(source.metrics());
    const auto newId = target.adoptSession(std::move(detached));
    const auto outcome = target.submit(newId, SliderEvent::setCutoff(cutoff + 0.1)).get();
    EXPECT_EQ(outcome.status, RequestStatus::Ok);
    EXPECT_FALSE(outcome.timing.specHit); // nothing pending migrated
    settle(target);
    target.closeSession(newId);
    expectSpecInvariant(target.metrics());
}

TEST(ServiceSpeculation, DisabledWidgetNeverSpeculates) {
    const auto traj = smallTrajectory();
    SessionService service;
    const auto id = service.openSession(traj); // speculate defaults off
    double cutoff = 4.5;
    for (int i = 0; i < 4; ++i) {
        cutoff += 0.1;
        service.submit(id, SliderEvent::setCutoff(cutoff)).get();
        settle(service);
    }
    const auto snap = service.metrics();
    EXPECT_EQ(snap.counter("speculated"), 0u);
    EXPECT_EQ(snap.counter("spec_hit"), 0u);
}

// -------------------------------------------- load generator drag model

TEST(LoadGenerator, MonotoneDragProducesHitsEndToEnd) {
    // The drag schedule is what the speculative path is built for: driving
    // it through a real endpoint must produce a healthy hit counter while
    // every accounting invariant holds.
    const auto traj = smallTrajectory();
    serve::LoadGenOptions o;
    o.eventModel = serve::LoadEventModel::MonotoneDrag;
    o.baseRatePerSec = 120.0;
    o.durationSec = 0.5;
    o.sessions = 2;
    o.frames = traj.frameCount();
    o.deadlineMs = 0.0;
    serve::LoadGenerator gen(o);
    RinWidget::Options wo;
    wo.speculate = true;
    gen.setWidgetOptions(wo);

    SessionService service;
    const auto report = gen.run(service, traj);
    settle(service);
    EXPECT_GT(report.offered, 0u);

    const auto snap = service.metrics();
    expectSpecInvariant(snap);
    // Open-loop pacing means some speculations get cancelled by the next
    // arrival — but the schedule is predictable, so some must also land.
    EXPECT_GT(snap.counter("speculated"), 0u);
}

} // namespace
