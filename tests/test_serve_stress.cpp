// Serving-layer stress suite (ctest labels: serve;slow). A heavier
// version of the concurrency test in test_serve.cpp: more threads, more
// events, session churn (open/close while traffic flows), and overload
// pressure (tight queues + deadlines) — the workload scripts/verify.sh
// --serve-stress runs under ThreadSanitizer and ASan/UBSan.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/serve/session_service.hpp"

namespace {

using namespace rinkit;
using serve::RequestOutcome;
using serve::RequestStatus;
using serve::SessionService;
using serve::SliderEvent;

SliderEvent eventFor(count i) {
    switch (i % 4) {
    case 0: return SliderEvent::setFrame(static_cast<rinkit::index>(i % 6));
    case 1: return SliderEvent::setCutoff(4.0 + 0.2 * static_cast<double>(i % 6));
    case 2:
        return SliderEvent::setMeasure(i % 8 < 4 ? viz::Measure::Degree
                                                 : viz::Measure::Closeness);
    default: return SliderEvent::refresh();
    }
}

TEST(ServeStress, ManyClientsUnderOverloadStayConsistent) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 6;
    const auto traj = md::TrajectoryGenerator(params).generate(md::helixBundle(300));

    SessionService::Options options;
    options.workers = 4;
    options.maxQueuedPerSession = 2; // force admission pressure
    options.degradeQueueDepth = 1;   // and shedding
    options.defaultDeadlineMs = 50.0;
    SessionService service(options);

    constexpr count kThreads = 8;
    constexpr count kEventsPerThread = 60;
    std::vector<serve::SessionId> ids;
    for (count t = 0; t < kThreads; ++t) ids.push_back(service.openSession(traj));

    std::vector<std::thread> threads;
    std::vector<std::vector<std::future<RequestOutcome>>> futures(kThreads);
    for (count t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (count i = 0; i < kEventsPerThread; ++i) {
                futures[t].push_back(service.submit(ids[t], eventFor(i * 5 + t)));
            }
        });
    }
    for (auto& th : threads) th.join();

    count accepted = 0, degraded = 0, rejected = 0;
    for (auto& perThread : futures) {
        for (auto& f : perThread) {
            const auto outcome = f.get(); // every future must resolve
            switch (outcome.status) {
            case RequestStatus::Ok: ++accepted; break;
            case RequestStatus::OkDegraded:
                ++accepted;
                ++degraded;
                break;
            case RequestStatus::Rejected: ++rejected; break;
            }
        }
    }
    service.drain();

    const auto snap = service.metrics();
    EXPECT_EQ(snap.counter("submitted"), kThreads * kEventsPerThread);
    EXPECT_EQ(snap.counter("submitted"),
              snap.counter("completed") + snap.counter("coalesced") + snap.counter("rejected"));
    EXPECT_GE(accepted, 1u);
    // Under this much pressure the whole degradation ladder must fire.
    EXPECT_GE(degraded, 1u);
    EXPECT_GE(snap.counter("coalesced"), 1u);
    EXPECT_GE(snap.counter("shed_degraded") + snap.counter("deadline_missed"), 1u);
    // Bounded queues: depth can never exceed sessions x per-session bound.
    EXPECT_LE(snap.queueDepthMax, kThreads * options.maxQueuedPerSession);
    EXPECT_EQ(rejected, snap.counter("rejected"));
    EXPECT_EQ(snap.queueDepth, 0u);

    // Per-session ordering survives the stampede: the applied log of each
    // session only contains kinds that session submitted, in FIFO slot
    // order (verified structurally in test_serve; here just non-empty and
    // bounded by the accounting).
    count applied = 0;
    for (count t = 0; t < kThreads; ++t) applied += service.appliedEvents(ids[t]).size();
    EXPECT_EQ(applied, snap.counter("completed"));
}

TEST(ServeStress, SessionChurnWhileTrafficFlows) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 6; // eventFor() cycles frames 0..5
    const auto traj = md::TrajectoryGenerator(params).generate(md::helixBundle(150));

    SessionService::Options options;
    options.workers = 3;
    options.maxQueuedPerSession = 8;
    SessionService service(options);

    constexpr count kThreads = 6;
    constexpr count kRounds = 10;
    std::vector<std::thread> threads;
    for (count t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (count r = 0; r < kRounds; ++r) {
                const auto id = service.openSession(traj);
                std::vector<std::future<RequestOutcome>> futures;
                for (count i = 0; i < 5; ++i) {
                    futures.push_back(service.submit(id, eventFor(i + r + t)));
                }
                if (r % 2 == 0) service.closeSession(id); // backlog -> Rejected
                for (auto& f : futures) f.get();          // still all resolve
                if (r % 2 != 0) service.closeSession(id);
            }
        });
    }
    for (auto& th : threads) th.join();
    service.drain();

    const auto snap = service.metrics();
    EXPECT_EQ(service.activeSessions(), 0u);
    EXPECT_EQ(snap.counter("sessions_opened"), kThreads * kRounds);
    EXPECT_EQ(snap.counter("submitted"),
              snap.counter("completed") + snap.counter("coalesced") + snap.counter("rejected"));
    EXPECT_EQ(snap.queueDepth, 0u);
}

} // namespace
