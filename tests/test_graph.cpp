// Tests for the dynamic Graph, GraphBuilder, GraphTools, and graph I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/graph/csr_view.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/graph/graph_builder.hpp"
#include "src/graph/graph_io.hpp"
#include "src/graph/graph_tools.hpp"

namespace rinkit {
namespace {

TEST(Graph, EmptyGraph) {
    Graph g;
    EXPECT_EQ(g.numberOfNodes(), 0u);
    EXPECT_EQ(g.numberOfEdges(), 0u);
    EXPECT_FALSE(g.hasNode(0));
}

TEST(Graph, AddNodesAndEdges) {
    Graph g(3);
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_TRUE(g.addEdge(1, 2));
    EXPECT_EQ(g.numberOfEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0)); // undirected
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, DuplicateEdgeRejected) {
    Graph g(2);
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_FALSE(g.addEdge(0, 1));
    EXPECT_FALSE(g.addEdge(1, 0));
    EXPECT_EQ(g.numberOfEdges(), 1u);
}

TEST(Graph, SelfLoopThrows) {
    Graph g(2);
    EXPECT_THROW(g.addEdge(1, 1), std::invalid_argument);
}

TEST(Graph, InvalidNodeThrows) {
    Graph g(2);
    EXPECT_THROW(g.addEdge(0, 5), std::out_of_range);
    EXPECT_THROW(g.degree(9), std::out_of_range);
    EXPECT_THROW((void)g.hasEdge(0, 17), std::out_of_range);
}

TEST(Graph, RemoveEdge) {
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    EXPECT_TRUE(g.removeEdge(0, 1));
    EXPECT_FALSE(g.removeEdge(0, 1));
    EXPECT_EQ(g.numberOfEdges(), 1u);
    EXPECT_FALSE(g.hasEdge(1, 0));
    EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, NeighborsSorted) {
    Graph g(5);
    g.addEdge(2, 4);
    g.addEdge(2, 0);
    g.addEdge(2, 3);
    g.addEdge(2, 1);
    const auto nb = g.neighbors(2);
    ASSERT_EQ(nb.size(), 4u);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Graph, AddNodeGrowsGraph) {
    Graph g(1);
    const node u = g.addNode();
    EXPECT_EQ(u, 1u);
    g.addNodes(3);
    EXPECT_EQ(g.numberOfNodes(), 5u);
    g.addEdge(0, 4);
    EXPECT_TRUE(g.hasEdge(0, 4));
}

TEST(Graph, WeightedEdges) {
    Graph g(3, true);
    g.addEdge(0, 1, 2.5);
    EXPECT_TRUE(g.isWeighted());
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 2.5);
    EXPECT_DOUBLE_EQ(g.weight(1, 0), 2.5);
    g.setWeight(0, 1, 7.0);
    EXPECT_DOUBLE_EQ(g.weight(1, 0), 7.0);
    EXPECT_THROW((void)g.weight(0, 2), std::invalid_argument);
    EXPECT_THROW(g.setWeight(0, 2, 1.0), std::invalid_argument);
}

TEST(Graph, UnweightedWeightIsOne) {
    Graph g(2);
    g.addEdge(0, 1);
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 1.0);
    EXPECT_THROW(g.setWeight(0, 1, 2.0), std::logic_error);
}

TEST(Graph, TotalEdgeWeightAndWeightedDegree) {
    Graph g(3, true);
    g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 3.0);
    EXPECT_DOUBLE_EQ(g.totalEdgeWeight(), 5.0);
    EXPECT_DOUBLE_EQ(g.weightedDegree(1), 5.0);
    Graph u(3);
    u.addEdge(0, 1);
    EXPECT_DOUBLE_EQ(u.totalEdgeWeight(), 1.0);
    EXPECT_DOUBLE_EQ(u.weightedDegree(0), 1.0);
}

TEST(Graph, ForEdgesVisitsEachOnce) {
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(0, 3);
    count visits = 0;
    g.forEdges([&](node u, node v) {
        EXPECT_LT(u, v);
        ++visits;
    });
    EXPECT_EQ(visits, 4u);
}

TEST(Graph, RemoveAllEdges) {
    auto g = generators::karateClub();
    g.removeAllEdges();
    EXPECT_EQ(g.numberOfEdges(), 0u);
    EXPECT_EQ(g.numberOfNodes(), 34u);
    g.forNodes([&](node u) { EXPECT_EQ(g.degree(u), 0u); });
}

TEST(Graph, EqualityOperator) {
    auto a = generators::karateClub();
    auto b = generators::karateClub();
    EXPECT_TRUE(a == b);
    b.removeEdge(0, 1);
    EXPECT_FALSE(a == b);
}

TEST(Graph, ParallelForNodesCoversAll) {
    Graph g(1000);
    std::vector<int> seen(1000, 0);
    g.parallelForNodes([&](node u) { seen[u] = 1; });
    for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(GraphBuilder, BuildsDeduplicated) {
    GraphBuilder b(4);
    b.addEdge(0, 1);
    b.addEdge(1, 0); // duplicate in reverse
    b.addEdge(2, 3);
    b.addEdge(1, 1); // self-loop dropped
    auto g = b.build();
    EXPECT_EQ(g.numberOfEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(2, 3));
}

TEST(GraphBuilder, WeightedLastWins) {
    GraphBuilder b(2, true);
    b.addEdge(0, 1, 1.0);
    b.addEdge(0, 1, 9.0);
    auto g = b.build();
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 9.0);
}

TEST(GraphBuilder, ReusableAfterBuild) {
    GraphBuilder b(3);
    b.addEdge(0, 1);
    auto g1 = b.build();
    b.addEdge(1, 2);
    auto g2 = b.build();
    EXPECT_EQ(g1.numberOfEdges(), 1u);
    EXPECT_EQ(g2.numberOfEdges(), 1u);
    EXPECT_TRUE(g2.hasEdge(1, 2));
    EXPECT_FALSE(g2.hasEdge(0, 1));
}

TEST(GraphBuilder, InvalidNodeThrows) {
    GraphBuilder b(2);
    EXPECT_THROW(b.addEdge(0, 2), std::out_of_range);
}

TEST(GraphTools, DensityAndDegrees) {
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    EXPECT_DOUBLE_EQ(graphtools::density(g), 0.5);
    EXPECT_EQ(graphtools::maxDegree(g), 2u);
    EXPECT_DOUBLE_EQ(graphtools::averageDegree(g), 1.5);
    const auto seq = graphtools::degreeSequence(g);
    EXPECT_EQ(seq, (std::vector<count>{1, 2, 2, 1}));
    const auto dist = graphtools::degreeDistribution(g);
    EXPECT_EQ(dist, (std::vector<count>{0, 2, 2}));
}

TEST(GraphTools, HubCount) {
    auto g = generators::karateClub();
    EXPECT_EQ(graphtools::hubCount(g, 1), 34u);
    EXPECT_GE(graphtools::hubCount(g, 10), 2u);  // nodes 33 (deg 17), 0 (deg 16), 32 (deg 12)
    EXPECT_EQ(graphtools::hubCount(g, 100), 0u);
}

TEST(GraphTools, Subgraph) {
    auto g = generators::karateClub();
    const std::vector<node> keep{0, 1, 2, 3};
    const auto sub = graphtools::subgraph(g, keep);
    EXPECT_EQ(sub.numberOfNodes(), 4u);
    // 0-1, 0-2, 0-3, 1-2, 1-3, 2-3 are all edges of karate's core.
    EXPECT_EQ(sub.numberOfEdges(), 6u);
    EXPECT_THROW(graphtools::subgraph(g, {0, 0}), std::invalid_argument);
    EXPECT_THROW(graphtools::subgraph(g, {999}), std::out_of_range);
}

TEST(GraphTools, UnionAndSymmetricDifference) {
    Graph a(3), b(3);
    a.addEdge(0, 1);
    b.addEdge(1, 2);
    const auto u = graphtools::unionGraph(a, b);
    EXPECT_EQ(u.numberOfEdges(), 2u);
    EXPECT_EQ(graphtools::symmetricDifferenceSize(a, b), 2u);
    a.addEdge(1, 2);
    EXPECT_EQ(graphtools::symmetricDifferenceSize(a, b), 1u);
    Graph c(5);
    EXPECT_THROW(graphtools::unionGraph(a, c), std::invalid_argument);
}

TEST(GraphTools, Triangles) {
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(2, 3);
    EXPECT_EQ(graphtools::triangleCount(g), 1u);
    // triads: deg 2,2,3,1 -> 1+1+3+0 = 5 open triads; coefficient 3/5.
    EXPECT_DOUBLE_EQ(graphtools::clusteringCoefficient(g), 0.6);
}

TEST(GraphTools, CompleteGraphClusteringIsOne) {
    auto g = generators::erdosRenyi(6, 1.0);
    EXPECT_DOUBLE_EQ(graphtools::clusteringCoefficient(g), 1.0);
    EXPECT_EQ(graphtools::triangleCount(g), 20u);
}

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
    const count n = 500;
    const double p = 0.02;
    const auto g = generators::erdosRenyi(n, p, 99);
    const double expected = p * n * (n - 1) / 2.0;
    EXPECT_NEAR(static_cast<double>(g.numberOfEdges()), expected, 0.25 * expected);
}

TEST(Generators, ErdosRenyiExtremes) {
    EXPECT_EQ(generators::erdosRenyi(10, 0.0).numberOfEdges(), 0u);
    EXPECT_EQ(generators::erdosRenyi(10, 1.0).numberOfEdges(), 45u);
    EXPECT_THROW(generators::erdosRenyi(10, 1.5), std::invalid_argument);
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
    const auto a = generators::erdosRenyi(100, 0.05, 7);
    const auto b = generators::erdosRenyi(100, 0.05, 7);
    EXPECT_TRUE(a == b);
}

TEST(Generators, BarabasiAlbertStructure) {
    const auto g = generators::barabasiAlbert(200, 3, 5);
    EXPECT_EQ(g.numberOfNodes(), 200u);
    // seed clique C(4,2)=6 edges + 196 * 3 attachments
    EXPECT_EQ(g.numberOfEdges(), 6u + 196u * 3u);
    EXPECT_GE(graphtools::maxDegree(g), 10u); // hubs emerge
    EXPECT_THROW(generators::barabasiAlbert(2, 3), std::invalid_argument);
    EXPECT_THROW(generators::barabasiAlbert(10, 0), std::invalid_argument);
}

TEST(Generators, RandomGeometricMatchesBruteForce) {
    std::vector<Point3> pts;
    const auto g = generators::randomGeometric3D(150, 0.2, 3, &pts);
    ASSERT_EQ(pts.size(), 150u);
    count brute = 0;
    for (node u = 0; u < 150; ++u) {
        for (node v = u + 1; v < 150; ++v) {
            if (pts[u].distance(pts[v]) <= 0.2) {
                ++brute;
                EXPECT_TRUE(g.hasEdge(u, v));
            }
        }
    }
    EXPECT_EQ(g.numberOfEdges(), brute);
}

TEST(Generators, WattsStrogatzRingDegrees) {
    const auto g = generators::wattsStrogatz(50, 2, 0.0, 1);
    EXPECT_EQ(g.numberOfEdges(), 100u);
    g.forNodes([&](node u) { EXPECT_EQ(g.degree(u), 4u); });
    const auto rewired = generators::wattsStrogatz(50, 2, 0.5, 1);
    EXPECT_EQ(rewired.numberOfNodes(), 50u);
    EXPECT_GT(rewired.numberOfEdges(), 0u);
}

TEST(Generators, Grid3DStructure) {
    const auto g = generators::grid3D(3, 3, 3);
    EXPECT_EQ(g.numberOfNodes(), 27u);
    EXPECT_EQ(g.numberOfEdges(), 54u); // 3 * 2*3*3 directions
}

TEST(Generators, PlantedPartitionGroundTruth) {
    std::vector<index> truth;
    const auto g = generators::plantedPartition(4, 25, 0.5, 0.01, 11, &truth);
    EXPECT_EQ(g.numberOfNodes(), 100u);
    ASSERT_EQ(truth.size(), 100u);
    EXPECT_EQ(truth[0], 0u);
    EXPECT_EQ(truth[99], 3u);
    // Intra-block edges should dominate.
    count intra = 0, inter = 0;
    g.forEdges([&](node u, node v) {
        (truth[u] == truth[v] ? intra : inter) += 1;
    });
    EXPECT_GT(intra, inter * 3);
}

TEST(Generators, KarateClubCanonical) {
    const auto g = generators::karateClub();
    EXPECT_EQ(g.numberOfNodes(), 34u);
    EXPECT_EQ(g.numberOfEdges(), 78u);
    EXPECT_EQ(g.degree(33), 17u);
    EXPECT_EQ(g.degree(0), 16u);
}

TEST(GraphTools, AssortativityClosedForms) {
    // Star: endpoints always (n-1, 1) -> perfectly disassortative.
    Graph star(6);
    for (node u = 1; u < 6; ++u) star.addEdge(0, u);
    EXPECT_NEAR(graphtools::degreeAssortativity(star), -1.0, 1e-12);
    // Cycle: constant degree -> undefined, reported as 0.
    Graph cyc(8);
    for (node u = 0; u < 8; ++u) cyc.addEdge(u, (u + 1) % 8);
    EXPECT_DOUBLE_EQ(graphtools::degreeAssortativity(cyc), 0.0);
    // Empty graph.
    EXPECT_DOUBLE_EQ(graphtools::degreeAssortativity(Graph(4)), 0.0);
    // Karate club: known to be disassortative (r ~ -0.476).
    EXPECT_NEAR(graphtools::degreeAssortativity(generators::karateClub()), -0.476, 0.01);
    // Bounded by [-1, 1] on random graphs.
    const auto er = generators::erdosRenyi(200, 0.03, 5);
    const double r = graphtools::degreeAssortativity(er);
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
}

TEST(GraphIO, MetisRoundTrip) {
    const auto g = generators::karateClub();
    std::stringstream ss;
    io::writeMetis(g, ss);
    const auto h = io::readMetis(ss);
    EXPECT_TRUE(g == h);
}

TEST(GraphIO, MetisWeightedRoundTrip) {
    Graph g(3, true);
    g.addEdge(0, 1, 2.5);
    g.addEdge(1, 2, 0.5);
    std::stringstream ss;
    io::writeMetis(g, ss);
    const auto h = io::readMetis(ss);
    EXPECT_TRUE(h.isWeighted());
    EXPECT_DOUBLE_EQ(h.weight(0, 1), 2.5);
    EXPECT_DOUBLE_EQ(h.weight(1, 2), 0.5);
}

TEST(GraphIO, MetisRejectsMalformed) {
    std::stringstream empty("");
    EXPECT_THROW(io::readMetis(empty), std::runtime_error);
    std::stringstream badCount("2 5\n2\n1\n");
    EXPECT_THROW(io::readMetis(badCount), std::runtime_error);
    std::stringstream outOfRange("2 1\n3\n1\n");
    EXPECT_THROW(io::readMetis(outOfRange), std::runtime_error);
}

TEST(GraphIO, MetisSkipsComments) {
    std::stringstream ss("% a comment\n3 2\n% another\n2\n1 3\n2\n");
    const auto g = io::readMetis(ss);
    EXPECT_EQ(g.numberOfNodes(), 3u);
    EXPECT_EQ(g.numberOfEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 2));
}

TEST(GraphIO, EdgeListRoundTrip) {
    const auto g = generators::erdosRenyi(60, 0.1, 4);
    std::stringstream ss;
    io::writeEdgeList(g, ss);
    const auto h = io::readEdgeList(ss, 60);
    EXPECT_TRUE(g == h);
}

TEST(GraphIO, EdgeListCommentsAndExplicitN) {
    std::stringstream ss("# comment\n0 1\n2 3\n");
    const auto g = io::readEdgeList(ss, 10);
    EXPECT_EQ(g.numberOfNodes(), 10u);
    EXPECT_EQ(g.numberOfEdges(), 2u);
}

TEST(GraphVersion, BumpsOnEveryMutationOnly) {
    Graph g(3, true);
    const auto v0 = g.version();

    EXPECT_TRUE(g.addEdge(0, 1, 2.0));
    EXPECT_GT(g.version(), v0);
    auto v = g.version();

    // No-op mutations leave the version alone.
    EXPECT_FALSE(g.addEdge(0, 1));       // duplicate
    EXPECT_FALSE(g.removeEdge(1, 2));    // absent
    g.addNodes(0);
    EXPECT_EQ(g.version(), v);

    g.setWeight(0, 1, 5.0);
    EXPECT_GT(g.version(), v);
    v = g.version();

    g.addNode();
    EXPECT_GT(g.version(), v);
    v = g.version();

    g.addNodes(2);
    EXPECT_GT(g.version(), v);
    v = g.version();

    EXPECT_TRUE(g.removeEdge(0, 1));
    EXPECT_GT(g.version(), v);
    v = g.version();

    g.removeAllEdges(); // already empty: no-op
    EXPECT_EQ(g.version(), v);
    g.addEdge(0, 2);
    g.removeAllEdges();
    EXPECT_GT(g.version(), v);

    // The version is monotonic, never reset by reaching an earlier state.
    Graph h(3, true);
    h.addEdge(0, 1);
    h.removeEdge(0, 1);
    EXPECT_GT(h.version(), Graph(3, true).version());
}

TEST(CsrSnapshot, ReusesWhileVersionUnchanged) {
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);

    CsrSnapshot snap;
    const CsrView* first = &snap.get(g);
    EXPECT_EQ(first->version(), g.version());
    EXPECT_EQ(first->numberOfEdges(), 2u);
    // Unchanged graph: same object, no rebuild.
    EXPECT_EQ(&snap.get(g), first);
    EXPECT_EQ(snap.get(g).numberOfEdges(), 2u);

    g.addEdge(2, 3);
    const CsrView& rebuilt = snap.get(g);
    EXPECT_EQ(rebuilt.version(), g.version());
    EXPECT_EQ(rebuilt.numberOfEdges(), 3u);

    // A different graph object forces a rebuild even at an equal version.
    Graph h(4);
    h.addEdge(0, 2);
    EXPECT_EQ(snap.get(h).numberOfEdges(), 1u);
}

TEST(CsrView, MirrorsGraphStructure) {
    const auto g = generators::erdosRenyi(50, 0.1, 3);
    const auto v = CsrView::fromGraph(g);
    EXPECT_EQ(v.numberOfNodes(), g.numberOfNodes());
    EXPECT_EQ(v.numberOfEdges(), g.numberOfEdges());
    EXPECT_EQ(v.isWeighted(), g.isWeighted());
    double maxDeg = 0;
    g.forNodes([&](node u) {
        EXPECT_EQ(v.degree(u), g.degree(u));
        EXPECT_DOUBLE_EQ(v.weightedDegree(u), g.weightedDegree(u));
        maxDeg = std::max(maxDeg, static_cast<double>(g.degree(u)));
        const auto nb = g.neighbors(u);
        const auto cnb = v.neighbors(u);
        ASSERT_EQ(cnb.size(), nb.size());
        for (count i = 0; i < nb.size(); ++i) EXPECT_EQ(cnb[i], nb[i]);
    });
    EXPECT_EQ(static_cast<double>(v.maxDegree()), maxDeg);
    EXPECT_DOUBLE_EQ(v.totalEdgeWeight(), g.totalEdgeWeight());
}

} // namespace
} // namespace rinkit
