// Observability suite: span-tree integrity, context propagation across
// ThreadPool and SessionService thread boundaries, head sampling (and the
// always-sample-on-deadline-miss escape hatch), ring-buffer overwrite, and
// the exporters — Chrome trace JSON round-trips through the in-repo JSON
// parser, Prometheus exposition round-trips through parsePrometheusText.
// `ctest -L obs` runs this suite; scripts/verify.sh --obs adds TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cloud/cluster.hpp"
#include "src/cloud/gateway.hpp"
#include "src/cloud/jupyterhub.hpp"
#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/exporters.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/tail_sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/metrics.hpp"
#include "src/serve/session_service.hpp"
#include "src/support/json.hpp"
#include "src/support/thread_pool.hpp"
#include "src/viz/widget.hpp"

namespace {

using namespace rinkit;
using obs::ScopedSpan;
using obs::SpanRecord;
using obs::Tracer;

/// Every test drives the process-global tracer; reset it on both sides so
/// suites do not observe each other's spans or sampling policy.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        auto& t = Tracer::global();
        t.setEnabled(true);
        t.setSampleEvery(1);
        t.clear();
    }
    void TearDown() override {
        auto& t = Tracer::global();
        t.setEnabled(false);
        t.setSampleEvery(1);
        t.clear();
    }
};

md::Trajectory tinyTrajectory(count frames = 3) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = frames;
    return md::TrajectoryGenerator(params).generate(md::chignolin());
}

// Large enough that one update cycle takes milliseconds, so a second
// submission reliably queues behind the first.
md::Trajectory slowTrajectory() {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 3;
    return md::TrajectoryGenerator(params).generate(md::helixBundle(200));
}

const SpanRecord* findSpan(const std::vector<SpanRecord>& spans, std::string_view name) {
    for (const auto& s : spans)
        if (s.name == name) return &s;
    return nullptr;
}

double numAttrOr(const SpanRecord& s, std::string_view key, double fallback) {
    for (const auto& a : s.attrs)
        if (!a.isString && a.key == key) return a.num;
    return fallback;
}

/// Structural invariants of one trace: exactly one root, every parent id
/// resolves to a span of the same trace, and following parents always
/// reaches the root (connected, acyclic).
void expectConnectedTree(const std::vector<SpanRecord>& spans, std::uint64_t traceId) {
    std::map<std::uint64_t, const SpanRecord*> byId;
    std::uint64_t rootId = 0;
    count roots = 0;
    for (const auto& s : spans) {
        if (s.traceId != traceId) continue;
        EXPECT_TRUE(byId.emplace(s.spanId, &s).second) << "duplicate span id";
        if (s.parentId == 0) {
            ++roots;
            rootId = s.spanId;
        }
    }
    EXPECT_EQ(roots, 1u) << "trace must have exactly one root";
    for (const auto& [id, span] : byId) {
        std::uint64_t cursor = id;
        std::set<std::uint64_t> visited;
        while (cursor != rootId) {
            ASSERT_TRUE(visited.insert(cursor).second) << "cycle in span tree";
            const auto it = byId.find(cursor);
            ASSERT_NE(it, byId.end()) << "span " << cursor << " unreachable from root";
            cursor = it->second->parentId;
            if (cursor == 0) break; // root reached via parentId
        }
    }
}

TEST_F(ObsTest, NestedScopesFormOneTree) {
    {
        ScopedSpan root("unit.root");
        {
            ScopedSpan child("unit.child");
            ScopedSpan grandchild("unit.grandchild");
        }
        ScopedSpan sibling("unit.sibling");
    }
    const auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 4u);

    const auto* root = findSpan(spans, "unit.root");
    const auto* child = findSpan(spans, "unit.child");
    const auto* grandchild = findSpan(spans, "unit.grandchild");
    const auto* sibling = findSpan(spans, "unit.sibling");
    ASSERT_TRUE(root && child && grandchild && sibling);

    EXPECT_EQ(root->parentId, 0u);
    EXPECT_EQ(child->parentId, root->spanId);
    EXPECT_EQ(grandchild->parentId, child->spanId);
    EXPECT_EQ(sibling->parentId, root->spanId);
    for (const auto* s : {child, grandchild, sibling})
        EXPECT_EQ(s->traceId, root->traceId);
    expectConnectedTree(spans, root->traceId);

    // Children are contained in their parent's interval (same clock).
    EXPECT_GE(child->startUs, root->startUs);
    EXPECT_LE(child->endUs, root->endUs);
    EXPECT_GE(grandchild->startUs, child->startUs);
    EXPECT_LE(grandchild->endUs, child->endUs);
}

TEST_F(ObsTest, FinishMsMatchesRecordedDuration) {
    ScopedSpan span("unit.timed");
    const double ms = span.finishMs();
    const auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 1u);
    // finishMs is the single pair of clock reads: the record must agree
    // exactly — this is what makes UpdateTiming "derived from spans".
    EXPECT_DOUBLE_EQ(spans[0].durationMs(), ms);
    EXPECT_DOUBLE_EQ(span.finishMs(), ms) << "finishMs must be idempotent";
}

TEST_F(ObsTest, AttributesAreRecorded) {
    {
        ScopedSpan span("unit.attrs");
        span.attr("cache_hit", true);
        span.attr("frontier_size", count{42});
        span.attr("phase", "layout");
    }
    const auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_DOUBLE_EQ(numAttrOr(spans[0], "cache_hit", -1.0), 1.0);
    EXPECT_DOUBLE_EQ(numAttrOr(spans[0], "frontier_size", -1.0), 42.0);
    bool sawPhase = false;
    for (const auto& a : spans[0].attrs)
        if (a.isString && a.key == "phase" && a.str == "layout") sawPhase = true;
    EXPECT_TRUE(sawPhase);
}

TEST_F(ObsTest, ContextPropagatesAcrossThreadPool) {
    std::uint64_t rootTrace = 0, rootSpan = 0;
    {
        ScopedSpan root("unit.submit_side");
        rootTrace = root.context().traceId;
        rootSpan = root.context().spanId;
        std::promise<void> done;
        ThreadPool pool(2);
        pool.submit([&done] {
            ScopedSpan worker("unit.worker_side");
            done.set_value();
        });
        done.get_future().wait();
    }
    const auto spans = Tracer::global().collect();
    const auto* worker = findSpan(spans, "unit.worker_side");
    ASSERT_NE(worker, nullptr);
    // The worker span joined the submitter's trace across the queue hop...
    EXPECT_EQ(worker->traceId, rootTrace);
    EXPECT_EQ(worker->parentId, rootSpan);
    // ...and really ran on another thread (distinct export track).
    const auto* root = findSpan(spans, "unit.submit_side");
    ASSERT_NE(root, nullptr);
    EXPECT_NE(worker->tid, root->tid);
    expectConnectedTree(spans, rootTrace);
}

TEST_F(ObsTest, HeadSamplingKeepsEveryNth) {
    Tracer::global().setSampleEvery(3);
    for (int i = 0; i < 9; ++i) ScopedSpan span("unit.sampled_root");
    const auto spans = Tracer::global().collect();
    EXPECT_EQ(spans.size(), 3u);
}

TEST_F(ObsTest, RingBufferKeepsMostRecentSpans) {
    auto& tracer = Tracer::global();
    tracer.setRingCapacity(16);
    for (int i = 0; i < 100; ++i) {
        ScopedSpan span("unit.ring");
        span.attr("i", static_cast<double>(i));
    }
    const auto spans = tracer.collect();
    ASSERT_EQ(spans.size(), 16u);
    // Oldest entries were overwritten: only the tail survives, in order.
    for (std::size_t k = 0; k < spans.size(); ++k)
        EXPECT_DOUBLE_EQ(numAttrOr(spans[k], "i", -1.0), static_cast<double>(84 + k));
    tracer.setRingCapacity(8192);
}

TEST_F(ObsTest, DisabledTracerRecordsNothingButStillTimes) {
    Tracer::global().setEnabled(false);
    ScopedSpan span("unit.dark");
    EXPECT_GE(span.finishMs(), 0.0);
    EXPECT_TRUE(Tracer::global().collect().empty());
}

TEST_F(ObsTest, WidgetUpdateTimingIsDerivedFromSpans) {
    const auto traj = tinyTrajectory();
    viz::RinWidget widget(traj);
    Tracer::global().clear(); // drop construction-time spans

    const auto t = widget.setCutoff(6.0);
    const auto spans = Tracer::global().collect();
    const auto* root = findSpan(spans, "widget.set_cutoff");
    ASSERT_NE(root, nullptr);
    expectConnectedTree(spans, root->traceId);

    const auto* layout = findSpan(spans, "widget.layout");
    const auto* measure = findSpan(spans, "widget.measure");
    const auto* serialize = findSpan(spans, "widget.serialize");
    const auto* network = findSpan(spans, "widget.network_update");
    ASSERT_TRUE(layout && measure && serialize && network);
    // Identical clock reads, not merely close: the timing struct is filled
    // from ScopedSpan::finishMs.
    EXPECT_DOUBLE_EQ(layout->durationMs(), t.layoutMs);
    EXPECT_DOUBLE_EQ(measure->durationMs(), t.measureMs);
    EXPECT_DOUBLE_EQ(serialize->durationMs(), t.serializeMs);
    EXPECT_DOUBLE_EQ(network->durationMs(), t.networkUpdateMs);

    // Phase spans partition the root: their sum cannot exceed it, and the
    // phases the timing struct reports account for most of it.
    const double phaseSum = obs::spanTotalMs(spans, "widget.network_update") +
                            obs::spanTotalMs(spans, "widget.layout") +
                            obs::spanTotalMs(spans, "widget.measure") +
                            obs::spanTotalMs(spans, "widget.scene_build") +
                            obs::spanTotalMs(spans, "widget.serialize");
    EXPECT_LE(phaseSum, root->durationMs() + 1e-6);
    EXPECT_NEAR(phaseSum, t.serverMs(), 1e-9);
}

TEST_F(ObsTest, ColdLayoutEmitsHierarchyAttrsAndLevelSpans) {
    // Construction runs the cold multilevel V-cycle (200 residues is well
    // above the coarsest-size threshold, so the hierarchy is non-trivial).
    const auto traj = slowTrajectory();
    viz::RinWidget widget(traj);

    auto spans = Tracer::global().collect();
    const auto* layout = findSpan(spans, "widget.layout");
    ASSERT_NE(layout, nullptr);
    EXPECT_DOUBLE_EQ(numAttrOr(*layout, "warm_start", -1.0), 0.0);
    EXPECT_GT(numAttrOr(*layout, "iterations_done", 0.0), 0.0);
    EXPECT_NE(numAttrOr(*layout, "converged", -1.0), -1.0);
    const double levels = numAttrOr(*layout, "levels", 0.0);
    EXPECT_GE(levels, 2.0) << "200 residues must coarsen at least once";
    const double coarsest = numAttrOr(*layout, "coarsest_nodes", 0.0);
    EXPECT_GT(coarsest, 0.0);
    EXPECT_LT(coarsest, 200.0);

    // One child span per V-cycle level, all inside the layout span's trace.
    count levelSpans = 0;
    for (const auto& s : spans) {
        if (s.name != "layout.level") continue;
        ++levelSpans;
        EXPECT_EQ(s.traceId, layout->traceId);
        EXPECT_EQ(s.parentId, layout->spanId);
        EXPECT_GE(numAttrOr(s, "nodes", 0.0), 1.0);
        EXPECT_GE(numAttrOr(s, "iterations", -1.0), 0.0);
    }
    EXPECT_EQ(static_cast<double>(levelSpans), levels);

    // A warm slider move takes the capped single-level polish: no
    // hierarchy, and the attrs say so.
    Tracer::global().clear();
    widget.setCutoff(5.5);
    spans = Tracer::global().collect();
    const auto* warm = findSpan(spans, "widget.layout");
    ASSERT_NE(warm, nullptr);
    EXPECT_DOUBLE_EQ(numAttrOr(*warm, "warm_start", -1.0), 1.0);
    EXPECT_DOUBLE_EQ(numAttrOr(*warm, "levels", -1.0), 1.0);
    EXPECT_GT(numAttrOr(*warm, "iterations_done", 0.0), 0.0);
}

TEST_F(ObsTest, SessionServiceRequestFormsOneCrossThreadTree) {
    const auto traj = tinyTrajectory();
    serve::SessionService service;
    const auto session = service.openSession(traj);
    service.drain();
    Tracer::global().clear(); // keep only the one request under test

    auto future = service.submit(session, serve::SliderEvent::setCutoff(6.5));
    const auto outcome = future.get();
    service.drain();
    EXPECT_TRUE(outcome.accepted());

    const auto spans = Tracer::global().collect();
    const auto* root = findSpan(spans, "serve.request");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parentId, 0u);
    expectConnectedTree(spans, root->traceId);

    // The request's lifecycle spans all joined the root's trace.
    std::set<std::uint32_t> tids;
    count inTrace = 0;
    for (const char* name : {"serve.enqueue", "serve.queue_wait", "serve.execute",
                             "widget.set_cutoff", "widget.layout"}) {
        const auto* s = findSpan(spans, name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_EQ(s->traceId, root->traceId) << name;
        ++inTrace;
        tids.insert(s->tid);
    }
    EXPECT_EQ(inTrace, 5u);
    // Submitted on this thread, executed on a worker: the one tree spans
    // at least two threads.
    EXPECT_GE(tids.size(), 2u);

    // Exporter round-trip: the Chrome trace parses with the in-repo JSON
    // parser and carries one complete event per span plus per-thread
    // metadata, and the execute phase fits inside the request total.
    const std::string json = obs::toChromeTraceJson(spans);
    const auto parsed = JsonValue::parse(json);
    EXPECT_EQ(parsed.at("displayTimeUnit").asString(), "ms");
    const auto& events = parsed.at("traceEvents");
    std::set<std::uint32_t> allTids;
    for (const auto& s : spans) allTids.insert(s.tid);
    ASSERT_EQ(events.size(), spans.size() + allTids.size());
    double requestDurUs = 0.0, executeDurUs = 0.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto& e = events.at(i);
        if (e.at("ph").asString() != "X") continue;
        if (e.at("name").asString() == "serve.request") requestDurUs = e.at("dur").asNumber();
        if (e.at("name").asString() == "serve.execute") executeDurUs = e.at("dur").asNumber();
    }
    EXPECT_GT(executeDurUs, 0.0);
    EXPECT_LE(executeDurUs, requestDurUs + 1.0);
}

TEST_F(ObsTest, DeadlineMissForcesSamplingWhenHeadSaysNo) {
    Tracer::global().setSampleEvery(0); // head sampling keeps nothing...
    const auto traj = slowTrajectory();
    serve::SessionService service;
    const auto session = service.openSession(traj);
    service.drain();
    Tracer::global().clear();

    // The frame switch occupies the session; the cutoff event queues
    // behind it and blows its microscopic deadline.
    auto first = service.submit(session, serve::SliderEvent::setFrame(1));
    auto second = service.submit(session, serve::SliderEvent::setCutoff(7.5, 1e-6));
    first.get();
    const auto outcome = second.get();
    service.drain();
    ASSERT_TRUE(outcome.accepted());
    ASSERT_TRUE(outcome.deadlineMissed);

    const auto spans = Tracer::global().collect();
    // ...but the deadline-missed request is force-sampled from dequeue on:
    // its root, queue wait, and execution are all present.
    const auto* root = findSpan(spans, "serve.request");
    ASSERT_NE(root, nullptr);
    EXPECT_DOUBLE_EQ(numAttrOr(*root, "deadline_missed", 0.0), 1.0);
    EXPECT_NE(findSpan(spans, "serve.queue_wait"), nullptr);
    EXPECT_NE(findSpan(spans, "serve.execute"), nullptr);
    // The submit-side enqueue span predates the sampling flip and is the
    // one (documented) casualty.
    EXPECT_EQ(findSpan(spans, "serve.enqueue"), nullptr);
}

TEST_F(ObsTest, CoalescedSubmissionRecordsAbsorptionEvent) {
    const auto traj = slowTrajectory();
    serve::SessionService service;
    const auto session = service.openSession(traj);
    service.drain();
    Tracer::global().clear();

    // Occupy the session, then queue two cutoff events: the second
    // coalesces into the first's slot (latest wins).
    auto busy = service.submit(session, serve::SliderEvent::setFrame(1));
    auto stale = service.submit(session, serve::SliderEvent::setCutoff(5.0));
    auto fresh = service.submit(session, serve::SliderEvent::setCutoff(7.5));
    busy.get();
    const auto staleOutcome = stale.get();
    const auto freshOutcome = fresh.get();
    service.drain();
    EXPECT_TRUE(staleOutcome.accepted());
    EXPECT_EQ(freshOutcome.coalescedEvents, 1u);

    const auto spans = Tracer::global().collect();
    const auto* coalesce = findSpan(spans, "serve.coalesce");
    ASSERT_NE(coalesce, nullptr);
    EXPECT_DOUBLE_EQ(numAttrOr(*coalesce, "absorbed", 0.0), 1.0);
}

TEST_F(ObsTest, PrometheusExpositionRoundTrips) {
    serve::MetricsRegistry registry;
    // A phase name exercising every escape the exposition format defines
    // (backslash, quote, newline) — jsonEscape handles all three.
    const std::string phase = "server\"quoted\\slash\nnewline_ms";
    registry.recordLatency(phase, 12.0);
    registry.recordLatency(phase, 30.0);
    registry.recordLatency("server_ms", 5.0);
    registry.increment("completed", 3);
    registry.gaugeQueueDepth(4);
    const auto snap = registry.snapshot();

    const std::string text = obs::toPrometheusText(snap);
    const auto samples = obs::parsePrometheusText(text);

    const auto& stats = snap.histograms.at(phase);
    const std::string key = "rinkit_phase_latency_ms{phase=\"" + obs::promEscape(phase) + "\"";
    EXPECT_DOUBLE_EQ(samples.at(key + ",quantile=\"0.5\"}"), stats.p50Ms);
    EXPECT_DOUBLE_EQ(samples.at(key + ",quantile=\"0.95\"}"), stats.p95Ms);
    EXPECT_DOUBLE_EQ(samples.at(key + ",quantile=\"0.99\"}"), stats.p99Ms);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_phase_latency_ms_count{phase=\"" +
                                obs::promEscape(phase) + "\"}"),
                     2.0);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_phase_latency_ms_sum{phase=\"" +
                                obs::promEscape(phase) + "\"}"),
                     stats.meanMs * 2.0);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_events_total{event=\"completed\"}"), 3.0);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_queue_depth"), 4.0);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_queue_depth_max"), 4.0);

    EXPECT_THROW(obs::parsePrometheusText("no_value_here\n"), std::runtime_error);
}

TEST_F(ObsTest, MetricsScrapeThroughHubIngressAndGateway) {
    const auto traj = tinyTrajectory();
    auto cluster = cloud::Cluster::paperReferenceCluster();
    cloud::JupyterHub hub(cluster);
    serve::SessionService service;
    hub.attachService(service, traj);

    ASSERT_TRUE(hub.login("ada"));
    auto future = hub.routeUserRequest("ada", "10.0.0.7", serve::SliderEvent::refresh());
    ASSERT_TRUE(future.has_value());
    future->get();
    service.drain();

    // No gateway attached: the scrape resolves through the ingress alone.
    const auto body = hub.scrapeMetrics("10.0.0.9");
    ASSERT_TRUE(body.has_value());
    const auto samples = obs::parsePrometheusText(*body);
    EXPECT_GE(samples.at("rinkit_events_total{event=\"completed\"}"), 1.0);

    // With a gateway, the ACL decides: scrapers outside the allowed prefix
    // get nothing (and the denial is accounted as dropped egress).
    cloud::Gateway gateway;
    gateway.addRule({cloud::Gateway::Action::Allow, "10.0.", 443, "prometheus"});
    hub.attachGateway(gateway);
    EXPECT_TRUE(hub.scrapeMetrics("10.0.0.9").has_value());
    EXPECT_FALSE(hub.scrapeMetrics("203.0.113.5").has_value());
    EXPECT_GT(gateway.allowedBytes(), 0u);
    EXPECT_GT(gateway.defaultDeniedBytes(), 0u);
}

// -- SLO engine ---------------------------------------------------------------

/// A one-objective one-window config whose scaled windows are seconds, not
/// hours: short 5 s, long 60 s at timeScale 1/60.
obs::SloConfig fastLatencyConfig() {
    obs::SloConfig cfg;
    cfg.objectives = {{"latency", obs::SloKind::DeadlineAttainment, 0.99, 0.1}};
    cfg.windows = {{"fast", 300.0, 3600.0, 14.4, obs::SloState::FastBurn}};
    cfg.timeScale = 1.0 / 60.0;
    return cfg;
}

obs::SloSample goodSample() {
    obs::SloSample s;
    s.latencyMs = 10.0;
    s.deadlineMs = 100.0;
    return s;
}

obs::SloSample badSample() {
    obs::SloSample s;
    s.latencyMs = 250.0;
    s.deadlineMs = 100.0;
    return s;
}

TEST(SloEngine, BurnRateIsBadFractionOverBudget) {
    obs::EventLog::global().clearAll();
    obs::SloEngine engine(fastLatencyConfig());

    // A clean second of traffic: attainment 1, burn 0, Healthy.
    double t = 0.0;
    for (int i = 0; i < 100; ++i) engine.record(t += 0.01, goodSample());
    auto st = engine.evaluate(t);
    ASSERT_EQ(st.size(), 1u);
    EXPECT_EQ(st[0].state, obs::SloState::Healthy);
    EXPECT_DOUBLE_EQ(st[0].attainment, 1.0);
    EXPECT_DOUBLE_EQ(st[0].windows[0].shortBurn, 0.0);

    // Half the next second blows its deadline: bad fraction ~1/3 over the
    // window so far, burn = badFrac / (1 - 0.99) >> 14.4 on both windows.
    for (int i = 0; i < 50; ++i) {
        engine.record(t += 0.01, badSample());
        engine.record(t += 0.01, goodSample());
    }
    st = engine.evaluate(t);
    EXPECT_EQ(st[0].state, obs::SloState::FastBurn);
    EXPECT_TRUE(st[0].windows[0].firing);
    EXPECT_GT(st[0].windows[0].shortBurn, 14.4);
    EXPECT_GT(st[0].windows[0].longBurn, 14.4);
    EXPECT_GT(engine.fastBurnRate(), 14.4);
    EXPECT_NEAR(st[0].attainment,
                static_cast<double>(st[0].good) /
                    static_cast<double>(st[0].good + st[0].bad),
                1e-12);

    // Healthy -> FastBurn is one logged state change.
    EXPECT_EQ(engine.stateChanges(), 1u);
    EXPECT_EQ(obs::EventLog::global().countOf("slo_state_change"), 1u);
}

TEST(SloEngine, MultiWindowAlertUnfiresWhenShortWindowRecovers) {
    obs::SloEngine engine(fastLatencyConfig());
    // Scaled windows: short 5 s, long 60 s. A 5-second burst of pure
    // failure fires the pair; fifteen clean seconds empty the short window
    // (still-happening check) while the long window stays hot.
    double t = 0.0;
    for (int i = 0; i < 250; ++i) engine.record(t += 0.02, badSample());
    auto st = engine.evaluate(t);
    ASSERT_TRUE(st[0].windows[0].firing);
    EXPECT_EQ(st[0].state, obs::SloState::FastBurn);

    for (int i = 0; i < 750; ++i) engine.record(t += 0.02, goodSample());
    st = engine.evaluate(t);
    EXPECT_FALSE(st[0].windows[0].firing) << "resolved spike must un-fire";
    EXPECT_GT(st[0].windows[0].longBurn, 14.4) << "long window still remembers";
    EXPECT_EQ(st[0].state, obs::SloState::Healthy);
}

TEST(SloEngine, ObjectiveKindsDeriveTheirOwnVerdicts) {
    obs::SloConfig cfg;
    cfg.objectives = obs::SloConfig::defaultObjectives();
    cfg.windows = {{"fast", 300.0, 3600.0, 1.0, obs::SloState::FastBurn}};
    cfg.timeScale = 1.0 / 60.0;
    obs::SloEngine engine(cfg);

    double t = 0.0;
    obs::SloSample rejected;
    rejected.rejected = true;
    engine.record(t += 0.01, rejected); // bad for shed only
    obs::SloSample stale = goodSample();
    stale.servedStale = true;
    engine.record(t += 0.01, stale); // bad for staleness only
    obs::SloSample overBudget = goodSample();
    overBudget.eps = 0.5; // above the 0.1 budget
    engine.record(t += 0.01, overBudget);
    engine.record(t += 0.01, goodSample());

    const auto st = engine.evaluate(t);
    ASSERT_EQ(st.size(), 3u);
    const auto byName = [&](std::string_view name) -> const obs::SloObjectiveStatus& {
        for (const auto& s : st)
            if (s.name == name) return s;
        throw std::logic_error("objective missing");
    };
    // Latency: rejections are irrelevant, everything served was in time.
    EXPECT_EQ(byName("latency").bad, 0u);
    EXPECT_EQ(byName("latency").good, 3u);
    // Shed: exactly the rejected request is bad.
    EXPECT_EQ(byName("shed").bad, 1u);
    EXPECT_EQ(byName("shed").good, 3u);
    // Staleness: the stale answer and the over-budget eps are bad.
    EXPECT_EQ(byName("staleness").bad, 2u);
    EXPECT_EQ(byName("staleness").good, 1u);
}

TEST(SloEngine, SloJsonCarriesObjectiveStates) {
    obs::SloEngine engine(fastLatencyConfig());
    engine.record(0.5, goodSample());
    engine.evaluate(1.0);
    const auto parsed = JsonValue::parse(engine.toJson());
    const auto& objectives = parsed.at("objectives");
    ASSERT_EQ(objectives.size(), 1u);
    EXPECT_EQ(objectives.at(0).at("name").asString(), "latency");
    EXPECT_EQ(objectives.at(0).at("state").asString(), "healthy");
    EXPECT_DOUBLE_EQ(objectives.at(0).at("attainment").asNumber(), 1.0);
    ASSERT_EQ(objectives.at(0).at("windows").size(), 1u);
    EXPECT_EQ(objectives.at(0).at("windows").at(0).at("window").asString(), "fast");
}

TEST(SloEngine, PrometheusExpositionOfBurnState) {
    obs::SloEngine engine(fastLatencyConfig());
    double t = 0.0;
    for (int i = 0; i < 100; ++i) engine.record(t += 0.01, badSample());
    engine.evaluate(t);

    const std::string text = obs::sloToPrometheusText(engine.status());
    const auto samples = obs::parsePrometheusText(text);
    EXPECT_EQ(samples.at("rinkit_slo_state{objective=\"latency\"}"), 2.0);
    EXPECT_EQ(samples.at("rinkit_slo_firing{objective=\"latency\",window=\"fast\"}"), 1.0);
    EXPECT_GT(samples.at("rinkit_slo_burn_rate{objective=\"latency\",window=\"fast\","
                         "horizon=\"short\"}"),
              14.4);
    EXPECT_LT(samples.at("rinkit_slo_attainment{objective=\"latency\"}"), 0.5);
}

// -- ops event log ------------------------------------------------------------

TEST(EventLog, BoundedRingKeepsNewestAndCounts) {
    auto& log = obs::EventLog::global();
    log.clearAll();
    log.setCapacity(3);
    for (int i = 0; i < 5; ++i)
        log.log("autoscale_up", "replicas " + std::to_string(i) + " -> " +
                                     std::to_string(i + 1));
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.totalLogged(), 5u);
    EXPECT_EQ(log.countOf("autoscale_up"), 3u);
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events.front().detail, "replicas 2 -> 3"); // oldest kept
    EXPECT_EQ(events.back().detail, "replicas 4 -> 5");
    log.setCapacity(obs::EventLog::kDefaultCapacity);
    log.clearAll();
}

TEST(EventLog, JsonLinesParseAndStampActiveTrace) {
    auto& tracer = Tracer::global();
    tracer.setEnabled(true);
    tracer.setSampleEvery(1);
    auto& log = obs::EventLog::global();
    log.clearAll();

    std::uint64_t expectedTrace = 0;
    {
        ScopedSpan span("ops.window");
        expectedTrace = tracer.currentContext().traceId;
        // Zero traceId: the log resolves the calling thread's live trace.
        log.log("degrade_transition", "none -> approx", 0, "2");
    }
    log.log("wire_resync", "forced keyframe"); // outside any span: trace 0

    const std::string lines = log.toJsonLines();
    std::vector<JsonValue> parsed;
    std::size_t start = 0;
    while (start < lines.size()) {
        const auto end = lines.find('\n', start);
        parsed.push_back(JsonValue::parse(lines.substr(start, end - start)));
        if (end == std::string::npos) break;
        start = end + 1;
    }
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].at("type").asString(), "degrade_transition");
    EXPECT_EQ(parsed[0].at("detail").asString(), "none -> approx");
    EXPECT_DOUBLE_EQ(parsed[0].at("trace_id").asNumber(),
                     static_cast<double>(expectedTrace));
    EXPECT_EQ(parsed[0].at("replica").asString(), "2");
    EXPECT_EQ(parsed[1].at("type").asString(), "wire_resync");
    EXPECT_DOUBLE_EQ(parsed[1].at("trace_id").asNumber(), 0.0);

    tracer.setEnabled(false);
    tracer.clear();
    log.clearAll();
}

// -- tail sampler -------------------------------------------------------------

TEST_F(ObsTest, TailSamplerRetentionPriorityAndReasons) {
    obs::TailSamplerOptions opts;
    opts.baselineEvery = 0; // no uniform keeps: reasons below are exact
    obs::TailSampler sampler(opts);

    // Priority: deadline miss > shed > degraded, regardless of the other
    // flags set alongside.
    obs::TailVerdict all;
    all.durationMs = 5.0;
    all.deadlineMissed = true;
    all.rejected = true;
    all.degraded = true;
    sampler.open(1);
    EXPECT_EQ(sampler.finish(1, all), obs::RetainReason::DeadlineMiss);

    obs::TailVerdict shed;
    shed.rejected = true;
    shed.degraded = true;
    sampler.open(2);
    EXPECT_EQ(sampler.finish(2, shed), obs::RetainReason::Shed);

    obs::TailVerdict degraded;
    degraded.durationMs = 5.0;
    degraded.degraded = true;
    sampler.open(3);
    EXPECT_EQ(sampler.finish(3, degraded), obs::RetainReason::Degraded);

    obs::TailVerdict healthy;
    healthy.durationMs = 5.0;
    sampler.open(4);
    EXPECT_EQ(sampler.finish(4, healthy), obs::RetainReason::None);

    EXPECT_TRUE(sampler.isRetained(1));
    EXPECT_TRUE(sampler.isRetained(2));
    EXPECT_TRUE(sampler.isRetained(3));
    EXPECT_FALSE(sampler.isRetained(4));
    const auto stats = sampler.stats();
    EXPECT_EQ(stats.retainedDeadlineMiss, 1u);
    EXPECT_EQ(stats.retainedShed, 1u);
    EXPECT_EQ(stats.retainedDegraded, 1u);
    EXPECT_EQ(stats.retainedBaseline, 0u);
    EXPECT_EQ(stats.discarded, 1u);
}

TEST_F(ObsTest, TailSamplerOutlierAndBaseline) {
    obs::TailSamplerOptions opts;
    opts.baselineEvery = 100; // first finish is a baseline keep, then none
    opts.minOutlierSamples = 16;
    opts.outlierWindow = 64;
    obs::TailSampler sampler(opts);

    std::uint64_t id = 1;
    count outliers = 0;
    count baselines = 0;
    obs::TailVerdict healthy;
    healthy.durationMs = 1.0;
    for (int i = 0; i < 40; ++i) {
        sampler.open(id);
        const auto reason = sampler.finish(id++, healthy);
        if (reason == obs::RetainReason::Outlier) ++outliers;
        if (reason == obs::RetainReason::Baseline) ++baselines;
    }
    EXPECT_EQ(outliers, 0u) << "uniform durations have no outliers";
    EXPECT_EQ(baselines, 1u) << "every-100th baseline keeps exactly the first";

    // A duration far above the rolling p99 is kept as an outlier now that
    // the window has its minimum samples.
    obs::TailVerdict slow;
    slow.durationMs = 500.0;
    sampler.open(id);
    EXPECT_EQ(sampler.finish(id++, slow), obs::RetainReason::Outlier);
}

TEST_F(ObsTest, TailSamplerBoundsEvictionAndPendingOverflow) {
    obs::TailSamplerOptions opts;
    opts.maxRetained = 2;
    opts.maxPending = 2;
    opts.maxSpansPerTrace = 1;
    opts.baselineEvery = 0;
    obs::TailSampler sampler(opts);
    sampler.install();

    // Three retained misses through a 2-slot ring: the oldest evicts and
    // its id stops resolving (the exemplar-filter contract).
    obs::TailVerdict miss;
    miss.deadlineMissed = true;
    for (std::uint64_t id = 1; id <= 3; ++id) {
        sampler.open(id);
        sampler.finish(id, miss);
    }
    EXPECT_FALSE(sampler.isRetained(1));
    EXPECT_TRUE(sampler.isRetained(2));
    EXPECT_TRUE(sampler.isRetained(3));
    EXPECT_EQ(sampler.stats().evicted, 1u);
    EXPECT_EQ(sampler.retained().size(), 2u);

    // Pending bound: the third concurrently open root is not buffered,
    // but its verdict still rules.
    sampler.open(10);
    sampler.open(11);
    sampler.open(12);
    EXPECT_EQ(sampler.stats().pendingOverflow, 1u);
    sampler.finish(12, miss);
    EXPECT_TRUE(sampler.isRetained(12));
    obs::TailVerdict healthy;
    sampler.finish(10, healthy);
    sampler.finish(11, healthy);

    // Span bound: a trace buffers at most maxSpansPerTrace spans, the rest
    // count as dropped.
    auto& tracer = Tracer::global();
    {
        const auto ctx = tracer.makeRootContext(obs::Sample::Force);
        obs::ContextScope scope(ctx);
        sampler.open(ctx.traceId);
        { ScopedSpan a("tail.one"); }
        { ScopedSpan b("tail.two"); }
        sampler.finish(ctx.traceId, miss);
    }
    EXPECT_GE(sampler.stats().droppedSpans, 1u);
    sampler.uninstall();
}

TEST_F(ObsTest, TailSamplerBuffersCompleteTreeViaSpanSink) {
    Tracer::global().setSampleEvery(0); // tail config: only forced roots
    obs::TailSampler sampler;
    sampler.install();

    auto& tracer = Tracer::global();
    const auto ctx = tracer.makeRootContext(obs::Sample::Force);
    const double startUs = tracer.nowUs();
    {
        obs::ContextScope scope(ctx);
        sampler.open(ctx.traceId);
        { ScopedSpan child("tail.child"); }
    }
    tracer.recordSpan("tail.root", ctx, ctx.spanId, 0, startUs, tracer.nowUs());
    obs::TailVerdict miss;
    miss.durationMs = 1.0;
    miss.deadlineMissed = true;
    ASSERT_EQ(sampler.finish(ctx.traceId, miss), obs::RetainReason::DeadlineMiss);

    const auto kept = sampler.retained();
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].traceId, ctx.traceId);
    ASSERT_EQ(kept[0].spans.size(), 2u);
    expectConnectedTree(sampler.retainedSpans(), ctx.traceId);
    sampler.uninstall();
    EXPECT_EQ(Tracer::global().spanSink(), nullptr);
}

TEST_F(ObsTest, TailSamplerConcurrentRetainEvictExport) {
    obs::TailSamplerOptions opts;
    opts.maxRetained = 16;
    obs::TailSampler sampler(opts);
    sampler.install();
    Tracer::global().setSampleEvery(0);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> retainedSeen{0};
    // Exporter threads hammer the read API while workers open/finish.
    std::thread scraper([&] {
        while (!stop.load()) {
            for (const auto id : sampler.retainedIds())
                if (sampler.isRetained(id)) retainedSeen.fetch_add(1);
            (void)sampler.retainedSpans();
            (void)sampler.stats();
        }
    });
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&, w] {
            auto& tracer = Tracer::global();
            for (int i = 0; i < 200; ++i) {
                const auto ctx = tracer.makeRootContext(obs::Sample::Force);
                obs::ContextScope scope(ctx);
                sampler.open(ctx.traceId);
                { ScopedSpan s("tail.work"); }
                obs::TailVerdict v;
                v.durationMs = 1.0 + i;
                v.deadlineMissed = (i + w) % 3 == 0;
                sampler.finish(ctx.traceId, v);
            }
        });
    }
    for (auto& t : workers) t.join();
    stop.store(true);
    scraper.join();
    // The scraper thread may have been starved entirely on a loaded
    // machine; a final pass from this thread keeps the check deterministic.
    for (const auto id : sampler.retainedIds())
        if (sampler.isRetained(id)) retainedSeen.fetch_add(1);
    sampler.uninstall();

    const auto stats = sampler.stats();
    EXPECT_EQ(stats.finished, 800u);
    EXPECT_GE(stats.retainedTotal(), stats.retainedDeadlineMiss);
    EXPECT_LE(sampler.retained().size(), opts.maxRetained);
    EXPECT_GT(retainedSeen.load(), 0u);
}

// -- exemplars ----------------------------------------------------------------

TEST(Exemplars, HistogramStampsAndExpositionRoundTrips) {
    serve::MetricsRegistry registry;
    registry.recordLatency("total_ms", 12.0, /*traceId=*/77, /*timestampUs=*/2'500'000.0);
    registry.recordLatency("total_ms", 30.0, /*traceId=*/91, /*timestampUs=*/3'500'000.0);
    const auto snap = registry.snapshot();
    const auto& stats = snap.histograms.at("total_ms");
    ASSERT_TRUE(stats.p99Ex.valid());
    EXPECT_EQ(stats.p99Ex.traceId, 91u);

    const std::string text = obs::toPrometheusText(snap);
    EXPECT_NE(text.find(" # {trace_id=\""), std::string::npos);

    // The classic parser tolerates (strips) the exemplar suffix...
    const auto samples = obs::parsePrometheusText(text);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_phase_latency_ms{phase=\"total_ms\","
                                "quantile=\"0.99\"}"),
                     stats.p99Ms);
    // ...and the exemplar parser reads it back: id, cited value, timestamp
    // in seconds.
    const auto exemplars = obs::parsePrometheusExemplars(text);
    const auto& ex = exemplars.at("rinkit_phase_latency_ms{phase=\"total_ms\","
                                  "quantile=\"0.99\"}");
    EXPECT_EQ(ex.traceId, 91u);
    EXPECT_DOUBLE_EQ(ex.value, 30.0);
    EXPECT_DOUBLE_EQ(ex.timestampSec, 3.5);
}

TEST(Exemplars, FilterDropsUnretainedIdsAtSnapshot) {
    serve::MetricsRegistry registry;
    registry.recordLatency("total_ms", 12.0, 77, 1.0);
    registry.recordLatency("total_ms", 30.0, 91, 2.0);
    registry.setExemplarFilter([](std::uint64_t id) { return id == 77; });
    const auto snap = registry.snapshot();
    // p50 cites trace 77 (kept); p99 cites trace 91 (filtered out).
    EXPECT_TRUE(snap.histograms.at("total_ms").p50Ex.valid());
    EXPECT_FALSE(snap.histograms.at("total_ms").p99Ex.valid());
    const auto exemplars = obs::parsePrometheusExemplars(obs::toPrometheusText(snap));
    for (const auto& [key, ex] : exemplars) EXPECT_EQ(ex.traceId, 77u) << key;
}

// -- serving path end to end --------------------------------------------------

/// Per-replica/session accounting invariant (PR 6): everything submitted
/// or adopted is eventually completed, coalesced, rejected, or handed off.
void expectAccountingInvariant(const serve::MetricsSnapshot& snap) {
    EXPECT_EQ(snap.counter("submitted") + snap.counter("adopted"),
              snap.counter("completed") + snap.counter("coalesced") +
                  snap.counter("rejected") + snap.counter("handed_off"));
}

TEST_F(ObsTest, TailSamplingForceRetainsEachRootExactlyOnce) {
    Tracer::global().setSampleEvery(0); // head sampling keeps nothing
    const auto traj = slowTrajectory();

    serve::SessionServiceOptions options;
    options.slo = std::make_shared<obs::SloEngine>();
    auto sampler = std::make_shared<obs::TailSampler>();
    sampler->install();
    options.tailSampler = sampler;
    serve::SessionService service(options);
    const auto session = service.openSession(traj);
    service.drain();
    Tracer::global().clear();

    // Occupy the session, then blow a microscopic deadline: the miss is
    // retained by the tail verdict, not by the head escape hatch — and the
    // root span exists exactly once (Force short-circuits the head draw;
    // the deadline-miss flip finds the flag already set).
    auto first = service.submit(session, serve::SliderEvent::setFrame(1));
    auto second = service.submit(session, serve::SliderEvent::setCutoff(7.5, 1e-6));
    const auto firstOutcome = first.get();
    const auto outcome = second.get();
    service.drain();
    ASSERT_TRUE(outcome.accepted());
    ASSERT_TRUE(outcome.deadlineMissed);
    EXPECT_EQ(outcome.sloVerdict, serve::SloVerdict::DeadlineMissed);
    EXPECT_NE(outcome.traceId, 0u);
    EXPECT_TRUE(outcome.traceRetained);
    EXPECT_TRUE(sampler->isRetained(outcome.traceId));

    // Both requests were forced roots; each trace has exactly one root.
    const auto spans = Tracer::global().collect();
    for (const std::uint64_t traceId : {firstOutcome.traceId, outcome.traceId}) {
        ASSERT_NE(traceId, 0u);
        count roots = 0;
        for (const auto& s : spans)
            if (s.traceId == traceId && s.parentId == 0) ++roots;
        EXPECT_EQ(roots, 1u) << "trace " << traceId;
        expectConnectedTree(spans, traceId);
    }
    EXPECT_GE(sampler->stats().retainedDeadlineMiss, 1u);
    expectAccountingInvariant(service.metrics());
    sampler->uninstall();
}

TEST_F(ObsTest, ExportedExemplarsAlwaysNameRetainedTraces) {
    Tracer::global().setSampleEvery(0);
    const auto traj = tinyTrajectory();

    serve::SessionServiceOptions options;
    options.slo = std::make_shared<obs::SloEngine>();
    auto sampler = std::make_shared<obs::TailSampler>();
    // A tiny ring forces evictions mid-run, so the snapshot-time filter —
    // not luck — is what keeps the property true.
    obs::TailSamplerOptions samplerOpts;
    samplerOpts.maxRetained = 4;
    samplerOpts.baselineEvery = 2;
    sampler = std::make_shared<obs::TailSampler>(samplerOpts);
    sampler->install();
    options.tailSampler = sampler;
    serve::SessionService service(options);
    const auto session = service.openSession(traj);

    for (int i = 0; i < 32; ++i)
        service.submit(session, serve::SliderEvent::setFrame(i % 3)).get();
    service.drain();

    const auto snap = service.metrics();
    const auto exemplars = obs::parsePrometheusExemplars(obs::toPrometheusText(snap));
    count checked = 0;
    for (const auto& [key, ex] : exemplars) {
        EXPECT_TRUE(sampler->isRetained(ex.traceId))
            << key << " cites evicted/unknown trace " << ex.traceId;
        ++checked;
    }
    EXPECT_GT(checked, 0u) << "baseline retention must produce some exemplars";
    expectAccountingInvariant(snap);
    sampler->uninstall();
}

TEST_F(ObsTest, DebugRoutesServeSloAndEventsThroughGatewayAcl) {
    obs::EventLog::global().clearAll();
    const auto traj = tinyTrajectory();
    auto cluster = cloud::Cluster::paperReferenceCluster();
    cloud::JupyterHub hub(cluster);

    serve::SessionServiceOptions options;
    options.slo = std::make_shared<obs::SloEngine>();
    serve::SessionService service(options);
    hub.attachService(service, traj);

    ASSERT_TRUE(hub.login("ada"));
    auto future = hub.routeUserRequest("ada", "10.0.0.7", serve::SliderEvent::refresh());
    ASSERT_TRUE(future.has_value());
    future->get();
    service.drain();
    options.slo->evaluate();
    obs::EventLog::global().log("autoscale_up", "replicas 1 -> 2");

    // Without a gateway the ingress route alone decides.
    const auto slo = hub.debugSlo("10.0.0.9");
    ASSERT_TRUE(slo.has_value());
    const auto parsed = JsonValue::parse(*slo);
    EXPECT_EQ(parsed.at("objectives").size(), 3u);

    const auto events = hub.debugEvents("10.0.0.9");
    ASSERT_TRUE(events.has_value());
    EXPECT_NE(events->find("\"type\":\"autoscale_up\""), std::string::npos);

    // The gateway ACL applies to the debug surfaces exactly like /metrics.
    cloud::Gateway gateway;
    gateway.addRule({cloud::Gateway::Action::Allow, "10.0.", 443, "ops"});
    hub.attachGateway(gateway);
    EXPECT_TRUE(hub.debugSlo("10.0.0.9").has_value());
    EXPECT_TRUE(hub.debugEvents("10.0.0.9").has_value());
    EXPECT_FALSE(hub.debugSlo("203.0.113.5").has_value());
    EXPECT_FALSE(hub.debugEvents("203.0.113.5").has_value());
    obs::EventLog::global().clearAll();
}

} // namespace
