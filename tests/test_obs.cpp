// Observability suite: span-tree integrity, context propagation across
// ThreadPool and SessionService thread boundaries, head sampling (and the
// always-sample-on-deadline-miss escape hatch), ring-buffer overwrite, and
// the exporters — Chrome trace JSON round-trips through the in-repo JSON
// parser, Prometheus exposition round-trips through parsePrometheusText.
// `ctest -L obs` runs this suite; scripts/verify.sh --obs adds TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cloud/cluster.hpp"
#include "src/cloud/gateway.hpp"
#include "src/cloud/jupyterhub.hpp"
#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/obs/exporters.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/metrics.hpp"
#include "src/serve/session_service.hpp"
#include "src/support/json.hpp"
#include "src/support/thread_pool.hpp"
#include "src/viz/widget.hpp"

namespace {

using namespace rinkit;
using obs::ScopedSpan;
using obs::SpanRecord;
using obs::Tracer;

/// Every test drives the process-global tracer; reset it on both sides so
/// suites do not observe each other's spans or sampling policy.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        auto& t = Tracer::global();
        t.setEnabled(true);
        t.setSampleEvery(1);
        t.clear();
    }
    void TearDown() override {
        auto& t = Tracer::global();
        t.setEnabled(false);
        t.setSampleEvery(1);
        t.clear();
    }
};

md::Trajectory tinyTrajectory(count frames = 3) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = frames;
    return md::TrajectoryGenerator(params).generate(md::chignolin());
}

// Large enough that one update cycle takes milliseconds, so a second
// submission reliably queues behind the first.
md::Trajectory slowTrajectory() {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 3;
    return md::TrajectoryGenerator(params).generate(md::helixBundle(200));
}

const SpanRecord* findSpan(const std::vector<SpanRecord>& spans, std::string_view name) {
    for (const auto& s : spans)
        if (s.name == name) return &s;
    return nullptr;
}

double numAttrOr(const SpanRecord& s, std::string_view key, double fallback) {
    for (const auto& a : s.attrs)
        if (!a.isString && a.key == key) return a.num;
    return fallback;
}

/// Structural invariants of one trace: exactly one root, every parent id
/// resolves to a span of the same trace, and following parents always
/// reaches the root (connected, acyclic).
void expectConnectedTree(const std::vector<SpanRecord>& spans, std::uint64_t traceId) {
    std::map<std::uint64_t, const SpanRecord*> byId;
    std::uint64_t rootId = 0;
    count roots = 0;
    for (const auto& s : spans) {
        if (s.traceId != traceId) continue;
        EXPECT_TRUE(byId.emplace(s.spanId, &s).second) << "duplicate span id";
        if (s.parentId == 0) {
            ++roots;
            rootId = s.spanId;
        }
    }
    EXPECT_EQ(roots, 1u) << "trace must have exactly one root";
    for (const auto& [id, span] : byId) {
        std::uint64_t cursor = id;
        std::set<std::uint64_t> visited;
        while (cursor != rootId) {
            ASSERT_TRUE(visited.insert(cursor).second) << "cycle in span tree";
            const auto it = byId.find(cursor);
            ASSERT_NE(it, byId.end()) << "span " << cursor << " unreachable from root";
            cursor = it->second->parentId;
            if (cursor == 0) break; // root reached via parentId
        }
    }
}

TEST_F(ObsTest, NestedScopesFormOneTree) {
    {
        ScopedSpan root("unit.root");
        {
            ScopedSpan child("unit.child");
            ScopedSpan grandchild("unit.grandchild");
        }
        ScopedSpan sibling("unit.sibling");
    }
    const auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 4u);

    const auto* root = findSpan(spans, "unit.root");
    const auto* child = findSpan(spans, "unit.child");
    const auto* grandchild = findSpan(spans, "unit.grandchild");
    const auto* sibling = findSpan(spans, "unit.sibling");
    ASSERT_TRUE(root && child && grandchild && sibling);

    EXPECT_EQ(root->parentId, 0u);
    EXPECT_EQ(child->parentId, root->spanId);
    EXPECT_EQ(grandchild->parentId, child->spanId);
    EXPECT_EQ(sibling->parentId, root->spanId);
    for (const auto* s : {child, grandchild, sibling})
        EXPECT_EQ(s->traceId, root->traceId);
    expectConnectedTree(spans, root->traceId);

    // Children are contained in their parent's interval (same clock).
    EXPECT_GE(child->startUs, root->startUs);
    EXPECT_LE(child->endUs, root->endUs);
    EXPECT_GE(grandchild->startUs, child->startUs);
    EXPECT_LE(grandchild->endUs, child->endUs);
}

TEST_F(ObsTest, FinishMsMatchesRecordedDuration) {
    ScopedSpan span("unit.timed");
    const double ms = span.finishMs();
    const auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 1u);
    // finishMs is the single pair of clock reads: the record must agree
    // exactly — this is what makes UpdateTiming "derived from spans".
    EXPECT_DOUBLE_EQ(spans[0].durationMs(), ms);
    EXPECT_DOUBLE_EQ(span.finishMs(), ms) << "finishMs must be idempotent";
}

TEST_F(ObsTest, AttributesAreRecorded) {
    {
        ScopedSpan span("unit.attrs");
        span.attr("cache_hit", true);
        span.attr("frontier_size", count{42});
        span.attr("phase", "layout");
    }
    const auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_DOUBLE_EQ(numAttrOr(spans[0], "cache_hit", -1.0), 1.0);
    EXPECT_DOUBLE_EQ(numAttrOr(spans[0], "frontier_size", -1.0), 42.0);
    bool sawPhase = false;
    for (const auto& a : spans[0].attrs)
        if (a.isString && a.key == "phase" && a.str == "layout") sawPhase = true;
    EXPECT_TRUE(sawPhase);
}

TEST_F(ObsTest, ContextPropagatesAcrossThreadPool) {
    std::uint64_t rootTrace = 0, rootSpan = 0;
    {
        ScopedSpan root("unit.submit_side");
        rootTrace = root.context().traceId;
        rootSpan = root.context().spanId;
        std::promise<void> done;
        ThreadPool pool(2);
        pool.submit([&done] {
            ScopedSpan worker("unit.worker_side");
            done.set_value();
        });
        done.get_future().wait();
    }
    const auto spans = Tracer::global().collect();
    const auto* worker = findSpan(spans, "unit.worker_side");
    ASSERT_NE(worker, nullptr);
    // The worker span joined the submitter's trace across the queue hop...
    EXPECT_EQ(worker->traceId, rootTrace);
    EXPECT_EQ(worker->parentId, rootSpan);
    // ...and really ran on another thread (distinct export track).
    const auto* root = findSpan(spans, "unit.submit_side");
    ASSERT_NE(root, nullptr);
    EXPECT_NE(worker->tid, root->tid);
    expectConnectedTree(spans, rootTrace);
}

TEST_F(ObsTest, HeadSamplingKeepsEveryNth) {
    Tracer::global().setSampleEvery(3);
    for (int i = 0; i < 9; ++i) ScopedSpan span("unit.sampled_root");
    const auto spans = Tracer::global().collect();
    EXPECT_EQ(spans.size(), 3u);
}

TEST_F(ObsTest, RingBufferKeepsMostRecentSpans) {
    auto& tracer = Tracer::global();
    tracer.setRingCapacity(16);
    for (int i = 0; i < 100; ++i) {
        ScopedSpan span("unit.ring");
        span.attr("i", static_cast<double>(i));
    }
    const auto spans = tracer.collect();
    ASSERT_EQ(spans.size(), 16u);
    // Oldest entries were overwritten: only the tail survives, in order.
    for (std::size_t k = 0; k < spans.size(); ++k)
        EXPECT_DOUBLE_EQ(numAttrOr(spans[k], "i", -1.0), static_cast<double>(84 + k));
    tracer.setRingCapacity(8192);
}

TEST_F(ObsTest, DisabledTracerRecordsNothingButStillTimes) {
    Tracer::global().setEnabled(false);
    ScopedSpan span("unit.dark");
    EXPECT_GE(span.finishMs(), 0.0);
    EXPECT_TRUE(Tracer::global().collect().empty());
}

TEST_F(ObsTest, WidgetUpdateTimingIsDerivedFromSpans) {
    const auto traj = tinyTrajectory();
    viz::RinWidget widget(traj);
    Tracer::global().clear(); // drop construction-time spans

    const auto t = widget.setCutoff(6.0);
    const auto spans = Tracer::global().collect();
    const auto* root = findSpan(spans, "widget.set_cutoff");
    ASSERT_NE(root, nullptr);
    expectConnectedTree(spans, root->traceId);

    const auto* layout = findSpan(spans, "widget.layout");
    const auto* measure = findSpan(spans, "widget.measure");
    const auto* serialize = findSpan(spans, "widget.serialize");
    const auto* network = findSpan(spans, "widget.network_update");
    ASSERT_TRUE(layout && measure && serialize && network);
    // Identical clock reads, not merely close: the timing struct is filled
    // from ScopedSpan::finishMs.
    EXPECT_DOUBLE_EQ(layout->durationMs(), t.layoutMs);
    EXPECT_DOUBLE_EQ(measure->durationMs(), t.measureMs);
    EXPECT_DOUBLE_EQ(serialize->durationMs(), t.serializeMs);
    EXPECT_DOUBLE_EQ(network->durationMs(), t.networkUpdateMs);

    // Phase spans partition the root: their sum cannot exceed it, and the
    // phases the timing struct reports account for most of it.
    const double phaseSum = obs::spanTotalMs(spans, "widget.network_update") +
                            obs::spanTotalMs(spans, "widget.layout") +
                            obs::spanTotalMs(spans, "widget.measure") +
                            obs::spanTotalMs(spans, "widget.scene_build") +
                            obs::spanTotalMs(spans, "widget.serialize");
    EXPECT_LE(phaseSum, root->durationMs() + 1e-6);
    EXPECT_NEAR(phaseSum, t.serverMs(), 1e-9);
}

TEST_F(ObsTest, ColdLayoutEmitsHierarchyAttrsAndLevelSpans) {
    // Construction runs the cold multilevel V-cycle (200 residues is well
    // above the coarsest-size threshold, so the hierarchy is non-trivial).
    const auto traj = slowTrajectory();
    viz::RinWidget widget(traj);

    auto spans = Tracer::global().collect();
    const auto* layout = findSpan(spans, "widget.layout");
    ASSERT_NE(layout, nullptr);
    EXPECT_DOUBLE_EQ(numAttrOr(*layout, "warm_start", -1.0), 0.0);
    EXPECT_GT(numAttrOr(*layout, "iterations_done", 0.0), 0.0);
    EXPECT_NE(numAttrOr(*layout, "converged", -1.0), -1.0);
    const double levels = numAttrOr(*layout, "levels", 0.0);
    EXPECT_GE(levels, 2.0) << "200 residues must coarsen at least once";
    const double coarsest = numAttrOr(*layout, "coarsest_nodes", 0.0);
    EXPECT_GT(coarsest, 0.0);
    EXPECT_LT(coarsest, 200.0);

    // One child span per V-cycle level, all inside the layout span's trace.
    count levelSpans = 0;
    for (const auto& s : spans) {
        if (s.name != "layout.level") continue;
        ++levelSpans;
        EXPECT_EQ(s.traceId, layout->traceId);
        EXPECT_EQ(s.parentId, layout->spanId);
        EXPECT_GE(numAttrOr(s, "nodes", 0.0), 1.0);
        EXPECT_GE(numAttrOr(s, "iterations", -1.0), 0.0);
    }
    EXPECT_EQ(static_cast<double>(levelSpans), levels);

    // A warm slider move takes the capped single-level polish: no
    // hierarchy, and the attrs say so.
    Tracer::global().clear();
    widget.setCutoff(5.5);
    spans = Tracer::global().collect();
    const auto* warm = findSpan(spans, "widget.layout");
    ASSERT_NE(warm, nullptr);
    EXPECT_DOUBLE_EQ(numAttrOr(*warm, "warm_start", -1.0), 1.0);
    EXPECT_DOUBLE_EQ(numAttrOr(*warm, "levels", -1.0), 1.0);
    EXPECT_GT(numAttrOr(*warm, "iterations_done", 0.0), 0.0);
}

TEST_F(ObsTest, SessionServiceRequestFormsOneCrossThreadTree) {
    const auto traj = tinyTrajectory();
    serve::SessionService service;
    const auto session = service.openSession(traj);
    service.drain();
    Tracer::global().clear(); // keep only the one request under test

    auto future = service.submit(session, serve::SliderEvent::setCutoff(6.5));
    const auto outcome = future.get();
    service.drain();
    EXPECT_TRUE(outcome.accepted());

    const auto spans = Tracer::global().collect();
    const auto* root = findSpan(spans, "serve.request");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parentId, 0u);
    expectConnectedTree(spans, root->traceId);

    // The request's lifecycle spans all joined the root's trace.
    std::set<std::uint32_t> tids;
    count inTrace = 0;
    for (const char* name : {"serve.enqueue", "serve.queue_wait", "serve.execute",
                             "widget.set_cutoff", "widget.layout"}) {
        const auto* s = findSpan(spans, name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_EQ(s->traceId, root->traceId) << name;
        ++inTrace;
        tids.insert(s->tid);
    }
    EXPECT_EQ(inTrace, 5u);
    // Submitted on this thread, executed on a worker: the one tree spans
    // at least two threads.
    EXPECT_GE(tids.size(), 2u);

    // Exporter round-trip: the Chrome trace parses with the in-repo JSON
    // parser and carries one complete event per span plus per-thread
    // metadata, and the execute phase fits inside the request total.
    const std::string json = obs::toChromeTraceJson(spans);
    const auto parsed = JsonValue::parse(json);
    EXPECT_EQ(parsed.at("displayTimeUnit").asString(), "ms");
    const auto& events = parsed.at("traceEvents");
    std::set<std::uint32_t> allTids;
    for (const auto& s : spans) allTids.insert(s.tid);
    ASSERT_EQ(events.size(), spans.size() + allTids.size());
    double requestDurUs = 0.0, executeDurUs = 0.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto& e = events.at(i);
        if (e.at("ph").asString() != "X") continue;
        if (e.at("name").asString() == "serve.request") requestDurUs = e.at("dur").asNumber();
        if (e.at("name").asString() == "serve.execute") executeDurUs = e.at("dur").asNumber();
    }
    EXPECT_GT(executeDurUs, 0.0);
    EXPECT_LE(executeDurUs, requestDurUs + 1.0);
}

TEST_F(ObsTest, DeadlineMissForcesSamplingWhenHeadSaysNo) {
    Tracer::global().setSampleEvery(0); // head sampling keeps nothing...
    const auto traj = slowTrajectory();
    serve::SessionService service;
    const auto session = service.openSession(traj);
    service.drain();
    Tracer::global().clear();

    // The frame switch occupies the session; the cutoff event queues
    // behind it and blows its microscopic deadline.
    auto first = service.submit(session, serve::SliderEvent::setFrame(1));
    auto second = service.submit(session, serve::SliderEvent::setCutoff(7.5, 1e-6));
    first.get();
    const auto outcome = second.get();
    service.drain();
    ASSERT_TRUE(outcome.accepted());
    ASSERT_TRUE(outcome.deadlineMissed);

    const auto spans = Tracer::global().collect();
    // ...but the deadline-missed request is force-sampled from dequeue on:
    // its root, queue wait, and execution are all present.
    const auto* root = findSpan(spans, "serve.request");
    ASSERT_NE(root, nullptr);
    EXPECT_DOUBLE_EQ(numAttrOr(*root, "deadline_missed", 0.0), 1.0);
    EXPECT_NE(findSpan(spans, "serve.queue_wait"), nullptr);
    EXPECT_NE(findSpan(spans, "serve.execute"), nullptr);
    // The submit-side enqueue span predates the sampling flip and is the
    // one (documented) casualty.
    EXPECT_EQ(findSpan(spans, "serve.enqueue"), nullptr);
}

TEST_F(ObsTest, CoalescedSubmissionRecordsAbsorptionEvent) {
    const auto traj = slowTrajectory();
    serve::SessionService service;
    const auto session = service.openSession(traj);
    service.drain();
    Tracer::global().clear();

    // Occupy the session, then queue two cutoff events: the second
    // coalesces into the first's slot (latest wins).
    auto busy = service.submit(session, serve::SliderEvent::setFrame(1));
    auto stale = service.submit(session, serve::SliderEvent::setCutoff(5.0));
    auto fresh = service.submit(session, serve::SliderEvent::setCutoff(7.5));
    busy.get();
    const auto staleOutcome = stale.get();
    const auto freshOutcome = fresh.get();
    service.drain();
    EXPECT_TRUE(staleOutcome.accepted());
    EXPECT_EQ(freshOutcome.coalescedEvents, 1u);

    const auto spans = Tracer::global().collect();
    const auto* coalesce = findSpan(spans, "serve.coalesce");
    ASSERT_NE(coalesce, nullptr);
    EXPECT_DOUBLE_EQ(numAttrOr(*coalesce, "absorbed", 0.0), 1.0);
}

TEST_F(ObsTest, PrometheusExpositionRoundTrips) {
    serve::MetricsRegistry registry;
    // A phase name exercising every escape the exposition format defines
    // (backslash, quote, newline) — jsonEscape handles all three.
    const std::string phase = "server\"quoted\\slash\nnewline_ms";
    registry.recordLatency(phase, 12.0);
    registry.recordLatency(phase, 30.0);
    registry.recordLatency("server_ms", 5.0);
    registry.increment("completed", 3);
    registry.gaugeQueueDepth(4);
    const auto snap = registry.snapshot();

    const std::string text = obs::toPrometheusText(snap);
    const auto samples = obs::parsePrometheusText(text);

    const auto& stats = snap.histograms.at(phase);
    const std::string key = "rinkit_phase_latency_ms{phase=\"" + obs::promEscape(phase) + "\"";
    EXPECT_DOUBLE_EQ(samples.at(key + ",quantile=\"0.5\"}"), stats.p50Ms);
    EXPECT_DOUBLE_EQ(samples.at(key + ",quantile=\"0.95\"}"), stats.p95Ms);
    EXPECT_DOUBLE_EQ(samples.at(key + ",quantile=\"0.99\"}"), stats.p99Ms);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_phase_latency_ms_count{phase=\"" +
                                obs::promEscape(phase) + "\"}"),
                     2.0);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_phase_latency_ms_sum{phase=\"" +
                                obs::promEscape(phase) + "\"}"),
                     stats.meanMs * 2.0);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_events_total{event=\"completed\"}"), 3.0);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_queue_depth"), 4.0);
    EXPECT_DOUBLE_EQ(samples.at("rinkit_queue_depth_max"), 4.0);

    EXPECT_THROW(obs::parsePrometheusText("no_value_here\n"), std::runtime_error);
}

TEST_F(ObsTest, MetricsScrapeThroughHubIngressAndGateway) {
    const auto traj = tinyTrajectory();
    auto cluster = cloud::Cluster::paperReferenceCluster();
    cloud::JupyterHub hub(cluster);
    serve::SessionService service;
    hub.attachService(service, traj);

    ASSERT_TRUE(hub.login("ada"));
    auto future = hub.routeUserRequest("ada", "10.0.0.7", serve::SliderEvent::refresh());
    ASSERT_TRUE(future.has_value());
    future->get();
    service.drain();

    // No gateway attached: the scrape resolves through the ingress alone.
    const auto body = hub.scrapeMetrics("10.0.0.9");
    ASSERT_TRUE(body.has_value());
    const auto samples = obs::parsePrometheusText(*body);
    EXPECT_GE(samples.at("rinkit_events_total{event=\"completed\"}"), 1.0);

    // With a gateway, the ACL decides: scrapers outside the allowed prefix
    // get nothing (and the denial is accounted as dropped egress).
    cloud::Gateway gateway;
    gateway.addRule({cloud::Gateway::Action::Allow, "10.0.", 443, "prometheus"});
    hub.attachGateway(gateway);
    EXPECT_TRUE(hub.scrapeMetrics("10.0.0.9").has_value());
    EXPECT_FALSE(hub.scrapeMetrics("203.0.113.5").has_value());
    EXPECT_GT(gateway.allowedBytes(), 0u);
    EXPECT_GT(gateway.defaultDeniedBytes(), 0u);
}

} // namespace
