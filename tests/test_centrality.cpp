// Tests for all centrality measures: exact values on closed-form graphs,
// cross-validation between exact and approximate algorithms, and API
// contracts (run-before-scores, ranking order).
#include <gtest/gtest.h>

#include <cmath>

#include "src/centrality/approx_betweenness.hpp"
#include "src/centrality/betweenness.hpp"
#include "src/centrality/closeness.hpp"
#include "src/centrality/core_decomposition.hpp"
#include "src/centrality/degree.hpp"
#include "src/centrality/eigenvector.hpp"
#include "src/centrality/pagerank.hpp"
#include "src/graph/generators.hpp"

namespace rinkit {
namespace {

Graph starGraph(count leaves) {
    Graph g(leaves + 1);
    for (node u = 1; u <= leaves; ++u) g.addEdge(0, u);
    return g;
}

Graph pathGraph(count n) {
    Graph g(n);
    for (node u = 0; u + 1 < n; ++u) g.addEdge(u, u + 1);
    return g;
}

TEST(Degree, RawAndNormalized) {
    const auto g = starGraph(5);
    DegreeCentrality raw(g);
    raw.run();
    EXPECT_DOUBLE_EQ(raw.score(0), 5.0);
    EXPECT_DOUBLE_EQ(raw.score(3), 1.0);
    DegreeCentrality norm(g, true);
    norm.run();
    EXPECT_DOUBLE_EQ(norm.score(0), 1.0);
    EXPECT_DOUBLE_EQ(norm.score(3), 0.2);
}

TEST(Degree, RankingSortedDescending) {
    const auto g = generators::karateClub();
    DegreeCentrality d(g);
    d.run();
    const auto r = d.ranking();
    ASSERT_EQ(r.size(), 34u);
    EXPECT_EQ(r[0].first, 33u); // degree 17
    EXPECT_EQ(r[1].first, 0u);  // degree 16
    for (count i = 1; i < r.size(); ++i) EXPECT_GE(r[i - 1].second, r[i].second);
}

TEST(Centrality, ScoresBeforeRunThrows) {
    const auto g = starGraph(3);
    DegreeCentrality d(g);
    EXPECT_THROW(d.scores(), std::logic_error);
    EXPECT_THROW(d.score(0), std::logic_error);
    EXPECT_THROW(d.ranking(), std::logic_error);
}

TEST(Closeness, StarCenterIsMaximal) {
    const auto g = starGraph(6);
    ClosenessCentrality c(g);
    c.run();
    EXPECT_DOUBLE_EQ(c.score(0), 1.0); // distance 1 to all, normalized
    for (node u = 1; u <= 6; ++u) EXPECT_LT(c.score(u), 1.0);
    EXPECT_DOUBLE_EQ(c.maximum(), 1.0);
}

TEST(Closeness, PathEndpointValue) {
    // P4: node 0 distances 0,1,2,3 -> closeness = 3/6 = 0.5 (normalized).
    const auto g = pathGraph(4);
    ClosenessCentrality c(g);
    c.run();
    EXPECT_DOUBLE_EQ(c.score(0), 0.5);
    EXPECT_DOUBLE_EQ(c.score(1), 3.0 / 4.0);
}

TEST(Closeness, DisconnectedWassermanFaust) {
    // Two K2s in a 4-node graph: each node reaches 1 node at distance 1.
    // WF: (r-1)/sum * (r-1)/(n-1) = 1/1 * 1/3.
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    ClosenessCentrality c(g);
    c.run();
    for (node u = 0; u < 4; ++u) EXPECT_DOUBLE_EQ(c.score(u), 1.0 / 3.0);
}

TEST(Closeness, IsolatedNodeScoresZero) {
    Graph g(3);
    g.addEdge(0, 1);
    ClosenessCentrality c(g);
    c.run();
    EXPECT_DOUBLE_EQ(c.score(2), 0.0);
}

TEST(Closeness, HarmonicVariant) {
    // P3 middle node: 1/1 + 1/1 = 2, normalized by (n-1)=2 -> 1.
    const auto g = pathGraph(3);
    ClosenessCentrality c(g, ClosenessCentrality::Variant::Harmonic);
    c.run();
    EXPECT_DOUBLE_EQ(c.score(1), 1.0);
    EXPECT_DOUBLE_EQ(c.score(0), (1.0 + 0.5) / 2.0);
}

TEST(Closeness, HarmonicHandlesDisconnection) {
    Graph g(3);
    g.addEdge(0, 1);
    ClosenessCentrality c(g, ClosenessCentrality::Variant::Harmonic);
    c.run();
    EXPECT_DOUBLE_EQ(c.score(0), 0.5);
    EXPECT_DOUBLE_EQ(c.score(2), 0.0);
}

TEST(Betweenness, StarCenter) {
    // Star S5: center lies on all C(5,2)=10 leaf pairs.
    const auto g = starGraph(5);
    Betweenness b(g);
    b.run();
    EXPECT_DOUBLE_EQ(b.score(0), 10.0);
    for (node u = 1; u <= 5; ++u) EXPECT_DOUBLE_EQ(b.score(u), 0.0);
}

TEST(Betweenness, PathGraphValues) {
    // P5: node i lies on i*(4-i) pairs.
    const auto g = pathGraph(5);
    Betweenness b(g);
    b.run();
    EXPECT_DOUBLE_EQ(b.score(0), 0.0);
    EXPECT_DOUBLE_EQ(b.score(1), 3.0);
    EXPECT_DOUBLE_EQ(b.score(2), 4.0);
    EXPECT_DOUBLE_EQ(b.score(3), 3.0);
    EXPECT_DOUBLE_EQ(b.score(4), 0.0);
}

TEST(Betweenness, CycleSplitsPathsEvenly) {
    // C4: for each node, the two opposite-corner paths pass through it with
    // multiplicity 1/2 each -> betweenness 0.5.
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 0);
    Betweenness b(g);
    b.run();
    for (node u = 0; u < 4; ++u) EXPECT_DOUBLE_EQ(b.score(u), 0.5);
}

TEST(Betweenness, NormalizedMaxIsOne) {
    const auto g = starGraph(9);
    Betweenness b(g, true);
    b.run();
    EXPECT_DOUBLE_EQ(b.score(0), 1.0);
}

TEST(Betweenness, DisconnectedGraph) {
    Graph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    Betweenness b(g);
    b.run();
    EXPECT_DOUBLE_EQ(b.score(1), 1.0);
    EXPECT_DOUBLE_EQ(b.score(4), 1.0);
    EXPECT_DOUBLE_EQ(b.score(0), 0.0);
}

TEST(ApproxBetweenness, CloseToExactNormalized) {
    const auto g = generators::karateClub();
    Betweenness exact(g, true);
    exact.run();
    ApproxBetweenness approx(g, 0.03, 0.05, 42);
    approx.run();
    EXPECT_GT(approx.numberOfSamples(), 100u);
    // RK guarantee: |approx - exact_normalized_by_pairs| <= eps w.h.p.
    // Our normalized exact divides by (n-1)(n-2)/2 which equals the number
    // of (unordered) pairs not containing u.
    for (node u = 0; u < 34; ++u) {
        EXPECT_NEAR(approx.score(u), exact.score(u), 0.05) << "node " << u;
    }
}

TEST(ApproxBetweenness, InvalidParametersThrow) {
    const auto g = generators::karateClub();
    EXPECT_THROW(ApproxBetweenness(g, 0.0, 0.1), std::invalid_argument);
    EXPECT_THROW(ApproxBetweenness(g, 1.5, 0.1), std::invalid_argument);
    EXPECT_THROW(ApproxBetweenness(g, 0.1, 0.0), std::invalid_argument);
}

TEST(ApproxBetweenness, TinyGraphIsZero) {
    const auto g = pathGraph(2);
    ApproxBetweenness a(g, 0.1, 0.1);
    a.run();
    EXPECT_DOUBLE_EQ(a.score(0), 0.0);
    EXPECT_DOUBLE_EQ(a.score(1), 0.0);
}

TEST(PageRank, SumsToOne) {
    const auto g = generators::karateClub();
    PageRank pr(g);
    pr.run();
    double sum = 0.0;
    for (double s : pr.scores()) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(pr.iterations(), 1u);
}

TEST(PageRank, RegularGraphIsUniform) {
    // On a cycle all nodes are equivalent.
    Graph g(10);
    for (node u = 0; u < 10; ++u) g.addEdge(u, (u + 1) % 10);
    PageRank pr(g);
    pr.run();
    for (node u = 0; u < 10; ++u) EXPECT_NEAR(pr.score(u), 0.1, 1e-9);
}

TEST(PageRank, SizeInvariantNormalization) {
    // Berberich-style scores: uniform == 1.0 regardless of n.
    for (count n : {10u, 50u}) {
        Graph g(n);
        for (node u = 0; u < n; ++u) g.addEdge(u, (u + 1) % static_cast<node>(n));
        PageRank pr(g, 0.85, 1e-10, 300, PageRank::Norm::SizeInvariant);
        pr.run();
        for (node u = 0; u < n; ++u) EXPECT_NEAR(pr.score(u), 1.0, 1e-6);
    }
}

TEST(PageRank, HubHasHighestScore) {
    const auto g = generators::karateClub();
    PageRank pr(g);
    pr.run();
    EXPECT_EQ(pr.ranking()[0].first, 33u);
}

TEST(PageRank, HandlesIsolatedNodes) {
    Graph g(3);
    g.addEdge(0, 1);
    PageRank pr(g);
    pr.run();
    double sum = 0.0;
    for (double s : pr.scores()) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(pr.score(2), 0.0);
}

TEST(PageRank, InvalidDampingThrows) {
    const auto g = pathGraph(3);
    EXPECT_THROW(PageRank(g, 0.0), std::invalid_argument);
    EXPECT_THROW(PageRank(g, 1.0), std::invalid_argument);
}

TEST(Eigenvector, StarCenterDominates) {
    const auto g = starGraph(8);
    EigenvectorCentrality ev(g);
    ev.run();
    for (node u = 1; u <= 8; ++u) {
        EXPECT_GT(ev.score(0), ev.score(u));
        EXPECT_NEAR(ev.score(u), ev.score(1), 1e-9); // leaves symmetric
    }
    // Unit L2 norm.
    double norm = 0.0;
    for (double s : ev.scores()) norm += s * s;
    EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(Eigenvector, CompleteGraphUniform) {
    const auto g = generators::erdosRenyi(6, 1.0);
    EigenvectorCentrality ev(g);
    ev.run();
    for (node u = 0; u < 6; ++u) EXPECT_NEAR(ev.score(u), 1.0 / std::sqrt(6.0), 1e-9);
}

TEST(Eigenvector, EdgelessGraphAllZero) {
    Graph g(4);
    EigenvectorCentrality ev(g);
    ev.run();
    for (node u = 0; u < 4; ++u) EXPECT_DOUBLE_EQ(ev.score(u), 0.0);
}

TEST(Katz, AutoAlphaConverges) {
    const auto g = generators::karateClub();
    KatzCentrality katz(g);
    katz.run();
    EXPECT_GT(katz.effectiveAlpha(), 0.0);
    EXPECT_LT(katz.effectiveAlpha(), 1.0);
    // Katz > beta for any node with neighbors.
    for (node u = 0; u < 34; ++u) EXPECT_GT(katz.score(u), 1.0);
    // Hub ordering: 33 has the largest degree and the densest neighborhood.
    EXPECT_EQ(katz.ranking()[0].first, 33u);
}

TEST(Katz, IsolatedNodeGetsBeta) {
    Graph g(3);
    g.addEdge(0, 1);
    KatzCentrality katz(g, 0.1, 2.0);
    katz.run();
    EXPECT_NEAR(katz.score(2), 2.0, 1e-9);
}

TEST(CoreDecomposition, CompleteGraph) {
    const auto g = generators::erdosRenyi(7, 1.0);
    CoreDecomposition core(g);
    core.run();
    EXPECT_EQ(core.maxCore(), 6u);
    for (node u = 0; u < 7; ++u) EXPECT_DOUBLE_EQ(core.score(u), 6.0);
}

TEST(CoreDecomposition, PathGraphIsOneCore) {
    const auto g = pathGraph(10);
    CoreDecomposition core(g);
    core.run();
    EXPECT_EQ(core.maxCore(), 1u);
}

TEST(CoreDecomposition, CliqueWithTail) {
    // K4 with a pendant path: clique nodes core 3, path nodes core 1.
    Graph g(6);
    for (node u = 0; u < 4; ++u) {
        for (node v = u + 1; v < 4; ++v) g.addEdge(u, v);
    }
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    CoreDecomposition core(g);
    core.run();
    EXPECT_DOUBLE_EQ(core.score(0), 3.0);
    EXPECT_DOUBLE_EQ(core.score(3), 3.0);
    EXPECT_DOUBLE_EQ(core.score(4), 1.0);
    EXPECT_DOUBLE_EQ(core.score(5), 1.0);
    EXPECT_EQ(core.maxCore(), 3u);
}

TEST(CoreDecomposition, KarateMaxCoreIsFour) {
    const auto g = generators::karateClub();
    CoreDecomposition core(g);
    core.run();
    EXPECT_EQ(core.maxCore(), 4u); // known value for Zachary's karate club
}

} // namespace
} // namespace rinkit
