// Replicated-serving suite: consistent-hash ring stability, autoscaler
// hysteresis, ReplicaSet sticky routing, loss-free scale-down migration
// (every queued future survives; the wire stream resyncs byte-equivalently
// to an unmigrated run), Cluster deployment reconcile, and the open-loop
// load generator. The concurrency test here is the one scripts/verify.sh
// --cluster runs under -fsanitize=thread.
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cloud/cluster.hpp"
#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/exporters.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/tail_sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/load_generator.hpp"
#include "src/serve/replica_set.hpp"
#include "src/serve/session_service.hpp"
#include "src/wire/scene_frame.hpp"

namespace {

using namespace rinkit;
using serve::Autoscaler;
using serve::AutoscalerOptions;
using serve::AutoscalerSignals;
using serve::ConsistentHashRing;
using serve::ReplicaSet;
using serve::ReplicaSetOptions;
using serve::RequestOutcome;
using serve::SessionService;
using serve::SliderEvent;

md::Trajectory smallTrajectory(count frames = 4) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = frames;
    return md::TrajectoryGenerator(params).generate(md::chignolin());
}

/// Per-replica accounting must hold with migration in the picture: every
/// submission or adoption ends in exactly one of the four terminal buckets.
void expectReplicaInvariant(const serve::MetricsSnapshot& snap) {
    EXPECT_EQ(snap.counter("submitted") + snap.counter("adopted"),
              snap.counter("completed") + snap.counter("coalesced") +
                  snap.counter("rejected") + snap.counter("handed_off"))
        << "replica=" << snap.replica;
}

// -- consistent hashing -------------------------------------------------------

TEST(ConsistentHashRing, OnlyFractionOfKeysMoveOnAdd) {
    ConsistentHashRing ring(64);
    for (count r = 0; r < 4; ++r) ring.add(r);

    const count keys = 1000;
    std::vector<count> before(keys);
    for (count k = 0; k < keys; ++k) before[k] = ring.route("user-" + std::to_string(k));

    ring.add(4);
    count moved = 0;
    for (count k = 0; k < keys; ++k) {
        const count owner = ring.route("user-" + std::to_string(k));
        if (owner != before[k]) {
            ++moved;
            // A key only ever moves TO the new replica, never between
            // survivors — that is the whole point of consistent hashing.
            EXPECT_EQ(owner, 4u);
        }
    }
    // Expect ~K/N = 200 moved; allow generous slack for vnode placement.
    EXPECT_GT(moved, keys / 10);
    EXPECT_LT(moved, keys / 2);

    // Removing the replica restores the exact original assignment.
    ring.remove(4);
    for (count k = 0; k < keys; ++k)
        EXPECT_EQ(ring.route("user-" + std::to_string(k)), before[k]);
}

TEST(ConsistentHashRing, SpreadsKeysAcrossReplicas) {
    ConsistentHashRing ring(64);
    for (count r = 0; r < 4; ++r) ring.add(r);
    std::map<count, count> perReplica;
    const count keys = 2000;
    for (count k = 0; k < keys; ++k) ++perReplica[ring.route("u" + std::to_string(k))];
    ASSERT_EQ(perReplica.size(), 4u);
    for (const auto& [replica, n] : perReplica) {
        EXPECT_GT(n, keys / 16) << "replica " << replica << " starved";
        EXPECT_LT(n, keys / 2) << "replica " << replica << " overloaded";
    }
}

// -- autoscaler hysteresis ----------------------------------------------------

TEST(Autoscaler, HoldsOnIsolatedHotTick) {
    Autoscaler as;
    AutoscalerSignals hot;
    hot.replicas = 1;
    hot.shedRate = 0.5;
    AutoscalerSignals cool;
    cool.replicas = 1;
    // One hot tick is noise, not load: upAfterTicks = 2 requires a streak.
    EXPECT_EQ(as.evaluate(hot), Autoscaler::Decision::Hold);
    EXPECT_EQ(as.evaluate(cool), Autoscaler::Decision::Hold);
    EXPECT_EQ(as.evaluate(hot), Autoscaler::Decision::Hold);
}

TEST(Autoscaler, NoFlappingUnderSquareWave) {
    AutoscalerOptions opts;
    opts.maxReplicas = 8;
    Autoscaler as(opts);

    count replicas = 1;
    count ups = 0;
    count downs = 0;
    count transitions = 0;
    Autoscaler::Decision last = Autoscaler::Decision::Hold;

    // Square wave: 12 overloaded ticks, then 12 idle ticks, five periods.
    for (count period = 0; period < 5; ++period) {
        for (count phase = 0; phase < 2; ++phase) {
            const bool hot = phase == 0;
            for (count t = 0; t < 12; ++t) {
                AutoscalerSignals s;
                s.replicas = replicas;
                s.shedRate = hot ? 0.2 : 0.0;
                s.queueDepthPerReplica = hot ? 50.0 : 0.0;
                const auto d = as.evaluate(s);
                if (d == Autoscaler::Decision::Up) {
                    ++replicas;
                    ++ups;
                    EXPECT_TRUE(hot) << "scaled up on an idle tick";
                } else if (d == Autoscaler::Decision::Down) {
                    --replicas;
                    ++downs;
                    EXPECT_FALSE(hot) << "scaled down on an overloaded tick";
                }
                if (d != Autoscaler::Decision::Hold && d != last) ++transitions;
                if (d != Autoscaler::Decision::Hold) last = d;
            }
        }
    }
    // Hysteresis bounds the reaction: with upAfter=2/cooldown=3 a 12-tick
    // hot phase allows at most 3 ups; downAfter=5/cooldown=3 allows at
    // most 2 downs per cold phase. No runaway flapping.
    EXPECT_LE(ups, 15u);
    EXPECT_LE(downs, 10u);
    EXPECT_GE(replicas, 1u);
    // Direction changes at most once per phase: <= 2 per period.
    EXPECT_LE(transitions, 10u);
}

TEST(Autoscaler, SloBurnRateAloneDrivesScaleUpAndBlocksScaleDown) {
    AutoscalerOptions opts; // sloBurnRateHigh = 14.4 (the page threshold)
    Autoscaler as(opts);

    // The budget is fast-burning but every queue/latency/shed signal is
    // quiet: the SLO signal alone must page the autoscaler — that is the
    // whole point of scaling on burn (it fires before queues back up).
    AutoscalerSignals burning;
    burning.replicas = 2;
    burning.sloFastBurnRate = 20.0;
    EXPECT_EQ(as.evaluate(burning), Autoscaler::Decision::Hold); // streak 1 of 2
    EXPECT_EQ(as.evaluate(burning), Autoscaler::Decision::Up);

    // A burn above lowLoadFraction * threshold (3.6) is not "cold": it
    // blocks scale-down indefinitely even though every other signal is at
    // zero — the budget is still being spent faster than steady state.
    AutoscalerSignals warm;
    warm.replicas = 3;
    warm.sloFastBurnRate = 5.0;
    for (count t = 0; t < opts.cooldownTicks + 3 * opts.downAfterTicks; ++t)
        EXPECT_EQ(as.evaluate(warm), Autoscaler::Decision::Hold);

    // Fully cooled burn releases the down path after the usual streak.
    AutoscalerSignals cold;
    cold.replicas = 3;
    cold.sloFastBurnRate = 1.0;
    Autoscaler::Decision last = Autoscaler::Decision::Hold;
    for (count t = 0; t < opts.downAfterTicks; ++t) last = as.evaluate(cold);
    EXPECT_EQ(last, Autoscaler::Decision::Down);

    // sloBurnRateHigh = 0 disables the signal: deployments without an SLO
    // engine neither page on the (never-set) burn nor block scale-down.
    AutoscalerOptions off;
    off.sloBurnRateHigh = 0.0;
    Autoscaler dark(off);
    AutoscalerSignals bogus;
    bogus.replicas = 1;
    bogus.sloFastBurnRate = 100.0;
    for (count t = 0; t < 4; ++t)
        EXPECT_EQ(dark.evaluate(bogus), Autoscaler::Decision::Hold);
}

// -- cluster deployment reconcile ---------------------------------------------

TEST(Cluster, DeletePodReconcilesDeploymentReplicas) {
    auto cluster = cloud::Cluster::paperReferenceCluster();
    cluster.createNamespace("apps");
    cluster.createServiceAccount("apps", "ops",
                                 {cloud::Permission::DeletePods, cloud::Permission::ListPods});
    cloud::Deployment dep;
    dep.name = "web";
    dep.replicas = 3;
    cluster.apply("apps", dep);
    ASSERT_EQ(cluster.deploymentReplicas("apps", "web"), 3u);

    const auto pods = cluster.pods("apps", "ops");
    ASSERT_EQ(pods.size(), 3u);
    cluster.deletePod("apps", "ops", pods.front().uid);

    // The fix under test: terminating a deployment-owned pod must not
    // leave the deployment's desired count stale.
    EXPECT_EQ(cluster.deploymentReplicas("apps", "web"), 2u);
    EXPECT_EQ(cluster.pods("apps", "ops").size(), 2u);
}

TEST(Cluster, ScaleDeploymentNeverReusesPodNames) {
    auto cluster = cloud::Cluster::paperReferenceCluster();
    cluster.createNamespace("apps");
    cloud::Deployment dep;
    dep.name = "web";
    dep.replicas = 1;
    cluster.apply("apps", dep);

    cluster.scaleDeployment("apps", "web", 3);
    EXPECT_EQ(cluster.deploymentReplicas("apps", "web"), 3u);
    EXPECT_EQ(cluster.pods("apps").size(), 3u);

    cluster.scaleDeployment("apps", "web", 1);
    EXPECT_EQ(cluster.pods("apps").size(), 1u);

    cluster.scaleDeployment("apps", "web", 2);
    std::set<std::string> names;
    for (const auto& pod : cluster.pods("apps")) names.insert(pod.spec.name);
    // Ordinals continue past the scale-down: web-0 (survivor) + web-3.
    EXPECT_TRUE(names.count("web-0"));
    EXPECT_TRUE(names.count("web-3"));
}

// -- replica set --------------------------------------------------------------

ReplicaSetOptions smallFleet(count replicas) {
    ReplicaSetOptions opts;
    opts.initialReplicas = replicas;
    opts.autoscaler.maxReplicas = 8;
    opts.serviceTemplate.workers = 2;
    return opts;
}

TEST(ReplicaSet, RoutesStickyAndSpreadsSessions) {
    const auto traj = smallTrajectory();
    ReplicaSet fleet(smallFleet(4));
    ASSERT_EQ(fleet.replicaCount(), 4u);

    std::vector<serve::SessionId> ids;
    std::set<count> replicasUsed;
    for (count u = 0; u < 32; ++u) {
        const auto id = fleet.openSession(traj, {}, "user-" + std::to_string(u));
        ids.push_back(id);
        replicasUsed.insert(fleet.sessionReplica(id));
    }
    EXPECT_GT(replicasUsed.size(), 1u) << "all sessions landed on one replica";
    EXPECT_EQ(fleet.activeSessions(), 32u);

    // Sticky: the same session stays on its replica across interactions.
    for (count round = 0; round < 3; ++round) {
        std::vector<std::future<RequestOutcome>> futures;
        for (count u = 0; u < ids.size(); ++u)
            futures.push_back(fleet.submit(ids[u], SliderEvent::setFrame(round % 4)));
        for (auto& f : futures) EXPECT_TRUE(f.get().accepted());
        for (count u = 0; u < ids.size(); ++u)
            EXPECT_EQ(fleet.sessionReplica(ids[u]),
                      fleet.routeOf("user-" + std::to_string(u)));
    }
    fleet.drain();
    expectReplicaInvariant(fleet.metrics());
}

TEST(ReplicaSet, ScaleUpMovesOnlyFractionOfSessions) {
    const auto traj = smallTrajectory();
    ReplicaSet fleet(smallFleet(3));

    std::map<serve::SessionId, count> before;
    for (count u = 0; u < 30; ++u) {
        const auto id = fleet.openSession(traj, {}, "user-" + std::to_string(u));
        before[id] = fleet.sessionReplica(id);
    }

    ASSERT_TRUE(fleet.scaleUp());
    EXPECT_EQ(fleet.replicaCount(), 4u);

    count moved = 0;
    for (const auto& [id, replica] : before)
        if (fleet.sessionReplica(id) != replica) ++moved;
    // ~K/N = 7.5 expected; anything near "all" means stickiness is broken.
    EXPECT_LT(moved, 20u);
    EXPECT_EQ(fleet.activeSessions(), 30u);

    // Every session still serves after the rebalance.
    std::vector<std::future<RequestOutcome>> futures;
    for (const auto& [id, replica] : before)
        futures.push_back(fleet.submit(id, SliderEvent::setCutoff(4.8)));
    for (auto& f : futures) EXPECT_TRUE(f.get().accepted());
    fleet.drain();
    expectReplicaInvariant(fleet.metrics());
}

TEST(ReplicaSet, ScaleDownHandsOffEveryQueuedFuture) {
    const auto traj = smallTrajectory();
    auto opts = smallFleet(2);
    opts.serviceTemplate.workers = 1; // keep queues full while we migrate
    ReplicaSet fleet(opts);

    std::vector<serve::SessionId> ids;
    for (count u = 0; u < 12; ++u)
        ids.push_back(fleet.openSession(traj, {}, "user-" + std::to_string(u)));

    // Queue distinct-kind events (nothing coalesces away) on every session,
    // then retire a replica while those queues are still full.
    std::vector<std::future<RequestOutcome>> futures;
    for (const auto id : ids) {
        futures.push_back(fleet.submit(id, SliderEvent::setFrame(1)));
        futures.push_back(fleet.submit(id, SliderEvent::setCutoff(4.8)));
        futures.push_back(fleet.submit(id, SliderEvent::setMeasure(viz::Measure::Degree)));
    }
    ASSERT_TRUE(fleet.scaleDown());
    EXPECT_EQ(fleet.replicaCount(), 1u);
    EXPECT_EQ(fleet.activeSessions(), 12u);

    // Loss-free: every queued future resolves, and none was rejected by
    // the migration itself.
    for (auto& f : futures) EXPECT_TRUE(f.get().accepted());
    fleet.drain();

    // Accounting: per live replica and globally, with the migration
    // counters balancing (everything handed off was adopted).
    for (const auto& snap : fleet.perReplicaMetrics()) expectReplicaInvariant(snap);
    const auto aggregate = fleet.metrics();
    expectReplicaInvariant(aggregate);
    EXPECT_EQ(aggregate.counter("handed_off"), aggregate.counter("adopted"));
    EXPECT_EQ(aggregate.counter("rejected"), 0u);
}

TEST(ReplicaSet, ScaleDownRefusedAtMinReplicas) {
    ReplicaSet fleet(smallFleet(1));
    EXPECT_FALSE(fleet.scaleDown());
    EXPECT_EQ(fleet.replicaCount(), 1u);
}

TEST(ReplicaSet, AggregateMetricsSurviveRetiredReplicas) {
    const auto traj = smallTrajectory();
    ReplicaSet fleet(smallFleet(2));
    std::vector<serve::SessionId> ids;
    for (count u = 0; u < 8; ++u)
        ids.push_back(fleet.openSession(traj, {}, "user-" + std::to_string(u)));
    std::vector<std::future<RequestOutcome>> futures;
    for (const auto id : ids) futures.push_back(fleet.submit(id, SliderEvent::setFrame(2)));
    for (auto& f : futures) f.get();
    fleet.drain();

    const count completedBefore = fleet.metrics().counter("completed");
    ASSERT_TRUE(fleet.scaleDown());
    // The retired replica's history must not vanish from the aggregate.
    EXPECT_GE(fleet.metrics().counter("completed"), completedBefore);

    const auto perReplica = fleet.perReplicaMetrics();
    ASSERT_EQ(perReplica.size(), 1u);
    EXPECT_FALSE(perReplica.front().replica.empty());
    EXPECT_TRUE(fleet.metrics().replica.empty()) << "aggregate must stay unlabeled";
}

TEST(ReplicaSet, ClusterBoundScalingTracksDeployment) {
    auto cluster = cloud::Cluster::paperReferenceCluster(2);
    auto opts = smallFleet(1);
    opts.cluster = &cluster;
    ReplicaSet fleet(opts);
    ASSERT_TRUE(cluster.hasNamespace(opts.clusterNamespace));
    EXPECT_EQ(cluster.deploymentReplicas(opts.clusterNamespace, opts.deploymentName), 1u);

    ASSERT_TRUE(fleet.scaleUp());
    EXPECT_EQ(cluster.deploymentReplicas(opts.clusterNamespace, opts.deploymentName), 2u);
    ASSERT_TRUE(fleet.scaleDown());
    EXPECT_EQ(cluster.deploymentReplicas(opts.clusterNamespace, opts.deploymentName), 1u);
}

TEST(ReplicaSet, ScaleUpRefusedWhenClusterFull) {
    // One worker that fits exactly one paper-sized pod: the second replica
    // has nowhere to go, and the deployment must roll back.
    cloud::Cluster cluster;
    cluster.addNode("m0", cloud::NodeRole::Master, cloud::kPaperControlPlaneNode);
    cluster.addNode("w0", cloud::NodeRole::Worker, cloud::kPaperInstanceLimit);
    auto opts = smallFleet(1);
    opts.cluster = &cluster;
    ReplicaSet fleet(opts);

    EXPECT_FALSE(fleet.scaleUp());
    EXPECT_EQ(fleet.replicaCount(), 1u);
    EXPECT_EQ(cluster.deploymentReplicas(opts.clusterNamespace, opts.deploymentName), 1u);
}

// -- migration wire byte-equivalence ------------------------------------------

struct ClientState {
    std::vector<std::vector<std::array<std::uint16_t, 3>>> qpos;
    std::vector<std::vector<std::uint32_t>> colorIndex;
    std::vector<std::vector<viz::Color>> palette;
    std::vector<std::pair<node, node>> edges;
    std::vector<float> scores;
};

ClientState captureClient(const viz::RinWidget& widget) {
    ClientState s;
    for (const auto& view : widget.wireClient().views()) {
        s.qpos.push_back(view.qpos);
        s.colorIndex.push_back(view.colorIndex);
        s.palette.push_back(view.palette);
    }
    s.edges = widget.wireClient().edges();
    s.scores = widget.wireClient().scores();
    return s;
}

/// Field-by-field equality so a mismatch names the diverging component.
void expectClientEq(const ClientState& got, const ClientState& want,
                    const std::string& where) {
    ASSERT_EQ(got.qpos.size(), want.qpos.size()) << where;
    for (count v = 0; v < got.qpos.size(); ++v) {
        EXPECT_EQ(got.qpos[v], want.qpos[v]) << where << " view " << v << " qpos";
        EXPECT_EQ(got.colorIndex[v], want.colorIndex[v])
            << where << " view " << v << " colorIndex";
        ASSERT_EQ(got.palette[v].size(), want.palette[v].size())
            << where << " view " << v << " palette size";
        for (count c = 0; c < got.palette[v].size(); ++c)
            EXPECT_TRUE(got.palette[v][c] == want.palette[v][c])
                << where << " view " << v << " palette entry " << c;
    }
    EXPECT_EQ(got.edges, want.edges) << where << " edges";
    EXPECT_EQ(got.scores, want.scores) << where << " scores";
}

TEST(ReplicaSet, MigrationResyncsWireStreamByteEquivalently) {
    const auto traj = smallTrajectory();
    viz::RinWidget::Options widgetOpts;
    widgetOpts.wireFormat = viz::WireFormat::Binary;

    const std::vector<SliderEvent> script = {
        SliderEvent::setFrame(1),          SliderEvent::setCutoff(4.8),
        SliderEvent::setMeasure(viz::Measure::Closeness), SliderEvent::setFrame(2),
        SliderEvent::setCutoff(5.2),       SliderEvent::setFrame(3),
    };
    const count migrateAfter = 3;

    // Baseline: the same script on a never-migrated single instance,
    // capturing the decoded client state after every event.
    std::vector<ClientState> baseline;
    {
        SessionService service;
        const auto id = service.openSession(traj, widgetOpts);
        for (const auto& event : script) {
            service.submit(id, event).get();
            baseline.push_back(captureClient(*service.sessionWidget(id)));
        }
    }

    // Replicated run: find a user key that lands on the newest replica (the
    // scale-down victim), play half the script, migrate mid-stream, play
    // the rest.
    auto opts = smallFleet(2);
    ReplicaSet fleet(opts);
    std::string key;
    for (count k = 0; k < 64; ++k) {
        key = "mig-" + std::to_string(k);
        if (fleet.routeOf(key) == 1) break;
    }
    ASSERT_EQ(fleet.routeOf(key), 1u) << "no key routed to the victim replica";

    const auto id = fleet.openSession(traj, widgetOpts, key);
    for (count e = 0; e < migrateAfter; ++e) {
        fleet.submit(id, script[e]).get();
        expectClientEq(captureClient(*fleet.sessionWidget(id)), baseline[e],
                       "pre-migration event " + std::to_string(e));
    }

    ASSERT_TRUE(fleet.scaleDown()); // migrates the session to replica 0

    for (count e = migrateAfter; e < script.size(); ++e) {
        fleet.submit(id, script[e]).get();
        const viz::RinWidget& widget = *fleet.sessionWidget(id);
        if (e == migrateAfter) {
            // The first post-migration frame is the forced resync keyframe.
            EXPECT_TRUE(widget.wireStats().keyframe);
        }
        // The client decodes to exactly the state of the unmigrated run —
        // resync keyframe and subsequent deltas alike.
        expectClientEq(captureClient(widget), baseline[e],
                       "event " + std::to_string(e));
    }
}

// -- concurrency (TSan target) ------------------------------------------------

TEST(ReplicaSet, ConcurrentSubmitsDuringScaling) {
    const auto traj = smallTrajectory();
    auto opts = smallFleet(2);
    ReplicaSet fleet(opts);

    std::vector<serve::SessionId> ids;
    for (count u = 0; u < 8; ++u)
        ids.push_back(fleet.openSession(traj, {}, "user-" + std::to_string(u)));

    constexpr count kThreads = 4;
    constexpr count kPerThread = 24;
    std::vector<std::thread> threads;
    std::vector<count> resolved(kThreads, 0);
    for (count t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (count i = 0; i < kPerThread; ++i) {
                const auto id = ids[(t * kPerThread + i) % ids.size()];
                auto f = i % 3 == 0 ? fleet.submit(id, SliderEvent::setFrame(i % 4))
                         : i % 3 == 1
                             ? fleet.submit(id, SliderEvent::setCutoff(4.5 + 0.1 * (i % 5)))
                             : fleet.submit(id, SliderEvent::refresh());
                f.get(); // every future must resolve, whatever the fleet does
                ++resolved[t];
            }
        });
    }
    // Scale up and down under fire; migrations race the submitters only
    // through the routing lock, never through a dropped future.
    ASSERT_TRUE(fleet.scaleUp());
    ASSERT_TRUE(fleet.scaleDown());
    fleet.tick();
    for (auto& t : threads) t.join();

    for (count t = 0; t < kThreads; ++t) EXPECT_EQ(resolved[t], kPerThread);
    fleet.drain();
    const auto aggregate = fleet.metrics();
    expectReplicaInvariant(aggregate);
    EXPECT_EQ(aggregate.counter("handed_off"), aggregate.counter("adopted"));
}

TEST(ReplicaSet, SloFastBurnFloorsDegradeLadderUntilRecovery) {
    obs::EventLog::global().clearAll();
    const auto traj = smallTrajectory();

    // Compressed SLO clock (timeScale 1e-3: the 5m/1h page pair becomes
    // 0.3s/3.6s) so both fire and recovery happen inside the test without
    // sleeping — recovery comes from good traffic diluting the bad
    // fraction below threshold, not from waiting out the window.
    obs::SloConfig cfg;
    cfg.objectives = {{"latency", obs::SloKind::DeadlineAttainment, 0.99, 0.1}};
    cfg.windows = {{"fast", 300.0, 3600.0, 14.4, obs::SloState::FastBurn}};
    cfg.timeScale = 1e-3;
    auto slo = std::make_shared<obs::SloEngine>(cfg);

    auto opts = smallFleet(2);
    opts.autoscaler.maxReplicas = 2; // pin the fleet: this test is about quality, not size
    opts.serviceTemplate.slo = slo;
    ReplicaSet fleet(opts);
    const auto id = fleet.openSession(traj, {}, "user-0");

    // 20 impossible deadlines: every request completes but blows its
    // budget, so the engine sees a 100% bad fraction (burn 100 >> 14.4).
    for (count i = 0; i < 20; ++i) {
        const auto outcome = fleet.submit(id, SliderEvent::setFrame(i % 4, 1e-6)).get();
        EXPECT_TRUE(outcome.accepted());
        EXPECT_EQ(outcome.sloVerdict, serve::SloVerdict::DeadlineMissed);
    }

    // One controller tick trips the coupling: latency FastBurn floors
    // every replica at Approx and logs the enter edge exactly once.
    fleet.tick();
    EXPECT_TRUE(fleet.sloDegradeActive());
    EXPECT_EQ(obs::EventLog::global().countOf("slo_degrade_enter"), 1u);
    EXPECT_EQ(obs::EventLog::global().countOf("slo_degrade_exit"), 0u);

    // While floored, a healthy request is still served — degraded.
    const auto floored = fleet.submit(id, SliderEvent::setCutoff(5.0)).get();
    EXPECT_EQ(floored.status, serve::RequestStatus::OkDegraded);
    EXPECT_GT(fleet.metrics().counter("slo_degraded"), 0u);

    // Recovery: enough in-budget traffic drops the long-window bad
    // fraction under 14.4% of budget, the objective returns to Healthy,
    // and the floor lifts (hysteresis: exit requires Healthy, not merely
    // not-firing-fast). The generous deadline matters: an undeadlined
    // request is *irrelevant* to the latency objective, not good.
    for (count i = 0; i < 300; ++i)
        EXPECT_TRUE(fleet.submit(id, SliderEvent::setFrame(i % 4, 500.0)).get().accepted());
    fleet.tick();
    EXPECT_FALSE(fleet.sloDegradeActive());
    EXPECT_EQ(obs::EventLog::global().countOf("slo_degrade_exit"), 1u);
    const auto lifted = fleet.submit(id, SliderEvent::setCutoff(4.5)).get();
    EXPECT_EQ(lifted.status, serve::RequestStatus::Ok);

    fleet.drain();
    expectReplicaInvariant(fleet.metrics());
}

// -- load generator -----------------------------------------------------------

TEST(LoadGenerator, SchedulesShapeTheRate) {
    serve::LoadGenOptions o;
    o.baseRatePerSec = 100.0;
    o.durationSec = 10.0;

    o.schedule = serve::LoadSchedule::Constant;
    EXPECT_DOUBLE_EQ(serve::rateAt(o, 5.0), 100.0);

    o.schedule = serve::LoadSchedule::FlashCrowd;
    o.flashMultiplier = 8.0;
    EXPECT_DOUBLE_EQ(serve::rateAt(o, 1.0), 100.0);  // before the flash
    EXPECT_DOUBLE_EQ(serve::rateAt(o, 5.0), 800.0);  // inside [0.4, 0.6)
    EXPECT_DOUBLE_EQ(serve::rateAt(o, 9.0), 100.0);  // after

    o.schedule = serve::LoadSchedule::Diurnal;
    o.diurnalAmplitude = 0.5;
    double lo = 1e9;
    double hi = 0.0;
    for (double t = 0.0; t < 10.0; t += 0.1) {
        lo = std::min(lo, serve::rateAt(o, t));
        hi = std::max(hi, serve::rateAt(o, t));
    }
    EXPECT_NEAR(lo, 50.0, 2.0);
    EXPECT_NEAR(hi, 150.0, 2.0);
}

TEST(LoadGenerator, OpenLoopDrivesARealFleet) {
    const auto traj = smallTrajectory();
    ReplicaSet fleet(smallFleet(2));

    serve::LoadGenOptions o;
    o.baseRatePerSec = 60.0;
    o.durationSec = 0.5;
    o.sessions = 6;
    o.deadlineMs = 500.0;
    serve::LoadGenerator gen(o);

    count ticks = 0;
    const auto report = gen.run(fleet, traj, [&](double) { ++ticks; });

    EXPECT_GT(report.offered, 0u);
    // Open loop: every offered event terminates as a resolved future
    // (coalesced arrivals resolve with the superseding event's outcome).
    EXPECT_EQ(report.offered, report.completed + report.rejected);
    EXPECT_LE(report.coalesced, report.completed);
    EXPECT_GT(ticks, 0u);
    EXPECT_EQ(report.replicasFinal, 2u);
    EXPECT_GT(report.p99Ms, 0.0);
    expectReplicaInvariant(fleet.metrics());
}

TEST(LoadGenerator, SimulatedThroughputScalesWithReplicas) {
    serve::LoadGenOptions o;
    o.baseRatePerSec = 12000.0; // ~2.4x one replica's capacity below
    o.durationSec = 5.0;
    o.sessions = 128;
    o.deadlineMs = 100.0;

    serve::SimServiceModel model;
    model.workersPerReplica = 10;
    model.meanServiceMs = 2.0; // one replica sustains ~5000/s

    serve::SimOptions one;
    one.initialReplicas = 1;
    serve::SimOptions four;
    four.initialReplicas = 4;

    serve::LoadGenerator gen(o);
    const auto r1 = gen.simulateCluster(model, one);
    const auto r4 = gen.simulateCluster(model, four);

    // The same open-loop offered load overwhelms one replica and is
    // comfortable for four: shed collapses, p99 returns to ~service time.
    // (Latest-wins coalescing absorbs much of the overload, so the shed
    // rate understates the distress — 5% shed is already far past the 1%
    // sustainability bar.)
    EXPECT_GT(r1.shedRate(), 0.05);
    EXPECT_LT(r4.shedRate(), 0.01);
    EXPECT_GT(r1.shedRate(), 10.0 * r4.shedRate());
    EXPECT_LT(r4.p99Ms, r1.p99Ms);
}

TEST(LoadGenerator, FlashCrowdAutoscalerRecoversP99) {
    serve::LoadGenOptions o;
    o.schedule = serve::LoadSchedule::FlashCrowd;
    o.baseRatePerSec = 3000.0;
    o.flashMultiplier = 4.0;
    o.durationSec = 20.0;
    o.flashBeginFrac = 0.2;
    o.flashEndFrac = 0.8;
    o.sessions = 128;
    // Coalescing bounds the backlog (one queued slot per event kind per
    // session), which caps the worst-case wait near 100 ms at this model's
    // capacity — so the interactivity bar must sit below that cap for the
    // flash to register as an overload at all.
    o.deadlineMs = 40.0;
    o.tickIntervalSec = 0.25;

    serve::SimServiceModel model;
    model.meanServiceMs = 2.0;

    serve::SimOptions sim;
    sim.initialReplicas = 1;
    sim.autoscale = true;
    sim.autoscaler.maxReplicas = 8;

    serve::LoadGenerator gen(o);
    const auto report = gen.simulateCluster(model, sim);

    EXPECT_TRUE(report.overloaded) << "flash never stressed the fleet";
    EXPECT_GE(report.scaleUps, 1u);
    EXPECT_GT(report.recoveredAtSec, 0.0) << "autoscaler never recovered p99";
    EXPECT_LT(report.endWindowP99Ms, o.deadlineMs);
}

// The PR's end-to-end acceptance: one flash-crowd run on a LIVE fleet must
// produce a fully correlated observability story — the burn alert fires,
// the burn signal scales the fleet up, the ops log records the episode,
// deadline-missed requests are retained by the tail sampler, and every
// histogram exemplar in the fleet exposition resolves to a retained trace.
TEST(LoadGenerator, FlashCrowdEndToEndSloCorrelation) {
    obs::EventLog::global().clearAll();
    auto& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    tracer.setSampleEvery(0); // tail mode: the serving layer forces every root

    const auto traj = smallTrajectory();

    // Same compressed clock as the ladder test; latency + shed objectives.
    obs::SloConfig cfg;
    cfg.objectives = {{"latency", obs::SloKind::DeadlineAttainment, 0.99, 0.1},
                      {"shed", obs::SloKind::ShedRate, 0.999, 0.1}};
    cfg.windows = {{"fast", 300.0, 3600.0, 14.4, obs::SloState::FastBurn}};
    cfg.timeScale = 1e-3;
    auto slo = std::make_shared<obs::SloEngine>(cfg);
    auto sampler = std::make_shared<obs::TailSampler>();
    sampler->install();

    ReplicaSetOptions opts;
    opts.initialReplicas = 1;
    opts.autoscaler.maxReplicas = 4;
    opts.serviceTemplate.workers = 2;
    opts.serviceTemplate.slo = slo;
    opts.serviceTemplate.tailSampler = sampler;
    ReplicaSet fleet(opts);

    serve::LoadGenOptions o;
    o.schedule = serve::LoadSchedule::FlashCrowd;
    o.baseRatePerSec = 150.0;
    o.flashMultiplier = 6.0;
    o.durationSec = 2.0;
    o.flashBeginFrac = 0.2;
    o.flashEndFrac = 0.7;
    o.sessions = 16;
    // An unmeetable budget: every completion blows its deadline, so the
    // burn is pinned high and the episode is deterministic regardless of
    // how fast this machine executes a chignolin update.
    o.deadlineMs = 0.01;
    o.tickIntervalSec = 0.1;

    serve::LoadGenerator gen(o);
    const auto report = gen.run(fleet, traj, [&](double) { fleet.tick(); });

    // 1. The burn alert fired and the report says so.
    EXPECT_TRUE(report.sloAlertFired);
    EXPECT_GT(report.sloFastBurnPeak, 14.4);
    EXPECT_GE(report.sloStateChanges, 1u);
    EXPECT_LT(report.sloAttainment, 0.5);

    // 2. The burn signal (no queue ever needed to back up) scaled the
    //    fleet, and the ops log recorded it.
    EXPECT_GT(fleet.replicaCount(), 1u) << "SLO burn signal never scaled the fleet";
    EXPECT_GE(obs::EventLog::global().countOf("autoscale_up"), 1u);

    // 3. The episode's events correlate to traces: at least one logged
    //    event carries a live trace id (the degrade edge is logged from
    //    inside a sampled request).
    bool eventWithTrace = false;
    for (const auto& e : obs::EventLog::global().snapshot())
        if (e.traceId != 0) eventWithTrace = true;
    EXPECT_TRUE(eventWithTrace);

    // 4. Deadline-missed requests were retained with complete span trees.
    const auto stats = sampler->stats();
    EXPECT_GT(stats.retainedDeadlineMiss, 0u);
    EXPECT_GT(report.tracesRetained, 0u);
    for (const auto& tr : sampler->retained()) EXPECT_FALSE(tr.spans.empty());

    // 5. Every exemplar the fleet exposes names a retained trace.
    const auto text = obs::toPrometheusText(fleet.metrics());
    const auto exemplars = obs::parsePrometheusExemplars(text);
    EXPECT_FALSE(exemplars.empty());
    for (const auto& [key, ex] : exemplars)
        EXPECT_TRUE(sampler->isRetained(ex.traceId)) << key << " cites an evicted trace";

    fleet.drain();
    expectReplicaInvariant(fleet.metrics());
    sampler->uninstall();
    tracer.setEnabled(false);
    tracer.setSampleEvery(1);
    tracer.clear();
}

} // namespace
