// Tests for csbridge (Cytoscape 2D export) and TopCloseness.
#include <gtest/gtest.h>

#include "src/centrality/closeness.hpp"
#include "src/centrality/top_closeness.hpp"
#include "src/components/connected_components.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/graph_tools.hpp"
#include "src/layout/maxent_stress.hpp"
#include "src/support/json.hpp"
#include "src/viz/csbridge.hpp"

namespace rinkit {
namespace {

TEST(Csbridge, EmitsValidCytoscapeJson) {
    const auto g = generators::karateClub();
    MaxentStress layout(g);
    layout.run();
    std::vector<double> scores(34);
    for (node u = 0; u < 34; ++u) scores[u] = static_cast<double>(g.degree(u));

    viz::CytoscapeFigure fig(g, layout.getCoordinates(), scores,
                             viz::Palette::Viridis);
    const auto doc = JsonValue::parse(fig.toJson());
    ASSERT_TRUE(doc.has("elements"));
    const auto& nodes = doc.at("elements").at("nodes");
    const auto& edges = doc.at("elements").at("edges");
    EXPECT_EQ(nodes.size(), 34u);
    EXPECT_EQ(edges.size(), 78u);
    // Node structure: data.id/color/score + position.x/y.
    const auto& n0 = nodes.at(0);
    EXPECT_EQ(n0.at("data").at("id").asString(), "n0");
    EXPECT_EQ(n0.at("data").at("color").asString()[0], '#');
    EXPECT_TRUE(n0.at("position").has("x"));
    // Edge endpoints reference node ids.
    const auto& e0 = edges.at(0);
    EXPECT_EQ(e0.at("data").at("source").asString()[0], 'n');
    EXPECT_EQ(e0.at("data").at("target").asString()[0], 'n');
}

TEST(Csbridge, ProjectionDropsFlattestAxis) {
    // Points nearly flat in z: 2D positions must be (x, y).
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    std::vector<Point3> coords{{0, 0, 0.01}, {5, 1, 0.0}, {2, 9, 0.02}};
    viz::CytoscapeFigure fig(g, coords, {0.0, 1.0, 2.0}, viz::Palette::Spectral);
    const auto& pos = fig.positions2d();
    EXPECT_DOUBLE_EQ(pos[1].first, 5.0);
    EXPECT_DOUBLE_EQ(pos[1].second, 1.0);
    EXPECT_THROW(viz::CytoscapeFigure(g, std::vector<Point3>(1), {0.0}, // mismatch
                                      viz::Palette::Spectral),
                 std::invalid_argument);
}

TEST(TopCloseness, MatchesExactOnConnectedGraphs) {
    for (std::uint64_t seed : {1, 2, 3}) {
        // Connected-ish ER; take the largest component to guarantee
        // connectivity (the documented exactness precondition).
        auto full = generators::erdosRenyi(120, 0.05, seed);
        ConnectedComponents cc(full);
        cc.run();
        const auto g = graphtools::subgraph(full, cc.largestComponent());

        ClosenessCentrality exact(g);
        exact.run();
        const auto ranking = exact.ranking();

        const count k = 5;
        TopCloseness top(g, k);
        top.run();
        ASSERT_EQ(top.topkNodes().size(), std::min<count>(k, g.numberOfNodes()));
        for (count i = 0; i < top.topkNodes().size(); ++i) {
            EXPECT_NEAR(top.topkScores()[i], ranking[i].second, 1e-9)
                << "seed " << seed << " rank " << i;
        }
    }
}

TEST(TopCloseness, StarCenterFirst) {
    Graph g(8);
    for (node u = 1; u < 8; ++u) g.addEdge(0, u);
    TopCloseness top(g, 3);
    top.run();
    EXPECT_EQ(top.topkNodes()[0], 0u);
    EXPECT_DOUBLE_EQ(top.topkScores()[0], 1.0);
}

TEST(TopCloseness, PruningReducesWork) {
    // On a graph with one dominant hub, later BFSs should be cut short.
    const auto g = generators::barabasiAlbert(600, 3, 9);
    TopCloseness top(g, 3);
    top.run();
    EXPECT_LT(top.visitedNodes(), g.numberOfNodes() * g.numberOfNodes());
    EXPECT_EQ(top.topkNodes().size(), 3u);
    // Scores descending.
    EXPECT_GE(top.topkScores()[0], top.topkScores()[1]);
    EXPECT_GE(top.topkScores()[1], top.topkScores()[2]);
}

TEST(TopCloseness, KLargerThanNReturnsAll) {
    const auto g = generators::karateClub();
    TopCloseness top(g, 100);
    top.run();
    EXPECT_EQ(top.topkNodes().size(), 34u);
    EXPECT_THROW(TopCloseness(g, 0), std::invalid_argument);
    TopCloseness unrun(g, 2);
    EXPECT_THROW(unrun.topkNodes(), std::logic_error);
}

} // namespace
} // namespace rinkit
