// Tests for the layout algorithms (Maxent-Stress single-level and
// multilevel, FR, FA2), the coarsening hierarchy, and the Barnes-Hut
// octree they share, plus node2vec embeddings. `ctest -L layout` runs this
// suite; scripts/verify.sh --layout adds ASan/UBSan.
#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>
#include <limits>

#include "src/components/connected_components.hpp"
#include "src/embedding/node2vec.hpp"
#include "src/graph/generators.hpp"
#include "src/layout/coarsening.hpp"
#include "src/layout/fruchterman_reingold.hpp"
#include "src/layout/layout.hpp"
#include "src/layout/maxent_stress.hpp"
#include "src/layout/multilevel_maxent_stress.hpp"
#include "src/layout/octree.hpp"
#include "src/support/random.hpp"

namespace rinkit {
namespace {

TEST(Octree, EmptyAndSinglePoint) {
    Octree empty(std::vector<Point3>{});
    EXPECT_EQ(empty.size(), 0u);
    int calls = 0;
    empty.forCells({0, 0, 0}, 0.5, [&](const Point3&, double, bool) { ++calls; });
    EXPECT_EQ(calls, 0);

    Octree one({{1, 2, 3}});
    EXPECT_EQ(one.size(), 1u);
    // Query away from the point sees exactly that point.
    double mass = 0.0;
    one.forCells({0, 0, 0}, 0.5, [&](const Point3& p, double m, bool) {
        mass += m;
        EXPECT_EQ(p, Point3(1, 2, 3));
    });
    EXPECT_DOUBLE_EQ(mass, 1.0);
}

TEST(Octree, MassConservedAtAnyTheta) {
    Rng rng(3);
    std::vector<Point3> pts(500);
    for (auto& p : pts) p = {rng.real01(), rng.real01(), rng.real01()};
    Octree tree(pts);
    for (double theta : {0.0, 0.5, 1.2}) {
        double mass = 0.0;
        tree.forCells({2.0, 2.0, 2.0}, theta, // query outside the cloud
                      [&](const Point3&, double m, bool) { mass += m; });
        EXPECT_DOUBLE_EQ(mass, 500.0) << "theta " << theta;
    }
}

TEST(Octree, SkipsQueryPointItself) {
    std::vector<Point3> pts{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
    Octree tree(pts, 1);
    double mass = 0.0;
    tree.forCells({0, 0, 0}, 0.0, [&](const Point3&, double m, bool) { mass += m; });
    EXPECT_DOUBLE_EQ(mass, 2.0); // the colocated point is excluded
}

TEST(Octree, ApproximationClosesOnExactForce) {
    // Compare approximate 1/d^2 repulsion against brute force.
    Rng rng(7);
    std::vector<Point3> pts(300);
    for (auto& p : pts) p = {rng.real01() * 10, rng.real01() * 10, rng.real01() * 10};
    Octree tree(pts);
    const Point3 q{5.0, 5.0, 5.0};

    Point3 exact{};
    for (const auto& p : pts) {
        const Point3 diff = q - p;
        const double d2 = std::max(diff.squaredNorm(), 1e-12);
        exact += diff / d2;
    }
    Point3 approx{};
    tree.forCells(q, 0.4, [&](const Point3& p, double m, bool) {
        const Point3 diff = q - p;
        const double d2 = std::max(diff.squaredNorm(), 1e-12);
        approx += diff * (m / d2);
    });
    EXPECT_LT((exact - approx).norm(), 0.05 * std::max(exact.norm(), 1.0));
}

TEST(Octree, DuplicatePointsDoNotRecurseForever) {
    std::vector<Point3> pts(50, Point3{1, 1, 1});
    pts.push_back({2, 2, 2});
    Octree tree(pts, 4);
    double mass = 0.0;
    tree.forCells({0, 0, 0}, 0.0, [&](const Point3&, double m, bool) { mass += m; });
    EXPECT_DOUBLE_EQ(mass, 51.0);
}

// Shared behavior of all layout algorithms.
enum class Algo { Maxent, FR, FA2 };

std::vector<Point3> runLayout(Algo a, const Graph& g) {
    switch (a) {
    case Algo::Maxent: {
        MaxentStress ms(g);
        ms.run();
        return ms.getCoordinates();
    }
    case Algo::FR: {
        FruchtermanReingold fr(g);
        fr.run();
        return fr.getCoordinates();
    }
    default: {
        ForceAtlas2 fa(g);
        fa.run();
        return fa.getCoordinates();
    }
    }
}

class LayoutP : public ::testing::TestWithParam<Algo> {};

TEST_P(LayoutP, ProducesFiniteCoordinatesForAllNodes) {
    const auto g = generators::erdosRenyi(120, 0.05, 3);
    const auto coords = runLayout(GetParam(), g);
    ASSERT_EQ(coords.size(), 120u);
    for (const auto& p : coords) {
        EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z));
    }
    // Not all nodes collapsed to one point.
    const auto box = layoutBounds(coords);
    EXPECT_GT(box.extent().norm(), 0.1);
}

TEST_P(LayoutP, HandlesTrivialGraphs) {
    Graph empty;
    Graph one(1);
    Graph two(2);
    two.addEdge(0, 1);
    for (const Graph* g : {&empty, &one, &two}) {
        const auto coords = runLayout(GetParam(), *g);
        EXPECT_EQ(coords.size(), g->numberOfNodes());
    }
}

TEST_P(LayoutP, RequiresRunBeforeCoordinates) {
    const auto g = generators::karateClub();
    MaxentStress ms(g);
    FruchtermanReingold fr(g);
    ForceAtlas2 fa(g);
    EXPECT_THROW(ms.getCoordinates(), std::logic_error);
    EXPECT_THROW(fr.getCoordinates(), std::logic_error);
    EXPECT_THROW(fa.getCoordinates(), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Algos, LayoutP,
                         ::testing::Values(Algo::Maxent, Algo::FR, Algo::FA2));

TEST(MaxentStress, ReducesStressOnGrid) {
    // A 3D grid has a perfect 3D embedding; Maxent-Stress must get close.
    const auto g = generators::grid3D(5, 5, 5);
    MaxentStress::Parameters params;
    params.iterations = 120;
    MaxentStress ms(g, 3, params);
    ms.run();
    const double stress = layoutStress(g, ms.getCoordinates());

    // Random layout stress for comparison.
    Rng rng(1);
    std::vector<Point3> random(g.numberOfNodes());
    for (auto& p : random) p = {rng.real(0, 5), rng.real(0, 5), rng.real(0, 5)};
    EXPECT_LT(stress, 0.5 * layoutStress(g, random));
}

TEST(MaxentStress, SeparatesCommunities) {
    // Two cliques + bridge: the two blocks should land apart; intra-block
    // distances smaller than inter-block ones on average.
    Graph g(12);
    for (node u = 0; u < 6; ++u) {
        for (node v = u + 1; v < 6; ++v) {
            g.addEdge(u, v);
            g.addEdge(u + 6, v + 6);
        }
    }
    g.addEdge(0, 6);
    MaxentStress ms(g);
    ms.run();
    const auto& c = ms.getCoordinates();
    double intra = 0.0, inter = 0.0;
    count nIntra = 0, nInter = 0;
    for (node u = 0; u < 12; ++u) {
        for (node v = u + 1; v < 12; ++v) {
            if ((u < 6) == (v < 6)) {
                intra += c[u].distance(c[v]);
                ++nIntra;
            } else {
                inter += c[u].distance(c[v]);
                ++nInter;
            }
        }
    }
    EXPECT_LT(intra / nIntra, inter / nInter);
}

TEST(MaxentStress, InitialCoordinatesRespected) {
    const auto g = generators::karateClub();
    std::vector<Point3> init(34);
    Rng rng(9);
    for (auto& p : init) p = {rng.real01(), rng.real01(), rng.real01()};

    MaxentStress::Parameters params;
    params.iterations = 0; // no iterations: output == input
    MaxentStress ms(g, 3, params);
    ms.setInitialCoordinates(init);
    ms.run();
    EXPECT_EQ(ms.getCoordinates(), init);

    MaxentStress bad(g);
    EXPECT_THROW(bad.setInitialCoordinates(std::vector<Point3>(5)), std::invalid_argument);
}

TEST(MaxentStress, DeterministicForSeed) {
    const auto g = generators::erdosRenyi(60, 0.1, 2);
    MaxentStress a(g), b(g);
    a.run();
    b.run();
    EXPECT_EQ(a.getCoordinates(), b.getCoordinates());
}

TEST(MaxentStress, Only3DSupported) {
    const auto g = generators::karateClub();
    EXPECT_THROW(MaxentStress(g, 2), std::invalid_argument);
}

TEST(MaxentStress, ReportsIterations) {
    const auto g = generators::karateClub();
    MaxentStress::Parameters params;
    params.iterations = 7;
    params.convergenceTol = 0.0; // never early-stop
    MaxentStress ms(g, 3, params);
    ms.run();
    EXPECT_EQ(ms.iterationsDone(), 7u);
}

TEST(MaxentStress, IsolatedNodeDriftsAwayFromBarycenter) {
    // 6-clique plus an isolated residue: the isolated node has no stress
    // term, so only the barycenter nudge acts on it — it must move, stay
    // finite, and end up farther from the cloud's barycenter than it began.
    Graph g(7);
    for (node u = 0; u < 6; ++u) {
        for (node v = u + 1; v < 6; ++v) g.addEdge(u, v);
    }
    std::vector<Point3> init(7);
    Rng rng(5);
    for (count i = 0; i < 6; ++i) init[i] = {rng.real01(), rng.real01(), rng.real01()};
    init[6] = {0.05, 0.0, 0.0}; // near the cloud's barycenter

    MaxentStress::Parameters params;
    params.iterations = 20;
    params.convergenceTol = 0.0;
    MaxentStress ms(g, 3, params);
    ms.setInitialCoordinates(init);
    ms.run();
    const auto& c = ms.getCoordinates();
    ASSERT_EQ(c.size(), 7u);
    EXPECT_TRUE(std::isfinite(c[6].x) && std::isfinite(c[6].y) && std::isfinite(c[6].z));
    EXPECT_NE(c[6], init[6]) << "isolated node must not be frozen in place";

    auto barycenterOfClique = [](const std::vector<Point3>& pts) {
        Point3 sum;
        for (count i = 0; i < 6; ++i) sum += pts[i];
        return sum / 6.0;
    };
    EXPECT_GT(c[6].distance(barycenterOfClique(c)),
              init[6].distance(barycenterOfClique(init)));
}

TEST(MaxentStress, ConvergenceToleranceIsScaleFree) {
    // Same topology with prescribed distances 1x vs 100x. The early-exit
    // threshold compares mean movement to the bounding-box diagonal, so
    // both solves converge in a similar number of iterations — an absolute
    // threshold would never trigger on the 100x layout (its movements are
    // ~100x larger too).
    const auto topo = generators::grid3D(4, 4, 4);
    Graph small(topo.numberOfNodes(), /*weighted=*/true);
    Graph large(topo.numberOfNodes(), /*weighted=*/true);
    topo.forWeightedEdges([&](node u, node v, edgeweight) {
        small.addEdge(u, v, 1.0);
        large.addEdge(u, v, 100.0);
    });

    MaxentStress::Parameters params;
    params.iterations = 500;
    params.convergenceTol = 1e-3;
    MaxentStress a(small, 3, params), b(large, 3, params);
    a.run();
    b.run();
    EXPECT_TRUE(a.converged());
    EXPECT_TRUE(b.converged());
    EXPECT_LT(a.iterationsDone(), 500u);
    EXPECT_LT(b.iterationsDone(), 500u);
    // Scale-free measure: exit happens at a comparable iteration.
    const double ia = static_cast<double>(a.iterationsDone());
    const double ib = static_cast<double>(b.iterationsDone());
    EXPECT_LT(std::max(ia, ib) / std::min(ia, ib), 2.0);
}

TEST(Octree, ExposesBoundsAndBarycenter) {
    std::vector<Point3> pts{{0, 0, 0}, {2, 0, 0}, {0, 4, 0}, {0, 0, 6}};
    Octree tree(pts);
    EXPECT_TRUE(tree.bounds().valid());
    EXPECT_EQ(tree.bounds().lo, Point3(0, 0, 0));
    EXPECT_EQ(tree.bounds().hi, Point3(2, 4, 6));
    const Point3 bc = tree.rootBarycenter();
    EXPECT_DOUBLE_EQ(bc.x, 0.5);
    EXPECT_DOUBLE_EQ(bc.y, 1.0);
    EXPECT_DOUBLE_EQ(bc.z, 1.5);

    Octree empty(std::vector<Point3>{});
    EXPECT_FALSE(empty.bounds().valid());
    EXPECT_EQ(empty.rootBarycenter(), Point3{});
}

TEST(Octree, ParallelRootPartitionPreservesMassAndBarycenter) {
    // 6000 points crosses the parallel-partition threshold; the tree must
    // still conserve mass at any theta and report the exact barycenter.
    Rng rng(17);
    std::vector<Point3> pts(6000);
    Point3 mean;
    for (auto& p : pts) {
        p = {rng.real01() * 10, rng.real01() * 10, rng.real01() * 10};
        mean += p;
    }
    mean /= 6000.0;
    Octree tree(pts);
    EXPECT_LT(tree.rootBarycenter().distance(mean), 1e-9);
    for (double theta : {0.0, 0.9}) {
        double mass = 0.0;
        tree.forCells({20.0, 20.0, 20.0}, theta,
                      [&](const Point3&, double m, bool) { mass += m; });
        EXPECT_DOUBLE_EQ(mass, 6000.0) << "theta " << theta;
    }
}

// -- coarsening hierarchy ---------------------------------------------------

/// ER graph over the first 300 of 310 nodes: a handful of components plus
/// isolated nodes, the shapes the invariants must survive.
Graph coarseningFixture(bool weighted) {
    const auto er = generators::erdosRenyi(300, 0.02, 3);
    Graph g(310, weighted);
    Rng rng(23);
    er.forWeightedEdges([&](node u, node v, edgeweight) {
        g.addEdge(u, v, weighted ? rng.real(1.0, 5.0) : 1.0);
    });
    return g;
}

TEST(Coarsening, MatchingIsMutualAndAlongEdges) {
    for (const bool weighted : {false, true}) {
        const Graph g = coarseningFixture(weighted);
        const auto match = heavyEdgeMatching(g);
        ASSERT_EQ(match.size(), g.numberOfNodes());
        count matched = 0;
        for (node u = 0; u < g.numberOfNodes(); ++u) {
            if (match[u] == u) continue;
            EXPECT_EQ(match[match[u]], u) << "matching must be mutual";
            EXPECT_TRUE(g.hasEdge(u, match[u])) << "matches must follow edges";
            ++matched;
        }
        EXPECT_GT(matched, g.numberOfNodes() / 4) << "matching too sparse";
    }
}

TEST(Coarsening, LevelsConserveWeightAndComponents) {
    for (const bool weighted : {false, true}) {
        const Graph g = coarseningFixture(weighted);
        CoarseningOptions options;
        options.coarsestSize = 20;
        const auto hierarchy = buildCoarseningHierarchy(g, options);
        ASSERT_GE(hierarchy.size(), 2u);

        const Graph* fine = &g;
        for (const auto& level : hierarchy) {
            ASSERT_EQ(level.fineNodes(), fine->numberOfNodes());
            EXPECT_LT(level.graph.numberOfNodes(), fine->numberOfNodes());

            // Total edge weight is conserved: mapped into coarse edges or
            // collapsed inside matched pairs, nothing lost or invented.
            const double total = fine->totalEdgeWeight();
            EXPECT_NEAR(level.mappedWeight + level.contractedWeight, total,
                        1e-9 * std::max(1.0, total));

            // Contraction along edges never merges or splits components.
            ConnectedComponents fineCc(*fine), coarseCc(level.graph);
            fineCc.run();
            coarseCc.run();
            EXPECT_EQ(fineCc.numberOfComponents(), coarseCc.numberOfComponents());

            // members/fineToCoarse form a partition into clusters of <= 2.
            std::vector<count> seen(level.fineNodes(), 0);
            for (node c = 0; c < level.coarseNodes(); ++c) {
                const auto& m = level.members[c];
                ASSERT_NE(m[0], none);
                EXPECT_EQ(level.fineToCoarse[m[0]], c);
                ++seen[m[0]];
                if (m[1] != none) {
                    EXPECT_EQ(level.fineToCoarse[m[1]], c);
                    EXPECT_GT(level.pairDistance[c], 0.0);
                    ++seen[m[1]];
                }
            }
            for (node u = 0; u < level.fineNodes(); ++u) {
                EXPECT_EQ(seen[u], 1u) << "fine node " << u << " not covered exactly once";
            }
            fine = &level.graph;
        }
        EXPECT_LE(fine->numberOfNodes(), 20u + 10u); // 10 isolated singletons ride along
    }
}

TEST(Coarsening, ProlongationCoversEveryFineNodeExactlyOnce) {
    const Graph g = coarseningFixture(true);
    const auto match = heavyEdgeMatching(g);
    const auto level = contractMatching(g, match);

    std::vector<Point3> coarse(level.coarseNodes());
    Rng rng(31);
    for (auto& p : coarse) p = {rng.real01(), rng.real01(), rng.real01()};

    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::vector<Point3> fine(level.fineNodes(), Point3{nan, nan, nan});
    prolongCoordinates(level, coarse, fine, /*seed=*/1);

    for (node u = 0; u < level.fineNodes(); ++u) {
        EXPECT_TRUE(std::isfinite(fine[u].x) && std::isfinite(fine[u].y) &&
                    std::isfinite(fine[u].z))
            << "fine node " << u << " not written by prolongation";
    }
    for (node c = 0; c < level.coarseNodes(); ++c) {
        const auto& m = level.members[c];
        if (m[1] == none) {
            EXPECT_EQ(fine[m[0]], coarse[c]);
        } else {
            // Pair split symmetrically about the coarse position, at the
            // prescribed distance.
            EXPECT_LT(((fine[m[0]] + fine[m[1]]) * 0.5).distance(coarse[c]), 1e-12);
            EXPECT_NEAR(fine[m[0]].distance(fine[m[1]]), level.pairDistance[c], 1e-9);
        }
    }
}

TEST(Coarsening, StopsOnEdgelessAndTinyGraphs) {
    Graph edgeless(100);
    EXPECT_TRUE(buildCoarseningHierarchy(edgeless, {}).empty());
    const auto tiny = generators::karateClub(); // 34 <= coarsestSize
    EXPECT_TRUE(buildCoarseningHierarchy(tiny, {}).empty());
}

// -- multilevel solver ------------------------------------------------------

TEST(MultilevelMaxentStress, ReportsHierarchyAndBeatsSingleLevelStress) {
    // A 3D grid has a perfect embedding; the V-cycle must reach it at
    // least as well as the widget's old cold schedule (30 single-level
    // iterations from random init), and report its hierarchy shape.
    const auto g = generators::grid3D(8, 8, 8);
    MultilevelMaxentStress ml(g, 3);
    ml.run();
    EXPECT_GE(ml.levels(), 3u);
    EXPECT_LE(ml.coarsestNodes(), 100u);
    EXPECT_GT(ml.iterationsDone(), 0u);
    const double mlStress = layoutStress(g, ml.getCoordinates());

    MaxentStress::Parameters params;
    params.iterations = 30;
    MaxentStress sl(g, 3, params);
    sl.run();
    EXPECT_LE(mlStress, layoutStress(g, sl.getCoordinates()));
}

TEST(MultilevelMaxentStress, WarmStartMatchesSingleLevelFastPath) {
    // Seeded with warmStartIterations > 0, the multilevel solver takes the
    // exact capped-polish path of the single-level solver: same kernel,
    // same schedule, bit-identical coordinates.
    const auto g = generators::erdosRenyi(150, 0.05, 11);
    const auto seedCoords = randomBallLayout(g.numberOfNodes(), 77);

    MultilevelMaxentStress::Parameters mlParams;
    mlParams.sweep.iterations = 30;
    mlParams.sweep.warmStartIterations = 10;
    MultilevelMaxentStress ml(g, 3, mlParams);
    ml.setInitialCoordinates(seedCoords);
    ml.run();
    EXPECT_EQ(ml.levels(), 1u);

    MaxentStress::Parameters slParams;
    slParams.iterations = 30;
    slParams.warmStartIterations = 10;
    MaxentStress sl(g, 3, slParams);
    sl.setInitialCoordinates(seedCoords);
    sl.run();

    EXPECT_EQ(ml.getCoordinates(), sl.getCoordinates());
    EXPECT_EQ(ml.iterationsDone(), sl.iterationsDone());
}

TEST(MultilevelMaxentStress, DeterministicAcrossThreadCounts) {
    // Fixed seed => identical output for 1/2/8 OpenMP threads. The large
    // graph also crosses the octree's parallel root-partition threshold,
    // covering the chunked counting sort.
    const auto small = generators::erdosRenyi(400, 0.02, 5);
    const auto large = generators::erdosRenyi(5000, 0.0015, 5);
    const int savedThreads = omp_get_max_threads();
    for (const Graph* g : {&small, &large}) {
        std::vector<Point3> reference;
        count referenceIters = 0;
        for (const int threads : {1, 2, 8}) {
            omp_set_num_threads(threads);
            MultilevelMaxentStress ml(*g, 3);
            ml.run();
            if (reference.empty()) {
                reference = ml.getCoordinates();
                referenceIters = ml.iterationsDone();
            } else {
                EXPECT_EQ(ml.getCoordinates(), reference)
                    << "thread count " << threads << " changed the layout";
                EXPECT_EQ(ml.iterationsDone(), referenceIters);
            }
        }
    }
    omp_set_num_threads(savedThreads);
}

TEST(MultilevelMaxentStress, HandlesTrivialAndIsolatedGraphs) {
    Graph empty;
    Graph one(1);
    Graph sparse(60); // isolated nodes only: hierarchy must bail out
    sparse.addEdge(0, 1);
    for (const Graph* g : {&empty, &one, &sparse}) {
        MultilevelMaxentStress ml(*g, 3);
        ml.run();
        ASSERT_EQ(ml.getCoordinates().size(), g->numberOfNodes());
        for (const auto& p : ml.getCoordinates()) {
            EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z));
        }
    }
    EXPECT_THROW(MultilevelMaxentStress(one, 2), std::invalid_argument);
}

TEST(MaxentWorkspace, RhoCachedAcrossBindsOnSameVersion) {
    Graph g(4, /*weighted=*/true);
    g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 2.0);
    MaxentWorkspace ws;
    ws.bind(g);
    ASSERT_EQ(ws.rho().size(), 4u);
    EXPECT_DOUBLE_EQ(ws.rho()[1], 0.5); // 1/4 + 1/4
    EXPECT_DOUBLE_EQ(ws.rho()[3], 0.0); // isolated

    ws.bind(g); // same version: cached (still correct values)
    EXPECT_DOUBLE_EQ(ws.rho()[1], 0.5);

    g.addEdge(1, 3, 1.0); // version bump: rho must be recomputed
    ws.bind(g);
    EXPECT_DOUBLE_EQ(ws.rho()[1], 1.5);
    EXPECT_DOUBLE_EQ(ws.rho()[3], 1.0);
}

TEST(LayoutStress, PerfectLayoutZeroStress) {
    // A path laid out exactly at its graph distances has zero stress.
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    std::vector<Point3> coords{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}};
    EXPECT_DOUBLE_EQ(layoutStress(g, coords), 0.0);
    EXPECT_THROW(layoutStress(g, std::vector<Point3>(2)), std::invalid_argument);
}

TEST(Node2Vec, WalksHaveRequestedShape) {
    const auto g = generators::karateClub();
    Node2Vec::Parameters params;
    params.walkLength = 10;
    params.walksPerNode = 2;
    Node2Vec n2v(g, params);
    n2v.run();
    EXPECT_EQ(n2v.walks().size(), 34u * 2u);
    for (const auto& w : n2v.walks()) {
        EXPECT_EQ(w.size(), 10u);
        // Consecutive nodes are connected.
        for (count i = 1; i < w.size(); ++i) EXPECT_TRUE(g.hasEdge(w[i - 1], w[i]));
    }
}

TEST(Node2Vec, FeaturesHaveRequestedDimensions) {
    const auto g = generators::karateClub();
    Node2Vec::Parameters params;
    params.dimensions = 16;
    Node2Vec n2v(g, params);
    n2v.run();
    ASSERT_EQ(n2v.features().size(), 34u);
    for (const auto& row : n2v.features()) EXPECT_EQ(row.size(), 16u);
}

TEST(Node2Vec, CommunityStructureReflectedInSimilarity) {
    // Two cliques + bridge: same-clique nodes should be more similar than
    // cross-clique ones on average.
    Graph g(16);
    for (node u = 0; u < 8; ++u) {
        for (node v = u + 1; v < 8; ++v) {
            g.addEdge(u, v);
            g.addEdge(u + 8, v + 8);
        }
    }
    g.addEdge(0, 8);
    Node2Vec::Parameters params;
    params.epochs = 3;
    params.walksPerNode = 10;
    Node2Vec n2v(g, params);
    n2v.run();
    double intra = 0.0, inter = 0.0;
    count nIntra = 0, nInter = 0;
    for (node u = 0; u < 16; ++u) {
        for (node v = u + 1; v < 16; ++v) {
            if ((u < 8) == (v < 8)) {
                intra += n2v.cosineSimilarity(u, v);
                ++nIntra;
            } else {
                inter += n2v.cosineSimilarity(u, v);
                ++nInter;
            }
        }
    }
    EXPECT_GT(intra / nIntra, inter / nInter);
}

TEST(Node2Vec, ParameterValidation) {
    const auto g = generators::karateClub();
    Node2Vec::Parameters bad;
    bad.p = 0.0;
    EXPECT_THROW(Node2Vec(g, bad), std::invalid_argument);
    Node2Vec::Parameters bad2;
    bad2.dimensions = 0;
    EXPECT_THROW(Node2Vec(g, bad2), std::invalid_argument);
    Node2Vec ok(g);
    EXPECT_THROW(ok.features(), std::logic_error);
    EXPECT_THROW(ok.cosineSimilarity(0, 1), std::logic_error);
}

TEST(Node2Vec, IsolatedNodesGetNoWalksButKeepRows) {
    Graph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    Node2Vec n2v(g);
    n2v.run();
    EXPECT_EQ(n2v.features().size(), 5u);
    for (const auto& w : n2v.walks()) {
        for (node u : w) EXPECT_LT(u, 3u); // walks never visit isolated nodes
    }
}

} // namespace
} // namespace rinkit
