// Tests for the layout algorithms (Maxent-Stress, FR, FA2) and the
// Barnes-Hut octree they share, plus node2vec embeddings.
#include <gtest/gtest.h>

#include <cmath>

#include "src/embedding/node2vec.hpp"
#include "src/graph/generators.hpp"
#include "src/layout/fruchterman_reingold.hpp"
#include "src/layout/layout.hpp"
#include "src/layout/maxent_stress.hpp"
#include "src/layout/octree.hpp"
#include "src/support/random.hpp"

namespace rinkit {
namespace {

TEST(Octree, EmptyAndSinglePoint) {
    Octree empty(std::vector<Point3>{});
    EXPECT_EQ(empty.size(), 0u);
    int calls = 0;
    empty.forCells({0, 0, 0}, 0.5, [&](const Point3&, double, bool) { ++calls; });
    EXPECT_EQ(calls, 0);

    Octree one({{1, 2, 3}});
    EXPECT_EQ(one.size(), 1u);
    // Query away from the point sees exactly that point.
    double mass = 0.0;
    one.forCells({0, 0, 0}, 0.5, [&](const Point3& p, double m, bool) {
        mass += m;
        EXPECT_EQ(p, Point3(1, 2, 3));
    });
    EXPECT_DOUBLE_EQ(mass, 1.0);
}

TEST(Octree, MassConservedAtAnyTheta) {
    Rng rng(3);
    std::vector<Point3> pts(500);
    for (auto& p : pts) p = {rng.real01(), rng.real01(), rng.real01()};
    Octree tree(pts);
    for (double theta : {0.0, 0.5, 1.2}) {
        double mass = 0.0;
        tree.forCells({2.0, 2.0, 2.0}, theta, // query outside the cloud
                      [&](const Point3&, double m, bool) { mass += m; });
        EXPECT_DOUBLE_EQ(mass, 500.0) << "theta " << theta;
    }
}

TEST(Octree, SkipsQueryPointItself) {
    std::vector<Point3> pts{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
    Octree tree(pts, 1);
    double mass = 0.0;
    tree.forCells({0, 0, 0}, 0.0, [&](const Point3&, double m, bool) { mass += m; });
    EXPECT_DOUBLE_EQ(mass, 2.0); // the colocated point is excluded
}

TEST(Octree, ApproximationClosesOnExactForce) {
    // Compare approximate 1/d^2 repulsion against brute force.
    Rng rng(7);
    std::vector<Point3> pts(300);
    for (auto& p : pts) p = {rng.real01() * 10, rng.real01() * 10, rng.real01() * 10};
    Octree tree(pts);
    const Point3 q{5.0, 5.0, 5.0};

    Point3 exact{};
    for (const auto& p : pts) {
        const Point3 diff = q - p;
        const double d2 = std::max(diff.squaredNorm(), 1e-12);
        exact += diff / d2;
    }
    Point3 approx{};
    tree.forCells(q, 0.4, [&](const Point3& p, double m, bool) {
        const Point3 diff = q - p;
        const double d2 = std::max(diff.squaredNorm(), 1e-12);
        approx += diff * (m / d2);
    });
    EXPECT_LT((exact - approx).norm(), 0.05 * std::max(exact.norm(), 1.0));
}

TEST(Octree, DuplicatePointsDoNotRecurseForever) {
    std::vector<Point3> pts(50, Point3{1, 1, 1});
    pts.push_back({2, 2, 2});
    Octree tree(pts, 4);
    double mass = 0.0;
    tree.forCells({0, 0, 0}, 0.0, [&](const Point3&, double m, bool) { mass += m; });
    EXPECT_DOUBLE_EQ(mass, 51.0);
}

// Shared behavior of all layout algorithms.
enum class Algo { Maxent, FR, FA2 };

std::vector<Point3> runLayout(Algo a, const Graph& g) {
    switch (a) {
    case Algo::Maxent: {
        MaxentStress ms(g);
        ms.run();
        return ms.getCoordinates();
    }
    case Algo::FR: {
        FruchtermanReingold fr(g);
        fr.run();
        return fr.getCoordinates();
    }
    default: {
        ForceAtlas2 fa(g);
        fa.run();
        return fa.getCoordinates();
    }
    }
}

class LayoutP : public ::testing::TestWithParam<Algo> {};

TEST_P(LayoutP, ProducesFiniteCoordinatesForAllNodes) {
    const auto g = generators::erdosRenyi(120, 0.05, 3);
    const auto coords = runLayout(GetParam(), g);
    ASSERT_EQ(coords.size(), 120u);
    for (const auto& p : coords) {
        EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z));
    }
    // Not all nodes collapsed to one point.
    const auto box = layoutBounds(coords);
    EXPECT_GT(box.extent().norm(), 0.1);
}

TEST_P(LayoutP, HandlesTrivialGraphs) {
    Graph empty;
    Graph one(1);
    Graph two(2);
    two.addEdge(0, 1);
    for (const Graph* g : {&empty, &one, &two}) {
        const auto coords = runLayout(GetParam(), *g);
        EXPECT_EQ(coords.size(), g->numberOfNodes());
    }
}

TEST_P(LayoutP, RequiresRunBeforeCoordinates) {
    const auto g = generators::karateClub();
    MaxentStress ms(g);
    FruchtermanReingold fr(g);
    ForceAtlas2 fa(g);
    EXPECT_THROW(ms.getCoordinates(), std::logic_error);
    EXPECT_THROW(fr.getCoordinates(), std::logic_error);
    EXPECT_THROW(fa.getCoordinates(), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Algos, LayoutP,
                         ::testing::Values(Algo::Maxent, Algo::FR, Algo::FA2));

TEST(MaxentStress, ReducesStressOnGrid) {
    // A 3D grid has a perfect 3D embedding; Maxent-Stress must get close.
    const auto g = generators::grid3D(5, 5, 5);
    MaxentStress::Parameters params;
    params.iterations = 120;
    MaxentStress ms(g, 3, params);
    ms.run();
    const double stress = layoutStress(g, ms.getCoordinates());

    // Random layout stress for comparison.
    Rng rng(1);
    std::vector<Point3> random(g.numberOfNodes());
    for (auto& p : random) p = {rng.real(0, 5), rng.real(0, 5), rng.real(0, 5)};
    EXPECT_LT(stress, 0.5 * layoutStress(g, random));
}

TEST(MaxentStress, SeparatesCommunities) {
    // Two cliques + bridge: the two blocks should land apart; intra-block
    // distances smaller than inter-block ones on average.
    Graph g(12);
    for (node u = 0; u < 6; ++u) {
        for (node v = u + 1; v < 6; ++v) {
            g.addEdge(u, v);
            g.addEdge(u + 6, v + 6);
        }
    }
    g.addEdge(0, 6);
    MaxentStress ms(g);
    ms.run();
    const auto& c = ms.getCoordinates();
    double intra = 0.0, inter = 0.0;
    count nIntra = 0, nInter = 0;
    for (node u = 0; u < 12; ++u) {
        for (node v = u + 1; v < 12; ++v) {
            if ((u < 6) == (v < 6)) {
                intra += c[u].distance(c[v]);
                ++nIntra;
            } else {
                inter += c[u].distance(c[v]);
                ++nInter;
            }
        }
    }
    EXPECT_LT(intra / nIntra, inter / nInter);
}

TEST(MaxentStress, InitialCoordinatesRespected) {
    const auto g = generators::karateClub();
    std::vector<Point3> init(34);
    Rng rng(9);
    for (auto& p : init) p = {rng.real01(), rng.real01(), rng.real01()};

    MaxentStress::Parameters params;
    params.iterations = 0; // no iterations: output == input
    MaxentStress ms(g, 3, params);
    ms.setInitialCoordinates(init);
    ms.run();
    EXPECT_EQ(ms.getCoordinates(), init);

    MaxentStress bad(g);
    EXPECT_THROW(bad.setInitialCoordinates(std::vector<Point3>(5)), std::invalid_argument);
}

TEST(MaxentStress, DeterministicForSeed) {
    const auto g = generators::erdosRenyi(60, 0.1, 2);
    MaxentStress a(g), b(g);
    a.run();
    b.run();
    EXPECT_EQ(a.getCoordinates(), b.getCoordinates());
}

TEST(MaxentStress, Only3DSupported) {
    const auto g = generators::karateClub();
    EXPECT_THROW(MaxentStress(g, 2), std::invalid_argument);
}

TEST(MaxentStress, ReportsIterations) {
    const auto g = generators::karateClub();
    MaxentStress::Parameters params;
    params.iterations = 7;
    params.convergenceTol = 0.0; // never early-stop
    MaxentStress ms(g, 3, params);
    ms.run();
    EXPECT_EQ(ms.iterationsDone(), 7u);
}

TEST(LayoutStress, PerfectLayoutZeroStress) {
    // A path laid out exactly at its graph distances has zero stress.
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    std::vector<Point3> coords{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}};
    EXPECT_DOUBLE_EQ(layoutStress(g, coords), 0.0);
    EXPECT_THROW(layoutStress(g, std::vector<Point3>(2)), std::invalid_argument);
}

TEST(Node2Vec, WalksHaveRequestedShape) {
    const auto g = generators::karateClub();
    Node2Vec::Parameters params;
    params.walkLength = 10;
    params.walksPerNode = 2;
    Node2Vec n2v(g, params);
    n2v.run();
    EXPECT_EQ(n2v.walks().size(), 34u * 2u);
    for (const auto& w : n2v.walks()) {
        EXPECT_EQ(w.size(), 10u);
        // Consecutive nodes are connected.
        for (count i = 1; i < w.size(); ++i) EXPECT_TRUE(g.hasEdge(w[i - 1], w[i]));
    }
}

TEST(Node2Vec, FeaturesHaveRequestedDimensions) {
    const auto g = generators::karateClub();
    Node2Vec::Parameters params;
    params.dimensions = 16;
    Node2Vec n2v(g, params);
    n2v.run();
    ASSERT_EQ(n2v.features().size(), 34u);
    for (const auto& row : n2v.features()) EXPECT_EQ(row.size(), 16u);
}

TEST(Node2Vec, CommunityStructureReflectedInSimilarity) {
    // Two cliques + bridge: same-clique nodes should be more similar than
    // cross-clique ones on average.
    Graph g(16);
    for (node u = 0; u < 8; ++u) {
        for (node v = u + 1; v < 8; ++v) {
            g.addEdge(u, v);
            g.addEdge(u + 8, v + 8);
        }
    }
    g.addEdge(0, 8);
    Node2Vec::Parameters params;
    params.epochs = 3;
    params.walksPerNode = 10;
    Node2Vec n2v(g, params);
    n2v.run();
    double intra = 0.0, inter = 0.0;
    count nIntra = 0, nInter = 0;
    for (node u = 0; u < 16; ++u) {
        for (node v = u + 1; v < 16; ++v) {
            if ((u < 8) == (v < 8)) {
                intra += n2v.cosineSimilarity(u, v);
                ++nIntra;
            } else {
                inter += n2v.cosineSimilarity(u, v);
                ++nInter;
            }
        }
    }
    EXPECT_GT(intra / nIntra, inter / nInter);
}

TEST(Node2Vec, ParameterValidation) {
    const auto g = generators::karateClub();
    Node2Vec::Parameters bad;
    bad.p = 0.0;
    EXPECT_THROW(Node2Vec(g, bad), std::invalid_argument);
    Node2Vec::Parameters bad2;
    bad2.dimensions = 0;
    EXPECT_THROW(Node2Vec(g, bad2), std::invalid_argument);
    Node2Vec ok(g);
    EXPECT_THROW(ok.features(), std::logic_error);
    EXPECT_THROW(ok.cosineSimilarity(0, 1), std::logic_error);
}

TEST(Node2Vec, IsolatedNodesGetNoWalksButKeepRows) {
    Graph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    Node2Vec n2v(g);
    n2v.run();
    EXPECT_EQ(n2v.features().size(), 5u);
    for (const auto& w : n2v.walks()) {
        for (node u : w) EXPECT_LT(u, 3u); // walks never visit isolated nodes
    }
}

} // namespace
} // namespace rinkit
