// Property tests for the dynamic/approximate measure layer: every dynamic
// kernel is driven through random diff sequences and compared against its
// from-scratch counterpart at the accuracy contract DESIGN.md documents
// (integer-valued state bit-equal, floating accumulations at 1e-9/1e-7),
// the sampling kernels are checked against their stated error bounds, and
// the MeasureEngine's three-tier resolution (cache keying, dynamic
// updates, approximation under tolerance/degrade) is exercised directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "src/centrality/approx_closeness.hpp"
#include "src/centrality/betweenness.hpp"
#include "src/centrality/closeness.hpp"
#include "src/centrality/core_decomposition.hpp"
#include "src/centrality/kadabra.hpp"
#include "src/components/connected_components.hpp"
#include "src/dyn/dyn_betweenness.hpp"
#include "src/dyn/dyn_bfs.hpp"
#include "src/dyn/dyn_closeness.hpp"
#include "src/dyn/dyn_components.hpp"
#include "src/dyn/dyn_core.hpp"
#include "src/dyn/dyn_kadabra.hpp"
#include "src/dyn/edge_batch.hpp"
#include "src/components/csr_bfs.hpp"
#include "src/graph/generators.hpp"
#include "src/support/random.hpp"
#include "src/viz/measures.hpp"

namespace rinkit {
namespace {

using dyn::EdgeBatch;

std::vector<std::pair<node, node>> allEdges(const Graph& g) {
    const auto v = CsrView::fromGraph(g);
    std::vector<std::pair<node, node>> edges;
    for (node u = 0; u < v.numberOfNodes(); ++u) {
        for (count i = v.offsets()[u]; i < v.offsets()[u + 1]; ++i) {
            const node w = v.targets()[i];
            if (u < w) edges.emplace_back(u, w);
        }
    }
    return edges;
}

/// Applies a random diff to @p g: @p removals existing edges out, @p
/// additions non-edges in, both disjoint (an edge is never removed and
/// re-added in one batch). Returns the sorted (added, removed) lists in
/// DynamicRin's diff shape.
void mutate(Graph& g, Rng& rng, count removals, count additions,
            std::vector<std::pair<node, node>>& added,
            std::vector<std::pair<node, node>>& removed) {
    added.clear();
    removed.clear();
    std::set<std::pair<node, node>> touched;
    auto edges = allEdges(g);
    for (count r = 0; r < removals && !edges.empty(); ++r) {
        const auto idx = rng.pick(edges.size());
        const auto e = edges[idx];
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(idx));
        g.removeEdge(e.first, e.second);
        removed.push_back(e);
        touched.insert(e);
    }
    const count n = g.numberOfNodes();
    for (count a = 0; a < additions;) {
        node u = static_cast<node>(rng.pick(n));
        node w = static_cast<node>(rng.pick(n));
        if (u == w) continue;
        if (u > w) std::swap(u, w);
        if (g.hasEdge(u, w) || touched.count({u, w})) continue;
        g.addEdge(u, w);
        added.emplace_back(u, w);
        touched.insert({u, w});
        ++a;
    }
    std::sort(added.begin(), added.end());
    std::sort(removed.begin(), removed.end());
}

double maxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

TEST(ComposeDiff, NetsOutCancellingEdges) {
    std::vector<std::pair<node, node>> added = {{0, 1}, {2, 3}};
    std::vector<std::pair<node, node>> removed = {{4, 5}};
    // Second batch removes {2,3} again (cancels the add) and re-adds {4,5}
    // (cancels the remove); {6,7} is new.
    dyn::composeDiff(added, removed, {{4, 5}, {6, 7}}, {{2, 3}});
    ASSERT_EQ(added.size(), 2u);
    EXPECT_EQ(added[0], (std::pair<node, node>{0, 1}));
    EXPECT_EQ(added[1], (std::pair<node, node>{6, 7}));
    EXPECT_TRUE(removed.empty());
}

TEST(LevelRepairer, MatchesFreshBfsOverRandomDiffs) {
    Graph g = generators::erdosRenyi(150, 0.04, 11);
    const count n = g.numberOfNodes();
    const node source = 0;

    auto v = CsrView::fromGraph(g);
    CsrBfs bfs(v);
    bfs.run(source);
    std::vector<std::uint16_t> lvl(n);
    for (node u = 0; u < n; ++u) {
        const auto d = bfs.levelOf(u);
        lvl[u] = d == CsrBfs::unreachedLevel ? dyn::kUnreachedLevel
                                             : static_cast<std::uint16_t>(d);
    }

    Rng rng(99);
    dyn::LevelRepairer repairer;
    std::vector<dyn::LevelChange> changes;
    for (int round = 0; round < 12; ++round) {
        std::vector<std::pair<node, node>> added, removed;
        mutate(g, rng, 4, 4, added, removed);
        v = CsrView::fromGraph(g);
        changes.clear();
        repairer.repair(v, source, lvl.data(), EdgeBatch{&added, &removed}, changes);

        CsrBfs fresh(v);
        fresh.run(source);
        for (node u = 0; u < n; ++u) {
            const auto expect = fresh.levelOf(u) == CsrBfs::unreachedLevel
                                    ? dyn::kUnreachedLevel
                                    : static_cast<std::uint16_t>(fresh.levelOf(u));
            ASSERT_EQ(lvl[u], expect) << "round " << round << " node " << u;
        }
        // Every reported change is real (old != new).
        for (const auto& c : changes) EXPECT_NE(c.oldLevel, c.newLevel);
    }
}

TEST(DynCloseness, TracksFromScratchOverRandomDiffs) {
    Graph g = generators::erdosRenyi(120, 0.05, 42);
    dyn::DynCloseness dc;
    dc.init(CsrView::fromGraph(g));
    ASSERT_TRUE(dc.primed());

    Rng rng(7);
    for (int round = 0; round < 10; ++round) {
        std::vector<std::pair<node, node>> added, removed;
        mutate(g, rng, 3, 3, added, removed);
        dc.update(CsrView::fromGraph(g), EdgeBatch{&added, &removed});

        // Standard closeness is built from integer-valued sums: bit-equal.
        ClosenessCentrality std_(g, ClosenessCentrality::Variant::Standard, true);
        std_.run();
        const auto dynStd = dc.scores(/*harmonic=*/false);
        for (node u = 0; u < g.numberOfNodes(); ++u)
            ASSERT_DOUBLE_EQ(dynStd[u], std_.score(u)) << "round " << round;

        // Harmonic accumulates 1/d in repair order: tolerance contract.
        ClosenessCentrality harm(g, ClosenessCentrality::Variant::Harmonic, true);
        harm.run();
        const auto dynHarm = dc.scores(/*harmonic=*/true);
        EXPECT_LT(maxAbsDiff(dynHarm, harm.scores()), 1e-9) << "round " << round;
    }
}

TEST(DynBetweenness, TracksFromScratchOverRandomDiffs) {
    Graph g = generators::erdosRenyi(80, 0.07, 5);
    dyn::DynBetweenness db;
    db.init(CsrView::fromGraph(g));
    ASSERT_TRUE(db.primed());

    // Freshly primed state must already agree with exact Brandes.
    {
        Betweenness exact(g, true);
        exact.run();
        EXPECT_LT(maxAbsDiff(db.scores(), exact.scores()), 1e-12);
    }

    Rng rng(13);
    for (int round = 0; round < 8; ++round) {
        std::vector<std::pair<node, node>> added, removed;
        mutate(g, rng, 3, 3, added, removed);
        db.update(CsrView::fromGraph(g), EdgeBatch{&added, &removed});

        Betweenness exact(g, true);
        exact.run();
        EXPECT_LT(maxAbsDiff(db.scores(), exact.scores()), 1e-7) << "round " << round;
    }
}

TEST(DynConnectedComponents, BitEqualOverRandomDiffs) {
    // Sparse enough that deletions actually split components.
    Graph g = generators::erdosRenyi(100, 0.03, 21);
    dyn::DynConnectedComponents dcc;
    dcc.init(CsrView::fromGraph(g));

    Rng rng(3);
    for (int round = 0; round < 12; ++round) {
        std::vector<std::pair<node, node>> added, removed;
        mutate(g, rng, 4, 3, added, removed);
        dcc.update(CsrView::fromGraph(g), EdgeBatch{&added, &removed});

        ConnectedComponents cc(g);
        cc.run();
        ASSERT_EQ(dcc.numberOfComponents(), cc.numberOfComponents()) << "round " << round;
        for (node u = 0; u < g.numberOfNodes(); ++u)
            ASSERT_EQ(dcc.componentOf(u), cc.componentOf(u)) << "round " << round;
    }
}

TEST(DynCoreDecomposition, BitEqualOverRandomDiffs) {
    Graph g = generators::erdosRenyi(100, 0.06, 17);
    dyn::DynCoreDecomposition dk;
    dk.init(CsrView::fromGraph(g));

    Rng rng(29);
    for (int round = 0; round < 12; ++round) {
        std::vector<std::pair<node, node>> added, removed;
        mutate(g, rng, 4, 4, added, removed);
        dk.update(CsrView::fromGraph(g), EdgeBatch{&added, &removed});

        CoreDecomposition cd(g);
        cd.run();
        for (node u = 0; u < g.numberOfNodes(); ++u)
            ASSERT_EQ(dk.coreOf(u), static_cast<count>(cd.score(u))) << "round " << round;
        EXPECT_EQ(dk.maxCore(), cd.maxCore());
    }
}

TEST(ApproxCloseness, ExactFallbackWhenPivotsCoverGraph) {
    // Small n at tight eps: the pivot count exceeds n, so the kernel falls
    // back to the exact sweep and must be bit-equal to ClosenessCentrality.
    const auto g = generators::karateClub();
    ApproxCloseness ac(g, ApproxCloseness::Variant::Harmonic, 0.1, 0.1, 1);
    ac.run();
    EXPECT_TRUE(ac.exactFallback());
    EXPECT_DOUBLE_EQ(ac.achievedEpsilon(), 0.0);

    ClosenessCentrality exact(g, ClosenessCentrality::Variant::Harmonic, true);
    exact.run();
    for (node u = 0; u < g.numberOfNodes(); ++u)
        EXPECT_DOUBLE_EQ(ac.score(u), exact.score(u));
}

TEST(ApproxCloseness, PivotEstimateWithinStatedBound) {
    // Large n at loose eps actually samples. The Hoeffding bound holds
    // per-node with probability 1-delta; a fixed seed keeps this stable.
    const auto g = generators::erdosRenyi(400, 0.02, 7);
    const double eps = 0.45;
    ApproxCloseness ac(g, ApproxCloseness::Variant::Harmonic, eps, 0.1, 3);
    ac.run();
    EXPECT_FALSE(ac.exactFallback());
    EXPECT_GT(ac.numberOfPivots(), 0u);
    EXPECT_LT(ac.numberOfPivots(), g.numberOfNodes());
    EXPECT_LE(ac.achievedEpsilon(), eps);

    ClosenessCentrality exact(g, ClosenessCentrality::Variant::Harmonic, true);
    exact.run();
    EXPECT_LE(maxAbsDiff(ac.scores(), exact.scores()), eps);
}

TEST(KadabraBetweenness, WithinBoundOfExactOnKarate) {
    const auto g = generators::karateClub();
    const count n = g.numberOfNodes();
    const double eps = 0.08;
    KadabraBetweenness kb(g, eps, 0.1, 7);
    kb.run();
    EXPECT_GT(kb.numberOfSamples(), 0u);
    EXPECT_LE(kb.achievedEpsilon(), eps);

    // Kadabra estimates the pair fraction sum_delta / (n(n-1)); exact
    // normalized betweenness divides by (n-1)(n-2). Rescale to compare.
    Betweenness exact(g, true);
    exact.run();
    const double scale = static_cast<double>(n - 2) / static_cast<double>(n);
    double worst = 0.0;
    for (node u = 0; u < n; ++u)
        worst = std::max(worst, std::abs(kb.score(u) - exact.score(u) * scale));
    EXPECT_LE(worst, eps);
}

TEST(DynKadabra, WithinStatedBoundOverRandomDiffs) {
    // The maintained sample set must keep its (eps, delta) guarantee after
    // arbitrary diff sequences: compare against from-scratch exact
    // betweenness (at Kadabra's pair-fraction scale) every round.
    const double eps = 0.08;
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{23}}) {
        Graph g = generators::erdosRenyi(200, 0.035, seed);
        const count n = g.numberOfNodes();
        dyn::DynKadabra dk;
        dk.init(CsrView::fromGraph(g), eps, 0.1, seed + 5);
        EXPECT_GT(dk.numberOfSamples(), 0u);
        EXPECT_LE(dk.achievedEpsilon(), eps);

        Rng rng(seed * 77 + 1);
        std::vector<std::pair<node, node>> added, removed;
        for (int round = 0; round < 10; ++round) {
            mutate(g, rng, 3, 3, added, removed);
            const auto v = CsrView::fromGraph(g);
            dk.update(v, EdgeBatch{&added, &removed});
            ASSERT_LE(dk.achievedEpsilon(), eps + 1e-12);

            Betweenness exact(g, true);
            exact.run(v);
            const double scale =
                static_cast<double>(n - 2) / static_cast<double>(n);
            const auto scores = dk.scores();
            double worst = 0.0;
            for (node u = 0; u < n; ++u)
                worst = std::max(worst,
                                 std::abs(scores[u] - exact.score(u) * scale));
            ASSERT_LE(worst, dk.achievedEpsilon())
                << "seed " << seed << " round " << round << " resampled "
                << dk.lastResampled();
        }
    }
}

TEST(DynKadabra, DeterministicAndCheaperThanResamplingEverything) {
    // Same seed + same diff sequence => identical scores regardless of
    // history being warm; and the affected-sample detection must actually
    // skip work (resampling everything would defeat the tier).
    Graph g = generators::erdosRenyi(300, 0.025, 11);
    dyn::DynKadabra a, b;
    a.init(CsrView::fromGraph(g), 0.1, 0.1, 9);
    b.init(CsrView::fromGraph(g), 0.1, 0.1, 9);

    Rng rng(401);
    std::vector<std::pair<node, node>> added, removed;
    for (int round = 0; round < 6; ++round) {
        mutate(g, rng, 2, 2, added, removed);
        const auto v = CsrView::fromGraph(g);
        a.update(v, EdgeBatch{&added, &removed});
        b.update(v, EdgeBatch{&added, &removed});
        EXPECT_EQ(a.lastResampled(), b.lastResampled());
        EXPECT_LT(a.lastResampled(), a.numberOfSamples());
        EXPECT_EQ(a.scores(), b.scores());
    }
}

// ---- MeasureEngine resolution policy --------------------------------------

TEST(MeasureEngine, ExactCacheServesAndIsVersionKeyed) {
    Graph g = generators::karateClub();
    viz::MeasureEngine eng;
    viz::MeasureEngine::Request exact;
    viz::MeasureEngine::ResultInfo info;

    const auto first = eng.scores(g, viz::Measure::Closeness, exact, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Exact);
    EXPECT_FALSE(info.cacheHit);
    EXPECT_DOUBLE_EQ(info.epsilon, 0.0);

    const auto again = eng.scores(g, viz::Measure::Closeness, exact, &info);
    EXPECT_TRUE(info.cacheHit);
    EXPECT_EQ(again, first);

    g.addEdge(0, 16); // version bump invalidates without noteDiff
    eng.scores(g, viz::Measure::Closeness, exact, &info);
    EXPECT_FALSE(info.cacheHit);
}

TEST(MeasureEngine, ApproxNeverLeaksIntoExactRequests) {
    Graph g = generators::karateClub();
    viz::MeasureEngine::Options opts;
    opts.dynamicMeasures = false; // force the sampled path under tolerance
    viz::MeasureEngine eng(opts);
    viz::MeasureEngine::ResultInfo info;

    viz::MeasureEngine::Request tol;
    tol.tolerance = 0.3;
    eng.scores(g, viz::Measure::Betweenness, tol, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Approx);
    EXPECT_GT(info.epsilon, 0.0);
    EXPECT_LE(info.epsilon, 0.3);
    EXPECT_GT(info.samples, 0u);

    // An exact request must not be served from the approx slot.
    viz::MeasureEngine::Request exact;
    eng.scores(g, viz::Measure::Betweenness, exact, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Exact);
    EXPECT_FALSE(info.cacheHit);
    EXPECT_DOUBLE_EQ(info.epsilon, 0.0);

    // And the fresh exact slot now serves tolerance requests (exact is
    // always an acceptable answer to an approximate question).
    eng.scores(g, viz::Measure::Betweenness, tol, &info);
    EXPECT_TRUE(info.cacheHit);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Exact);
    EXPECT_DOUBLE_EQ(info.epsilon, 0.0);
}

TEST(MeasureEngine, ApproxSlotKeyedByTolerance) {
    Graph g = generators::karateClub();
    viz::MeasureEngine::Options opts;
    opts.dynamicMeasures = false;
    viz::MeasureEngine eng(opts);
    viz::MeasureEngine::ResultInfo info;

    viz::MeasureEngine::Request loose;
    loose.tolerance = 0.3;
    eng.scores(g, viz::Measure::Betweenness, loose, &info);
    ASSERT_EQ(info.tier, viz::ResolutionTier::Approx);
    const double achieved = info.epsilon;

    // Same tolerance again: served from the approx slot.
    eng.scores(g, viz::Measure::Betweenness, loose, &info);
    EXPECT_TRUE(info.cacheHit);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Approx);
    EXPECT_DOUBLE_EQ(info.epsilon, achieved);

    // Tighter tolerance than the achieved bound: must resample, not serve
    // the looser cached answer.
    viz::MeasureEngine::Request tight;
    tight.tolerance = achieved / 2.0;
    eng.scores(g, viz::Measure::Betweenness, tight, &info);
    EXPECT_FALSE(info.cacheHit);
    EXPECT_LE(info.epsilon, tight.tolerance);
}

TEST(MeasureEngine, DynamicTierTracksDiffAndMatchesFromScratch) {
    Graph g = generators::erdosRenyi(60, 0.08, 3);
    viz::MeasureEngine eng;
    viz::MeasureEngine::Request exact;
    viz::MeasureEngine::ResultInfo info;

    eng.scores(g, viz::Measure::Betweenness, exact, &info); // primes dyn state
    EXPECT_EQ(info.tier, viz::ResolutionTier::Exact);

    const auto edges = allEdges(g);
    ASSERT_FALSE(edges.empty());
    const std::uint64_t preVersion = g.version();
    std::vector<std::pair<node, node>> removed = {edges.front()};
    g.removeEdge(edges.front().first, edges.front().second);
    eng.noteDiff(g, preVersion, {}, removed);

    const auto scores = eng.scores(g, viz::Measure::Betweenness, exact, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Dynamic);
    EXPECT_EQ(info.diffEdges, 1u);

    const auto view = CsrView::fromGraph(g);
    const auto fresh = viz::computeMeasure(g, view, viz::Measure::Betweenness);
    EXPECT_LT(maxAbsDiff(scores, fresh), 1e-7);

    // A second read of the same version serves the repaired state cheaply.
    eng.scores(g, viz::Measure::Betweenness, exact, &info);
    EXPECT_TRUE(info.cacheHit);
}

TEST(MeasureEngine, VersionGapFallsBackToExactRecompute) {
    Graph g = generators::erdosRenyi(60, 0.08, 3);
    viz::MeasureEngine eng;
    viz::MeasureEngine::Request exact;
    viz::MeasureEngine::ResultInfo info;

    eng.scores(g, viz::Measure::Closeness, exact, &info);

    // Mutate WITHOUT noteDiff: the dyn chain cannot bridge the gap, so the
    // engine must recompute from scratch rather than repair from a stale
    // base (a silent wrong answer).
    g.addEdge(0, 59);
    g.addEdge(1, 58);
    const auto scores = eng.scores(g, viz::Measure::Closeness, exact, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Exact);
    EXPECT_FALSE(info.cacheHit);

    const auto view = CsrView::fromGraph(g);
    EXPECT_EQ(scores, viz::computeMeasure(g, view, viz::Measure::Closeness));
}

TEST(MeasureEngine, StaleDegradeServesOldVersionAndIsLabelled) {
    Graph g = generators::karateClub();
    viz::MeasureEngine eng;
    viz::MeasureEngine::Request exact;
    viz::MeasureEngine::ResultInfo info;

    const auto old = eng.scores(g, viz::Measure::PageRank, exact, &info);
    g.addEdge(0, 16);

    viz::MeasureEngine::Request stale;
    stale.degrade = viz::DegradeLevel::Stale;
    const auto served = eng.scores(g, viz::Measure::PageRank, stale, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Stale);
    EXPECT_TRUE(info.cacheHit);
    EXPECT_EQ(served, old);

    // Without the degrade flag the same request recomputes.
    eng.scores(g, viz::Measure::PageRank, exact, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Exact);
    EXPECT_FALSE(info.cacheHit);
}

TEST(MeasureEngine, ApproxDegradeAppliesFloorTolerance) {
    Graph g = generators::karateClub();
    viz::MeasureEngine::Options opts;
    opts.dynamicMeasures = false;
    viz::MeasureEngine eng(opts);
    viz::MeasureEngine::ResultInfo info;

    // No caller tolerance, but the serving ladder degraded to Approx: the
    // engine applies its degradeEpsilon floor and reports the bound.
    viz::MeasureEngine::Request req;
    req.degrade = viz::DegradeLevel::Approx;
    eng.scores(g, viz::Measure::Betweenness, req, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Approx);
    EXPECT_GT(info.epsilon, 0.0);
    EXPECT_LE(info.epsilon, eng.options().degradeEpsilon);
}

TEST(MeasureEngine, WarmApproxMaintainsSampleStateAcrossDiffs) {
    // With dynamicMeasures on, a tolerant betweenness read primes the
    // DynKadabra sample state; after a noteDiff'd mutation the next read
    // updates that state from the diff (reported via diffEdges) instead of
    // sampling from scratch, still within the stated bound.
    Graph g = generators::erdosRenyi(120, 0.05, 42);
    const count n = g.numberOfNodes();
    viz::MeasureEngine eng;
    viz::MeasureEngine::Request tol;
    tol.tolerance = 0.1;
    viz::MeasureEngine::ResultInfo info;

    eng.scores(g, viz::Measure::Betweenness, tol, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Approx);
    EXPECT_GT(info.samples, 0u);
    EXPECT_EQ(info.diffEdges, 0u);
    ASSERT_LE(info.epsilon, 0.1);

    const auto edges = allEdges(g);
    ASSERT_FALSE(edges.empty());
    const std::uint64_t preVersion = g.version();
    std::vector<std::pair<node, node>> removed = {edges.front()};
    g.removeEdge(edges.front().first, edges.front().second);
    eng.noteDiff(g, preVersion, {}, removed);

    const auto scores = eng.scores(g, viz::Measure::Betweenness, tol, &info);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Approx);
    EXPECT_FALSE(info.cacheHit);
    EXPECT_EQ(info.diffEdges, 1u);
    EXPECT_GT(info.samples, 0u);
    ASSERT_LE(info.epsilon, 0.1);

    const auto view = CsrView::fromGraph(g);
    const auto fresh = viz::computeMeasure(g, view, viz::Measure::Betweenness);
    const double scale = static_cast<double>(n - 2) / static_cast<double>(n);
    double worst = 0.0;
    for (node u = 0; u < n; ++u)
        worst = std::max(worst, std::abs(scores[u] - fresh[u] * scale));
    EXPECT_LE(worst, info.epsilon);

    // Same version again: the approx slot serves the cached result.
    eng.scores(g, viz::Measure::Betweenness, tol, &info);
    EXPECT_TRUE(info.cacheHit);
    EXPECT_EQ(info.tier, viz::ResolutionTier::Approx);
}

} // namespace
} // namespace rinkit
