// Serving-layer suite: ThreadPool, latency histograms/metrics registry,
// and SessionService — per-session ordering, latest-wins coalescing,
// admission control, shed/deadline degradation, and the JupyterHub
// dispatch path. The concurrency tests here are the ones scripts/verify.sh
// runs under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "src/cloud/cluster.hpp"
#include "src/cloud/jupyterhub.hpp"
#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/serve/metrics.hpp"
#include "src/serve/session_service.hpp"
#include "src/support/json.hpp"
#include "src/support/thread_pool.hpp"

namespace {

using namespace rinkit;
using serve::RequestOutcome;
using serve::RequestStatus;
using serve::SessionService;
using serve::SliderEvent;

md::Trajectory smallTrajectory(count frames = 4) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = frames;
    return md::TrajectoryGenerator(params).generate(md::chignolin());
}

// Large enough that one update cycle takes milliseconds — used by the
// queueing tests so a burst of submissions reliably outpaces execution.
md::Trajectory slowTrajectory() {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 4;
    return md::TrajectoryGenerator(params).generate(md::helixBundle(200));
}

// submitted == completed + coalesced + rejected must hold once every
// future has resolved: each submission ends in exactly one bucket.
void expectCounterInvariant(const serve::MetricsSnapshot& snap) {
    EXPECT_EQ(snap.counter("submitted"),
              snap.counter("completed") + snap.counter("coalesced") + snap.counter("rejected"));
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroRequestedThreadsStillWorks) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::promise<int> p;
    pool.submit([&p] { p.set_value(42); });
    EXPECT_EQ(p.get_future().get(), 42);
}

TEST(LatencyHistogram, PercentilesAreSaneOnUniformData) {
    serve::LatencyHistogram h;
    for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
    EXPECT_EQ(h.samples(), 100u);
    EXPECT_DOUBLE_EQ(h.meanMs(), 50.5);
    EXPECT_DOUBLE_EQ(h.maxMs(), 100.0);

    const double p50 = h.percentile(50.0);
    const double p95 = h.percentile(95.0);
    const double p99 = h.percentile(99.0);
    // Bins grow 25% per step, so any percentile is within ~13% of exact.
    EXPECT_NEAR(p50, 50.0, 50.0 * 0.15);
    EXPECT_NEAR(p95, 95.0, 95.0 * 0.15);
    EXPECT_NEAR(p99, 99.0, 99.0 * 0.15);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, h.maxMs());
}

TEST(LatencyHistogram, SingleSampleReportsItselfEverywhere) {
    serve::LatencyHistogram h;
    h.record(7.5);
    // Clamped to the observed max, so a sparse histogram never overshoots.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 7.5);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 7.5);
    EXPECT_DOUBLE_EQ(h.maxMs(), 7.5);
}

TEST(LatencyHistogram, EmptyAndZeroSamples) {
    serve::LatencyHistogram h;
    EXPECT_EQ(h.percentile(99.0), 0.0);
    h.record(0.0);
    h.record(-3.0); // clamps to 0
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(LatencyHistogram, EmptyReportsZeroEverywhere) {
    const serve::LatencyHistogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.meanMs(), 0.0);
    EXPECT_DOUBLE_EQ(h.minMs(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(LatencyHistogram, SingleSampleMinEqualsMax) {
    serve::LatencyHistogram h;
    h.record(3.25);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_DOUBLE_EQ(h.minMs(), 3.25);
    EXPECT_DOUBLE_EQ(h.maxMs(), 3.25);
    EXPECT_DOUBLE_EQ(h.meanMs(), 3.25);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.25);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.25);
}

TEST(LatencyHistogram, PercentileIsClampedToObservedMax) {
    serve::LatencyHistogram h;
    // 1000 ms lands deep in a wide log bin (25% growth): the bin's upper
    // edge is far above the sample, and an unclamped percentile would
    // report it. Every percentile must stay at the observed max instead.
    for (int i = 0; i < 10; ++i) h.record(1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), 1000.0);
}

TEST(LatencyHistogram, NegativeSamplesClampToZero) {
    serve::LatencyHistogram h;
    h.record(-5.0);
    h.record(-0.001);
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_DOUBLE_EQ(h.minMs(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), 0.0);
    EXPECT_DOUBLE_EQ(h.meanMs(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
    // Mixing in a real sample keeps aggregates finite and ordered.
    h.record(2.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), 2.0);
    EXPECT_LE(h.percentile(50.0), h.percentile(99.0));
}

TEST(MetricsRegistry, SnapshotAndJsonRoundTrip) {
    serve::MetricsRegistry reg;
    reg.recordLatency("server_ms", 12.0);
    reg.recordLatency("server_ms", 30.0);
    reg.increment("completed");
    reg.increment("completed", 2);
    reg.gaugeQueueDepth(5);
    reg.gaugeQueueDepth(2);

    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter("completed"), 3u);
    EXPECT_EQ(snap.counter("missing"), 0u);
    EXPECT_EQ(snap.queueDepth, 2u);
    EXPECT_EQ(snap.queueDepthMax, 5u);
    ASSERT_EQ(snap.histograms.count("server_ms"), 1u);
    EXPECT_EQ(snap.histograms.at("server_ms").samples, 2u);

    const auto parsed = JsonValue::parse(snap.toJson());
    EXPECT_EQ(parsed.at("counters").at("completed").asNumber(), 3.0);
    EXPECT_EQ(parsed.at("queue_depth_max").asNumber(), 5.0);
    const auto& server = parsed.at("histograms").at("server_ms");
    EXPECT_EQ(server.at("count").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(server.at("mean_ms").asNumber(), 21.0);
    EXPECT_LE(server.at("p50_ms").asNumber(), server.at("p99_ms").asNumber());
}

TEST(SessionService, AppliesSequentialEventsInOrder) {
    const auto traj = smallTrajectory();
    SessionService service;
    const auto id = service.openSession(traj);

    // Submit one at a time so nothing can coalesce: the applied log must
    // be exactly the submitted sequence.
    const std::vector<SliderEvent> events = {
        SliderEvent::setFrame(1), SliderEvent::setCutoff(5.0),
        SliderEvent::setMeasure(viz::Measure::Degree), SliderEvent::refresh(),
        SliderEvent::setFrame(2)};
    for (const auto& e : events) {
        const auto outcome = service.submit(id, e).get();
        EXPECT_EQ(outcome.status, RequestStatus::Ok);
        EXPECT_FALSE(outcome.deadlineMissed);
    }

    const auto applied = service.appliedEvents(id);
    ASSERT_EQ(applied.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) EXPECT_EQ(applied[i], events[i].kind);

    const auto snap = service.metrics();
    EXPECT_EQ(snap.counter("submitted"), events.size());
    EXPECT_EQ(snap.counter("completed"), events.size());
    EXPECT_EQ(snap.counter("coalesced"), 0u);
    expectCounterInvariant(snap);
    EXPECT_GE(snap.histograms.at("server_ms").samples, events.size());
}

TEST(SessionService, WireCountersTrackShippedFrames) {
    const auto traj = smallTrajectory();
    SessionService service;
    viz::RinWidget::Options widgetOpts;
    widgetOpts.wireFormat = viz::WireFormat::Binary;
    widgetOpts.wireKeyframeInterval = 2; // force periodic keyframes quickly
    const auto id = service.openSession(traj, widgetOpts);

    const count events = 6;
    for (count i = 0; i < events; ++i) {
        const auto outcome =
            service.submit(id, SliderEvent::setFrame(static_cast<rinkit::index>((i + 1) % 4))).get();
        EXPECT_EQ(outcome.status, RequestStatus::Ok);
    }

    // Every completed request ships exactly one frame, and each shipped
    // frame is either a keyframe or a delta (binary session).
    const auto snap = service.metrics();
    EXPECT_EQ(snap.counter("frames_shipped"), events);
    EXPECT_GT(snap.counter("wire_bytes"), 0u);
    EXPECT_EQ(snap.counter("wire_keyframes") + snap.counter("wire_delta_frames"),
              snap.counter("frames_shipped"));
    EXPECT_GT(snap.counter("wire_keyframes"), 0u);
    EXPECT_GT(snap.counter("wire_delta_frames"), 0u);
}

TEST(SessionService, JsonSessionsCountBytesWithoutFrameSplit) {
    const auto traj = smallTrajectory();
    SessionService service;
    const auto id = service.openSession(traj); // default: JSON payloads

    service.submit(id, SliderEvent::setCutoff(6.0)).get();
    service.submit(id, SliderEvent::setFrame(1)).get();

    // wire_bytes counts whatever format actually shipped (here: figure
    // JSON); the keyframe/delta split only applies to binary sessions.
    const auto snap = service.metrics();
    EXPECT_EQ(snap.counter("frames_shipped"), 2u);
    EXPECT_GT(snap.counter("wire_bytes"), 0u);
    EXPECT_EQ(snap.counter("wire_keyframes"), 0u);
    EXPECT_EQ(snap.counter("wire_delta_frames"), 0u);
}

TEST(SessionService, LatestWinsCoalescingCollapsesBursts) {
    const auto traj = slowTrajectory();
    SessionService::Options options;
    options.workers = 1;
    options.maxQueuedPerSession = 64;
    SessionService service(options);
    const auto id = service.openSession(traj);

    // A tight burst of same-kind events against a single worker whose
    // update cycle takes milliseconds: all but the in-flight one collapse
    // into one queued slot.
    constexpr count kBurst = 30;
    std::vector<std::future<RequestOutcome>> futures;
    for (count i = 0; i < kBurst; ++i) {
        futures.push_back(service.submit(id, SliderEvent::setFrame(i % 4)));
    }
    for (auto& f : futures) EXPECT_TRUE(f.get().accepted());
    service.drain();

    const auto snap = service.metrics();
    EXPECT_EQ(snap.counter("submitted"), kBurst);
    EXPECT_GE(snap.counter("coalesced"), 1u);
    EXPECT_LT(snap.counter("completed"), kBurst);
    expectCounterInvariant(snap);
    // The applied log only contains the events that actually ran.
    EXPECT_EQ(service.appliedEvents(id).size(), snap.counter("completed"));
}

TEST(SessionService, AdmissionControlRejectsWhenQueueIsFull) {
    const auto traj = slowTrajectory();
    SessionService::Options options;
    options.workers = 1;
    options.maxQueuedPerSession = 1;
    SessionService service(options);
    const auto id = service.openSession(traj);

    // Alternate kinds so coalescing cannot absorb the burst; with one
    // queued slot allowed, most of it must bounce.
    std::vector<std::future<RequestOutcome>> futures;
    for (count i = 0; i < 24; ++i) {
        futures.push_back(service.submit(
            id, i % 2 == 0 ? SliderEvent::setFrame(i % 4)
                           : SliderEvent::setCutoff(4.0 + 0.1 * static_cast<double>(i % 8))));
    }
    count rejected = 0;
    for (auto& f : futures) {
        if (f.get().status == RequestStatus::Rejected) ++rejected;
    }
    service.drain();

    const auto snap = service.metrics();
    EXPECT_GE(rejected, 1u);
    EXPECT_EQ(snap.counter("rejected"), rejected);
    expectCounterInvariant(snap);
    // Bounded queue: never more than in-flight + the admission bound.
    EXPECT_LE(snap.queueDepthMax, options.maxQueuedPerSession + 1);
}

TEST(SessionService, DeepBacklogShedsToDegraded) {
    const auto traj = slowTrajectory();
    SessionService::Options options;
    options.workers = 1;
    options.degradeQueueDepth = 0; // any waiter behind you -> degrade
    SessionService service(options);
    const auto id = service.openSession(traj);

    std::vector<std::future<RequestOutcome>> futures;
    futures.push_back(service.submit(id, SliderEvent::setFrame(1)));
    futures.push_back(service.submit(id, SliderEvent::setCutoff(5.0)));
    futures.push_back(service.submit(id, SliderEvent::setMeasure(viz::Measure::Degree)));
    futures.push_back(service.submit(id, SliderEvent::refresh()));

    count degraded = 0;
    for (auto& f : futures) {
        const auto outcome = f.get();
        EXPECT_TRUE(outcome.accepted());
        if (outcome.degraded()) {
            ++degraded;
            EXPECT_TRUE(outcome.timing.degraded);
        }
    }
    service.drain();
    const auto snap = service.metrics();
    EXPECT_GE(degraded, 1u);
    EXPECT_GE(snap.counter("shed_degraded"), 1u);
    expectCounterInvariant(snap);
}

// The degradation ladder's order: beyond degradeQueueDepth a request runs
// with DegradeLevel::Approx (sampled measures, stated bound); only beyond
// staleQueueDepth does it escalate to Stale (older graph version). The
// tier each request was actually served at is visible in the outcome and
// the measure_tier_* counters.
TEST(SessionService, LadderEscalatesApproxThenStale) {
    const auto traj = slowTrajectory();
    SessionService::Options options;
    options.workers = 1;
    options.degradeQueueDepth = 0; // 1+ waiters behind -> Approx
    options.staleQueueDepth = 1;   // 2+ waiters behind -> Stale
    SessionService service(options);
    const auto id = service.openSession(traj);

    // FIFO pops while the setFrame executes: setCutoff sees 2 waiters
    // behind (Stale), setMeasure(Betweenness) sees 1 (Approx -> the engine
    // samples with its degradeEpsilon floor), refresh sees 0 (exact).
    std::vector<std::future<RequestOutcome>> futures;
    futures.push_back(service.submit(id, SliderEvent::setFrame(1)));
    futures.push_back(service.submit(id, SliderEvent::setCutoff(5.0)));
    futures.push_back(service.submit(id, SliderEvent::setMeasure(viz::Measure::Betweenness)));
    futures.push_back(service.submit(id, SliderEvent::refresh()));

    count staleServed = 0;
    count approxServed = 0;
    for (auto& f : futures) {
        const auto outcome = f.get();
        EXPECT_TRUE(outcome.accepted());
        if (outcome.timing.measureTier == viz::ResolutionTier::Stale) ++staleServed;
        if (outcome.timing.measureTier == viz::ResolutionTier::Approx) {
            ++approxServed;
            // An approximate answer always states its achieved bound.
            EXPECT_GT(outcome.timing.measureEps, 0.0);
            EXPECT_LE(outcome.timing.measureEps, 0.1);
            EXPECT_GT(outcome.timing.measureSamples, 0u);
        }
        // Any non-exact tier must have been flagged degraded.
        if (outcome.timing.measureTier != viz::ResolutionTier::Exact &&
            outcome.timing.measureTier != viz::ResolutionTier::Dynamic) {
            EXPECT_TRUE(outcome.degraded());
        }
    }
    service.drain();
    EXPECT_GE(staleServed, 1u);
    EXPECT_GE(approxServed, 1u);

    const auto snap = service.metrics();
    EXPECT_GE(snap.counter("shed_stale"), 1u);
    EXPECT_GE(snap.counter("shed_degraded"), snap.counter("shed_stale"));
    EXPECT_GE(snap.counter("measure_tier_stale"), staleServed);
    EXPECT_GE(snap.counter("measure_tier_approx"), approxServed);
    // Every completed request lands in exactly one tier bucket.
    EXPECT_EQ(snap.counter("measure_tier_exact") + snap.counter("measure_tier_dynamic") +
                  snap.counter("measure_tier_approx") + snap.counter("measure_tier_stale"),
              snap.counter("completed"));
    expectCounterInvariant(snap);
}

// Moderate overload must stop at the Approx rung: with the stale threshold
// out of reach, no request may be served from an old graph version no
// matter how many degrade. Approximate-with-bounds ranks above stale.
TEST(SessionService, ModerateBacklogNeverServesStale) {
    const auto traj = slowTrajectory();
    SessionService::Options options;
    options.workers = 1;
    options.degradeQueueDepth = 0;
    // staleQueueDepth stays at its default (6): four distinct event kinds
    // can never stack that deep, so the last rung is unreachable here.
    SessionService service(options);
    const auto id = service.openSession(traj);

    std::vector<std::future<RequestOutcome>> futures;
    futures.push_back(service.submit(id, SliderEvent::setFrame(1)));
    futures.push_back(service.submit(id, SliderEvent::setCutoff(5.0)));
    futures.push_back(service.submit(id, SliderEvent::setMeasure(viz::Measure::Betweenness)));
    futures.push_back(service.submit(id, SliderEvent::refresh()));

    for (auto& f : futures) {
        const auto outcome = f.get();
        EXPECT_TRUE(outcome.accepted());
        EXPECT_NE(outcome.timing.measureTier, viz::ResolutionTier::Stale);
    }
    service.drain();

    const auto snap = service.metrics();
    EXPECT_GE(snap.counter("shed_degraded"), 1u);
    EXPECT_EQ(snap.counter("shed_stale"), 0u);
    EXPECT_EQ(snap.counter("measure_tier_stale"), 0u);
    expectCounterInvariant(snap);
}

TEST(SessionService, BlownDeadlineIsFlaggedAndServedDegraded) {
    const auto traj = slowTrajectory();
    SessionService::Options options;
    options.workers = 1;
    SessionService service(options);
    const auto id = service.openSession(traj);

    // Microsecond deadline: anything that waits in the queue at all has
    // missed it. The request is still served (degraded), never dropped.
    std::vector<std::future<RequestOutcome>> futures;
    futures.push_back(service.submit(id, SliderEvent::setFrame(1, /*deadlineMs=*/1e-4)));
    futures.push_back(service.submit(id, SliderEvent::setCutoff(5.0, /*deadlineMs=*/1e-4)));
    futures.push_back(service.submit(id, SliderEvent::refresh(/*deadlineMs=*/1e-4)));

    count missed = 0;
    for (auto& f : futures) {
        const auto outcome = f.get();
        EXPECT_TRUE(outcome.accepted());
        if (outcome.deadlineMissed) {
            ++missed;
            EXPECT_EQ(outcome.status, RequestStatus::OkDegraded);
        }
    }
    service.drain();
    EXPECT_GE(missed, 1u);
    EXPECT_EQ(service.metrics().counter("deadline_missed"), missed);
}

TEST(SessionService, CloseSessionRejectsBacklogAndInvalidatesId) {
    const auto traj = slowTrajectory();
    SessionService::Options options;
    options.workers = 1;
    SessionService service(options);
    const auto id = service.openSession(traj);

    std::vector<std::future<RequestOutcome>> futures;
    for (count i = 0; i < 6; ++i) {
        futures.push_back(service.submit(
            id, i % 2 == 0 ? SliderEvent::setFrame(i % 4) : SliderEvent::setCutoff(5.0)));
    }
    service.closeSession(id);

    // Every future still resolves — executed, coalesced, or rejected.
    for (auto& f : futures) f.get();
    service.drain();
    EXPECT_EQ(service.activeSessions(), 0u);
    expectCounterInvariant(service.metrics());
    EXPECT_THROW(service.submit(id, SliderEvent::refresh()), std::invalid_argument);
    EXPECT_THROW((void)service.appliedEvents(id), std::invalid_argument);
}

TEST(SessionService, UnknownSessionThrows) {
    SessionService service;
    EXPECT_THROW(service.submit(999, SliderEvent::refresh()), std::invalid_argument);
}

// The TSan workhorse: several threads hammer their own sessions plus one
// shared session with interleaved slider events. Asserts the service-wide
// accounting invariant, that every accepted request resolves, and that
// each private session's applied log is a subsequence of its submission
// order (per-session FIFO ordering survives coalescing).
TEST(SessionService, ConcurrentClientsOrderingAndAccounting) {
    const auto traj = smallTrajectory();
    SessionService::Options options;
    options.workers = 4;
    options.maxQueuedPerSession = 64; // no rejections: isolate ordering
    SessionService service(options);

    constexpr count kThreads = 4;
    constexpr count kEventsPerThread = 40;
    const auto shared = service.openSession(traj);
    std::vector<serve::SessionId> privateIds;
    for (count t = 0; t < kThreads; ++t) privateIds.push_back(service.openSession(traj));

    auto makeEvent = [](count i) {
        switch (i % 4) {
        case 0: return SliderEvent::setFrame(static_cast<rinkit::index>(i % 4));
        case 1: return SliderEvent::setCutoff(4.0 + 0.25 * static_cast<double>(i % 5));
        case 2:
            return SliderEvent::setMeasure(i % 8 < 4 ? viz::Measure::Degree
                                                     : viz::Measure::Closeness);
        default: return SliderEvent::refresh();
        }
    };

    std::vector<std::vector<SliderEvent::Kind>> submittedKinds(kThreads);
    std::vector<std::thread> threads;
    std::vector<std::vector<std::future<RequestOutcome>>> futures(kThreads);
    for (count t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (count i = 0; i < kEventsPerThread; ++i) {
                const auto event = makeEvent(i + t);
                submittedKinds[t].push_back(event.kind);
                futures[t].push_back(service.submit(privateIds[t], event));
                futures[t].push_back(service.submit(shared, makeEvent(i * 3 + t)));
            }
        });
    }
    for (auto& th : threads) th.join();

    count accepted = 0;
    for (auto& perThread : futures) {
        for (auto& f : perThread) {
            if (f.get().accepted()) ++accepted;
        }
    }
    service.drain();
    EXPECT_GE(accepted, kThreads * kEventsPerThread); // at least all private ones

    const auto snap = service.metrics();
    EXPECT_EQ(snap.counter("submitted"), 2 * kThreads * kEventsPerThread);
    expectCounterInvariant(snap);
    EXPECT_EQ(snap.counter("rejected"), 0u);

    // Ordering: coalescing deletes entries from the submission sequence
    // but never reorders it, so each applied log must be a subsequence.
    for (count t = 0; t < kThreads; ++t) {
        const auto applied = service.appliedEvents(privateIds[t]);
        EXPECT_FALSE(applied.empty());
        std::size_t cursor = 0;
        for (const auto kind : applied) {
            while (cursor < submittedKinds[t].size() && submittedKinds[t][cursor] != kind)
                ++cursor;
            ASSERT_LT(cursor, submittedKinds[t].size())
                << "applied log is not a subsequence of the submission order";
            ++cursor;
        }
    }
}

TEST(JupyterHub, DispatchesSliderEventsIntoAttachedService) {
    auto cluster = cloud::Cluster::paperReferenceCluster(2, cloud::Resources{64000, 262144});
    cloud::JupyterHub hub(cluster);
    const auto traj = smallTrajectory();
    SessionService service;

    ASSERT_TRUE(hub.login("alice"));
    // Without an attached service the slider route reports unroutable.
    EXPECT_FALSE(hub.routeUserRequest("alice", "10.0.0.1", SliderEvent::refresh()).has_value());

    hub.attachService(service, traj);
    auto fut = hub.routeUserRequest("alice", "10.0.0.1", SliderEvent::setFrame(1));
    ASSERT_TRUE(fut.has_value());
    EXPECT_TRUE(fut->get().accepted());
    EXPECT_EQ(service.activeSessions(), 1u);

    // Unknown users are not routable; logout tears the serve session down.
    EXPECT_FALSE(hub.routeUserRequest("mallory", "10.0.0.2", SliderEvent::refresh()).has_value());
    hub.logout("alice");
    EXPECT_FALSE(hub.routeUserRequest("alice", "10.0.0.1", SliderEvent::refresh()).has_value());
    EXPECT_EQ(service.activeSessions(), 0u);
}

} // namespace
