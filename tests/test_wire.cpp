// Tests for the binary wire protocol (rinkit::wire): primitive codec
// round-trips, keyframe/delta scene-frame round-trips, the delta-stream ==
// keyframe bit-identity invariant, resync/keyframe triggers, and
// hostile-input rejection (truncation, byte flips, bad headers). The
// robustness tests double as the ASan/UBSan fuzz target that
// scripts/verify.sh --wire runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "src/layout/coarsening.hpp"
#include "src/viz/scene.hpp"
#include "src/wire/scene_frame.hpp"
#include "src/wire/wire_format.hpp"

namespace rinkit::wire {
namespace {

using Edge = std::pair<node, node>;

// ------------------------------------------------------------- primitives

TEST(WireFormat, VarintRoundTrip) {
    const std::uint64_t values[] = {0,      1,         127,        128,
                                    300,    16383,     16384,      0xffffffffull,
                                    1ull << 56, ~0ull};
    ByteWriter w;
    for (const auto v : values) w.varint(v);
    ByteReader r(w.bytes());
    for (const auto v : values) EXPECT_EQ(r.varint(), v);
    r.expectEnd();
}

TEST(WireFormat, SvarintRoundTrip) {
    const std::int64_t values[] = {0,  1,  -1, 2, -2, 63, -64, 12345, -54321,
                                   std::numeric_limits<std::int64_t>::max(),
                                   std::numeric_limits<std::int64_t>::min()};
    ByteWriter w;
    for (const auto v : values) w.svarint(v);
    ByteReader r(w.bytes());
    for (const auto v : values) EXPECT_EQ(r.svarint(), v);
    r.expectEnd();
}

TEST(WireFormat, ZigzagKeepsSmallMagnitudesSmall) {
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
    for (std::int64_t v : {-65535ll, -1ll, 0ll, 1ll, 65535ll})
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
}

TEST(WireFormat, ScalarsAndStringsRoundTrip) {
    ByteWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.f32(3.5f);
    w.f64(-2.25);
    w.string("maxent view");
    ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.f32(), 3.5f);
    EXPECT_EQ(r.f64(), -2.25);
    EXPECT_EQ(r.string(), "maxent view");
    r.expectEnd();
}

TEST(WireFormat, TruncatedReadsThrow) {
    const Bytes two = {0x01, 0x02};
    EXPECT_THROW(ByteReader(two).u32(), WireError);
    EXPECT_THROW(ByteReader(two).u64(), WireError);
    const Bytes cont = {0x80}; // continuation bit set, no next byte
    EXPECT_THROW(ByteReader(cont).varint(), WireError);
}

TEST(WireFormat, OverlongVarintRejected) {
    Bytes overlong(11, 0x80);
    EXPECT_THROW(ByteReader(overlong).varint(), WireError);
}

TEST(WireFormat, BoundedCountRejectsDishonestCounts) {
    const Bytes small(16, 0);
    ByteReader r(small);
    EXPECT_EQ(r.boundedCount(4, 4, "items"), 4u);
    EXPECT_THROW(r.boundedCount(5, 4, "items"), WireError);
    // A hostile count near 2^64 must not overflow the check either.
    EXPECT_THROW(r.boundedCount(~0ull, 4, "items"), WireError);
}

TEST(WireFormat, StringLengthCapEnforced) {
    ByteWriter w;
    w.string(std::string(100, 'x'));
    ByteReader r(w.bytes());
    EXPECT_THROW(r.string(10), WireError);
}

// ------------------------------------------------------------- QuantGrid

TEST(QuantGrid, ErrorWithinBound) {
    const QuantGrid grid{{-12.0, -3.0, 0.0}, {9.0, 14.0, 31.0}};
    const Point3 err = grid.maxError();
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> ux(grid.lo.x, grid.hi.x);
    std::uniform_real_distribution<double> uy(grid.lo.y, grid.hi.y);
    std::uniform_real_distribution<double> uz(grid.lo.z, grid.hi.z);
    for (int i = 0; i < 2000; ++i) {
        const Point3 p{ux(rng), uy(rng), uz(rng)};
        const Point3 q = grid.dequantize(grid.quantize(p));
        EXPECT_LE(std::abs(p.x - q.x), err.x * (1.0 + 1e-9));
        EXPECT_LE(std::abs(p.y - q.y), err.y * (1.0 + 1e-9));
        EXPECT_LE(std::abs(p.z - q.z), err.z * (1.0 + 1e-9));
    }
}

TEST(QuantGrid, DegenerateAxisMapsToLo) {
    const QuantGrid grid{{0.0, 5.0, 0.0}, {1.0, 5.0, 1.0}}; // flat y
    const auto q = grid.quantize({0.5, 5.0, 0.25});
    EXPECT_EQ(q[1], 0);
    EXPECT_EQ(grid.dequantize(q).y, 5.0);
    EXPECT_EQ(grid.maxError().y, 0.0);
}

// ----------------------------------------------------- scene-frame fixture

/// Deterministic synthetic two-view state: positions, a small palette of
/// colors, sorted edge set, per-node scores. step() mutates it the way the
/// widget does between updates (position drift inside the bounding box,
/// some color/score changes, an edge churn).
struct TestWorld {
    static constexpr count kNodes = 48;
    std::mt19937 rng{12345};
    std::vector<Point3> posA, posB;
    std::vector<viz::Color> colA, colB;
    std::vector<double> scores;
    std::vector<Edge> edges;

    TestWorld() {
        std::uniform_real_distribution<double> u(-10.0, 10.0);
        for (count i = 0; i < kNodes; ++i) {
            posA.push_back({u(rng), u(rng), u(rng)});
            posB.push_back({u(rng), u(rng), u(rng)});
            colA.push_back(colorOf(i % 5));
            colB.push_back(colorOf((i + 2) % 5));
            scores.push_back(static_cast<double>(i) * 0.25);
        }
        for (node u2 = 0; u2 < kNodes; ++u2) {
            for (node v = u2 + 1; v < kNodes; v += 5) edges.push_back({u2, v});
        }
        std::sort(edges.begin(), edges.end());
    }

    static viz::Color colorOf(count i) {
        return viz::Color{static_cast<int>(40 * i + 10), static_cast<int>(20 * i),
                          static_cast<int>(255 - 30 * i)};
    }

    viz::Scene sceneA(bool withEdges = true) const { return scene("protein", posA, colA, withEdges); }
    viz::Scene sceneB(bool withEdges = true) const { return scene("maxent", posB, colB, withEdges); }

    viz::Scene scene(std::string title, const std::vector<Point3>& pos,
                     const std::vector<viz::Color>& col, bool withEdges) const {
        viz::Scene s;
        s.title = std::move(title);
        s.nodePositions = pos;
        s.nodeColors = col;
        s.nodeSizes = {6.0};
        if (withEdges) s.edges = edges;
        return s;
    }

    /// Mutates in place; the drift stays well inside the initial bounding
    /// box (plus grid padding) so delta frames never trip the grid trigger.
    void step() {
        std::uniform_real_distribution<double> jitter(-0.05, 0.05);
        std::uniform_int_distribution<count> pick(0, kNodes - 1);
        for (count i = 0; i < kNodes; i += 3) {
            posA[i].x += jitter(rng);
            posA[i].y += jitter(rng);
            posB[i].z += jitter(rng);
        }
        colA[pick(rng)] = colorOf(pick(rng) % 5);
        colB[pick(rng)] = viz::Color{static_cast<int>(pick(rng) % 256), 7, 7}; // palette growth
        scores[pick(rng)] += 1.0;
        // Edge churn: drop the first edge, add a fresh one (kept sorted).
        if (!edges.empty()) edges.erase(edges.begin());
        const Edge fresh{0, static_cast<node>(1 + pick(rng) % (kNodes - 1))};
        const auto it = std::lower_bound(edges.begin(), edges.end(), fresh);
        if (it == edges.end() || *it != fresh) edges.insert(it, fresh);
    }
};

Bytes encodeWorld(DeltaEncoder& enc, const TestWorld& w, Ack ack,
                  const EdgeDiffHint* hint = nullptr) {
    const auto a = w.sceneA();
    const auto b = w.sceneB();
    return enc.encode({&a, &b}, w.scores, ack, hint);
}

// --------------------------------------------------------- keyframe basics

TEST(SceneFrame, KeyframeRoundTrip) {
    TestWorld w;
    DeltaEncoder enc;
    const Bytes frame = encodeWorld(enc, w, Ack{});
    EXPECT_TRUE(enc.lastStats().keyframe);
    EXPECT_STREQ(enc.lastStats().reason, "first");

    FrameDecoder dec;
    const PatchStats stats = dec.apply(frame);
    EXPECT_TRUE(stats.keyframe);
    EXPECT_EQ(stats.nodeCount, TestWorld::kNodes);
    EXPECT_EQ(stats.viewCount, 2u);
    EXPECT_EQ(stats.elementsTouched(), 2 * (TestWorld::kNodes + w.edges.size()));

    // Edges reconstruct exactly; scores at f32 precision.
    EXPECT_EQ(dec.edges(), w.edges);
    ASSERT_EQ(dec.scores().size(), w.scores.size());
    for (count i = 0; i < w.scores.size(); ++i)
        EXPECT_EQ(dec.scores()[i], static_cast<float>(w.scores[i]));

    // Positions within the per-axis quantization error bound; colors exact.
    ASSERT_EQ(dec.views().size(), 2u);
    const std::vector<Point3>* truth[2] = {&w.posA, &w.posB};
    const std::vector<viz::Color>* colors[2] = {&w.colA, &w.colB};
    for (count v = 0; v < 2; ++v) {
        const ViewState& view = dec.views()[v];
        EXPECT_EQ(view.title, v == 0 ? "protein" : "maxent");
        EXPECT_EQ(view.nodeSize, 6.0);
        const Point3 err = view.grid.maxError();
        const auto got = view.positions();
        for (count i = 0; i < TestWorld::kNodes; ++i) {
            EXPECT_LE(std::abs(got[i].x - (*truth[v])[i].x), err.x * (1.0 + 1e-9));
            EXPECT_LE(std::abs(got[i].y - (*truth[v])[i].y), err.y * (1.0 + 1e-9));
            EXPECT_LE(std::abs(got[i].z - (*truth[v])[i].z), err.z * (1.0 + 1e-9));
        }
        EXPECT_EQ(view.resolvedColors(), *colors[v]);
    }
    EXPECT_EQ(dec.ack(), (Ack{1, 0}));
}

TEST(SceneFrame, DeltaFramesAreMuchSmallerThanKeyframes) {
    TestWorld w;
    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorld(enc, w, Ack{}));
    const std::size_t keyBytes = enc.lastStats().bytes;
    w.step();
    dec.apply(encodeWorld(enc, w, dec.ack()));
    EXPECT_FALSE(enc.lastStats().keyframe);
    EXPECT_LT(enc.lastStats().bytes * 5, keyBytes);
}

// --------------------------------------------- delta-stream bit identity

TEST(SceneFrame, DeltaStreamMatchesKeyframeBitForBit) {
    TestWorld w;
    DeltaEncoder enc;
    FrameDecoder viaDeltas;
    viaDeltas.apply(encodeWorld(enc, w, Ack{}));

    for (int i = 0; i < 6; ++i) {
        w.step();
        const PatchStats stats = viaDeltas.apply(encodeWorld(enc, w, viaDeltas.ack()));
        EXPECT_FALSE(stats.keyframe) << "step " << i;
        EXPECT_GT(stats.markersTouched, 0u);
    }

    // A forced keyframe of the same state must decode (in a fresh decoder)
    // to exactly the delta-accumulated client state: same quantized
    // positions, same grid, same resolved colors, scores, edges.
    enc.forceKeyframe();
    FrameDecoder viaKeyframe;
    viaKeyframe.apply(encodeWorld(enc, w, viaDeltas.ack()));
    EXPECT_STREQ(enc.lastStats().reason, "forced");

    EXPECT_EQ(viaKeyframe.edges(), viaDeltas.edges());
    EXPECT_EQ(viaKeyframe.scores(), viaDeltas.scores());
    ASSERT_EQ(viaKeyframe.views().size(), viaDeltas.views().size());
    for (count v = 0; v < viaKeyframe.views().size(); ++v) {
        const ViewState& kf = viaKeyframe.views()[v];
        const ViewState& dl = viaDeltas.views()[v];
        EXPECT_EQ(kf.grid, dl.grid) << "grid rebuilt instead of reused, view " << v;
        EXPECT_EQ(kf.qpos, dl.qpos) << "quantized positions diverged, view " << v;
        // The keyframe rebuilds its palette compactly (first-occurrence
        // order), so compare resolved colors, not raw indices.
        EXPECT_EQ(kf.resolvedColors(), dl.resolvedColors()) << "view " << v;
        EXPECT_EQ(kf.title, dl.title);
        EXPECT_EQ(kf.nodeSize, dl.nodeSize);
    }
}

// ----------------------------------------------------- keyframe triggers

TEST(SceneFrame, ResyncAfterClientStateLoss) {
    TestWorld w;
    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorld(enc, w, Ack{}));
    w.step();
    dec.apply(encodeWorld(enc, w, dec.ack()));
    EXPECT_FALSE(enc.lastStats().keyframe);

    dec.reset(); // tab reload
    EXPECT_EQ(dec.ack(), Ack{});
    w.step();
    dec.apply(encodeWorld(enc, w, dec.ack()));
    EXPECT_TRUE(enc.lastStats().keyframe);
    EXPECT_STREQ(enc.lastStats().reason, "resync");
    EXPECT_EQ(dec.edges(), w.edges);
}

TEST(SceneFrame, PeriodicKeyframeAtInterval) {
    TestWorld w;
    DeltaEncoder enc(DeltaEncoderOptions{3, 0.10});
    FrameDecoder dec;
    dec.apply(encodeWorld(enc, w, Ack{})); // keyframe, seq 0
    const char* expected[] = {"delta", "delta", "periodic", "delta"};
    for (const char* want : expected) {
        w.step();
        dec.apply(encodeWorld(enc, w, dec.ack()));
        EXPECT_STREQ(enc.lastStats().reason, want);
    }
    EXPECT_EQ(dec.ack(), (Ack{2, 1}));
}

TEST(SceneFrame, GridOverflowForcesKeyframe) {
    TestWorld w;
    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorld(enc, w, Ack{}));
    w.posA[0] = {500.0, 0.0, 0.0}; // way outside the padded box
    dec.apply(encodeWorld(enc, w, dec.ack()));
    EXPECT_TRUE(enc.lastStats().keyframe);
    EXPECT_STREQ(enc.lastStats().reason, "grid");
    // The new grid covers the runaway node within its (larger) error bound.
    const auto err = dec.views()[0].grid.maxError();
    EXPECT_LE(std::abs(dec.views()[0].positions()[0].x - 500.0), err.x * (1.0 + 1e-9));
}

TEST(SceneFrame, ViewShapeChangeForcesKeyframe) {
    TestWorld w;
    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorld(enc, w, Ack{}));
    auto a = w.sceneA();
    auto b = w.sceneB();
    b.title = "maxent (delta mode)";
    dec.apply(enc.encode({&a, &b}, w.scores, dec.ack(), nullptr));
    EXPECT_TRUE(enc.lastStats().keyframe);
    EXPECT_STREQ(enc.lastStats().reason, "shape");
}

// ------------------------------------------------------- edge diff hints

TEST(SceneFrame, HintPathMatchesFullListPathByteForByte) {
    TestWorld w;
    DeltaEncoder full, hinted;
    const Bytes k1 = encodeWorld(full, w, Ack{});
    const Bytes k2 = encodeWorld(hinted, w, Ack{});
    EXPECT_EQ(k1, k2);

    // Compute the exact diff of one step, then feed it as a hint to one
    // encoder (scenes without edge lists) and let the other diff full
    // lists itself. The emitted frames must be identical.
    const std::vector<Edge> before = w.edges;
    w.step();
    std::vector<Edge> added, removed;
    std::set_difference(w.edges.begin(), w.edges.end(), before.begin(), before.end(),
                        std::back_inserter(added));
    std::set_difference(before.begin(), before.end(), w.edges.begin(), w.edges.end(),
                        std::back_inserter(removed));

    const Bytes viaFull = encodeWorld(full, w, Ack{1, 0});
    const EdgeDiffHint hint{&added, &removed};
    const auto a = w.sceneA(false); // no edge copies on the hint path
    const auto b = w.sceneB(false);
    const Bytes viaHint = hinted.encode({&a, &b}, w.scores, Ack{1, 0}, &hint);
    EXPECT_FALSE(full.lastStats().keyframe);
    EXPECT_EQ(viaFull, viaHint);
}

TEST(SceneFrame, EmptyHintMeansEdgesUnchanged) {
    TestWorld w;
    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorld(enc, w, Ack{}));
    const EdgeDiffHint noChange{};
    const auto a = w.sceneA(false);
    const auto b = w.sceneB(false);
    const PatchStats stats = dec.apply(enc.encode({&a, &b}, w.scores, dec.ack(), &noChange));
    EXPECT_EQ(stats.edgesAdded, 0u);
    EXPECT_EQ(stats.edgesRemoved, 0u);
    EXPECT_EQ(dec.edges(), w.edges);
}

TEST(SceneFrame, HintBeforeFirstFrameIsALogicError) {
    TestWorld w;
    DeltaEncoder enc;
    const EdgeDiffHint hint{};
    const auto a = w.sceneA();
    const auto b = w.sceneB();
    EXPECT_THROW(enc.encode({&a, &b}, w.scores, Ack{}, &hint), std::logic_error);
}

// ------------------------------------------------------ hostile inputs

TEST(SceneFrame, DecoderRejectsBadHeaders) {
    TestWorld w;
    DeltaEncoder enc;
    const Bytes frame = encodeWorld(enc, w, Ack{});

    Bytes badMagic = frame;
    badMagic[0] ^= 0xff;
    FrameDecoder dec;
    EXPECT_THROW(dec.apply(badMagic), WireError);

    Bytes badVersion = frame;
    badVersion[4] = 99;
    EXPECT_THROW(dec.apply(badVersion), WireError);

    Bytes badFlags = frame;
    badFlags[5] |= 0x02; // unknown flag bit
    EXPECT_THROW(dec.apply(badFlags), WireError);
}

TEST(SceneFrame, StaleDeltaRejectedAndStateDropped) {
    TestWorld w;
    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorld(enc, w, Ack{}));
    w.step();
    const Bytes delta = encodeWorld(enc, w, dec.ack());
    dec.apply(delta);
    // Replaying the same delta mismatches (seq already applied): the
    // decoder must reject it AND drop state so the next ack forces resync.
    EXPECT_THROW(dec.apply(delta), WireError);
    EXPECT_FALSE(dec.hasState());
    EXPECT_EQ(dec.ack(), Ack{});
    w.step();
    dec.apply(encodeWorld(enc, w, dec.ack()));
    EXPECT_STREQ(enc.lastStats().reason, "resync");
}

TEST(SceneFrame, DeltaWithoutStateRejected) {
    TestWorld w;
    DeltaEncoder enc;
    FrameDecoder primed;
    primed.apply(encodeWorld(enc, w, Ack{}));
    w.step();
    const Bytes delta = encodeWorld(enc, w, primed.ack());
    FrameDecoder fresh;
    EXPECT_THROW(fresh.apply(delta), WireError);
}

/// Every strict prefix of a valid frame must be rejected (the parse is
/// sequential, so a shortened buffer always runs dry mid-read).
TEST(SceneFrame, TruncatedFramesRejected) {
    TestWorld w;
    DeltaEncoder enc;
    const Bytes keyframe = encodeWorld(enc, w, Ack{});
    w.step();
    const Bytes delta = encodeWorld(enc, w, Ack{1, 0});

    for (std::size_t len = 0; len < keyframe.size(); ++len) {
        FrameDecoder dec;
        EXPECT_THROW(dec.apply(Bytes(keyframe.begin(), keyframe.begin() + len)),
                     WireError)
            << "keyframe prefix " << len;
        EXPECT_FALSE(dec.hasState());
    }
    for (std::size_t len = 0; len < delta.size(); ++len) {
        FrameDecoder dec;
        dec.apply(keyframe);
        EXPECT_THROW(dec.apply(Bytes(delta.begin(), delta.begin() + len)), WireError)
            << "delta prefix " << len;
        EXPECT_FALSE(dec.hasState());
    }
}

/// Byte-flip fuzz: every single-byte corruption of a valid frame either
/// decodes (the flip landed in a value field) or throws WireError — never
/// anything else, never UB (the ASan/UBSan run of this test is the real
/// assertion). After a rejected frame the stream must recover via resync.
TEST(SceneFrame, ByteFlipCorruptionIsRejectedOrHarmless) {
    TestWorld w;
    DeltaEncoder enc;
    const Bytes keyframe = encodeWorld(enc, w, Ack{});
    w.step();
    const Bytes delta = encodeWorld(enc, w, Ack{1, 0});

    std::mt19937 rng(99);
    std::uniform_int_distribution<int> mask(1, 255);
    count rejected = 0, survived = 0;
    for (std::size_t pos = 0; pos < delta.size(); ++pos) {
        Bytes corrupt = delta;
        corrupt[pos] ^= static_cast<std::uint8_t>(mask(rng));
        FrameDecoder dec;
        dec.apply(keyframe);
        try {
            dec.apply(corrupt);
            ++survived;
            EXPECT_TRUE(dec.hasState());
        } catch (const WireError&) {
            ++rejected;
            EXPECT_FALSE(dec.hasState());
            EXPECT_EQ(dec.ack(), Ack{});
        }
    }
    // The format is dense, so most flips must be caught by validation;
    // both outcomes should occur (value-field flips survive by design).
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(survived, 0u);

    for (std::size_t pos = 0; pos < keyframe.size(); ++pos) {
        Bytes corrupt = keyframe;
        corrupt[pos] ^= static_cast<std::uint8_t>(mask(rng));
        FrameDecoder dec;
        try {
            dec.apply(corrupt);
        } catch (const WireError&) {
            EXPECT_FALSE(dec.hasState());
        }
    }
}

/// The count fields of a delta frame, inflated adversarially, must not
/// drive huge allocations or out-of-bounds writes.
TEST(SceneFrame, HostileCountsRejected) {
    ByteWriter head;
    head.u32(kFrameMagic);
    head.u8(kFrameVersion);
    head.u8(1); // keyframe
    head.u32(1); // epoch
    head.u32(0); // seq
    head.varint(~0ull >> 1); // absurd node count
    head.varint(2);
    FrameDecoder dec;
    EXPECT_THROW(dec.apply(head.take()), WireError);

    ByteWriter views;
    views.u32(kFrameMagic);
    views.u8(kFrameVersion);
    views.u8(1);
    views.u32(1);
    views.u32(0);
    views.varint(1);
    views.varint(65); // view count above the cap
    EXPECT_THROW(dec.apply(views.take()), WireError);
}

// ------------------------------------------------- LOD progressive scenes

/// Fixed synthetic coarsening of the TestWorld graph: clusters of 4
/// consecutive fine nodes, coarse edges = fine edges mapped into cluster
/// space (self-loops dropped, deduplicated, sorted). Shape-compatible with
/// what buildLodMapping produces, but independent of the matching
/// heuristics so the wire tests pin their own ground truth.
LodMapping testMapping(const TestWorld& w) {
    LodMapping lod;
    lod.fineNodes = TestWorld::kNodes;
    lod.coarseNodes = TestWorld::kNodes / 4;
    lod.levels = 2;
    for (node u = 0; u < TestWorld::kNodes; ++u) lod.fineToCoarse.push_back(u / 4);
    for (const auto& [u, v] : w.edges) {
        const node cu = lod.fineToCoarse[u], cv = lod.fineToCoarse[v];
        if (cu != cv) lod.coarseEdges.push_back({std::min(cu, cv), std::max(cu, cv)});
    }
    std::sort(lod.coarseEdges.begin(), lod.coarseEdges.end());
    lod.coarseEdges.erase(std::unique(lod.coarseEdges.begin(), lod.coarseEdges.end()),
                          lod.coarseEdges.end());
    return lod;
}

Bytes encodeWorldLod(DeltaEncoder& enc, const TestWorld& w, Ack ack, const LodMapping* lod,
                     const EdgeDiffHint* hint = nullptr) {
    const auto a = w.sceneA();
    const auto b = w.sceneB();
    return enc.encode({&a, &b}, w.scores, ack, hint, [lod] { return lod; });
}

TEST(SceneFrameLod, CoarsePlusRefineEqualsFullKeyframeState) {
    TestWorld w;
    const LodMapping lod = testMapping(w);

    // Reference: the same state shipped as a plain full keyframe.
    DeltaEncoder plainEnc;
    FrameDecoder plain;
    plain.apply(encodeWorld(plainEnc, w, Ack{}));

    DeltaEncoder enc;
    FrameDecoder dec;
    const Bytes coarse = encodeWorldLod(enc, w, Ack{}, &lod);
    EXPECT_TRUE(enc.lastStats().keyframe);
    EXPECT_TRUE(enc.lastStats().lodCoarse);
    EXPECT_EQ(enc.lastStats().lodCoarseNodes, lod.coarseNodes);
    EXPECT_EQ(enc.lastStats().lodLevels, lod.levels);
    ASSERT_TRUE(enc.hasRefineFrame());

    const PatchStats coarseStats = dec.apply(coarse);
    EXPECT_TRUE(coarseStats.keyframe);
    EXPECT_TRUE(coarseStats.lodCoarse);
    EXPECT_EQ(coarseStats.lodCoarseNodes, lod.coarseNodes);
    // First pixels are cheap: the coarse frame touches the skeleton, not
    // the full scene (the full keyframe touches every node and edge in
    // every view).
    EXPECT_LT(coarseStats.elementsTouched(), 2 * (TestWorld::kNodes + w.edges.size()));

    const PatchStats refineStats = dec.apply(enc.takeRefineFrame());
    EXPECT_FALSE(enc.hasRefineFrame());
    EXPECT_FALSE(refineStats.keyframe); // the refine half is an ordinary delta

    // Post-refine client state must equal the full-keyframe client state
    // exactly: same edges, scores, quantized positions, resolved colors.
    EXPECT_EQ(dec.edges(), plain.edges());
    EXPECT_EQ(dec.scores(), plain.scores());
    ASSERT_EQ(dec.views().size(), plain.views().size());
    for (count v = 0; v < dec.views().size(); ++v) {
        EXPECT_EQ(dec.views()[v].grid, plain.views()[v].grid) << "view " << v;
        EXPECT_EQ(dec.views()[v].qpos, plain.views()[v].qpos) << "view " << v;
        EXPECT_EQ(dec.views()[v].resolvedColors(), plain.views()[v].resolvedColors());
        EXPECT_EQ(dec.views()[v].title, plain.views()[v].title);
    }
    // The pair is one logical keyframe: (epoch, 0) then (epoch, 1).
    EXPECT_EQ(dec.ack(), (Ack{1, 1}));
}

TEST(SceneFrameLod, DeltaStreamContinuesAfterLodPair) {
    TestWorld w;
    const LodMapping lod = testMapping(w);
    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorldLod(enc, w, Ack{}, &lod));
    dec.apply(enc.takeRefineFrame());

    // Ordinary deltas ride on post-refine state; final state must match a
    // forced full keyframe of the same world bit for bit.
    for (int i = 0; i < 4; ++i) {
        w.step();
        const PatchStats stats = dec.apply(encodeWorldLod(enc, w, dec.ack(), &lod));
        EXPECT_FALSE(stats.keyframe) << "step " << i;
    }
    enc.forceKeyframe();
    FrameDecoder fresh;
    // No LOD provider on this encode: force the plain keyframe reference.
    fresh.apply(encodeWorld(enc, w, dec.ack()));
    EXPECT_EQ(fresh.edges(), dec.edges());
    EXPECT_EQ(fresh.scores(), dec.scores());
    for (count v = 0; v < fresh.views().size(); ++v)
        EXPECT_EQ(fresh.views()[v].qpos, dec.views()[v].qpos) << "view " << v;
}

TEST(SceneFrameLod, UncoarsenableMappingFallsBackToFullKeyframe) {
    TestWorld w;
    LodMapping lod; // coarseNodes == 0: "no LOD available"
    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorldLod(enc, w, Ack{}, &lod));
    EXPECT_TRUE(enc.lastStats().keyframe);
    EXPECT_FALSE(enc.lastStats().lodCoarse);
    EXPECT_FALSE(enc.hasRefineFrame());
    EXPECT_EQ(dec.edges(), w.edges);

    // A stale mapping (wrong fine node count) must also fall back.
    TestWorld w2;
    LodMapping stale = testMapping(w2);
    stale.fineNodes = TestWorld::kNodes + 1;
    DeltaEncoder enc2;
    FrameDecoder dec2;
    dec2.apply(encodeWorldLod(enc2, w2, Ack{}, &stale));
    EXPECT_FALSE(enc2.lastStats().lodCoarse);
    EXPECT_FALSE(enc2.hasRefineFrame());
}

TEST(SceneFrameLod, RefineMustBeTakenBeforeNextEncode) {
    TestWorld w;
    const LodMapping lod = testMapping(w);
    DeltaEncoder enc;
    encodeWorldLod(enc, w, Ack{}, &lod);
    ASSERT_TRUE(enc.hasRefineFrame());
    // Encoding the next frame while the refine half is still pending would
    // desynchronize the shadow state from the client.
    EXPECT_THROW(encodeWorldLod(enc, w, Ack{}, &lod), std::logic_error);
    enc.takeRefineFrame();
    EXPECT_THROW(enc.takeRefineFrame(), std::logic_error); // already taken
}

TEST(SceneFrameLod, CorruptCoarseFramesRejected) {
    TestWorld w;
    const LodMapping lod = testMapping(w);
    DeltaEncoder enc;
    const Bytes coarse = encodeWorldLod(enc, w, Ack{}, &lod);
    enc.takeRefineFrame();

    // Every truncated prefix must throw and leave no committed state.
    for (std::size_t len = 0; len < coarse.size(); ++len) {
        FrameDecoder dec;
        EXPECT_THROW(dec.apply(Bytes(coarse.begin(), coarse.begin() + len)), WireError)
            << "coarse prefix " << len;
        EXPECT_FALSE(dec.hasState());
    }

    // A prolongation-map entry pointing past the coarse node count must be
    // rejected. Header: magic(4) version(1) flags(1) epoch(4) seq(4), then
    // varint node count, varint view count, varint coarse count, then the
    // map (all counts here are < 128: one varint byte each).
    Bytes evil = coarse;
    ByteReader r(evil);
    r.u32();
    r.u8();
    r.u8();
    r.u32();
    r.u32();
    r.varint(); // node count
    r.varint(); // view count
    const std::size_t ncAt = coarse.size() - r.remaining();
    ASSERT_EQ(evil[ncAt], static_cast<std::uint8_t>(lod.coarseNodes));
    evil[ncAt + 1] = static_cast<std::uint8_t>(lod.coarseNodes); // f2c[0] == nc
    FrameDecoder dec;
    EXPECT_THROW(dec.apply(evil), WireError);

    // LOD flag without the keyframe flag is malformed by construction.
    Bytes badFlags = coarse;
    badFlags[5] = kFlagLodCoarse;
    FrameDecoder dec2;
    EXPECT_THROW(dec2.apply(badFlags), WireError);
}

TEST(SceneFrameLod, BuiltMappingRoundTripsOnRealCoarsening) {
    // End-to-end with the real coarsening stack: a mapping built by
    // buildLodMapping on a graph shaped like the scene's edge set must
    // encode/decode exactly like the synthetic one.
    TestWorld w;
    Graph g(TestWorld::kNodes, true);
    for (const auto& [u, v] : w.edges) g.addEdge(u, v, 1.0);
    const LodMapping lod = buildLodMapping(g, TestWorld::kNodes / 4);
    ASSERT_GT(lod.coarseNodes, 0u);
    ASSERT_LT(lod.coarseNodes, lod.fineNodes);

    DeltaEncoder plainEnc;
    FrameDecoder plain;
    plain.apply(encodeWorld(plainEnc, w, Ack{}));

    DeltaEncoder enc;
    FrameDecoder dec;
    dec.apply(encodeWorldLod(enc, w, Ack{}, &lod));
    dec.apply(enc.takeRefineFrame());
    EXPECT_EQ(dec.edges(), plain.edges());
    EXPECT_EQ(dec.scores(), plain.scores());
    for (count v = 0; v < dec.views().size(); ++v)
        EXPECT_EQ(dec.views()[v].qpos, plain.views()[v].qpos) << "view " << v;
}

} // namespace
} // namespace rinkit::wire
