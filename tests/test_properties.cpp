// Property-based tests: randomized operation sequences checked against a
// trivially correct reference model, plus cross-algorithm invariants that
// must hold on any input.
#include <gtest/gtest.h>

#include <omp.h>

#include <set>

#include "src/centrality/approx_betweenness.hpp"
#include "src/centrality/betweenness.hpp"
#include "src/centrality/closeness.hpp"
#include "src/centrality/core_decomposition.hpp"
#include "src/centrality/degree.hpp"
#include "src/centrality/eigenvector.hpp"
#include "src/centrality/local_clustering.hpp"
#include "src/centrality/pagerank.hpp"
#include "src/community/leiden.hpp"
#include "src/community/mapequation.hpp"
#include "src/community/plm.hpp"
#include "src/community/plp.hpp"
#include "src/community/quality.hpp"
#include "src/community/similarity.hpp"
#include "src/components/bfs.hpp"
#include "src/components/connected_components.hpp"
#include "src/components/csr_bfs.hpp"
#include "src/graph/csr_view.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/viz/measures.hpp"
#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/rin/dynamic_rin.hpp"
#include "src/support/random.hpp"

namespace rinkit {
namespace {

// ---------------------------------------------------------------------------
// Fuzz: dynamic Graph vs a reference edge-set model.
// ---------------------------------------------------------------------------

class GraphFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphFuzzP, RandomEditScriptMatchesReferenceModel) {
    Rng rng(GetParam());
    const count n = 30;
    Graph g(n);
    std::set<std::pair<node, node>> model;

    for (int step = 0; step < 2000; ++step) {
        const node u = static_cast<node>(rng.pick(n));
        node v = static_cast<node>(rng.pick(n));
        if (u == v) continue;
        const auto key = std::minmax(u, v);
        const std::pair<node, node> e{key.first, key.second};
        if (rng.chance(0.6)) {
            EXPECT_EQ(g.addEdge(u, v), model.insert(e).second);
        } else {
            EXPECT_EQ(g.removeEdge(u, v), model.erase(e) > 0);
        }
    }

    // Full-state agreement.
    EXPECT_EQ(g.numberOfEdges(), model.size());
    for (node u = 0; u < n; ++u) {
        for (node v = u + 1; v < n; ++v) {
            EXPECT_EQ(g.hasEdge(u, v), model.count({u, v}) > 0);
        }
    }
    // Adjacency symmetric + sorted.
    g.forNodes([&](node u) {
        const auto nb = g.neighbors(u);
        EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
        for (node v : nb) {
            const auto nv = g.neighbors(v);
            EXPECT_TRUE(std::binary_search(nv.begin(), nv.end(), u));
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzzP, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Cross-algorithm invariants on random graphs.
// ---------------------------------------------------------------------------

class RandomGraphP : public ::testing::TestWithParam<std::uint64_t> {
public:
    Graph make() const {
        Rng rng(GetParam());
        return generators::erdosRenyi(80, 0.03 + 0.05 * rng.real01(), GetParam());
    }
};

TEST_P(RandomGraphP, BetweennessSumEqualsPairDistanceExcess) {
    // Sum of betweenness = sum over connected pairs of (d(s,t) - 1):
    // every interior vertex of a shortest path contributes exactly once in
    // expectation over the path distribution.
    const auto g = make();
    Betweenness b(g);
    b.run();
    double bcSum = 0.0;
    for (double s : b.scores()) bcSum += s;

    double excess = 0.0;
    for (node s = 0; s < g.numberOfNodes(); ++s) {
        Bfs bfs(g, s);
        bfs.run();
        for (node t = s + 1; t < g.numberOfNodes(); ++t) {
            const double d = bfs.distance(t);
            if (d != infdist && d >= 1.0) excess += d - 1.0;
        }
    }
    EXPECT_NEAR(bcSum, excess, 1e-6);
}

TEST_P(RandomGraphP, DegreeOneNodesHaveZeroBetweenness) {
    const auto g = make();
    Betweenness b(g);
    b.run();
    g.forNodes([&](node u) {
        if (g.degree(u) <= 1) EXPECT_DOUBLE_EQ(b.score(u), 0.0);
    });
}

TEST_P(RandomGraphP, PageRankMassConservedAndPositive) {
    const auto g = make();
    PageRank pr(g, 0.85, 1e-12, 500);
    pr.run();
    double sum = 0.0;
    for (double s : pr.scores()) {
        EXPECT_GT(s, 0.0);
        sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-8);
}

TEST_P(RandomGraphP, ClosenessBoundedByOne) {
    const auto g = make();
    ClosenessCentrality c(g);
    c.run();
    for (double s : c.scores()) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0 + 1e-12);
    }
}

TEST_P(RandomGraphP, ComponentsPartitionTheGraph) {
    const auto g = make();
    ConnectedComponents cc(g);
    cc.run();
    // Every edge stays within one component; sizes sum to n.
    g.forEdges([&](node u, node v) {
        EXPECT_EQ(cc.componentOf(u), cc.componentOf(v));
    });
    count total = 0;
    for (count s : cc.componentSizes()) total += s;
    EXPECT_EQ(total, g.numberOfNodes());
    // BFS reachability defines the same equivalence.
    Bfs bfs(g, 0);
    bfs.run();
    for (node u = 0; u < g.numberOfNodes(); ++u) {
        EXPECT_EQ(bfs.distance(u) != infdist, cc.componentOf(u) == cc.componentOf(0));
    }
}

TEST_P(RandomGraphP, PlmPartitionValidAndNoWorseThanTrivial) {
    const auto g = make();
    Plm plm(g);
    plm.run();
    const auto& p = plm.getPartition();
    EXPECT_EQ(p.numberOfElements(), g.numberOfNodes());
    for (node u = 0; u < g.numberOfNodes(); ++u) {
        EXPECT_LT(p[u], p.numberOfSubsets());
    }
    Partition allInOne(g.numberOfNodes());
    EXPECT_GE(modularity(p, g) + 1e-12, modularity(allInOne, g));
}

TEST_P(RandomGraphP, NmiSelfIdentityAndBounds) {
    const auto g = make();
    Plm plm(g);
    plm.run();
    const auto& p = plm.getPartition();
    EXPECT_NEAR(nmi(p, p), 1.0, 1e-12);
    Partition singletons(g.numberOfNodes());
    singletons.allToSingletons();
    const double v = nmi(p, singletons);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphP, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Fuzz: DynamicRin under random slider storms stays equal to fresh builds.
// ---------------------------------------------------------------------------

class WidgetFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WidgetFuzzP, RandomSliderSequenceKeepsGraphExact) {
    Rng rng(GetParam());
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 8;
    gen.unfoldingEvents = 1;
    gen.seed = GetParam();
    const auto traj = md::TrajectoryGenerator(gen).generate(md::villinHeadpiece());

    rin::DynamicRin dyn(traj, rin::DistanceCriterion::MinimumAtomDistance, 5.0);
    const rin::RinBuilder reference(rin::DistanceCriterion::MinimumAtomDistance);

    for (int step = 0; step < 25; ++step) {
        if (rng.chance(0.5)) {
            dyn.setCutoff(4.0 + 4.0 * rng.real01());
        } else {
            dyn.setFrame(static_cast<index>(rng.pick(traj.frameCount())));
        }
        const auto fresh =
            reference.build(traj.proteinAtFrame(dyn.frame()), dyn.cutoff());
        ASSERT_TRUE(dyn.graph() == fresh)
            << "step " << step << " frame " << dyn.frame() << " cutoff " << dyn.cutoff();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidgetFuzzP, ::testing::Values(7, 17, 27));

// ---------------------------------------------------------------------------
// RIN invariants across the full (criterion, cutoff) grid.
// ---------------------------------------------------------------------------

struct RinGridCase {
    rin::DistanceCriterion criterion;
    double cutoff;
};

class RinGridP : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RinGridP, RinIsSimpleSymmetricAndCutoffConsistent) {
    const auto criterion = static_cast<rin::DistanceCriterion>(std::get<0>(GetParam()));
    const double cutoff = std::get<1>(GetParam());
    const auto protein = md::alpha3D();
    const rin::RinBuilder builder(criterion);
    const auto g = builder.build(protein, cutoff);

    EXPECT_EQ(g.numberOfNodes(), protein.size());
    // Every reported contact obeys the cutoff under its criterion.
    for (const auto& c : builder.contacts(protein, cutoff)) {
        EXPECT_LE(c.distance, cutoff + 1e-9);
        EXPECT_NE(c.u, c.v);
    }
    // Edges agree with contacts.
    EXPECT_EQ(g.numberOfEdges(), builder.contacts(protein, cutoff).size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RinGridP,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(4.0, 4.5, 5.5, 6.5, 7.5, 8.5)));

// ---------------------------------------------------------------------------
// Fuzz: CSR snapshots under random edge storms stay equal to fresh builds.
// ---------------------------------------------------------------------------

class CsrStormP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrStormP, SnapshotByteIdenticalToFreshBuildAfterEdits) {
    Rng rng(GetParam());
    for (const bool weighted : {false, true}) {
        const count n = 40;
        Graph g(n, weighted);
        CsrSnapshot snap;
        for (int step = 0; step < 1500; ++step) {
            const node u = static_cast<node>(rng.pick(n));
            node v = static_cast<node>(rng.pick(n));
            if (u == v) continue;
            if (rng.chance(0.55)) {
                g.addEdge(u, v, weighted ? 0.5 + rng.real01() : 1.0);
            } else if (weighted && g.hasEdge(u, v) && rng.chance(0.3)) {
                g.setWeight(u, v, 0.5 + rng.real01());
            } else {
                g.removeEdge(u, v);
            }
            // Refresh the incremental-reuse snapshot at random points in
            // the storm; it must always equal a from-scratch build.
            if (rng.chance(0.1)) {
                EXPECT_TRUE(snap.get(g) == CsrView::fromGraph(g)) << "step " << step;
            }
        }
        EXPECT_TRUE(snap.get(g) == CsrView::fromGraph(g));
        // Two builds of the same state are deterministic.
        EXPECT_TRUE(CsrView::fromGraph(g) == CsrView::fromGraph(g));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrStormP, ::testing::Values(6, 16, 26));

// ---------------------------------------------------------------------------
// Kernel equivalence: every kernel must score identically whether it is
// driven through the convenience run() (owned, lazily refreshed snapshot)
// or the canonical run(CsrView) entry with a shared snapshot — i.e. the
// engine's shared snapshot changes nothing.
// ---------------------------------------------------------------------------

template <typename Kernel, typename... Args>
void expectOwnedEqualsBorrowed(const Graph& g, const CsrView& v, const char* name,
                               Args&&... args) {
    Kernel owned(g, args...);
    owned.run();
    Kernel borrowed(g, args...);
    borrowed.run(v);
    const auto ownScores = owned.scores();
    const auto borrowedScores = borrowed.scores();
    ASSERT_EQ(ownScores.size(), borrowedScores.size()) << name;
    for (count i = 0; i < ownScores.size(); ++i) {
        EXPECT_NEAR(ownScores[i], borrowedScores[i], 1e-9) << name << " node " << i;
    }
}

class KernelEquivalenceP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelEquivalenceP, OwnedAndBorrowedSnapshotsScoreIdentically) {
    const auto g = generators::erdosRenyi(80, 0.04, GetParam());
    const auto v = CsrView::fromGraph(g);

    // Community detectors move nodes under OpenMP atomics, which is
    // nondeterministic across thread counts; pin to one thread so both
    // paths see the same move order.
    const int threadsBefore = omp_get_max_threads();
    omp_set_num_threads(1);
    expectOwnedEqualsBorrowed<DegreeCentrality>(g, v, "Degree", true);
    expectOwnedEqualsBorrowed<ClosenessCentrality>(g, v, "Closeness");
    expectOwnedEqualsBorrowed<ClosenessCentrality>(
        g, v, "Harmonic", ClosenessCentrality::Variant::Harmonic);
    expectOwnedEqualsBorrowed<Betweenness>(g, v, "Betweenness", true);
    expectOwnedEqualsBorrowed<ApproxBetweenness>(g, v, "ApproxBetweenness", 0.1,
                                                 0.1, std::uint64_t{7});
    expectOwnedEqualsBorrowed<PageRank>(g, v, "PageRank");
    expectOwnedEqualsBorrowed<EigenvectorCentrality>(g, v, "Eigenvector");
    expectOwnedEqualsBorrowed<KatzCentrality>(g, v, "Katz");
    expectOwnedEqualsBorrowed<CoreDecomposition>(g, v, "CoreNumber");
    expectOwnedEqualsBorrowed<LocalClusteringCoefficient>(g, v, "LocalClustering");
    expectOwnedEqualsBorrowed<Plm>(g, v, "Plm", true);
    expectOwnedEqualsBorrowed<ParallelLeiden>(g, v, "Leiden");
    expectOwnedEqualsBorrowed<LouvainMapEquation>(g, v, "MapEquation");
    expectOwnedEqualsBorrowed<Plp>(g, v, "Plp");
    omp_set_num_threads(threadsBefore);
}

TEST_P(KernelEquivalenceP, CsrBfsMatchesGraphBfs) {
    const auto g = generators::erdosRenyi(120, 0.03, GetParam());
    const auto v = CsrView::fromGraph(g);
    Bfs ref(g, 0);
    CsrBfs bfs(v); // one reusable instance: O(reached) reset must be sound
    for (node s = 0; s < g.numberOfNodes(); s += 7) {
        ref.setSource(s);
        ref.run();
        bfs.run(s);
        EXPECT_EQ(bfs.reached(), ref.reached());
        for (node u = 0; u < g.numberOfNodes(); ++u) {
            if (ref.distance(u) == infdist) {
                EXPECT_EQ(bfs.levelOf(u), CsrBfs::unreachedLevel);
            } else {
                EXPECT_EQ(static_cast<double>(bfs.levelOf(u)), ref.distance(u));
                EXPECT_DOUBLE_EQ(bfs.sigma()[u], ref.numberOfPaths()[u]);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceP, ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace rinkit
