// Tests for the RIN pipeline: cell list vs brute force, the three distance
// criteria, cutoff monotonicity, and the DynamicRin incremental updates.
#include <gtest/gtest.h>

#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/rin/cell_list.hpp"
#include "src/rin/dynamic_rin.hpp"
#include "src/rin/rin_builder.hpp"
#include "src/support/random.hpp"

namespace rinkit::rin {
namespace {

using md::alpha3D;
using md::chignolin;
using md::SecondaryStructure;

TEST(CellList, MatchesBruteForce) {
    Rng rng(11);
    std::vector<Point3> pts(200);
    for (auto& p : pts) p = {rng.real(0, 20), rng.real(0, 20), rng.real(0, 20)};
    const double radius = 3.0;
    CellList cells(pts, radius);

    std::set<std::pair<index, index>> fast;
    cells.forAllPairs(radius, [&](index i, index j) { fast.emplace(i, j); });

    std::set<std::pair<index, index>> brute;
    for (index i = 0; i < pts.size(); ++i) {
        for (index j = i + 1; j < pts.size(); ++j) {
            if (pts[i].distance(pts[j]) <= radius) brute.emplace(i, j);
        }
    }
    EXPECT_EQ(fast, brute);
}

TEST(CellList, NeighborsAroundArbitraryPoint) {
    std::vector<Point3> pts{{0, 0, 0}, {1, 0, 0}, {5, 5, 5}};
    CellList cells(pts, 2.0);
    std::vector<index> found;
    cells.forNeighborsAround({0.5, 0, 0}, 2.0, [&](index j) { found.push_back(j); });
    std::sort(found.begin(), found.end());
    EXPECT_EQ(found, (std::vector<index>{0, 1}));
}

TEST(CellList, NegativeCoordinatesWork) {
    std::vector<Point3> pts{{-5, -5, -5}, {-5.5, -5, -5}, {5, 5, 5}};
    CellList cells(pts, 1.0);
    count hits = 0;
    cells.forNeighborsOf(0, 1.0, [&](index) { ++hits; });
    EXPECT_EQ(hits, 1u);
    EXPECT_THROW(CellList(pts, 0.0), std::invalid_argument);
}

TEST(RinBuilder, AdjacentResiduesAlwaysInContact) {
    // At a min-distance cutoff of 4.5 A, the backbone chain must appear:
    // residue i and i+1 share a peptide bond (C_i - N_{i+1} ~ 2.4 A here).
    const RinBuilder builder(DistanceCriterion::MinimumAtomDistance);
    const auto p = alpha3D();
    const auto g = builder.build(p, 4.5);
    EXPECT_EQ(g.numberOfNodes(), 73u);
    for (node u = 0; u + 1 < 73; ++u) {
        EXPECT_TRUE(g.hasEdge(u, u + 1)) << "chain break at " << u;
    }
}

TEST(RinBuilder, CutoffMonotonicity) {
    // More cutoff, more edges — and every edge at cutoff c1 < c2 survives.
    const RinBuilder builder(DistanceCriterion::MinimumAtomDistance);
    const auto p = alpha3D();
    const auto g45 = builder.build(p, 4.5);
    const auto g60 = builder.build(p, 6.0);
    const auto g75 = builder.build(p, 7.5);
    EXPECT_LT(g45.numberOfEdges(), g60.numberOfEdges());
    EXPECT_LT(g60.numberOfEdges(), g75.numberOfEdges());
    g45.forEdges([&](node u, node v) { EXPECT_TRUE(g60.hasEdge(u, v)); });
    g60.forEdges([&](node u, node v) { EXPECT_TRUE(g75.hasEdge(u, v)); });
}

TEST(RinBuilder, CriteriaDiffer) {
    // Minimum atom distance reaches farther than C-alpha distance at the
    // same cutoff (side chains stick out), so it yields at least as many
    // edges, and on a packed bundle strictly more.
    const auto p = alpha3D();
    const auto gMin = RinBuilder(DistanceCriterion::MinimumAtomDistance).build(p, 6.0);
    const auto gCa = RinBuilder(DistanceCriterion::AlphaCarbon).build(p, 6.0);
    const auto gCom = RinBuilder(DistanceCriterion::CenterOfMass).build(p, 6.0);
    EXPECT_GT(gMin.numberOfEdges(), gCa.numberOfEdges());
    // Every CA contact is also a min-distance contact.
    gCa.forEdges([&](node u, node v) { EXPECT_TRUE(gMin.hasEdge(u, v)); });
    EXPECT_GT(gCom.numberOfEdges(), 0u);
}

TEST(RinBuilder, MinDistanceMatchesBruteForce) {
    const RinBuilder builder(DistanceCriterion::MinimumAtomDistance);
    const auto p = chignolin();
    const double cutoff = 5.0;
    const auto g = builder.build(p, cutoff);
    for (node u = 0; u < p.size(); ++u) {
        for (node v = u + 1; v < p.size(); ++v) {
            const bool contact = p.residue(u).minimumDistance(p.residue(v)) <= cutoff;
            EXPECT_EQ(g.hasEdge(u, v), contact) << u << "-" << v;
        }
    }
}

TEST(RinBuilder, ContactsSortedWithDistances) {
    const RinBuilder builder(DistanceCriterion::AlphaCarbon);
    const auto contacts = builder.contacts(alpha3D(), 6.5);
    ASSERT_FALSE(contacts.empty());
    for (count i = 1; i < contacts.size(); ++i) {
        EXPECT_TRUE(std::tie(contacts[i - 1].u, contacts[i - 1].v) <
                    std::tie(contacts[i].u, contacts[i].v));
    }
    for (const auto& c : contacts) {
        EXPECT_LE(c.distance, 6.5);
        EXPECT_GT(c.distance, 0.0);
        EXPECT_LT(c.u, c.v);
    }
}

TEST(RinBuilder, WeightedGraphCarriesDistances) {
    const RinBuilder builder(DistanceCriterion::AlphaCarbon);
    const auto p = chignolin();
    const auto g = builder.buildWeighted(p, 7.0);
    EXPECT_TRUE(g.isWeighted());
    g.forWeightedEdges([&](node u, node v, edgeweight w) {
        EXPECT_NEAR(w, p.residue(u).alphaCarbon().distance(p.residue(v).alphaCarbon()),
                    1e-9);
    });
}

TEST(RinBuilder, InvalidCutoffThrows) {
    const RinBuilder builder;
    EXPECT_THROW(builder.build(chignolin(), 0.0), std::invalid_argument);
    EXPECT_THROW(builder.build(chignolin(), -1.0), std::invalid_argument);
}

TEST(RinBuilder, HelixCommunitiesEmergeAtLowCutoff) {
    // At 4.5 A min-distance, intra-helix contacts dominate: count edges
    // within vs across secondary structure elements (paper Fig. 3 claim).
    const auto p = alpha3D();
    const auto g = RinBuilder(DistanceCriterion::MinimumAtomDistance).build(p, 4.5);
    const auto labels = p.secondaryStructureLabels();
    count intra = 0, inter = 0;
    g.forEdges([&](node u, node v) {
        (labels[u] == labels[v] ? intra : inter) += 1;
    });
    // Most inter-segment contacts involve the coil linkers; helix-helix
    // contacts are sparse. 2x is the conservative bound (measured ~2.6x).
    EXPECT_GT(intra, 2 * inter);
}

TEST(DynamicRin, InitialGraphMatchesBuilder) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 5;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 4.5);
    const auto direct =
        RinBuilder(DistanceCriterion::MinimumAtomDistance).build(traj.proteinAtFrame(0), 4.5);
    EXPECT_TRUE(dyn.graph() == direct);
}

TEST(DynamicRin, CutoffSwitchMatchesFreshBuild) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 3;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 4.5);

    const auto stats = dyn.setCutoff(7.5);
    EXPECT_GT(stats.edgesAdded, 0u);
    EXPECT_EQ(stats.edgesRemoved, 0u); // cutoff grew: nothing disappears
    const auto direct =
        RinBuilder(DistanceCriterion::MinimumAtomDistance).build(traj.proteinAtFrame(0), 7.5);
    EXPECT_TRUE(dyn.graph() == direct);

    const auto shrink = dyn.setCutoff(4.5);
    EXPECT_EQ(shrink.edgesAdded, 0u);
    EXPECT_GT(shrink.edgesRemoved, 0u);
    EXPECT_EQ(shrink.edgesTotal, dyn.graph().numberOfEdges());
}

TEST(DynamicRin, FrameSwitchMatchesFreshBuild) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 10;
    params.unfoldingEvents = 1;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 5.0);

    for (index f : {3u, 5u, 9u}) {
        const auto stats = dyn.setFrame(f);
        const auto direct = RinBuilder(DistanceCriterion::MinimumAtomDistance)
                                .build(traj.proteinAtFrame(f), 5.0);
        EXPECT_TRUE(dyn.graph() == direct) << "frame " << f;
        EXPECT_EQ(stats.edgesTotal, direct.numberOfEdges());
    }
    EXPECT_THROW(dyn.setFrame(99), std::out_of_range);
}

TEST(DynamicRin, UnfoldingShedsLongRangeContacts) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 21;
    params.unfoldingEvents = 1;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 4.5);
    const count folded = dyn.graph().numberOfEdges();
    dyn.setFrame(10); // unfolded apex
    const count unfolded = dyn.graph().numberOfEdges();
    EXPECT_LT(unfolded, folded); // tertiary contacts are gone
    // The chain itself survives unfolding.
    for (node u = 0; u + 1 < 73; ++u) EXPECT_TRUE(dyn.graph().hasEdge(u, u + 1));
}

TEST(DynamicRin, NodeCountNeverChanges) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 6;
    params.unfoldingEvents = 2;
    const auto traj = md::TrajectoryGenerator(params).generate(chignolin());
    DynamicRin dyn(traj, DistanceCriterion::AlphaCarbon, 6.0);
    for (index f = 0; f < 6; ++f) {
        dyn.setFrame(f);
        dyn.setCutoff(4.0 + f);
        EXPECT_EQ(dyn.graph().numberOfNodes(), 10u);
    }
}

} // namespace
} // namespace rinkit::rin
