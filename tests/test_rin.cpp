// Tests for the RIN pipeline: cell list vs brute force, the three distance
// criteria, cutoff monotonicity, and the DynamicRin incremental updates.
#include <gtest/gtest.h>

#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/rin/cell_list.hpp"
#include "src/rin/dynamic_rin.hpp"
#include "src/rin/rin_builder.hpp"
#include "src/support/random.hpp"

namespace rinkit::rin {
namespace {

using md::alpha3D;
using md::chignolin;
using md::SecondaryStructure;

TEST(CellList, MatchesBruteForce) {
    Rng rng(11);
    std::vector<Point3> pts(200);
    for (auto& p : pts) p = {rng.real(0, 20), rng.real(0, 20), rng.real(0, 20)};
    const double radius = 3.0;
    CellList cells(pts, radius);

    std::set<std::pair<index, index>> fast;
    cells.forAllPairs(radius, [&](index i, index j) { fast.emplace(i, j); });

    std::set<std::pair<index, index>> brute;
    for (index i = 0; i < pts.size(); ++i) {
        for (index j = i + 1; j < pts.size(); ++j) {
            if (pts[i].distance(pts[j]) <= radius) brute.emplace(i, j);
        }
    }
    EXPECT_EQ(fast, brute);
}

TEST(CellList, NeighborsAroundArbitraryPoint) {
    std::vector<Point3> pts{{0, 0, 0}, {1, 0, 0}, {5, 5, 5}};
    CellList cells(pts, 2.0);
    std::vector<index> found;
    cells.forNeighborsAround({0.5, 0, 0}, 2.0, [&](index j) { found.push_back(j); });
    std::sort(found.begin(), found.end());
    EXPECT_EQ(found, (std::vector<index>{0, 1}));
}

TEST(CellList, NegativeCoordinatesWork) {
    std::vector<Point3> pts{{-5, -5, -5}, {-5.5, -5, -5}, {5, 5, 5}};
    CellList cells(pts, 1.0);
    count hits = 0;
    cells.forNeighborsOf(0, 1.0, [&](index) { ++hits; });
    EXPECT_EQ(hits, 1u);
    EXPECT_THROW(CellList(pts, 0.0), std::invalid_argument);
}

// Property test: the flat CSR cell list must agree with the O(n^2) scan on
// degenerate geometries, not just protein-like clouds — many coincident
// points (single overfull cell), collinear points (1D grid), and two far
// offset clusters (the AABB-spanning dense grid hits the cell-count cap
// and must grow the effective cell size without losing pairs).
TEST(CellList, DegeneratePointSetsMatchBruteForce) {
    Rng rng(29);
    std::vector<std::pair<const char*, std::vector<Point3>>> sets;

    std::vector<Point3> coincident(120, Point3{1.5, -2.5, 3.0});
    for (index i = 100; i < 120; ++i) coincident[i] = {1.5 + 0.01 * i, -2.5, 3.0};
    sets.emplace_back("coincident", std::move(coincident));

    std::vector<Point3> collinear;
    for (index i = 0; i < 150; ++i) collinear.push_back({0.37 * i, 0.0, 0.0});
    sets.emplace_back("collinear", std::move(collinear));

    std::vector<Point3> farOffset;
    for (index i = 0; i < 80; ++i) {
        farOffset.push_back({rng.real(0, 5), rng.real(0, 5), rng.real(0, 5)});
        farOffset.push_back(
            {1e4 + rng.real(0, 5), 1e4 + rng.real(0, 5), 1e4 + rng.real(0, 5)});
    }
    sets.emplace_back("far-offset clusters", std::move(farOffset));

    std::vector<Point3> random(300);
    for (auto& p : random) p = {rng.real(-30, 30), rng.real(-30, 30), rng.real(-30, 30)};
    sets.emplace_back("random", std::move(random));

    const double radius = 2.0;
    for (const auto& [name, pts] : sets) {
        CellList cells(pts, radius);
        // The dense grid must stay bounded even when the AABB is huge.
        EXPECT_LE(cells.gridCellCount(),
                  std::max<count>(64, 4 * pts.size()) * 8)
            << name;
        // Half-radius cells by default; the cap may have grown them, but
        // never to a degenerate size.
        EXPECT_GT(cells.cellSize(), 0.0) << name;

        std::set<std::pair<index, index>> fast;
        cells.forAllPairs(radius, [&](index i, index j) {
            EXPECT_TRUE(fast.emplace(i, j).second) << name << ": duplicate pair";
        });
        std::set<std::pair<index, index>> brute;
        for (index i = 0; i < pts.size(); ++i) {
            for (index j = i + 1; j < pts.size(); ++j) {
                if (pts[i].squaredDistance(pts[j]) <= radius * radius) brute.emplace(i, j);
            }
        }
        EXPECT_EQ(fast, brute) << name;

        // The parallel sweep must visit exactly the same pairs.
        std::vector<std::set<std::pair<index, index>>> perThread(maxThreads());
        cells.parallelForAllPairs(radius, [&](int tid, index i, index j) {
            perThread[static_cast<count>(tid)].emplace(i, j);
        });
        std::set<std::pair<index, index>> parallelPairs;
        for (const auto& s : perThread) {
            for (const auto& pr : s) {
                EXPECT_TRUE(parallelPairs.insert(pr).second) << name << ": cross-thread dup";
            }
        }
        EXPECT_EQ(parallelPairs, brute) << name;
    }
}

TEST(CellList, RebuildInPlaceReusesIndex) {
    Rng rng(7);
    std::vector<Point3> pts(100);
    for (auto& p : pts) p = {rng.real(0, 10), rng.real(0, 10), rng.real(0, 10)};
    CellList cells;
    cells.build(pts, 3.0);
    count before = 0;
    cells.forAllPairs(3.0, [&](index, index) { ++before; });

    // Move the points and rebuild through the same object.
    for (auto& p : pts) p = {rng.real(0, 4), rng.real(0, 4), rng.real(0, 4)};
    cells.build(pts, 3.0);
    std::set<std::pair<index, index>> fast;
    cells.forAllPairs(3.0, [&](index i, index j) { fast.emplace(i, j); });
    std::set<std::pair<index, index>> brute;
    for (index i = 0; i < pts.size(); ++i) {
        for (index j = i + 1; j < pts.size(); ++j) {
            if (pts[i].distance(pts[j]) <= 3.0) brute.emplace(i, j);
        }
    }
    EXPECT_EQ(fast, brute);
}

TEST(RinBuilder, WorkspaceReuseMatchesFreshContacts) {
    const RinBuilder builder(DistanceCriterion::MinimumAtomDistance);
    const auto p = alpha3D();
    ContactWorkspace ws;
    std::vector<Contact> out;
    // Down-up-down sweep: exercises the cached-cell-list filter path
    // (cutoff below cellsRadius) and the rebuild path (cutoff above).
    for (double cutoff : {6.5, 4.5, 8.5, 5.0, 7.0}) {
        builder.contactsInto(p, cutoff, ws, out);
        const auto fresh = builder.contacts(p, cutoff);
        ASSERT_EQ(out.size(), fresh.size()) << "cutoff " << cutoff;
        for (count i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i].u, fresh[i].u);
            EXPECT_EQ(out[i].v, fresh[i].v);
            EXPECT_DOUBLE_EQ(out[i].distance, fresh[i].distance);
        }
    }
}

TEST(RinBuilder, AdjacentResiduesAlwaysInContact) {
    // At a min-distance cutoff of 4.5 A, the backbone chain must appear:
    // residue i and i+1 share a peptide bond (C_i - N_{i+1} ~ 2.4 A here).
    const RinBuilder builder(DistanceCriterion::MinimumAtomDistance);
    const auto p = alpha3D();
    const auto g = builder.build(p, 4.5);
    EXPECT_EQ(g.numberOfNodes(), 73u);
    for (node u = 0; u + 1 < 73; ++u) {
        EXPECT_TRUE(g.hasEdge(u, u + 1)) << "chain break at " << u;
    }
}

TEST(RinBuilder, CutoffMonotonicity) {
    // More cutoff, more edges — and every edge at cutoff c1 < c2 survives.
    const RinBuilder builder(DistanceCriterion::MinimumAtomDistance);
    const auto p = alpha3D();
    const auto g45 = builder.build(p, 4.5);
    const auto g60 = builder.build(p, 6.0);
    const auto g75 = builder.build(p, 7.5);
    EXPECT_LT(g45.numberOfEdges(), g60.numberOfEdges());
    EXPECT_LT(g60.numberOfEdges(), g75.numberOfEdges());
    g45.forEdges([&](node u, node v) { EXPECT_TRUE(g60.hasEdge(u, v)); });
    g60.forEdges([&](node u, node v) { EXPECT_TRUE(g75.hasEdge(u, v)); });
}

TEST(RinBuilder, CriteriaDiffer) {
    // Minimum atom distance reaches farther than C-alpha distance at the
    // same cutoff (side chains stick out), so it yields at least as many
    // edges, and on a packed bundle strictly more.
    const auto p = alpha3D();
    const auto gMin = RinBuilder(DistanceCriterion::MinimumAtomDistance).build(p, 6.0);
    const auto gCa = RinBuilder(DistanceCriterion::AlphaCarbon).build(p, 6.0);
    const auto gCom = RinBuilder(DistanceCriterion::CenterOfMass).build(p, 6.0);
    EXPECT_GT(gMin.numberOfEdges(), gCa.numberOfEdges());
    // Every CA contact is also a min-distance contact.
    gCa.forEdges([&](node u, node v) { EXPECT_TRUE(gMin.hasEdge(u, v)); });
    EXPECT_GT(gCom.numberOfEdges(), 0u);
}

TEST(RinBuilder, MinDistanceMatchesBruteForce) {
    const RinBuilder builder(DistanceCriterion::MinimumAtomDistance);
    const auto p = chignolin();
    const double cutoff = 5.0;
    const auto g = builder.build(p, cutoff);
    for (node u = 0; u < p.size(); ++u) {
        for (node v = u + 1; v < p.size(); ++v) {
            const bool contact = p.residue(u).minimumDistance(p.residue(v)) <= cutoff;
            EXPECT_EQ(g.hasEdge(u, v), contact) << u << "-" << v;
        }
    }
}

TEST(RinBuilder, ContactsSortedWithDistances) {
    const RinBuilder builder(DistanceCriterion::AlphaCarbon);
    const auto contacts = builder.contacts(alpha3D(), 6.5);
    ASSERT_FALSE(contacts.empty());
    for (count i = 1; i < contacts.size(); ++i) {
        EXPECT_TRUE(std::tie(contacts[i - 1].u, contacts[i - 1].v) <
                    std::tie(contacts[i].u, contacts[i].v));
    }
    for (const auto& c : contacts) {
        EXPECT_LE(c.distance, 6.5);
        EXPECT_GT(c.distance, 0.0);
        EXPECT_LT(c.u, c.v);
    }
}

TEST(RinBuilder, WeightedGraphCarriesDistances) {
    const RinBuilder builder(DistanceCriterion::AlphaCarbon);
    const auto p = chignolin();
    const auto g = builder.buildWeighted(p, 7.0);
    EXPECT_TRUE(g.isWeighted());
    g.forWeightedEdges([&](node u, node v, edgeweight w) {
        EXPECT_NEAR(w, p.residue(u).alphaCarbon().distance(p.residue(v).alphaCarbon()),
                    1e-9);
    });
}

TEST(RinBuilder, InvalidCutoffThrows) {
    const RinBuilder builder;
    EXPECT_THROW(builder.build(chignolin(), 0.0), std::invalid_argument);
    EXPECT_THROW(builder.build(chignolin(), -1.0), std::invalid_argument);
}

TEST(RinBuilder, HelixCommunitiesEmergeAtLowCutoff) {
    // At 4.5 A min-distance, intra-helix contacts dominate: count edges
    // within vs across secondary structure elements (paper Fig. 3 claim).
    const auto p = alpha3D();
    const auto g = RinBuilder(DistanceCriterion::MinimumAtomDistance).build(p, 4.5);
    const auto labels = p.secondaryStructureLabels();
    count intra = 0, inter = 0;
    g.forEdges([&](node u, node v) {
        (labels[u] == labels[v] ? intra : inter) += 1;
    });
    // Most inter-segment contacts involve the coil linkers; helix-helix
    // contacts are sparse. 2x is the conservative bound (measured ~2.6x).
    EXPECT_GT(intra, 2 * inter);
}

TEST(DynamicRin, InitialGraphMatchesBuilder) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 5;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 4.5);
    const auto direct =
        RinBuilder(DistanceCriterion::MinimumAtomDistance).build(traj.proteinAtFrame(0), 4.5);
    EXPECT_TRUE(dyn.graph() == direct);
}

TEST(DynamicRin, CutoffSwitchMatchesFreshBuild) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 3;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 4.5);

    const auto stats = dyn.setCutoff(7.5);
    EXPECT_GT(stats.edgesAdded, 0u);
    EXPECT_EQ(stats.edgesRemoved, 0u); // cutoff grew: nothing disappears
    const auto direct =
        RinBuilder(DistanceCriterion::MinimumAtomDistance).build(traj.proteinAtFrame(0), 7.5);
    EXPECT_TRUE(dyn.graph() == direct);

    const auto shrink = dyn.setCutoff(4.5);
    EXPECT_EQ(shrink.edgesAdded, 0u);
    EXPECT_GT(shrink.edgesRemoved, 0u);
    EXPECT_EQ(shrink.edgesTotal, dyn.graph().numberOfEdges());
}

TEST(DynamicRin, FrameSwitchMatchesFreshBuild) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 10;
    params.unfoldingEvents = 1;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 5.0);

    for (index f : {3u, 5u, 9u}) {
        const auto stats = dyn.setFrame(f);
        const auto direct = RinBuilder(DistanceCriterion::MinimumAtomDistance)
                                .build(traj.proteinAtFrame(f), 5.0);
        EXPECT_TRUE(dyn.graph() == direct) << "frame " << f;
        EXPECT_EQ(stats.edgesTotal, direct.numberOfEdges());
    }
    EXPECT_THROW(dyn.setFrame(99), std::out_of_range);
}

TEST(DynamicRin, UnfoldingShedsLongRangeContacts) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 21;
    params.unfoldingEvents = 1;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 4.5);
    const count folded = dyn.graph().numberOfEdges();
    dyn.setFrame(10); // unfolded apex
    const count unfolded = dyn.graph().numberOfEdges();
    EXPECT_LT(unfolded, folded); // tertiary contacts are gone
    // The chain itself survives unfolding.
    for (node u = 0; u + 1 < 73; ++u) EXPECT_TRUE(dyn.graph().hasEdge(u, u + 1));
}

// Property test: after ANY interleaving of cutoff and frame events the
// incrementally maintained graph must be bit-identical to a fresh build of
// the same (frame, cutoff) state — the merge-diff and the contact cache
// must never leak edges across events.
TEST(DynamicRin, SliderStormMatchesFreshBuild) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 8;
    params.unfoldingEvents = 1;
    const auto traj = md::TrajectoryGenerator(params).generate(alpha3D());
    const RinBuilder fresh(DistanceCriterion::MinimumAtomDistance);

    DynamicRin dyn(traj, DistanceCriterion::MinimumAtomDistance, 4.5);
    Rng rng(101);
    double cutoff = 4.5;
    index frame = 0;
    for (int event = 0; event < 40; ++event) {
        count reportedTotal = 0;
        if (rng.real01() < 0.5) {
            cutoff = 4.0 + rng.real01() * 4.5; // 4.0 .. 8.5 A
            reportedTotal = dyn.setCutoff(cutoff).edgesTotal;
        } else {
            frame = static_cast<index>(rng.real01() * 7.99);
            reportedTotal = dyn.setFrame(frame).edgesTotal;
        }
        const auto expected = fresh.build(traj.proteinAtFrame(frame), cutoff);
        ASSERT_TRUE(dyn.graph() == expected)
            << "event " << event << " frame " << frame << " cutoff " << cutoff;
        EXPECT_EQ(reportedTotal, expected.numberOfEdges());
    }
}

TEST(DynamicRin, NodeCountNeverChanges) {
    md::TrajectoryGenerator::Parameters params;
    params.frames = 6;
    params.unfoldingEvents = 2;
    const auto traj = md::TrajectoryGenerator(params).generate(chignolin());
    DynamicRin dyn(traj, DistanceCriterion::AlphaCarbon, 6.0);
    for (index f = 0; f < 6; ++f) {
        dyn.setFrame(f);
        dyn.setCutoff(4.0 + f);
        EXPECT_EQ(dyn.graph().numberOfNodes(), 10u);
    }
}

} // namespace
} // namespace rinkit::rin
