// Tests for the support substrate: PRNG, geometry, JSON writer/parser.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/support/json.hpp"
#include "src/support/point3.hpp"
#include "src/support/random.hpp"
#include "src/support/timer.hpp"

namespace rinkit {
namespace {

TEST(Rng, DeterministicForSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, Real01InRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.real01();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, Real01MeanNearHalf) {
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.real01();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, IntegerBoundRespected) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.integer(17), 17u);
    }
}

TEST(Rng, IntegerCoversAllValues) {
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.integer(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
    Rng rng(13);
    double sum = 0.0, sumSq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
    Rng rng(1);
    std::vector<int> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one{42};
    rng.shuffle(one);
    EXPECT_EQ(one[0], 42);
}

TEST(RandomPool, ThreadGeneratorsIndependent) {
    RandomPool pool(123);
    ASSERT_GE(pool.size(), 1);
    // forThread(0) must be reproducible across pools with the same seed.
    RandomPool pool2(123);
    EXPECT_EQ(pool.forThread(0).next(), pool2.forThread(0).next());
}

TEST(Point3, Arithmetic) {
    const Point3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, Point3(5, 7, 9));
    EXPECT_EQ(b - a, Point3(3, 3, 3));
    EXPECT_EQ(a * 2.0, Point3(2, 4, 6));
    EXPECT_EQ(2.0 * a, Point3(2, 4, 6));
    EXPECT_EQ(a / 2.0, Point3(0.5, 1, 1.5));
    EXPECT_EQ(-a, Point3(-1, -2, -3));
}

TEST(Point3, DotCrossNorm) {
    const Point3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
    EXPECT_EQ(x.cross(y), z);
    EXPECT_DOUBLE_EQ(Point3(3, 4, 0).norm(), 5.0);
    EXPECT_DOUBLE_EQ(Point3(3, 4, 0).squaredNorm(), 25.0);
}

TEST(Point3, DistanceAndNormalized) {
    EXPECT_DOUBLE_EQ(Point3(0, 0, 0).distance({0, 3, 4}), 5.0);
    const auto u = Point3(0, 0, 7).normalized();
    EXPECT_NEAR(u.norm(), 1.0, 1e-12);
    EXPECT_EQ(Point3().normalized(), Point3());
}

TEST(Aabb, ExpandAndContain) {
    Aabb box;
    EXPECT_FALSE(box.valid());
    box.expand({0, 0, 0});
    box.expand({1, 2, 3});
    EXPECT_TRUE(box.valid());
    EXPECT_TRUE(box.contains({0.5, 1.0, 1.5}));
    EXPECT_FALSE(box.contains({2.0, 0.0, 0.0}));
    EXPECT_EQ(box.extent(), Point3(1, 2, 3));
    EXPECT_EQ(box.center(), Point3(0.5, 1.0, 1.5));
}

TEST(JsonWriter, SimpleObject) {
    JsonWriter w;
    w.beginObject().kv("a", 1).kv("b", "x").kv("c", true).endObject();
    EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true})");
}

TEST(JsonWriter, NestedStructures) {
    JsonWriter w;
    w.beginObject().key("arr").beginArray().value(1).value(2.5).null().endArray()
        .key("obj").beginObject().kv("k", false).endObject().endObject();
    EXPECT_EQ(w.str(), R"({"arr":[1,2.5,null],"obj":{"k":false}})");
}

TEST(JsonWriter, EscapesStrings) {
    JsonWriter w;
    w.beginObject().kv("s", "a\"b\\c\nd").endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, NanSerializesAsNull) {
    JsonWriter w;
    w.beginArray().value(std::nan("")).endArray();
    EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriter, IncompleteDocumentThrows) {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.str(), std::logic_error);
}

TEST(JsonWriter, ValueWithoutKeyInObjectThrows) {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.value(1), std::logic_error);
}

TEST(JsonWriter, NumberArrayHelper) {
    JsonWriter w;
    w.numberArray({1.0, 2.0, 3.5});
    EXPECT_EQ(w.str(), "[1,2,3.5]");
}

TEST(JsonParser, RoundTrip) {
    JsonWriter w;
    w.beginObject().kv("n", 42).key("list").beginArray().value("a").value(1.5).endArray()
        .endObject();
    const auto v = JsonValue::parse(w.str());
    EXPECT_EQ(v.at("n").asNumber(), 42.0);
    EXPECT_EQ(v.at("list").at(0).asString(), "a");
    EXPECT_EQ(v.at("list").at(1).asNumber(), 1.5);
}

TEST(JsonParser, ParsesEscapesAndUnicode) {
    const auto v = JsonValue::parse(R"({"s":"a\nA"})");
    EXPECT_EQ(v.at("s").asString(), "a\nA");
}

TEST(JsonParser, RejectsMalformed) {
    EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("12 34"), std::runtime_error);
}

TEST(JsonParser, NegativeAndExponentNumbers) {
    const auto v = JsonValue::parse("[-1.5e2, 0.25, -7]");
    EXPECT_DOUBLE_EQ(v.at(0).asNumber(), -150.0);
    EXPECT_DOUBLE_EQ(v.at(1).asNumber(), 0.25);
    EXPECT_DOUBLE_EQ(v.at(2).asNumber(), -7.0);
}

TEST(Timer, MeasuresElapsedTime) {
    Timer t;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
    const double ms = t.elapsedMs();
    EXPECT_GE(ms, 0.0);
    EXPECT_GE(t.elapsedSec() * 1000.0, ms); // monotone between calls
    t.restart();
    EXPECT_LT(t.elapsedMs(), 1000.0);
}

} // namespace
} // namespace rinkit
