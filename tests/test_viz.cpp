// Tests for the viz backend: palettes, scene construction, plotly JSON
// structure, the measure registry, the client cost model, and the full
// RinWidget update cycle.
#include <gtest/gtest.h>

#include <fstream>

#include "src/core/rin_explorer.hpp"
#include "src/graph/generators.hpp"
#include "src/layout/maxent_stress.hpp"
#include "src/md/synthetic.hpp"
#include "src/support/json.hpp"
#include "src/viz/client_model.hpp"
#include "src/viz/colormap.hpp"
#include "src/viz/figure.hpp"
#include "src/viz/measures.hpp"
#include "src/viz/widget.hpp"

namespace rinkit::viz {
namespace {

TEST(Color, HexFormat) {
    EXPECT_EQ((Color{255, 0, 128}).hex(), "#ff0080");
    EXPECT_EQ((Color{0, 0, 0}).hex(), "#000000");
}

class PaletteP : public ::testing::TestWithParam<Palette> {};

TEST_P(PaletteP, EndpointsAndClamping) {
    const auto lo = sample(GetParam(), 0.0);
    const auto hi = sample(GetParam(), 1.0);
    EXPECT_NE(lo, hi);
    EXPECT_EQ(sample(GetParam(), -3.0), lo); // clamped
    EXPECT_EQ(sample(GetParam(), 4.0), hi);
}

TEST_P(PaletteP, ContinuousInBetween) {
    // Adjacent samples differ by small steps (no banding discontinuities).
    for (double t = 0.0; t < 1.0; t += 0.01) {
        const auto a = sample(GetParam(), t);
        const auto b = sample(GetParam(), t + 0.01);
        EXPECT_LT(std::abs(a.r - b.r) + std::abs(a.g - b.g) + std::abs(a.b - b.b), 40);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPalettes, PaletteP,
                         ::testing::Values(Palette::Spectral, Palette::Viridis,
                                           Palette::Plasma, Palette::Coolwarm));

TEST(ColorMap, SpectralRunsBlueToRed) {
    // Paper Fig. 5: spectral palette, blue (low) to red (high).
    const auto lo = sample(Palette::Spectral, 0.0);
    const auto hi = sample(Palette::Spectral, 1.0);
    EXPECT_GT(lo.b, lo.r);
    EXPECT_GT(hi.r, hi.b);
}

TEST(ColorMap, MapScoresNormalizes) {
    const auto colors = mapScores({0.0, 5.0, 10.0}, Palette::Spectral);
    ASSERT_EQ(colors.size(), 3u);
    EXPECT_EQ(colors[0], sample(Palette::Spectral, 0.0));
    EXPECT_EQ(colors[1], sample(Palette::Spectral, 0.5));
    EXPECT_EQ(colors[2], sample(Palette::Spectral, 1.0));
}

TEST(ColorMap, ConstantScoresMidpointAndNanGrey) {
    const auto constant = mapScores({2.0, 2.0}, Palette::Viridis);
    EXPECT_EQ(constant[0], sample(Palette::Viridis, 0.5));
    const auto withNan = mapScores({0.0, std::nan(""), 1.0}, Palette::Viridis);
    EXPECT_EQ(withNan[1], (Color{128, 128, 128}));
}

TEST(ColorMap, CategoricalCycles) {
    EXPECT_EQ(categorical(0), categorical(categoricalCycle()));
    for (index a = 0; a < categoricalCycle(); ++a) {
        for (index b = a + 1; b < categoricalCycle(); ++b) {
            EXPECT_NE(categorical(a), categorical(b));
        }
    }
}

TEST(Scene, MakeSceneBasics) {
    const auto g = generators::karateClub();
    std::vector<Point3> coords(34, Point3{1, 2, 3});
    std::vector<double> scores(34, 0.5);
    scores[0] = 1.0;
    const auto s = makeScene(g, coords, scores, Palette::Spectral, "test");
    EXPECT_EQ(s.nodeCount(), 34u);
    EXPECT_EQ(s.edgeCount(), 78u);
    EXPECT_EQ(s.nodeLabels.size(), 34u);
    EXPECT_NE(s.nodeLabels[0].find("node 0"), std::string::npos);
    EXPECT_THROW(makeScene(g, std::vector<Point3>(3), scores, Palette::Spectral, "x"),
                 std::invalid_argument);
}

TEST(Scene, CommunitySceneUsesCategoricalColors) {
    const auto g = generators::karateClub();
    std::vector<Point3> coords(34);
    std::vector<index> comm(34, 0);
    for (node u = 17; u < 34; ++u) comm[u] = 1;
    const auto s = makeCommunityScene(g, coords, comm, "communities");
    EXPECT_EQ(s.nodeColors[0], categorical(0));
    EXPECT_EQ(s.nodeColors[20], categorical(1));
}

TEST(Figure, EmitsValidPlotlyJson) {
    const auto g = generators::karateClub();
    MaxentStress layout(g);
    layout.run();
    std::vector<double> scores(34, 1.0);
    Figure fig;
    fig.addScene(makeScene(g, layout.getCoordinates(), scores, Palette::Spectral, "k"));
    const auto json = fig.toJson();

    const auto doc = JsonValue::parse(json);
    ASSERT_TRUE(doc.has("data"));
    ASSERT_TRUE(doc.has("layout"));
    const auto& data = doc.at("data");
    ASSERT_EQ(data.size(), 2u); // edge trace + node trace
    const auto& edgeTrace = data.at(0);
    EXPECT_EQ(edgeTrace.at("type").asString(), "scatter3d");
    EXPECT_EQ(edgeTrace.at("mode").asString(), "lines");
    // 3 entries (two endpoints + null) per edge.
    EXPECT_EQ(edgeTrace.at("x").size(), 78u * 3u);
    const auto& nodeTrace = data.at(1);
    EXPECT_EQ(nodeTrace.at("mode").asString(), "markers");
    EXPECT_EQ(nodeTrace.at("x").size(), 34u);
    EXPECT_EQ(nodeTrace.at("marker").at("color").size(), 34u);
    EXPECT_EQ(nodeTrace.at("text").size(), 34u);
}

TEST(Figure, DualSceneDomainsSplit) {
    const auto g = generators::karateClub();
    std::vector<Point3> coords(34);
    std::vector<double> scores(34, 0.0);
    Figure fig;
    fig.addScene(makeScene(g, coords, scores, Palette::Spectral, "left"));
    fig.addScene(makeScene(g, coords, scores, Palette::Spectral, "right"));
    const auto doc = JsonValue::parse(fig.toJson());
    EXPECT_EQ(doc.at("data").size(), 4u);
    ASSERT_TRUE(doc.at("layout").has("scene"));
    ASSERT_TRUE(doc.at("layout").has("scene2"));
    const auto& dom1 = doc.at("layout").at("scene").at("domain").at("x");
    const auto& dom2 = doc.at("layout").at("scene2").at("domain").at("x");
    EXPECT_DOUBLE_EQ(dom1.at(1).asNumber(), 0.5);
    EXPECT_DOUBLE_EQ(dom2.at(0).asNumber(), 0.5);
    // Second scene's traces reference scene2.
    EXPECT_EQ(doc.at("data").at(2).at("scene").asString(), "scene2");
}

TEST(Measures, RegistryComplete) {
    EXPECT_EQ(allMeasures().size(), 13u);
    for (Measure m : allMeasures()) {
        EXPECT_FALSE(measureName(m).empty());
    }
    EXPECT_TRUE(isCommunityMeasure(Measure::PlmCommunities));
    EXPECT_FALSE(isCommunityMeasure(Measure::Betweenness));
}

TEST(Measures, AllComputeOnKarate) {
    const auto g = generators::karateClub();
    const auto v = CsrView::fromGraph(g);
    for (Measure m : allMeasures()) {
        const auto scores = computeMeasure(g, v, m);
        ASSERT_EQ(scores.size(), 34u) << measureName(m);
        for (double s : scores) EXPECT_TRUE(std::isfinite(s)) << measureName(m);
        if (isCommunityMeasure(m)) {
            // Community ids are small non-negative integers.
            for (double s : scores) {
                EXPECT_GE(s, 0.0);
                EXPECT_EQ(s, std::floor(s));
                EXPECT_LT(s, 34.0);
            }
        }
    }
}

TEST(ClientModel, ParseCostScalesWithPayload) {
    ClientCostModel client;
    std::string small = R"({"a":[1,2,3]})";
    EXPECT_GE(client.parseOnly(small), 0.0);
    EXPECT_THROW(client.parseOnly("{broken"), std::runtime_error);
}

TEST(ClientModel, FullUpdateCostsMoreThanPartial) {
    const auto g = generators::karateClub();
    MaxentStress layout(g);
    layout.run();
    Figure fig;
    fig.addScene(makeScene(g, layout.getCoordinates(), std::vector<double>(34, 1.0),
                           Palette::Spectral, "k"));
    const auto json = fig.toJson();
    ClientCostModel::Parameters full;
    full.fullUpdate = true;
    ClientCostModel::Parameters partial;
    partial.fullUpdate = false;
    // Average over repetitions to de-noise timing.
    double fullMs = 0.0, partialMs = 0.0;
    for (int i = 0; i < 5; ++i) {
        fullMs += ClientCostModel(full).processUpdate(json, 3400, 7800);
        partialMs += ClientCostModel(partial).processUpdate(json, 3400, 7800);
    }
    EXPECT_GT(fullMs, partialMs); // full touches nodes + edges, partial edges only
}

TEST(Widget, InitialStateConsistent) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 5;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::alpha3D());
    RinWidget widget(traj);
    EXPECT_EQ(widget.frame(), 0u);
    EXPECT_DOUBLE_EQ(widget.cutoff(), 4.5);
    EXPECT_EQ(widget.graph().numberOfNodes(), 73u);
    EXPECT_EQ(widget.scores().size(), 73u); // initial measure ran
    EXPECT_EQ(widget.maxentLayout().size(), 73u);
    EXPECT_FALSE(widget.figureJson().empty());
    // Figure is valid JSON with 4 traces (2 scenes x 2 traces).
    const auto doc = JsonValue::parse(widget.figureJson());
    EXPECT_EQ(doc.at("data").size(), 4u);
}

TEST(Widget, CutoffEventTimingsAndState) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 3;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::alpha3D());
    RinWidget widget(traj);
    const count before = widget.graph().numberOfEdges();
    const auto t = widget.setCutoff(7.5);
    EXPECT_GT(widget.graph().numberOfEdges(), before);
    EXPECT_GT(t.edgeStats.edgesAdded, 0u);
    EXPECT_GT(t.networkUpdateMs, 0.0);
    EXPECT_GT(t.layoutMs, 0.0);
    EXPECT_GT(t.clientMs, 0.0);
    EXPECT_GE(t.totalMs(), t.serverMs());
    EXPECT_DOUBLE_EQ(widget.cutoff(), 7.5);
}

TEST(Widget, FrameEventUpdatesProteinView) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 10;
    gen.unfoldingEvents = 1;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::villinHeadpiece());
    RinWidget widget(traj);
    const auto t = widget.setFrame(5);
    EXPECT_EQ(widget.frame(), 5u);
    EXPECT_GT(t.edgeStats.edgesRemoved + t.edgeStats.edgesAdded, 0u);
    EXPECT_GT(t.measureMs, 0.0); // auto-recompute on
}

TEST(Widget, OnDemandModeSkipsMeasure) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 4;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::chignolin());
    RinWidget widget(traj);
    widget.setAutoRecompute(false);
    const auto t = widget.setFrame(2);
    EXPECT_DOUBLE_EQ(t.measureMs, 0.0);
    widget.setAutoRecompute(true);
    const auto t2 = widget.setFrame(3);
    EXPECT_GT(t2.measureMs, 0.0);
}

TEST(Widget, MeasureSwitchLeavesNetworkAlone) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 3;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::alpha3D());
    RinWidget widget(traj);
    const count edges = widget.graph().numberOfEdges();
    const auto coords = widget.maxentLayout();
    const auto t = widget.setMeasure(Measure::Betweenness);
    EXPECT_EQ(widget.graph().numberOfEdges(), edges);
    EXPECT_EQ(widget.maxentLayout(), coords); // layout untouched
    EXPECT_DOUBLE_EQ(t.networkUpdateMs, 0.0);
    EXPECT_DOUBLE_EQ(t.layoutMs, 0.0);
    EXPECT_GT(t.measureMs, 0.0);
    EXPECT_TRUE(widget.measure() == Measure::Betweenness);
}

TEST(Widget, MeasureSwitchReusesSerializedEdgeTraces) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 3;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::alpha3D());
    RinWidget widget(traj);

    // A cutoff switch changes the edge set: edge traces serialize fresh.
    const auto tCutoff = widget.setCutoff(6.0);
    EXPECT_GT(tCutoff.edgeBytesSerialized, 0u);
    EXPECT_GT(tCutoff.serializedBytes, tCutoff.edgeBytesSerialized);

    // A measure switch leaves positions and edges alone: zero edge-trace
    // bytes serialized — the cached fragments are spliced in verbatim.
    const auto tMeasure = widget.setMeasure(Measure::Degree);
    EXPECT_EQ(tMeasure.edgeBytesSerialized, 0u);
    EXPECT_GT(tMeasure.serializedBytes, 0u);

    // The shipped figure still contains both full edge traces: same trace
    // count, and the edge trace arrays have 3 entries per edge.
    const auto doc = JsonValue::parse(widget.figureJson());
    ASSERT_EQ(doc.at("data").size(), 4u);
    const count edges = widget.graph().numberOfEdges();
    EXPECT_EQ(doc.at("data").at(0).at("x").size(), 3 * edges);
    EXPECT_EQ(doc.at("data").at(2).at("x").size(), 3 * edges);

    // Delta-mode toggles (also markers-only renders) keep the cache warm...
    widget.setMeasure(Measure::Closeness);
    const auto tAgain = widget.setMeasure(Measure::Betweenness);
    EXPECT_EQ(tAgain.edgeBytesSerialized, 0u);

    // ...while the next frame event invalidates it.
    const auto tFrame = widget.setFrame(1);
    EXPECT_GT(tFrame.edgeBytesSerialized, 0u);
}

TEST(Widget, MeasureCacheHitsOnUnchangedGraphOnly) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 4;
    gen.unfoldingEvents = 1;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::villinHeadpiece());
    RinWidget widget(traj); // refresh() computes the initial Closeness

    // First switch to a new measure: cold, computed.
    const auto tCold = widget.setMeasure(Measure::Betweenness);
    EXPECT_FALSE(tCold.measureCacheHit);
    const auto betweennessScores = widget.scores();

    // Repeating the switch on the unchanged graph is a version-keyed hit.
    const auto tHit = widget.setMeasure(Measure::Betweenness);
    EXPECT_TRUE(tHit.measureCacheHit);
    EXPECT_EQ(widget.scores(), betweennessScores);

    // Flipping back to the initial measure also hits: its entry is still
    // valid for the current graph version.
    const auto tBack = widget.setMeasure(Measure::Closeness);
    EXPECT_TRUE(tBack.measureCacheHit);

    // A cutoff switch mutates the graph (version bump) -> miss.
    const auto tCutoff = widget.setCutoff(6.5);
    EXPECT_FALSE(tCutoff.measureCacheHit);
    // ...and the other measure's stale entry misses too.
    const auto tStale = widget.setMeasure(Measure::Betweenness);
    EXPECT_FALSE(tStale.measureCacheHit);
    EXPECT_NE(widget.scores(), betweennessScores); // different edge set

    // A frame switch with real edge churn invalidates as well.
    const auto tFrame = widget.setFrame(3);
    ASSERT_GT(tFrame.edgeStats.edgesAdded + tFrame.edgeStats.edgesRemoved, 0u);
    EXPECT_FALSE(tFrame.measureCacheHit);
}

TEST(Widget, DeltaModeShowsScoreDifferences) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 6;
    gen.unfoldingEvents = 1;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::villinHeadpiece());
    RinWidget widget(traj);
    widget.setMeasure(Measure::Degree);
    widget.snapshotBuffer();
    widget.setFrame(3); // unfolding sheds contacts -> degree drops
    widget.setDeltaMode(true);
    const auto delta = widget.displayedScores();
    ASSERT_EQ(delta.size(), 35u);
    double sum = 0.0;
    for (double d : delta) sum += d;
    EXPECT_LT(sum, 0.0); // on average fewer contacts than buffered frame
    widget.setDeltaMode(false);
    EXPECT_EQ(widget.displayedScores(), widget.scores());
}

TEST(Widget, CommunityMeasureRendersCategorical) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 3;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::alpha3D());
    RinWidget widget(traj);
    widget.setMeasure(Measure::PlmCommunities);
    const auto doc = JsonValue::parse(widget.figureJson());
    // Node trace colors are categorical hexes.
    const auto& colors = doc.at("data").at(1).at("marker").at("color");
    EXPECT_EQ(colors.size(), 73u);
    EXPECT_EQ(colors.at(0).asString()[0], '#');
}

TEST(Widget, BinaryWireShipsDecodableFrames) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 4;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::alpha3D());
    RinWidget::Options opts;
    opts.wireFormat = WireFormat::Binary;
    RinWidget widget(traj, opts);

    // The initial draw ships a keyframe; no JSON is maintained.
    EXPECT_TRUE(widget.wireStats().keyframe);
    EXPECT_FALSE(widget.wireFrame().empty());
    EXPECT_TRUE(widget.figureJson().empty());

    // The simulated client's decoder tracks the server exactly: shared
    // edge set, both views, scores at f32 precision.
    EXPECT_EQ(widget.wireClient().edges(), widget.graph().edges());
    ASSERT_EQ(widget.wireClient().views().size(), 2u);
    ASSERT_EQ(widget.wireClient().scores().size(), widget.scores().size());
    const auto shown = widget.displayedScores();
    for (count i = 0; i < shown.size(); ++i)
        EXPECT_EQ(widget.wireClient().scores()[i], static_cast<float>(shown[i]));

    // A cutoff switch ships as a frame whose byte count lands in the
    // timing; the JSON fields stay empty in binary mode.
    const auto t = widget.setCutoff(6.0);
    EXPECT_TRUE(t.binaryWire);
    EXPECT_EQ(t.wireBytes, widget.wireFrame().size());
    EXPECT_EQ(t.serializedBytes, 0u);
    EXPECT_GT(t.wirePatchElements, 0u);
    EXPECT_GT(t.clientMs, 0.0);
    EXPECT_EQ(widget.wireClient().edges(), widget.graph().edges());

    // Maxent-view positions decode within the grid's quantization error.
    const auto& view = widget.wireClient().views()[1];
    const auto decoded = view.positions();
    const auto err = view.grid.maxError();
    const auto& truth = widget.maxentLayout();
    ASSERT_EQ(decoded.size(), truth.size());
    for (count i = 0; i < truth.size(); ++i) {
        EXPECT_LE(std::abs(decoded[i].x - truth[i].x), err.x * (1.0 + 1e-9));
        EXPECT_LE(std::abs(decoded[i].y - truth[i].y), err.y * (1.0 + 1e-9));
        EXPECT_LE(std::abs(decoded[i].z - truth[i].z), err.z * (1.0 + 1e-9));
    }
}

TEST(Widget, BinaryDeltasBeatJsonByteCounts) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 6;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::alpha3D());
    RinWidget json(traj); // default: WireFormat::Json
    RinWidget::Options opts;
    opts.wireFormat = WireFormat::Binary;
    RinWidget binary(traj, opts);

    for (index f : {1u, 2u, 3u}) {
        const auto tj = json.setFrame(f);
        const auto tb = binary.setFrame(f);
        EXPECT_FALSE(tj.binaryWire);
        EXPECT_EQ(tj.wireBytes, json.figureJson().size());
        // A frame switch is the client-heavy worst case; the delta frame
        // must undercut the full-figure JSON by a wide margin.
        EXPECT_LT(tb.wireBytes * 5, tj.wireBytes) << "frame " << f;
    }
}

TEST(Widget, DropWireClientForcesResyncKeyframe) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 4;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::chignolin());
    RinWidget::Options opts;
    opts.wireFormat = WireFormat::Binary;
    RinWidget widget(traj, opts);

    // A measure switch leaves positions untouched: guaranteed delta frame
    // (a frame switch may trip the grid trigger on a small protein).
    const auto tDelta = widget.setMeasure(Measure::Degree);
    EXPECT_FALSE(tDelta.wireKeyframe);

    widget.dropWireClient(); // simulated tab reload
    const auto tResync = widget.setFrame(2);
    EXPECT_TRUE(tResync.wireKeyframe);
    EXPECT_STREQ(widget.wireStats().reason, "resync");
    EXPECT_EQ(widget.wireClient().edges(), widget.graph().edges());
}

TEST(Widget, JsonModeIsByteIdenticalWithWireFieldsFilled) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 3;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::alpha3D());
    RinWidget widget(traj);
    const auto t = widget.setCutoff(6.0);
    EXPECT_FALSE(t.binaryWire);
    EXPECT_FALSE(t.wireKeyframe);
    EXPECT_EQ(t.wireBytes, widget.figureJson().size());
    EXPECT_EQ(t.wireBytes, t.serializedBytes);
    EXPECT_TRUE(widget.wireFrame().empty());
}

TEST(RinExplorer, CatalogueAndAnalysis) {
    auto explorer = RinExplorer::forProtein("alpha3D");
    EXPECT_EQ(explorer.trajectory().topology().size(), 73u);
    // Fig. 3: communities reflect helices.
    EXPECT_GT(explorer.communityStructureAgreement(), 0.5);
    // Hubs grow with cutoff.
    const count hubsLow = explorer.hubCount(10);
    explorer.widget().setCutoff(7.5);
    EXPECT_GT(explorer.hubCount(10), hubsLow);
    EXPECT_THROW(RinExplorer::forProtein("nonexistent"), std::invalid_argument);
}

TEST(RinExplorer, BundleSizing) {
    RinExplorer::Options opts;
    opts.frames = 2;
    auto explorer = RinExplorer::forProtein("bundle:150", opts);
    EXPECT_EQ(explorer.widget().graph().numberOfNodes(), 150u);
}

TEST(RinExplorer, ExportsFiles) {
    RinExplorer::Options opts;
    opts.frames = 2;
    auto explorer = RinExplorer::forProtein("chignolin", opts);
    explorer.exportPdb("/tmp/rinkit_test_export.pdb");
    explorer.exportFigure("/tmp/rinkit_test_export.json");
    std::ifstream pdb("/tmp/rinkit_test_export.pdb");
    std::string firstLine;
    std::getline(pdb, firstLine);
    EXPECT_EQ(firstLine.rfind("ATOM", 0), 0u);
    std::ifstream fig("/tmp/rinkit_test_export.json");
    std::string json((std::istreambuf_iterator<char>(fig)),
                     std::istreambuf_iterator<char>());
    EXPECT_NO_THROW(JsonValue::parse(json));
}

} // namespace
} // namespace rinkit::viz
