// Tests for the MD substrate: residue/protein mechanics, synthetic
// structure geometry, trajectory generation, and PDB/XYZ round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "src/md/md_io.hpp"
#include "src/md/protein.hpp"
#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"

namespace rinkit::md {
namespace {

TEST(Residue, AlphaCarbonAndCenterOfMass) {
    Residue r;
    r.atoms = {{"N", "N", {0, 0, 0}}, {"CA", "C", {1, 0, 0}}, {"C", "C", {2, 0, 0}}};
    EXPECT_EQ(r.alphaCarbon(), Point3(1, 0, 0));
    EXPECT_EQ(r.centerOfMass(), Point3(1, 0, 0));
    Residue empty;
    EXPECT_THROW(empty.alphaCarbon(), std::runtime_error);
    EXPECT_THROW(empty.centerOfMass(), std::runtime_error);
}

TEST(Residue, MinimumDistance) {
    Residue a, b;
    a.atoms = {{"CA", "C", {0, 0, 0}}, {"CB", "C", {1, 0, 0}}};
    b.atoms = {{"CA", "C", {5, 0, 0}}, {"CB", "C", {3, 0, 0}}};
    EXPECT_DOUBLE_EQ(a.minimumDistance(b), 2.0); // CB-CB
    EXPECT_DOUBLE_EQ(b.minimumDistance(a), 2.0);
}

TEST(Protein, AtomAccessorsAndBounds) {
    const auto p = alpha3D();
    EXPECT_EQ(p.size(), 73u);
    EXPECT_EQ(p.atomCount(), 73u * 5u);
    EXPECT_EQ(p.alphaCarbons().size(), 73u);
    EXPECT_TRUE(p.bounds().valid());
    const auto flat = p.atomPositions();
    EXPECT_EQ(flat.size(), p.atomCount());

    Protein q = p;
    auto moved = flat;
    for (auto& pt : moved) pt += Point3{1, 0, 0};
    q.setAtomPositions(moved);
    EXPECT_EQ(q.residue(0).alphaCarbon(), p.residue(0).alphaCarbon() + Point3(1, 0, 0));
    EXPECT_THROW(q.setAtomPositions(std::vector<Point3>(3)), std::invalid_argument);
}

TEST(Synthetic, ChainGeometryIsRealistic) {
    // Consecutive C-alphas of every synthetic structure must sit at
    // polypeptide-like distances (roughly 2.5 - 6 A).
    for (const auto& p : {alpha3D(), chignolin(), villinHeadpiece(), wwDomain(),
                          lambdaRepressor()}) {
        const auto cas = p.alphaCarbons();
        for (count i = 1; i < cas.size(); ++i) {
            const double d = cas[i - 1].distance(cas[i]);
            EXPECT_GT(d, 1.0) << p.name() << " residue " << i;
            EXPECT_LT(d, 7.5) << p.name() << " residue " << i;
        }
    }
}

TEST(Synthetic, HelixGeometry) {
    // Within one helix: |CA_i - CA_{i+1}| small; i, i+4 closer than i, i+2
    // in space is false for ideal helix? i,i+3/i+4 ~ 5-6 A on a 2.3 A
    // radius / 1.5 A rise helix; check the signature rise per turn.
    const auto p = alpha3D();
    const auto cas = p.alphaCarbons();
    // Residues 0..20 are helix 0.
    const double d1 = cas[0].distance(cas[1]);
    const double d4 = cas[0].distance(cas[4]);
    EXPECT_LT(d1, 4.5);
    EXPECT_LT(d4, 8.0); // helical compaction: i,i+4 much closer than 4*d1
    EXPECT_LT(d4, 3.0 * d1);
}

TEST(Synthetic, SsLabelsCoverSegments) {
    const auto p = alpha3D();
    const auto labels = p.secondaryStructureLabels();
    // 5 segments: helix, coil, helix, coil, helix -> ssIndex 0..4.
    EXPECT_EQ(labels.front(), 0u);
    EXPECT_EQ(labels.back(), 4u);
    count helixResidues = 0;
    for (const auto& r : p.residues()) {
        if (r.ss == SecondaryStructure::Helix) ++helixResidues;
    }
    EXPECT_EQ(helixResidues, 63u);
}

TEST(Synthetic, HelicesArePackedApart) {
    // Different helices occupy different lanes: mean inter-helix CA
    // distance exceeds the lane spacing lower bound.
    const auto p = alpha3D();
    const auto cas = p.alphaCarbons();
    double minInter = 1e9;
    for (count i = 0; i < 21; ++i) {
        for (count j = 26; j < 47; ++j) { // helix 0 vs helix 1
            minInter = std::min(minInter, cas[i].distance(cas[j]));
        }
    }
    EXPECT_GT(minInter, 3.0);  // no clashes
    EXPECT_LT(minInter, 12.0); // but packed (a bundle, not a necklace)
}

TEST(Synthetic, HelixBundleScalesToRequestedSize) {
    for (count n : {100u, 250u, 1000u}) {
        const auto p = helixBundle(n);
        EXPECT_EQ(p.size(), n);
        EXPECT_EQ(p.atomCount(), n * 5);
    }
    EXPECT_THROW(helixBundle(5, 18), std::invalid_argument);
}

TEST(Synthetic, ExtendedConformationIsLessCompact) {
    const auto folded = alpha3D();
    const auto extended = extendedConformation(folded);
    EXPECT_EQ(extended.size(), folded.size());
    EXPECT_EQ(extended.atomCount(), folded.atomCount());
    EXPECT_GT(extended.radiusOfGyration(), 2.0 * folded.radiusOfGyration());
}

TEST(Synthetic, BuildProteinValidation) {
    EXPECT_THROW(buildProtein("x", {}), std::invalid_argument);
    EXPECT_THROW(buildProtein("x", {{SecondaryStructure::Helix, 0}}),
                 std::invalid_argument);
}

TEST(Trajectory, FrameBookkeeping) {
    const auto p = chignolin();
    Trajectory traj(p);
    EXPECT_EQ(traj.frameCount(), 0u);
    traj.addFrame(p.atomPositions());
    EXPECT_EQ(traj.frameCount(), 1u);
    EXPECT_THROW(traj.addFrame(std::vector<Point3>(3)), std::invalid_argument);
    const auto back = traj.proteinAtFrame(0);
    EXPECT_EQ(back.residue(0).alphaCarbon(), p.residue(0).alphaCarbon());
}

TEST(TrajectoryGenerator, ProducesRequestedFrames) {
    TrajectoryGenerator::Parameters params;
    params.frames = 12;
    const auto traj = TrajectoryGenerator(params).generate(villinHeadpiece());
    EXPECT_EQ(traj.frameCount(), 12u);
    EXPECT_EQ(traj.topology().size(), 35u);
}

TEST(TrajectoryGenerator, ThermalNoiseIsBounded) {
    TrajectoryGenerator::Parameters params;
    params.frames = 5;
    params.thermalSigma = 0.1;
    params.breathingAmplitude = 0.0;
    const auto folded = alpha3D();
    const auto traj = TrajectoryGenerator(params).generate(folded);
    const auto ref = folded.atomPositions();
    for (index f = 0; f < traj.frameCount(); ++f) {
        const auto& pos = traj.frame(f);
        double maxDev = 0.0;
        for (count i = 0; i < pos.size(); ++i) {
            maxDev = std::max(maxDev, pos[i].distance(ref[i]));
        }
        EXPECT_LT(maxDev, 1.0); // ~10 sigma
    }
}

TEST(TrajectoryGenerator, UnfoldingRaisesRadiusOfGyration) {
    TrajectoryGenerator::Parameters params;
    params.frames = 41;
    params.unfoldingEvents = 1; // folded -> extended -> folded
    const auto traj = TrajectoryGenerator(params).generate(alpha3D());
    const auto rg = traj.radiusOfGyrationSeries();
    // Middle of the run is the unfolded apex.
    EXPECT_GT(rg[20], 1.8 * rg[0]);
    EXPECT_NEAR(rg[40], rg[0], 0.3 * rg[0]);
}

TEST(TrajectoryGenerator, DeterministicPerSeed) {
    TrajectoryGenerator::Parameters params;
    params.frames = 3;
    const auto a = TrajectoryGenerator(params).generate(chignolin());
    const auto b = TrajectoryGenerator(params).generate(chignolin());
    for (index f = 0; f < 3; ++f) EXPECT_EQ(a.frame(f), b.frame(f));
    EXPECT_THROW(TrajectoryGenerator({.frames = 0}).generate(chignolin()),
                 std::invalid_argument);
}

TEST(MdIo, PdbRoundTrip) {
    const auto p = chignolin();
    std::stringstream ss;
    io::writePdb(p, ss);
    const auto q = io::readPdb(ss);
    ASSERT_EQ(q.size(), p.size());
    EXPECT_EQ(q.atomCount(), p.atomCount());
    for (index i = 0; i < p.size(); ++i) {
        EXPECT_EQ(q.residue(i).name, p.residue(i).name);
        EXPECT_LT(q.residue(i).alphaCarbon().distance(p.residue(i).alphaCarbon()), 1e-3)
            << "residue " << i; // PDB stores 3 decimals
    }
}

TEST(MdIo, PdbRejectsGarbage) {
    std::stringstream empty("REMARK nothing\nEND\n");
    EXPECT_THROW(io::readPdb(empty), std::runtime_error);
    std::stringstream truncated("ATOM      1  CA\n");
    EXPECT_THROW(io::readPdb(truncated), std::runtime_error);
}

TEST(MdIo, XyzTrajectoryRoundTrip) {
    TrajectoryGenerator::Parameters params;
    params.frames = 4;
    const auto traj = TrajectoryGenerator(params).generate(chignolin());
    std::stringstream ss;
    io::writeXyzTrajectory(traj, ss);
    const auto back = io::readXyzTrajectory(ss, traj.topology());
    ASSERT_EQ(back.frameCount(), 4u);
    for (index f = 0; f < 4; ++f) {
        const auto& a = traj.frame(f);
        const auto& b = back.frame(f);
        for (count i = 0; i < a.size(); ++i) EXPECT_LT(a[i].distance(b[i]), 1e-6);
    }
}

TEST(MdIo, XyzRejectsTopologyMismatch) {
    std::stringstream ss("2\nframe 0\nC 0 0 0\nC 1 1 1\n");
    EXPECT_THROW(io::readXyzTrajectory(ss, chignolin()), std::runtime_error);
}

} // namespace
} // namespace rinkit::md
