// Tests for the cloud simulator: node topology, namespaces + RBAC,
// scheduling under quotas, prefix routing with source affinity, and the
// JupyterHub multi-user lifecycle including PV-backed restarts.
#include <gtest/gtest.h>

#include <set>

#include "src/cloud/cluster.hpp"
#include "src/cloud/jupyterhub.hpp"

namespace rinkit::cloud {
namespace {

TEST(Resources, ArithmeticAndFits) {
    Resources a{1000, 2048};
    Resources b{500, 1024};
    EXPECT_EQ((a + b).cpuMillis, 1500u);
    a += b;
    EXPECT_EQ(a.memoryMb, 3072u);
    a -= b;
    EXPECT_EQ(a, (Resources{1000, 2048}));
    EXPECT_TRUE(a.fits(b));
    EXPECT_FALSE(b.fits(a));
    EXPECT_EQ(b.toString(), "500m/1024Mi");
}

TEST(Cluster, PaperReferenceTopology) {
    const auto c = Cluster::paperReferenceCluster();
    EXPECT_EQ(c.nodeCount(NodeRole::Master), 3u);
    EXPECT_EQ(c.nodeCount(NodeRole::Worker), 2u);
    EXPECT_EQ(c.nodeCount(NodeRole::Service), 1u);
    EXPECT_EQ(c.nodeCount(NodeRole::Gateway), 1u);
    EXPECT_TRUE(c.highAvailability());
    // Paper: masters need >= 4 CPUs and 16 GB.
    EXPECT_EQ(c.node("master-0").capacity, kPaperControlPlaneNode);
}

TEST(Cluster, HaRequiresThreeMasters) {
    Cluster c;
    c.addNode("m0", NodeRole::Master, kPaperControlPlaneNode);
    c.addNode("m1", NodeRole::Master, kPaperControlPlaneNode);
    EXPECT_FALSE(c.highAvailability());
    c.addNode("m2", NodeRole::Master, kPaperControlPlaneNode);
    EXPECT_TRUE(c.highAvailability());
    EXPECT_THROW(c.addNode("m0", NodeRole::Worker, {1, 1}), std::invalid_argument);
    EXPECT_THROW(c.node("nope"), std::out_of_range);
}

TEST(Cluster, NamespaceLifecycleAndRbac) {
    auto c = Cluster::paperReferenceCluster();
    c.createNamespace("ns-a");
    c.createNamespace("ns-b");
    EXPECT_THROW(c.createNamespace("ns-a"), std::invalid_argument);
    c.createServiceAccount("ns-a", "sa", {Permission::SpawnPods, Permission::ListPods});

    EXPECT_TRUE(c.allowed("ns-a", "sa", Permission::SpawnPods));
    EXPECT_FALSE(c.allowed("ns-a", "sa", Permission::DeletePods));
    // Namespace-local: the same account name grants nothing elsewhere.
    EXPECT_FALSE(c.allowed("ns-b", "sa", Permission::SpawnPods));
    EXPECT_FALSE(c.allowed("nonexistent", "sa", Permission::SpawnPods));
    EXPECT_THROW(c.createServiceAccount("nope", "sa", {}), std::out_of_range);
}

TEST(Cluster, SpawnRequiresPermission) {
    auto c = Cluster::paperReferenceCluster();
    c.createNamespace("ns");
    c.createServiceAccount("ns", "viewer", {Permission::ViewEvents});
    PodSpec spec;
    spec.name = "p";
    EXPECT_THROW(c.spawnPod("ns", "viewer", spec), std::runtime_error);
    EXPECT_THROW(c.spawnPod("ns", "ghost", spec), std::runtime_error);
    c.createServiceAccount("ns", "spawner", {Permission::SpawnPods});
    EXPECT_TRUE(c.spawnPod("ns", "spawner", spec).has_value());
}

TEST(Cluster, SchedulingSpreadsAndRespectsCapacity) {
    auto c = Cluster::paperReferenceCluster(2, Resources{4000, 8192});
    c.createNamespace("ns");
    c.createServiceAccount("ns", "sa", {Permission::SpawnPods, Permission::ListPods});

    PodSpec spec;
    spec.request = {2000, 2048};
    std::set<std::string> usedNodes;
    for (int i = 0; i < 4; ++i) {
        spec.name = "p" + std::to_string(i);
        const auto uid = c.spawnPod("ns", "sa", spec);
        ASSERT_TRUE(uid.has_value());
    }
    for (const auto& pod : c.pods("ns", "sa")) usedNodes.insert(pod.nodeName);
    EXPECT_EQ(usedNodes.size(), 2u); // least-allocated spreads over both workers

    // Workers are now full (4 * 2000m on 2 * 4000m).
    spec.name = "overflow";
    EXPECT_FALSE(c.spawnPod("ns", "sa", spec).has_value());
    EXPECT_EQ(c.totalAllocated().cpuMillis, 8000u);
}

TEST(Cluster, DeleteFreesResources) {
    auto c = Cluster::paperReferenceCluster(1, Resources{4000, 8192});
    c.createNamespace("ns");
    c.createServiceAccount("ns", "sa",
                           {Permission::SpawnPods, Permission::DeletePods,
                            Permission::ListPods});
    PodSpec spec;
    spec.name = "p";
    spec.request = {4000, 8192};
    const auto uid = c.spawnPod("ns", "sa", spec);
    ASSERT_TRUE(uid.has_value());
    spec.name = "q";
    EXPECT_FALSE(c.spawnPod("ns", "sa", spec).has_value()); // full
    c.deletePod("ns", "sa", *uid);
    EXPECT_EQ(c.totalAllocated().cpuMillis, 0u);
    EXPECT_TRUE(c.spawnPod("ns", "sa", spec).has_value()); // freed
    EXPECT_THROW(c.deletePod("ns", "sa", 9999), std::out_of_range);
}

TEST(Cluster, DeploymentCreatesReplicas) {
    auto c = Cluster::paperReferenceCluster();
    c.createNamespace("ns");
    Deployment d;
    d.name = "web";
    d.replicas = 3;
    d.podTemplate.request = {500, 512};
    c.apply("ns", d);
    EXPECT_EQ(c.pods("ns").size(), 3u);
    for (const auto& pod : c.pods("ns")) EXPECT_EQ(pod.phase, PodPhase::Running);
    EXPECT_THROW(c.apply("nope", d), std::out_of_range);
}

TEST(Cluster, RoutingPrefixAndAffinity) {
    auto c = Cluster::paperReferenceCluster();
    c.createNamespace("ns");
    Deployment d;
    d.name = "api";
    d.replicas = 3;
    d.podTemplate.request = {100, 128};
    c.apply("ns", d);
    c.createService("ns", {"api-svc", "api"});
    c.createIngress("ns", {"/api", "api-svc"});

    // No match outside the prefix.
    EXPECT_FALSE(c.route("1.2.3.4", "/other").has_value());
    // Source affinity: same IP -> same backend, repeatedly.
    const auto first = c.route("1.2.3.4", "/api/data");
    ASSERT_TRUE(first.has_value());
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(c.route("1.2.3.4", "/api/data"), first);
    }
    // Different sources spread across backends.
    std::set<count> backends;
    for (int i = 0; i < 50; ++i) {
        const auto r = c.route("10.0.0." + std::to_string(i), "/api");
        ASSERT_TRUE(r.has_value());
        backends.insert(*r);
    }
    EXPECT_GE(backends.size(), 2u);
}

TEST(Cluster, LongestPrefixWins) {
    auto c = Cluster::paperReferenceCluster();
    c.createNamespace("ns");
    Deployment hub;
    hub.name = "hub";
    hub.replicas = 1;
    hub.podTemplate.request = {100, 128};
    c.apply("ns", hub);
    Deployment user;
    user.name = "user-alice";
    user.replicas = 1;
    user.podTemplate.request = {100, 128};
    c.apply("ns", user);
    c.createService("ns", {"hub-svc", "hub"});
    c.createService("ns", {"alice-svc", "user-alice"});
    c.createIngress("ns", {"/", "hub-svc"});
    c.createIngress("ns", {"/user/alice", "alice-svc"});

    const auto toAlice = c.route("9.9.9.9", "/user/alice/lab");
    const auto toHub = c.route("9.9.9.9", "/hub/login");
    ASSERT_TRUE(toAlice.has_value());
    ASSERT_TRUE(toHub.has_value());
    EXPECT_NE(*toAlice, *toHub);
}

TEST(JupyterHub, InstallCreatesEntities) {
    auto c = Cluster::paperReferenceCluster();
    JupyterHub hub(c);
    EXPECT_TRUE(c.hasNamespace("rin-vis"));
    EXPECT_TRUE(c.allowed("rin-vis", "hub-sa", Permission::SpawnPods));
    EXPECT_EQ(c.pods("rin-vis").size(), 1u); // the hub pod
    // PV carries the spawner config with the paper's limits.
    EXPECT_NE(hub.persistentVolume().at("jupyterhub_config.py").find("10000"),
              std::string::npos);
}

TEST(JupyterHub, LoginSpawnsOnDemandAndIsIdempotent) {
    auto c = Cluster::paperReferenceCluster(2, Resources{64000, 262144});
    JupyterHub hub(c);
    EXPECT_TRUE(hub.login("alice"));
    EXPECT_TRUE(hub.login("bob"));
    EXPECT_TRUE(hub.hasSession("alice"));
    EXPECT_EQ(hub.activeSessions(), 2u);
    const count podsBefore = c.pods("rin-vis").size();
    EXPECT_TRUE(hub.login("alice")); // reuse, no new pod
    EXPECT_EQ(c.pods("rin-vis").size(), podsBefore);
    EXPECT_THROW(hub.login(""), std::invalid_argument);
}

TEST(JupyterHub, UserPodsGetPaperLimits) {
    auto c = Cluster::paperReferenceCluster(2, Resources{64000, 262144});
    JupyterHub hub(c);
    hub.login("carol");
    for (const auto& pod : c.pods("rin-vis")) {
        if (pod.spec.name == "jupyter-carol") {
            EXPECT_EQ(pod.spec.request, kPaperInstanceLimit);
            return;
        }
    }
    FAIL() << "carol's pod not found";
}

TEST(JupyterHub, CapacityLimitsConcurrentUsers) {
    // Each user needs 10 vCores; 2 workers x 32 cores -> 6 users fit
    // (hub pod takes 1 core on one of them).
    auto c = Cluster::paperReferenceCluster(2, Resources{32000, 262144});
    JupyterHub hub(c);
    count admitted = 0;
    for (int i = 0; i < 10; ++i) {
        if (hub.login("user" + std::to_string(i))) ++admitted;
    }
    EXPECT_EQ(admitted, 6u);
    // Logging out frees a slot.
    hub.logout("user0");
    EXPECT_TRUE(hub.login("late-user"));
}

TEST(JupyterHub, RoutingReachesTheUsersPod) {
    auto c = Cluster::paperReferenceCluster(2, Resources{64000, 262144});
    JupyterHub hub(c);
    hub.login("dave");
    hub.login("erin");
    const auto dave = hub.routeUserRequest("dave", "6.6.6.6");
    const auto erin = hub.routeUserRequest("erin", "6.6.6.6");
    ASSERT_TRUE(dave.has_value());
    ASSERT_TRUE(erin.has_value());
    EXPECT_NE(*dave, *erin); // namespace isolation per user path
    EXPECT_FALSE(hub.routeUserRequest("nobody", "6.6.6.6").has_value());
}

TEST(JupyterHub, RestartRecoversSessionsFromPv) {
    auto c = Cluster::paperReferenceCluster(2, Resources{64000, 262144});
    JupyterHub hub(c);
    hub.login("frank");
    hub.login("grace");
    hub.restartHub();
    EXPECT_EQ(hub.activeSessions(), 2u);
    EXPECT_TRUE(hub.hasSession("frank"));
    EXPECT_TRUE(hub.routeUserRequest("grace", "1.1.1.1").has_value());
    // Logout after restart still works (uid survived in the PV).
    hub.logout("frank");
    EXPECT_FALSE(hub.hasSession("frank"));
}

TEST(JupyterHub, EventsLogTellsTheStory) {
    auto c = Cluster::paperReferenceCluster();
    JupyterHub hub(c);
    hub.login("heidi");
    bool sawSpawn = false;
    for (const auto& e : c.events()) {
        if (e.find("jupyter-heidi") != std::string::npos) sawSpawn = true;
    }
    EXPECT_TRUE(sawSpawn);
}

} // namespace
} // namespace rinkit::cloud
