// Tests for the extension modules: trajectory contact analysis, Kabsch
// superposition/RMSD, local clustering centrality, the widget session
// recorder, and the gateway ACL firewall.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/centrality/local_clustering.hpp"
#include "src/cloud/gateway.hpp"
#include "src/graph/generators.hpp"
#include "src/md/align.hpp"
#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"
#include "src/rin/contact_analysis.hpp"
#include "src/support/random.hpp"
#include "src/viz/session_recorder.hpp"

namespace rinkit {
namespace {

md::Trajectory foldingTrajectory(count frames = 9) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = frames;
    gen.unfoldingEvents = 1;
    return md::TrajectoryGenerator(gen).generate(md::villinHeadpiece());
}

TEST(ContactAnalysis, FrequenciesInUnitInterval) {
    const auto traj = foldingTrajectory();
    rin::ContactAnalysis ca(traj, rin::DistanceCriterion::MinimumAtomDistance, 5.0);
    EXPECT_EQ(ca.frameCount(), 9u);
    EXPECT_EQ(ca.residueCount(), 35u);
    for (node u = 0; u < 35; u += 3) {
        for (node v = u + 1; v < 35; v += 5) {
            const double f = ca.contactFrequency(u, v);
            EXPECT_GE(f, 0.0);
            EXPECT_LE(f, 1.0);
            EXPECT_DOUBLE_EQ(f, ca.contactFrequency(v, u)); // symmetric
        }
    }
    EXPECT_DOUBLE_EQ(ca.contactFrequency(3, 3), 0.0);
}

TEST(ContactAnalysis, BackboneContactsArePersistent) {
    // Adjacent residues stay in contact through folding and unfolding.
    const auto traj = foldingTrajectory();
    rin::ContactAnalysis ca(traj, rin::DistanceCriterion::MinimumAtomDistance, 5.0);
    for (node u = 0; u + 1 < 35; ++u) {
        EXPECT_DOUBLE_EQ(ca.contactFrequency(u, u + 1), 1.0) << "residue " << u;
    }
}

TEST(ContactAnalysis, ConsensusGraphMonotoneInThreshold) {
    const auto traj = foldingTrajectory();
    rin::ContactAnalysis ca(traj, rin::DistanceCriterion::MinimumAtomDistance, 5.0);
    const auto core = ca.consensusGraph(1.0);   // persistent contacts
    const auto majority = ca.consensusGraph(0.5);
    const auto any = ca.consensusGraph(1.0 / 9.0);
    EXPECT_LE(core.numberOfEdges(), majority.numberOfEdges());
    EXPECT_LE(majority.numberOfEdges(), any.numberOfEdges());
    // The persistent core contains at least the backbone.
    EXPECT_GE(core.numberOfEdges(), 34u);
    core.forEdges([&](node u, node v) { EXPECT_TRUE(majority.hasEdge(u, v)); });
}

TEST(ContactAnalysis, MeanContactNumberDropsWhenUnfolded) {
    const auto traj = foldingTrajectory(9);
    rin::ContactAnalysis ca(traj, rin::DistanceCriterion::MinimumAtomDistance, 5.0);
    EXPECT_LT(ca.meanContactNumber(4), ca.meanContactNumber(0)); // apex vs folded
    EXPECT_LT(ca.meanContactNumber(4), ca.meanContactNumber(8));
}

TEST(ContactAnalysis, JaccardProperties) {
    const auto traj = foldingTrajectory(9);
    rin::ContactAnalysis ca(traj, rin::DistanceCriterion::MinimumAtomDistance, 5.0);
    EXPECT_DOUBLE_EQ(ca.jaccard(2, 2), 1.0);
    EXPECT_DOUBLE_EQ(ca.jaccard(0, 4), ca.jaccard(4, 0));
    // Folded frame is more similar to the refolded end than to the apex.
    EXPECT_GT(ca.jaccard(0, 8), ca.jaccard(0, 4));
}

TEST(ContactAnalysis, TransientContactsExcludePermanentOnes) {
    const auto traj = foldingTrajectory(9);
    rin::ContactAnalysis ca(traj, rin::DistanceCriterion::MinimumAtomDistance, 5.0);
    const auto transients = ca.transientContacts(10);
    EXPECT_FALSE(transients.empty());
    for (const auto& [u, v] : transients) {
        const double f = ca.contactFrequency(u, v);
        EXPECT_GT(f, 0.0);
        EXPECT_LT(f, 1.0);
    }
}

TEST(Align, IdenticalSetsZeroRmsd) {
    const auto cas = md::alpha3D().alphaCarbons();
    EXPECT_NEAR(md::rmsd(cas, cas), 0.0, 1e-9);
}

TEST(Align, RecoverPureRotationAndTranslation) {
    // Rotate + translate a structure; Kabsch must recover RMSD ~ 0.
    const auto ref = md::villinHeadpiece().alphaCarbons();
    const double angle = 0.7;
    std::vector<Point3> moved(ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        const Point3& p = ref[i];
        moved[i] = {p.x * std::cos(angle) - p.y * std::sin(angle) + 10.0,
                    p.x * std::sin(angle) + p.y * std::cos(angle) - 4.0, p.z + 7.0};
    }
    EXPECT_NEAR(md::rmsd(ref, moved), 0.0, 1e-6);
    const auto aligned = md::superpose(ref, moved);
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_LT(aligned[i].distance(ref[i]), 1e-6);
    }
}

TEST(Align, RmsdMatchesKnownPerturbation) {
    // Uniform displacement of every atom by d along random directions has
    // RMSD <= d (superposition can only reduce it).
    const auto ref = md::chignolin().alphaCarbons();
    Rng rng(5);
    std::vector<Point3> moved(ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        const Point3 dir =
            Point3{rng.normal(), rng.normal(), rng.normal()}.normalized();
        moved[i] = ref[i] + dir * 0.5;
    }
    const double r = md::rmsd(ref, moved);
    EXPECT_GT(r, 0.0);
    EXPECT_LE(r, 0.5 + 1e-9);
}

TEST(Align, SizeMismatchThrows) {
    EXPECT_THROW(md::rmsd(std::vector<Point3>(3), std::vector<Point3>(4)),
                 std::invalid_argument);
    EXPECT_TRUE(md::superpose({}, {}).empty());
}

TEST(Align, RmsdSeriesTracksUnfolding) {
    const auto traj = foldingTrajectory(9);
    const auto series = md::rmsdSeries(traj);
    ASSERT_EQ(series.size(), 9u);
    EXPECT_NEAR(series[0], 0.0, 1e-9);        // reference frame
    EXPECT_GT(series[4], 3.0);                // unfolded apex far away
    EXPECT_LT(series[8], series[4]);          // refolded comes back
}

TEST(Align, DegeneratePlanarPointsStillWork) {
    // All points in a plane: the covariance is rank-2; the reflection fix
    // must still produce a proper rotation.
    std::vector<Point3> ref{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
    std::vector<Point3> mob{{0, 0, 0}, {0, 1, 0}, {-1, 0, 0}, {-1, 1, 0}}; // 90° turn
    EXPECT_NEAR(md::rmsd(ref, mob), 0.0, 1e-9);
}

TEST(LocalClustering, TriangleAndPath) {
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(2, 3);
    LocalClusteringCoefficient lcc(g);
    lcc.run();
    EXPECT_DOUBLE_EQ(lcc.score(0), 1.0);
    EXPECT_DOUBLE_EQ(lcc.score(2), 1.0 / 3.0); // pairs {0,1},{0,3},{1,3}
    EXPECT_DOUBLE_EQ(lcc.score(3), 0.0);       // degree 1
}

TEST(LocalClustering, CompleteGraphAllOnes) {
    const auto g = generators::erdosRenyi(6, 1.0);
    LocalClusteringCoefficient lcc(g);
    lcc.run();
    for (node u = 0; u < 6; ++u) EXPECT_DOUBLE_EQ(lcc.score(u), 1.0);
}

TEST(SessionRecorder, RecordsAndAggregates) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 4;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::chignolin());
    viz::RinWidget widget(traj);
    viz::SessionRecorder rec;

    rec.setMeasure(widget, viz::Measure::Degree);
    rec.setCutoff(widget, 6.0);
    rec.setFrame(widget, 2);
    rec.setFrame(widget, 3);
    EXPECT_EQ(rec.eventCount(), 4u);

    const auto frames = rec.totalStats(viz::SessionRecorder::EventKind::Frame);
    EXPECT_EQ(frames.samples, 2u);
    EXPECT_GT(frames.meanMs, 0.0);
    EXPECT_GE(frames.maxMs, frames.meanMs);
    EXPECT_GE(frames.maxMs, frames.p95Ms);

    const auto layout = rec.phaseStats("layout");
    EXPECT_EQ(layout.samples, 4u);
    EXPECT_THROW(rec.phaseStats("bogus"), std::invalid_argument);
    EXPECT_TRUE(rec.interactive(10000.0));
    EXPECT_FALSE(rec.interactive(0.0));
}

TEST(SessionRecorder, CsvShape) {
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 3;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::chignolin());
    viz::RinWidget widget(traj);
    viz::SessionRecorder rec;
    rec.setCutoff(widget, 5.5);
    rec.setMeasure(widget, viz::Measure::PageRank);

    std::stringstream ss;
    rec.writeCsv(ss);
    std::string line;
    std::getline(ss, line);
    EXPECT_NE(line.find("total_ms"), std::string::npos);
    EXPECT_NE(line.find(",wire_bytes,"), std::string::npos);
    // The measure-resolution columns (tier / achieved bound / samples) come
    // after the wire payload column, then the serving-layer observability
    // verdicts close the row.
    const std::string tail = ",wire_bytes,measure_tier,measure_eps,measure_samples"
                             ",slo_verdict,trace_retained"
                             ",spec_judged,spec_hit,lod_coarse,client_refine_ms";
    EXPECT_EQ(line.rfind(tail), line.size() - tail.size());
    const auto headerCommas =
        static_cast<count>(std::count(line.begin(), line.end(), ','));
    count rows = 0;
    while (std::getline(ss, line)) {
        if (!line.empty()) ++rows;
        if (rows == 1) {
            EXPECT_EQ(line.rfind("cutoff,", 0), 0u);
            EXPECT_EQ(static_cast<count>(std::count(line.begin(), line.end(), ',')),
                      headerCommas);
            // JSON mode ships the figure itself: a nonzero byte count in
            // the wire_bytes column (10th from the end, ahead of the
            // measure-resolution, verdict, and speculation/LOD columns).
            std::vector<std::string> cells;
            std::stringstream row(line);
            for (std::string cell; std::getline(row, cell, ',');)
                cells.push_back(cell);
            EXPECT_GT(std::stoull(cells[cells.size() - 10]), 0u);
            // Direct widget drives see no serving layer: verdict columns
            // hold their defaults.
            EXPECT_EQ(cells[cells.size() - 6], "ok");
            EXPECT_EQ(cells[cells.size() - 5], "0");
            // ... and no speculation or LOD ran: flag columns all zero.
            EXPECT_EQ(cells[cells.size() - 4], "0");
            EXPECT_EQ(cells[cells.size() - 3], "0");
            EXPECT_EQ(cells[cells.size() - 2], "0");
            EXPECT_EQ(cells.back(), "0");
        }
    }
    EXPECT_EQ(rows, 2u);
}

TEST(Gateway, FirstMatchWinsDefaultDeny) {
    cloud::Gateway gw;
    gw.addRule({cloud::Gateway::Action::Deny, "10.0.", 0, "block internal leak"});
    gw.addRule({cloud::Gateway::Action::Allow, "", 443, "https out"});
    gw.addRule({cloud::Gateway::Action::Allow, "140.82.", 22, "github ssh"});

    EXPECT_FALSE(gw.egress("10.0.3.7", 443, 100));  // deny rule first
    EXPECT_TRUE(gw.egress("151.101.1.1", 443, 200)); // https allowed anywhere
    EXPECT_TRUE(gw.egress("140.82.121.4", 22, 300)); // specific allow
    EXPECT_FALSE(gw.egress("140.82.121.4", 23, 50)); // no rule -> default deny
    EXPECT_EQ(gw.defaultDeniedPackets(), 1u);
    EXPECT_EQ(gw.defaultDeniedBytes(), 50u);
    EXPECT_EQ(gw.allowedBytes(), 500u);
}

TEST(Gateway, TrafficMonitoringPerRule) {
    cloud::Gateway gw;
    gw.addRule({cloud::Gateway::Action::Allow, "", 443, "https"});
    gw.egress("1.1.1.1", 443, 10);
    gw.egress("2.2.2.2", 443, 20);
    const auto& stats = gw.ruleStats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].hits, 2u);
    EXPECT_EQ(stats[0].bytes, 30u);
    EXPECT_EQ(stats[0].rule.comment, "https");
}

} // namespace
} // namespace rinkit
