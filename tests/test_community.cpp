// Tests for community detection: Partition mechanics, quality measures with
// hand-computed values, recovery of planted partitions by every detector,
// Leiden's connectivity guarantee, and NMI/ARI properties.
#include <gtest/gtest.h>

#include <cmath>

#include "src/community/leiden.hpp"
#include "src/community/louvain_common.hpp"
#include "src/community/mapequation.hpp"
#include "src/community/partition.hpp"
#include "src/community/plm.hpp"
#include "src/community/plp.hpp"
#include "src/community/quality.hpp"
#include "src/community/similarity.hpp"
#include "src/graph/generators.hpp"
#include "src/support/random.hpp"

namespace rinkit {
namespace {

Graph twoCliquesBridge(count k) {
    // Two k-cliques joined by a single edge: unambiguous two-community graph.
    Graph g(2 * k);
    for (node u = 0; u < k; ++u) {
        for (node v = u + 1; v < k; ++v) {
            g.addEdge(u, v);
            g.addEdge(static_cast<node>(k + u), static_cast<node>(k + v));
        }
    }
    g.addEdge(0, static_cast<node>(k));
    return g;
}

Partition twoBlocks(count n) {
    Partition p(n);
    for (node u = 0; u < n; ++u) p[u] = u < n / 2 ? 0 : 1;
    return p;
}

TEST(Partition, SingletonsAndCompact) {
    Partition p(5);
    p.allToSingletons();
    EXPECT_EQ(p.numberOfSubsets(), 5u);
    p.moveToSubset(1, 0);
    p.moveToSubset(3, 4);
    EXPECT_EQ(p.numberOfSubsets(), 3u);
    EXPECT_EQ(p.compact(), 3u);
    for (node u = 0; u < 5; ++u) EXPECT_LT(p[u], 3u);
    EXPECT_TRUE(p.inSameSubset(0, 1));
    EXPECT_TRUE(p.inSameSubset(3, 4));
    EXPECT_FALSE(p.inSameSubset(0, 2));
}

TEST(Partition, SizesAndMembers) {
    Partition p(std::vector<index>{0, 0, 1, 1, 1});
    EXPECT_EQ(p.subsetSizes(), (std::vector<count>{2, 3}));
    EXPECT_EQ(p.members(1), (std::vector<node>{2, 3, 4}));
    EXPECT_THROW(p.subsetOf(9), std::out_of_range);
    EXPECT_THROW(p.moveToSubset(9, 0), std::out_of_range);
}

TEST(Quality, ModularityHandValue) {
    // Two triangles + bridge: m = 7.
    // Ground-truth split: intra = 6, vol = 7 per side.
    // Q = 6/7 - 2 * (7/14)^2 = 6/7 - 1/2.
    const auto g = twoCliquesBridge(3);
    const auto p = twoBlocks(6);
    EXPECT_NEAR(modularity(p, g), 6.0 / 7.0 - 0.5, 1e-12);
    EXPECT_NEAR(coverage(p, g), 6.0 / 7.0, 1e-12);
}

TEST(Quality, SingletonModularityNegative) {
    const auto g = generators::karateClub();
    Partition p(34);
    p.allToSingletons();
    EXPECT_LT(modularity(p, g), 0.0);
    EXPECT_DOUBLE_EQ(coverage(p, g), 0.0);
}

TEST(Quality, AllInOneModularityZero) {
    const auto g = generators::karateClub();
    Partition p(34); // all zeros
    EXPECT_NEAR(modularity(p, g), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(coverage(p, g), 1.0);
}

TEST(Quality, ResolutionParameterShifts) {
    const auto g = twoCliquesBridge(4);
    const auto p = twoBlocks(8);
    // Larger gamma penalizes volume more strongly.
    EXPECT_GT(modularity(p, g, 0.5), modularity(p, g, 1.0));
    EXPECT_GT(modularity(p, g, 1.0), modularity(p, g, 2.0));
}

TEST(Quality, SizeMismatchThrows) {
    const auto g = generators::karateClub();
    Partition p(10);
    EXPECT_THROW(modularity(p, g), std::invalid_argument);
    EXPECT_THROW(coverage(p, g), std::invalid_argument);
    EXPECT_THROW(mapEquation(p, g), std::invalid_argument);
}

TEST(Quality, MapEquationPrefersGoodPartition) {
    const auto g = twoCliquesBridge(5);
    const auto good = twoBlocks(10);
    Partition singletons(10);
    singletons.allToSingletons();
    Partition allInOne(10);
    // The true split must beat both trivial partitions.
    EXPECT_LT(mapEquation(good, g), mapEquation(singletons, g));
    EXPECT_LT(mapEquation(good, g), mapEquation(allInOne, g));
}

TEST(Quality, MapEquationOneModuleEqualsEntropy) {
    // With a single module there is no inter-module traffic: L = H(node visit rates).
    const auto g = generators::karateClub();
    Partition p(34);
    const double m2 = 2.0 * g.totalEdgeWeight();
    double h = 0.0;
    g.forNodes([&](node u) {
        const double pu = g.weightedDegree(u) / m2;
        if (pu > 0) h -= pu * std::log2(pu);
    });
    EXPECT_NEAR(mapEquation(p, g), h, 1e-12);
}

TEST(LouvainCommon, CoarsenFoldsWeights) {
    const auto g = twoCliquesBridge(3);
    auto cg = louvain::CoarseGraph::fromGraph(g);
    EXPECT_DOUBLE_EQ(cg.totalWeight(), 7.0);
    EXPECT_DOUBLE_EQ(cg.volume(0), 3.0); // deg 2 in clique + bridge

    const auto p = twoBlocks(6);
    const auto coarse = louvain::coarsen(cg, p);
    EXPECT_EQ(coarse.csr.numberOfNodes(), 2u);
    EXPECT_EQ(coarse.csr.numberOfEdges(), 1u);
    double w01 = 0.0;
    coarse.csr.forWeightedNeighborsOf(0, [&](node v, edgeweight w) {
        if (v == 1) w01 = w;
    });
    EXPECT_DOUBLE_EQ(w01, 1.0);
    EXPECT_DOUBLE_EQ(coarse.selfLoop[0], 3.0);
    EXPECT_DOUBLE_EQ(coarse.selfLoop[1], 3.0);
    EXPECT_DOUBLE_EQ(coarse.totalWeight(), 7.0); // weight preserved
    EXPECT_DOUBLE_EQ(coarse.volume(0), 7.0);     // vol preserved per block
}

TEST(LouvainCommon, ProlongComposes) {
    Partition fine(std::vector<index>{0, 0, 1, 1, 2});
    Partition coarse(std::vector<index>{5, 5, 9});
    const auto lifted = louvain::prolong(fine, coarse);
    EXPECT_EQ(lifted.vector(), (std::vector<index>{5, 5, 5, 5, 9}));
}

// All four detectors must recover an easy planted partition.
struct DetectorCase {
    const char* name;
    std::function<std::unique_ptr<CommunityDetector>(const Graph&)> make;
};

class DetectorP : public ::testing::TestWithParam<int> {
public:
    static std::unique_ptr<CommunityDetector> make(int which, const Graph& g) {
        switch (which) {
        case 0: return std::make_unique<Plm>(g);
        case 1: return std::make_unique<Plm>(g, true); // PLM-R
        case 2: return std::make_unique<ParallelLeiden>(g);
        case 3: return std::make_unique<LouvainMapEquation>(g);
        default: return std::make_unique<Plp>(g);
        }
    }
};

TEST_P(DetectorP, RecoversTwoCliques) {
    const auto g = twoCliquesBridge(8);
    auto det = DetectorP::make(GetParam(), g);
    det->run();
    const auto& p = det->getPartition();
    EXPECT_EQ(p.numberOfSubsets(), 2u);
    for (node u = 1; u < 8; ++u) EXPECT_TRUE(p.inSameSubset(0, u));
    for (node u = 9; u < 16; ++u) EXPECT_TRUE(p.inSameSubset(8, u));
    EXPECT_FALSE(p.inSameSubset(0, 8));
}

TEST_P(DetectorP, RecoversPlantedPartition) {
    std::vector<index> truth;
    const auto g = generators::plantedPartition(5, 30, 0.5, 0.01, 7, &truth);
    auto det = DetectorP::make(GetParam(), g);
    det->run();
    const double similarity = nmi(det->getPartition(), Partition(truth));
    EXPECT_GT(similarity, 0.9) << "detector " << GetParam();
}

TEST_P(DetectorP, RunRequiredBeforePartition) {
    const auto g = twoCliquesBridge(3);
    auto det = DetectorP::make(GetParam(), g);
    EXPECT_THROW(det->getPartition(), std::logic_error);
}

TEST_P(DetectorP, HandlesEmptyAndEdgeless) {
    Graph empty;
    auto det0 = DetectorP::make(GetParam(), empty);
    det0->run();
    EXPECT_EQ(det0->getPartition().numberOfElements(), 0u);

    Graph iso(6);
    auto det1 = DetectorP::make(GetParam(), iso);
    det1->run();
    EXPECT_EQ(det1->getPartition().numberOfElements(), 6u);
    // No edges: every node stays in its own community.
    EXPECT_EQ(det1->getPartition().numberOfSubsets(), 6u);
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorP, ::testing::Values(0, 1, 2, 3, 4));

TEST(Plm, KarateModularityInKnownRange) {
    const auto g = generators::karateClub();
    Plm plm(g, true);
    plm.run();
    const double q = modularity(plm.getPartition(), g);
    // Optimal modularity for karate is ~0.4198; Louvain finds >= 0.40.
    EXPECT_GE(q, 0.38);
    EXPECT_LE(q, 0.42);
}

TEST(Plm, RefinementDoesNotHurt) {
    const auto g = generators::plantedPartition(6, 20, 0.4, 0.02, 3);
    Plm base(g, false, 1.0, 9);
    Plm refined(g, true, 1.0, 9);
    base.run();
    refined.run();
    EXPECT_GE(modularity(refined.getPartition(), g) + 1e-9,
              modularity(base.getPartition(), g));
}

TEST(Plm, LocalMovingImprovesModularityMonotonically) {
    const auto g = generators::karateClub();
    auto cg = louvain::CoarseGraph::fromGraph(g);
    Partition p(34);
    p.allToSingletons();
    const double before = modularity(p, g);
    Plm::localMoving(cg, p, 1.0, 1);
    EXPECT_GT(modularity(p, g), before);
}

TEST(Leiden, CommunitiesAreConnected) {
    for (std::uint64_t seed : {1, 2, 3}) {
        const auto g = generators::erdosRenyi(300, 0.02, seed);
        ParallelLeiden leiden(g, 1.0, seed);
        leiden.run();
        const auto& p = leiden.getPartition();
        // Every community induces a connected subgraph.
        const count k = p.numberOfSubsets();
        for (index c = 0; c < k; ++c) {
            const auto members = p.members(c);
            ASSERT_FALSE(members.empty());
            // BFS within the community.
            std::vector<bool> inC(g.numberOfNodes(), false), seen(g.numberOfNodes(), false);
            for (node u : members) inC[u] = true;
            std::vector<node> stack{members[0]};
            seen[members[0]] = true;
            count reached = 0;
            while (!stack.empty()) {
                const node u = stack.back();
                stack.pop_back();
                ++reached;
                g.forNeighborsOf(u, [&](node, node v) {
                    if (inC[v] && !seen[v]) {
                        seen[v] = true;
                        stack.push_back(v);
                    }
                });
            }
            EXPECT_EQ(reached, members.size()) << "community " << c << " disconnected";
        }
    }
}

TEST(Leiden, SplitDisconnectedSplitsCorrectly) {
    Graph g(6);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    g.addEdge(4, 5);
    Partition p(std::vector<index>{0, 0, 0, 0, 1, 1});
    const count splits = ParallelLeiden::splitDisconnected(CsrView::fromGraph(g), p);
    EXPECT_EQ(splits, 1u); // community 0 had two components
    EXPECT_TRUE(p.inSameSubset(0, 1));
    EXPECT_TRUE(p.inSameSubset(2, 3));
    EXPECT_FALSE(p.inSameSubset(0, 2));
    EXPECT_TRUE(p.inSameSubset(4, 5));
}

TEST(MapEquation, LocalMovingDecreasesObjective) {
    const auto g = generators::plantedPartition(4, 25, 0.4, 0.02, 5);
    auto cg = louvain::CoarseGraph::fromGraph(g);
    Partition p(g.numberOfNodes());
    p.allToSingletons();
    const double before = mapEquation(p, g);
    LouvainMapEquation::localMoving(cg, p, 1);
    EXPECT_LT(mapEquation(p, g), before);
}

TEST(MapEquation, BeatsTrivialPartitions) {
    const auto g = generators::plantedPartition(4, 25, 0.4, 0.02, 5);
    LouvainMapEquation lme(g);
    lme.run();
    Partition allInOne(g.numberOfNodes());
    Partition singletons(g.numberOfNodes());
    singletons.allToSingletons();
    const double found = mapEquation(lme.getPartition(), g);
    EXPECT_LT(found, mapEquation(allInOne, g));
    EXPECT_LT(found, mapEquation(singletons, g));
}

TEST(Plp, TerminatesAndReportsIterations) {
    const auto g = generators::plantedPartition(3, 40, 0.5, 0.01, 2);
    Plp plp(g);
    plp.run();
    EXPECT_GE(plp.iterations(), 1u);
    EXPECT_LE(plp.iterations(), 100u);
    EXPECT_GE(plp.getPartition().numberOfSubsets(), 3u - 1);
}

TEST(Nmi, IdenticalPartitionsScoreOne) {
    Partition p(std::vector<index>{0, 0, 1, 1, 2, 2});
    Partition q(std::vector<index>{5, 5, 9, 9, 7, 7}); // same up to renaming
    EXPECT_NEAR(nmi(p, q), 1.0, 1e-12);
    EXPECT_NEAR(adjustedRandIndex(p, q), 1.0, 1e-12);
}

TEST(Nmi, TrivialVsInformativeIsZero) {
    Partition allInOne(6);
    Partition split(std::vector<index>{0, 0, 0, 1, 1, 1});
    EXPECT_DOUBLE_EQ(nmi(allInOne, split), 0.0);
}

TEST(Nmi, NormalizationOrdering) {
    Partition a(std::vector<index>{0, 0, 1, 1, 2, 2, 3, 3});
    Partition b(std::vector<index>{0, 0, 0, 0, 1, 1, 1, 1});
    // Min-normalized >= geometric >= arithmetic... in general
    // min >= geo >= ari >= max; check the outer inequality plus bounds.
    const double vMin = nmi(a, b, NmiNormalization::Min);
    const double vMax = nmi(a, b, NmiNormalization::Max);
    const double vGeo = nmi(a, b, NmiNormalization::Geometric);
    const double vAri = nmi(a, b, NmiNormalization::Arithmetic);
    EXPECT_GE(vMin, vGeo);
    EXPECT_GE(vGeo, vAri);
    EXPECT_GE(vAri, vMax);
    EXPECT_GT(vMax, 0.0);
    EXPECT_LE(vMin, 1.0);
}

TEST(Nmi, SymmetricInArguments) {
    Partition a(std::vector<index>{0, 0, 1, 1, 2, 2, 0, 1});
    Partition b(std::vector<index>{0, 1, 1, 1, 2, 2, 0, 0});
    EXPECT_NEAR(nmi(a, b), nmi(b, a), 1e-12);
    EXPECT_NEAR(adjustedRandIndex(a, b), adjustedRandIndex(b, a), 1e-12);
}

TEST(Nmi, SizeMismatchThrows) {
    Partition a(3), b(4);
    EXPECT_THROW(nmi(a, b), std::invalid_argument);
    EXPECT_THROW(adjustedRandIndex(a, b), std::invalid_argument);
}

TEST(Ari, IndependentPartitionsNearZero) {
    // Random assignment vs blocks: expect ARI around 0.
    Rng rng(5);
    Partition blocks(std::vector<index>(200));
    Partition random(std::vector<index>(200));
    for (node u = 0; u < 200; ++u) {
        blocks[u] = u / 50;
        random[u] = static_cast<index>(rng.integer(4));
    }
    EXPECT_NEAR(adjustedRandIndex(blocks, random), 0.0, 0.1);
}

TEST(Ari, BothTrivialPartitionsScoreOne) {
    Partition a(5), b(5);
    EXPECT_DOUBLE_EQ(adjustedRandIndex(a, b), 1.0);
    EXPECT_DOUBLE_EQ(nmi(a, b), 1.0);
}

} // namespace
} // namespace rinkit
