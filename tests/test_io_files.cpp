// File-based I/O round trips and failure injection: unreadable paths,
// truncated files, and cross-format consistency on disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "src/core/rin_explorer.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/graph_io.hpp"
#include "src/md/md_io.hpp"
#include "src/md/synthetic.hpp"
#include "src/md/trajectory.hpp"

namespace rinkit {
namespace {

class TempDir : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("rinkit_io_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const std::string& name) const { return (dir_ / name).string(); }

    std::filesystem::path dir_;
};

TEST_F(TempDir, MetisFileRoundTrip) {
    const auto g = generators::erdosRenyi(50, 0.1, 8);
    io::writeMetisFile(g, path("g.metis"));
    const auto h = io::readMetisFile(path("g.metis"));
    EXPECT_TRUE(g == h);
}

TEST_F(TempDir, EdgeListFileRoundTrip) {
    Graph g(5, true);
    g.addEdge(0, 1, 2.5);
    g.addEdge(3, 4, 0.25);
    io::writeEdgeListFile(g, path("g.edges"));
    const auto h = io::readEdgeListFile(path("g.edges"), 5, true);
    EXPECT_TRUE(g == h);
}

TEST_F(TempDir, MissingFilesThrow) {
    EXPECT_THROW(io::readMetisFile(path("nope.metis")), std::runtime_error);
    EXPECT_THROW(io::readEdgeListFile(path("nope.edges")), std::runtime_error);
    EXPECT_THROW(md::io::readPdbFile(path("nope.pdb")), std::runtime_error);
    EXPECT_THROW(md::io::readXyzTrajectoryFile(path("nope.xyz"), md::chignolin()),
                 std::runtime_error);
    // Writing into a non-existing directory fails cleanly.
    EXPECT_THROW(io::writeMetisFile(Graph(1), path("no/such/dir/g.metis")),
                 std::runtime_error);
}

TEST_F(TempDir, TruncatedMetisRejected) {
    std::ofstream(path("trunc.metis")) << "5 4\n2\n1 3\n"; // promises 5 node lines
    EXPECT_THROW(io::readMetisFile(path("trunc.metis")), std::runtime_error);
}

TEST_F(TempDir, TruncatedXyzRejected) {
    const auto protein = md::chignolin();
    std::ofstream(path("trunc.xyz")) << protein.atomCount() << "\nframe 0\nC 0 0 0\n";
    EXPECT_THROW(md::io::readXyzTrajectoryFile(path("trunc.xyz"), protein),
                 std::runtime_error);
}

TEST_F(TempDir, PdbFileRoundTripViaDisk) {
    const auto p = md::villinHeadpiece();
    md::io::writePdbFile(p, path("v.pdb"));
    const auto q = md::io::readPdbFile(path("v.pdb"));
    ASSERT_EQ(q.size(), p.size());
    // RIN built from the re-read structure matches (PDB keeps 3 decimals,
    // far below contact-detection resolution).
    rin::RinBuilder builder(rin::DistanceCriterion::AlphaCarbon);
    EXPECT_TRUE(builder.build(p, 6.0) == builder.build(q, 6.0));
}

TEST_F(TempDir, ExplorerRoundTripsTrajectoryThroughXyz) {
    // Generate -> persist to XYZ -> reload -> identical widget graph.
    md::TrajectoryGenerator::Parameters gen;
    gen.frames = 4;
    const auto traj = md::TrajectoryGenerator(gen).generate(md::chignolin());
    md::io::writeXyzTrajectoryFile(traj, path("t.xyz"));
    const auto loaded = md::io::readXyzTrajectoryFile(path("t.xyz"), traj.topology());
    ASSERT_EQ(loaded.frameCount(), 4u);

    viz::RinWidget::Options opts;
    auto a = RinExplorer::forTrajectory(md::Trajectory(traj), opts);
    auto b = RinExplorer::forTrajectory(md::Trajectory(loaded), opts);
    a.widget().setFrame(2);
    b.widget().setFrame(2);
    EXPECT_TRUE(a.widget().graph() == b.widget().graph());
}

} // namespace
} // namespace rinkit
