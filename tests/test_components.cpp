// Tests for BFS, Dijkstra, connected components, and diameter.
#include <gtest/gtest.h>

#include "src/components/bfs.hpp"
#include "src/components/connected_components.hpp"
#include "src/components/diameter.hpp"
#include "src/graph/generators.hpp"

namespace rinkit {
namespace {

Graph pathGraph(count n) {
    Graph g(n);
    for (node u = 0; u + 1 < n; ++u) g.addEdge(u, u + 1);
    return g;
}

TEST(Bfs, DistancesOnPath) {
    const auto g = pathGraph(5);
    Bfs bfs(g, 0);
    bfs.run();
    for (node u = 0; u < 5; ++u) EXPECT_DOUBLE_EQ(bfs.distance(u), u);
    EXPECT_EQ(bfs.reached(), 5u);
}

TEST(Bfs, UnreachableIsInfinite) {
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    Bfs bfs(g, 0);
    bfs.run();
    EXPECT_DOUBLE_EQ(bfs.distance(1), 1.0);
    EXPECT_EQ(bfs.distance(2), infdist);
    EXPECT_EQ(bfs.reached(), 2u);
}

TEST(Bfs, CountsShortestPaths) {
    // 4-cycle: two shortest paths from 0 to the opposite corner.
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 0);
    Bfs bfs(g, 0);
    bfs.run();
    EXPECT_DOUBLE_EQ(bfs.numberOfPaths()[2], 2.0);
    EXPECT_DOUBLE_EQ(bfs.numberOfPaths()[1], 1.0);
    EXPECT_DOUBLE_EQ(bfs.numberOfPaths()[3], 1.0);
}

TEST(Bfs, VisitOrderNonDecreasing) {
    const auto g = generators::erdosRenyi(100, 0.05, 21);
    Bfs bfs(g, 0);
    bfs.run();
    const auto& order = bfs.visitOrder();
    for (count i = 1; i < order.size(); ++i) {
        EXPECT_LE(bfs.distance(order[i - 1]), bfs.distance(order[i]));
    }
}

TEST(Bfs, ReusableAcrossSources) {
    const auto g = pathGraph(6);
    Bfs bfs(g, 0);
    bfs.run();
    EXPECT_DOUBLE_EQ(bfs.distance(5), 5.0);
    bfs.setSource(5);
    bfs.run();
    EXPECT_DOUBLE_EQ(bfs.distance(0), 5.0);
    EXPECT_DOUBLE_EQ(bfs.distance(5), 0.0);
}

TEST(Bfs, InvalidSourceThrows) {
    const auto g = pathGraph(3);
    EXPECT_THROW(Bfs(g, 7), std::out_of_range);
    Bfs bfs(g, 0);
    EXPECT_THROW(bfs.setSource(9), std::out_of_range);
}

TEST(Dijkstra, MatchesBfsOnUnweighted) {
    const auto g = generators::erdosRenyi(80, 0.08, 5);
    Bfs bfs(g, 3);
    bfs.run();
    Dijkstra dij(g, 3);
    dij.run();
    for (node u = 0; u < 80; ++u) EXPECT_DOUBLE_EQ(dij.distance(u), bfs.distance(u));
}

TEST(Dijkstra, WeightedShortestPath) {
    Graph g(4, true);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 3, 1.0);
    g.addEdge(0, 2, 0.5);
    g.addEdge(2, 3, 0.7);
    Dijkstra dij(g, 0);
    dij.run();
    EXPECT_DOUBLE_EQ(dij.distance(3), 1.2);
    EXPECT_EQ(dij.path(3), (std::vector<node>{0, 2, 3}));
}

TEST(Dijkstra, PathOfUnreachableIsEmpty) {
    Graph g(3);
    g.addEdge(0, 1);
    Dijkstra dij(g, 0);
    dij.run();
    EXPECT_TRUE(dij.path(2).empty());
}

TEST(Apsp, SymmetricAndMatchesBfs) {
    const auto g = generators::erdosRenyi(50, 0.1, 9);
    const auto d = apspUnweighted(g);
    ASSERT_EQ(d.size(), 50u);
    for (node u = 0; u < 50; ++u) {
        for (node v = 0; v < 50; ++v) EXPECT_DOUBLE_EQ(d[u][v], d[v][u]);
    }
    Bfs bfs(g, 17);
    bfs.run();
    for (node v = 0; v < 50; ++v) EXPECT_DOUBLE_EQ(d[17][v], bfs.distance(v));
}

class ConnectedComponentsP : public ::testing::TestWithParam<ConnectedComponents::Engine> {};

TEST_P(ConnectedComponentsP, SingleComponent) {
    const auto g = generators::karateClub();
    ConnectedComponents cc(g, GetParam());
    cc.run();
    EXPECT_EQ(cc.numberOfComponents(), 1u);
    EXPECT_EQ(cc.largestComponent().size(), 34u);
}

TEST_P(ConnectedComponentsP, MultipleComponents) {
    Graph g(7);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    // 5, 6 isolated
    ConnectedComponents cc(g, GetParam());
    cc.run();
    EXPECT_EQ(cc.numberOfComponents(), 4u);
    EXPECT_EQ(cc.componentOf(0), cc.componentOf(2));
    EXPECT_NE(cc.componentOf(0), cc.componentOf(3));
    EXPECT_NE(cc.componentOf(5), cc.componentOf(6));
    const auto sizes = cc.componentSizes();
    count total = 0;
    for (count s : sizes) total += s;
    EXPECT_EQ(total, 7u);
    EXPECT_EQ(cc.largestComponent().size(), 3u);
}

TEST_P(ConnectedComponentsP, EmptyAndEdgeless) {
    Graph empty;
    ConnectedComponents cc0(empty, GetParam());
    cc0.run();
    EXPECT_EQ(cc0.numberOfComponents(), 0u);

    Graph iso(5);
    ConnectedComponents cc1(iso, GetParam());
    cc1.run();
    EXPECT_EQ(cc1.numberOfComponents(), 5u);
}

TEST_P(ConnectedComponentsP, LabelsAreCompact) {
    const auto g = generators::erdosRenyi(200, 0.005, 33);
    ConnectedComponents cc(g, GetParam());
    cc.run();
    const auto& comp = cc.components();
    for (index c : comp) EXPECT_LT(c, cc.numberOfComponents());
}

INSTANTIATE_TEST_SUITE_P(Engines, ConnectedComponentsP,
                         ::testing::Values(ConnectedComponents::Engine::UnionFind,
                                           ConnectedComponents::Engine::LabelPropagation));

TEST(ConnectedComponents, EnginesAgree) {
    const auto g = generators::erdosRenyi(300, 0.004, 77);
    ConnectedComponents a(g, ConnectedComponents::Engine::UnionFind);
    ConnectedComponents b(g, ConnectedComponents::Engine::LabelPropagation);
    a.run();
    b.run();
    ASSERT_EQ(a.numberOfComponents(), b.numberOfComponents());
    // Same partition up to renaming: node pairs agree on same/different.
    for (node u = 0; u < 300; u += 7) {
        for (node v = u + 1; v < 300; v += 13) {
            EXPECT_EQ(a.componentOf(u) == a.componentOf(v),
                      b.componentOf(u) == b.componentOf(v));
        }
    }
}

TEST(ConnectedComponents, RequiresRun) {
    const auto g = pathGraph(3);
    ConnectedComponents cc(g);
    EXPECT_THROW(cc.numberOfComponents(), std::logic_error);
    EXPECT_THROW(cc.componentOf(0), std::logic_error);
}

TEST(Diameter, PathGraphExact) {
    EXPECT_EQ(diameterExact(pathGraph(10)), 9u);
    EXPECT_EQ(eccentricity(pathGraph(10), 0), 9u);
    EXPECT_EQ(eccentricity(pathGraph(10), 5), 5u);
}

TEST(Diameter, EstimateIsLowerBoundAndTightOnPath) {
    const auto g = pathGraph(50);
    EXPECT_EQ(diameterEstimate(g), 49u); // double sweep is exact on trees
    const auto er = generators::erdosRenyi(200, 0.03, 13);
    EXPECT_LE(diameterEstimate(er), diameterExact(er));
}

TEST(Diameter, DisconnectedUsesReachableOnly) {
    Graph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    EXPECT_EQ(diameterExact(g), 2u);
}

} // namespace
} // namespace rinkit
