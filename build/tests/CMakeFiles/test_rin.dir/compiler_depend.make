# Empty compiler generated dependencies file for test_rin.
# This may be replaced when dependencies are built.
