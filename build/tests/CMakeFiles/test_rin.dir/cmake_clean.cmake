file(REMOVE_RECURSE
  "CMakeFiles/test_rin.dir/test_rin.cpp.o"
  "CMakeFiles/test_rin.dir/test_rin.cpp.o.d"
  "test_rin"
  "test_rin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
