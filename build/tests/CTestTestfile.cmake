# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_centrality "/root/repo/build/tests/test_centrality")
set_tests_properties(test_centrality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cloud "/root/repo/build/tests/test_cloud")
set_tests_properties(test_cloud PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_community "/root/repo/build/tests/test_community")
set_tests_properties(test_community PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_components "/root/repo/build/tests/test_components")
set_tests_properties(test_components PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/tests/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions2 "/root/repo/build/tests/test_extensions2")
set_tests_properties(test_extensions2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_graph "/root/repo/build/tests/test_graph")
set_tests_properties(test_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_io_files "/root/repo/build/tests/test_io_files")
set_tests_properties(test_io_files PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_layout "/root/repo/build/tests/test_layout")
set_tests_properties(test_layout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_md "/root/repo/build/tests/test_md")
set_tests_properties(test_md PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rin "/root/repo/build/tests/test_rin")
set_tests_properties(test_rin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_viz "/root/repo/build/tests/test_viz")
set_tests_properties(test_viz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
