
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/centrality/approx_betweenness.cpp" "src/CMakeFiles/rinkit.dir/centrality/approx_betweenness.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/approx_betweenness.cpp.o.d"
  "/root/repo/src/centrality/betweenness.cpp" "src/CMakeFiles/rinkit.dir/centrality/betweenness.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/betweenness.cpp.o.d"
  "/root/repo/src/centrality/centrality.cpp" "src/CMakeFiles/rinkit.dir/centrality/centrality.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/centrality.cpp.o.d"
  "/root/repo/src/centrality/closeness.cpp" "src/CMakeFiles/rinkit.dir/centrality/closeness.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/closeness.cpp.o.d"
  "/root/repo/src/centrality/core_decomposition.cpp" "src/CMakeFiles/rinkit.dir/centrality/core_decomposition.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/core_decomposition.cpp.o.d"
  "/root/repo/src/centrality/degree.cpp" "src/CMakeFiles/rinkit.dir/centrality/degree.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/degree.cpp.o.d"
  "/root/repo/src/centrality/eigenvector.cpp" "src/CMakeFiles/rinkit.dir/centrality/eigenvector.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/eigenvector.cpp.o.d"
  "/root/repo/src/centrality/local_clustering.cpp" "src/CMakeFiles/rinkit.dir/centrality/local_clustering.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/local_clustering.cpp.o.d"
  "/root/repo/src/centrality/pagerank.cpp" "src/CMakeFiles/rinkit.dir/centrality/pagerank.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/pagerank.cpp.o.d"
  "/root/repo/src/centrality/top_closeness.cpp" "src/CMakeFiles/rinkit.dir/centrality/top_closeness.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/centrality/top_closeness.cpp.o.d"
  "/root/repo/src/cloud/cluster.cpp" "src/CMakeFiles/rinkit.dir/cloud/cluster.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/cloud/cluster.cpp.o.d"
  "/root/repo/src/cloud/gateway.cpp" "src/CMakeFiles/rinkit.dir/cloud/gateway.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/cloud/gateway.cpp.o.d"
  "/root/repo/src/cloud/jupyterhub.cpp" "src/CMakeFiles/rinkit.dir/cloud/jupyterhub.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/cloud/jupyterhub.cpp.o.d"
  "/root/repo/src/community/leiden.cpp" "src/CMakeFiles/rinkit.dir/community/leiden.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/community/leiden.cpp.o.d"
  "/root/repo/src/community/louvain_common.cpp" "src/CMakeFiles/rinkit.dir/community/louvain_common.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/community/louvain_common.cpp.o.d"
  "/root/repo/src/community/mapequation.cpp" "src/CMakeFiles/rinkit.dir/community/mapequation.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/community/mapequation.cpp.o.d"
  "/root/repo/src/community/partition.cpp" "src/CMakeFiles/rinkit.dir/community/partition.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/community/partition.cpp.o.d"
  "/root/repo/src/community/plm.cpp" "src/CMakeFiles/rinkit.dir/community/plm.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/community/plm.cpp.o.d"
  "/root/repo/src/community/plp.cpp" "src/CMakeFiles/rinkit.dir/community/plp.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/community/plp.cpp.o.d"
  "/root/repo/src/community/quality.cpp" "src/CMakeFiles/rinkit.dir/community/quality.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/community/quality.cpp.o.d"
  "/root/repo/src/community/similarity.cpp" "src/CMakeFiles/rinkit.dir/community/similarity.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/community/similarity.cpp.o.d"
  "/root/repo/src/components/bfs.cpp" "src/CMakeFiles/rinkit.dir/components/bfs.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/components/bfs.cpp.o.d"
  "/root/repo/src/components/connected_components.cpp" "src/CMakeFiles/rinkit.dir/components/connected_components.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/components/connected_components.cpp.o.d"
  "/root/repo/src/components/diameter.cpp" "src/CMakeFiles/rinkit.dir/components/diameter.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/components/diameter.cpp.o.d"
  "/root/repo/src/core/rin_explorer.cpp" "src/CMakeFiles/rinkit.dir/core/rin_explorer.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/core/rin_explorer.cpp.o.d"
  "/root/repo/src/embedding/node2vec.cpp" "src/CMakeFiles/rinkit.dir/embedding/node2vec.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/embedding/node2vec.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/rinkit.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/rinkit.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/graph_builder.cpp" "src/CMakeFiles/rinkit.dir/graph/graph_builder.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/graph/graph_builder.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/CMakeFiles/rinkit.dir/graph/graph_io.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/graph/graph_io.cpp.o.d"
  "/root/repo/src/graph/graph_tools.cpp" "src/CMakeFiles/rinkit.dir/graph/graph_tools.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/graph/graph_tools.cpp.o.d"
  "/root/repo/src/layout/fruchterman_reingold.cpp" "src/CMakeFiles/rinkit.dir/layout/fruchterman_reingold.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/layout/fruchterman_reingold.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/CMakeFiles/rinkit.dir/layout/layout.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/layout/layout.cpp.o.d"
  "/root/repo/src/layout/maxent_stress.cpp" "src/CMakeFiles/rinkit.dir/layout/maxent_stress.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/layout/maxent_stress.cpp.o.d"
  "/root/repo/src/layout/octree.cpp" "src/CMakeFiles/rinkit.dir/layout/octree.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/layout/octree.cpp.o.d"
  "/root/repo/src/md/align.cpp" "src/CMakeFiles/rinkit.dir/md/align.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/md/align.cpp.o.d"
  "/root/repo/src/md/md_io.cpp" "src/CMakeFiles/rinkit.dir/md/md_io.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/md/md_io.cpp.o.d"
  "/root/repo/src/md/protein.cpp" "src/CMakeFiles/rinkit.dir/md/protein.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/md/protein.cpp.o.d"
  "/root/repo/src/md/synthetic.cpp" "src/CMakeFiles/rinkit.dir/md/synthetic.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/md/synthetic.cpp.o.d"
  "/root/repo/src/md/trajectory.cpp" "src/CMakeFiles/rinkit.dir/md/trajectory.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/md/trajectory.cpp.o.d"
  "/root/repo/src/rin/cell_list.cpp" "src/CMakeFiles/rinkit.dir/rin/cell_list.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/rin/cell_list.cpp.o.d"
  "/root/repo/src/rin/contact_analysis.cpp" "src/CMakeFiles/rinkit.dir/rin/contact_analysis.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/rin/contact_analysis.cpp.o.d"
  "/root/repo/src/rin/dynamic_rin.cpp" "src/CMakeFiles/rinkit.dir/rin/dynamic_rin.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/rin/dynamic_rin.cpp.o.d"
  "/root/repo/src/rin/rin_builder.cpp" "src/CMakeFiles/rinkit.dir/rin/rin_builder.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/rin/rin_builder.cpp.o.d"
  "/root/repo/src/support/json.cpp" "src/CMakeFiles/rinkit.dir/support/json.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/support/json.cpp.o.d"
  "/root/repo/src/support/random.cpp" "src/CMakeFiles/rinkit.dir/support/random.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/support/random.cpp.o.d"
  "/root/repo/src/viz/client_model.cpp" "src/CMakeFiles/rinkit.dir/viz/client_model.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/viz/client_model.cpp.o.d"
  "/root/repo/src/viz/colormap.cpp" "src/CMakeFiles/rinkit.dir/viz/colormap.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/viz/colormap.cpp.o.d"
  "/root/repo/src/viz/csbridge.cpp" "src/CMakeFiles/rinkit.dir/viz/csbridge.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/viz/csbridge.cpp.o.d"
  "/root/repo/src/viz/figure.cpp" "src/CMakeFiles/rinkit.dir/viz/figure.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/viz/figure.cpp.o.d"
  "/root/repo/src/viz/measures.cpp" "src/CMakeFiles/rinkit.dir/viz/measures.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/viz/measures.cpp.o.d"
  "/root/repo/src/viz/scene.cpp" "src/CMakeFiles/rinkit.dir/viz/scene.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/viz/scene.cpp.o.d"
  "/root/repo/src/viz/session_recorder.cpp" "src/CMakeFiles/rinkit.dir/viz/session_recorder.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/viz/session_recorder.cpp.o.d"
  "/root/repo/src/viz/widget.cpp" "src/CMakeFiles/rinkit.dir/viz/widget.cpp.o" "gcc" "src/CMakeFiles/rinkit.dir/viz/widget.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
