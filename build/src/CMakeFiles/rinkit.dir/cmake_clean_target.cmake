file(REMOVE_RECURSE
  "librinkit.a"
)
