# Empty compiler generated dependencies file for rinkit.
# This may be replaced when dependencies are built.
