# Empty dependencies file for cloud_session.
# This may be replaced when dependencies are built.
