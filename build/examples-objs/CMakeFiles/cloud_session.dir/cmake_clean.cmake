file(REMOVE_RECURSE
  "../examples/cloud_session"
  "../examples/cloud_session.pdb"
  "CMakeFiles/cloud_session.dir/cloud_session.cpp.o"
  "CMakeFiles/cloud_session.dir/cloud_session.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
