# Empty dependencies file for alpha3d_communities.
# This may be replaced when dependencies are built.
