file(REMOVE_RECURSE
  "../examples/alpha3d_communities"
  "../examples/alpha3d_communities.pdb"
  "CMakeFiles/alpha3d_communities.dir/alpha3d_communities.cpp.o"
  "CMakeFiles/alpha3d_communities.dir/alpha3d_communities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha3d_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
