# Empty dependencies file for trajectory_explorer.
# This may be replaced when dependencies are built.
