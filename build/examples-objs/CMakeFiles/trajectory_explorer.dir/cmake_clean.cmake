file(REMOVE_RECURSE
  "../examples/trajectory_explorer"
  "../examples/trajectory_explorer.pdb"
  "CMakeFiles/trajectory_explorer.dir/trajectory_explorer.cpp.o"
  "CMakeFiles/trajectory_explorer.dir/trajectory_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
