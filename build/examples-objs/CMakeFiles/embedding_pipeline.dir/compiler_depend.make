# Empty compiler generated dependencies file for embedding_pipeline.
# This may be replaced when dependencies are built.
