file(REMOVE_RECURSE
  "../examples/embedding_pipeline"
  "../examples/embedding_pipeline.pdb"
  "CMakeFiles/embedding_pipeline.dir/embedding_pipeline.cpp.o"
  "CMakeFiles/embedding_pipeline.dir/embedding_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
