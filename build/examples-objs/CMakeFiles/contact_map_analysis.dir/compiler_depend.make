# Empty compiler generated dependencies file for contact_map_analysis.
# This may be replaced when dependencies are built.
