file(REMOVE_RECURSE
  "../examples/contact_map_analysis"
  "../examples/contact_map_analysis.pdb"
  "CMakeFiles/contact_map_analysis.dir/contact_map_analysis.cpp.o"
  "CMakeFiles/contact_map_analysis.dir/contact_map_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_map_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
