# Empty compiler generated dependencies file for bench_ablation_community.
# This may be replaced when dependencies are built.
