file(REMOVE_RECURSE
  "../bench/bench_ablation_community"
  "../bench/bench_ablation_community.pdb"
  "CMakeFiles/bench_ablation_community.dir/bench_ablation_community.cpp.o"
  "CMakeFiles/bench_ablation_community.dir/bench_ablation_community.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
