# Empty compiler generated dependencies file for bench_cloud_scaling.
# This may be replaced when dependencies are built.
