file(REMOVE_RECURSE
  "../bench/bench_cloud_scaling"
  "../bench/bench_cloud_scaling.pdb"
  "CMakeFiles/bench_cloud_scaling.dir/bench_cloud_scaling.cpp.o"
  "CMakeFiles/bench_cloud_scaling.dir/bench_cloud_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cloud_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
