file(REMOVE_RECURSE
  "../bench/bench_ablation_dynamic_rin"
  "../bench/bench_ablation_dynamic_rin.pdb"
  "CMakeFiles/bench_ablation_dynamic_rin.dir/bench_ablation_dynamic_rin.cpp.o"
  "CMakeFiles/bench_ablation_dynamic_rin.dir/bench_ablation_dynamic_rin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynamic_rin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
