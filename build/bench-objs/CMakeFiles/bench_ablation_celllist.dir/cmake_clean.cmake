file(REMOVE_RECURSE
  "../bench/bench_ablation_celllist"
  "../bench/bench_ablation_celllist.pdb"
  "CMakeFiles/bench_ablation_celllist.dir/bench_ablation_celllist.cpp.o"
  "CMakeFiles/bench_ablation_celllist.dir/bench_ablation_celllist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_celllist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
