# Empty compiler generated dependencies file for bench_ablation_celllist.
# This may be replaced when dependencies are built.
