# Empty compiler generated dependencies file for bench_fig7_cutoff_switch.
# This may be replaced when dependencies are built.
