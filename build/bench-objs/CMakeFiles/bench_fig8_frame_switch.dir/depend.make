# Empty dependencies file for bench_fig8_frame_switch.
# This may be replaced when dependencies are built.
