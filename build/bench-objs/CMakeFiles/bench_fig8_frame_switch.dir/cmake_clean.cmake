file(REMOVE_RECURSE
  "../bench/bench_fig8_frame_switch"
  "../bench/bench_fig8_frame_switch.pdb"
  "CMakeFiles/bench_fig8_frame_switch.dir/bench_fig8_frame_switch.cpp.o"
  "CMakeFiles/bench_fig8_frame_switch.dir/bench_fig8_frame_switch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_frame_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
