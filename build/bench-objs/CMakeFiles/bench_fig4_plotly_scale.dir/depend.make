# Empty dependencies file for bench_fig4_plotly_scale.
# This may be replaced when dependencies are built.
