# Empty dependencies file for bench_fig6_measure_update.
# This may be replaced when dependencies are built.
