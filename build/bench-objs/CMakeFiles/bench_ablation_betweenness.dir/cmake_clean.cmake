file(REMOVE_RECURSE
  "../bench/bench_ablation_betweenness"
  "../bench/bench_ablation_betweenness.pdb"
  "CMakeFiles/bench_ablation_betweenness.dir/bench_ablation_betweenness.cpp.o"
  "CMakeFiles/bench_ablation_betweenness.dir/bench_ablation_betweenness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_betweenness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
