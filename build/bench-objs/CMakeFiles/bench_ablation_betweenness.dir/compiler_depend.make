# Empty compiler generated dependencies file for bench_ablation_betweenness.
# This may be replaced when dependencies are built.
