#include "src/cloud/cluster.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace rinkit::cloud {

void Cluster::addNode(const std::string& name, NodeRole role, Resources capacity) {
    for (const auto& n : nodes_) {
        if (n.name == name) throw std::invalid_argument("Cluster: duplicate node " + name);
    }
    nodes_.push_back({name, role, capacity, {0, 0}});
    logEvent("node added: " + name);
}

Cluster Cluster::paperReferenceCluster(count workers, Resources workerCapacity) {
    Cluster c;
    for (count i = 0; i < 3; ++i) {
        c.addNode("master-" + std::to_string(i), NodeRole::Master, kPaperControlPlaneNode);
    }
    for (count i = 0; i < workers; ++i) {
        c.addNode("worker-" + std::to_string(i), NodeRole::Worker, workerCapacity);
    }
    c.addNode("service-0", NodeRole::Service, kPaperControlPlaneNode);
    c.addNode("gateway-0", NodeRole::Gateway, {2000, 4096});
    return c;
}

count Cluster::nodeCount(NodeRole role) const {
    count n = 0;
    for (const auto& node : nodes_) {
        if (node.role == role) ++n;
    }
    return n;
}

const ClusterNode& Cluster::node(const std::string& name) const {
    for (const auto& n : nodes_) {
        if (n.name == name) return n;
    }
    throw std::out_of_range("Cluster: no node " + name);
}

void Cluster::createNamespace(const std::string& name) {
    if (namespaces_.count(name)) {
        throw std::invalid_argument("Cluster: namespace exists: " + name);
    }
    namespaces_[name];
    logEvent("namespace created: " + name);
}

bool Cluster::hasNamespace(const std::string& name) const {
    return namespaces_.count(name) > 0;
}

void Cluster::createServiceAccount(const std::string& namespaceName,
                                   const std::string& name,
                                   std::vector<Permission> permissions) {
    auto it = namespaces_.find(namespaceName);
    if (it == namespaces_.end()) {
        throw std::out_of_range("Cluster: no namespace " + namespaceName);
    }
    it->second.serviceAccounts[name] = std::move(permissions);
    logEvent("serviceaccount created: " + namespaceName + "/" + name);
}

bool Cluster::allowed(const std::string& namespaceName, const std::string& account,
                      Permission permission) const {
    const auto nsIt = namespaces_.find(namespaceName);
    if (nsIt == namespaces_.end()) return false;
    const auto saIt = nsIt->second.serviceAccounts.find(account);
    if (saIt == nsIt->second.serviceAccounts.end()) return false;
    return std::find(saIt->second.begin(), saIt->second.end(), permission) !=
           saIt->second.end();
}

std::optional<std::string> Cluster::schedule(const Resources& request) {
    // Least-allocated worker that fits (spreads load like the default
    // kube-scheduler scoring).
    ClusterNode* best = nullptr;
    for (auto& n : nodes_) {
        if (n.role != NodeRole::Worker) continue;
        if (!n.free().fits(request)) continue;
        if (!best || n.allocated.cpuMillis < best->allocated.cpuMillis) best = &n;
    }
    if (!best) return std::nullopt;
    best->allocated += request;
    return best->name;
}

void Cluster::apply(const std::string& namespaceName, const Deployment& deployment) {
    auto it = namespaces_.find(namespaceName);
    if (it == namespaces_.end()) {
        throw std::out_of_range("Cluster: no namespace " + namespaceName);
    }
    it->second.deployments[deployment.name] = deployment;
    for (count r = 0; r < deployment.replicas; ++r)
        startReplica(namespaceName, it->second, deployment);
}

count Cluster::startReplica(const std::string& namespaceName, NamespaceState& ns,
                            const Deployment& deployment) {
    Pod pod;
    pod.spec = deployment.podTemplate;
    pod.spec.name = deployment.name + "-" + std::to_string(ns.nextOrdinal[deployment.name]++);
    pod.namespaceName = namespaceName;
    pod.uid = nextUid_++;
    if (auto nodeName = schedule(pod.spec.request)) {
        pod.nodeName = *nodeName;
        pod.phase = PodPhase::Running;
        logEvent("pod scheduled: " + namespaceName + "/" + pod.spec.name + " -> " +
                 *nodeName);
    } else {
        logEvent("pod pending (unschedulable): " + namespaceName + "/" + pod.spec.name);
    }
    const count uid = pod.uid;
    pods_.push_back(std::move(pod));
    return uid;
}

void Cluster::terminatePod(Pod& pod) {
    if (pod.phase == PodPhase::Running) {
        for (auto& n : nodes_) {
            if (n.name == pod.nodeName) n.allocated -= pod.spec.request;
        }
    }
    pod.phase = PodPhase::Terminated;
}

std::vector<count> Cluster::scaleDeployment(const std::string& namespaceName,
                                            const std::string& name, count replicas) {
    auto nsIt = namespaces_.find(namespaceName);
    if (nsIt == namespaces_.end())
        throw std::out_of_range("Cluster: no namespace " + namespaceName);
    auto depIt = nsIt->second.deployments.find(name);
    if (depIt == nsIt->second.deployments.end())
        throw std::out_of_range("Cluster: no deployment " + namespaceName + "/" + name);
    Deployment& dep = depIt->second;

    std::vector<count> touched;
    if (replicas > dep.replicas) {
        for (count r = dep.replicas; r < replicas; ++r)
            touched.push_back(startReplica(namespaceName, nsIt->second, dep));
    } else if (replicas < dep.replicas) {
        // Highest-ordinal live pods go first (reverse creation order), so
        // long-lived low-ordinal replicas stay stable across scale cycles.
        const std::string prefix = name + "-";
        count toRemove = dep.replicas - replicas;
        for (auto it = pods_.rbegin(); it != pods_.rend() && toRemove > 0; ++it) {
            if (it->namespaceName != namespaceName || it->phase == PodPhase::Terminated)
                continue;
            if (it->spec.name.rfind(prefix, 0) != 0) continue;
            terminatePod(*it);
            logEvent("pod scaled down: " + namespaceName + "/" + it->spec.name);
            touched.push_back(it->uid);
            --toRemove;
        }
    }
    dep.replicas = replicas;
    logEvent("deployment scaled: " + namespaceName + "/" + name + " -> " +
             std::to_string(replicas));
    return touched;
}

count Cluster::deploymentReplicas(const std::string& namespaceName,
                                  const std::string& name) const {
    auto nsIt = namespaces_.find(namespaceName);
    if (nsIt == namespaces_.end())
        throw std::out_of_range("Cluster: no namespace " + namespaceName);
    auto depIt = nsIt->second.deployments.find(name);
    if (depIt == nsIt->second.deployments.end())
        throw std::out_of_range("Cluster: no deployment " + namespaceName + "/" + name);
    return depIt->second.replicas;
}

std::optional<count> Cluster::spawnPod(const std::string& namespaceName,
                                       const std::string& account, const PodSpec& spec) {
    if (!allowed(namespaceName, account, Permission::SpawnPods)) {
        throw std::runtime_error("Cluster: " + account + " may not spawn pods in " +
                                 namespaceName);
    }
    Pod pod;
    pod.spec = spec;
    pod.namespaceName = namespaceName;
    pod.uid = nextUid_++;
    if (auto nodeName = schedule(spec.request)) {
        pod.nodeName = *nodeName;
        pod.phase = PodPhase::Running;
        logEvent("pod spawned: " + namespaceName + "/" + spec.name + " -> " + *nodeName);
        const count uid = pod.uid;
        pods_.push_back(std::move(pod));
        return uid;
    }
    logEvent("pod spawn failed (no capacity): " + namespaceName + "/" + spec.name);
    return std::nullopt;
}

void Cluster::deletePod(const std::string& namespaceName, const std::string& account,
                        count uid) {
    if (!allowed(namespaceName, account, Permission::DeletePods)) {
        throw std::runtime_error("Cluster: " + account + " may not delete pods in " +
                                 namespaceName);
    }
    for (auto& pod : pods_) {
        if (pod.uid == uid && pod.namespaceName == namespaceName &&
            pod.phase == PodPhase::Running) {
            terminatePod(pod);
            logEvent("pod deleted: " + namespaceName + "/" + pod.spec.name);
            // Reconcile the owning deployment (if any): a terminated pod
            // leaves the desired replica count, otherwise every observer of
            // Deployment::replicas — the autoscaler above all — acts on a
            // count that includes dead pods.
            auto nsIt = namespaces_.find(namespaceName);
            if (nsIt != namespaces_.end()) {
                for (auto& [depName, dep] : nsIt->second.deployments) {
                    if (pod.spec.name == depName ||
                        pod.spec.name.rfind(depName + "-", 0) == 0) {
                        if (dep.replicas > 0) --dep.replicas;
                        logEvent("deployment reconciled: " + namespaceName + "/" + depName +
                                 " -> " + std::to_string(dep.replicas));
                        break;
                    }
                }
            }
            return;
        }
    }
    throw std::out_of_range("Cluster: no running pod with uid " + std::to_string(uid));
}

std::vector<Pod> Cluster::pods(const std::string& namespaceName,
                               const std::string& account) const {
    if (!account.empty() && !allowed(namespaceName, account, Permission::ListPods)) {
        throw std::runtime_error("Cluster: " + account + " may not list pods in " +
                                 namespaceName);
    }
    std::vector<Pod> out;
    for (const auto& pod : pods_) {
        if (pod.namespaceName == namespaceName && pod.phase != PodPhase::Terminated) {
            out.push_back(pod);
        }
    }
    return out;
}

Resources Cluster::totalAllocated() const {
    Resources total{0, 0};
    for (const auto& n : nodes_) {
        if (n.role == NodeRole::Worker) total += n.allocated;
    }
    return total;
}

void Cluster::createService(const std::string& namespaceName, const Service& service) {
    auto it = namespaces_.find(namespaceName);
    if (it == namespaces_.end()) {
        throw std::out_of_range("Cluster: no namespace " + namespaceName);
    }
    it->second.services[service.name] = service;
}

void Cluster::createIngress(const std::string& namespaceName, const Ingress& ingress) {
    auto it = namespaces_.find(namespaceName);
    if (it == namespaces_.end()) {
        throw std::out_of_range("Cluster: no namespace " + namespaceName);
    }
    it->second.ingresses.push_back(ingress);
}

std::optional<count> Cluster::route(const std::string& sourceIp,
                                    const std::string& path) const {
    // Longest-prefix ingress match across all namespaces.
    const Ingress* best = nullptr;
    const NamespaceState* bestNs = nullptr;
    for (const auto& [nsName, ns] : namespaces_) {
        for (const auto& ing : ns.ingresses) {
            if (path.rfind(ing.prefix, 0) == 0) {
                if (!best || ing.prefix.size() > best->prefix.size()) {
                    best = &ing;
                    bestNs = &ns;
                }
            }
        }
    }
    if (!best) return std::nullopt;

    const auto svcIt = bestNs->services.find(best->service);
    if (svcIt == bestNs->services.end()) return std::nullopt;

    // Running pods of the service's deployment, stable order.
    std::vector<const Pod*> backends;
    const std::string& dep = svcIt->second.deployment;
    for (const auto& pod : pods_) {
        if (pod.phase != PodPhase::Running) continue;
        // Replica pods are named "<deployment>-<i>"; directly spawned pods
        // (KubeSpawner) carry the deployment name itself.
        if (pod.spec.name == dep || pod.spec.name.rfind(dep + "-", 0) == 0) {
            backends.push_back(&pod);
        }
    }
    if (backends.empty()) return std::nullopt;

    // Source-balanced policy: the same client IP always lands on the same
    // backend (session affinity for Jupyter websockets).
    const size_t h = std::hash<std::string>{}(sourceIp);
    return backends[h % backends.size()]->uid;
}

} // namespace rinkit::cloud
