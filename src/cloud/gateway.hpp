#pragma once

#include <string>
#include <vector>

#include "src/support/types.hpp"

namespace rinkit::cloud {

/// The gateway node of the paper's Fig. 1: "handles the reverse route from
/// within the cluster to WAN, equipped with an additional ACL-based
/// firewall and filter mechanism to monitor traffic."
///
/// Models egress filtering with ordered ACL rules (first match wins,
/// default deny) over destination prefix + port, plus per-rule traffic
/// accounting so operators can monitor what leaves the cluster.
class Gateway {
public:
    enum class Action { Allow, Deny };

    struct AclRule {
        Action action = Action::Deny;
        std::string destinationPrefix; ///< e.g. "140.82." or "" (any)
        count port = 0;                ///< 0 = any port
        std::string comment;
    };

    struct RuleStats {
        AclRule rule;
        count hits = 0;
        count bytes = 0;
    };

    /// Appends a rule; evaluation order is insertion order.
    void addRule(AclRule rule);

    count ruleCount() const { return rules_.size(); }

    /// Evaluates an egress packet: first matching rule decides; no match
    /// means deny (and is accounted separately). Returns true iff allowed.
    bool egress(const std::string& destinationIp, count port, count bytes);

    /// Per-rule traffic counters (monitoring).
    const std::vector<RuleStats>& ruleStats() const { return rules_; }

    /// Packets/bytes that matched no rule and were default-denied.
    count defaultDeniedPackets() const { return defaultDeniedPackets_; }
    count defaultDeniedBytes() const { return defaultDeniedBytes_; }

    /// Total bytes allowed through.
    count allowedBytes() const { return allowedBytes_; }

private:
    std::vector<RuleStats> rules_;
    count defaultDeniedPackets_ = 0;
    count defaultDeniedBytes_ = 0;
    count allowedBytes_ = 0;
};

} // namespace rinkit::cloud
