#include "src/cloud/gateway.hpp"

namespace rinkit::cloud {

void Gateway::addRule(AclRule rule) {
    rules_.push_back({std::move(rule), 0, 0});
}

bool Gateway::egress(const std::string& destinationIp, count port, count bytes) {
    for (auto& entry : rules_) {
        const auto& r = entry.rule;
        const bool prefixMatch =
            r.destinationPrefix.empty() || destinationIp.rfind(r.destinationPrefix, 0) == 0;
        const bool portMatch = r.port == 0 || r.port == port;
        if (prefixMatch && portMatch) {
            ++entry.hits;
            entry.bytes += bytes;
            if (r.action == Action::Allow) {
                allowedBytes_ += bytes;
                return true;
            }
            return false;
        }
    }
    ++defaultDeniedPackets_;
    defaultDeniedBytes_ += bytes;
    return false;
}

} // namespace rinkit::cloud
