#include "src/cloud/jupyterhub.hpp"

#include <stdexcept>

#include "src/obs/event_log.hpp"
#include "src/obs/exporters.hpp"
#include "src/obs/slo.hpp"

namespace rinkit::cloud {

JupyterHub::JupyterHub(Cluster& cluster, Config config)
    : cluster_(cluster), config_(std::move(config)) {
    cluster_.createNamespace(config_.namespaceName);
    cluster_.createServiceAccount(
        config_.namespaceName, "hub-sa",
        {Permission::ViewEvents, Permission::SpawnPods, Permission::ListPods,
         Permission::DeletePods});

    Deployment hub;
    hub.name = "jupyterhub";
    hub.replicas = 1;
    hub.podTemplate.image = "jupyterhub/k8s-hub:custom";
    hub.podTemplate.request = {1000, 2048};
    cluster_.apply(config_.namespaceName, hub);

    cluster_.createService(config_.namespaceName, {"hub-svc", "jupyterhub"});
    cluster_.createIngress(config_.namespaceName, {"/hub", "hub-svc"});
    // Observability scrape endpoint: Prometheus pulls the serving-layer
    // metrics through the same ingress the users come in on.
    cluster_.createIngress(config_.namespaceName, {"/metrics", "hub-svc"});
    // Debug surfaces beside the scrape: the ops event log (JSON lines)
    // and the SLO engine state (JSON), same routing and egress rules.
    cluster_.createIngress(config_.namespaceName, {"/debug/events", "hub-svc"});
    cluster_.createIngress(config_.namespaceName, {"/debug/slo", "hub-svc"});

    pv_["jupyterhub_config.py"] =
        "c.KubeSpawner.image = '" + config_.image + "'\n" +
        "c.KubeSpawner.cpu_limit = " + std::to_string(config_.userPodLimit.cpuMillis) +
        "\nc.KubeSpawner.mem_limit = " + std::to_string(config_.userPodLimit.memoryMb);
}

bool JupyterHub::login(const std::string& user) {
    if (user.empty()) throw std::invalid_argument("JupyterHub: empty user name");
    if (sessions_.count(user)) return true; // session reuse

    PodSpec spec;
    spec.name = userPodName(user);
    spec.image = config_.image;
    spec.request = config_.userPodLimit;
    const auto uid = cluster_.spawnPod(config_.namespaceName, "hub-sa", spec);
    if (!uid) return false; // out of capacity

    sessions_[user] = *uid;
    pv_["userdb/" + user] = "pod=" + std::to_string(*uid);

    // Per-user deployment-style service + route so the proxy can reach it.
    cluster_.createService(config_.namespaceName, {"svc-" + user, "jupyter-" + user});
    cluster_.createIngress(config_.namespaceName, {"/user/" + user, "svc-" + user});
    return true;
}

bool JupyterHub::hasSession(const std::string& user) const {
    return sessions_.count(user) > 0;
}

void JupyterHub::logout(const std::string& user) {
    const auto it = sessions_.find(user);
    if (it == sessions_.end()) return;
    cluster_.deletePod(config_.namespaceName, "hub-sa", it->second);
    sessions_.erase(it);
    pv_.erase("userdb/" + user);

    const auto sit = serveSessions_.find(user);
    if (sit != serveSessions_.end()) {
        if (service_) service_->closeSession(sit->second);
        serveSessions_.erase(sit);
    }
}

void JupyterHub::attachService(serve::ServiceEndpoint& endpoint, const md::Trajectory& traj) {
    service_ = &endpoint;
    serveTraj_ = &traj;
}

void JupyterHub::attachGateway(Gateway& gateway) { gateway_ = &gateway; }

std::optional<std::string> JupyterHub::scrapeMetrics(const std::string& scraperIp) {
    if (!service_) return std::nullopt;
    // The scrape takes the normal ingress path: longest-prefix match on
    // /metrics must resolve to a running hub pod.
    if (!cluster_.route(scraperIp, "/metrics")) return std::nullopt;
    // Aggregate first (pre-replication keys, unlabeled), then the
    // per-replica breakdown when the endpoint actually has replicas.
    std::vector<serve::MetricsSnapshot> snaps{service_->metrics()};
    if (service_->replicaCount() > 1) {
        const auto perReplica = service_->perReplicaMetrics();
        snaps.insert(snaps.end(), perReplica.begin(), perReplica.end());
    }
    std::string body = obs::toPrometheusText(snaps);
    // SLO state rides the same scrape so burn rates and the metrics they
    // are computed from always come from one consistent pull.
    if (const obs::SloEngine* engine = service_->sloEngine())
        body += obs::sloToPrometheusText(engine->status());
    // The response leaves the cluster: the gateway's ACL decides whether
    // the scraper may see it, and accounts the bytes either way.
    if (gateway_ && !gateway_->egress(scraperIp, 443, body.size())) return std::nullopt;
    return body;
}

std::optional<std::string> JupyterHub::debugEvents(const std::string& scraperIp) {
    if (!cluster_.route(scraperIp, "/debug/events")) return std::nullopt;
    std::string body = obs::EventLog::global().toJsonLines();
    if (gateway_ && !gateway_->egress(scraperIp, 443, body.size())) return std::nullopt;
    return body;
}

std::optional<std::string> JupyterHub::debugSlo(const std::string& scraperIp) {
    if (!service_) return std::nullopt;
    if (!cluster_.route(scraperIp, "/debug/slo")) return std::nullopt;
    std::string body = service_->sloJson();
    if (gateway_ && !gateway_->egress(scraperIp, 443, body.size())) return std::nullopt;
    return body;
}

std::optional<std::future<serve::RequestOutcome>>
JupyterHub::routeUserRequest(const std::string& user, const std::string& sourceIp,
                             serve::SliderEvent event) {
    // Same ingress path as the plain route: no pod, no dispatch.
    if (!routeUserRequest(user, sourceIp)) return std::nullopt;
    if (!service_ || !serveTraj_) return std::nullopt;

    auto it = serveSessions_.find(user);
    if (it == serveSessions_.end()) {
        const auto id = service_->openSession(*serveTraj_, {}, user);
        it = serveSessions_.emplace(user, id).first;
    }
    return service_->submit(it->second, event);
}

std::optional<count> JupyterHub::routeUserRequest(const std::string& user,
                                                  const std::string& sourceIp) const {
    if (!hasSession(user)) return std::nullopt;
    return cluster_.route(sourceIp, "/user/" + user);
}

void JupyterHub::restartHub() {
    // Sessions in memory are lost; the user database on the PV restores
    // them (pods themselves kept running in the cluster).
    sessions_.clear();
    for (const auto& [key, value] : pv_) {
        if (key.rfind("userdb/", 0) == 0) {
            const std::string user = key.substr(7);
            const count uid = std::stoull(value.substr(value.find('=') + 1));
            sessions_[user] = uid;
        }
    }
}

} // namespace rinkit::cloud
