#pragma once

#include <string>

#include "src/support/types.hpp"

namespace rinkit::cloud {

/// CPU/memory bundle, in the units Kubernetes uses (millicores, MiB).
struct Resources {
    count cpuMillis = 0;
    count memoryMb = 0;

    Resources operator+(const Resources& o) const {
        return {cpuMillis + o.cpuMillis, memoryMb + o.memoryMb};
    }
    Resources& operator+=(const Resources& o) {
        cpuMillis += o.cpuMillis;
        memoryMb += o.memoryMb;
        return *this;
    }
    Resources& operator-=(const Resources& o) {
        cpuMillis -= o.cpuMillis;
        memoryMb -= o.memoryMb;
        return *this;
    }

    /// True if this bundle can accommodate @p o.
    bool fits(const Resources& o) const {
        return o.cpuMillis <= cpuMillis && o.memoryMb <= memoryMb;
    }

    bool operator==(const Resources&) const = default;

    std::string toString() const {
        return std::to_string(cpuMillis) + "m/" + std::to_string(memoryMb) + "Mi";
    }
};

/// The per-instance limit the paper benchmarks under: "a limit of 10
/// vCores and 16 GB of memory for each instance" (Section III-A).
inline constexpr Resources kPaperInstanceLimit{10000, 16384};

/// Master/service node sizing from the paper: "at least 4 CPUs and 16 GB".
inline constexpr Resources kPaperControlPlaneNode{4000, 16384};

} // namespace rinkit::cloud
