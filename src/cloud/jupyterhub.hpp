#pragma once

#include <future>
#include <map>
#include <optional>
#include <string>

#include "src/cloud/cluster.hpp"
#include "src/cloud/gateway.hpp"
#include "src/serve/service_endpoint.hpp"

namespace rinkit::cloud {

/// The multi-user JupyterHub service of Section III-B: a hub deployment in
/// its own namespace, a KubeSpawner-style spawner that starts one
/// single-user pod per login through a namespace-local service account,
/// prefix-routed ingress (/hub, /user/<name>), cgroup limits per user
/// instance, and a persistent volume carrying configuration and the user
/// database across hub restarts.
/// JupyterHub configuration. Namespace-scope (not nested) so its defaults
/// can serve the hub's single defaulted-Config constructor.
struct JupyterHubConfig {
    std::string namespaceName = "rin-vis";
    std::string image = "rinkit/networkit-rin:latest";
    Resources userPodLimit = kPaperInstanceLimit; ///< 10 vCores / 16 GB
    count maxUsersPerWorker = 0; ///< 0 = bounded by resources only
};

class JupyterHub {
public:
    using Config = JupyterHubConfig;

    /// Installs the hub into @p cluster: namespace, service account (spawn/
    /// list/delete/view), hub deployment + service + ingress, and the PV.
    explicit JupyterHub(Cluster& cluster, Config config = {});

    /// Logs a user in: spawns their pod on demand (idempotent — an
    /// existing session is reused). Returns false if the cluster is out of
    /// capacity.
    bool login(const std::string& user);

    /// True iff the user has a running single-user pod.
    bool hasSession(const std::string& user) const;

    /// Stops the user's pod and frees its resources.
    void logout(const std::string& user);

    /// Routes an HTTP request for @p user from @p sourceIp through the
    /// load balancer; returns the backing pod uid.
    std::optional<count> routeUserRequest(const std::string& user,
                                          const std::string& sourceIp) const;

    /// Attaches the serving layer behind its endpoint interface: slider
    /// routes for logged-in users dispatch into @p endpoint, each user
    /// getting one widget session over @p traj (both must outlive the
    /// hub's use of them). The user name is the sticky routing key, so a
    /// replicated endpoint (serve::ReplicaSet) keeps each user on one
    /// replica; a single-instance serve::SessionService attaches the same
    /// way and ignores the key.
    void attachService(serve::ServiceEndpoint& endpoint, const md::Trajectory& traj);

    /// Attaches the cluster's gateway node: responses that leave the
    /// cluster (the /metrics scrape below) are ACL-filtered and accounted
    /// as egress traffic. Must outlive the hub's use of it.
    void attachGateway(Gateway& gateway);

    /// Serves GET /metrics through the hub's ingress: the attached
    /// endpoint's metrics in Prometheus text exposition format — the
    /// aggregate (unlabeled, pre-replication keys) plus one replica="N"
    /// labeled sample set per replica when the endpoint is replicated.
    /// Returns nullopt if no service is attached, the ingress route does
    /// not resolve, or the attached gateway denies the response egress to
    /// @p scraperIp (port 443). When the endpoint has an SLO engine, the
    /// engine's burn-rate/attainment/state gauges are appended to the same
    /// body (one scrape, one consistent view).
    std::optional<std::string> scrapeMetrics(const std::string& scraperIp);

    /// Serves GET /debug/events: the process-wide ops event log
    /// (obs::EventLog::global()) as JSON lines, oldest first — autoscale
    /// decisions, migrations, degradation transitions, wire resyncs, SLO
    /// state changes, each stamped with the trace active when it was
    /// emitted. Same routing/egress rules as scrapeMetrics.
    std::optional<std::string> debugEvents(const std::string& scraperIp);

    /// Serves GET /debug/slo: the attached endpoint's SLO engine state as
    /// JSON (objective attainment, per-window burn rates, alert states).
    /// Same routing/egress rules as scrapeMetrics.
    std::optional<std::string> debugSlo(const std::string& scraperIp);

    /// Routes a widget interaction for @p user through the load balancer
    /// into the attached endpoint (the user's serve session is
    /// opened lazily on first interaction). Returns nullopt if the user
    /// has no pod or no service is attached; otherwise the service's
    /// outcome future (which may still resolve Rejected under
    /// backpressure).
    std::optional<std::future<serve::RequestOutcome>>
    routeUserRequest(const std::string& user, const std::string& sourceIp,
                     serve::SliderEvent event);

    /// Number of live user sessions.
    count activeSessions() const { return sessions_.size(); }

    /// Simulated hub restart: live sessions are recovered from the
    /// persistent volume's user database (paper: "persistence concerning
    /// configuration and accounting is achieved by adding physical
    /// volumes").
    void restartHub();

    /// The persistent volume contents (config + user database).
    const std::map<std::string, std::string>& persistentVolume() const { return pv_; }

    const Config& config() const { return config_; }

private:
    std::string userPodName(const std::string& user) const { return "jupyter-" + user; }

    Cluster& cluster_;
    Config config_;
    std::map<std::string, count> sessions_; ///< user -> pod uid
    std::map<std::string, std::string> pv_; ///< persisted config + user db
    serve::ServiceEndpoint* service_ = nullptr; ///< attached serving layer
    const md::Trajectory* serveTraj_ = nullptr;
    Gateway* gateway_ = nullptr; ///< egress filter for scrape responses
    std::map<std::string, serve::SessionId> serveSessions_; ///< user -> widget session
};

} // namespace rinkit::cloud
