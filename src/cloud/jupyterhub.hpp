#pragma once

#include <map>
#include <optional>
#include <string>

#include "src/cloud/cluster.hpp"

namespace rinkit::cloud {

/// The multi-user JupyterHub service of Section III-B: a hub deployment in
/// its own namespace, a KubeSpawner-style spawner that starts one
/// single-user pod per login through a namespace-local service account,
/// prefix-routed ingress (/hub, /user/<name>), cgroup limits per user
/// instance, and a persistent volume carrying configuration and the user
/// database across hub restarts.
class JupyterHub {
public:
    struct Config {
        std::string namespaceName = "rin-vis";
        std::string image = "rinkit/networkit-rin:latest";
        Resources userPodLimit = kPaperInstanceLimit; ///< 10 vCores / 16 GB
        count maxUsersPerWorker = 0; ///< 0 = bounded by resources only
    };

    /// Installs the hub into @p cluster: namespace, service account (spawn/
    /// list/delete/view), hub deployment + service + ingress, and the PV.
    JupyterHub(Cluster& cluster, Config config);
    JupyterHub(Cluster& cluster) : JupyterHub(cluster, Config{}) {}

    /// Logs a user in: spawns their pod on demand (idempotent — an
    /// existing session is reused). Returns false if the cluster is out of
    /// capacity.
    bool login(const std::string& user);

    /// True iff the user has a running single-user pod.
    bool hasSession(const std::string& user) const;

    /// Stops the user's pod and frees its resources.
    void logout(const std::string& user);

    /// Routes an HTTP request for @p user from @p sourceIp through the
    /// load balancer; returns the backing pod uid.
    std::optional<count> routeUserRequest(const std::string& user,
                                          const std::string& sourceIp) const;

    /// Number of live user sessions.
    count activeSessions() const { return sessions_.size(); }

    /// Simulated hub restart: live sessions are recovered from the
    /// persistent volume's user database (paper: "persistence concerning
    /// configuration and accounting is achieved by adding physical
    /// volumes").
    void restartHub();

    /// The persistent volume contents (config + user database).
    const std::map<std::string, std::string>& persistentVolume() const { return pv_; }

    const Config& config() const { return config_; }

private:
    std::string userPodName(const std::string& user) const { return "jupyter-" + user; }

    Cluster& cluster_;
    Config config_;
    std::map<std::string, count> sessions_; ///< user -> pod uid
    std::map<std::string, std::string> pv_; ///< persisted config + user db
};

} // namespace rinkit::cloud
