#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/cloud/resources.hpp"

namespace rinkit::cloud {

/// Discrete-state simulator of the paper's Kubernetes/OpenShift deployment
/// (Section III): nodes with roles, namespaced deployments, pods scheduled
/// under resource quotas, services with ingress prefix routing, and
/// RBAC-checked service accounts. No real containers run; the value is
/// that the control-plane semantics the paper describes in prose are
/// executable and testable here.

enum class NodeRole { Master, Worker, Service, Gateway };

enum class PodPhase { Pending, Running, Terminated };

struct PodSpec {
    std::string name;
    std::string image = "rinkit/networkit-jupyter:latest";
    Resources request{1000, 1024};
};

struct Pod {
    PodSpec spec;
    std::string namespaceName;
    std::string nodeName; ///< empty while Pending
    PodPhase phase = PodPhase::Pending;
    count uid = 0;
};

struct ClusterNode {
    std::string name;
    NodeRole role = NodeRole::Worker;
    Resources capacity;
    Resources allocated{0, 0};

    Resources free() const {
        return {capacity.cpuMillis - allocated.cpuMillis,
                capacity.memoryMb - allocated.memoryMb};
    }
};

/// Deployment: a replicated pod template, the paper's Fig. 2 central
/// entity.
struct Deployment {
    std::string name;
    PodSpec podTemplate;
    count replicas = 1;
};

/// Service: stable name in front of a deployment's pods.
struct Service {
    std::string name;
    std::string deployment;
};

/// Ingress/route: URL prefix -> service (the "prefix-based routing" of the
/// cluster-internal reverse proxy).
struct Ingress {
    std::string prefix;
    std::string service;
};

/// Permissions a service account may hold (paper: "view permissions for
/// Kubernetes events and permissions to spawn, list, and delete pod
/// resources").
enum class Permission { ViewEvents, SpawnPods, ListPods, DeletePods };

class Cluster {
public:
    // -- infrastructure ----------------------------------------------------

    /// Adds a node; names must be unique.
    void addNode(const std::string& name, NodeRole role, Resources capacity);

    /// Builds the paper's reference topology: 3 masters, @p workers
    /// workers, 1 service node (reverse proxy / LB), 1 gateway.
    static Cluster paperReferenceCluster(count workers = 2,
                                         Resources workerCapacity = {32000, 131072});

    count nodeCount(NodeRole role) const;
    const ClusterNode& node(const std::string& name) const;

    /// The control plane is highly available iff >= 3 masters (etcd quorum).
    bool highAvailability() const { return nodeCount(NodeRole::Master) >= 3; }

    // -- namespaces and RBAC ------------------------------------------------

    void createNamespace(const std::string& name);
    bool hasNamespace(const std::string& name) const;

    /// Creates a service account in a namespace with given permissions.
    void createServiceAccount(const std::string& namespaceName, const std::string& name,
                              std::vector<Permission> permissions);

    /// True iff the SA exists in that namespace and holds @p permission.
    /// Accounts are namespace-local: the same name in another namespace
    /// grants nothing (the paper's blast-radius argument).
    bool allowed(const std::string& namespaceName, const std::string& account,
                 Permission permission) const;

    // -- workloads -----------------------------------------------------------

    /// Applies a deployment in a namespace: schedules `replicas` pods.
    /// Throws if the namespace does not exist.
    void apply(const std::string& namespaceName, const Deployment& deployment);

    /// Scales an applied deployment to @p replicas (the controller path —
    /// no RBAC, like apply). Scale-up spawns pods under fresh ordinals
    /// (names never reused, StatefulSet-style); scale-down terminates the
    /// highest-ordinal running pods first. Returns the uids of pods the
    /// call started or terminated, in order. Throws std::out_of_range for
    /// an unknown deployment.
    std::vector<count> scaleDeployment(const std::string& namespaceName,
                                       const std::string& name, count replicas);

    /// Desired replica count of an applied deployment. Stays reconciled
    /// with pod lifecycle: deletePod on a deployment-owned pod decrements
    /// it. Throws std::out_of_range for an unknown deployment.
    count deploymentReplicas(const std::string& namespaceName,
                             const std::string& name) const;

    /// Spawns a single pod (the KubeSpawner path). Requires @p account to
    /// hold SpawnPods in the namespace; returns the pod uid.
    /// Throws std::runtime_error on permission failure; returns nullopt if
    /// unschedulable (no worker fits).
    std::optional<count> spawnPod(const std::string& namespaceName,
                                  const std::string& account, const PodSpec& spec);

    /// Deletes a pod by uid (requires DeletePods); frees its resources.
    void deletePod(const std::string& namespaceName, const std::string& account,
                   count uid);

    /// Pods of a namespace (requires ListPods when @p account is non-empty;
    /// pass empty for the cluster-admin view used by tests).
    std::vector<Pod> pods(const std::string& namespaceName,
                          const std::string& account = "") const;

    /// Total resources allocated on all workers.
    Resources totalAllocated() const;

    // -- services & routing ---------------------------------------------------

    void createService(const std::string& namespaceName, const Service& service);
    void createIngress(const std::string& namespaceName, const Ingress& ingress);

    /// Routes an external request: the service node's reverse proxy picks a
    /// backend pod by longest-prefix ingress match, then balances across
    /// the deployment's running pods by source hash ("source balanced
    /// policy"). Returns the pod uid, or nullopt if nothing matches.
    std::optional<count> route(const std::string& sourceIp, const std::string& path) const;

    /// Human-readable event log (scheduling decisions, spawns, deletions).
    const std::vector<std::string>& events() const { return events_; }

private:
    struct NamespaceState {
        std::map<std::string, std::vector<Permission>> serviceAccounts;
        std::map<std::string, Deployment> deployments;
        /// Next pod ordinal per deployment — pod names are never reused
        /// across scale-down/scale-up cycles.
        std::map<std::string, count> nextOrdinal;
        std::map<std::string, Service> services;
        std::vector<Ingress> ingresses;
    };

    /// Least-allocated-first scheduling across workers.
    std::optional<std::string> schedule(const Resources& request);

    /// Schedules one pod of @p deployment under the next ordinal; appends
    /// to pods_ (Running or Pending) and returns its uid.
    count startReplica(const std::string& namespaceName, NamespaceState& ns,
                       const Deployment& deployment);

    /// Frees the pod's node resources and marks it Terminated.
    void terminatePod(Pod& pod);

    void logEvent(std::string msg) { events_.push_back(std::move(msg)); }

    std::vector<ClusterNode> nodes_;
    std::map<std::string, NamespaceState> namespaces_;
    std::vector<Pod> pods_;
    count nextUid_ = 1;
    std::vector<std::string> events_;
};

} // namespace rinkit::cloud
