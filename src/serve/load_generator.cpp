#include "src/serve/load_generator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <thread>
#include <vector>

#include "src/obs/slo.hpp"
#include "src/obs/tail_sampler.hpp"
#include "src/serve/metrics.hpp"
#include "src/support/json.hpp"
#include "src/support/random.hpp"
#include "src/support/timer.hpp"

namespace rinkit::serve {

double rateAt(const LoadGenOptions& o, double tSec) {
    switch (o.schedule) {
    case LoadSchedule::Constant:
        return o.baseRatePerSec;
    case LoadSchedule::Diurnal: {
        // One full "day" over the run; amplitude clamped so lambda > 0.
        const double a = std::clamp(o.diurnalAmplitude, 0.0, 0.95);
        const double phase = 2.0 * 3.14159265358979323846 * tSec / std::max(o.durationSec, 1e-9);
        return o.baseRatePerSec * (1.0 + a * std::sin(phase));
    }
    case LoadSchedule::FlashCrowd: {
        const double begin = o.flashBeginFrac * o.durationSec;
        const double end = o.flashEndFrac * o.durationSec;
        const bool inFlash = tSec >= begin && tSec < end;
        return o.baseRatePerSec * (inFlash ? o.flashMultiplier : 1.0);
    }
    }
    return o.baseRatePerSec;
}

std::string LoadReport::toJson() const {
    JsonWriter w;
    w.beginObject();
    w.kv("offered", offered);
    w.kv("completed", completed);
    w.kv("rejected", rejected);
    w.kv("degraded", degraded);
    w.kv("deadline_missed", deadlineMissed);
    w.kv("coalesced", coalesced);
    w.kv("shed_rate", shedRate());
    w.kv("duration_s", durationSec);
    w.kv("achieved_per_s", achievedPerSec);
    w.kv("p50_ms", p50Ms);
    w.kv("p95_ms", p95Ms);
    w.kv("p99_ms", p99Ms);
    w.kv("max_ms", maxMs);
    w.kv("scale_ups", scaleUps);
    w.kv("scale_downs", scaleDowns);
    w.kv("replicas_final", replicasFinal);
    w.kv("replicas_max", replicasMax);
    w.kv("overloaded", overloaded);
    w.kv("recovered_at_s", recoveredAtSec);
    w.kv("end_window_p99_ms", endWindowP99Ms);
    w.kv("end_window_shed_rate", endWindowShedRate);
    w.kv("slo_attainment", sloAttainment);
    w.kv("slo_fast_burn_peak", sloFastBurnPeak);
    w.kv("slo_alert_fired", sloAlertFired);
    w.kv("slo_state_changes", sloStateChanges);
    w.kv("traces_retained", tracesRetained);
    w.endObject();
    return w.str();
}

namespace {

/// Next Poisson inter-arrival gap at the schedule's current rate.
double expGap(Rng& rng, double ratePerSec) {
    const double u = rng.real01();
    return -std::log(1.0 - u) / std::max(ratePerSec, 1e-9);
}

/// Folds one evaluate() result into the report's SLO trace: peak fast burn
/// and whether any objective left Healthy.
void observeSloTick(LoadReport& rep, const obs::SloEngine& engine,
                    const std::vector<obs::SloObjectiveStatus>& status) {
    rep.sloFastBurnPeak = std::max(rep.sloFastBurnPeak, engine.fastBurnRate());
    for (const auto& s : status)
        if (s.state != obs::SloState::Healthy) rep.sloAlertFired = true;
}

/// End-of-run attainment: the worst objective over its longest window.
void finishSloReport(LoadReport& rep, const std::vector<obs::SloObjectiveStatus>& status) {
    for (const auto& s : status) rep.sloAttainment = std::min(rep.sloAttainment, s.attainment);
}

SliderEvent sampleEvent(Rng& rng, const LoadGenOptions& o) {
    // Interaction mix of a slider-driven widget: mostly frame scrubbing,
    // occasional cutoff tuning and measure flips, rare refreshes.
    const double r = rng.real01();
    if (r < 0.5)
        return SliderEvent::setFrame(rng.pick(std::max<count>(1, o.frames)), o.deadlineMs);
    if (r < 0.7)
        return SliderEvent::setCutoff(4.0 + 0.1 * static_cast<double>(rng.integer(10)),
                                      o.deadlineMs);
    if (r < 0.9)
        return SliderEvent::setMeasure(
            rng.chance(0.5) ? viz::Measure::Degree : viz::Measure::Closeness, o.deadlineMs);
    return SliderEvent::refresh(o.deadlineMs);
}

/// Per-session state of a MonotoneDrag walk.
struct DragState {
    bool onCutoff = false;     ///< which slider the user is dragging
    int dir = 1;               ///< current drag direction
    std::int64_t frame = 0;    ///< frame slider position
    std::int64_t cutoffTick = 0; ///< cutoff = min + step * tick
};

/// One tick of a direction-persistent slider drag: keep walking the
/// current slider by one step, reflect at the range bounds, occasionally
/// reverse, switch sliders, or flip the measure.
SliderEvent sampleDragEvent(Rng& rng, const LoadGenOptions& o, DragState& st) {
    if (rng.real01() < o.dragMeasureProb)
        return SliderEvent::setMeasure(
            rng.chance(0.5) ? viz::Measure::Degree : viz::Measure::Closeness, o.deadlineMs);
    if (rng.real01() < o.dragSwitchProb) st.onCutoff = !st.onCutoff;
    if (rng.real01() < o.dragReversalProb) st.dir = -st.dir;
    if (st.onCutoff) {
        const auto maxTick = static_cast<std::int64_t>(
            std::max(0.0, (o.dragCutoffMax - o.dragCutoffMin) / o.dragCutoffStep));
        std::int64_t next = st.cutoffTick + st.dir;
        if (next < 0 || next > maxTick) {
            st.dir = -st.dir;
            next = st.cutoffTick + st.dir;
        }
        st.cutoffTick = std::clamp<std::int64_t>(next, 0, maxTick);
        return SliderEvent::setCutoff(
            o.dragCutoffMin + o.dragCutoffStep * static_cast<double>(st.cutoffTick),
            o.deadlineMs);
    }
    const auto maxFrame = static_cast<std::int64_t>(std::max<count>(1, o.frames)) - 1;
    std::int64_t next = st.frame + st.dir;
    if (next < 0 || next > maxFrame) {
        st.dir = -st.dir;
        next = st.frame + st.dir;
    }
    st.frame = std::clamp<std::int64_t>(next, 0, maxFrame);
    return SliderEvent::setFrame(static_cast<index>(st.frame), o.deadlineMs);
}

/// Freshly seeded drag states, one per session: staggered start positions
/// and directions so a fleet of draggers does not move in lockstep.
std::vector<DragState> initialDragStates(Rng& rng, const LoadGenOptions& o) {
    std::vector<DragState> drags(o.sessions);
    const auto maxTick = static_cast<std::int64_t>(
        std::max(0.0, (o.dragCutoffMax - o.dragCutoffMin) / o.dragCutoffStep));
    for (auto& st : drags) {
        st.onCutoff = rng.chance(0.5);
        st.dir = rng.chance(0.5) ? 1 : -1;
        st.frame = static_cast<std::int64_t>(rng.pick(std::max<count>(1, o.frames)));
        st.cutoffTick = static_cast<std::int64_t>(rng.pick(static_cast<count>(maxTick + 1)));
    }
    return drags;
}

} // namespace

LoadReport LoadGenerator::run(ServiceEndpoint& endpoint, const md::Trajectory& traj,
                              const std::function<void(double)>& onTick) {
    const LoadGenOptions& o = options_;
    Rng rng(o.seed);
    LoadReport rep;
    LatencyHistogram hist;

    const count coalescedBefore = endpoint.metrics().counter("coalesced");

    // SLO/tail-sampling hooks: both optional, both deltas so a reused
    // engine/sampler reports only what this run contributed.
    obs::SloEngine* slo = endpoint.sloEngine();
    obs::TailSampler* sampler = endpoint.tailSampler();
    const count sloChangesBefore = slo ? slo->stateChanges() : 0;
    const count retainedBefore = sampler ? sampler->stats().retainedTotal() : 0;

    std::vector<SessionId> sessions;
    sessions.reserve(o.sessions);
    for (count i = 0; i < o.sessions; ++i)
        sessions.push_back(endpoint.openSession(traj, widgetOptions_,
                                                "user-" + std::to_string(i)));
    std::vector<DragState> drags = initialDragStates(rng, o);

    std::vector<std::future<RequestOutcome>> pending;
    const auto harvestOne = [&](RequestOutcome outcome) {
        if (outcome.accepted()) {
            ++rep.completed;
            if (outcome.degraded()) ++rep.degraded;
            if (outcome.deadlineMissed) ++rep.deadlineMissed;
            hist.record(outcome.queueMs + outcome.timing.totalMs());
        } else {
            ++rep.rejected;
        }
    };
    const auto harvestReady = [&] {
        auto writeIt = pending.begin();
        for (auto& f : pending) {
            if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
                harvestOne(f.get());
            else
                *writeIt++ = std::move(f);
        }
        pending.erase(writeIt, pending.end());
    };

    Timer clock;
    const auto nowSec = [&] { return clock.elapsedMs() / 1000.0; };
    // Open-loop pacing: sleep toward the scheduled arrival, but never
    // block on the service — when the generator falls behind wall-clock
    // (harvest hiccup), it catches up by submitting immediately, keeping
    // the offered schedule independent of service health.
    const auto sleepUntil = [&](double targetSec) {
        const double aheadMs = (targetSec - nowSec()) * 1000.0;
        if (aheadMs > 0.0)
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(aheadMs));
    };

    double nextArrival = expGap(rng, rateAt(o, 0.0));
    double nextTick = o.tickIntervalSec;
    while (true) {
        const bool arrivalsLeft = nextArrival < o.durationSec;
        if (!arrivalsLeft && nextTick >= o.durationSec) break;
        if (nextTick < nextArrival || !arrivalsLeft) {
            sleepUntil(nextTick);
            if (onTick) onTick(nextTick);
            if (slo) observeSloTick(rep, *slo, slo->evaluate());
            rep.replicasMax = std::max(rep.replicasMax, endpoint.replicaCount());
            harvestReady();
            nextTick += o.tickIntervalSec;
            continue;
        }
        sleepUntil(nextArrival);
        const count s = static_cast<count>(rng.pick(sessions.size()));
        ++rep.offered;
        const SliderEvent event = o.eventModel == LoadEventModel::MonotoneDrag
                                      ? sampleDragEvent(rng, o, drags[s])
                                      : sampleEvent(rng, o);
        pending.push_back(endpoint.submit(sessions[s], event));
        nextArrival += expGap(rng, rateAt(o, nextArrival));
    }

    endpoint.drain();
    for (auto& f : pending) harvestOne(f.get());
    pending.clear();

    rep.durationSec = o.durationSec;
    rep.achievedPerSec = static_cast<double>(rep.offered) / std::max(o.durationSec, 1e-9);
    rep.coalesced = endpoint.metrics().counter("coalesced") - coalescedBefore;
    rep.p50Ms = hist.percentile(50.0);
    rep.p95Ms = hist.percentile(95.0);
    rep.p99Ms = hist.percentile(99.0);
    rep.maxMs = hist.maxMs();
    rep.replicasFinal = endpoint.replicaCount();
    rep.replicasMax = std::max(rep.replicasMax, rep.replicasFinal);

    if (slo) {
        // One final evaluate after the drain so the report's attainment
        // covers every harvested request.
        const auto status = slo->evaluate();
        observeSloTick(rep, *slo, status);
        finishSloReport(rep, status);
        rep.sloStateChanges = slo->stateChanges() - sloChangesBefore;
    }
    if (sampler) rep.tracesRetained = sampler->stats().retainedTotal() - retainedBefore;

    for (const SessionId id : sessions) endpoint.closeSession(id);
    return rep;
}

// -- virtual-time cluster simulation ------------------------------------------

namespace {

struct SimSlot {
    SliderEvent::Kind kind = SliderEvent::Kind::Refresh;
    double arrivalSec = 0.0; ///< oldest waiter's arrival (Timer semantics)
    count waiters = 1;
};

struct SimSession {
    count replica = 0;
    std::string key;
    std::deque<SimSlot> queue;
    bool busy = false;
    bool waiting = false; ///< parked in its replica's ready FIFO
};

struct SimReplica {
    count busyWorkers = 0;
    std::deque<count> ready; ///< sessions with work awaiting a worker
};

struct Departure {
    double timeSec = 0.0;
    count session = 0;
    count replica = 0; ///< replica whose worker this occupies
    double waitMs = 0.0;
    double serviceMs = 0.0;
    count waiters = 1;
    bool degraded = false;
    bool deadlineMissed = false;

    bool operator>(const Departure& o) const { return timeSec > o.timeSec; }
};

} // namespace

LoadReport LoadGenerator::simulateCluster(const SimServiceModel& model,
                                          const SimOptions& sim) const {
    const LoadGenOptions& o = options_;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    Rng rng(o.seed);
    LoadReport rep;
    LatencyHistogram hist;

    ConsistentHashRing ring(sim.vnodesPerReplica);
    std::map<count, SimReplica> replicas;
    count nextReplicaId = 0;
    for (count r = 0; r < std::max<count>(1, sim.initialReplicas); ++r) {
        ring.add(nextReplicaId);
        replicas[nextReplicaId];
        ++nextReplicaId;
    }

    std::vector<SimSession> sessions(o.sessions);
    for (count i = 0; i < o.sessions; ++i) {
        sessions[i].key = "user-" + std::to_string(i);
        sessions[i].replica = ring.route(sessions[i].key);
    }
    std::vector<DragState> drags = initialDragStates(rng, o);

    std::priority_queue<Departure, std::vector<Departure>, std::greater<>> departures;

    const auto startNext = [&](count s, double now) {
        SimSession& ses = sessions[s];
        SimSlot slot = ses.queue.front();
        ses.queue.pop_front();
        const count depthBehind = ses.queue.size();
        const double waitMs = (now - slot.arrivalSec) * 1000.0;
        const bool missed = o.deadlineMs > 0.0 && waitMs > o.deadlineMs;
        const bool degraded = depthBehind > model.degradeQueueDepth || missed;
        const double jitter =
            1.0 + model.serviceJitterFrac * (2.0 * rng.real01() - 1.0);
        const double serviceMs =
            model.meanServiceMs * jitter * (degraded ? model.degradedCostFactor : 1.0);
        ses.busy = true;
        ++replicas[ses.replica].busyWorkers;
        departures.push({now + serviceMs / 1000.0, s, ses.replica, waitMs, serviceMs,
                         slot.waiters, degraded, missed});
    };

    const auto tryDispatch = [&](count s, double now) {
        SimSession& ses = sessions[s];
        if (ses.busy || ses.waiting || ses.queue.empty()) return;
        SimReplica& rep_ = replicas[ses.replica];
        if (rep_.busyWorkers >= model.workersPerReplica) {
            rep_.ready.push_back(s);
            ses.waiting = true;
            return;
        }
        startNext(s, now);
    };

    const auto pumpReady = [&](count replicaId, double now) {
        auto it = replicas.find(replicaId);
        if (it == replicas.end()) return;
        SimReplica& rep_ = it->second;
        while (rep_.busyWorkers < model.workersPerReplica && !rep_.ready.empty()) {
            const count s = rep_.ready.front();
            rep_.ready.pop_front();
            SimSession& ses = sessions[s];
            ses.waiting = false;
            // Stale entries (session migrated away or already running) are
            // skipped; the session re-parks itself on its new home.
            if (ses.busy || ses.queue.empty() || ses.replica != replicaId) continue;
            startNext(s, now);
        }
    };

    // Re-route every session onto the current ring; migrated sessions take
    // their queue with them (loss-free, like ReplicaSet migration) and
    // compete for workers on the new home immediately.
    const auto rebalance = [&](double now) {
        for (count s = 0; s < sessions.size(); ++s) {
            SimSession& ses = sessions[s];
            const count owner = ring.route(ses.key);
            if (owner == ses.replica) continue;
            ses.replica = owner;
            ses.waiting = false; // old ready entry is now stale
            if (!ses.busy) tryDispatch(s, now);
        }
    };

    Autoscaler autoscaler(sim.autoscaler);
    // Virtual-time SLO engine: timeScale maps the fast pair's 1 h long
    // window onto half the run, so multi-window multi-burn-rate alerting
    // plays out in simulated seconds. The engine only ever sees sim time,
    // which keeps the whole report deterministic.
    obs::SloConfig sloConfig;
    sloConfig.timeScale = o.durationSec / 7200.0;
    obs::SloEngine slo(sloConfig);
    double simEnd = 0.0;
    LatencyHistogram windowHist;
    count windowOffered = 0;
    count windowShed = 0;
    bool overloadOpen = false;

    double nextArrival = expGap(rng, rateAt(o, 0.0));
    double nextTick = o.tickIntervalSec;
    bool ticking = true;

    while (true) {
        const double tArr = nextArrival < o.durationSec ? nextArrival : kInf;
        const double tDep = departures.empty() ? kInf : departures.top().timeSec;
        const double tTick = ticking ? nextTick : kInf;
        const double now = std::min({tArr, tDep, tTick});
        if (now == kInf) break;
        simEnd = now;

        if (now == tTick) {
            count queued = 0;
            for (const auto& ses : sessions) queued += ses.queue.size();
            AutoscalerSignals signals;
            signals.replicas = replicas.size();
            signals.queueDepthPerReplica =
                static_cast<double>(queued) / static_cast<double>(replicas.size());
            signals.p99LatencyMs = windowHist.samples() ? windowHist.percentile(99.0) : 0.0;
            signals.shedRate = windowOffered == 0 ? 0.0
                                                  : static_cast<double>(windowShed) /
                                                        static_cast<double>(windowOffered);
            observeSloTick(rep, slo, slo.evaluate(now));
            signals.sloFastBurnRate = slo.fastBurnRate();
            if (windowHist.samples() > 0) {
                rep.endWindowP99Ms = signals.p99LatencyMs;
                rep.endWindowShedRate = signals.shedRate;
                if (o.deadlineMs > 0.0 && signals.p99LatencyMs > o.deadlineMs) {
                    rep.overloaded = true;
                    overloadOpen = true;
                } else if (overloadOpen) {
                    rep.recoveredAtSec = now;
                    overloadOpen = false;
                }
            }

            if (sim.autoscale) {
                const auto decision = autoscaler.evaluate(signals);
                if (decision == Autoscaler::Decision::Up &&
                    replicas.size() < sim.autoscaler.maxReplicas) {
                    ring.add(nextReplicaId);
                    replicas[nextReplicaId];
                    ++nextReplicaId;
                    ++rep.scaleUps;
                    rebalance(now);
                } else if (decision == Autoscaler::Decision::Down &&
                           replicas.size() > sim.autoscaler.minReplicas) {
                    const count victim = replicas.rbegin()->first;
                    ring.remove(victim);
                    replicas.erase(victim);
                    ++rep.scaleDowns;
                    rebalance(now);
                }
            }
            rep.replicasMax = std::max(rep.replicasMax, static_cast<count>(replicas.size()));
            windowHist = LatencyHistogram{};
            windowOffered = 0;
            windowShed = 0;
            nextTick += o.tickIntervalSec;
            // Ticks stop once arrivals ended and the system fully drained.
            if (tArr == kInf && departures.empty()) ticking = false;
            continue;
        }

        if (now == tDep) {
            const Departure dep = departures.top();
            departures.pop();
            SimSession& ses = sessions[dep.session];
            rep.completed += dep.waiters;
            if (dep.degraded) {
                rep.degraded += dep.waiters;
                windowShed += dep.waiters;
            }
            if (dep.deadlineMissed) rep.deadlineMissed += dep.waiters;
            const double latencyMs = dep.waitMs + dep.serviceMs;
            // Degraded answers map to the Approx tier's nominal eps, which
            // sits inside the default 0.1 staleness budget (good) — the
            // latency objective is what the flash crowd burns.
            const obs::SloSample verdict{false, latencyMs, o.deadlineMs, false,
                                         dep.degraded ? 0.05 : 0.0};
            for (count wtr = 0; wtr < dep.waiters; ++wtr) {
                hist.record(latencyMs);
                windowHist.record(latencyMs);
                slo.record(now, verdict);
            }
            ses.busy = false;
            auto it = replicas.find(dep.replica);
            if (it != replicas.end()) {
                --it->second.busyWorkers;
                if (!ses.queue.empty() && ses.replica == dep.replica && !ses.waiting) {
                    // Back of the line, like the real service's re-pump.
                    it->second.ready.push_back(dep.session);
                    ses.waiting = true;
                }
                pumpReady(dep.replica, now);
            }
            if (ses.replica != dep.replica) tryDispatch(dep.session, now);
            continue;
        }

        // Arrival.
        const count s = static_cast<count>(rng.pick(sessions.size()));
        SimSession& ses = sessions[s];
        const SliderEvent event = o.eventModel == LoadEventModel::MonotoneDrag
                                      ? sampleDragEvent(rng, o, drags[s])
                                      : sampleEvent(rng, o);
        ++rep.offered;
        ++windowOffered;
        bool merged = false;
        for (auto& slot : ses.queue) {
            if (slot.kind == event.kind) {
                // Latest-wins: the new event overwrites the queued slot and
                // shares its (older) timer, exactly like the real service.
                ++slot.waiters;
                ++rep.coalesced;
                merged = true;
                break;
            }
        }
        if (!merged) {
            if (ses.queue.size() >= model.maxQueuedPerSession) {
                ++rep.rejected;
                ++windowShed;
                obs::SloSample shedVerdict;
                shedVerdict.rejected = true;
                slo.record(now, shedVerdict);
            } else {
                ses.queue.push_back({event.kind, now, 1});
                tryDispatch(s, now);
            }
        }
        nextArrival += expGap(rng, rateAt(o, nextArrival));
    }

    rep.durationSec = o.durationSec;
    rep.achievedPerSec = static_cast<double>(rep.offered) / std::max(o.durationSec, 1e-9);
    rep.p50Ms = hist.percentile(50.0);
    rep.p95Ms = hist.percentile(95.0);
    rep.p99Ms = hist.percentile(99.0);
    rep.maxMs = hist.maxMs();
    rep.replicasFinal = replicas.size();
    rep.replicasMax = std::max(rep.replicasMax, rep.replicasFinal);
    {
        const auto status = slo.evaluate(simEnd);
        observeSloTick(rep, slo, status);
        finishSloReport(rep, status);
        rep.sloStateChanges = slo.stateChanges();
    }
    return rep;
}

} // namespace rinkit::serve
