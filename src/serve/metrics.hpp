#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/support/types.hpp"

namespace rinkit::serve {

/// OpenMetrics-style exemplar: one concrete trace that landed in a
/// histogram bucket, so a percentile line on a dashboard links to an
/// actual retained span tree ("p99 is 40 ms — *this request* was 40 ms").
/// Last write per bucket wins; a zero trace id means no exemplar.
struct Exemplar {
    std::uint64_t traceId = 0;
    double valueMs = 0.0;    ///< the recorded sample
    double timestampUs = 0.0; ///< tracer clock at record time

    bool valid() const { return traceId != 0; }
};

/// Fixed-memory latency histogram with logarithmically scaled bins.
///
/// Serving-latency distributions are heavy-tailed (a cache-hit measure
/// update is microseconds, an exact Brandes recompute on a large RIN is
/// seconds), so the bins grow geometrically: 25% per bin from 1 us up to
/// ~28 minutes. Percentile queries interpolate inside the winning bin and
/// are clamped to the exact observed maximum, so p100 is always the true
/// max and low-count histograms don't overshoot.
class LatencyHistogram {
public:
    static constexpr std::size_t kBins = 96;
    static constexpr double kFirstUpperMs = 0.001; ///< bin 0: [0, 1us)
    static constexpr double kGrowth = 1.25;

    /// Records one latency sample (negative values clamp to 0).
    void record(double ms);

    /// record() plus an exemplar: the sample's bucket remembers this trace
    /// id (last write wins). A zero @p traceId records without exemplar.
    void record(double ms, std::uint64_t traceId, double timestampUs);

    /// Folds @p other into this histogram at raw-bin granularity, so
    /// percentiles over the merged distribution are as accurate as if every
    /// sample had been recorded here (no stats-level approximation).
    void merge(const LatencyHistogram& other);

    /// Value at percentile @p p in [0, 100] (0 with no samples).
    double percentile(double p) const;

    count samples() const { return count_; }
    double meanMs() const { return count_ == 0 ? 0.0 : sumMs_ / static_cast<double>(count_); }
    double maxMs() const { return maxMs_; }
    double minMs() const { return count_ == 0 ? 0.0 : minMs_; }

    /// The exemplar nearest to @p ms: the exemplar of ms's own bucket if
    /// it has one, else of the closest bucket that does (invalid Exemplar
    /// when none). This is how quantile exposition lines pick the trace to
    /// cite for p50/p95/p99.
    Exemplar exemplarNear(double ms) const;

private:
    static double upperEdgeMs(std::size_t bin);
    static std::size_t binOf(double ms);

    std::array<count, kBins> bins_{};
    std::array<Exemplar, kBins> exemplars_{};
    count count_ = 0;
    double sumMs_ = 0.0;
    double maxMs_ = 0.0;
    double minMs_ = 0.0;
};

/// Point-in-time copy of every metric the registry holds; safe to read
/// without locks and serializable for benchmark/ops output.
struct MetricsSnapshot {
    struct HistogramStats {
        count samples = 0;
        double meanMs = 0.0;
        double maxMs = 0.0;
        double p50Ms = 0.0;
        double p95Ms = 0.0;
        double p99Ms = 0.0;
        /// Exemplars near each quantile (invalid when the buckets have
        /// none, or the registry's exemplar filter rejected them).
        Exemplar p50Ex;
        Exemplar p95Ex;
        Exemplar p99Ex;
    };

    std::map<std::string, HistogramStats> histograms; ///< keyed by phase name
    std::map<std::string, count> counters;
    count queueDepth = 0;    ///< total queued requests at snapshot time
    count queueDepthMax = 0; ///< high-water mark since construction
    /// Which replica this snapshot describes ("0", "1", ...). Empty for a
    /// single-instance service and for the aggregate view over a replica
    /// set, so pre-replication consumers see unchanged output.
    std::string replica;

    count counter(const std::string& name) const {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /// One JSON object: {"histograms": {...}, "counters": {...},
    /// "queue_depth": n, "queue_depth_max": n} plus a "replica" key when
    /// the label is non-empty (absent otherwise — existing consumers see
    /// byte-identical output).
    std::string toJson() const;
};

/// Thread-safe metrics sink for the serving layer: per-phase latency
/// histograms, monotonic event counters, and a queue-depth gauge with
/// high-water mark. Phase names follow the widget's update-cycle
/// decomposition ("queue_ms", "network_update_ms", "layout_ms",
/// "measure_ms", "scene_build_ms", "serialize_ms", "server_ms",
/// "total_ms"); counter names are the service's lifecycle events
/// ("submitted", "completed", "coalesced", "rejected", "shed_degraded",
/// "deadline_missed").
class MetricsRegistry {
public:
    void recordLatency(std::string_view phase, double ms);
    /// recordLatency() plus an exemplar (zero @p traceId = no exemplar).
    void recordLatency(std::string_view phase, double ms, std::uint64_t traceId,
                       double timestampUs);
    void increment(std::string_view counterName, count by = 1);

    /// Sets the current total queue depth; tracks the maximum seen.
    void gaugeQueueDepth(count depth);

    /// Stamps every snapshot this registry produces with a replica id.
    void setReplicaLabel(std::string label);

    /// Snapshot-time exemplar gate: an exemplar whose trace id fails
    /// @p keep is dropped from HistogramStats (the buckets keep theirs).
    /// The serving layer wires this to TailSampler::isRetained, which
    /// makes "every exported exemplar names a retained trace" structural —
    /// an evicted trace's exemplars vanish at the next scrape instead of
    /// dangling.
    void setExemplarFilter(std::function<bool(std::uint64_t)> keep);

    /// Folds @p other into this registry: counters sum, histograms merge at
    /// raw-bin granularity, queue depths add (the aggregate backlog is the
    /// sum of the replicas'; the merged high-water is the sum of per-source
    /// high-waters — an upper bound, since the maxima need not coincide).
    /// The replica label is NOT merged: an aggregate stays aggregate.
    /// @p other may be under concurrent use; self-merge is a no-op.
    void merge(const MetricsRegistry& other);

    MetricsSnapshot snapshot() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, LatencyHistogram, std::less<>> histograms_;
    std::map<std::string, count, std::less<>> counters_;
    count queueDepth_ = 0;
    count queueDepthMax_ = 0;
    std::string replicaLabel_;
    std::function<bool(std::uint64_t)> exemplarFilter_;
};

} // namespace rinkit::serve
