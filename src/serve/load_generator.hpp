#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/md/trajectory.hpp"
#include "src/serve/replica_set.hpp"
#include "src/serve/service_endpoint.hpp"

namespace rinkit::serve {

/// Arrival-rate schedules for the open-loop generator. Open-loop means
/// arrivals follow the schedule regardless of how the service is coping —
/// unlike the closed-loop bench (bench_cloud_scaling), where clients wait
/// for responses and therefore self-throttle exactly when the service is
/// saturated. Overload behavior only shows open-loop.
enum class LoadSchedule {
    Constant,   ///< lambda(t) = base
    Diurnal,    ///< one sinusoidal day over the run: base * (1 + A sin)
    FlashCrowd, ///< base, multiplied by flashMultiplier inside a window
};

/// What one arrival looks like.
enum class LoadEventModel {
    /// The original memoryless interaction mix: random frames/cutoffs/
    /// measures/refreshes, independent draw per event.
    Mixed,
    /// A user dragging a slider: per-session direction-persistent walks —
    /// tick after tick of the same step on the same slider, reflecting at
    /// the range bounds, with occasional direction reversals, control
    /// switches, and measure flips. This is the workload the speculative
    /// prefetch path is built for (and what its benches drive).
    MonotoneDrag,
};

/// Load-generation configuration. Namespace-scope NSDMI defaults — the one
/// LoadGenerator constructor takes this struct.
struct LoadGenOptions {
    LoadSchedule schedule = LoadSchedule::Constant;
    LoadEventModel eventModel = LoadEventModel::Mixed;
    /// MonotoneDrag knobs: per-event probabilities of a direction
    /// reversal, of switching to the other slider, and of an interleaved
    /// measure flip; the cutoff slider's tick grid.
    double dragReversalProb = 0.08;
    double dragSwitchProb = 0.05;
    double dragMeasureProb = 0.04;
    double dragCutoffMin = 4.0;
    double dragCutoffMax = 7.5;
    double dragCutoffStep = 0.1;
    double baseRatePerSec = 50.0; ///< lambda of the Poisson arrival process
    double durationSec = 2.0;
    count sessions = 16; ///< sticky users, routing keys "user-<i>"
    /// Deadline stamped on every event (0 = none). Also the interactivity
    /// bar recovery is judged against in flash-crowd runs.
    double deadlineMs = 100.0;
    double diurnalAmplitude = 0.6;
    double flashMultiplier = 8.0;
    double flashBeginFrac = 0.4; ///< flash window, as fractions of the run
    double flashEndFrac = 0.6;
    double tickIntervalSec = 0.1; ///< autoscaler/observer cadence
    std::uint64_t seed = 7;
    count frames = 4; ///< frame-slider range for Frame events
};

/// lambda(t) of a schedule at @p tSec into the run (events per second).
double rateAt(const LoadGenOptions& options, double tSec);

/// What one load-generation run produced. shedRate() is the acceptance
/// metric: the fraction of offered events the service refused or served
/// degraded.
struct LoadReport {
    count offered = 0;   ///< events submitted (open-loop arrivals)
    count completed = 0; ///< futures resolved Ok or OkDegraded
    count rejected = 0;
    count degraded = 0;
    count deadlineMissed = 0;
    count coalesced = 0; ///< arrivals absorbed into a queued same-kind slot

    double durationSec = 0.0;
    double achievedPerSec = 0.0; ///< offered / duration

    /// Client-observed request latency (queue wait + full update), ms.
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;

    // Autoscaling trace (zeros when the run had a fixed fleet).
    count scaleUps = 0;
    count scaleDowns = 0;
    count replicasFinal = 0;
    count replicasMax = 0;
    /// First tick at/after the flash where the windowed p99 returned below
    /// the deadline after having blown it (-1 = never overloaded or never
    /// recovered; see recovered).
    double recoveredAtSec = -1.0;
    bool overloaded = false; ///< some tick's windowed p99 blew the deadline
    double endWindowP99Ms = 0.0;
    double endWindowShedRate = 0.0;

    // SLO trace (defaults when the endpoint/simulation had no SLO engine).
    /// Worst per-objective attainment over the longest window at run end.
    double sloAttainment = 1.0;
    /// Peak SloEngine::fastBurnRate() seen at any tick.
    double sloFastBurnPeak = 0.0;
    /// Some tick's evaluate() left an objective in SlowBurn or FastBurn.
    bool sloAlertFired = false;
    /// SloEngine::stateChanges() over the run (alert-state transitions).
    count sloStateChanges = 0;
    /// TailSampler retention verdicts over the run (run() mode only).
    count tracesRetained = 0;

    double shedRate() const {
        return offered == 0
                   ? 0.0
                   : static_cast<double>(rejected + degraded) / static_cast<double>(offered);
    }

    std::string toJson() const;
};

/// Per-replica capacity model for the virtual-time simulation: worker
/// count and the measured per-request service time. meanServiceMs is meant
/// to be *calibrated* — measure it by draining real events through a real
/// SessionService and reading its server_ms histogram (the cluster bench
/// does exactly that), so the simulated curves rest on real execution
/// costs. The scheduling semantics (per-session FIFO, latest-wins
/// coalescing, admission bound, degrade thresholds) mirror SessionService.
struct SimServiceModel {
    count workersPerReplica = 10; ///< paper pod: 10 vCores, one worker each
    double meanServiceMs = 1.0;
    double serviceJitterFrac = 0.2;  ///< uniform +- fraction around the mean
    double degradedCostFactor = 0.5; ///< Approx tier skips the exact path
    count maxQueuedPerSession = 8;
    count degradeQueueDepth = 2;
};

/// Fleet shape for the virtual-time simulation.
struct SimOptions {
    count initialReplicas = 1;
    bool autoscale = false;
    AutoscalerOptions autoscaler{};
    count vnodesPerReplica = 64;
};

/// Open-loop Poisson load generator.
///
/// Two modes:
///  - run(): wall-clock drive of a live ServiceEndpoint — real sessions,
///    real futures, real migration. Use for smoke tests and correctness.
///  - simulateCluster(): the same arrival process in virtual time against
///    the calibrated capacity model, with the real ConsistentHashRing for
///    routing and the real Autoscaler policy for scaling. Use for
///    throughput/latency/shed curves vs replica count: virtual time makes
///    the curves a function of the model, not of how many cores the CI box
///    happens to have (a 1-core runner cannot host 4 real pods).
class LoadGenerator {
public:
    using Options = LoadGenOptions;

    explicit LoadGenerator(Options options = {}) : options_(options) {}

    /// Widget options every session opened by run() uses — how a bench
    /// turns on speculation, the binary wire, or LOD scenes for the whole
    /// generated fleet. Defaults to the widget's defaults.
    void setWidgetOptions(const viz::RinWidget::Options& options) {
        widgetOptions_ = options;
    }

    /// Drives @p endpoint open-loop in real time. @p onTick (optional)
    /// fires every tickIntervalSec with the elapsed seconds — wire it to
    /// ReplicaSet::tick for live autoscaling. Ends by draining the
    /// endpoint and harvesting every outstanding future. When the endpoint
    /// exposes an SLO engine it is evaluated each tick (burn peak / alert
    /// flags land in the report); a tail sampler's retention totals are
    /// harvested at the end.
    LoadReport run(ServiceEndpoint& endpoint, const md::Trajectory& traj,
                   const std::function<void(double)>& onTick = {});

    /// Virtual-time discrete-event run against the capacity model. A local
    /// SLO engine (windows compressed so the fast pair's long window spans
    /// half the run) scores every departure/rejection; its fast burn rate
    /// feeds the autoscaler signal, so simulated fleets scale on budget
    /// burn exactly like live ones.
    LoadReport simulateCluster(const SimServiceModel& model, const SimOptions& sim) const;

    const Options& options() const { return options_; }

private:
    Options options_;
    viz::RinWidget::Options widgetOptions_{};
};

} // namespace rinkit::serve
