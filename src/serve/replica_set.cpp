#include "src/serve/replica_set.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/obs/event_log.hpp"

namespace rinkit::serve {

// -- ConsistentHashRing -------------------------------------------------------

std::uint64_t ConsistentHashRing::mix(std::uint64_t x) {
    // splitmix64 finalizer: cheap, well-distributed, stable everywhere.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t ConsistentHashRing::hashKey(std::string_view key) {
    // FNV-1a over the bytes, then one mixing round to de-correlate short
    // keys ("user-1" vs "user-2") around the ring.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mix(h);
}

void ConsistentHashRing::add(count replicaId) {
    for (count v = 0; v < vnodes_; ++v)
        ring_.emplace(mix(replicaId * 0x10001ULL + (v << 17)), replicaId);
}

void ConsistentHashRing::remove(count replicaId) {
    for (auto it = ring_.begin(); it != ring_.end();) {
        if (it->second == replicaId)
            it = ring_.erase(it);
        else
            ++it;
    }
}

count ConsistentHashRing::route(std::string_view key) const {
    if (ring_.empty()) throw std::logic_error("ConsistentHashRing: no replicas");
    auto it = ring_.upper_bound(hashKey(key));
    if (it == ring_.end()) it = ring_.begin(); // wrap around
    return it->second;
}

// -- Autoscaler ---------------------------------------------------------------

Autoscaler::Decision Autoscaler::evaluate(const AutoscalerSignals& s) {
    const AutoscalerOptions& o = options_;
    const bool hot =
        s.queueDepthPerReplica > o.queueDepthHighWater ||
        (o.p99LatencyMsHigh > 0.0 && s.p99LatencyMs > o.p99LatencyMsHigh) ||
        s.shedRate > o.shedRateHigh ||
        (o.sloBurnRateHigh > 0.0 && s.sloFastBurnRate > o.sloBurnRateHigh);
    const bool cold =
        s.queueDepthPerReplica < o.lowLoadFraction * o.queueDepthHighWater &&
        (o.p99LatencyMsHigh <= 0.0 || s.p99LatencyMs < o.lowLoadFraction * o.p99LatencyMsHigh) &&
        s.shedRate < o.lowLoadFraction * o.shedRateHigh &&
        (o.sloBurnRateHigh <= 0.0 ||
         s.sloFastBurnRate < o.lowLoadFraction * o.sloBurnRateHigh);

    if (hot) {
        ++upStreak_;
        downStreak_ = 0;
    } else if (cold) {
        ++downStreak_;
        upStreak_ = 0;
    } else {
        upStreak_ = 0;
        downStreak_ = 0;
    }

    if (cooldown_ > 0) {
        --cooldown_;
        return Decision::Hold;
    }
    if (hot && upStreak_ >= options_.upAfterTicks && s.replicas < o.maxReplicas) {
        upStreak_ = 0;
        cooldown_ = o.cooldownTicks;
        return Decision::Up;
    }
    if (cold && downStreak_ >= options_.downAfterTicks && s.replicas > o.minReplicas) {
        downStreak_ = 0;
        cooldown_ = o.cooldownTicks;
        return Decision::Down;
    }
    return Decision::Hold;
}

// -- ReplicaSet ---------------------------------------------------------------

ReplicaSet::ReplicaSet(Options options)
    : options_(std::move(options)), ring_(options_.vnodesPerReplica),
      autoscaler_(options_.autoscaler) {
    options_.initialReplicas = std::clamp(options_.initialReplicas,
                                          options_.autoscaler.minReplicas,
                                          options_.autoscaler.maxReplicas);
    if (options_.cluster) {
        // One deployment backs the fleet: pod template sized to the
        // per-replica budget; scale-up/down below goes through the same
        // deployment so Deployment::replicas mirrors replicaCount().
        if (!options_.cluster->hasNamespace(options_.clusterNamespace))
            options_.cluster->createNamespace(options_.clusterNamespace);
        cloud::Deployment dep;
        dep.name = options_.deploymentName;
        dep.podTemplate.name = options_.deploymentName;
        dep.podTemplate.request = options_.serviceTemplate.budget;
        dep.replicas = options_.initialReplicas;
        options_.cluster->apply(options_.clusterNamespace, dep);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (count r = 0; r < options_.initialReplicas; ++r) addReplicaLocked();
}

ReplicaSet::~ReplicaSet() { shutdown(); }

ReplicaSet::Replica& ReplicaSet::addReplicaLocked() {
    Replica replica;
    replica.id = nextReplicaId_++;
    SessionServiceOptions opts = options_.serviceTemplate;
    opts.replicaLabel = std::to_string(replica.id);
    replica.service = std::make_unique<SessionService>(opts);
    // A replica born while the fleet sheds inherits the floor — otherwise
    // the fresh pod would serve exact answers while its siblings degrade.
    if (sloDegradeActive_)
        replica.service->setMinimumDegradeLevel(viz::DegradeLevel::Approx);
    ring_.add(replica.id);
    replicas_.push_back(std::move(replica));
    return replicas_.back();
}

SessionService& ReplicaSet::serviceOf(count replicaId) {
    for (auto& r : replicas_)
        if (r.id == replicaId) return *r.service;
    throw std::logic_error("ReplicaSet: no replica " + std::to_string(replicaId));
}

const SessionService& ReplicaSet::serviceOf(count replicaId) const {
    return const_cast<ReplicaSet*>(this)->serviceOf(replicaId);
}

SessionId ReplicaSet::openSession(const md::Trajectory& traj,
                                  viz::RinWidget::Options widgetOptions,
                                  std::string_view routingKey) {
    std::lock_guard<std::mutex> lock(mutex_);
    const SessionId id = nextId_++;
    Route route;
    route.key = routingKey.empty() ? "session-" + std::to_string(id)
                                   : std::string(routingKey);
    route.replicaId = ring_.route(route.key);
    route.localId = serviceOf(route.replicaId).openSession(traj, widgetOptions);
    routes_.emplace(id, std::move(route));
    return id;
}

void ReplicaSet::closeSession(SessionId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = routes_.find(id);
    if (it == routes_.end()) return;
    serviceOf(it->second.replicaId).closeSession(it->second.localId);
    routes_.erase(it);
}

std::future<RequestOutcome> ReplicaSet::submit(SessionId id, SliderEvent event) {
    // The routing lock spans the replica submit: enqueueing is cheap, and
    // holding it guarantees no submit can race a migration's extract.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = routes_.find(id);
    if (it == routes_.end())
        throw std::invalid_argument("ReplicaSet: unknown session id " + std::to_string(id));
    return serviceOf(it->second.replicaId).submit(it->second.localId, event);
}

void ReplicaSet::drain() {
    // Collect the services under the lock, block on them outside it:
    // drain waits on worker progress, which never needs the routing lock.
    std::vector<SessionService*> services;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& r : replicas_) services.push_back(r.service.get());
    }
    for (auto* s : services) s->drain();
}

void ReplicaSet::shutdown() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& r : replicas_) r.service->shutdown();
    routes_.clear();
}

count ReplicaSet::activeSessions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    count n = 0;
    for (const auto& r : replicas_) n += r.service->activeSessions();
    return n;
}

MetricsSnapshot ReplicaSet::metrics() const {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsRegistry aggregate;
    // The fold-in loses the per-replica exemplar filters, so re-arm the
    // aggregate with the shared sampler: fleet-level exemplars obey the
    // same "retained traces only" rule the replicas do.
    if (options_.serviceTemplate.tailSampler) {
        aggregate.setExemplarFilter(
            [sampler = options_.serviceTemplate.tailSampler](std::uint64_t traceId) {
                return sampler->isRetained(traceId);
            });
    }
    aggregate.merge(retired_);
    for (const auto& r : replicas_) aggregate.merge(r.service->registry());
    return aggregate.snapshot();
}

std::string ReplicaSet::sloJson() const {
    obs::SloEngine* engine = options_.serviceTemplate.slo.get();
    return engine ? engine->toJson() : std::string("{\"objectives\":[]}");
}

bool ReplicaSet::sloDegradeActive() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sloDegradeActive_;
}

std::vector<MetricsSnapshot> ReplicaSet::perReplicaMetrics() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricsSnapshot> snaps;
    snaps.reserve(replicas_.size());
    for (const auto& r : replicas_) snaps.push_back(r.service->metrics());
    return snaps;
}

count ReplicaSet::replicaCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return replicas_.size();
}

count ReplicaSet::routeOf(std::string_view routingKey) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.route(routingKey);
}

count ReplicaSet::sessionReplica(SessionId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = routes_.find(id);
    if (it == routes_.end())
        throw std::invalid_argument("ReplicaSet: unknown session id " + std::to_string(id));
    return it->second.replicaId;
}

const viz::RinWidget* ReplicaSet::sessionWidget(SessionId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = routes_.find(id);
    if (it == routes_.end()) return nullptr;
    return serviceOf(it->second.replicaId).sessionWidget(it->second.localId);
}

void ReplicaSet::migrateLocked(SessionId globalId, Route& route,
                               count targetReplicaId) {
    SessionService::DetachedSession detached =
        serviceOf(route.replicaId).extractSession(route.localId);
    obs::EventLog::global().log("session_migrated",
                                "session " + std::to_string(globalId) + ": replica " +
                                    std::to_string(route.replicaId) + " -> " +
                                    std::to_string(targetReplicaId));
    route.localId = serviceOf(targetReplicaId).adoptSession(std::move(detached));
    route.replicaId = targetReplicaId;
}

bool ReplicaSet::scaleUp() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (replicas_.size() >= options_.autoscaler.maxReplicas) return false;

    if (options_.cluster) {
        const auto started = options_.cluster->scaleDeployment(
            options_.clusterNamespace, options_.deploymentName, replicas_.size() + 1);
        // Refuse the scale-up if the cluster could not place the pod (it
        // came up Pending): roll the deployment back so desired state
        // matches the fleet.
        bool running = false;
        for (const auto& pod : options_.cluster->pods(options_.clusterNamespace))
            if (!started.empty() && pod.uid == started.front())
                running = pod.phase == cloud::PodPhase::Running;
        if (!running) {
            options_.cluster->scaleDeployment(options_.clusterNamespace,
                                              options_.deploymentName, replicas_.size());
            return false;
        }
    }

    const count newId = addReplicaLocked().id;
    obs::EventLog::global().log("autoscale_up",
                                "replicas " + std::to_string(replicas_.size() - 1) + " -> " +
                                    std::to_string(replicas_.size()) + " (new replica " +
                                    std::to_string(newId) + ")");
    // Rebalance: only sessions whose arc the new replica's vnodes took
    // over move (~K/N of them); everyone else stays sticky.
    for (auto& [id, route] : routes_) {
        const count owner = ring_.route(route.key);
        if (owner != route.replicaId) migrateLocked(id, route, owner);
    }
    return true;
}

bool ReplicaSet::scaleDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (replicas_.size() <= options_.autoscaler.minReplicas || replicas_.size() <= 1)
        return false;

    Replica victim = std::move(replicas_.back());
    replicas_.pop_back();
    ring_.remove(victim.id);
    obs::EventLog::global().log("autoscale_down",
                                "replicas " + std::to_string(replicas_.size() + 1) + " -> " +
                                    std::to_string(replicas_.size()) + " (retiring replica " +
                                    std::to_string(victim.id) + ")");

    // Drain the victim's sessions onto their new ring owners. Extract
    // waits out in-flight work per session, adopt re-enqueues the pending
    // queue and forces a wire keyframe — no queued future is dropped.
    for (auto& [id, route] : routes_) {
        if (route.replicaId != victim.id) continue;
        SessionService::DetachedSession detached =
            victim.service->extractSession(route.localId);
        const count owner = ring_.route(route.key);
        obs::EventLog::global().log("session_migrated",
                                    "session " + std::to_string(id) + ": replica " +
                                        std::to_string(victim.id) + " -> " +
                                        std::to_string(owner));
        route.localId = serviceOf(owner).adoptSession(std::move(detached));
        route.replicaId = owner;
    }

    // Keep the victim's history: its counters and histograms fold into the
    // retained registry, so the aggregate view never regresses.
    retired_.merge(victim.service->registry());
    victim.service.reset();

    if (options_.cluster)
        options_.cluster->scaleDeployment(options_.clusterNamespace,
                                          options_.deploymentName, replicas_.size());
    return true;
}

Autoscaler::Decision ReplicaSet::tick() {
    // Advance the SLO engine first (its own lock; may log state-change
    // events) so this tick's burn rates reflect everything recorded so far.
    obs::SloEngine* engine = options_.serviceTemplate.slo.get();
    if (engine) engine->evaluate();

    AutoscalerSignals signals;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        MetricsRegistry aggregate;
        aggregate.merge(retired_);
        for (const auto& r : replicas_) aggregate.merge(r.service->registry());
        const MetricsSnapshot snap = aggregate.snapshot();

        signals.replicas = replicas_.size();
        signals.queueDepthPerReplica =
            static_cast<double>(snap.queueDepth) / static_cast<double>(replicas_.size());
        const auto it = snap.histograms.find("total_ms");
        if (it != snap.histograms.end()) signals.p99LatencyMs = it->second.p99Ms;
        // Shed rate over the window since the previous tick (counter
        // deltas), not cumulative — the autoscaler must see recovery.
        const count offered = snap.counter("submitted") + snap.counter("adopted");
        const count shed = snap.counter("rejected") + snap.counter("shed_degraded") +
                           snap.counter("deadline_missed");
        const count dOffered = offered - lastOffered_;
        const count dShed = shed - lastShed_;
        lastOffered_ = offered;
        lastShed_ = shed;
        if (dOffered > 0)
            signals.shedRate = static_cast<double>(dShed) / static_cast<double>(dOffered);

        if (engine) {
            signals.sloFastBurnRate = engine->fastBurnRate();

            // SLO → ladder coupling with hysteresis: enter the Approx
            // floor on FastBurn, leave it only on full recovery (Healthy),
            // so a burn oscillating around the threshold does not flap the
            // served quality.
            const obs::SloState latency = engine->stateOf(obs::SloKind::DeadlineAttainment);
            if (!sloDegradeActive_ && latency == obs::SloState::FastBurn) {
                sloDegradeActive_ = true;
                for (auto& r : replicas_)
                    r.service->setMinimumDegradeLevel(viz::DegradeLevel::Approx);
                obs::EventLog::global().log(
                    "slo_degrade_enter", "latency budget fast-burning: floor=approx");
            } else if (sloDegradeActive_ && latency == obs::SloState::Healthy) {
                sloDegradeActive_ = false;
                for (auto& r : replicas_)
                    r.service->setMinimumDegradeLevel(viz::DegradeLevel::None);
                obs::EventLog::global().log("slo_degrade_exit",
                                            "latency budget recovered: floor=none");
            }
        }
    }

    const Autoscaler::Decision decision = autoscaler_.evaluate(signals);
    if (decision == Autoscaler::Decision::Up) {
        if (!scaleUp()) return Autoscaler::Decision::Hold;
    } else if (decision == Autoscaler::Decision::Down) {
        if (!scaleDown()) return Autoscaler::Decision::Hold;
    }
    return decision;
}

} // namespace rinkit::serve
