#include "src/serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/json.hpp"

namespace rinkit::serve {

double LatencyHistogram::upperEdgeMs(std::size_t bin) {
    return kFirstUpperMs * std::pow(kGrowth, static_cast<double>(bin));
}

void LatencyHistogram::record(double ms) {
    ms = std::max(ms, 0.0);
    // Direct index computation: bin i holds [upper(i-1), upper(i)).
    std::size_t bin = 0;
    if (ms >= kFirstUpperMs) {
        bin = static_cast<std::size_t>(std::log(ms / kFirstUpperMs) / std::log(kGrowth)) + 1;
        bin = std::min(bin, kBins - 1);
        // Guard against floating-point edge cases at bin boundaries.
        while (bin > 0 && ms < upperEdgeMs(bin - 1)) --bin;
        while (bin + 1 < kBins && ms >= upperEdgeMs(bin)) ++bin;
    }
    ++bins_[bin];
    minMs_ = count_ == 0 ? ms : std::min(minMs_, ms);
    ++count_;
    sumMs_ += ms;
    maxMs_ = std::max(maxMs_, ms);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    for (std::size_t bin = 0; bin < kBins; ++bin) bins_[bin] += other.bins_[bin];
    minMs_ = count_ == 0 ? other.minMs_ : std::min(minMs_, other.minMs_);
    count_ += other.count_;
    sumMs_ += other.sumMs_;
    maxMs_ = std::max(maxMs_, other.maxMs_);
}

double LatencyHistogram::percentile(double p) const {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank within the cumulative bin counts.
    const double rank = p / 100.0 * static_cast<double>(count_);
    const count target = std::max<count>(1, static_cast<count>(std::ceil(rank)));
    count seen = 0;
    for (std::size_t bin = 0; bin < kBins; ++bin) {
        seen += bins_[bin];
        if (seen >= target) {
            const double lower = bin == 0 ? 0.0 : upperEdgeMs(bin - 1);
            const double upper = upperEdgeMs(bin);
            // Geometric midpoint of the winning bin, clamped to the
            // observed range so sparse histograms never report a value
            // outside what was actually recorded.
            const double mid = bin == 0 ? upper / 2.0 : std::sqrt(lower * upper);
            return std::clamp(mid, minMs_, maxMs_);
        }
    }
    return maxMs_;
}

void MetricsRegistry::recordLatency(std::string_view phase, double ms) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(phase);
    if (it == histograms_.end()) it = histograms_.emplace(std::string(phase), LatencyHistogram{}).first;
    it->second.record(ms);
}

void MetricsRegistry::increment(std::string_view counterName, count by) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(counterName);
    if (it == counters_.end())
        counters_.emplace(std::string(counterName), by);
    else
        it->second += by;
}

void MetricsRegistry::gaugeQueueDepth(count depth) {
    std::lock_guard<std::mutex> lock(mutex_);
    queueDepth_ = depth;
    queueDepthMax_ = std::max(queueDepthMax_, depth);
}

void MetricsRegistry::setReplicaLabel(std::string label) {
    std::lock_guard<std::mutex> lock(mutex_);
    replicaLabel_ = std::move(label);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    if (&other == this) return;
    // Copy the source under its own lock, then fold in under ours — never
    // both locks at once, so there is no ordering to get wrong when two
    // registries merge concurrently.
    std::map<std::string, LatencyHistogram, std::less<>> histograms;
    std::map<std::string, count, std::less<>> counters;
    count depth = 0;
    count depthMax = 0;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        histograms = other.histograms_;
        counters = other.counters_;
        depth = other.queueDepth_;
        depthMax = other.queueDepthMax_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, h] : histograms) histograms_[name].merge(h);
    for (const auto& [name, v] : counters) counters_[name] += v;
    queueDepth_ += depth;
    queueDepthMax_ += depthMax;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto& [name, h] : histograms_) {
        MetricsSnapshot::HistogramStats s;
        s.samples = h.samples();
        s.meanMs = h.meanMs();
        s.maxMs = h.maxMs();
        s.p50Ms = h.percentile(50.0);
        s.p95Ms = h.percentile(95.0);
        s.p99Ms = h.percentile(99.0);
        snap.histograms.emplace(name, s);
    }
    snap.counters = {counters_.begin(), counters_.end()};
    snap.queueDepth = queueDepth_;
    snap.queueDepthMax = queueDepthMax_;
    snap.replica = replicaLabel_;
    return snap;
}

std::string MetricsSnapshot::toJson() const {
    JsonWriter w;
    w.beginObject();
    w.key("histograms").beginObject();
    for (const auto& [name, s] : histograms) {
        w.key(name).beginObject();
        w.kv("count", s.samples);
        w.kv("mean_ms", s.meanMs);
        w.kv("max_ms", s.maxMs);
        w.kv("p50_ms", s.p50Ms);
        w.kv("p95_ms", s.p95Ms);
        w.kv("p99_ms", s.p99Ms);
        w.endObject();
    }
    w.endObject();
    w.key("counters").beginObject();
    for (const auto& [name, v] : counters) w.kv(name, v);
    w.endObject();
    w.kv("queue_depth", queueDepth);
    w.kv("queue_depth_max", queueDepthMax);
    if (!replica.empty()) w.kv("replica", replica);
    w.endObject();
    return w.str();
}

} // namespace rinkit::serve
