#include "src/serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/json.hpp"

namespace rinkit::serve {

double LatencyHistogram::upperEdgeMs(std::size_t bin) {
    return kFirstUpperMs * std::pow(kGrowth, static_cast<double>(bin));
}

std::size_t LatencyHistogram::binOf(double ms) {
    // Direct index computation: bin i holds [upper(i-1), upper(i)).
    std::size_t bin = 0;
    if (ms >= kFirstUpperMs) {
        bin = static_cast<std::size_t>(std::log(ms / kFirstUpperMs) / std::log(kGrowth)) + 1;
        bin = std::min(bin, kBins - 1);
        // Guard against floating-point edge cases at bin boundaries.
        while (bin > 0 && ms < upperEdgeMs(bin - 1)) --bin;
        while (bin + 1 < kBins && ms >= upperEdgeMs(bin)) ++bin;
    }
    return bin;
}

void LatencyHistogram::record(double ms) { record(ms, 0, 0.0); }

void LatencyHistogram::record(double ms, std::uint64_t traceId, double timestampUs) {
    ms = std::max(ms, 0.0);
    const std::size_t bin = binOf(ms);
    ++bins_[bin];
    if (traceId != 0) exemplars_[bin] = Exemplar{traceId, ms, timestampUs};
    minMs_ = count_ == 0 ? ms : std::min(minMs_, ms);
    ++count_;
    sumMs_ += ms;
    maxMs_ = std::max(maxMs_, ms);
}

Exemplar LatencyHistogram::exemplarNear(double ms) const {
    const std::size_t bin = binOf(std::max(ms, 0.0));
    // Scan outward from the target bucket; nearest wins, lower bin on tie
    // (a slightly-faster exemplar is a fairer citation than a slower one).
    for (std::size_t d = 0; d < kBins; ++d) {
        if (bin >= d && exemplars_[bin - d].valid()) return exemplars_[bin - d];
        if (bin + d < kBins && exemplars_[bin + d].valid()) return exemplars_[bin + d];
    }
    return {};
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    for (std::size_t bin = 0; bin < kBins; ++bin) {
        bins_[bin] += other.bins_[bin];
        // Per-bucket last-write-wins carries over: the newer exemplar is
        // the one a dashboard should cite.
        if (other.exemplars_[bin].valid() &&
            (!exemplars_[bin].valid() ||
             other.exemplars_[bin].timestampUs > exemplars_[bin].timestampUs))
            exemplars_[bin] = other.exemplars_[bin];
    }
    minMs_ = count_ == 0 ? other.minMs_ : std::min(minMs_, other.minMs_);
    count_ += other.count_;
    sumMs_ += other.sumMs_;
    maxMs_ = std::max(maxMs_, other.maxMs_);
}

double LatencyHistogram::percentile(double p) const {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank within the cumulative bin counts.
    const double rank = p / 100.0 * static_cast<double>(count_);
    const count target = std::max<count>(1, static_cast<count>(std::ceil(rank)));
    count seen = 0;
    for (std::size_t bin = 0; bin < kBins; ++bin) {
        seen += bins_[bin];
        if (seen >= target) {
            const double lower = bin == 0 ? 0.0 : upperEdgeMs(bin - 1);
            const double upper = upperEdgeMs(bin);
            // Geometric midpoint of the winning bin, clamped to the
            // observed range so sparse histograms never report a value
            // outside what was actually recorded.
            const double mid = bin == 0 ? upper / 2.0 : std::sqrt(lower * upper);
            return std::clamp(mid, minMs_, maxMs_);
        }
    }
    return maxMs_;
}

void MetricsRegistry::recordLatency(std::string_view phase, double ms) {
    recordLatency(phase, ms, 0, 0.0);
}

void MetricsRegistry::recordLatency(std::string_view phase, double ms, std::uint64_t traceId,
                                    double timestampUs) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(phase);
    if (it == histograms_.end()) it = histograms_.emplace(std::string(phase), LatencyHistogram{}).first;
    it->second.record(ms, traceId, timestampUs);
}

void MetricsRegistry::increment(std::string_view counterName, count by) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(counterName);
    if (it == counters_.end())
        counters_.emplace(std::string(counterName), by);
    else
        it->second += by;
}

void MetricsRegistry::gaugeQueueDepth(count depth) {
    std::lock_guard<std::mutex> lock(mutex_);
    queueDepth_ = depth;
    queueDepthMax_ = std::max(queueDepthMax_, depth);
}

void MetricsRegistry::setReplicaLabel(std::string label) {
    std::lock_guard<std::mutex> lock(mutex_);
    replicaLabel_ = std::move(label);
}

void MetricsRegistry::setExemplarFilter(std::function<bool(std::uint64_t)> keep) {
    std::lock_guard<std::mutex> lock(mutex_);
    exemplarFilter_ = std::move(keep);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    if (&other == this) return;
    // Copy the source under its own lock, then fold in under ours — never
    // both locks at once, so there is no ordering to get wrong when two
    // registries merge concurrently.
    std::map<std::string, LatencyHistogram, std::less<>> histograms;
    std::map<std::string, count, std::less<>> counters;
    count depth = 0;
    count depthMax = 0;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        histograms = other.histograms_;
        counters = other.counters_;
        depth = other.queueDepth_;
        depthMax = other.queueDepthMax_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, h] : histograms) histograms_[name].merge(h);
    for (const auto& [name, v] : counters) counters_[name] += v;
    queueDepth_ += depth;
    queueDepthMax_ += depthMax;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    const auto filtered = [this](Exemplar ex) {
        if (ex.valid() && exemplarFilter_ && !exemplarFilter_(ex.traceId)) return Exemplar{};
        return ex;
    };
    for (const auto& [name, h] : histograms_) {
        MetricsSnapshot::HistogramStats s;
        s.samples = h.samples();
        s.meanMs = h.meanMs();
        s.maxMs = h.maxMs();
        s.p50Ms = h.percentile(50.0);
        s.p95Ms = h.percentile(95.0);
        s.p99Ms = h.percentile(99.0);
        s.p50Ex = filtered(h.exemplarNear(s.p50Ms));
        s.p95Ex = filtered(h.exemplarNear(s.p95Ms));
        s.p99Ex = filtered(h.exemplarNear(s.p99Ms));
        snap.histograms.emplace(name, s);
    }
    snap.counters = {counters_.begin(), counters_.end()};
    snap.queueDepth = queueDepth_;
    snap.queueDepthMax = queueDepthMax_;
    snap.replica = replicaLabel_;
    return snap;
}

std::string MetricsSnapshot::toJson() const {
    JsonWriter w;
    w.beginObject();
    w.key("histograms").beginObject();
    for (const auto& [name, s] : histograms) {
        w.key(name).beginObject();
        w.kv("count", s.samples);
        w.kv("mean_ms", s.meanMs);
        w.kv("max_ms", s.maxMs);
        w.kv("p50_ms", s.p50Ms);
        w.kv("p95_ms", s.p95Ms);
        w.kv("p99_ms", s.p99Ms);
        const auto exemplar = [&w](const char* k, const Exemplar& ex) {
            if (!ex.valid()) return;
            w.key(k).beginObject();
            w.kv("trace_id", static_cast<unsigned long long>(ex.traceId));
            w.kv("value_ms", ex.valueMs);
            w.kv("t_us", ex.timestampUs);
            w.endObject();
        };
        exemplar("p50_exemplar", s.p50Ex);
        exemplar("p95_exemplar", s.p95Ex);
        exemplar("p99_exemplar", s.p99Ex);
        w.endObject();
    }
    w.endObject();
    w.key("counters").beginObject();
    for (const auto& [name, v] : counters) w.kv(name, v);
    w.endObject();
    w.kv("queue_depth", queueDepth);
    w.kv("queue_depth_max", queueDepthMax);
    if (!replica.empty()) w.kv("replica", replica);
    w.endObject();
    return w.str();
}

} // namespace rinkit::serve
