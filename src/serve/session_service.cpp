#include "src/serve/session_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/obs/event_log.hpp"

namespace rinkit::serve {

std::string_view sloVerdictName(SloVerdict verdict) {
    switch (verdict) {
    case SloVerdict::Ok: return "ok";
    case SloVerdict::DeadlineMissed: return "deadline_missed";
    case SloVerdict::Rejected: return "rejected";
    }
    return "unknown";
}

SliderEvent SliderEvent::setFrame(index frame, double deadlineMs) {
    SliderEvent e;
    e.kind = Kind::Frame;
    e.frame = frame;
    e.deadlineMs = deadlineMs;
    return e;
}

SliderEvent SliderEvent::setCutoff(double cutoff, double deadlineMs) {
    SliderEvent e;
    e.kind = Kind::Cutoff;
    e.cutoff = cutoff;
    e.deadlineMs = deadlineMs;
    return e;
}

SliderEvent SliderEvent::setMeasure(viz::Measure measure, double deadlineMs) {
    SliderEvent e;
    e.kind = Kind::Measure;
    e.measure = measure;
    e.deadlineMs = deadlineMs;
    return e;
}

SliderEvent SliderEvent::refresh(double deadlineMs) {
    SliderEvent e;
    e.kind = Kind::Refresh;
    e.deadlineMs = deadlineMs;
    return e;
}

std::string_view kindName(SliderEvent::Kind kind) {
    switch (kind) {
    case SliderEvent::Kind::Frame: return "frame";
    case SliderEvent::Kind::Cutoff: return "cutoff";
    case SliderEvent::Kind::Measure: return "measure";
    case SliderEvent::Kind::Refresh: return "refresh";
    }
    return "unknown";
}

namespace {

obs::SpanAttr numAttr(std::string_view key, double v) {
    obs::SpanAttr a;
    a.key.assign(key);
    a.num = v;
    return a;
}

obs::SpanAttr strAttr(std::string_view key, std::string_view v) {
    obs::SpanAttr a;
    a.key.assign(key);
    a.str.assign(v);
    a.isString = true;
    return a;
}

const char* degradeLevelName(viz::DegradeLevel level) {
    switch (level) {
    case viz::DegradeLevel::None: return "none";
    case viz::DegradeLevel::Approx: return "approx";
    case viz::DegradeLevel::Stale: return "stale";
    }
    return "?";
}

} // namespace

SessionService::SessionService(Options options) : options_(std::move(options)) {
    if (options_.workers == 0)
        options_.workers = std::max<count>(1, options_.budget.cpuMillis / 1000);
    if (options_.maxQueuedPerSession == 0)
        options_.maxQueuedPerSession = std::max<count>(2, options_.budget.memoryMb / 2048);
    registry_.setReplicaLabel(options_.replicaLabel);
    // Pre-seed the lifecycle counters so every snapshot (and its JSON)
    // carries the full set, zeros included. The wire_* counters track the
    // shipped payloads: bytes in whichever format the session uses, and
    // the keyframe/delta split for binary-wire sessions (JSON payloads
    // count frames and bytes but neither wire_keyframes nor
    // wire_delta_frames, so delta ratio = wire_delta_frames / frames_shipped
    // is meaningful per-format). handed_off/adopted account migration:
    // pending queue slots leaving / arriving with a migrated session.
    // The speculative pipeline keeps its own closed accounting, invisible
    // to the request counters and the SLO engine:
    //   speculated == spec_hit + spec_miss + spec_cancelled
    // once the pipeline is idle (each enqueued task resolves exactly once).
    for (const char* name : {"submitted", "completed", "coalesced", "rejected",
                             "shed_degraded", "shed_stale", "deadline_missed",
                             "sessions_opened", "frames_shipped", "wire_bytes",
                             "wire_keyframes", "wire_delta_frames",
                             "handed_off", "adopted", "sessions_adopted",
                             "measure_tier_exact", "measure_tier_dynamic",
                             "measure_tier_approx", "measure_tier_stale",
                             "slo_degraded", "speculated", "spec_hit",
                             "spec_miss", "spec_cancelled", "spec_cpu_ms",
                             "lod_pairs_shipped"})
        registry_.increment(name, 0);
    // Structural exemplar hygiene: exemplars whose trace the sampler has
    // since evicted are dropped at snapshot time, so an exported exemplar
    // id always resolves to a retained span tree.
    if (options_.tailSampler) {
        registry_.setExemplarFilter(
            [sampler = options_.tailSampler](std::uint64_t traceId) {
                return sampler->isRetained(traceId);
            });
    }
    pool_ = std::make_unique<ThreadPool>(options_.workers);
}

SessionService::~SessionService() {
    // Reject everything still queued so no future dangles, and clear the
    // session map so finishing workers do not re-enqueue; then join the
    // pool while all other members are still alive.
    shutdown();
    pool_.reset();
}

void SessionService::shutdown() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, session] : sessions_) {
        session->specToken.cancel();
        cancelPendingSpeculationLocked(*session);
        for (auto& request : session->queue) {
            // One slot = one "rejected" tick: the coalesced waiters of
            // this slot were already accounted under "coalesced", so
            // per-slot counting keeps the invariant
            // submitted + adopted == completed + coalesced + rejected + handed_off.
            registry_.increment("rejected");
            RequestOutcome outcome;
            outcome.status = RequestStatus::Rejected;
            resolveAll(request, outcome);
        }
        totalQueued_ -= session->queue.size();
        syncLiveLocked();
        session->queue.clear();
    }
    sessions_.clear();
    registry_.gaugeQueueDepth(totalQueued_);
}

SessionId SessionService::openSession(const md::Trajectory& traj,
                                      viz::RinWidget::Options widgetOptions,
                                      std::string_view /*routingKey*/) {
    // Widget construction runs the initial update cycle — keep it off the
    // service lock.
    auto session = std::make_shared<Session>();
    session->widget = std::make_unique<viz::RinWidget>(traj, widgetOptions);

    std::lock_guard<std::mutex> lock(mutex_);
    session->id = nextId_++;
    const SessionId id = session->id;
    sessions_.emplace(id, std::move(session));
    registry_.increment("sessions_opened");
    return id;
}

void SessionService::closeSession(SessionId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Session& session = *it->second;
    session.specToken.cancel();
    cancelPendingSpeculationLocked(session);
    for (auto& request : session.queue) {
        registry_.increment("rejected"); // per slot; see shutdown()
        RequestOutcome outcome;
        outcome.status = RequestStatus::Rejected;
        resolveAll(request, outcome);
    }
    totalQueued_ -= session.queue.size();
    syncLiveLocked();
    session.queue.clear();
    registry_.gaugeQueueDepth(totalQueued_);
    // An in-flight request holds its own shared_ptr and finishes normally;
    // erasing the map entry just prevents re-scheduling.
    sessions_.erase(it);
}

std::future<RequestOutcome> SessionService::submit(SessionId id, SliderEvent event) {
    std::promise<RequestOutcome> promise;
    std::future<RequestOutcome> future = promise.get_future();
    obs::Tracer& tracer = obs::Tracer::global();

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        throw std::invalid_argument("SessionService: unknown session id " + std::to_string(id));
    Session& session = *it->second;
    registry_.increment("submitted");
    // Real work preempts speculation: fire the token so an in-flight
    // speculative task yields its worker at the next phase boundary. A
    // speculation that already completed stays pending — this very request
    // will judge it.
    session.specToken.cancel();

    // Latest-wins coalescing: a queued event of the same kind is stale the
    // moment a newer one arrives — overwrite it in place, adopt its
    // waiters, and keep its queue slot so the queue does not grow. The
    // absorbed event rides the queued slot's trace; a point span on that
    // trace marks the overwrite.
    for (auto& queued : session.queue) {
        if (queued.event.kind == event.kind) {
            queued.event = event;
            ++queued.absorbed;
            queued.waiters.push_back(std::move(promise));
            registry_.increment("coalesced");
            const double now = tracer.nowUs();
            tracer.recordSpan("serve.coalesce", queued.traceCtx, tracer.nextId(),
                              queued.traceCtx.spanId, now, now,
                              {numAttr("absorbed", static_cast<double>(queued.absorbed))});
            return future;
        }
    }

    // Tail sampling replaces head sampling for request roots: with a
    // sampler attached every root is forced (recorded + buffered) and the
    // keep/drop call happens at finish(), when the outcome is known.
    obs::TailSampler* sampler = options_.tailSampler.get();
    const bool tail = sampler != nullptr && tracer.enabled();

    // Admission control: beyond the budgeted backlog nothing coalescible
    // is left, so refuse instead of queueing unboundedly. Rejections get a
    // root-only trace so overload is visible per request, not only as a
    // counter — and under tail sampling the shed root is retained.
    if (session.queue.size() >= options_.maxQueuedPerSession) {
        registry_.increment("rejected");
        const obs::SpanContext ctx =
            tail ? tracer.makeRootContext(obs::Sample::Force) : tracer.makeRootContext();
        if (tail && ctx.sampled) sampler->open(ctx.traceId);
        const double now = tracer.nowUs();
        tracer.recordSpan("serve.request", ctx, ctx.spanId, 0, now, now,
                          {strAttr("kind", kindName(event.kind)),
                           strAttr("status", "rejected"),
                           numAttr("session", static_cast<double>(id))});
        RequestOutcome outcome;
        outcome.status = RequestStatus::Rejected;
        outcome.sloVerdict = SloVerdict::Rejected;
        if (ctx.sampled) outcome.traceId = ctx.traceId;
        if (tail && ctx.sampled) {
            obs::TailVerdict verdict;
            verdict.rejected = true;
            outcome.traceRetained =
                sampler->finish(ctx.traceId, verdict) != obs::RetainReason::None;
        }
        if (options_.slo) {
            obs::SloSample s;
            s.rejected = true;
            options_.slo->record(s);
        }
        promise.set_value(outcome);
        return future;
    }

    detail::QueuedRequest request;
    request.event = event;
    request.waiters.push_back(std::move(promise));
    // Mint the request's trace on the submitting (service) thread; the
    // root span itself is emitted at completion with this start time.
    request.traceCtx =
        tail ? tracer.makeRootContext(obs::Sample::Force) : tracer.makeRootContext();
    if (tail && request.traceCtx.sampled) sampler->open(request.traceCtx.traceId);
    request.submittedUs = tracer.nowUs();
    {
        obs::ContextScope adopt(request.traceCtx);
        obs::ScopedSpan enqueue("serve.enqueue");
        enqueue.attr("session", static_cast<double>(id));
        enqueue.attr("kind", kindName(event.kind));
        enqueue.attr("queue_depth", static_cast<double>(session.queue.size()));
    }
    session.queue.push_back(std::move(request));
    ++totalQueued_;
    syncLiveLocked();
    registry_.gaugeQueueDepth(totalQueued_);
    // A real request instantly reclaims the worker its session's
    // speculation may be holding: firing the token makes the speculative
    // solve abort at its next per-iteration check, so the request waits at
    // most ~one layout sweep, never a whole solve. A speculation that
    // already completed is untouched — it sits pending and this very
    // request judges it hit or miss.
    if (session.specQueued) session.specToken.cancel();
    pumpLocked(it->second);
    return future;
}

void SessionService::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return totalQueued_ == 0 && inFlight_ == 0; });
}

void SessionService::waitSpeculationIdle() {
    std::unique_lock<std::mutex> lock(mutex_);
    specIdle_.wait(lock, [this] { return specTasksQueued_ == 0; });
}

count SessionService::activeSessions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

std::vector<SliderEvent::Kind> SessionService::appliedEvents(SessionId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        throw std::invalid_argument("SessionService: unknown session id " + std::to_string(id));
    return it->second->appliedLog;
}

const viz::RinWidget* SessionService::sessionWidget(SessionId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second->widget.get();
}

SessionService::DetachedSession SessionService::extractSession(SessionId id) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        throw std::invalid_argument("SessionService: unknown session id " + std::to_string(id));
    std::shared_ptr<Session> session = it->second;

    // Quiesce: freeze scheduling (pumpLocked skips frozen sessions) and
    // wait out the in-flight request. Its waiters resolve normally on this
    // replica — only *unexecuted* work is handed off. Speculation does not
    // migrate: the token stops a running task, an unjudged result resolves
    // as cancelled here, and the widget leaves with its side slots empty —
    // so hit/miss never lands on a replica that never ticked "speculated".
    session->frozen = true;
    session->specToken.cancel();
    idle_.wait(lock, [&] { return !session->busy; });
    cancelPendingSpeculationLocked(*session);
    session->widget->dropSpeculation();

    DetachedSession detached;
    detached.widget_ = std::move(session->widget);
    detached.appliedLog_ = std::move(session->appliedLog);
    detached.queue_ = std::move(session->queue);
    for (count i = 0; i < detached.queue_.size(); ++i) registry_.increment("handed_off");
    totalQueued_ -= detached.queue_.size();
    syncLiveLocked();
    sessions_.erase(id);
    registry_.gaugeQueueDepth(totalQueued_);
    if (totalQueued_ == 0 && inFlight_ == 0) idle_.notify_all();
    return detached;
}

SessionId SessionService::adoptSession(DetachedSession&& detached) {
    if (!detached.valid())
        throw std::invalid_argument("SessionService: adopting an empty DetachedSession");
    // The client's wire stream is re-homed onto this replica: force the
    // next frame to be a keyframe (the resync rule), so the decoder
    // continues from a self-contained state instead of a delta against
    // frames the new replica never shipped.
    detached.widget_->forceWireResync();
    obs::EventLog::global().log(
        "wire_resync",
        "forced keyframe on adoption (" + std::to_string(detached.queuedRequests()) +
            " queued requests)",
        0, options_.replicaLabel);

    std::lock_guard<std::mutex> lock(mutex_);
    auto session = std::make_shared<Session>();
    session->id = nextId_++;
    session->widget = std::move(detached.widget_);
    session->appliedLog = std::move(detached.appliedLog_);
    session->queue = std::move(detached.queue_);
    for (count i = 0; i < session->queue.size(); ++i) registry_.increment("adopted");
    totalQueued_ += session->queue.size();
    syncLiveLocked();
    registry_.increment("sessions_adopted");
    registry_.gaugeQueueDepth(totalQueued_);
    const SessionId id = session->id;
    sessions_.emplace(id, session);
    pumpLocked(session);
    return id;
}

std::string SessionService::sloJson() const {
    return options_.slo ? options_.slo->toJson() : std::string("{\"objectives\":[]}");
}

void SessionService::setMinimumDegradeLevel(viz::DegradeLevel level) {
    minDegradeRank_.store(static_cast<int>(level), std::memory_order_relaxed);
}

viz::DegradeLevel SessionService::minimumDegradeLevel() const {
    return static_cast<viz::DegradeLevel>(minDegradeRank_.load(std::memory_order_relaxed));
}

void SessionService::syncLiveLocked() {
    interactiveLive_.store(totalQueued_ + inFlight_, std::memory_order_relaxed);
}

void SessionService::pumpLocked(const std::shared_ptr<Session>& session) {
    if (session->busy || session->frozen || session->queue.empty()) return;
    session->busy = true;
    ++inFlight_;
    syncLiveLocked();
    pool_->submit([this, session] { runNext(session); });
}

void SessionService::maybeSpeculateLocked(const std::shared_ptr<Session>& session) {
    // Only an idle session with nothing pending speculates: a queued or
    // unjudged speculation means there is nothing new to precompute (the
    // prediction cannot change until a real event runs).
    if (session->specQueued || session->specPending || session->busy || session->frozen ||
        !session->queue.empty())
        return;
    // Speculation donates *idle* capacity only. While any real request is
    // queued or executing anywhere, every worker's next slot belongs to
    // interactive work — a saturated closed-loop fleet must measure zero
    // speculative interference, not "a little". (At the runNext tail this
    // runs after --inFlight_, so a lone interactive session still
    // speculates in the gap before its next event.)
    if (totalQueued_ != 0 || inFlight_ != 0) return;
    if (!session->widget->options().speculate) return;
    if (!session->widget->predictNext().valid()) return;
    session->specToken = CancelToken();
    session->specQueued = true;
    ++specTasksQueued_;
    registry_.increment("speculated");
    pool_->submitBackground(
        [this, session, token = session->specToken] { runSpeculation(session, token); });
}

void SessionService::cancelPendingSpeculationLocked(Session& session) {
    if (!session.specPending) return;
    session.specPending = false;
    registry_.increment("spec_cancelled");
}

void SessionService::runSpeculation(std::shared_ptr<Session> session, CancelToken token) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // The world may have moved between enqueue and dequeue: a real
        // request queued or executing, the session closed or migrating, or
        // the token already fired. All of it resolves this task as
        // cancelled — speculation only ever runs on an otherwise idle
        // session, so it is invisible to interactive latency.
        if (sessions_.count(session->id) == 0 || session->frozen || session->busy ||
            !session->queue.empty() || totalQueued_ != 0 || inFlight_ != 0 ||
            token.cancelled()) {
            session->specQueued = false;
            --specTasksQueued_;
            registry_.increment("spec_cancelled");
            specIdle_.notify_all();
            return;
        }
        session->busy = true; // same per-session serialization as a request
    }

    obs::ScopedSpan span("serve.speculate");
    span.attr("session", static_cast<double>(session->id));
    if (!options_.replicaLabel.empty()) span.attr("replica", options_.replicaLabel);
    Timer cpu;
    // Yield at the next phase boundary (or layout iteration) once real
    // work exists anywhere in the service — queued on the pool, queued on
    // a session, or already executing. interactiveLive_ is the lock-free
    // mirror kept by syncLiveLocked(), so this poll never touches mutex_.
    const auto cancelled = [this, &token] {
        return token.cancelled() || pool_->interactivePending() ||
               interactiveLive_.load(std::memory_order_relaxed) != 0;
    };
    const bool completed = session->widget->speculate(cancelled);
    const double specMs = cpu.elapsedMs();
    span.attr("completed", completed);
    span.attr("spec_ms", specMs);
    registry_.recordLatency("speculate_ms", specMs);
    registry_.increment("spec_cpu_ms", static_cast<count>(specMs));

    std::lock_guard<std::mutex> lock(mutex_);
    session->specQueued = false;
    --specTasksQueued_;
    session->busy = false;
    if (completed && sessions_.count(session->id) != 0 && !session->frozen) {
        // Pending until the next graph-moving request judges it hit/miss.
        // (A request that arrives mid-compute fires the token and aborts
        // the solve; one that loses the race to a finished solve lands
        // here as a normal judge of the completed result.)
        session->specPending = true;
    } else {
        if (completed) session->widget->dropSpeculation();
        registry_.increment("spec_cancelled");
    }
    pumpLocked(session);
    specIdle_.notify_all();
    idle_.notify_all(); // extractSession may be waiting out this task
}

void SessionService::resolveAll(detail::QueuedRequest& request, const RequestOutcome& outcome) {
    for (auto& waiter : request.waiters) waiter.set_value(outcome);
    request.waiters.clear();
}

void SessionService::runNext(std::shared_ptr<Session> session) {
    detail::QueuedRequest request;
    count depthBehind = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (session->queue.empty()) {
            // closeSession rejected the backlog between scheduling and now.
            session->busy = false;
            --inFlight_;
            syncLiveLocked();
            idle_.notify_all();
            return;
        }
        request = std::move(session->queue.front());
        session->queue.pop_front();
        depthBehind = session->queue.size();
        --totalQueued_;
        syncLiveLocked();
        registry_.gaugeQueueDepth(totalQueued_);
        session->appliedLog.push_back(request.event.kind);
    }

    obs::Tracer& tracer = obs::Tracer::global();
    const double queueMs = request.queued.elapsedMs();
    const double deadlineMs =
        request.event.deadlineMs > 0.0 ? request.event.deadlineMs : options_.defaultDeadlineMs;

    // Degradation ladder: a deep backlog sheds this request to Approx
    // (sampled measures with a stated error bound); an extreme backlog
    // escalates to Stale (older-version results allowed). A blown queue
    // deadline degrades to at least Approx (still executed — the client
    // gets *an* update — but flagged).
    viz::DegradeLevel level = viz::DegradeLevel::None;
    bool deadlineMissed = false;
    if (depthBehind > options_.staleQueueDepth) {
        level = viz::DegradeLevel::Stale;
        registry_.increment("shed_degraded");
        registry_.increment("shed_stale");
    } else if (depthBehind > options_.degradeQueueDepth) {
        level = viz::DegradeLevel::Approx;
        registry_.increment("shed_degraded");
    }
    if (deadlineMs > 0.0 && queueMs > deadlineMs) {
        deadlineMissed = true;
        if (level == viz::DegradeLevel::None) level = viz::DegradeLevel::Approx;
        registry_.increment("deadline_missed");
        // Deadline misses are exactly the requests worth a trace: override
        // a lost head-sampling draw before any execution span opens. The
        // submit-side enqueue span was not recorded, but queue wait,
        // execution, and the root are all still ahead. Under tail sampling
        // the root was already forced at submit, so this flip is a no-op —
        // the force happens exactly once per root, never twice.
        if (options_.sampleOnDeadlineMiss && !request.traceCtx.sampled && tracer.enabled())
            request.traceCtx.sampled = true;
    }

    // SLO → ladder coupling: while the latency budget fast-burns the
    // controller floors every request at Approx, shedding load *before*
    // queues build instead of after. The queue-depth rungs still escalate
    // above the floor.
    const auto floorLevel =
        static_cast<viz::DegradeLevel>(minDegradeRank_.load(std::memory_order_relaxed));
    if (static_cast<int>(floorLevel) > static_cast<int>(level)) {
        level = floorLevel;
        registry_.increment("slo_degraded");
    }

    // Edge-detect the service-wide served level so the ops log shows one
    // "degrade_transition" per change, not one per degraded request.
    const int prevRank = lastServedRank_.exchange(static_cast<int>(level),
                                                  std::memory_order_relaxed);
    if (prevRank != static_cast<int>(level)) {
        obs::EventLog::global().log(
            "degrade_transition",
            std::string(degradeLevelName(static_cast<viz::DegradeLevel>(prevRank))) + " -> " +
                degradeLevelName(level),
            request.traceCtx.sampled ? request.traceCtx.traceId : 0, options_.replicaLabel);
    }

    if (request.traceCtx.sampled) {
        tracer.recordSpan("serve.queue_wait", request.traceCtx, tracer.nextId(),
                          request.traceCtx.spanId, request.submittedUs, tracer.nowUs(),
                          {numAttr("queue_ms", queueMs),
                           numAttr("depth_behind", static_cast<double>(depthBehind))});
    }

    // The busy flag serializes per-session execution, so the widget is
    // touched by exactly one worker at a time — no lock held while the
    // update cycle runs. The request's trace context is adopted for the
    // execution scope: every widget/engine/rin span below lands in the
    // submitting request's tree even though a pool worker runs it.
    const bool degraded = level != viz::DegradeLevel::None;
    viz::RinWidget& widget = *session->widget;
    widget.setDegradeLevel(level);
    viz::RinWidget::UpdateTiming timing;
    {
        obs::ContextScope adopt(request.traceCtx);
        obs::ScopedSpan exec("serve.execute");
        exec.attr("session", static_cast<double>(session->id));
        exec.attr("kind", kindName(request.event.kind));
        exec.attr("degraded", degraded);
        if (!options_.replicaLabel.empty()) exec.attr("replica", options_.replicaLabel);
        switch (request.event.kind) {
        case SliderEvent::Kind::Frame:
            timing = widget.setFrame(request.event.frame);
            break;
        case SliderEvent::Kind::Cutoff:
            timing = widget.setCutoff(request.event.cutoff);
            break;
        case SliderEvent::Kind::Measure:
            timing = widget.setMeasure(request.event.measure);
            break;
        case SliderEvent::Kind::Refresh:
            timing = widget.refresh();
            break;
        }
        exec.attr("measure_cache_hit", timing.measureCacheHit);
        exec.attr("measure_tier", viz::tierName(timing.measureTier));
        if (timing.measureEps > 0.0) exec.attr("measure_eps", timing.measureEps);
    }

    // The latency the user saw: queue wait plus the full update cycle.
    // This (not just queue wait) is what the deadline-attainment SLO and
    // the tail sampler's verdict judge.
    const double latencyMs = queueMs + timing.totalMs();
    const bool sloMissed = deadlineMs > 0.0 && latencyMs > deadlineMs;

    if (request.traceCtx.sampled) {
        tracer.recordSpan(
            "serve.request", request.traceCtx, request.traceCtx.spanId, 0,
            request.submittedUs, tracer.nowUs(),
            {strAttr("kind", kindName(request.event.kind)),
             numAttr("session", static_cast<double>(session->id)),
             numAttr("coalesced", static_cast<double>(request.absorbed)),
             numAttr("queue_ms", queueMs), numAttr("degraded", degraded ? 1.0 : 0.0),
             numAttr("deadline_missed", deadlineMissed ? 1.0 : 0.0)});
    }

    // Retention verdict after the root span landed (so the retained tree
    // is complete), before exemplar stamping (so the stamped id is already
    // known-retained).
    bool retained = false;
    obs::TailSampler* sampler = options_.tailSampler.get();
    if (sampler != nullptr && request.traceCtx.sampled) {
        obs::TailVerdict verdict;
        verdict.durationMs = latencyMs;
        verdict.deadlineMissed = deadlineMissed || sloMissed;
        verdict.degraded = degraded;
        retained = sampler->finish(request.traceCtx.traceId, verdict) !=
                   obs::RetainReason::None;
    }

    if (options_.slo) {
        obs::SloSample s;
        s.latencyMs = latencyMs;
        s.deadlineMs = deadlineMs;
        s.servedStale = timing.measureTier == viz::ResolutionTier::Stale;
        s.eps = timing.measureEps;
        options_.slo->record(s);
    }

    const std::uint64_t exemplarId = retained ? request.traceCtx.traceId : 0;
    const double exemplarUs = tracer.nowUs();
    registry_.recordLatency("queue_ms", queueMs, exemplarId, exemplarUs);
    registry_.recordLatency("network_update_ms", timing.networkUpdateMs, exemplarId, exemplarUs);
    registry_.recordLatency("layout_ms", timing.layoutMs, exemplarId, exemplarUs);
    registry_.recordLatency("measure_ms", timing.measureMs, exemplarId, exemplarUs);
    registry_.recordLatency("scene_build_ms", timing.sceneBuildMs, exemplarId, exemplarUs);
    registry_.recordLatency("serialize_ms", timing.serializeMs, exemplarId, exemplarUs);
    registry_.recordLatency("server_ms", timing.serverMs(), exemplarId, exemplarUs);
    registry_.recordLatency("total_ms", latencyMs, exemplarId, exemplarUs);
    registry_.increment("completed");
    registry_.increment(std::string("measure_tier_") + viz::tierName(timing.measureTier));
    registry_.increment("frames_shipped");
    registry_.increment("wire_bytes", timing.wireBytes);
    if (timing.binaryWire)
        registry_.increment(timing.wireKeyframe ? "wire_keyframes" : "wire_delta_frames");
    if (timing.lodCoarse) registry_.increment("lod_pairs_shipped");
    // A graph-moving request judges the pending speculation: exactly one
    // of spec_hit/spec_miss per speculation that survived to judgement.
    if (timing.specJudged) registry_.increment(timing.specHit ? "spec_hit" : "spec_miss");

    RequestOutcome outcome;
    outcome.status = degraded ? RequestStatus::OkDegraded : RequestStatus::Ok;
    outcome.timing = timing;
    outcome.queueMs = queueMs;
    outcome.coalescedEvents = request.absorbed;
    outcome.deadlineMissed = deadlineMissed;
    if (request.traceCtx.sampled) outcome.traceId = request.traceCtx.traceId;
    outcome.traceRetained = retained;
    outcome.sloVerdict = (deadlineMissed || sloMissed) ? SloVerdict::DeadlineMissed
                                                       : SloVerdict::Ok;
    resolveAll(request, outcome);

    std::lock_guard<std::mutex> lock(mutex_);
    session->busy = false;
    --inFlight_;
    syncLiveLocked();
    if (timing.specJudged) session->specPending = false;
    // Re-enqueue through the pool's FIFO rather than looping here, so a
    // chatty session yields to the others between requests.
    if (sessions_.count(session->id) != 0) {
        pumpLocked(session);
        // Idle after this request: spend the idle capacity on the
        // predicted next tick (no-op unless the widget opted in).
        maybeSpeculateLocked(session);
    }
    // Wake both drain() (all-idle) and extractSession() (this session
    // quiesced); the predicates re-check under the lock.
    idle_.notify_all();
}

} // namespace rinkit::serve
