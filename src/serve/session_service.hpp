#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/cloud/resources.hpp"
#include "src/md/trajectory.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/metrics.hpp"
#include "src/support/thread_pool.hpp"
#include "src/support/timer.hpp"
#include "src/viz/widget.hpp"

namespace rinkit::serve {

/// Opaque handle to one user's widget session.
using SessionId = count;

/// One interaction from a client: a widget slider move (or a refresh
/// button press) plus an optional latency deadline.
struct SliderEvent {
    enum class Kind { Frame, Cutoff, Measure, Refresh };

    Kind kind = Kind::Refresh;
    index frame = 0;
    double cutoff = 4.5;
    viz::Measure measure = viz::Measure::Degree;
    /// Queue-time budget in ms; a request that waits longer is executed
    /// degraded and flagged. 0 = use the service default.
    double deadlineMs = 0.0;

    static SliderEvent setFrame(index frame, double deadlineMs = 0.0);
    static SliderEvent setCutoff(double cutoff, double deadlineMs = 0.0);
    static SliderEvent setMeasure(viz::Measure measure, double deadlineMs = 0.0);
    static SliderEvent refresh(double deadlineMs = 0.0);
};

/// Stable lowercase name of an event kind ("frame", "cutoff", "measure",
/// "refresh") — span attributes and logs.
std::string_view kindName(SliderEvent::Kind kind);

enum class RequestStatus {
    Ok,         ///< served exactly
    OkDegraded, ///< served, but shed to the degraded path
    Rejected,   ///< admission control refused it (queue at budget / session closed)
};

/// What a submitted request resolved to. Every accepted request's future
/// resolves exactly once — coalesced requests resolve with the outcome of
/// the event that superseded them.
struct RequestOutcome {
    RequestStatus status = RequestStatus::Ok;
    viz::RinWidget::UpdateTiming timing; ///< zeros when Rejected
    double queueMs = 0.0;                ///< time spent waiting for a worker
    count coalescedEvents = 0;           ///< older queued events this one absorbed
    bool deadlineMissed = false;         ///< queue wait exceeded the deadline

    bool accepted() const { return status != RequestStatus::Rejected; }
    bool degraded() const { return status == RequestStatus::OkDegraded; }
};

/// SessionService configuration. Namespace-scope (not nested) so its
/// defaults can serve the service's single defaulted-Options constructor.
struct SessionServiceOptions {
    /// Resource budget the service admits work against — defaults to the
    /// paper's per-instance cgroup limit (10 vCores / 16 GB).
    cloud::Resources budget = cloud::kPaperInstanceLimit;
    /// Worker threads. 0 = one per budgeted vCore (budget.cpuMillis/1000).
    count workers = 0;
    /// Admission bound per session. A queued update pins roughly a
    /// figure-sized buffer, so 0 derives the bound from the memory budget
    /// (one slot per 2 GB, minimum 2).
    count maxQueuedPerSession = 0;
    /// Queue depth at dequeue beyond which a request is shed to the first
    /// degradation rung: approximate measures *with a stated error bound*
    /// (DegradeLevel::Approx) and a layout polish only.
    count degradeQueueDepth = 2;
    /// Queue depth beyond which overload escalates to the last rung:
    /// results for an older graph version may be served
    /// (DegradeLevel::Stale). Bounded-error-but-current degrades before
    /// exact-but-outdated.
    count staleQueueDepth = 6;
    /// Deadline applied when an event carries none. 0 = no deadline.
    double defaultDeadlineMs = 0.0;
    /// Head sampling escape hatch: a request whose queue wait blew its
    /// deadline is traced even when it lost the head-sampling draw, so the
    /// requests most worth debugging always leave a span tree.
    bool sampleOnDeadlineMiss = true;
};

/// Concurrent multi-session RIN service: runs many RinWidget sessions on a
/// fixed worker pool behind a single request API.
///
/// Scheduling model (per session):
///  - requests form a FIFO queue; at most one executes at a time, so each
///    session observes its slider events in order;
///  - **latest-wins coalescing**: a newly submitted event replaces a queued
///    event of the same Kind in place — the stale value is never computed,
///    the superseded waiters are resolved with the newer event's outcome,
///    and the queue does not grow;
///  - **admission control**: once a session's queue is at its budgeted
///    bound (and nothing can be coalesced), submit resolves immediately
///    with Rejected instead of queueing unboundedly;
///  - **graceful degradation ladder**: a request dequeued behind more than
///    degradeQueueDepth waiters (or one whose queue wait blew its deadline)
///    executes with DegradeLevel::Approx — sampled measures with a stated
///    (epsilon, delta) and a warm-start-only layout; beyond staleQueueDepth
///    it escalates to DegradeLevel::Stale, which additionally allows
///    serving results for an older graph version. Approximate-with-bounds
///    ranks above stale: a bounded error on the current frame beats an
///    unbounded one from the past. The tier actually served is visible in
///    RequestOutcome::timing.measureTier and the measure_tier_* counters.
///
/// Sessions are independent: the pool interleaves them, and a session
/// re-enqueues itself after each request so a chatty client cannot starve
/// the others. All slider submissions and metric reads are thread-safe.
class SessionService {
public:
    using Options = SessionServiceOptions;

    explicit SessionService(Options options = {});
    ~SessionService();

    SessionService(const SessionService&) = delete;
    SessionService& operator=(const SessionService&) = delete;

    /// Opens a widget session over @p traj (which must outlive the
    /// session). Returns the id used for submit/close.
    SessionId openSession(const md::Trajectory& traj,
                          viz::RinWidget::Options widgetOptions = {});

    /// Closes a session: queued requests resolve Rejected, an in-flight
    /// request finishes normally. Unknown ids are ignored.
    void closeSession(SessionId id);

    /// Submits one slider event; never blocks on computation. The returned
    /// future always resolves (Ok, OkDegraded, or Rejected). Throws
    /// std::invalid_argument for an unknown session id.
    std::future<RequestOutcome> submit(SessionId id, SliderEvent event);

    /// Blocks until every queue is empty and no request is in flight.
    void drain();

    count activeSessions() const;

    /// In-submission-order log of the event kinds actually applied to the
    /// session's widget (coalesced-away events never appear). Test hook
    /// for the per-session ordering guarantee.
    std::vector<SliderEvent::Kind> appliedEvents(SessionId id) const;

    /// Point-in-time copy of all serving metrics.
    MetricsSnapshot metrics() const { return registry_.snapshot(); }

    const Options& options() const { return options_; }
    count workerCount() const { return pool_->size(); }

private:
    struct Request {
        SliderEvent event;
        std::vector<std::promise<RequestOutcome>> waiters;
        Timer queued;        ///< started at submit of the *oldest* waiter
        count absorbed = 0;  ///< events coalesced into this slot
        /// Trace identity minted at submit; the worker adopts it so the
        /// request's spans — enqueue on the service thread, queue wait,
        /// execution on a worker — form one connected tree.
        obs::SpanContext traceCtx;
        double submittedUs = 0.0; ///< tracer clock at submit (root span start)
    };

    struct Session {
        SessionId id = 0;
        std::unique_ptr<viz::RinWidget> widget;
        std::deque<Request> queue;
        bool busy = false; ///< a request of this session is executing
        std::vector<SliderEvent::Kind> appliedLog;
    };

    /// Schedules the session on the pool if it is idle with pending work.
    /// Caller must hold mutex_.
    void pumpLocked(const std::shared_ptr<Session>& session);

    /// Worker-side: pops and executes the session's next request.
    void runNext(std::shared_ptr<Session> session);

    static void resolveAll(Request& request, const RequestOutcome& outcome);

    Options options_;
    std::unique_ptr<ThreadPool> pool_;
    MetricsRegistry registry_;

    mutable std::mutex mutex_;
    std::condition_variable idle_;
    std::map<SessionId, std::shared_ptr<Session>> sessions_;
    SessionId nextId_ = 1;
    count totalQueued_ = 0;  ///< across sessions (drives the depth gauge)
    count inFlight_ = 0;
};

} // namespace rinkit::serve
