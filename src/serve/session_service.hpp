#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include <atomic>

#include "src/cloud/resources.hpp"
#include "src/md/trajectory.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/tail_sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/metrics.hpp"
#include "src/serve/service_endpoint.hpp"
#include "src/support/thread_pool.hpp"
#include "src/support/timer.hpp"
#include "src/viz/widget.hpp"

namespace rinkit::serve {

namespace detail {

/// One queued slot of a session's FIFO: the (possibly coalesced) event,
/// every waiter it will resolve, and the trace identity minted at submit.
/// Namespace-scope (not nested in SessionService) so a DetachedSession can
/// carry the pending queue across replicas during migration.
struct QueuedRequest {
    SliderEvent event;
    std::vector<std::promise<RequestOutcome>> waiters;
    Timer queued;        ///< started at submit of the *oldest* waiter
    count absorbed = 0;  ///< events coalesced into this slot
    /// Trace identity minted at submit; the worker adopts it so the
    /// request's spans — enqueue on the service thread, queue wait,
    /// execution on a worker — form one connected tree.
    obs::SpanContext traceCtx;
    double submittedUs = 0.0; ///< tracer clock at submit (root span start)
};

} // namespace detail

/// SessionService configuration. Namespace-scope (not nested) so its
/// defaults can serve the service's single defaulted-Options constructor.
struct SessionServiceOptions {
    /// Resource budget the service admits work against. This is the budget
    /// of *this instance* (one pod): in a replicated deployment every
    /// replica gets its own per-pod share (ReplicaSet fills this in from
    /// its pod budget) — the fleet budget is split across pods, never
    /// duplicated into each one. Defaults to the paper's per-instance
    /// cgroup limit (10 vCores / 16 GB).
    cloud::Resources budget = cloud::kPaperInstanceLimit;
    /// Worker threads. 0 = one per budgeted vCore (budget.cpuMillis/1000).
    count workers = 0;
    /// Admission bound per session. A queued update pins roughly a
    /// figure-sized buffer, so 0 derives the bound from the memory budget
    /// (one slot per 2 GB, minimum 2).
    count maxQueuedPerSession = 0;
    /// Queue depth at dequeue beyond which a request is shed to the first
    /// degradation rung: approximate measures *with a stated error bound*
    /// (DegradeLevel::Approx) and a layout polish only.
    count degradeQueueDepth = 2;
    /// Queue depth beyond which overload escalates to the last rung:
    /// results for an older graph version may be served
    /// (DegradeLevel::Stale). Bounded-error-but-current degrades before
    /// exact-but-outdated.
    count staleQueueDepth = 6;
    /// Deadline applied when an event carries none. 0 = no deadline.
    double defaultDeadlineMs = 0.0;
    /// Head sampling escape hatch: a request whose queue wait blew its
    /// deadline is traced even when it lost the head-sampling draw, so the
    /// requests most worth debugging always leave a span tree.
    bool sampleOnDeadlineMiss = true;
    /// Replica identity stamped on every metrics snapshot and span this
    /// instance emits ("0", "1", ... in a ReplicaSet). Empty for a
    /// standalone single-instance service.
    std::string replicaLabel;
    /// Deployment-shared SLO engine this instance records one verdict per
    /// request into (rejections included). A ReplicaSet passes the same
    /// engine to every replica so burn rates are fleet-wide. nullptr = off.
    std::shared_ptr<obs::SloEngine> slo;
    /// Deployment-shared tail sampler. When set, every request root is
    /// minted with Sample::Force (tail retention replaces head sampling
    /// for request roots), opened at submit, and finished with its outcome
    /// at completion; retained trace ids feed the exemplar filter.
    std::shared_ptr<obs::TailSampler> tailSampler;
};

/// Concurrent multi-session RIN service: runs many RinWidget sessions on a
/// fixed worker pool behind a single request API.
///
/// Scheduling model (per session):
///  - requests form a FIFO queue; at most one executes at a time, so each
///    session observes its slider events in order;
///  - **latest-wins coalescing**: a newly submitted event replaces a queued
///    event of the same Kind in place — the stale value is never computed,
///    the superseded waiters are resolved with the newer event's outcome,
///    and the queue does not grow;
///  - **admission control**: once a session's queue is at its budgeted
///    bound (and nothing can be coalesced), submit resolves immediately
///    with Rejected instead of queueing unboundedly;
///  - **graceful degradation ladder**: a request dequeued behind more than
///    degradeQueueDepth waiters (or one whose queue wait blew its deadline)
///    executes with DegradeLevel::Approx — sampled measures with a stated
///    (epsilon, delta) and a warm-start-only layout; beyond staleQueueDepth
///    it escalates to DegradeLevel::Stale, which additionally allows
///    serving results for an older graph version. Approximate-with-bounds
///    ranks above stale: a bounded error on the current frame beats an
///    unbounded one from the past. The tier actually served is visible in
///    RequestOutcome::timing.measureTier and the measure_tier_* counters.
///
/// Sessions are independent: the pool interleaves them, and a session
/// re-enqueues itself after each request so a chatty client cannot starve
/// the others. All slider submissions and metric reads are thread-safe.
class SessionService : public ServiceEndpoint {
public:
    using Options = SessionServiceOptions;

    /// Everything a live session is, detached for migration: the widget
    /// (whose caches, dynamic measure state, and wire encoder/decoder
    /// state all travel with it), the applied-event log, and the pending
    /// request queue — every queued future is handed off, none dropped.
    /// Produced by extractSession on the draining replica, consumed by
    /// adoptSession on the target.
    class DetachedSession {
    public:
        DetachedSession() = default;
        DetachedSession(DetachedSession&&) = default;
        DetachedSession& operator=(DetachedSession&&) = default;

        count queuedRequests() const { return queue_.size(); }
        bool valid() const { return widget_ != nullptr; }

    private:
        friend class SessionService;
        std::unique_ptr<viz::RinWidget> widget_;
        std::vector<SliderEvent::Kind> appliedLog_;
        std::deque<detail::QueuedRequest> queue_;
    };

    explicit SessionService(Options options = {});
    ~SessionService() override;

    SessionService(const SessionService&) = delete;
    SessionService& operator=(const SessionService&) = delete;

    /// Opens a widget session over @p traj (which must outlive the
    /// session). The routing key is unused by the single-instance service
    /// (there is nothing to shard); see ServiceEndpoint.
    SessionId openSession(const md::Trajectory& traj,
                          viz::RinWidget::Options widgetOptions = {},
                          std::string_view routingKey = {}) override;

    /// Closes a session: queued requests resolve Rejected, an in-flight
    /// request finishes normally. Unknown ids are ignored.
    void closeSession(SessionId id) override;

    /// Submits one slider event; never blocks on computation. The returned
    /// future always resolves (Ok, OkDegraded, or Rejected). Throws
    /// std::invalid_argument for an unknown session id.
    std::future<RequestOutcome> submit(SessionId id, SliderEvent event) override;

    /// Blocks until every queue is empty and no request is in flight.
    void drain() override;

    /// Blocks until no session has a speculative task queued or running
    /// (tests/benches: make the background pipeline deterministic before
    /// reading counters or submitting a paced event).
    void waitSpeculationIdle();

    /// Rejects every queued request and closes every session (the worker
    /// pool stays up, so new sessions can be opened afterwards).
    void shutdown() override;

    count activeSessions() const override;

    // -- migration (replica scale-down) -----------------------------------

    /// Quiesces and removes one session for hand-off: stops scheduling its
    /// queue, waits for the in-flight request (if any) to finish, then
    /// returns the widget plus the *unexecuted* pending queue. Every
    /// pending slot ticks the "handed_off" counter, keeping this replica's
    /// accounting invariant
    ///   submitted + adopted == completed + coalesced + rejected + handed_off
    /// intact. The caller must guarantee no concurrent submit() for this
    /// id (the ReplicaSet's routing lock does). Throws
    /// std::invalid_argument for an unknown id.
    DetachedSession extractSession(SessionId id);

    /// Adopts a migrated session under a fresh id: the pending queue is
    /// re-enqueued (each slot ticks "adopted") and execution resumes in
    /// order. The wire stream is resynced with a forced keyframe so a
    /// binary-wire client reconnecting to this replica decodes a valid
    /// stream continuation.
    SessionId adoptSession(DetachedSession&& detached);

    /// In-submission-order log of the event kinds actually applied to the
    /// session's widget (coalesced-away events never appear). Test hook
    /// for the per-session ordering guarantee.
    std::vector<SliderEvent::Kind> appliedEvents(SessionId id) const;

    /// The session's widget, for tests and diagnostics (nullptr for an
    /// unknown id). The pointer is owned by the service and only safe to
    /// read while no request of this session is executing (e.g. after
    /// drain()).
    const viz::RinWidget* sessionWidget(SessionId id) const;

    /// Point-in-time copy of all serving metrics.
    MetricsSnapshot metrics() const override { return registry_.snapshot(); }

    /// The live registry (ReplicaSet merges replica registries through it).
    const MetricsRegistry& registry() const { return registry_; }

    obs::SloEngine* sloEngine() const override { return options_.slo.get(); }
    obs::TailSampler* tailSampler() const override { return options_.tailSampler.get(); }
    std::string sloJson() const override;

    /// SLO → ladder coupling: a floor under the degradation rung every
    /// subsequent request executes at. The ReplicaSet raises it to Approx
    /// while the latency budget fast-burns and drops it back on recovery;
    /// requests shed this way tick the "slo_degraded" counter. The queue-
    /// depth ladder still escalates above the floor.
    void setMinimumDegradeLevel(viz::DegradeLevel level);
    viz::DegradeLevel minimumDegradeLevel() const;

    const Options& options() const { return options_; }
    count workerCount() const { return pool_->size(); }

private:
    struct Session {
        SessionId id = 0;
        std::unique_ptr<viz::RinWidget> widget;
        std::deque<detail::QueuedRequest> queue;
        bool busy = false;   ///< a request of this session is executing
        bool frozen = false; ///< migration in progress: do not schedule
        std::vector<SliderEvent::Kind> appliedLog;
        // Speculative pipeline. Every enqueued task ticks "speculated" and
        // resolves to exactly one of spec_hit / spec_miss / spec_cancelled:
        // a completed speculation is "pending" until the next graph-moving
        // request judges it (hit/miss via UpdateTiming), everything else —
        // token fired, session closed, nothing predictable — is cancelled.
        CancelToken specToken;   ///< fired by any real submit / close
        bool specQueued = false; ///< a task is queued or running
        bool specPending = false; ///< completed, awaiting judgement
    };

    /// Schedules the session on the pool if it is idle with pending work.
    /// Caller must hold mutex_.
    void pumpLocked(const std::shared_ptr<Session>& session);
    /// Refreshes interactiveLive_; must follow every totalQueued_ /
    /// inFlight_ mutation (all happen under mutex_).
    void syncLiveLocked();

    /// Enqueues a background speculation task for an idle session when its
    /// widget opted in and predicts a next event. Caller must hold mutex_.
    void maybeSpeculateLocked(const std::shared_ptr<Session>& session);

    /// Resolves an unjudged pending speculation as cancelled (session
    /// closing / migrating / shutting down). Caller must hold mutex_.
    void cancelPendingSpeculationLocked(Session& session);

    /// Worker-side: pops and executes the session's next request.
    void runNext(std::shared_ptr<Session> session);

    /// Background-worker-side: runs one speculation attempt.
    void runSpeculation(std::shared_ptr<Session> session, CancelToken token);

    static void resolveAll(detail::QueuedRequest& request, const RequestOutcome& outcome);

    Options options_;
    std::unique_ptr<ThreadPool> pool_;
    MetricsRegistry registry_;
    /// viz::DegradeLevel rank; atomics so the SLO controller flips them
    /// without the service lock.
    std::atomic<int> minDegradeRank_{0};
    std::atomic<int> lastServedRank_{0}; ///< degrade_transition edge detect

    mutable std::mutex mutex_;
    std::condition_variable idle_;
    std::condition_variable specIdle_; ///< waitSpeculationIdle wakeup
    std::map<SessionId, std::shared_ptr<Session>> sessions_;
    SessionId nextId_ = 1;
    count totalQueued_ = 0;  ///< across sessions (drives the depth gauge)
    count inFlight_ = 0;
    /// Lock-free mirror of totalQueued_ + inFlight_, refreshed under
    /// mutex_ wherever either changes (syncLiveLocked). Read by a running
    /// speculation's abort callback between layout iterations — taking
    /// mutex_ there would contend with the very requests speculation must
    /// yield to.
    std::atomic<count> interactiveLive_{0};
    /// Speculation tasks enqueued on the pool and not yet finished. Kept
    /// globally (not derived from the session map) so waitSpeculationIdle
    /// also covers tasks whose session closed while they sat in the
    /// background queue — each such orphan still resolves (cancelled)
    /// when the pool runs it.
    count specTasksQueued_ = 0;
};

} // namespace rinkit::serve
