#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/cloud/cluster.hpp"
#include "src/cloud/resources.hpp"
#include "src/serve/service_endpoint.hpp"
#include "src/serve/session_service.hpp"

namespace rinkit::serve {

/// Consistent-hash ring with virtual nodes: keys spread evenly, and adding
/// or removing one replica moves only ~K/N of K keys (the sessions whose
/// arc changed owner) — every other sticky session stays where it is.
/// Hashing is deterministic (own FNV-1a/splitmix finalizer, not
/// std::hash), so routing is reproducible across runs and platforms.
class ConsistentHashRing {
public:
    explicit ConsistentHashRing(count vnodesPerReplica = 64)
        : vnodes_(vnodesPerReplica) {}

    void add(count replicaId);
    void remove(count replicaId);

    /// Owner of @p key: first vnode clockwise of the key's hash. Throws
    /// std::logic_error on an empty ring.
    count route(std::string_view key) const;

    count replicas() const { return ring_.size() / vnodes_; }
    bool empty() const { return ring_.empty(); }

private:
    static std::uint64_t mix(std::uint64_t x);
    static std::uint64_t hashKey(std::string_view key);

    count vnodes_;
    std::map<std::uint64_t, count> ring_; ///< vnode position -> replica id
};

/// Autoscaler thresholds and hysteresis. Namespace-scope NSDMI defaults —
/// the one Autoscaler constructor takes this struct.
struct AutoscalerOptions {
    count minReplicas = 1;
    count maxReplicas = 8;
    /// Scale-up pressure when the mean queued backlog per replica exceeds
    /// this (the queue-depth high-water signal).
    double queueDepthHighWater = 8.0;
    /// Scale-up pressure when p99 request latency exceeds this (ms).
    /// 0 disables the latency signal.
    double p99LatencyMsHigh = 0.0;
    /// Scale-up pressure when the shed rate (rejected + degraded over
    /// offered) exceeds this fraction.
    double shedRateHigh = 0.01;
    /// Scale-up pressure when the SLO engine's fast burn rate (max short-
    /// window burn of the page pair, see obs::SloEngine::fastBurnRate)
    /// exceeds this. Defaults to the page threshold, so the fleet scales
    /// on *budget burn* — before queues visibly back up — whenever an SLO
    /// engine feeds the signal. 0 disables it; deployments without an
    /// engine leave the signal at 0, which neither triggers scale-up nor
    /// blocks scale-down.
    double sloBurnRateHigh = 14.4;
    /// Scale-down eligibility: every signal below this fraction of its
    /// high threshold.
    double lowLoadFraction = 0.25;
    /// Hysteresis: consecutive hot ticks before scaling up, consecutive
    /// cold ticks before scaling down, and a dead time after any decision.
    /// Up reacts faster than down (shedding users costs more than an idle
    /// pod), and the cooldown gives a fresh replica time to take load
    /// before the signals are trusted again.
    count upAfterTicks = 2;
    count downAfterTicks = 5;
    count cooldownTicks = 3;
};

/// One tick's worth of the Prometheus signals the autoscaler watches.
struct AutoscalerSignals {
    double queueDepthPerReplica = 0.0;
    double p99LatencyMs = 0.0;
    double shedRate = 0.0;
    /// SloEngine::fastBurnRate() at this tick (0 without an engine).
    double sloFastBurnRate = 0.0;
    count replicas = 1;
};

/// Pure threshold/hysteresis policy: evaluate() consumes one signal sample
/// per tick and says Hold/Up/Down. No clock, no cluster — the caller
/// (ReplicaSet::tick, or the load generator's virtual-time loop) applies
/// the decision, which keeps the policy unit-testable with synthetic
/// square waves.
class Autoscaler {
public:
    enum class Decision { Hold, Up, Down };

    explicit Autoscaler(AutoscalerOptions options = {}) : options_(options) {}

    Decision evaluate(const AutoscalerSignals& signals);

    const AutoscalerOptions& options() const { return options_; }

private:
    AutoscalerOptions options_;
    count upStreak_ = 0;
    count downStreak_ = 0;
    count cooldown_ = 0;
};

/// ReplicaSet configuration. Namespace-scope NSDMI defaults — the one
/// ReplicaSet constructor takes this struct.
struct ReplicaSetOptions {
    count initialReplicas = 1;
    count vnodesPerReplica = 64;
    /// Per-replica service configuration. Its budget is the budget of ONE
    /// pod (each replica gets its own kPaperInstanceLimit-sized share);
    /// the ReplicaSet stamps replicaLabel per instance. Fleet capacity is
    /// bounded by cluster scheduling, not by duplicating one budget.
    SessionServiceOptions serviceTemplate{};
    AutoscalerOptions autoscaler{};
    /// Optional cluster binding: when set, every replica is backed by a
    /// pod of @p deploymentName in @p clusterNamespace — scale-up that the
    /// cluster cannot schedule is refused, and scale-down terminates the
    /// pod. The cluster must outlive the ReplicaSet. nullptr runs the
    /// replicas unbound (tests, benches without a cluster model).
    cloud::Cluster* cluster = nullptr;
    std::string clusterNamespace = "rinkit-serve";
    std::string deploymentName = "rin-serve";
};

/// N SessionService replicas behind one ServiceEndpoint: sessions are
/// sharded by consistent-hashing their routing key (sticky sessions), the
/// fleet scales up/down with loss-free session migration, and metrics
/// aggregate across replicas (including retired ones, so counters never
/// regress).
///
/// Scale-down migration protocol (scaleDown):
///  1. the victim replica's vnodes leave the ring — no new session routes
///     to it, and the routing lock blocks concurrent submits;
///  2. each of its sessions is quiesced (in-flight request completes) and
///     extracted with its *unexecuted* pending queue — every queued future
///     survives, accounted as handed_off on the source and adopted on the
///     target, so per-replica and global invariants both hold;
///  3. the target replica adopts the widget (caches, dyn state, wire
///     encoder travel along) and forces a wire keyframe, so the client's
///     next frame is a self-contained resync;
///  4. the victim's registry is merged into the retained aggregate, then
///     the replica (and its cluster pod, when bound) is torn down.
class ReplicaSet : public ServiceEndpoint {
public:
    using Options = ReplicaSetOptions;

    explicit ReplicaSet(Options options = {});
    ~ReplicaSet() override;

    ReplicaSet(const ReplicaSet&) = delete;
    ReplicaSet& operator=(const ReplicaSet&) = delete;

    // -- ServiceEndpoint ----------------------------------------------------

    SessionId openSession(const md::Trajectory& traj,
                          viz::RinWidget::Options widgetOptions = {},
                          std::string_view routingKey = {}) override;
    void closeSession(SessionId id) override;
    std::future<RequestOutcome> submit(SessionId id, SliderEvent event) override;
    void drain() override;
    void shutdown() override;
    count activeSessions() const override;

    /// Aggregate over live and retired replicas: counters summed,
    /// histograms merged at raw-bin granularity. Unlabeled, so dashboards
    /// written against a single instance read it unchanged.
    MetricsSnapshot metrics() const override;

    /// One labeled snapshot per live replica.
    std::vector<MetricsSnapshot> perReplicaMetrics() const override;

    count replicaCount() const override;

    obs::SloEngine* sloEngine() const override { return options_.serviceTemplate.slo.get(); }
    obs::TailSampler* tailSampler() const override {
        return options_.serviceTemplate.tailSampler.get();
    }
    std::string sloJson() const override;

    /// True while the SLO controller is flooring every replica at Approx
    /// (latency budget fast-burning; see tick()).
    bool sloDegradeActive() const;

    // -- scaling ------------------------------------------------------------

    /// Adds one replica (backed by a cluster pod when bound) and rebalances:
    /// sessions whose ring owner changed migrate to it. Returns false at
    /// maxReplicas or when the cluster cannot schedule the pod.
    bool scaleUp();

    /// Retires the newest replica after migrating every one of its
    /// sessions (loss-free; see class comment). Returns false at
    /// minReplicas.
    bool scaleDown();

    /// One autoscaler step: evaluates the SLO engine (when configured),
    /// samples the fleet signals (queue depth per replica, cumulative p99
    /// total latency, shed rate since the last tick, SLO fast burn rate),
    /// evaluates the policy, applies Up/Down, and returns the decision.
    /// Also drives the SLO → ladder coupling: the latency objective
    /// entering FastBurn floors every replica at DegradeLevel::Approx
    /// (logged as "slo_degrade_enter"); returning to Healthy lifts the
    /// floor ("slo_degrade_exit"). Call at a fixed cadence from one
    /// thread.
    Autoscaler::Decision tick();

    /// Which replica currently owns @p routingKey (diagnostics, tests).
    count routeOf(std::string_view routingKey) const;

    /// Replica owning session @p id (throws for unknown ids).
    count sessionReplica(SessionId id) const;

    /// The session's widget (nullptr for unknown ids); same safety rules
    /// as SessionService::sessionWidget.
    const viz::RinWidget* sessionWidget(SessionId id) const;

    const Options& options() const { return options_; }

private:
    struct Replica {
        count id = 0;
        std::unique_ptr<SessionService> service;
    };

    /// A global session id's current home.
    struct Route {
        count replicaId = 0;
        SessionId localId = 0;
        std::string key;
    };

    /// Appends a new replica (no ring/rebalance side effects). Caller
    /// holds mutex_.
    Replica& addReplicaLocked();

    /// Moves one routed session between replicas. Caller holds mutex_ (so
    /// no submit can race the extract).
    void migrateLocked(SessionId globalId, Route& route, count targetReplicaId);

    SessionService& serviceOf(count replicaId);
    const SessionService& serviceOf(count replicaId) const;

    Options options_;
    mutable std::mutex mutex_;
    std::vector<Replica> replicas_;
    ConsistentHashRing ring_;
    std::map<SessionId, Route> routes_;
    SessionId nextId_ = 1;
    count nextReplicaId_ = 0;
    /// Counters/histograms of retired replicas, folded in at scale-down so
    /// the aggregate view never loses history.
    MetricsRegistry retired_;
    Autoscaler autoscaler_;
    /// Shed-rate window state: counter values at the previous tick.
    count lastOffered_ = 0;
    count lastShed_ = 0;
    /// SLO → ladder coupling state: true while every replica is floored at
    /// Approx because the latency budget fast-burns.
    bool sloDegradeActive_ = false;
};

} // namespace rinkit::serve
