#pragma once

#include <future>
#include <string>
#include <string_view>
#include <vector>

#include "src/md/trajectory.hpp"
#include "src/serve/metrics.hpp"
#include "src/viz/widget.hpp"

namespace rinkit::obs {
class SloEngine;
class TailSampler;
} // namespace rinkit::obs

namespace rinkit::serve {

/// Opaque handle to one user's widget session.
using SessionId = count;

/// One interaction from a client: a widget slider move (or a refresh
/// button press) plus an optional latency deadline.
struct SliderEvent {
    enum class Kind { Frame, Cutoff, Measure, Refresh };

    Kind kind = Kind::Refresh;
    index frame = 0;
    double cutoff = 4.5;
    viz::Measure measure = viz::Measure::Degree;
    /// Queue-time budget in ms; a request that waits longer is executed
    /// degraded and flagged. 0 = use the service default.
    double deadlineMs = 0.0;

    static SliderEvent setFrame(index frame, double deadlineMs = 0.0);
    static SliderEvent setCutoff(double cutoff, double deadlineMs = 0.0);
    static SliderEvent setMeasure(viz::Measure measure, double deadlineMs = 0.0);
    static SliderEvent refresh(double deadlineMs = 0.0);
};

/// Stable lowercase name of an event kind ("frame", "cutoff", "measure",
/// "refresh") — span attributes and logs.
std::string_view kindName(SliderEvent::Kind kind);

enum class RequestStatus {
    Ok,         ///< served exactly
    OkDegraded, ///< served, but shed to the degraded path
    Rejected,   ///< admission control refused it (queue at budget / session closed)
};

/// How a request fared against the deployment's SLOs (see obs::SloEngine):
/// Ok = inside every budget, DeadlineMissed = finished past its latency
/// deadline, Rejected = shed by admission control.
enum class SloVerdict { Ok, DeadlineMissed, Rejected };

std::string_view sloVerdictName(SloVerdict verdict);

/// What a submitted request resolved to. Every accepted request's future
/// resolves exactly once — coalesced requests resolve with the outcome of
/// the event that superseded them.
struct RequestOutcome {
    RequestStatus status = RequestStatus::Ok;
    viz::RinWidget::UpdateTiming timing; ///< zeros when Rejected
    double queueMs = 0.0;                ///< time spent waiting for a worker
    count coalescedEvents = 0;           ///< older queued events this one absorbed
    bool deadlineMissed = false;         ///< queue wait exceeded the deadline
    std::uint64_t traceId = 0;           ///< this request's trace (0 if untraced)
    bool traceRetained = false;          ///< tail sampler kept the span tree
    SloVerdict sloVerdict = SloVerdict::Ok;

    bool accepted() const { return status != RequestStatus::Rejected; }
    bool degraded() const { return status == RequestStatus::OkDegraded; }
};

/// The serving API boundary: what a gateway (JupyterHub) needs from the
/// layer that executes widget sessions, and nothing more. Both the
/// single-instance SessionService and the replicated ReplicaSet implement
/// it, so "one pod" and "N pods behind a hash ring" are swappable without
/// any caller change.
///
/// Contract highlights:
///  - openSession's @p routingKey is the sticky-session identity (a user
///    name, a client IP): implementations that shard sessions hash it onto
///    their replica ring, and the same key keeps routing to the same
///    replica while the replica set is stable. Single-instance
///    implementations may ignore it. An empty key means "derive one from
///    the session id".
///  - submit never blocks on computation and its future always resolves
///    (Ok, OkDegraded, or Rejected), even across replica scale-down:
///    queued requests are migrated with their session, not dropped.
///  - metrics() is the aggregate view over all replicas (counters summed,
///    histograms merged), so dashboards written against a single instance
///    keep working; perReplicaMetrics() exposes the per-replica breakdown.
class ServiceEndpoint {
public:
    virtual ~ServiceEndpoint() = default;

    /// Opens a widget session over @p traj (which must outlive the
    /// session). Returns the id used for submit/close.
    virtual SessionId openSession(const md::Trajectory& traj,
                                  viz::RinWidget::Options widgetOptions = {},
                                  std::string_view routingKey = {}) = 0;

    /// Closes a session: queued requests resolve Rejected, an in-flight
    /// request finishes normally. Unknown ids are ignored.
    virtual void closeSession(SessionId id) = 0;

    /// Submits one slider event; never blocks on computation. The returned
    /// future always resolves. Throws std::invalid_argument for an unknown
    /// session id.
    virtual std::future<RequestOutcome> submit(SessionId id, SliderEvent event) = 0;

    /// Blocks until every queue is empty and no request is in flight.
    virtual void drain() = 0;

    /// Rejects everything queued and closes every session; the endpoint
    /// stays alive but serves nothing until sessions are reopened.
    virtual void shutdown() = 0;

    virtual count activeSessions() const = 0;

    /// Point-in-time aggregate of all serving metrics (all replicas).
    virtual MetricsSnapshot metrics() const = 0;

    /// Per-replica metric snapshots, each labeled with its replica id.
    /// Single-instance endpoints return their one (unlabeled) snapshot.
    virtual std::vector<MetricsSnapshot> perReplicaMetrics() const { return {metrics()}; }

    /// Number of serving replicas behind this endpoint.
    virtual count replicaCount() const { return 1; }

    /// The deployment's SLO engine (nullptr when none is configured).
    virtual obs::SloEngine* sloEngine() const { return nullptr; }

    /// The deployment's tail sampler (nullptr when none is configured).
    virtual obs::TailSampler* tailSampler() const { return nullptr; }

    /// JSON body of the /debug/slo route: the engine's objective statuses,
    /// "[]"-like empty object when no engine is configured.
    virtual std::string sloJson() const { return "{\"objectives\":[]}"; }
};

} // namespace rinkit::serve
