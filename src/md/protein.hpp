#pragma once

#include <string>
#include <vector>

#include "src/support/point3.hpp"
#include "src/support/types.hpp"

namespace rinkit::md {

/// Secondary-structure class of a residue. Used both by the geometry
/// builders (which place atoms accordingly) and by the Fig. 3 style
/// analyses ("communities track the alpha-helices").
enum class SecondaryStructure { Helix, Strand, Coil };

/// One atom: a name (PDB convention: "CA", "CB", "N", "C", "O"), an element
/// symbol and a position in Angstroms.
struct Atom {
    std::string name;
    std::string element;
    Point3 position;
};

/// One amino-acid residue: a 3-letter code, its atoms, and the secondary
/// structure element it belongs to. `ssIndex` numbers the structure
/// elements consecutively (helix 0, helix 1, ...) so tests can compare
/// detected communities against them.
struct Residue {
    std::string name = "ALA";
    std::vector<Atom> atoms;
    SecondaryStructure ss = SecondaryStructure::Coil;
    index ssIndex = 0;

    /// Position of the C-alpha atom; throws if the residue has none.
    const Point3& alphaCarbon() const;

    /// Unweighted centroid of all atoms (all-atom center of mass with unit
    /// masses; adequate for contact detection).
    Point3 centerOfMass() const;

    /// Smallest distance between any atom of *this and any atom of @p o.
    double minimumDistance(const Residue& o) const;
};

/// A protein conformation: a chain of residues with coordinates.
///
/// This is the static structure; time series of conformations live in
/// md::Trajectory. The RIN pipeline consumes Protein through the three
/// distance criteria only, so any source (synthetic builder, PDB file)
/// works interchangeably.
class Protein {
public:
    Protein() = default;
    Protein(std::string name, std::vector<Residue> residues)
        : name_(std::move(name)), residues_(std::move(residues)) {}

    const std::string& name() const { return name_; }
    count size() const { return residues_.size(); }
    const Residue& residue(index i) const { return residues_.at(i); }
    Residue& residue(index i) { return residues_.at(i); }
    const std::vector<Residue>& residues() const { return residues_; }

    /// Total number of atoms.
    count atomCount() const;

    /// C-alpha positions of all residues, in chain order.
    std::vector<Point3> alphaCarbons() const;

    /// Flat list of all atom positions (chain order, then atom order).
    std::vector<Point3> atomPositions() const;

    /// Replaces all atom positions from a flat list (inverse of
    /// atomPositions()); throws if the count does not match.
    void setAtomPositions(const std::vector<Point3>& flat);

    /// Geometric bounding box.
    Aabb bounds() const;

    /// Secondary-structure element index per residue.
    std::vector<index> secondaryStructureLabels() const;

    /// Radius of gyration of the C-alpha trace — the classic folding
    /// order parameter; synthetic unfolding visibly increases it.
    double radiusOfGyration() const;

private:
    std::string name_;
    std::vector<Residue> residues_;
};

} // namespace rinkit::md
