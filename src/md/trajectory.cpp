#include "src/md/trajectory.hpp"

#include <cmath>
#include <stdexcept>

#include "src/md/synthetic.hpp"
#include "src/support/random.hpp"

namespace rinkit::md {

void Trajectory::addFrame(std::vector<Point3> positions) {
    if (positions.size() != topology_.atomCount()) {
        throw std::invalid_argument("Trajectory: frame atom count mismatch");
    }
    frames_.push_back(std::move(positions));
}

Protein Trajectory::proteinAtFrame(index f) const {
    Protein p = topology_;
    p.setAtomPositions(frames_.at(f));
    return p;
}

std::vector<double> Trajectory::radiusOfGyrationSeries() const {
    std::vector<double> out;
    out.reserve(frames_.size());
    for (index f = 0; f < frames_.size(); ++f) {
        out.push_back(proteinAtFrame(f).radiusOfGyration());
    }
    return out;
}

Trajectory TrajectoryGenerator::generate(const Protein& folded) const {
    if (params_.frames == 0) throw std::invalid_argument("TrajectoryGenerator: 0 frames");

    const Protein extended = extendedConformation(folded);
    const auto foldedPos = folded.atomPositions();
    const auto extendedPos = extended.atomPositions();
    if (foldedPos.size() != extendedPos.size()) {
        throw std::logic_error("TrajectoryGenerator: conformation atom mismatch");
    }
    const Point3 center = folded.bounds().center();

    Rng rng(params_.seed);
    Trajectory traj(folded);
    constexpr double kPi = 3.14159265358979323846;

    for (count f = 0; f < params_.frames; ++f) {
        const double t = static_cast<double>(f) /
                         static_cast<double>(std::max<count>(params_.frames - 1, 1));

        // Folding coordinate: lambda = 1 folded, 0 extended. Smooth round
        // trips via a squared cosine.
        double lambda = 1.0;
        if (params_.unfoldingEvents > 0) {
            const double phase = t * static_cast<double>(params_.unfoldingEvents) * kPi;
            const double c = std::cos(phase);
            lambda = c * c;
        }

        // Breathing: slow volume oscillation around the folded center.
        const double breathe =
            1.0 + params_.breathingAmplitude *
                      std::sin(2.0 * kPi * static_cast<double>(f) /
                               static_cast<double>(std::max<count>(params_.breathingPeriod, 1)));

        std::vector<Point3> pos(foldedPos.size());
        for (count i = 0; i < pos.size(); ++i) {
            const Point3 foldedScaled = center + (foldedPos[i] - center) * breathe;
            Point3 p = foldedScaled * lambda + extendedPos[i] * (1.0 - lambda);
            p += Point3{rng.normal(0.0, params_.thermalSigma),
                        rng.normal(0.0, params_.thermalSigma),
                        rng.normal(0.0, params_.thermalSigma)};
            pos[i] = p;
        }
        traj.addFrame(std::move(pos));
    }
    return traj;
}

} // namespace rinkit::md
