#pragma once

#include <iosfwd>
#include <string>

#include "src/md/protein.hpp"
#include "src/md/trajectory.hpp"

/// Structure/trajectory file formats: a pragmatic subset of PDB for single
/// conformations and XYZ for multi-frame trajectories. Enough to exchange
/// data with standard viewers and to persist synthetic trajectories.
namespace rinkit::md::io {

/// Writes ATOM records (one MODEL). Residue and atom numbering is 1-based.
void writePdb(const Protein& p, std::ostream& out);
void writePdbFile(const Protein& p, const std::string& path);

/// Reads ATOM records; residues are split on the residue sequence number.
/// HETATM and all other records are ignored.
Protein readPdb(std::istream& in, const std::string& name = "pdb");
Protein readPdbFile(const std::string& path);

/// Multi-frame XYZ: per frame "natoms\ncomment\n(elem x y z)*".
void writeXyzTrajectory(const Trajectory& traj, std::ostream& out);
void writeXyzTrajectoryFile(const Trajectory& traj, const std::string& path);

/// Reads frames from XYZ into a trajectory over @p topology (atom counts
/// must match).
Trajectory readXyzTrajectory(std::istream& in, const Protein& topology);
Trajectory readXyzTrajectoryFile(const std::string& path, const Protein& topology);

} // namespace rinkit::md::io
