#include "src/md/align.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace rinkit::md {

namespace {

using Mat3 = std::array<std::array<double, 3>, 3>;

Mat3 multiply(const Mat3& a, const Mat3& b) {
    Mat3 c{};
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            for (int k = 0; k < 3; ++k) c[i][j] += a[i][k] * b[k][j];
        }
    }
    return c;
}

Mat3 transpose(const Mat3& a) {
    Mat3 t{};
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) t[i][j] = a[j][i];
    }
    return t;
}

double determinant(const Mat3& m) {
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

/// Cyclic Jacobi eigendecomposition of a symmetric 3x3 matrix:
/// A = V diag(w) V^T with V's columns the eigenvectors.
void jacobiEigen(Mat3 a, std::array<double, 3>& w, Mat3& v) {
    v = {{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};
    for (int sweep = 0; sweep < 64; ++sweep) {
        double off = 0.0;
        for (int p = 0; p < 3; ++p) {
            for (int q = p + 1; q < 3; ++q) off += a[p][q] * a[p][q];
        }
        if (off < 1e-24) break;
        for (int p = 0; p < 3; ++p) {
            for (int q = p + 1; q < 3; ++q) {
                if (std::abs(a[p][q]) < 1e-18) continue;
                const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                // Rotate A in the (p, q) plane.
                for (int k = 0; k < 3; ++k) {
                    const double akp = a[k][p], akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for (int k = 0; k < 3; ++k) {
                    const double apk = a[p][k], aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for (int k = 0; k < 3; ++k) {
                    const double vkp = v[k][p], vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    for (int i = 0; i < 3; ++i) w[i] = a[i][i];
}

Point3 centroid(const std::vector<Point3>& pts) {
    Point3 c;
    for (const auto& p : pts) c += p;
    return pts.empty() ? c : c / static_cast<double>(pts.size());
}

/// Optimal rotation R (proper, det = +1) minimizing |R*mobile - reference|
/// for centered point sets (Kabsch via eigen-decomposition of H^T H).
Mat3 kabschRotation(const std::vector<Point3>& refC, const std::vector<Point3>& mobC) {
    // Covariance H = sum mob_i ref_i^T (so that R = ... maps mobile onto ref).
    Mat3 h{};
    for (size_t i = 0; i < refC.size(); ++i) {
        const double m[3] = {mobC[i].x, mobC[i].y, mobC[i].z};
        const double r[3] = {refC[i].x, refC[i].y, refC[i].z};
        for (int a = 0; a < 3; ++a) {
            for (int b = 0; b < 3; ++b) h[a][b] += m[a] * r[b];
        }
    }

    // SVD via eigendecomposition: H^T H = V S^2 V^T, U = H V / s.
    const Mat3 hth = multiply(transpose(h), h);
    std::array<double, 3> w{};
    Mat3 v{};
    jacobiEigen(hth, w, v);

    // Sort eigenpairs descending so the reflection fix targets the
    // smallest singular value.
    std::array<int, 3> order{0, 1, 2};
    for (int i = 0; i < 3; ++i) {
        for (int j = i + 1; j < 3; ++j) {
            if (w[order[j]] > w[order[i]]) std::swap(order[i], order[j]);
        }
    }

    Mat3 vs{}, us{};
    for (int col = 0; col < 3; ++col) {
        const int src = order[col];
        const double s = std::sqrt(std::max(w[src], 0.0));
        double u[3] = {0, 0, 0};
        if (s > 1e-12) {
            for (int row = 0; row < 3; ++row) {
                for (int k = 0; k < 3; ++k) u[row] += h[row][k] * v[k][src];
                u[row] /= s;
            }
        } else {
            // Degenerate direction (planar/linear point sets): complete an
            // orthonormal basis via the cross product of the first two.
            u[0] = us[1][0] * us[2][1] - us[2][0] * us[1][1];
            u[1] = us[2][0] * us[0][1] - us[0][0] * us[2][1];
            u[2] = us[0][0] * us[1][1] - us[1][0] * us[0][1];
        }
        for (int row = 0; row < 3; ++row) {
            vs[row][col] = v[row][src];
            us[row][col] = u[row];
        }
    }

    // R = V U^T maps mobile -> reference; fix reflections to keep R proper.
    Mat3 r = multiply(vs, transpose(us));
    if (determinant(r) < 0.0) {
        for (int row = 0; row < 3; ++row) vs[row][2] = -vs[row][2];
        r = multiply(vs, transpose(us));
    }
    return r;
}

Point3 apply(const Mat3& r, const Point3& p) {
    return {r[0][0] * p.x + r[0][1] * p.y + r[0][2] * p.z,
            r[1][0] * p.x + r[1][1] * p.y + r[1][2] * p.z,
            r[2][0] * p.x + r[2][1] * p.y + r[2][2] * p.z};
}

} // namespace

std::vector<Point3> superpose(const std::vector<Point3>& reference,
                              const std::vector<Point3>& mobile) {
    if (reference.size() != mobile.size()) {
        throw std::invalid_argument("superpose: point counts differ");
    }
    if (reference.empty()) return {};
    const Point3 cRef = centroid(reference);
    const Point3 cMob = centroid(mobile);
    std::vector<Point3> refC(reference.size()), mobC(mobile.size());
    for (size_t i = 0; i < reference.size(); ++i) {
        refC[i] = reference[i] - cRef;
        mobC[i] = mobile[i] - cMob;
    }
    const Mat3 r = kabschRotation(refC, mobC);
    std::vector<Point3> out(mobile.size());
    for (size_t i = 0; i < mobile.size(); ++i) out[i] = apply(r, mobC[i]) + cRef;
    return out;
}

double rmsd(const std::vector<Point3>& reference, const std::vector<Point3>& mobile) {
    const auto aligned = superpose(reference, mobile);
    if (aligned.empty()) return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        sum += aligned[i].squaredDistance(reference[i]);
    }
    return std::sqrt(sum / static_cast<double>(reference.size()));
}

std::vector<double> rmsdSeries(const Trajectory& traj, index referenceFrame) {
    const auto ref = traj.proteinAtFrame(referenceFrame).alphaCarbons();
    std::vector<double> out;
    out.reserve(traj.frameCount());
    for (index f = 0; f < traj.frameCount(); ++f) {
        out.push_back(rmsd(ref, traj.proteinAtFrame(f).alphaCarbons()));
    }
    return out;
}

} // namespace rinkit::md
