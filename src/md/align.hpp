#pragma once

#include <vector>

#include "src/md/trajectory.hpp"
#include "src/support/point3.hpp"

namespace rinkit::md {

/// Structure superposition and RMSD — the standard MD-analysis pair
/// (MDTraj's `superpose`/`rmsd` in the paper's pipeline).
///
/// Kabsch algorithm: the optimal rotation is found from the covariance
/// matrix of the centered point sets via a cyclic-Jacobi eigen-solve of
/// C^T C (no external linear-algebra dependency). Handles the reflection
/// case so the returned transform is a proper rotation.

/// Root-mean-square deviation after optimal superposition of @p mobile
/// onto @p reference (same size required).
double rmsd(const std::vector<Point3>& reference, const std::vector<Point3>& mobile);

/// Returns @p mobile optimally superposed onto @p reference.
std::vector<Point3> superpose(const std::vector<Point3>& reference,
                              const std::vector<Point3>& mobile);

/// C-alpha RMSD of every frame of @p traj against frame @p referenceFrame.
/// The classic folding trace: flat for fluctuation, spiking at unfolding.
std::vector<double> rmsdSeries(const Trajectory& traj, index referenceFrame = 0);

} // namespace rinkit::md
