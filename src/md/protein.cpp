#include "src/md/protein.hpp"

#include <stdexcept>

namespace rinkit::md {

const Point3& Residue::alphaCarbon() const {
    for (const auto& a : atoms) {
        if (a.name == "CA") return a.position;
    }
    throw std::runtime_error("Residue: no C-alpha atom");
}

Point3 Residue::centerOfMass() const {
    if (atoms.empty()) throw std::runtime_error("Residue: no atoms");
    Point3 sum;
    for (const auto& a : atoms) sum += a.position;
    return sum / static_cast<double>(atoms.size());
}

double Residue::minimumDistance(const Residue& o) const {
    double best = infdist;
    for (const auto& a : atoms) {
        for (const auto& b : o.atoms) {
            best = std::min(best, a.position.squaredDistance(b.position));
        }
    }
    return best == infdist ? infdist : std::sqrt(best);
}

count Protein::atomCount() const {
    count total = 0;
    for (const auto& r : residues_) total += r.atoms.size();
    return total;
}

std::vector<Point3> Protein::alphaCarbons() const {
    std::vector<Point3> out;
    out.reserve(residues_.size());
    for (const auto& r : residues_) out.push_back(r.alphaCarbon());
    return out;
}

std::vector<Point3> Protein::atomPositions() const {
    std::vector<Point3> out;
    out.reserve(atomCount());
    for (const auto& r : residues_) {
        for (const auto& a : r.atoms) out.push_back(a.position);
    }
    return out;
}

void Protein::setAtomPositions(const std::vector<Point3>& flat) {
    if (flat.size() != atomCount()) {
        throw std::invalid_argument("Protein: atom position count mismatch");
    }
    count i = 0;
    for (auto& r : residues_) {
        for (auto& a : r.atoms) a.position = flat[i++];
    }
}

Aabb Protein::bounds() const {
    Aabb box;
    for (const auto& r : residues_) {
        for (const auto& a : r.atoms) box.expand(a.position);
    }
    return box;
}

std::vector<index> Protein::secondaryStructureLabels() const {
    std::vector<index> out;
    out.reserve(residues_.size());
    for (const auto& r : residues_) out.push_back(r.ssIndex);
    return out;
}

double Protein::radiusOfGyration() const {
    const auto cas = alphaCarbons();
    if (cas.empty()) return 0.0;
    Point3 mean;
    for (const auto& p : cas) mean += p;
    mean /= static_cast<double>(cas.size());
    double sum = 0.0;
    for (const auto& p : cas) sum += p.squaredDistance(mean);
    return std::sqrt(sum / static_cast<double>(cas.size()));
}

} // namespace rinkit::md
