#pragma once

#include <cstdint>
#include <vector>

#include "src/md/protein.hpp"

namespace rinkit::md {

/// A time series of conformations of one protein — the MD "trajectory"
/// (MDTraj role in the paper's pipeline). Frames store flat atom-position
/// arrays against a fixed topology (the template protein).
class Trajectory {
public:
    Trajectory() = default;
    explicit Trajectory(Protein topology) : topology_(std::move(topology)) {}

    const Protein& topology() const { return topology_; }

    count frameCount() const { return frames_.size(); }

    /// Appends a frame; must contain one position per atom of the topology.
    void addFrame(std::vector<Point3> positions);

    /// Flat atom positions of frame @p f.
    const std::vector<Point3>& frame(index f) const { return frames_.at(f); }

    /// The protein with frame @p f's coordinates applied.
    Protein proteinAtFrame(index f) const;

    /// Radius of gyration per frame (folding order parameter).
    std::vector<double> radiusOfGyrationSeries() const;

private:
    Protein topology_;
    std::vector<std::vector<Point3>> frames_;
};

/// Generates synthetic MD trajectories.
///
/// SUBSTITUTION (see DESIGN.md): stands in for the proprietary DESRES
/// fast-folding simulations. The model superimposes, per frame:
///   1. thermal fluctuation  - i.i.d. Gaussian displacement per atom,
///   2. breathing            - a slow global scale oscillation,
///   3. folding/unfolding    - interpolation between the folded input and
///      its extended conformation, driven by a smooth folding coordinate
///      lambda(t) in [0, 1] that performs `unfoldingEvents` round trips.
/// The result exercises exactly what the widget consumes: per-frame
/// coordinates whose RIN topology changes over time, drastically so at
/// unfolding events.
class TrajectoryGenerator {
public:
    struct Parameters {
        count frames = 50;
        double thermalSigma = 0.25;     ///< A, per-atom Gaussian noise
        double breathingAmplitude = 0.03; ///< relative scale oscillation
        count breathingPeriod = 20;     ///< frames per breathing cycle
        count unfoldingEvents = 0;      ///< folding round trips over the run
        std::uint64_t seed = 1;
    };

    TrajectoryGenerator() : TrajectoryGenerator(Parameters{}) {}
    explicit TrajectoryGenerator(Parameters params) : params_(params) {}

    /// Simulates a trajectory around the folded conformation @p folded.
    Trajectory generate(const Protein& folded) const;

private:
    Parameters params_;
};

} // namespace rinkit::md
