#include "src/md/md_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rinkit::md::io {

void writePdb(const Protein& p, std::ostream& out) {
    count serial = 1;
    for (index ri = 0; ri < p.size(); ++ri) {
        const Residue& r = p.residue(ri);
        for (const auto& a : r.atoms) {
            char line[96];
            std::snprintf(line, sizeof(line),
                          "ATOM  %5llu %-4s %3s A%4u    %8.3f%8.3f%8.3f  1.00  0.00          %2s",
                          static_cast<unsigned long long>(serial++), a.name.c_str(),
                          r.name.c_str(), static_cast<unsigned>(ri + 1), a.position.x,
                          a.position.y, a.position.z, a.element.c_str());
            out << line << '\n';
        }
    }
    out << "END\n";
}

void writePdbFile(const Protein& p, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    writePdb(p, out);
}

Protein readPdb(std::istream& in, const std::string& name) {
    std::vector<Residue> residues;
    long currentSeq = -1;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("ATOM", 0) != 0) continue;
        if (line.size() < 54) throw std::runtime_error("PDB: truncated ATOM record");
        const std::string atomName = line.substr(12, 4);
        const std::string resName = line.substr(17, 3);
        const long resSeq = std::stol(line.substr(22, 4));
        const double x = std::stod(line.substr(30, 8));
        const double y = std::stod(line.substr(38, 8));
        const double z = std::stod(line.substr(46, 8));
        std::string element = line.size() >= 78 ? line.substr(76, 2) : " C";

        auto trim = [](std::string s) {
            const auto b = s.find_first_not_of(' ');
            const auto e = s.find_last_not_of(' ');
            return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
        };

        if (resSeq != currentSeq) {
            residues.emplace_back();
            residues.back().name = trim(resName);
            currentSeq = resSeq;
        }
        residues.back().atoms.push_back({trim(atomName), trim(element), {x, y, z}});
    }
    if (residues.empty()) throw std::runtime_error("PDB: no ATOM records");
    return Protein(name, std::move(residues));
}

Protein readPdbFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    return readPdb(in, path);
}

void writeXyzTrajectory(const Trajectory& traj, std::ostream& out) {
    out.precision(12); // lossless enough for Angstrom-scale round trips
    // Element per atom from the topology, in flat order.
    std::vector<std::string> elements;
    for (const auto& r : traj.topology().residues()) {
        for (const auto& a : r.atoms) elements.push_back(a.element);
    }
    for (index f = 0; f < traj.frameCount(); ++f) {
        const auto& pos = traj.frame(f);
        out << pos.size() << '\n';
        out << "frame " << f << '\n';
        for (count i = 0; i < pos.size(); ++i) {
            out << elements[i] << ' ' << pos[i].x << ' ' << pos[i].y << ' ' << pos[i].z
                << '\n';
        }
    }
}

void writeXyzTrajectoryFile(const Trajectory& traj, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    writeXyzTrajectory(traj, out);
}

Trajectory readXyzTrajectory(std::istream& in, const Protein& topology) {
    Trajectory traj(topology);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        const count natoms = std::stoull(line);
        if (natoms != topology.atomCount()) {
            throw std::runtime_error("XYZ: frame atom count does not match topology");
        }
        if (!std::getline(in, line)) throw std::runtime_error("XYZ: missing comment line");
        std::vector<Point3> pos(natoms);
        for (count i = 0; i < natoms; ++i) {
            if (!std::getline(in, line)) throw std::runtime_error("XYZ: truncated frame");
            std::istringstream ls(line);
            std::string elem;
            if (!(ls >> elem >> pos[i].x >> pos[i].y >> pos[i].z)) {
                throw std::runtime_error("XYZ: malformed atom line: " + line);
            }
        }
        traj.addFrame(std::move(pos));
    }
    return traj;
}

Trajectory readXyzTrajectoryFile(const std::string& path, const Protein& topology) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    return readXyzTrajectory(in, topology);
}

} // namespace rinkit::md::io
