#include "src/md/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace rinkit::md {

namespace {

constexpr double kHelixRise = 1.5;    // A per residue along the axis
constexpr double kHelixTwist = 100.0; // degrees per residue
constexpr double kHelixRadius = 2.3;  // A, C-alpha radius
constexpr double kStrandRise = 3.3;   // A per residue
constexpr double kCoilSpacing = 3.6;  // A between consecutive coil CAs
constexpr double kLaneSpacing = 9.0;  // A between packed segment axes
constexpr double kPi = 3.14159265358979323846;

/// The 20 standard residues, cycled through for variety in PDB output.
const char* kResidueNames[] = {"ALA", "ARG", "ASN", "ASP", "CYS", "GLN", "GLU",
                               "GLY", "HIS", "ILE", "LEU", "LYS", "MET", "PHE",
                               "PRO", "SER", "THR", "TRP", "TYR", "VAL"};

/// C-alpha trace of one segment laid along +z or -z in its lane.
std::vector<Point3> segmentTrace(const Segment& seg, const Point3& laneOrigin,
                                 bool reversed) {
    std::vector<Point3> cas;
    cas.reserve(seg.length);
    for (count j = 0; j < seg.length; ++j) {
        const double t = static_cast<double>(j);
        Point3 p;
        if (seg.type == SecondaryStructure::Helix) {
            const double angle = t * kHelixTwist * kPi / 180.0;
            p = {kHelixRadius * std::cos(angle), kHelixRadius * std::sin(angle),
                 t * kHelixRise};
        } else { // Strand (coil handled by the caller as a connector)
            p = {((j % 2 == 0) ? 0.5 : -0.5), 0.0, t * kStrandRise};
        }
        if (reversed) p.z = -p.z;
        cas.push_back(laneOrigin + p);
    }
    return cas;
}

/// Decorates a C-alpha trace with N, CA, C, O, CB atoms per residue.
std::vector<Residue> decorate(const std::vector<Point3>& cas,
                              const std::vector<SecondaryStructure>& ss,
                              const std::vector<index>& ssIdx) {
    const count n = cas.size();
    // Barycenter: side chains (CB) point away from it, mimicking the
    // hydrophobic core packing of a folded protein.
    Point3 center;
    for (const auto& p : cas) center += p;
    if (n > 0) center /= static_cast<double>(n);

    std::vector<Residue> residues(n);
    for (count i = 0; i < n; ++i) {
        // Chain tangent from neighboring CAs.
        const Point3 prev = i > 0 ? cas[i - 1] : cas[i];
        const Point3 next = i + 1 < n ? cas[i + 1] : cas[i];
        Point3 tangent = (next - prev).normalized();
        if (tangent.norm() == 0.0) tangent = {0, 0, 1};
        Point3 outward = (cas[i] - center).normalized();
        if (outward.norm() == 0.0) outward = {1, 0, 0};
        // Orthogonalize outward against the tangent.
        Point3 normal = (outward - tangent * outward.dot(tangent)).normalized();
        if (normal.norm() == 0.0) normal = tangent.cross(Point3{0, 0, 1}).normalized();
        if (normal.norm() == 0.0) normal = {1, 0, 0};

        Residue& r = residues[i];
        r.name = kResidueNames[i % 20];
        r.ss = ss[i];
        r.ssIndex = ssIdx[i];
        r.atoms = {
            {"N", "N", cas[i] - tangent * 1.2},
            {"CA", "C", cas[i]},
            {"C", "C", cas[i] + tangent * 1.2},
            {"O", "O", cas[i] + tangent * 1.2 + normal * 1.0},
            {"CB", "C", cas[i] + normal * 1.53},
        };
    }
    return residues;
}

} // namespace

Protein buildProtein(const std::string& name, const std::vector<Segment>& blueprint) {
    if (blueprint.empty()) throw std::invalid_argument("buildProtein: empty blueprint");
    for (const auto& seg : blueprint) {
        if (seg.length == 0) throw std::invalid_argument("buildProtein: empty segment");
    }

    // Pass 1: place all structured (helix/strand) segments in packed lanes;
    // antiparallel neighbors so chain ends meet at alternating z sides.
    std::vector<std::vector<Point3>> traces(blueprint.size());
    count structuredSeen = 0;
    for (count si = 0; si < blueprint.size(); ++si) {
        const Segment& seg = blueprint[si];
        if (seg.type == SecondaryStructure::Coil) continue;
        const count lane = structuredSeen++;
        const bool reversed = (lane % 2 == 1);
        const double rise = seg.type == SecondaryStructure::Helix ? kHelixRise : kStrandRise;
        const Point3 origin{static_cast<double>(lane % 3) * kLaneSpacing,
                            static_cast<double>(lane / 3) * kLaneSpacing,
                            reversed ? rise * static_cast<double>(seg.length - 1) : 0.0};
        traces[si] = segmentTrace(seg, origin, reversed);
    }

    // Pass 2: emit the chain, filling coils between the actual anchor CAs
    // of their neighboring structured segments.
    std::vector<Point3> cas;
    std::vector<SecondaryStructure> ss;
    std::vector<index> ssIdx;

    auto nextAnchor = [&](count si) -> const Point3* {
        for (count k = si + 1; k < blueprint.size(); ++k) {
            if (!traces[k].empty()) return &traces[k].front();
        }
        return nullptr;
    };

    for (count si = 0; si < blueprint.size(); ++si) {
        const Segment& seg = blueprint[si];
        if (seg.type != SecondaryStructure::Coil) {
            for (const auto& p : traces[si]) {
                cas.push_back(p);
                ss.push_back(seg.type);
                ssIdx.push_back(static_cast<index>(si));
            }
            continue;
        }
        const Point3* after = nextAnchor(si);
        const Point3* before = cas.empty() ? nullptr : &cas.back();
        Point3 from, to;
        if (before && after) {
            from = *before;
            to = *after;
        } else if (after) { // leading coil: dangle below the first segment
            to = *after;
            from = to - Point3{0, 0, kCoilSpacing * static_cast<double>(seg.length + 1)};
        } else if (before) { // trailing coil: dangle beyond the last segment
            from = *before;
            to = from + Point3{0, 0, kCoilSpacing * static_cast<double>(seg.length + 1)};
        } else { // coil-only protein: straight chain
            from = {0, 0, 0};
            to = {0, 0, kCoilSpacing * static_cast<double>(seg.length + 1)};
        }
        for (count j = 0; j < seg.length; ++j) {
            const double f =
                static_cast<double>(j + 1) / static_cast<double>(seg.length + 1);
            // Interpolate with a perpendicular bulge so the linker arcs
            // around rather than through the packed segments.
            Point3 p = from + (to - from) * f;
            p.z += 2.0 * std::sin(f * kPi);
            cas.push_back(p);
            ss.push_back(SecondaryStructure::Coil);
            ssIdx.push_back(static_cast<index>(si));
        }
    }

    // Compact ssIndex values to 0..(#segments-1) in order of appearance.
    // (They currently equal blueprint indices, which are already unique and
    // ordered, so renumber densely.)
    std::vector<index> remap(blueprint.size(), static_cast<index>(-1));
    index next = 0;
    for (auto& s : ssIdx) {
        if (remap[s] == static_cast<index>(-1)) remap[s] = next++;
        s = remap[s];
    }

    return Protein(name, decorate(cas, ss, ssIdx));
}

Protein alpha3D() {
    // Three ~21-residue helices with short loops: 73 residues total,
    // matching the real alpha-3D architecture.
    return buildProtein("alpha3D", {
                                       {SecondaryStructure::Helix, 21},
                                       {SecondaryStructure::Coil, 5},
                                       {SecondaryStructure::Helix, 21},
                                       {SecondaryStructure::Coil, 5},
                                       {SecondaryStructure::Helix, 21},
                                   });
}

Protein chignolin() {
    return buildProtein("chignolin", {
                                         {SecondaryStructure::Strand, 4},
                                         {SecondaryStructure::Coil, 2},
                                         {SecondaryStructure::Strand, 4},
                                     });
}

Protein villinHeadpiece() {
    return buildProtein("villin", {
                                      {SecondaryStructure::Helix, 9},
                                      {SecondaryStructure::Coil, 3},
                                      {SecondaryStructure::Helix, 9},
                                      {SecondaryStructure::Coil, 3},
                                      {SecondaryStructure::Helix, 11},
                                  });
}

Protein wwDomain() {
    return buildProtein("ww-domain", {
                                         {SecondaryStructure::Coil, 3},
                                         {SecondaryStructure::Strand, 7},
                                         {SecondaryStructure::Coil, 3},
                                         {SecondaryStructure::Strand, 8},
                                         {SecondaryStructure::Coil, 3},
                                         {SecondaryStructure::Strand, 7},
                                         {SecondaryStructure::Coil, 4},
                                     });
}

Protein lambdaRepressor() {
    return buildProtein("lambda-repressor", {
                                                {SecondaryStructure::Helix, 14},
                                                {SecondaryStructure::Coil, 3},
                                                {SecondaryStructure::Helix, 14},
                                                {SecondaryStructure::Coil, 3},
                                                {SecondaryStructure::Helix, 13},
                                                {SecondaryStructure::Coil, 3},
                                                {SecondaryStructure::Helix, 14},
                                                {SecondaryStructure::Coil, 3},
                                                {SecondaryStructure::Helix, 13},
                                            });
}

Protein helixBundle(count residues, count helixLength, const std::string& name) {
    if (residues < helixLength + 1) {
        throw std::invalid_argument("helixBundle: too few residues");
    }
    constexpr count kLoop = 4;
    std::vector<Segment> blueprint;
    count placed = 0;
    bool first = true;
    while (placed < residues) {
        if (!first) {
            const count loop = std::min<count>(kLoop, residues - placed);
            blueprint.push_back({SecondaryStructure::Coil, loop});
            placed += loop;
            if (placed >= residues) break;
        }
        first = false;
        const count helix = std::min<count>(helixLength, residues - placed);
        blueprint.push_back({SecondaryStructure::Helix, helix});
        placed += helix;
    }
    return buildProtein(name, blueprint);
}

Protein extendedConformation(const Protein& p) {
    const count n = p.size();
    std::vector<Point3> cas(n);
    std::vector<SecondaryStructure> ss(n);
    std::vector<index> ssIdx(n);
    for (count i = 0; i < n; ++i) {
        // Fully extended chain with a slight zigzag (mimics an unfolded
        // polypeptide; no long-range contacts survive).
        cas[i] = {((i % 2 == 0) ? 1.0 : -1.0), 0.0,
                  static_cast<double>(i) * kStrandRise};
        ss[i] = p.residue(static_cast<index>(i)).ss;
        ssIdx[i] = p.residue(static_cast<index>(i)).ssIndex;
    }
    auto residues = decorate(cas, ss, ssIdx);
    for (count i = 0; i < n; ++i) residues[i].name = p.residue(static_cast<index>(i)).name;
    return Protein(p.name() + "-extended", std::move(residues));
}

} // namespace rinkit::md
