#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/md/protein.hpp"

namespace rinkit::md {

/// Synthetic protein structures with idealized secondary-structure
/// geometry.
///
/// SUBSTITUTION (see DESIGN.md): the paper analyses MD trajectories of the
/// fast-folding proteins of Lindorff-Larsen et al. 2011 (e.g. alpha-3D).
/// That data is proprietary (D. E. Shaw Research). The RIN pipeline only
/// consumes per-residue atom coordinates, so we generate proteins with
/// textbook geometry instead: alpha-helices (1.5 A rise, 100 deg twist,
/// 2.3 A radius), beta-strands (3.3 A rise, zigzag), and coil linkers;
/// helix bundles are packed side by side at ~10 A spacing like the real
/// alpha-3D three-helix bundle. Residues carry five backbone/side-chain
/// atoms (N, CA, C, O, CB) so that all three RIN distance criteria
/// (C-alpha / center-of-mass / minimum distance) are meaningfully distinct.

/// Blueprint of one secondary-structure segment.
struct Segment {
    SecondaryStructure type = SecondaryStructure::Helix;
    count length = 10; ///< residues
};

/// Builds a protein from a segment blueprint: segments are laid out as a
/// compactly packed bundle (helices/strands side by side, antiparallel,
/// joined by coil linkers included in the blueprint).
Protein buildProtein(const std::string& name, const std::vector<Segment>& blueprint);

/// An alpha-3D-like 73-residue three-helix bundle (the protein of the
/// paper's Fig. 3).
Protein alpha3D();

/// A chignolin-like 10-residue beta-hairpin (smallest fast folder).
Protein chignolin();

/// A villin-headpiece-like 35-residue three-helix subdomain.
Protein villinHeadpiece();

/// A WW-domain-like 35-residue triple-stranded beta sheet.
Protein wwDomain();

/// A lambda-repressor-like 80-residue five-helix bundle.
Protein lambdaRepressor();

/// Scalable helix bundle with approximately @p residues residues
/// (helices of @p helixLength joined by 4-residue loops). This provides
/// the 100-1000-node RINs of the paper's Figs. 6-8 at any size.
Protein helixBundle(count residues, count helixLength = 18,
                    const std::string& name = "bundle");

/// Fully extended (unfolded) copy of @p p: same residues/atom counts, all
/// segments laid out along one axis. The folding endpoint used by
/// TrajectoryGenerator.
Protein extendedConformation(const Protein& p);

} // namespace rinkit::md
