#include "src/wire/scene_frame.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace rinkit::wire {

namespace {

using Edge = std::pair<node, node>;

std::uint32_t floatBits(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

/// Gap coding over a sorted (u < v, lexicographic) edge list: du against
/// the previous edge's u, then v against u — or against the previous v
/// when u repeats (runs of edges from one node are the common case).
void writeEdgeList(ByteWriter& w, const std::vector<Edge>& edges) {
    node prevU = 0, prevV = 0;
    for (const auto& [u, v] : edges) {
        const node du = u - prevU;
        w.varint(du);
        w.varint(du == 0 ? v - prevV - 1 : v - u - 1);
        prevU = u;
        prevV = v;
    }
}

void readEdgeList(ByteReader& r, std::uint64_t nodeCount, std::uint64_t m,
                  std::vector<Edge>& out) {
    out.clear();
    out.reserve(m);
    std::uint64_t prevU = 0, prevV = 0;
    for (std::uint64_t k = 0; k < m; ++k) {
        const std::uint64_t du = r.varint();
        const std::uint64_t dv = r.varint();
        // A delta >= nodeCount can only produce an out-of-range endpoint;
        // rejecting it here also rules out 64-bit overflow below.
        if (du >= nodeCount || dv >= nodeCount) throw WireError("edge delta out of range");
        const std::uint64_t u = prevU + du;
        const std::uint64_t v = du == 0 ? prevV + 1 + dv : u + 1 + dv;
        if (u >= nodeCount || v >= nodeCount) throw WireError("edge endpoint out of range");
        out.emplace_back(static_cast<node>(u), static_cast<node>(v));
        prevU = u;
        prevV = v;
    }
}

/// edges := (edges \ removed) ∪ added, all three sorted. Throws if a
/// removed edge is absent or an added edge already present — a delta
/// against the wrong base must fail loudly, not silently diverge.
void applyEdgeDiff(std::vector<Edge>& edges, const std::vector<Edge>& removed,
                   const std::vector<Edge>& added, std::vector<Edge>& scratch) {
    scratch.clear();
    scratch.reserve(edges.size() + added.size());
    auto it = edges.begin();
    for (const auto& rm : removed) {
        while (it != edges.end() && *it < rm) scratch.push_back(*it++);
        if (it == edges.end() || *it != rm) throw WireError("removed edge not present");
        ++it;
    }
    scratch.insert(scratch.end(), it, edges.end());

    edges.clear();
    edges.reserve(scratch.size() + added.size());
    auto surv = scratch.begin();
    for (const auto& ad : added) {
        while (surv != scratch.end() && *surv < ad) edges.push_back(*surv++);
        if (surv != scratch.end() && *surv == ad) throw WireError("added edge already present");
        edges.push_back(ad);
    }
    edges.insert(edges.end(), surv, scratch.end());
}

void diffSorted(const std::vector<Edge>& oldEdges, const std::vector<Edge>& newEdges,
                std::vector<Edge>& added, std::vector<Edge>& removed) {
    added.clear();
    removed.clear();
    std::set_difference(newEdges.begin(), newEdges.end(), oldEdges.begin(), oldEdges.end(),
                        std::back_inserter(added));
    std::set_difference(oldEdges.begin(), oldEdges.end(), newEdges.begin(), newEdges.end(),
                        std::back_inserter(removed));
}

QuantGrid paddedGrid(const std::vector<Point3>& points, double padding) {
    Aabb tight;
    for (const auto& p : points) tight.expand(p);
    if (!tight.valid()) return QuantGrid{{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
    const Point3 ext = tight.extent();
    // Degenerate axes (planar layouts) borrow the largest extent so small
    // drift along them does not force a grid rebuild every frame.
    const double ref = std::max({ext.x, ext.y, ext.z, 1e-9});
    const Point3 pad{padding * (ext.x > 0.0 ? ext.x : ref),
                     padding * (ext.y > 0.0 ? ext.y : ref),
                     padding * (ext.z > 0.0 ? ext.z : ref)};
    return QuantGrid{tight.lo - pad, tight.hi + pad};
}

double sceneNodeSize(const viz::Scene& s) {
    return s.nodeSizes.size() == 1 ? s.nodeSizes[0] : 6.0;
}

/// Representative fine node per coarse cluster: the smallest member. Both
/// sides of the wire derive this from the fine-to-coarse map (it is never
/// shipped), so encoder shadow and decoder state agree on which fine node
/// a coarse edge endpoint maps to. Throws when a coarse id has no member —
/// such a map cannot come from a valid coarsening.
std::vector<node> representativesFromMap(const std::vector<node>& fineToCoarse,
                                         count coarseNodes) {
    std::vector<node> rep(coarseNodes, none);
    for (node i = 0; i < fineToCoarse.size(); ++i) {
        const node c = fineToCoarse[i];
        if (rep[c] == none) rep[c] = i;
    }
    for (const node r : rep) {
        if (r == none) throw WireError("empty coarse cluster");
    }
    return rep;
}

/// Maps coarse-space edges into fine space via cluster representatives
/// (normalized u < v, sorted). Injective because representatives are.
std::vector<Edge> skeletonEdges(const std::vector<Edge>& coarseEdges,
                                const std::vector<node>& rep) {
    std::vector<Edge> out;
    out.reserve(coarseEdges.size());
    for (const auto& [cu, cv] : coarseEdges) {
        const node u = rep[cu], v = rep[cv];
        out.emplace_back(std::min(u, v), std::max(u, v));
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

// ---------------------------------------------------------------- QuantGrid

std::array<std::uint16_t, 3> QuantGrid::quantize(const Point3& p) const {
    const auto axis = [](double v, double axisLo, double axisHi) -> std::uint16_t {
        const double e = axisHi - axisLo;
        if (!(e > 0.0)) return 0;
        const double t = (v - axisLo) / e * 65535.0;
        if (t <= 0.0) return 0;
        if (t >= 65535.0) return 65535;
        return static_cast<std::uint16_t>(std::lround(t));
    };
    return {axis(p.x, lo.x, hi.x), axis(p.y, lo.y, hi.y), axis(p.z, lo.z, hi.z)};
}

Point3 QuantGrid::dequantize(const std::array<std::uint16_t, 3>& q) const {
    const auto axis = [](std::uint16_t qv, double axisLo, double axisHi) {
        const double e = axisHi - axisLo;
        return e > 0.0 ? axisLo + static_cast<double>(qv) / 65535.0 * e : axisLo;
    };
    return {axis(q[0], lo.x, hi.x), axis(q[1], lo.y, hi.y), axis(q[2], lo.z, hi.z)};
}

bool QuantGrid::contains(const Point3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
           p.z <= hi.z;
}

Point3 QuantGrid::maxError() const {
    const auto axis = [](double axisLo, double axisHi) {
        const double e = axisHi - axisLo;
        return e > 0.0 ? e / (2.0 * 65535.0) : 0.0;
    };
    return {axis(lo.x, hi.x), axis(lo.y, hi.y), axis(lo.z, hi.z)};
}

// ----------------------------------------------------------------- ViewState

std::vector<Point3> ViewState::positions() const {
    std::vector<Point3> out(qpos.size());
    for (count i = 0; i < qpos.size(); ++i) out[i] = grid.dequantize(qpos[i]);
    return out;
}

std::vector<viz::Color> ViewState::resolvedColors() const {
    std::vector<viz::Color> out(colorIndex.size());
    for (count i = 0; i < colorIndex.size(); ++i) out[i] = palette[colorIndex[i]];
    return out;
}

// -------------------------------------------------------------- FrameDecoder

void FrameDecoder::reset() {
    hasState_ = false;
    epoch_ = 0;
    seq_ = 0;
    views_.clear();
    edges_.clear();
    scores_.clear();
}

PatchStats FrameDecoder::apply(const Bytes& frame) {
    try {
        ByteReader r(frame);
        return applyChecked(r, frame.size());
    } catch (...) {
        // A frame that failed to apply leaves unknown partial state; drop
        // everything so the next ack ({0, 0}) makes the server resync with
        // a keyframe.
        reset();
        throw;
    }
}

PatchStats FrameDecoder::applyChecked(ByteReader& r, std::size_t frameBytes) {
    if (r.u32() != kFrameMagic) throw WireError("bad magic");
    if (r.u8() != kFrameVersion) throw WireError("unsupported version");
    const std::uint8_t flags = r.u8();
    if ((flags & ~std::uint8_t{kFlagKeyframe | kFlagLodCoarse}) != 0)
        throw WireError("unknown flags");
    const bool keyframe = (flags & kFlagKeyframe) != 0;
    const bool lodCoarse = (flags & kFlagLodCoarse) != 0;
    if (lodCoarse && !keyframe) throw WireError("lod flag without keyframe");
    const std::uint32_t epoch = r.u32();
    const std::uint32_t seq = r.u32();
    const std::uint64_t nodeCount = r.varint();
    const std::uint64_t viewCount = r.varint();
    if (viewCount == 0 || viewCount > 64) throw WireError("view count out of range");
    if (nodeCount > 0xffffffffull) throw WireError("node count out of range");

    PatchStats stats;
    stats.frameBytes = frameBytes;
    stats.keyframe = keyframe;
    stats.lodCoarse = lodCoarse;
    stats.viewCount = viewCount;

    if (lodCoarse) {
        if (epoch == 0) throw WireError("keyframe epoch 0");
        // Each fine node takes at least one prolongation-map varint byte.
        r.boundedCount(nodeCount, 1, "nodes");
        hasState_ = false; // a partial decode must not look committed
        const std::uint64_t coarseCount = r.varint();
        if (coarseCount == 0 || coarseCount > nodeCount)
            throw WireError("coarse node count out of range");
        std::vector<node> fineToCoarse(nodeCount);
        for (auto& c : fineToCoarse) {
            const std::uint64_t ci = r.varint();
            if (ci >= coarseCount) throw WireError("prolongation map out of range");
            c = static_cast<node>(ci);
        }
        const auto rep = representativesFromMap(fineToCoarse, coarseCount);
        const std::uint64_t mc = r.boundedCount(r.varint(), 2, "edges");
        readEdgeList(r, coarseCount, mc, addScratch_);
        edges_ = skeletonEdges(addScratch_, rep);
        // Coarse scores, expanded so every member inherits its cluster's.
        std::vector<float> coarseScores(coarseCount);
        for (auto& s : coarseScores) s = r.f32();
        scores_.resize(nodeCount);
        for (count i = 0; i < nodeCount; ++i) scores_[i] = coarseScores[fineToCoarse[i]];
        views_.resize(viewCount);
        for (auto& view : views_)
            readLodKeyframeView(r, view, nodeCount, fineToCoarse, coarseCount);
        r.expectEnd();
        epoch_ = epoch;
        seq_ = seq;
        hasState_ = true;
        stats.nodeCount = nodeCount;
        stats.edgeCount = edges_.size();
        stats.lodCoarseNodes = coarseCount;
        return stats;
    }

    if (keyframe) {
        if (epoch == 0) throw WireError("keyframe epoch 0");
        // Each node takes at least 4 bytes of score plus 7 per view
        // (quantized position + color index).
        r.boundedCount(nodeCount, 4 + 7 * static_cast<std::size_t>(viewCount), "nodes");
        hasState_ = false; // a partial decode must not look committed
        const std::uint64_t m = r.boundedCount(r.varint(), 2, "edges");
        readEdgeList(r, nodeCount, m, edges_);
        scores_.resize(nodeCount);
        for (auto& s : scores_) s = r.f32();
        views_.resize(viewCount);
        for (auto& view : views_) readKeyframeView(r, view, nodeCount);
        r.expectEnd();
        epoch_ = epoch;
        seq_ = seq;
        hasState_ = true;
        stats.nodeCount = nodeCount;
        stats.edgeCount = edges_.size();
        return stats;
    }

    if (!hasState_) throw WireError("delta frame without client state");
    if (epoch != epoch_ || seq != seq_ + 1) throw WireError("delta base mismatch");
    if (nodeCount != scores_.size()) throw WireError("node count mismatch");
    if (viewCount != views_.size()) throw WireError("view count mismatch");

    const std::uint64_t removedCount = r.boundedCount(r.varint(), 2, "removed edges");
    readEdgeList(r, nodeCount, removedCount, removeScratch_);
    const std::uint64_t addedCount = r.boundedCount(r.varint(), 2, "added edges");
    readEdgeList(r, nodeCount, addedCount, addScratch_);
    applyEdgeDiff(edges_, removeScratch_, addScratch_, mergeScratch_);
    stats.edgesRemoved = removedCount;
    stats.edgesAdded = addedCount;

    scoreChangedIdx_.clear();
    const std::uint64_t scoreChanged = r.boundedCount(r.varint(), 5, "score changes");
    std::uint64_t prev = 0;
    for (std::uint64_t k = 0; k < scoreChanged; ++k) {
        const std::uint64_t gap = r.varint();
        const std::uint64_t idx = k == 0 ? gap : prev + 1 + gap;
        if (idx >= nodeCount) throw WireError("score index out of range");
        scores_[idx] = r.f32();
        scoreChangedIdx_.push_back(idx);
        prev = idx;
    }

    if (touchStamp_.size() < nodeCount) touchStamp_.assign(nodeCount, 0);
    for (auto& view : views_) stats.markersTouched += readDeltaView(r, view, nodeCount);
    r.expectEnd();
    seq_ = seq;
    stats.nodeCount = nodeCount;
    stats.edgeCount = edges_.size();
    return stats;
}

void FrameDecoder::readKeyframeView(ByteReader& r, ViewState& view, count nodes) {
    view.title = r.string(1 << 16);
    view.grid.lo = {r.f64(), r.f64(), r.f64()};
    view.grid.hi = {r.f64(), r.f64(), r.f64()};
    // NaN bounds fail the comparison too, so a corrupt grid is rejected
    // before it can poison every dequantized coordinate.
    if (!(view.grid.lo.x <= view.grid.hi.x && view.grid.lo.y <= view.grid.hi.y &&
          view.grid.lo.z <= view.grid.hi.z)) {
        throw WireError("invalid quantization grid");
    }
    view.nodeSize = r.f64();
    view.qpos.resize(nodes);
    for (auto& q : view.qpos) q = {r.u16(), r.u16(), r.u16()};
    const std::uint64_t paletteSize = r.boundedCount(r.varint(), 3, "palette");
    view.palette.resize(paletteSize);
    for (auto& c : view.palette) {
        c.r = r.u8();
        c.g = r.u8();
        c.b = r.u8();
    }
    view.colorIndex.resize(nodes);
    for (auto& ci : view.colorIndex) {
        const std::uint64_t pi = r.varint();
        if (pi >= paletteSize) throw WireError("palette index out of range");
        ci = static_cast<std::uint32_t>(pi);
    }
}

void FrameDecoder::readLodKeyframeView(ByteReader& r, ViewState& view, count nodes,
                                       const std::vector<node>& fineToCoarse,
                                       count coarseNodes) {
    view.title = r.string(1 << 16);
    view.grid.lo = {r.f64(), r.f64(), r.f64()};
    view.grid.hi = {r.f64(), r.f64(), r.f64()};
    if (!(view.grid.lo.x <= view.grid.hi.x && view.grid.lo.y <= view.grid.hi.y &&
          view.grid.lo.z <= view.grid.hi.z)) {
        throw WireError("invalid quantization grid");
    }
    view.nodeSize = r.f64();
    // Coarse positions / colors, expanded through the prolongation map so
    // the state is fine-shaped (the refine frame is an ordinary delta).
    std::vector<std::array<std::uint16_t, 3>> coarseQ(coarseNodes);
    for (auto& q : coarseQ) q = {r.u16(), r.u16(), r.u16()};
    const std::uint64_t paletteSize = r.boundedCount(r.varint(), 3, "palette");
    view.palette.resize(paletteSize);
    for (auto& c : view.palette) {
        c.r = r.u8();
        c.g = r.u8();
        c.b = r.u8();
    }
    std::vector<std::uint32_t> coarseCi(coarseNodes);
    for (auto& ci : coarseCi) {
        const std::uint64_t pi = r.varint();
        if (pi >= paletteSize) throw WireError("palette index out of range");
        ci = static_cast<std::uint32_t>(pi);
    }
    view.qpos.resize(nodes);
    view.colorIndex.resize(nodes);
    for (count i = 0; i < nodes; ++i) {
        view.qpos[i] = coarseQ[fineToCoarse[i]];
        view.colorIndex[i] = coarseCi[fineToCoarse[i]];
    }
}

count FrameDecoder::readDeltaView(ByteReader& r, ViewState& view, count nodes) {
    if (++stampGeneration_ == 0) {
        std::fill(touchStamp_.begin(), touchStamp_.end(), 0);
        stampGeneration_ = 1;
    }
    count touched = 0;
    const auto mark = [&](std::uint64_t i) {
        if (touchStamp_[i] != stampGeneration_) {
            touchStamp_[i] = stampGeneration_;
            ++touched;
        }
    };

    const std::uint64_t grow = r.boundedCount(r.varint(), 3, "palette growth");
    for (std::uint64_t k = 0; k < grow; ++k) {
        viz::Color c;
        c.r = r.u8();
        c.g = r.u8();
        c.b = r.u8();
        view.palette.push_back(c);
    }

    const std::uint64_t posChanged = r.boundedCount(r.varint(), 4, "position changes");
    std::uint64_t prev = 0;
    for (std::uint64_t k = 0; k < posChanged; ++k) {
        const std::uint64_t gap = r.varint();
        const std::uint64_t idx = k == 0 ? gap : prev + 1 + gap;
        if (idx >= nodes) throw WireError("position index out of range");
        for (int a = 0; a < 3; ++a) {
            const std::int64_t q =
                static_cast<std::int64_t>(view.qpos[idx][a]) + r.svarint();
            if (q < 0 || q > 65535) throw WireError("quantized position out of range");
            view.qpos[idx][a] = static_cast<std::uint16_t>(q);
        }
        mark(idx);
        prev = idx;
    }

    const std::uint64_t colorChanged = r.boundedCount(r.varint(), 2, "color changes");
    prev = 0;
    for (std::uint64_t k = 0; k < colorChanged; ++k) {
        const std::uint64_t gap = r.varint();
        const std::uint64_t idx = k == 0 ? gap : prev + 1 + gap;
        if (idx >= nodes) throw WireError("color index out of range");
        const std::uint64_t pi = r.varint();
        if (pi >= view.palette.size()) throw WireError("palette index out of range");
        view.colorIndex[idx] = static_cast<std::uint32_t>(pi);
        mark(idx);
        prev = idx;
    }

    // Score changes update the hover text of the same marker in every view.
    for (const auto idx : scoreChangedIdx_) mark(idx);
    return touched;
}

// -------------------------------------------------------------- DeltaEncoder

std::uint32_t DeltaEncoder::paletteIndexOf(count viewIdx, const viz::Color& c) {
    const std::uint32_t key = (static_cast<std::uint32_t>(c.r & 0xff) << 16) |
                              (static_cast<std::uint32_t>(c.g & 0xff) << 8) |
                              static_cast<std::uint32_t>(c.b & 0xff);
    auto [it, inserted] = paletteLookup_[viewIdx].try_emplace(
        key, static_cast<std::uint32_t>(shadow_[viewIdx].palette.size()));
    if (inserted) shadow_[viewIdx].palette.push_back(c);
    return it->second;
}

const char* DeltaEncoder::keyframeReason(const std::vector<const viz::Scene*>& views,
                                         Ack clientAck) const {
    if (!hasState_) return "first";
    if (forceKeyframe_) return "forced";
    if (clientAck.epoch != epoch_ || clientAck.seq != seq_) return "resync";
    if (views.size() != shadow_.size()) return "shape";
    for (count v = 0; v < views.size(); ++v) {
        const viz::Scene& s = *views[v];
        const ViewState& sh = shadow_[v];
        if (s.nodeCount() != sh.qpos.size()) return "shape";
        if (s.title != sh.title) return "shape";
        if (sceneNodeSize(s) != sh.nodeSize) return "shape";
    }
    if (options_.keyframeInterval > 0 && seq_ + 1 >= options_.keyframeInterval)
        return "periodic";
    for (count v = 0; v < views.size(); ++v) {
        for (const auto& p : views[v]->nodePositions) {
            if (!shadow_[v].grid.contains(p)) return "grid";
        }
    }
    return nullptr;
}

Bytes DeltaEncoder::takeRefineFrame() {
    if (!hasRefine_) throw std::logic_error("DeltaEncoder: no refine frame pending");
    hasRefine_ = false;
    return std::move(refineFrame_);
}

Bytes DeltaEncoder::encode(const std::vector<const viz::Scene*>& views,
                           const std::vector<double>& scores, Ack clientAck,
                           const EdgeDiffHint* edgeDiff,
                           const LodProvider& lodProvider) {
    if (views.empty()) throw std::invalid_argument("DeltaEncoder: no views");
    for (const auto* v : views) {
        if (v == nullptr) throw std::invalid_argument("DeltaEncoder: null view");
        if (v->nodeCount() != views[0]->nodeCount())
            throw std::invalid_argument("DeltaEncoder: views disagree on node count");
    }
    if (scores.size() != views[0]->nodeCount())
        throw std::invalid_argument("DeltaEncoder: scores size != node count");
    if (!hasState_ && edgeDiff != nullptr)
        throw std::logic_error("DeltaEncoder: edge diff hint without encoder state");
    if (hasRefine_)
        throw std::logic_error("DeltaEncoder: refine frame not taken before next encode");

    stats_ = FrameStats{};
    const char* reason = keyframeReason(views, clientAck);
    resolveEdges(views, edgeDiff);

    // A keyframe about to fire is the one moment the (lazy) LOD mapping is
    // worth computing: a usable coarsening turns the keyframe into the
    // coarse+refine pair.
    const LodMapping* lod = nullptr;
    if (reason != nullptr && lodProvider) {
        lod = lodProvider();
        if (lod != nullptr &&
            (lod->coarseNodes == 0 || lod->fineNodes != views[0]->nodeCount() ||
             lod->coarseNodes >= lod->fineNodes ||
             lod->fineToCoarse.size() != lod->fineNodes)) {
            lod = nullptr; // mapping absent or does not coarsen: full keyframe
        }
    }

    Bytes out;
    if (reason != nullptr && lod != nullptr) {
        stats_.keyframe = true;
        stats_.reason = reason;
        out = encodeLodPair(views, scores, *lod);
    } else if (reason != nullptr) {
        stats_.keyframe = true;
        stats_.reason = reason;
        out = encodeKeyframe(views, scores);
    } else {
        stats_.reason = "delta";
        out = encodeDelta(views, scores);
        // Patch-cost guard: a delta that touches at least as many client
        // elements as a keyframe rebuild (e.g. a cutoff jump that churns
        // more edges than survive) should ship as the keyframe — same
        // information, cheaper to apply. The per-view change sums
        // overestimate the decoder's distinct-marker count, so this only
        // fires when the delta is genuinely not cheaper.
        const std::uint64_t deltaCost = stats_.positionsChanged + stats_.colorsChanged +
                                        stats_.scoresChanged +
                                        views.size() * (stats_.edgesAdded + stats_.edgesRemoved);
        const std::uint64_t keyframeCost =
            views.size() * (views[0]->nodeCount() + edges_.size());
        if (deltaCost >= keyframeCost) {
            stats_.keyframe = true;
            stats_.reason = "cost";
            // The cost trigger is only discovered here, after the delta
            // attempt — fetch the LOD mapping now. This is the fig 7
            // worst-case jump the coarse-first path exists for.
            if (lodProvider) {
                lod = lodProvider();
                if (lod != nullptr &&
                    (lod->coarseNodes == 0 || lod->fineNodes != views[0]->nodeCount() ||
                     lod->coarseNodes >= lod->fineNodes ||
                     lod->fineToCoarse.size() != lod->fineNodes)) {
                    lod = nullptr;
                }
            }
            out = lod != nullptr ? encodeLodPair(views, scores, *lod)
                                 : encodeKeyframe(views, scores);
        }
    }
    stats_.bytes = out.size();
    forceKeyframe_ = false;
    hasState_ = true;
    return out;
}

void DeltaEncoder::resolveEdges(const std::vector<const viz::Scene*>& views,
                                const EdgeDiffHint* edgeDiff) {
    static const std::vector<Edge> kNoEdges;
    if (edgeDiff != nullptr) {
        pendingRemoved_ = edgeDiff->removed != nullptr ? edgeDiff->removed : &kNoEdges;
        pendingAdded_ = edgeDiff->added != nullptr ? edgeDiff->added : &kNoEdges;
        applyEdgeDiff(edges_, *pendingRemoved_, *pendingAdded_, mergeScratch_);
    } else {
        // Full edge list mode: the scene carries the truth, diff it
        // against the shadow (empty lists on the very first frame).
        if (hasState_) {
            diffSorted(edges_, views[0]->edges, addScratch_, removeScratch_);
        } else {
            addScratch_.assign(views[0]->edges.begin(), views[0]->edges.end());
            removeScratch_.clear();
        }
        pendingAdded_ = &addScratch_;
        pendingRemoved_ = &removeScratch_;
        edges_ = views[0]->edges;
    }
    stats_.edgesAdded = pendingAdded_->size();
    stats_.edgesRemoved = pendingRemoved_->size();
}

void DeltaEncoder::rebuildViewState(count viewIdx, const viz::Scene& scene,
                                    bool tryReuseGrid) {
    ViewState& view = shadow_[viewIdx];
    const count n = scene.nodeCount();
    view.title = scene.title;
    view.nodeSize = sceneNodeSize(scene);
    bool reuse = tryReuseGrid;
    if (reuse) {
        for (const auto& p : scene.nodePositions) {
            if (!view.grid.contains(p)) {
                reuse = false;
                break;
            }
        }
    }
    if (!reuse) {
        QuantGrid fresh = paddedGrid(scene.nodePositions, options_.gridPadding);
        if (!view.qpos.empty()) {
            // Sticky grids: union the new box with the previous epoch's so a
            // scene oscillating between a few layouts (cutoff toggles, short
            // frame cycles) converges to one covering grid instead of
            // re-keying on every swing. The error bound grows with the union
            // extent but stays extent/(2*65535) per axis — sub-0.01 Å even
            // for boxes ten times the protein.
            fresh.lo = Point3{std::min(fresh.lo.x, view.grid.lo.x),
                              std::min(fresh.lo.y, view.grid.lo.y),
                              std::min(fresh.lo.z, view.grid.lo.z)};
            fresh.hi = Point3{std::max(fresh.hi.x, view.grid.hi.x),
                              std::max(fresh.hi.y, view.grid.hi.y),
                              std::max(fresh.hi.z, view.grid.hi.z)};
        }
        view.grid = fresh;
    }
    view.qpos.resize(n);
    for (count i = 0; i < n; ++i) view.qpos[i] = view.grid.quantize(scene.nodePositions[i]);
    // Sticky palettes, for the same reason as sticky grids: the delta path
    // only ever appends, so a keyframe that kept the accumulated palette
    // decodes to exactly the delta-accumulated client state — which is
    // what makes a migration resync byte-identical to an unmigrated
    // stream. Entries cost 3 bytes each, so retaining stale colors across
    // epochs is noise next to re-keying the color indices.
    view.colorIndex.resize(n);
    for (count i = 0; i < n; ++i)
        view.colorIndex[i] = paletteIndexOf(viewIdx, scene.nodeColors[i]);
}

Bytes DeltaEncoder::encodeKeyframe(const std::vector<const viz::Scene*>& views,
                                   const std::vector<double>& scores) {
    const count n = views[0]->nodeCount();
    // Grid reuse (same epoch box while positions still fit) is what makes
    // a forced/periodic keyframe decode bit-identical to the accumulated
    // delta state; it only applies when the view layout is unchanged.
    const bool tryReuseGrid = hasState_ && views.size() == shadow_.size();
    shadow_.resize(views.size());
    paletteLookup_.resize(views.size());
    epoch_ += 1;
    seq_ = 0;
    scores_.resize(n);
    for (count i = 0; i < n; ++i) scores_[i] = static_cast<float>(scores[i]);
    for (count v = 0; v < views.size(); ++v) rebuildViewState(v, *views[v], tryReuseGrid);

    ByteWriter w;
    w.reserve(64 + edges_.size() * 4 + views.size() * (n * 12 + 128));
    w.u32(kFrameMagic);
    w.u8(kFrameVersion);
    w.u8(1); // keyframe
    w.u32(epoch_);
    w.u32(seq_);
    w.varint(n);
    w.varint(views.size());
    w.varint(edges_.size());
    writeEdgeList(w, edges_);
    for (const float s : scores_) w.f32(s);
    for (const auto& view : shadow_) {
        w.string(view.title);
        w.f64(view.grid.lo.x);
        w.f64(view.grid.lo.y);
        w.f64(view.grid.lo.z);
        w.f64(view.grid.hi.x);
        w.f64(view.grid.hi.y);
        w.f64(view.grid.hi.z);
        w.f64(view.nodeSize);
        for (const auto& q : view.qpos) {
            w.u16(q[0]);
            w.u16(q[1]);
            w.u16(q[2]);
        }
        w.varint(view.palette.size());
        for (const auto& c : view.palette) {
            w.u8(static_cast<std::uint8_t>(c.r));
            w.u8(static_cast<std::uint8_t>(c.g));
            w.u8(static_cast<std::uint8_t>(c.b));
        }
        for (const auto ci : view.colorIndex) w.varint(ci);
    }
    return w.take();
}

Bytes DeltaEncoder::encodeLodPair(const std::vector<const viz::Scene*>& views,
                                  const std::vector<double>& scores,
                                  const LodMapping& lod) {
    const count n = views[0]->nodeCount();
    const count nc = lod.coarseNodes;
    const auto rep = representativesFromMap(lod.fineToCoarse, nc);

    // resolveEdges already advanced edges_ to the true fine set; keep it
    // aside — the coarse frame ships the skeleton and the refine delta
    // moves the client from skeleton to fine.
    lodFineEdges_ = edges_;

    // Build the *fine* shadow first (grids, sticky palettes, fine qpos /
    // color indices), exactly as a full keyframe would: the coarse arrays
    // are derived from it, and the palette shipped in the coarse frame is
    // already complete so the refine delta grows it by nothing.
    const bool tryReuseGrid = hasState_ && views.size() == shadow_.size();
    shadow_.resize(views.size());
    paletteLookup_.resize(views.size());
    epoch_ += 1;
    seq_ = 0;
    scores_.resize(n);
    for (count i = 0; i < n; ++i) scores_[i] = static_cast<float>(scores[i]);
    for (count v = 0; v < views.size(); ++v) rebuildViewState(v, *views[v], tryReuseGrid);

    // Coarse per-node data: score/color from the cluster representative,
    // position from the cluster centroid (quantized in the view's grid —
    // centroids of in-grid points stay in-grid).
    std::vector<float> coarseScores(nc);
    for (count c = 0; c < nc; ++c) coarseScores[c] = scores_[rep[c]];
    std::vector<count> clusterSize(nc, 0);
    for (count i = 0; i < n; ++i) ++clusterSize[lod.fineToCoarse[i]];
    std::vector<std::vector<std::array<std::uint16_t, 3>>> coarseQ(views.size());
    std::vector<std::vector<std::uint32_t>> coarseCi(views.size());
    std::vector<Point3> centroid(nc);
    for (count v = 0; v < views.size(); ++v) {
        const viz::Scene& scene = *views[v];
        std::fill(centroid.begin(), centroid.end(), Point3{0.0, 0.0, 0.0});
        for (count i = 0; i < n; ++i) {
            const Point3& p = scene.nodePositions[i];
            Point3& acc = centroid[lod.fineToCoarse[i]];
            acc = acc + p;
        }
        coarseQ[v].resize(nc);
        coarseCi[v].resize(nc);
        for (count c = 0; c < nc; ++c) {
            const Point3 mean = centroid[c] * (1.0 / static_cast<double>(clusterSize[c]));
            coarseQ[v][c] = shadow_[v].grid.quantize(mean);
            coarseCi[v][c] = shadow_[v].colorIndex[rep[c]];
        }
    }

    // Coarse keyframe bytes.
    ByteWriter w;
    w.reserve(64 + n + lod.coarseEdges.size() * 4 +
              views.size() * (nc * 12 + 128));
    w.u32(kFrameMagic);
    w.u8(kFrameVersion);
    w.u8(kFlagKeyframe | kFlagLodCoarse);
    w.u32(epoch_);
    w.u32(seq_);
    w.varint(n);
    w.varint(views.size());
    w.varint(nc);
    for (count i = 0; i < n; ++i) w.varint(lod.fineToCoarse[i]);
    w.varint(lod.coarseEdges.size());
    writeEdgeList(w, lod.coarseEdges);
    for (const float s : coarseScores) w.f32(s);
    for (count v = 0; v < views.size(); ++v) {
        const ViewState& view = shadow_[v];
        w.string(view.title);
        w.f64(view.grid.lo.x);
        w.f64(view.grid.lo.y);
        w.f64(view.grid.lo.z);
        w.f64(view.grid.hi.x);
        w.f64(view.grid.hi.y);
        w.f64(view.grid.hi.z);
        w.f64(view.nodeSize);
        for (const auto& q : coarseQ[v]) {
            w.u16(q[0]);
            w.u16(q[1]);
            w.u16(q[2]);
        }
        w.varint(view.palette.size());
        for (const auto& c : view.palette) {
            w.u8(static_cast<std::uint8_t>(c.r));
            w.u8(static_cast<std::uint8_t>(c.g));
            w.u8(static_cast<std::uint8_t>(c.b));
        }
        for (const auto ci : coarseCi[v]) w.varint(ci);
    }
    Bytes coarseFrame = w.take();

    // Mirror the decoder: expand the shadow to the coarse-inherited fine
    // state, so the refine frame is an ordinary delta against it.
    for (count i = 0; i < n; ++i) scores_[i] = coarseScores[lod.fineToCoarse[i]];
    for (count v = 0; v < views.size(); ++v) {
        ViewState& view = shadow_[v];
        for (count i = 0; i < n; ++i) {
            view.qpos[i] = coarseQ[v][lod.fineToCoarse[i]];
            view.colorIndex[i] = coarseCi[v][lod.fineToCoarse[i]];
        }
    }
    edges_ = skeletonEdges(lod.coarseEdges, rep);

    stats_.lodCoarse = true;
    stats_.lodCoarseNodes = nc;
    stats_.lodLevels = lod.levels;

    // Refine delta: skeleton -> fine edges, inherited -> true positions /
    // colors / scores. encodeDelta consumes pending edge lists and updates
    // the shadow to the true fine state.
    const FrameStats coarseStats = stats_;
    stats_ = FrameStats{};
    diffSorted(edges_, lodFineEdges_, addScratch_, removeScratch_);
    pendingAdded_ = &addScratch_;
    pendingRemoved_ = &removeScratch_;
    stats_.edgesAdded = pendingAdded_->size();
    stats_.edgesRemoved = pendingRemoved_->size();
    edges_ = lodFineEdges_;
    refineFrame_ = encodeDelta(views, scores);
    stats_.reason = "lod_refine";
    stats_.bytes = refineFrame_.size();
    refineStats_ = stats_;
    stats_ = coarseStats;
    hasRefine_ = true;
    return coarseFrame;
}

Bytes DeltaEncoder::encodeDelta(const std::vector<const viz::Scene*>& views,
                                const std::vector<double>& scores) {
    const count n = views[0]->nodeCount();
    seq_ += 1;

    ByteWriter w;
    w.reserve(64 + (pendingAdded_->size() + pendingRemoved_->size()) * 4 + n / 2);
    w.u32(kFrameMagic);
    w.u8(kFrameVersion);
    w.u8(0); // delta
    w.u32(epoch_);
    w.u32(seq_);
    w.varint(n);
    w.varint(views.size());
    w.varint(pendingRemoved_->size());
    writeEdgeList(w, *pendingRemoved_);
    w.varint(pendingAdded_->size());
    writeEdgeList(w, *pendingAdded_);

    // Shared scores: bit-pattern compare (NaN-safe) against the shadow.
    count scoreChanged = 0;
    for (count i = 0; i < n; ++i) {
        if (floatBits(static_cast<float>(scores[i])) != floatBits(scores_[i]))
            ++scoreChanged;
    }
    w.varint(scoreChanged);
    std::uint64_t prev = 0;
    bool first = true;
    for (count i = 0; i < n; ++i) {
        const float f = static_cast<float>(scores[i]);
        if (floatBits(f) == floatBits(scores_[i])) continue;
        w.varint(first ? i : i - prev - 1);
        w.f32(f);
        scores_[i] = f;
        prev = i;
        first = false;
    }
    stats_.scoresChanged = scoreChanged;

    for (count v = 0; v < views.size(); ++v) {
        ViewState& view = shadow_[v];
        const viz::Scene& scene = *views[v];

        // Colors first: mapping may grow the palette, and the growth ships
        // ahead of the indices that reference it.
        colorIdxScratch_.resize(n);
        const count oldPalette = view.palette.size();
        for (count i = 0; i < n; ++i)
            colorIdxScratch_[i] = paletteIndexOf(v, scene.nodeColors[i]);
        w.varint(view.palette.size() - oldPalette);
        for (count p = oldPalette; p < view.palette.size(); ++p) {
            w.u8(static_cast<std::uint8_t>(view.palette[p].r));
            w.u8(static_cast<std::uint8_t>(view.palette[p].g));
            w.u8(static_cast<std::uint8_t>(view.palette[p].b));
        }

        qScratch_.resize(n);
        count posChanged = 0;
        for (count i = 0; i < n; ++i) {
            qScratch_[i] = view.grid.quantize(scene.nodePositions[i]);
            if (qScratch_[i] != view.qpos[i]) ++posChanged;
        }
        w.varint(posChanged);
        prev = 0;
        first = true;
        for (count i = 0; i < n; ++i) {
            if (qScratch_[i] == view.qpos[i]) continue;
            w.varint(first ? i : i - prev - 1);
            for (int a = 0; a < 3; ++a) {
                w.svarint(static_cast<std::int64_t>(qScratch_[i][a]) -
                          static_cast<std::int64_t>(view.qpos[i][a]));
            }
            view.qpos[i] = qScratch_[i];
            prev = i;
            first = false;
        }
        stats_.positionsChanged += posChanged;

        count colorChanged = 0;
        for (count i = 0; i < n; ++i) {
            if (colorIdxScratch_[i] != view.colorIndex[i]) ++colorChanged;
        }
        w.varint(colorChanged);
        prev = 0;
        first = true;
        for (count i = 0; i < n; ++i) {
            if (colorIdxScratch_[i] == view.colorIndex[i]) continue;
            w.varint(first ? i : i - prev - 1);
            w.varint(colorIdxScratch_[i]);
            view.colorIndex[i] = colorIdxScratch_[i];
            prev = i;
            first = false;
        }
        stats_.colorsChanged += colorChanged;
    }
    return w.take();
}

} // namespace rinkit::wire
