#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/layout/coarsening.hpp"
#include "src/support/point3.hpp"
#include "src/support/types.hpp"
#include "src/viz/scene.hpp"
#include "src/wire/wire_format.hpp"

namespace rinkit::wire {

/// "RWF1" little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x31465752u;
inline constexpr std::uint8_t kFrameVersion = 1;

/// Frame flag bits. A level-of-detail (LOD) coarse keyframe
/// (kFlagKeyframe | kFlagLodCoarse) opens an epoch like a keyframe but
/// ships the coarsened node/edge set plus the fine-to-coarse prolongation
/// map; the decoder expands it to full fine-shaped state (every fine node
/// inherits its cluster's position/color/score), so the immediately
/// following frame is an *ordinary* delta — the refine frame — that moves
/// members to their true values. First pixels therefore cost O(coarse)
/// while refinement rides the existing delta machinery.
inline constexpr std::uint8_t kFlagKeyframe = 1;
inline constexpr std::uint8_t kFlagLodCoarse = 2;

/// The client's view of the stream position: which (epoch, seq) frame it
/// last applied. The server compares this against its own position and
/// falls back to a keyframe whenever they disagree (resync rule). A client
/// with no state acks {0, 0}, which can never match — encoder epochs start
/// at 1.
struct Ack {
    std::uint32_t epoch = 0;
    std::uint32_t seq = 0;

    bool operator==(const Ack&) const = default;
};

/// Per-axis uniform quantization grid over an axis-aligned box: positions
/// map to 16-bit integers, so the worst-case reconstruction error per axis
/// is extent / (2 * 65535) — sub-0.01 Å for protein-sized scenes. The grid
/// is part of the keyframe and stays fixed for the whole epoch (delta
/// frames move quantized coordinates, never the grid), which is what makes
/// "apply N deltas" land bit-identical to decoding a keyframe of the final
/// scene.
struct QuantGrid {
    Point3 lo;
    Point3 hi;

    std::array<std::uint16_t, 3> quantize(const Point3& p) const;
    Point3 dequantize(const std::array<std::uint16_t, 3>& q) const;
    bool contains(const Point3& p) const;

    /// Worst-case |original - dequantized| per axis.
    Point3 maxError() const;

    bool operator==(const QuantGrid&) const = default;
};

/// Decoded state of one scene view (protein layout / Maxent layout). The
/// canonical representation is quantized space: qpos + grid, with colors
/// as indices into a per-epoch palette. positions() / resolvedColors()
/// materialize the renderable form. Scores live on the decoder, not here:
/// they belong to the shared node table, like the edge set.
struct ViewState {
    std::string title;
    QuantGrid grid;
    double nodeSize = 6.0;
    std::vector<std::array<std::uint16_t, 3>> qpos;
    std::vector<std::uint32_t> colorIndex;
    std::vector<viz::Color> palette;

    std::vector<Point3> positions() const;
    std::vector<viz::Color> resolvedColors() const;
};

/// What one decoded frame did to the client state — the quantities the
/// parse+patch client cost model charges for.
struct PatchStats {
    bool keyframe = false;
    bool lodCoarse = false;   ///< LOD coarse keyframe (coarse node/edge set)
    count lodCoarseNodes = 0; ///< coarse cluster count when lodCoarse
    std::size_t frameBytes = 0;
    count viewCount = 0;
    count nodeCount = 0; ///< shared node table size
    count edgeCount = 0; ///< edge count *after* applying the frame
    count edgesAdded = 0;
    count edgesRemoved = 0;
    count markersTouched = 0; ///< distinct markers with a position, color or
                              ///< score change, summed over views

    /// DOM elements the simulated client touches applying this frame: a
    /// keyframe rebuilds every marker and edge segment in every view; a
    /// delta touches only changed markers plus changed edge segments. An
    /// LOD coarse keyframe draws one marker per *cluster* (members share a
    /// position, so they are a single visible marker) plus the coarse edge
    /// skeleton — the O(coarse) first-pixels cost.
    count elementsTouched() const {
        if (keyframe) return viewCount * ((lodCoarse ? lodCoarseNodes : nodeCount) + edgeCount);
        return markersTouched + viewCount * (edgesAdded + edgesRemoved);
    }
};

/// Client-side frame decoder. Strictly validating: any truncated or
/// corrupted buffer, out-of-range index, or delta whose base (epoch, seq)
/// does not match the current state throws WireError. A failed apply()
/// also drops the decoder state entirely — the next ack() reports {0, 0},
/// which the encoder answers with a keyframe (the resync rule doubles as
/// corruption recovery).
class FrameDecoder {
public:
    /// Applies one frame and reports what it changed.
    PatchStats apply(const Bytes& frame);

    bool hasState() const { return hasState_; }
    Ack ack() const { return hasState_ ? Ack{epoch_, seq_} : Ack{}; }

    const std::vector<ViewState>& views() const { return views_; }

    /// Current edge set, sorted (u < v, lexicographic) — shared by all views.
    const std::vector<std::pair<node, node>>& edges() const { return edges_; }

    /// Per-node measure scores of the shared node table (hover text is
    /// regenerated client-side instead of shipping label strings).
    const std::vector<float>& scores() const { return scores_; }

    /// Drops all state (simulated tab reload / lost websocket).
    void reset();

private:
    PatchStats applyChecked(ByteReader& r, std::size_t frameBytes);
    void readKeyframeView(ByteReader& r, ViewState& view, count nodes);
    void readLodKeyframeView(ByteReader& r, ViewState& view, count nodes,
                             const std::vector<node>& fineToCoarse, count coarseNodes);
    count readDeltaView(ByteReader& r, ViewState& view, count nodes);

    bool hasState_ = false;
    std::uint32_t epoch_ = 0;
    std::uint32_t seq_ = 0;
    std::vector<ViewState> views_;
    std::vector<std::pair<node, node>> edges_;
    std::vector<float> scores_;
    // Delta scratch, reused across frames.
    std::vector<std::pair<node, node>> addScratch_, removeScratch_, mergeScratch_;
    std::vector<std::uint64_t> scoreChangedIdx_;
    // Distinct-marker counting scratch: stamp[i] == generation marks node i
    // already counted for the current view.
    std::vector<std::uint32_t> touchStamp_;
    std::uint32_t stampGeneration_ = 0;
};

struct DeltaEncoderOptions {
    /// Frames per epoch: one keyframe followed by (interval - 1) deltas,
    /// then the next keyframe regardless of acks. 0 disables periodic
    /// keyframes (they still happen on resync / shape change / grid
    /// overflow).
    count keyframeInterval = 64;
    /// Relative per-axis padding applied when a quantization grid is
    /// (re)computed: headroom for positions to drift between frames
    /// without leaving the grid (which costs a keyframe). Warm-started
    /// layouts drift a few percent per relayout, so generous padding buys
    /// many delta frames per keyframe; the precision cost is negligible
    /// (the error bound stays extent/(2*65535) per axis).
    double gridPadding = 0.25;
};

/// Exact edge diff for a delta frame, both lists sorted (u < v,
/// lexicographic) — normally DynamicRin's diff buffers. Empty lists mean
/// "edge set unchanged" (measure switch). Passing no hint to encode()
/// instead means "edge set unknown": the scenes must then carry the full
/// edge list and the encoder diffs it against its shadow state itself.
struct EdgeDiffHint {
    const std::vector<std::pair<node, node>>* added = nullptr;
    const std::vector<std::pair<node, node>>* removed = nullptr;
};

/// Server-side stateful frame encoder. Keeps a shadow copy of exactly the
/// state the client's FrameDecoder holds (quantized positions, palette,
/// edge set, scores) and emits either a keyframe or a delta frame against
/// it.
///
/// Keyframe triggers, in order: first frame, explicit forceKeyframe(),
/// client ack mismatch (resync), node/view-count or view-shape change,
/// periodic interval, and any position leaving its view's quantization
/// grid. Everything else ships as a delta.
class DeltaEncoder {
public:
    struct FrameStats {
        bool keyframe = false;
        bool lodCoarse = false; ///< this keyframe shipped as an LOD pair
        std::size_t bytes = 0;
        const char* reason = ""; ///< "delta" or which keyframe trigger fired
        count edgesAdded = 0;
        count edgesRemoved = 0;
        count positionsChanged = 0; ///< summed over views (delta frames)
        count colorsChanged = 0;    ///< summed over views (delta frames)
        count scoresChanged = 0;
        count lodCoarseNodes = 0; ///< clusters in the coarse keyframe
        count lodLevels = 0;      ///< refine depth (composed hierarchy levels)
    };

    /// Lazily supplies the coarsening of the *current* scene graph; only
    /// invoked when a keyframe is about to fire, so callers can skip
    /// building (or cache-key by graph version) the mapping on the delta
    /// fast path. Returning nullptr (or a mapping that does not coarsen:
    /// coarseNodes == 0 or >= fine node count) falls back to the full
    /// keyframe.
    using LodProvider = std::function<const LodMapping*()>;

    explicit DeltaEncoder(DeltaEncoderOptions options = {}) : options_(options) {}

    /// Encodes the next frame for @p views (one Scene per view; all views
    /// share the node table and edge set, and view order must be stable
    /// across calls). @p scores is the shared per-node score vector (size
    /// = node count); @p clientAck is the client's last applied (epoch,
    /// seq); @p edgeDiff as documented on EdgeDiffHint.
    ///
    /// When @p lodProvider is set and a keyframe fires, the keyframe is
    /// emitted as an LOD pair instead: the returned bytes are the coarse
    /// keyframe (first pixels) and the refine delta is stashed — fetch it
    /// with takeRefineFrame() and ship it right after. The pair is one
    /// logical keyframe: (epoch+1, seq 0) then (epoch+1, seq 1).
    Bytes encode(const std::vector<const viz::Scene*>& views,
                 const std::vector<double>& scores, Ack clientAck,
                 const EdgeDiffHint* edgeDiff,
                 const LodProvider& lodProvider = nullptr);

    /// Forces the next encode() to emit a keyframe (reusing the current
    /// quantization grids when they still fit, so decoding it matches the
    /// delta-accumulated client state bit for bit).
    void forceKeyframe() { forceKeyframe_ = true; }

    const FrameStats& lastStats() const { return stats_; }

    /// True when the last encode() emitted an LOD pair and the refine
    /// delta has not been taken yet.
    bool hasRefineFrame() const { return hasRefine_; }

    /// Moves out the stashed refine delta (second half of the LOD pair).
    /// Must be shipped to the client before the next encode() — the next
    /// frame is encoded against post-refine state.
    Bytes takeRefineFrame();

    /// Stats of the stashed/last refine delta.
    const FrameStats& refineStats() const { return refineStats_; }

    /// The (epoch, seq) of the last emitted frame.
    Ack current() const { return {epoch_, seq_}; }

private:
    const char* keyframeReason(const std::vector<const viz::Scene*>& views,
                               Ack clientAck) const;
    void resolveEdges(const std::vector<const viz::Scene*>& views,
                      const EdgeDiffHint* edgeDiff);
    Bytes encodeKeyframe(const std::vector<const viz::Scene*>& views,
                         const std::vector<double>& scores);
    Bytes encodeLodPair(const std::vector<const viz::Scene*>& views,
                        const std::vector<double>& scores, const LodMapping& lod);
    Bytes encodeDelta(const std::vector<const viz::Scene*>& views,
                      const std::vector<double>& scores);
    void rebuildViewState(count viewIdx, const viz::Scene& scene, bool tryReuseGrid);
    std::uint32_t paletteIndexOf(count viewIdx, const viz::Color& c);

    DeltaEncoderOptions options_;
    std::uint32_t epoch_ = 0;
    std::uint32_t seq_ = 0;
    bool hasState_ = false;
    bool forceKeyframe_ = false;
    std::vector<ViewState> shadow_;
    std::vector<std::pair<node, node>> edges_;
    std::vector<float> scores_;
    // Per-view packed-RGB -> palette index, mirrors shadow_[v].palette.
    std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> paletteLookup_;
    // Pending edge diff of the frame being encoded (set by resolveEdges).
    const std::vector<std::pair<node, node>>* pendingAdded_ = nullptr;
    const std::vector<std::pair<node, node>>* pendingRemoved_ = nullptr;
    // Diff / merge scratch, reused across frames.
    std::vector<std::pair<node, node>> addScratch_, removeScratch_, mergeScratch_;
    std::vector<std::uint32_t> colorIdxScratch_;
    std::vector<std::array<std::uint16_t, 3>> qScratch_;
    FrameStats stats_;
    // LOD pair state: the stashed refine delta and its stats.
    Bytes refineFrame_;
    bool hasRefine_ = false;
    FrameStats refineStats_;
    std::vector<std::pair<node, node>> lodFineEdges_; // true edge set during pair encode
};

} // namespace rinkit::wire
