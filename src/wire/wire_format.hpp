#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/types.hpp"

namespace rinkit::wire {

/// Raw frame payload as shipped over the (simulated) websocket.
using Bytes = std::vector<std::uint8_t>;

/// Thrown by the decoder on any malformed input: truncated buffer, bad
/// magic/version, out-of-range index, or a delta whose base does not match
/// the decoder's state. Encoding never throws this.
class WireError : public std::runtime_error {
public:
    explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// ZigZag maps signed deltas to small unsigned varints: 0 -> 0, -1 -> 1,
/// 1 -> 2, -2 -> 3, ... so near-zero position deltas stay 1-2 bytes.
constexpr std::uint64_t zigzagEncode(std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzagDecode(std::uint64_t v) {
    return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Append-only little-endian byte sink. All multi-byte scalars are written
/// explicitly byte by byte, so frames are identical across hosts.
class ByteWriter {
public:
    void reserve(std::size_t bytes) { out_.reserve(bytes); }

    void u8(std::uint8_t v) { out_.push_back(v); }

    void u16(std::uint16_t v) {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void f32(float v) {
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u32(bits);
    }

    void f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    /// LEB128: 7 value bits per byte, high bit = continuation.
    void varint(std::uint64_t v) {
        while (v >= 0x80) {
            out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        out_.push_back(static_cast<std::uint8_t>(v));
    }

    void svarint(std::int64_t v) { varint(zigzagEncode(v)); }

    /// varint length prefix + raw bytes.
    void string(std::string_view s) {
        varint(s.size());
        out_.insert(out_.end(), s.begin(), s.end());
    }

    std::size_t size() const { return out_.size(); }
    Bytes take() { return std::move(out_); }
    const Bytes& bytes() const { return out_; }

private:
    Bytes out_;
};

/// Bounds-checked reader over a frame buffer. Every read validates the
/// remaining length first and throws WireError on truncation — the decoder
/// never reads past the end of an attacker-supplied buffer.
class ByteReader {
public:
    explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
    ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

    std::uint8_t u8() {
        need(1, "u8");
        return data_[pos_++];
    }

    std::uint16_t u16() {
        need(2, "u16");
        const std::uint16_t v = static_cast<std::uint16_t>(
            data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
        pos_ += 2;
        return v;
    }

    std::uint32_t u32() {
        need(4, "u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t u64() {
        need(8, "u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    float f32() {
        const std::uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    double f64() {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::uint64_t varint() {
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            need(1, "varint");
            const std::uint8_t byte = data_[pos_++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0) return v;
        }
        throw WireError("varint longer than 10 bytes");
    }

    std::int64_t svarint() { return zigzagDecode(varint()); }

    std::string string(std::size_t maxLen = 1 << 20) {
        const std::uint64_t len = varint();
        if (len > maxLen) throw WireError("string length exceeds cap");
        need(len, "string body");
        std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
        pos_ += len;
        return s;
    }

    /// Validates an element count read from the wire against the bytes
    /// actually left in the buffer: a count of N items each at least
    /// @p minBytesPerItem bytes cannot be honest if N * min > remaining.
    /// Rejecting here keeps hostile counts from driving huge allocations.
    std::uint64_t boundedCount(std::uint64_t n, std::size_t minBytesPerItem,
                               const char* what) {
        if (minBytesPerItem == 0) minBytesPerItem = 1;
        if (n > remaining() / minBytesPerItem) {
            throw WireError(std::string("count of ") + what + " exceeds frame size");
        }
        return n;
    }

    void expectEnd() const {
        if (pos_ != size_) throw WireError("trailing bytes after frame");
    }

private:
    void need(std::size_t n, const char* what) {
        if (size_ - pos_ < n) {
            throw WireError(std::string("truncated frame reading ") + what);
        }
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace rinkit::wire
