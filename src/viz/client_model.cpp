#include "src/viz/client_model.hpp"

#include <cstdio>

#include "src/support/json.hpp"
#include "src/support/timer.hpp"

namespace rinkit::viz {

double ClientCostModel::parseOnly(const std::string& figureJson) const {
    Timer t;
    const auto doc = JsonValue::parse(figureJson);
    // Touch the parsed tree so the parse cannot be optimized away.
    volatile std::size_t sink = doc.size();
    (void)sink;
    return t.elapsedMs();
}

double ClientCostModel::processUpdate(const std::string& figureJson, count nodes,
                                      count edges) const {
    Timer t;
    const auto doc = JsonValue::parse(figureJson);
    volatile std::size_t sink = doc.size();
    (void)sink;

    // DOM phase: one attribute string per visual element. A cutoff switch
    // leaves node markers untouched (partial update); a frame switch moves
    // every node and re-renders everything (full update) — the paper's
    // ~100 ms vs ~200 ms client overhead difference.
    const count elements = params_.fullUpdate ? nodes + edges : edges;
    volatile count checksum = 0;
    for (count e = 0; e < elements; ++e) {
        char attr[96];
        for (count r = 0; r < params_.workPerElement; ++r) {
            std::snprintf(attr, sizeof(attr),
                          "<g transform=\"translate(%llu)\" class=\"pt-%llu\"/>",
                          static_cast<unsigned long long>(e),
                          static_cast<unsigned long long>(r));
            checksum += static_cast<count>(attr[1]);
        }
    }
    (void)checksum;
    return t.elapsedMs();
}

} // namespace rinkit::viz
