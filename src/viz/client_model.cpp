#include "src/viz/client_model.hpp"

#include <cstdio>

#include "src/support/json.hpp"
#include "src/support/timer.hpp"

namespace rinkit::viz {

double ClientCostModel::parseOnly(const std::string& figureJson) const {
    Timer t;
    const auto doc = JsonValue::parse(figureJson);
    // Touch the parsed tree so the parse cannot be optimized away.
    volatile std::size_t sink = doc.size();
    (void)sink;
    return t.elapsedMs();
}

namespace {

/// The shared DOM-update phase: one attribute string per element, times
/// the per-element bookkeeping factor. Both payload models charge DOM
/// work through this single function so their comparison isolates payload
/// parsing and elements touched.
void domPatchWork(count elements, count workPerElement) {
    volatile count checksum = 0;
    for (count e = 0; e < elements; ++e) {
        char attr[96];
        for (count r = 0; r < workPerElement; ++r) {
            std::snprintf(attr, sizeof(attr),
                          "<g transform=\"translate(%llu)\" class=\"pt-%llu\"/>",
                          static_cast<unsigned long long>(e),
                          static_cast<unsigned long long>(r));
            checksum += static_cast<count>(attr[1]);
        }
    }
    (void)checksum;
}

} // namespace

double ClientCostModel::processUpdate(const std::string& figureJson, count nodes,
                                      count edges) const {
    Timer t;
    const auto doc = JsonValue::parse(figureJson);
    volatile std::size_t sink = doc.size();
    (void)sink;

    // DOM phase: one attribute string per visual element. A cutoff switch
    // leaves node markers untouched (partial update); a frame switch moves
    // every node and re-renders everything (full update) — the paper's
    // ~100 ms vs ~200 ms client overhead difference.
    const count elements = params_.fullUpdate ? nodes + edges : edges;
    domPatchWork(elements, params_.workPerElement);
    return t.elapsedMs();
}

double ClientCostModel::processWirePatch(const wire::Bytes& frame,
                                         wire::FrameDecoder& decoder,
                                         wire::PatchStats* statsOut) const {
    Timer t;
    // Parse phase: the real binary decode — every byte of the frame runs
    // through the bounds-checked reader and lands in the decoder state.
    const wire::PatchStats stats = decoder.apply(frame);
    if (statsOut != nullptr) *statsOut = stats;
    // Patch phase: only the elements this frame touched (a keyframe
    // degenerates to the full rebuild, same as the JSON path).
    domPatchWork(stats.elementsTouched(), params_.workPerElement);
    return t.elapsedMs();
}

} // namespace rinkit::viz
