#include "src/viz/figure.hpp"

#include <cmath>

#include "src/support/json.hpp"

namespace rinkit::viz {

namespace {

void writeAxis(JsonWriter& w, const char* name) {
    w.key(name);
    w.beginObject()
        .kv("visible", false)
        .kv("showgrid", false)
        .kv("zeroline", false)
        .endObject();
}

void writeSceneTraces(JsonWriter& w, const Scene& s, count sceneIndex) {
    const std::string sceneRef =
        sceneIndex == 0 ? "scene" : "scene" + std::to_string(sceneIndex + 1);

    // Edge trace: endpoints of each segment separated by null gaps.
    w.beginObject()
        .kv("type", "scatter3d")
        .kv("mode", "lines")
        .kv("name", s.title + " edges")
        .kv("scene", sceneRef)
        .kv("hoverinfo", "none");
    const double nan = std::nan("");
    for (const char* axis : {"x", "y", "z"}) {
        w.key(axis).beginArray();
        for (const auto& [u, v] : s.edges) {
            const Point3& a = s.nodePositions[u];
            const Point3& b = s.nodePositions[v];
            const double va = axis[0] == 'x' ? a.x : axis[0] == 'y' ? a.y : a.z;
            const double vb = axis[0] == 'x' ? b.x : axis[0] == 'y' ? b.y : b.z;
            w.value(va).value(vb).value(nan); // nan serializes as null = gap
        }
        w.endArray();
    }
    w.key("line").beginObject().kv("color", "#b0b0b0").kv("width", 1.5).endObject();
    w.endObject();

    // Node trace.
    w.beginObject()
        .kv("type", "scatter3d")
        .kv("mode", "markers")
        .kv("name", s.title)
        .kv("scene", sceneRef)
        .kv("hoverinfo", "text");
    for (const char* axis : {"x", "y", "z"}) {
        w.key(axis).beginArray();
        for (const auto& p : s.nodePositions) {
            w.value(axis[0] == 'x' ? p.x : axis[0] == 'y' ? p.y : p.z);
        }
        w.endArray();
    }
    w.key("marker").beginObject();
    w.kv("size", s.nodeSizes.size() == 1 ? s.nodeSizes[0] : 6.0);
    w.key("color").beginArray();
    for (const auto& c : s.nodeColors) w.value(c.hex());
    w.endArray();
    w.endObject(); // marker
    if (!s.nodeLabels.empty()) {
        w.key("text").beginArray();
        for (const auto& t : s.nodeLabels) w.value(t);
        w.endArray();
    }
    w.endObject();
}

} // namespace

std::string Figure::toJson() const {
    JsonWriter w;
    w.beginObject();
    w.key("data").beginArray();
    for (count i = 0; i < scenes_.size(); ++i) writeSceneTraces(w, scenes_[i], i);
    w.endArray();

    w.key("layout").beginObject();
    w.kv("showlegend", false);
    w.key("margin")
        .beginObject()
        .kv("l", 0)
        .kv("r", 0)
        .kv("t", 30)
        .kv("b", 0)
        .endObject();
    for (count i = 0; i < scenes_.size(); ++i) {
        const std::string sceneKey = i == 0 ? "scene" : "scene" + std::to_string(i + 1);
        w.key(sceneKey).beginObject();
        writeAxis(w, "xaxis");
        writeAxis(w, "yaxis");
        writeAxis(w, "zaxis");
        w.key("domain").beginObject();
        const double x0 = static_cast<double>(i) / static_cast<double>(scenes_.size());
        const double x1 = static_cast<double>(i + 1) / static_cast<double>(scenes_.size());
        w.key("x").beginArray().value(x0).value(x1).endArray();
        w.key("y").beginArray().value(0.0).value(1.0).endArray();
        w.endObject(); // domain
        w.kv("aspectmode", "data");
        w.endObject();
    }
    if (!scenes_.empty()) {
        w.key("title").beginObject().kv("text", scenes_.front().title).endObject();
    }
    w.endObject(); // layout
    w.endObject();
    return w.str();
}

} // namespace rinkit::viz
