#include "src/viz/figure.hpp"

#include <cmath>

#include "src/support/json.hpp"
#include "src/support/parallel.hpp"

namespace rinkit::viz {

namespace {

std::string sceneRefOf(count sceneIndex) {
    return sceneIndex == 0 ? "scene" : "scene" + std::to_string(sceneIndex + 1);
}

void writeAxis(JsonWriter& w, const char* name) {
    w.key(name);
    w.beginObject()
        .kv("visible", false)
        .kv("showgrid", false)
        .kv("zeroline", false)
        .endObject();
}

} // namespace

std::string Figure::edgeTraceJson(const Scene& s, count sceneIndex) {
    JsonWriter w;
    // 3 axes x (3 numbers per edge, ~18 bytes each) + fixed header.
    w.reserve(s.edges.size() * 3 * 3 * 18 + 256);

    // Edge trace: endpoints of each segment separated by null gaps.
    w.beginObject()
        .kv("type", "scatter3d")
        .kv("mode", "lines")
        .kv("name", s.title + " edges")
        .kv("scene", sceneRefOf(sceneIndex))
        .kv("hoverinfo", "none");
    const double nan = std::nan("");
    for (const char* axis : {"x", "y", "z"}) {
        w.key(axis).beginArray();
        for (const auto& [u, v] : s.edges) {
            const Point3& a = s.nodePositions[u];
            const Point3& b = s.nodePositions[v];
            const double va = axis[0] == 'x' ? a.x : axis[0] == 'y' ? a.y : a.z;
            const double vb = axis[0] == 'x' ? b.x : axis[0] == 'y' ? b.y : b.z;
            w.value(va).value(vb).value(nan); // nan serializes as null = gap
        }
        w.endArray();
    }
    w.key("line").beginObject().kv("color", "#b0b0b0").kv("width", 1.5).endObject();
    w.endObject();
    return w.str();
}

std::string Figure::nodeTraceJson(const Scene& s, count sceneIndex) {
    JsonWriter w;
    w.reserve(s.nodePositions.size() * (3 * 18 + 10 + 24) + 256);

    w.beginObject()
        .kv("type", "scatter3d")
        .kv("mode", "markers")
        .kv("name", s.title)
        .kv("scene", sceneRefOf(sceneIndex))
        .kv("hoverinfo", "text");
    for (const char* axis : {"x", "y", "z"}) {
        w.key(axis).beginArray();
        for (const auto& p : s.nodePositions) {
            w.value(axis[0] == 'x' ? p.x : axis[0] == 'y' ? p.y : p.z);
        }
        w.endArray();
    }
    w.key("marker").beginObject();
    w.kv("size", s.nodeSizes.size() == 1 ? s.nodeSizes[0] : 6.0);
    w.key("color").beginArray();
    for (const auto& c : s.nodeColors) w.value(c.hex());
    w.endArray();
    w.endObject(); // marker
    if (!s.nodeLabels.empty()) {
        w.key("text").beginArray();
        for (const auto& t : s.nodeLabels) w.value(t);
        w.endArray();
    }
    w.endObject();
    return w.str();
}

std::string Figure::toJson() const {
    const count S = scenes_.size();

    // Serialize all trace fragments in parallel (2 per scene); cached edge
    // traces pass through untouched.
    std::vector<std::string> traces(2 * S);
    parallelFor(2 * S, [&](index t) {
        const count i = t / 2;
        if (t % 2 == 0) {
            traces[t] = edgeJson_[i].empty() ? edgeTraceJson(scenes_[i], i)
                                             : edgeJson_[i];
        } else {
            traces[t] = nodeTraceJson(scenes_[i], i);
        }
    });

    std::size_t traceBytes = 0;
    for (const auto& t : traces) traceBytes += t.size();

    JsonWriter w;
    w.reserve(traceBytes + 512 * (S + 1));
    w.beginObject();
    w.key("data").beginArray();
    for (const auto& t : traces) w.appendRaw(t);
    w.endArray();

    w.key("layout").beginObject();
    w.kv("showlegend", false);
    w.key("margin")
        .beginObject()
        .kv("l", 0)
        .kv("r", 0)
        .kv("t", 30)
        .kv("b", 0)
        .endObject();
    for (count i = 0; i < S; ++i) {
        w.key(sceneRefOf(i)).beginObject();
        writeAxis(w, "xaxis");
        writeAxis(w, "yaxis");
        writeAxis(w, "zaxis");
        w.key("domain").beginObject();
        const double x0 = static_cast<double>(i) / static_cast<double>(S);
        const double x1 = static_cast<double>(i + 1) / static_cast<double>(S);
        w.key("x").beginArray().value(x0).value(x1).endArray();
        w.key("y").beginArray().value(0.0).value(1.0).endArray();
        w.endObject(); // domain
        w.kv("aspectmode", "data");
        w.endObject();
    }
    if (!scenes_.empty()) {
        w.key("title").beginObject().kv("text", scenes_.front().title).endObject();
    }
    w.endObject(); // layout
    w.endObject();
    return w.str();
}

} // namespace rinkit::viz
