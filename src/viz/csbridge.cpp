#include "src/viz/csbridge.hpp"

#include <stdexcept>

#include "src/support/json.hpp"

namespace rinkit::viz {

CytoscapeFigure::CytoscapeFigure(const Graph& g, const std::vector<Point3>& coordinates,
                                 const std::vector<double>& scores, Palette palette)
    : g_(g) {
    if (coordinates.size() != g.numberOfNodes() || scores.size() != g.numberOfNodes()) {
        throw std::invalid_argument("CytoscapeFigure: size mismatch");
    }
    scores_ = scores;
    colors_ = mapScores(scores, palette);

    // Project onto the two axes with the largest extent so the 2D view
    // keeps as much of the 3D structure visible as possible.
    Aabb box;
    for (const auto& p : coordinates) box.expand(p);
    const Point3 ext = box.valid() ? box.extent() : Point3{1, 1, 1};
    int drop; // the axis with the smallest spread is dropped
    if (ext.x <= ext.y && ext.x <= ext.z) drop = 0;
    else if (ext.y <= ext.x && ext.y <= ext.z) drop = 1;
    else drop = 2;

    positions_.reserve(coordinates.size());
    for (const auto& p : coordinates) {
        switch (drop) {
        case 0: positions_.emplace_back(p.y, p.z); break;
        case 1: positions_.emplace_back(p.x, p.z); break;
        default: positions_.emplace_back(p.x, p.y); break;
        }
    }
}

std::string CytoscapeFigure::toJson() const {
    JsonWriter w;
    w.beginObject();
    w.key("elements").beginObject();

    w.key("nodes").beginArray();
    for (node u = 0; u < g_.numberOfNodes(); ++u) {
        w.beginObject();
        w.key("data")
            .beginObject()
            .kv("id", "n" + std::to_string(u))
            .kv("score", scores_[u])
            .kv("color", colors_[u].hex())
            .endObject();
        w.key("position")
            .beginObject()
            .kv("x", positions_[u].first)
            .kv("y", positions_[u].second)
            .endObject();
        w.endObject();
    }
    w.endArray();

    w.key("edges").beginArray();
    g_.forEdges([&](node u, node v) {
        w.beginObject();
        w.key("data")
            .beginObject()
            .kv("id", "e" + std::to_string(u) + "_" + std::to_string(v))
            .kv("source", "n" + std::to_string(u))
            .kv("target", "n" + std::to_string(v))
            .endObject();
        w.endObject();
    });
    w.endArray();

    w.endObject(); // elements
    w.endObject();
    return w.str();
}

} // namespace rinkit::viz
