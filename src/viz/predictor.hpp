#pragma once

#include <cmath>
#include <cstdint>

#include "src/support/types.hpp"

namespace rinkit::viz {

/// What the predictor believes the next slider event will be.
struct Prediction {
    enum class Kind { None, Frame, Cutoff };
    Kind kind = Kind::None;
    index frame = 0;
    double cutoff = 0.0;

    bool valid() const { return kind != Kind::None; }
};

/// Last-direction monotone model over the widget's two graph-moving
/// sliders (trajectory frame, distance cutoff) — the prediction source of
/// the speculative precompute path.
///
/// A user dragging a slider produces a direction-persistent walk: tick
/// after tick in the same direction with a near-constant step, with the
/// occasional reversal. The model exploits exactly that and nothing more:
/// after two observations of the same control it predicts one more step of
/// the last-seen delta on the last-moved slider. A reversal or a control
/// switch mispredicts once and the model re-aims on the next observation —
/// no history beyond (last value, last delta) per control is kept, so the
/// predictor is O(1) in both state and update time.
///
/// Predictions at the range boundary (frame past the trajectory end,
/// cutoff outside [minCutoff, maxCutoff]) come back as Kind::None rather
/// than clamped: a clamped prediction would equal the current position,
/// and speculating the state we are already in is pure waste.
class Predictor {
public:
    struct Options {
        /// Exclusive upper bound for frame predictions (trajectory frame
        /// count). 0 disables the bound check.
        count frameCount = 0;
        double minCutoff = 0.5;
        double maxCutoff = 20.0;
    };

    Predictor() = default;
    explicit Predictor(const Options& options) : options_(options) {}

    void observeFrame(index frame) {
        const auto f = static_cast<std::int64_t>(frame);
        if (hasFrame_ && f != lastFrame_) {
            frameStep_ = f - lastFrame_;
            hasFrameStep_ = true;
            lastMoved_ = Prediction::Kind::Frame;
        }
        lastFrame_ = f;
        hasFrame_ = true;
    }

    void observeCutoff(double cutoff) {
        if (hasCutoff_ && std::abs(cutoff - lastCutoff_) > kEps) {
            cutoffStep_ = cutoff - lastCutoff_;
            hasCutoffStep_ = true;
            lastMoved_ = Prediction::Kind::Cutoff;
        }
        lastCutoff_ = cutoff;
        hasCutoff_ = true;
    }

    /// Full recompute / rebuild: the session's interaction pattern is
    /// interrupted, so stop predicting until a slider moves again.
    void reset() { *this = Predictor(options_); }

    Prediction predict() const {
        Prediction p;
        if (lastMoved_ == Prediction::Kind::Frame && hasFrameStep_) {
            const std::int64_t target = lastFrame_ + frameStep_;
            if (target < 0) return p;
            if (options_.frameCount > 0 &&
                target >= static_cast<std::int64_t>(options_.frameCount))
                return p;
            p.kind = Prediction::Kind::Frame;
            p.frame = static_cast<index>(target);
        } else if (lastMoved_ == Prediction::Kind::Cutoff && hasCutoffStep_) {
            const double target = lastCutoff_ + cutoffStep_;
            if (target < options_.minCutoff || target > options_.maxCutoff) return p;
            p.kind = Prediction::Kind::Cutoff;
            p.cutoff = target;
        }
        return p;
    }

    const Options& options() const { return options_; }

private:
    static constexpr double kEps = 1e-12;

    Options options_{};
    std::int64_t lastFrame_ = 0;
    std::int64_t frameStep_ = 0;
    double lastCutoff_ = 0.0;
    double cutoffStep_ = 0.0;
    bool hasFrame_ = false, hasFrameStep_ = false;
    bool hasCutoff_ = false, hasCutoffStep_ = false;
    Prediction::Kind lastMoved_ = Prediction::Kind::None;
};

} // namespace rinkit::viz
