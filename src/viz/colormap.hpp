#pragma once

#include <string>
#include <vector>

#include "src/support/types.hpp"

namespace rinkit::viz {

/// An sRGB color with 8-bit channels.
struct Color {
    int r = 0, g = 0, b = 0;

    bool operator==(const Color&) const = default;

    /// "#rrggbb" (what plotly's marker.color accepts).
    std::string hex() const;
};

/// Continuous color palettes for mapping node scores to colors.
///
/// Spectral (blue -> red) is the palette of the paper's Fig. 5 ("coloring
/// of the nodes is done with a spectral color palette (blue - red), whereas
/// each color is defined by Closeness-value of the node").
enum class Palette { Spectral, Viridis, Plasma, Coolwarm };

/// Samples @p palette at @p t in [0, 1] (clamped) by piecewise-linear
/// interpolation of its anchor colors.
Color sample(Palette palette, double t);

/// Maps raw scores to colors: scores are min-max normalized, then sampled.
/// Constant score vectors map to the palette midpoint. NaNs map to grey.
std::vector<Color> mapScores(const std::vector<double>& scores, Palette palette);

/// Categorical colors for community ids: evenly spaced samples with
/// maximally separated ordering, repeating after `categoricalCycle()` hues.
Color categorical(index id);
count categoricalCycle();

} // namespace rinkit::viz
