#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/point3.hpp"
#include "src/viz/colormap.hpp"

namespace rinkit::viz {

/// Renderable 3D scene: node markers (position, color, size, hover text)
/// plus edge segments. The in-memory counterpart of one plotly Scatter3d
/// pair; Figure serializes it to plotly JSON.
struct Scene {
    std::string title;
    std::vector<Point3> nodePositions;
    std::vector<Color> nodeColors;
    std::vector<double> nodeSizes;       ///< marker sizes (same for all if 1 entry)
    std::vector<std::string> nodeLabels; ///< hover text per node (optional)
    std::vector<std::pair<node, node>> edges;

    count nodeCount() const { return nodePositions.size(); }
    count edgeCount() const { return edges.size(); }
};

/// Builds a scene from a graph, a layout and per-node scores colored with
/// @p palette. Labels carry "node <id>: <score>" hover text like the
/// widget's text-box displays. Pass includeEdges = false when the caller
/// reuses a cached serialized edge trace (markers-only updates) — the
/// edge list copy is skipped entirely.
Scene makeScene(const Graph& g, const std::vector<Point3>& coordinates,
                const std::vector<double>& scores, Palette palette,
                const std::string& title, bool includeEdges = true);

/// Builds a community-colored scene (categorical palette over subset ids).
Scene makeCommunityScene(const Graph& g, const std::vector<Point3>& coordinates,
                         const std::vector<index>& communities,
                         const std::string& title, bool includeEdges = true);

} // namespace rinkit::viz
