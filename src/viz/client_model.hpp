#pragma once

#include <string>

#include "src/support/types.hpp"
#include "src/wire/scene_frame.hpp"

namespace rinkit::viz {

/// Simulated browser client for measuring the "whole update cycle as
/// perceived on the client" (Figs. 6c, 7f, 8i).
///
/// SUBSTITUTION (see DESIGN.md): the paper measures Firefox on an M1
/// MacBook; there is no browser here. The client-side cost is, physically,
/// (1) parsing the shipped payload and (2) updating DOM elements. Both are
/// reproduced as real work, not a sleep.
///
/// Two payload models exist:
///  - JSON (processUpdate): the full plotly figure is parsed with the
///    rinkit JSON parser and the DOM phase rebuilds one element per
///    visual (every marker and/or edge segment) — parse + full rebuild.
///  - Binary wire (processWirePatch): the frame is decoded with
///    wire::FrameDecoder (bytes parsed is the real decode over the frame's
///    bytes) and the DOM phase touches only the elements the frame
///    actually changed (PatchStats::elementsTouched) — parse + patch.
///
/// In both, one DOM element costs `workPerElement` synthetic attribute
/// string builds, calibrated so a full JSON update of a ~1000-edge figure
/// lands in the paper's 300-600 ms regime; the same per-element price is
/// charged on both paths, so the JSON/binary comparison isolates payload
/// size and elements touched, not a retuned constant.
class ClientCostModel {
public:
    struct Parameters {
        /// Bookkeeping charge per DOM element update, in synthetic
        /// attribute-string builds (~0.1 us each). The calibration knob:
        /// 40 puts a 2 x 1000-node full rebuild at a few hundred ms.
        count workPerElement = 40;
        /// JSON path only: elements rebuilt on a partial update (edges
        /// only, e.g. cutoff switch without node movement) vs full (all
        /// markers + edges). The wire path ignores this — the decoded
        /// frame itself says which elements were touched.
        bool fullUpdate = true;
    };

    ClientCostModel() : ClientCostModel(Parameters{}) {}
    explicit ClientCostModel(Parameters params) : params_(params) {}

    /// Processes @p figureJson as the browser would; returns elapsed ms.
    /// @p nodes / @p edges describe the scene for the DOM-update phase.
    double processUpdate(const std::string& figureJson, count nodes, count edges) const;

    /// Applies one binary wire frame as the browser would: the real frame
    /// decode into @p decoder (the parse phase), then one attribute-string
    /// build per element the frame touched (the patch phase). Returns
    /// elapsed ms; fills @p statsOut if given. Decode errors propagate as
    /// wire::WireError after the decoder dropped its state (its resync
    /// path), so the caller's next ack requests a keyframe.
    double processWirePatch(const wire::Bytes& frame, wire::FrameDecoder& decoder,
                            wire::PatchStats* statsOut = nullptr) const;

    /// Parse-only cost in ms (for instrumentation splits).
    double parseOnly(const std::string& figureJson) const;

private:
    Parameters params_;
};

} // namespace rinkit::viz
