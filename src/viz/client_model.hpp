#pragma once

#include <string>

#include "src/support/types.hpp"

namespace rinkit::viz {

/// Simulated browser client for measuring the "whole update cycle as
/// perceived on the client" (Figs. 6c, 7f, 8i).
///
/// SUBSTITUTION (see DESIGN.md): the paper measures Firefox on an M1
/// MacBook; there is no browser here. The client-side cost is, physically,
/// (1) parsing the figure JSON and (2) rebuilding/updating DOM elements
/// for every marker and line segment. Both are reproduced as real work,
/// not a sleep: the payload is parsed with the rinkit JSON parser, and the
/// DOM update is modeled by materializing one attribute string per visual
/// element (plus a fixed per-element bookkeeping overhead calibrated so
/// that a full update of a ~1000-edge figure lands in the paper's
/// 300-600 ms regime).
class ClientCostModel {
public:
    struct Parameters {
        /// Extra bookkeeping charge per DOM element update, in synthetic
        /// string-build repetitions (calibration knob).
        count workPerElement = 40;
        /// Elements rebuilt on a partial update (edges only, e.g. cutoff
        /// switch without node movement) vs full (all markers + edges).
        bool fullUpdate = true;
    };

    ClientCostModel() : ClientCostModel(Parameters{}) {}
    explicit ClientCostModel(Parameters params) : params_(params) {}

    /// Processes @p figureJson as the browser would; returns elapsed ms.
    /// @p nodes / @p edges describe the scene for the DOM-update phase.
    double processUpdate(const std::string& figureJson, count nodes, count edges) const;

    /// Parse-only cost in ms (for instrumentation splits).
    double parseOnly(const std::string& figureJson) const;

private:
    Parameters params_;
};

} // namespace rinkit::viz
