#include "src/viz/widget.hpp"

#include <algorithm>

#include "src/support/timer.hpp"
#include "src/viz/figure.hpp"

namespace rinkit::viz {

RinWidget::RinWidget(const md::Trajectory& traj, Options options)
    : options_(options),
      rin_(traj, options.criterion, options.initialCutoff, options.initialFrame),
      measure_(options.initialMeasure) {
    refresh();
}

void RinWidget::recomputeLayout(UpdateTiming& t) {
    Timer timer;
    MaxentStress::Parameters params;
    // Degraded mode gives up layout quality for latency: only the short
    // warm-start polish runs even on a cold start.
    params.iterations = degraded_ && options_.layoutWarmStartIterations > 0
                            ? std::min(options_.layoutIterations,
                                       options_.layoutWarmStartIterations)
                            : options_.layoutIterations;
    params.warmStartIterations = options_.layoutWarmStartIterations;
    params.seed = options_.seed;
    MaxentStress layout(rin_.graph(), 3, params);
    // Seed with the previous layout so consecutive frames stay visually
    // coherent (and converge faster).
    if (maxentCoords_.size() == rin_.graph().numberOfNodes()) {
        layout.setInitialCoordinates(maxentCoords_);
    }
    layout.run();
    maxentCoords_ = layout.getCoordinates();
    t.layoutMs = timer.elapsedMs();
}

void RinWidget::recomputeMeasure(UpdateTiming& t) {
    if (!measure_) return;
    Timer timer;
    if (!scores_.empty()) buffer_ = scores_; // keep the most recent result
    scores_ = engine_.scores(rin_.graph(), *measure_, &t.measureCacheHit, degraded_);
    t.measureMs = timer.elapsedMs();
}

std::vector<double> RinWidget::displayedScores() const {
    if (!deltaMode_ || buffer_.size() != scores_.size()) return scores_;
    std::vector<double> delta(scores_.size());
    for (count i = 0; i < scores_.size(); ++i) delta[i] = scores_[i] - buffer_[i];
    return delta;
}

void RinWidget::renderAndShip(UpdateTiming& t, bool fullClientUpdate, bool markersOnly) {
    const Graph& g = rin_.graph();
    t.degraded = degraded_;

    Timer buildTimer;
    // Left view: the real protein conformation (C-alpha positions), the
    // paper's "protein-based layout". Right view: Maxent-Stress.
    const auto proteinCoords = rin_.protein().alphaCarbons();
    std::vector<double> shown = displayedScores();
    if (shown.empty()) shown.assign(g.numberOfNodes(), 0.0);

    // With valid cached edge traces the scenes skip copying the edge list
    // entirely — a markers-only update never touches edge geometry.
    const bool needEdges = !edgeTracesValid_;
    const bool community = measure_ && isCommunityMeasure(*measure_) && !deltaMode_;
    Scene left, right;
    if (community) {
        std::vector<index> comm(shown.size());
        for (count i = 0; i < shown.size(); ++i) comm[i] = static_cast<index>(shown[i]);
        left = makeCommunityScene(g, proteinCoords, comm, "protein layout", needEdges);
        right = makeCommunityScene(g, maxentCoords_, comm, "Maxent-Stress layout", needEdges);
    } else {
        left = makeScene(g, proteinCoords, shown, options_.palette, "protein layout",
                         needEdges);
        right = makeScene(g, maxentCoords_, shown, options_.palette,
                          "Maxent-Stress layout", needEdges);
    }
    t.sceneBuildMs = buildTimer.elapsedMs();

    Timer serializeTimer;
    if (!edgeTracesValid_) {
        edgeTraceCache_[0] = Figure::edgeTraceJson(left, 0);
        edgeTraceCache_[1] = Figure::edgeTraceJson(right, 1);
        t.edgeBytesSerialized = edgeTraceCache_[0].size() + edgeTraceCache_[1].size();
        edgeTracesValid_ = true;
    }
    Figure fig;
    fig.addScene(left, edgeTraceCache_[0]);
    fig.addScene(right, edgeTraceCache_[1]);
    figureJson_ = fig.toJson();
    t.serializeMs = serializeTimer.elapsedMs();
    t.serializedBytes = figureJson_.size();

    ClientCostModel::Parameters clientParams;
    clientParams.fullUpdate = fullClientUpdate;
    const ClientCostModel client(clientParams);
    // Both scenes ship; markers-only events re-render node markers only.
    const count nodes = 2 * g.numberOfNodes();
    const count edges = markersOnly ? 0 : 2 * g.numberOfEdges();
    t.clientMs = client.processUpdate(figureJson_, nodes, edges);
}

RinWidget::UpdateTiming RinWidget::setFrame(index frame) {
    UpdateTiming t;
    edgeTracesValid_ = false; // node positions move
    Timer netTimer;
    t.edgeStats = rin_.setFrame(frame);
    t.networkUpdateMs = netTimer.elapsedMs();

    recomputeLayout(t);
    if (options_.autoRecompute) recomputeMeasure(t);
    // Node positions changed: the client rebuilds every DOM element.
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/false);
    return t;
}

RinWidget::UpdateTiming RinWidget::setCutoff(double cutoff) {
    UpdateTiming t;
    edgeTracesValid_ = false; // edge set changes
    Timer netTimer;
    t.edgeStats = rin_.setCutoff(cutoff);
    t.networkUpdateMs = netTimer.elapsedMs();

    recomputeLayout(t);
    if (options_.autoRecompute) recomputeMeasure(t);
    // Protein-view node positions are unchanged between cutoffs: the
    // client only updates edge elements (paper: ~100 ms vs ~200 ms).
    renderAndShip(t, /*fullClientUpdate=*/false, /*markersOnly=*/false);
    return t;
}

RinWidget::UpdateTiming RinWidget::setMeasure(Measure measure) {
    UpdateTiming t;
    measure_ = measure;
    recomputeMeasure(t);
    // Only marker colors change.
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/true);
    return t;
}

RinWidget::UpdateTiming RinWidget::refresh() {
    UpdateTiming t;
    edgeTracesValid_ = false;
    Timer netTimer;
    rin_.rebuild();
    t.networkUpdateMs = netTimer.elapsedMs();
    recomputeLayout(t);
    recomputeMeasure(t);
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/false);
    return t;
}

} // namespace rinkit::viz
