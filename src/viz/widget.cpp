#include "src/viz/widget.hpp"

#include <algorithm>

#include "src/layout/multilevel_maxent_stress.hpp"
#include "src/obs/trace.hpp"
#include "src/viz/figure.hpp"

namespace rinkit::viz {

// The update cycle is instrumented with obs spans and *derives* the
// UpdateTiming fields from them (ScopedSpan::finishMs is the single pair
// of clock reads per phase), so the trace a request exports and the
// timing struct the serving layer aggregates can never disagree.

namespace {

MeasureEngine::Options engineOptions(const RinWidgetOptions& o) {
    MeasureEngine::Options e;
    e.dynamicMeasures = o.dynamicMeasures;
    e.dynStateMaxNodes = o.dynStateMaxNodes;
    e.seed = o.seed;
    return e;
}

} // namespace

RinWidget::RinWidget(const md::Trajectory& traj, Options options)
    : options_(options),
      rin_(traj, options.criterion, options.initialCutoff, options.initialFrame),
      engine_(engineOptions(options)),
      measure_(options.initialMeasure),
      wireEncoder_(wire::DeltaEncoderOptions{options.wireKeyframeInterval}) {
    refresh();
}

void RinWidget::recomputeLayout(UpdateTiming& t) {
    obs::ScopedSpan span("widget.layout");
    const Graph& g = rin_.graph();
    // Seed with the previous layout so consecutive frames stay visually
    // coherent (and converge faster).
    const bool warmStart = maxentCoords_.size() == g.numberOfNodes();
    count iterationsDone = 0;
    count levels = 1;
    count coarsestNodes = g.numberOfNodes();
    bool converged = false;

    if (!warmStart && options_.multilevelLayout) {
        // Cold start (first frame, or recovery after a degraded stretch
        // changed the node count): full multilevel V-cycle.
        MultilevelMaxentStress::Parameters params;
        params.sweep.seed = options_.seed;
        MultilevelMaxentStress layout(g, 3, params);
        layout.setWorkspace(&layoutWorkspace_);
        layout.run();
        maxentCoords_ = layout.getCoordinates();
        iterationsDone = layout.iterationsDone();
        levels = layout.levels();
        coarsestNodes = layout.coarsestNodes();
        converged = layout.converged();
    } else {
        MaxentStress::Parameters params;
        // Degraded mode gives up layout quality for latency: only the short
        // warm-start polish runs even on a cold start.
        params.iterations = degraded() && options_.layoutWarmStartIterations > 0
                                ? std::min(options_.layoutIterations,
                                           options_.layoutWarmStartIterations)
                                : options_.layoutIterations;
        params.warmStartIterations = options_.layoutWarmStartIterations;
        params.seed = options_.seed;
        MaxentStress layout(g, 3, params);
        layout.setWorkspace(&layoutWorkspace_);
        if (warmStart) {
            layout.setInitialCoordinates(maxentCoords_);
        }
        layout.run();
        maxentCoords_ = layout.getCoordinates();
        iterationsDone = layout.iterationsDone();
        converged = layout.converged();
    }
    span.attr("warm_start", warmStart);
    span.attr("iterations_done", iterationsDone);
    span.attr("converged", converged);
    span.attr("levels", levels);
    span.attr("coarsest_nodes", coarsestNodes);
    t.layoutMs = span.finishMs();
}

void RinWidget::recomputeMeasure(UpdateTiming& t) {
    if (!measure_) return;
    obs::ScopedSpan span("widget.measure");
    if (!scores_.empty()) buffer_ = scores_; // keep the most recent result
    MeasureEngine::Request req;
    req.tolerance = options_.measureErrorTolerance;
    req.degrade = degradeLevel_;
    MeasureEngine::ResultInfo resultInfo;
    scores_ = engine_.scores(rin_.graph(), *measure_, req, &resultInfo);
    t.measureCacheHit = resultInfo.cacheHit;
    t.measureTier = resultInfo.tier;
    t.measureEps = resultInfo.epsilon;
    t.measureDelta = resultInfo.delta;
    t.measureSamples = resultInfo.samples;
    t.measureDiffEdges = resultInfo.diffEdges;
    span.attr("measure", measureName(*measure_));
    span.attr("cache_hit", t.measureCacheHit);
    span.attr("degraded", degraded());
    span.attr("tier", tierName(resultInfo.tier));
    if (resultInfo.epsilon > 0.0) span.attr("eps", resultInfo.epsilon);
    if (resultInfo.samples > 0) span.attr("samples", resultInfo.samples);
    t.measureMs = span.finishMs();
}

std::vector<double> RinWidget::displayedScores() const {
    if (!deltaMode_ || buffer_.size() != scores_.size()) return scores_;
    std::vector<double> delta(scores_.size());
    for (count i = 0; i < scores_.size(); ++i) delta[i] = scores_[i] - buffer_[i];
    return delta;
}

void RinWidget::renderAndShip(UpdateTiming& t, bool fullClientUpdate, bool markersOnly,
                              EdgeDelta edgeDelta) {
    const Graph& g = rin_.graph();
    t.degraded = degraded();
    const bool binary = options_.wireFormat == WireFormat::Binary;

    obs::ScopedSpan buildSpan("widget.scene_build");
    // Left view: the real protein conformation (C-alpha positions), the
    // paper's "protein-based layout". Right view: Maxent-Stress.
    const auto proteinCoords = rin_.protein().alphaCarbons();
    std::vector<double> shown = displayedScores();
    if (shown.empty()) shown.assign(g.numberOfNodes(), 0.0);

    // JSON mode: the scenes need the edge list whenever the serialized
    // edge-trace cache is stale. Binary mode: only when the edge delta is
    // unknown (full rebuild) — otherwise the delta encoder patches its
    // shadow edge set from DynamicRin's exact diff and never sees (or
    // copies) the full list.
    const bool needEdges = binary ? edgeDelta == EdgeDelta::Full : !edgeTracesValid_;
    const bool community = measure_ && isCommunityMeasure(*measure_) && !deltaMode_;
    Scene left, right;
    if (community) {
        std::vector<index> comm(shown.size());
        for (count i = 0; i < shown.size(); ++i) comm[i] = static_cast<index>(shown[i]);
        left = makeCommunityScene(g, proteinCoords, comm, "protein layout", needEdges);
        right = makeCommunityScene(g, maxentCoords_, comm, "Maxent-Stress layout", needEdges);
    } else {
        left = makeScene(g, proteinCoords, shown, options_.palette, "protein layout",
                         needEdges);
        right = makeScene(g, maxentCoords_, shown, options_.palette,
                          "Maxent-Stress layout", needEdges);
    }
    t.sceneBuildMs = buildSpan.finishMs();

    if (binary) {
        obs::ScopedSpan serializeSpan("widget.serialize");
        static const std::vector<std::pair<node, node>> kNoEdges;
        wire::EdgeDiffHint hint;
        switch (edgeDelta) {
        case EdgeDelta::None:
            hint.added = &kNoEdges;
            hint.removed = &kNoEdges;
            break;
        case EdgeDelta::Diffed:
            hint.added = &rin_.lastAdded();
            hint.removed = &rin_.lastRemoved();
            break;
        case EdgeDelta::Full:
            break; // no hint: the scenes carry the full edge list
        }
        const wire::EdgeDiffHint* hintPtr = edgeDelta == EdgeDelta::Full ? nullptr : &hint;
        wireFrame_ = wireEncoder_.encode({&left, &right}, shown, wireClient_.ack(), hintPtr);
        const auto& frameStats = wireEncoder_.lastStats();
        t.wireBytes = wireFrame_.size();
        t.binaryWire = true;
        t.wireKeyframe = frameStats.keyframe;
        serializeSpan.attr("format", "binary");
        serializeSpan.attr("wire_bytes", static_cast<double>(t.wireBytes));
        serializeSpan.attr("wire_keyframe", frameStats.keyframe);
        serializeSpan.attr("wire_reason", std::string_view(frameStats.reason));
        t.serializeMs = serializeSpan.finishMs();

        wire::PatchStats patch;
        t.clientMs = client_.processWirePatch(wireFrame_, wireClient_, &patch);
        t.wirePatchElements = patch.elementsTouched();
    } else {
        obs::ScopedSpan serializeSpan("widget.serialize");
        if (!edgeTracesValid_) {
            edgeTraceCache_[0] = Figure::edgeTraceJson(left, 0);
            edgeTraceCache_[1] = Figure::edgeTraceJson(right, 1);
            t.edgeBytesSerialized = edgeTraceCache_[0].size() + edgeTraceCache_[1].size();
            edgeTracesValid_ = true;
        }
        Figure fig;
        fig.addScene(left, edgeTraceCache_[0]);
        fig.addScene(right, edgeTraceCache_[1]);
        figureJson_ = fig.toJson();
        t.serializedBytes = figureJson_.size();
        t.wireBytes = figureJson_.size();
        serializeSpan.attr("format", "json");
        serializeSpan.attr("serialized_bytes", static_cast<double>(t.serializedBytes));
        serializeSpan.attr("edge_bytes", static_cast<double>(t.edgeBytesSerialized));
        serializeSpan.attr("wire_bytes", static_cast<double>(t.wireBytes));
        t.serializeMs = serializeSpan.finishMs();

        ClientCostModel::Parameters clientParams;
        clientParams.fullUpdate = fullClientUpdate;
        const ClientCostModel client(clientParams);
        // Both scenes ship; markers-only events re-render node markers only.
        const count nodes = 2 * g.numberOfNodes();
        const count edges = markersOnly ? 0 : 2 * g.numberOfEdges();
        t.clientMs = client.processUpdate(figureJson_, nodes, edges);
    }

    // The client phase is modeled, not measured — record it as a span with
    // synthetic extent so the exported trace still shows the full cycle the
    // paper's figures decompose.
    obs::Tracer& tracer = obs::Tracer::global();
    const obs::SpanContext ctx = tracer.currentContext();
    if (ctx.sampled) {
        const double start = tracer.nowUs();
        std::vector<obs::SpanAttr> attrs(binary ? 3 : 2);
        attrs[0].key = "simulated";
        attrs[0].num = 1.0;
        attrs[1].key = "wire_bytes";
        attrs[1].num = static_cast<double>(t.wireBytes);
        if (binary) {
            attrs[2].key = "patch_elements";
            attrs[2].num = static_cast<double>(t.wirePatchElements);
        }
        tracer.recordSpan("widget.client", ctx, tracer.nextId(), ctx.spanId, start,
                          start + t.clientMs * 1000.0, std::move(attrs));
    }
}

RinWidget::UpdateTiming RinWidget::setFrame(index frame) {
    obs::ScopedSpan span("widget.set_frame");
    span.attr("frame", static_cast<double>(frame));
    UpdateTiming t;
    edgeTracesValid_ = false; // node positions move
    const std::uint64_t preVersion = rin_.graph().version();
    {
        obs::ScopedSpan net("widget.network_update");
        t.edgeStats = rin_.setFrame(frame);
        net.attr("edges_added", t.edgeStats.edgesAdded);
        net.attr("edges_removed", t.edgeStats.edgesRemoved);
        net.attr("edges_total", t.edgeStats.edgesTotal);
        t.networkUpdateMs = net.finishMs();
    }
    // Hand the exact edge diff to the measure engine so the dynamic
    // kernels can repair their state instead of recomputing.
    engine_.noteDiff(rin_.graph(), preVersion, rin_.lastAdded(), rin_.lastRemoved());

    recomputeLayout(t);
    if (options_.autoRecompute) recomputeMeasure(t);
    // Node positions changed: the client rebuilds every DOM element (JSON
    // mode); the wire encoder ships the exact edge diff + moved positions.
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/false,
                  EdgeDelta::Diffed);
    span.attr("degraded", degraded());
    return t;
}

RinWidget::UpdateTiming RinWidget::setCutoff(double cutoff) {
    obs::ScopedSpan span("widget.set_cutoff");
    span.attr("cutoff", cutoff);
    UpdateTiming t;
    edgeTracesValid_ = false; // edge set changes
    const std::uint64_t preVersion = rin_.graph().version();
    {
        obs::ScopedSpan net("widget.network_update");
        t.edgeStats = rin_.setCutoff(cutoff);
        net.attr("edges_added", t.edgeStats.edgesAdded);
        net.attr("edges_removed", t.edgeStats.edgesRemoved);
        net.attr("edges_total", t.edgeStats.edgesTotal);
        t.networkUpdateMs = net.finishMs();
    }
    engine_.noteDiff(rin_.graph(), preVersion, rin_.lastAdded(), rin_.lastRemoved());

    recomputeLayout(t);
    if (options_.autoRecompute) recomputeMeasure(t);
    // Protein-view node positions are unchanged between cutoffs: the
    // client only updates edge elements (paper: ~100 ms vs ~200 ms).
    renderAndShip(t, /*fullClientUpdate=*/false, /*markersOnly=*/false,
                  EdgeDelta::Diffed);
    span.attr("degraded", degraded());
    return t;
}

RinWidget::UpdateTiming RinWidget::setMeasure(Measure measure) {
    obs::ScopedSpan span("widget.set_measure");
    span.attr("measure", measureName(measure));
    UpdateTiming t;
    measure_ = measure;
    recomputeMeasure(t);
    // Only marker colors change; the edge set is untouched.
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/true, EdgeDelta::None);
    span.attr("degraded", degraded());
    return t;
}

RinWidget::UpdateTiming RinWidget::refresh() {
    obs::ScopedSpan span("widget.refresh");
    UpdateTiming t;
    edgeTracesValid_ = false;
    {
        obs::ScopedSpan net("widget.network_update");
        rin_.rebuild();
        net.attr("edges_total", rin_.graph().numberOfEdges());
        t.networkUpdateMs = net.finishMs();
    }
    // A rebuild has no diff: the dynamic measure state cannot be repaired.
    engine_.invalidateDynamic();
    recomputeLayout(t);
    recomputeMeasure(t);
    // A rebuild invalidates any incremental diff: ship the full edge list.
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/false, EdgeDelta::Full);
    span.attr("degraded", degraded());
    return t;
}

} // namespace rinkit::viz
