#include "src/viz/widget.hpp"

#include <algorithm>
#include <cmath>

#include "src/layout/multilevel_maxent_stress.hpp"
#include "src/obs/trace.hpp"
#include "src/viz/figure.hpp"

namespace rinkit::viz {

// The update cycle is instrumented with obs spans and *derives* the
// UpdateTiming fields from them (ScopedSpan::finishMs is the single pair
// of clock reads per phase), so the trace a request exports and the
// timing struct the serving layer aggregates can never disagree.

namespace {

MeasureEngine::Options engineOptions(const RinWidgetOptions& o) {
    MeasureEngine::Options e;
    e.dynamicMeasures = o.dynamicMeasures;
    e.dynStateMaxNodes = o.dynStateMaxNodes;
    e.seed = o.seed;
    return e;
}

} // namespace

RinWidget::RinWidget(const md::Trajectory& traj, Options options)
    : options_(options),
      rin_(traj, options.criterion, options.initialCutoff, options.initialFrame),
      engine_(engineOptions(options)),
      measure_(options.initialMeasure),
      wireEncoder_(wire::DeltaEncoderOptions{options.wireKeyframeInterval}) {
    Predictor::Options pred;
    pred.frameCount = traj.frameCount();
    predictor_ = Predictor(pred);
    refresh();
}

void RinWidget::recomputeLayout(UpdateTiming& t) {
    obs::ScopedSpan span("widget.layout");
    const Graph& g = rin_.graph();
    // Seed with the previous layout so consecutive frames stay visually
    // coherent (and converge faster).
    const bool warmStart = maxentCoords_.size() == g.numberOfNodes();
    count iterationsDone = 0;
    count levels = 1;
    count coarsestNodes = g.numberOfNodes();
    bool converged = false;

    if (!warmStart && options_.multilevelLayout) {
        // Cold start (first frame, or recovery after a degraded stretch
        // changed the node count): full multilevel V-cycle.
        MultilevelMaxentStress::Parameters params;
        params.sweep.seed = options_.seed;
        MultilevelMaxentStress layout(g, 3, params);
        layout.setWorkspace(&layoutWorkspace_);
        layout.run();
        maxentCoords_ = layout.getCoordinates();
        iterationsDone = layout.iterationsDone();
        levels = layout.levels();
        coarsestNodes = layout.coarsestNodes();
        converged = layout.converged();
    } else {
        MaxentStress::Parameters params;
        // Degraded mode gives up layout quality for latency: only the short
        // warm-start polish runs even on a cold start.
        params.iterations = degraded() && options_.layoutWarmStartIterations > 0
                                ? std::min(options_.layoutIterations,
                                           options_.layoutWarmStartIterations)
                                : options_.layoutIterations;
        params.warmStartIterations = options_.layoutWarmStartIterations;
        params.seed = options_.seed;
        MaxentStress layout(g, 3, params);
        layout.setWorkspace(&layoutWorkspace_);
        if (warmStart) {
            layout.setInitialCoordinates(maxentCoords_);
        }
        layout.run();
        maxentCoords_ = layout.getCoordinates();
        iterationsDone = layout.iterationsDone();
        converged = layout.converged();
    }
    span.attr("warm_start", warmStart);
    span.attr("iterations_done", iterationsDone);
    span.attr("converged", converged);
    span.attr("levels", levels);
    span.attr("coarsest_nodes", coarsestNodes);
    t.layoutMs = span.finishMs();
}

void RinWidget::recomputeMeasure(UpdateTiming& t) {
    if (!measure_) return;
    obs::ScopedSpan span("widget.measure");
    if (!scores_.empty()) buffer_ = scores_; // keep the most recent result
    MeasureEngine::Request req;
    req.tolerance = options_.measureErrorTolerance;
    req.degrade = degradeLevel_;
    MeasureEngine::ResultInfo resultInfo;
    scores_ = engine_.scores(rin_.graph(), *measure_, req, &resultInfo);
    t.measureCacheHit = resultInfo.cacheHit;
    t.measureTier = resultInfo.tier;
    t.measureEps = resultInfo.epsilon;
    t.measureDelta = resultInfo.delta;
    t.measureSamples = resultInfo.samples;
    t.measureDiffEdges = resultInfo.diffEdges;
    span.attr("measure", measureName(*measure_));
    span.attr("cache_hit", t.measureCacheHit);
    span.attr("degraded", degraded());
    span.attr("tier", tierName(resultInfo.tier));
    if (resultInfo.epsilon > 0.0) span.attr("eps", resultInfo.epsilon);
    if (resultInfo.samples > 0) span.attr("samples", resultInfo.samples);
    t.measureMs = span.finishMs();
}

bool RinWidget::speculate(const std::function<bool()>& cancelled) {
    const Prediction pred = predictor_.predict();
    if (!pred.valid()) return false;
    const std::uint64_t version = rin_.graph().version();
    if (spec_.valid && spec_.baseVersion == version && spec_.pred.kind == pred.kind &&
        spec_.pred.frame == pred.frame && spec_.pred.cutoff == pred.cutoff &&
        spec_.measure == measure_)
        return true; // exactly this speculation is already pending
    spec_.valid = false;

    obs::ScopedSpan span("widget.speculate");
    span.attr("kind", pred.kind == Prediction::Kind::Frame ? "frame" : "cutoff");
    const auto aborted = [&] { return cancelled && cancelled(); };

    // Phase 1 — network side work. Both branches are pure cache warming on
    // DynamicRin (an extended contact cache, a frame side slot): legal to
    // keep even when a later phase aborts, never visible to the client.
    Speculation spec;
    spec.pred = pred;
    spec.baseVersion = version;
    if (pred.kind == Prediction::Kind::Frame) {
        if (!rin_.precomputeFrame(pred.frame)) return false;
        rin_.speculateFrameDiff(spec.added, spec.removed);
    } else {
        if (pred.cutoff > rin_.cutoff()) rin_.precomputeContacts(pred.cutoff);
        if (!rin_.contactsCover(pred.cutoff)) return false;
        rin_.speculateCutoffDiff(pred.cutoff, spec.added, spec.removed);
    }
    if (aborted()) {
        span.attr("cancelled", true);
        return false;
    }

    // Phase 2 — the predicted graph, as a copy the live graph never sees.
    Graph predicted = rin_.graph();
    for (auto [u, v] : spec.removed) predicted.removeEdge(u, v);
    for (auto [u, v] : spec.added) predicted.addEdge(u, v);
    if (aborted()) {
        span.attr("cancelled", true);
        return false;
    }

    // Phase 3 — the exact warm-start solve the real update would run on
    // this graph (same parameters, seed, and initial coordinates), so
    // adopting the result and skipping the real polish changes nothing.
    // A dedicated workspace keeps the live rho/octree cache untouched.
    MaxentStress::Parameters params;
    params.iterations = options_.layoutIterations;
    params.warmStartIterations = options_.layoutWarmStartIterations;
    params.seed = options_.seed;
    // Cooperative abort per outer iteration: speculation must yield to
    // interactive work within ~one sweep, not one whole solve. The check
    // never fires on the adopted path, so the solve stays bit-identical
    // to the real update's (see Parameters::abortCheck).
    params.abortCheck = aborted;
    MaxentStress layout(predicted, 3, params);
    layout.setWorkspace(&specLayoutWorkspace_);
    if (maxentCoords_.size() == predicted.numberOfNodes())
        layout.setInitialCoordinates(maxentCoords_);
    layout.run();
    if (layout.aborted()) {
        span.attr("cancelled", true);
        return false;
    }
    spec.coords = layout.getCoordinates();
    if (aborted()) {
        span.attr("cancelled", true);
        return false;
    }

    // Phase 4 — the current measure, exact, on the predicted graph.
    if (measure_) {
        spec.measure = measure_;
        spec.scores = computeMeasure(predicted, CsrView::fromGraph(predicted), *measure_);
        if (aborted()) {
            span.attr("cancelled", true);
            return false;
        }
    }

    // Phase 5 — pre-serialize the JSON edge traces of the predicted scene
    // (cutoff predictions only: the protein view's positions are the
    // current frame's, which a cutoff tick never moves). Edge traces are a
    // pure function of edge set + positions, both proven identical on
    // adoption, so installing these strings is byte-identical to
    // rebuilding them — and they are the dominant serialization cost of a
    // cutoff tick, the difference between a spec-hit and a markers-only
    // update. Community scenes skip this (their traces are rebuilt with
    // community colors).
    if (pred.kind == Prediction::Kind::Cutoff && options_.wireFormat == WireFormat::Json &&
        !(spec.measure && isCommunityMeasure(*spec.measure))) {
        std::vector<double> zeros;
        if (spec.scores.empty()) zeros.assign(predicted.numberOfNodes(), 0.0);
        const std::vector<double>& shown = spec.scores.empty() ? zeros : spec.scores;
        const Scene left = makeScene(predicted, rin_.protein().alphaCarbons(), shown,
                                     options_.palette, "protein layout", true);
        const Scene right = makeScene(predicted, spec.coords, shown, options_.palette,
                                      "Maxent-Stress layout", true);
        spec.edgeTraces[0] = Figure::edgeTraceJson(left, 0);
        spec.edgeTraces[1] = Figure::edgeTraceJson(right, 1);
        spec.haveEdgeTraces = true;
        if (aborted()) {
            span.attr("cancelled", true);
            return false;
        }
    }
    spec_ = std::move(spec);
    spec_.valid = true;
    span.attr("complete", true);
    return true;
}

bool RinWidget::adoptSpeculation(UpdateTiming& t, Prediction::Kind kind, index frame,
                                 double cutoff, std::uint64_t preVersion) {
    if (!spec_.valid) return false;
    t.specJudged = true;
    Speculation spec = std::move(spec_);
    spec_.valid = false;
    const bool target =
        spec.pred.kind == kind && spec.baseVersion == preVersion &&
        (kind == Prediction::Kind::Frame ? spec.pred.frame == frame
                                         : std::abs(spec.pred.cutoff - cutoff) <= 1e-9);
    // Adoption proof: the speculation must have acted on the exact edge
    // diff the real event just applied to the same base graph. Equal diffs
    // mean identical post-event graphs — this subsumes any floating-point
    // wobble between the predicted and the submitted cutoff value.
    if (!target || rin_.lastAdded() != spec.added || rin_.lastRemoved() != spec.removed)
        return false;
    t.specHit = true;
    if (spec.measure && measure_ == spec.measure)
        engine_.storeExact(rin_.graph(), *measure_, std::move(spec.scores));
    maxentCoords_ = std::move(spec.coords);
    if (spec.haveEdgeTraces) {
        // Same edge set, same positions — the pre-serialized traces are
        // byte-identical to what renderAndShip would rebuild, so the hit's
        // render path costs the same as a markers-only update.
        edgeTraceCache_[0] = std::move(spec.edgeTraces[0]);
        edgeTraceCache_[1] = std::move(spec.edgeTraces[1]);
        edgeTracesValid_ = true;
    }
    return true;
}

const LodMapping* RinWidget::lodMappingFor() {
    const Graph& g = rin_.graph();
    if (g.numberOfNodes() < options_.lodMinNodes) return nullptr;
    if (!lodValid_ || lodVersion_ != g.version()) {
        const count divisor = std::max<count>(2, options_.lodFactor);
        lodMapping_ = buildLodMapping(g, std::max<count>(2, g.numberOfNodes() / divisor));
        lodVersion_ = g.version();
        lodValid_ = true;
    }
    return lodMapping_.coarseNodes > 0 ? &lodMapping_ : nullptr;
}

std::vector<double> RinWidget::displayedScores() const {
    if (!deltaMode_ || buffer_.size() != scores_.size()) return scores_;
    std::vector<double> delta(scores_.size());
    for (count i = 0; i < scores_.size(); ++i) delta[i] = scores_[i] - buffer_[i];
    return delta;
}

void RinWidget::renderAndShip(UpdateTiming& t, bool fullClientUpdate, bool markersOnly,
                              EdgeDelta edgeDelta) {
    const Graph& g = rin_.graph();
    t.degraded = degraded();
    const bool binary = options_.wireFormat == WireFormat::Binary;

    obs::ScopedSpan buildSpan("widget.scene_build");
    // Left view: the real protein conformation (C-alpha positions), the
    // paper's "protein-based layout". Right view: Maxent-Stress.
    const auto proteinCoords = rin_.protein().alphaCarbons();
    std::vector<double> shown = displayedScores();
    if (shown.empty()) shown.assign(g.numberOfNodes(), 0.0);

    // JSON mode: the scenes need the edge list whenever the serialized
    // edge-trace cache is stale. Binary mode: only when the edge delta is
    // unknown (full rebuild) — otherwise the delta encoder patches its
    // shadow edge set from DynamicRin's exact diff and never sees (or
    // copies) the full list.
    const bool needEdges = binary ? edgeDelta == EdgeDelta::Full : !edgeTracesValid_;
    const bool community = measure_ && isCommunityMeasure(*measure_) && !deltaMode_;
    Scene left, right;
    if (community) {
        std::vector<index> comm(shown.size());
        for (count i = 0; i < shown.size(); ++i) comm[i] = static_cast<index>(shown[i]);
        left = makeCommunityScene(g, proteinCoords, comm, "protein layout", needEdges);
        right = makeCommunityScene(g, maxentCoords_, comm, "Maxent-Stress layout", needEdges);
    } else {
        left = makeScene(g, proteinCoords, shown, options_.palette, "protein layout",
                         needEdges);
        right = makeScene(g, maxentCoords_, shown, options_.palette,
                          "Maxent-Stress layout", needEdges);
    }
    t.sceneBuildMs = buildSpan.finishMs();

    if (binary) {
        obs::ScopedSpan serializeSpan("widget.serialize");
        static const std::vector<std::pair<node, node>> kNoEdges;
        wire::EdgeDiffHint hint;
        switch (edgeDelta) {
        case EdgeDelta::None:
            hint.added = &kNoEdges;
            hint.removed = &kNoEdges;
            break;
        case EdgeDelta::Diffed:
            hint.added = &rin_.lastAdded();
            hint.removed = &rin_.lastRemoved();
            break;
        case EdgeDelta::Full:
            break; // no hint: the scenes carry the full edge list
        }
        const wire::EdgeDiffHint* hintPtr = edgeDelta == EdgeDelta::Full ? nullptr : &hint;
        wire::DeltaEncoder::LodProvider lodProvider;
        if (options_.lodScenes)
            lodProvider = [this]() { return lodMappingFor(); };
        wireFrame_ =
            wireEncoder_.encode({&left, &right}, shown, wireClient_.ack(), hintPtr, lodProvider);
        const auto& frameStats = wireEncoder_.lastStats();
        t.wireBytes = wireFrame_.size();
        t.binaryWire = true;
        t.wireKeyframe = frameStats.keyframe;
        t.lodCoarse = frameStats.lodCoarse;
        t.lodCoarseNodes = frameStats.lodCoarseNodes;
        // An LOD keyframe is a pair: the coarse frame in wireFrame_ plus a
        // refine delta shipped right behind it. Both count as shipped
        // bytes; the client applies them back to back, so clientMs (time
        // to first pixels) covers the coarse frame only.
        wireRefineFrame_.clear();
        if (wireEncoder_.hasRefineFrame()) {
            wireRefineFrame_ = wireEncoder_.takeRefineFrame();
            t.wireBytes += wireRefineFrame_.size();
        }
        serializeSpan.attr("format", "binary");
        serializeSpan.attr("wire_bytes", static_cast<double>(t.wireBytes));
        serializeSpan.attr("wire_keyframe", frameStats.keyframe);
        serializeSpan.attr("wire_reason", std::string_view(frameStats.reason));
        if (t.lodCoarse)
            serializeSpan.attr("lod_coarse_nodes", static_cast<double>(t.lodCoarseNodes));
        t.serializeMs = serializeSpan.finishMs();

        wire::PatchStats patch;
        t.clientMs = client_.processWirePatch(wireFrame_, wireClient_, &patch);
        t.wirePatchElements = patch.elementsTouched();
        if (!wireRefineFrame_.empty()) {
            wire::PatchStats refinePatch;
            t.clientRefineMs =
                client_.processWirePatch(wireRefineFrame_, wireClient_, &refinePatch);
            t.wirePatchElements += refinePatch.elementsTouched();
        }
    } else {
        obs::ScopedSpan serializeSpan("widget.serialize");
        if (!edgeTracesValid_) {
            edgeTraceCache_[0] = Figure::edgeTraceJson(left, 0);
            edgeTraceCache_[1] = Figure::edgeTraceJson(right, 1);
            t.edgeBytesSerialized = edgeTraceCache_[0].size() + edgeTraceCache_[1].size();
            edgeTracesValid_ = true;
        }
        Figure fig;
        fig.addScene(left, edgeTraceCache_[0]);
        fig.addScene(right, edgeTraceCache_[1]);
        figureJson_ = fig.toJson();
        t.serializedBytes = figureJson_.size();
        t.wireBytes = figureJson_.size();
        serializeSpan.attr("format", "json");
        serializeSpan.attr("serialized_bytes", static_cast<double>(t.serializedBytes));
        serializeSpan.attr("edge_bytes", static_cast<double>(t.edgeBytesSerialized));
        serializeSpan.attr("wire_bytes", static_cast<double>(t.wireBytes));
        t.serializeMs = serializeSpan.finishMs();

        ClientCostModel::Parameters clientParams;
        clientParams.fullUpdate = fullClientUpdate;
        const ClientCostModel client(clientParams);
        // Both scenes ship; markers-only events re-render node markers only.
        const count nodes = 2 * g.numberOfNodes();
        const count edges = markersOnly ? 0 : 2 * g.numberOfEdges();
        t.clientMs = client.processUpdate(figureJson_, nodes, edges);
    }

    // The client phase is modeled, not measured — record it as a span with
    // synthetic extent so the exported trace still shows the full cycle the
    // paper's figures decompose.
    obs::Tracer& tracer = obs::Tracer::global();
    const obs::SpanContext ctx = tracer.currentContext();
    if (ctx.sampled) {
        const double start = tracer.nowUs();
        std::vector<obs::SpanAttr> attrs(binary ? 3 : 2);
        attrs[0].key = "simulated";
        attrs[0].num = 1.0;
        attrs[1].key = "wire_bytes";
        attrs[1].num = static_cast<double>(t.wireBytes);
        if (binary) {
            attrs[2].key = "patch_elements";
            attrs[2].num = static_cast<double>(t.wirePatchElements);
        }
        if (t.clientRefineMs > 0.0) {
            obs::SpanAttr refine;
            refine.key = "refine_ms";
            refine.num = t.clientRefineMs;
            attrs.push_back(refine);
        }
        tracer.recordSpan("widget.client", ctx, tracer.nextId(), ctx.spanId, start,
                          start + t.clientMs * 1000.0, std::move(attrs));
    }
}

RinWidget::UpdateTiming RinWidget::setFrame(index frame) {
    obs::ScopedSpan span("widget.set_frame");
    span.attr("frame", static_cast<double>(frame));
    UpdateTiming t;
    edgeTracesValid_ = false; // node positions move
    const std::uint64_t preVersion = rin_.graph().version();
    {
        obs::ScopedSpan net("widget.network_update");
        t.edgeStats = rin_.setFrame(frame);
        net.attr("edges_added", t.edgeStats.edgesAdded);
        net.attr("edges_removed", t.edgeStats.edgesRemoved);
        net.attr("edges_total", t.edgeStats.edgesTotal);
        t.networkUpdateMs = net.finishMs();
    }
    // Hand the exact edge diff to the measure engine so the dynamic
    // kernels can repair their state instead of recomputing.
    engine_.noteDiff(rin_.graph(), preVersion, rin_.lastAdded(), rin_.lastRemoved());
    predictor_.observeFrame(frame);

    if (adoptSpeculation(t, Prediction::Kind::Frame, frame, 0.0, preVersion)) {
        obs::ScopedSpan layoutSpan("widget.layout");
        layoutSpan.attr("speculated", true);
        t.layoutMs = layoutSpan.finishMs();
    } else {
        recomputeLayout(t);
    }
    if (options_.autoRecompute) recomputeMeasure(t);
    // Node positions changed: the client rebuilds every DOM element (JSON
    // mode); the wire encoder ships the exact edge diff + moved positions.
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/false,
                  EdgeDelta::Diffed);
    span.attr("degraded", degraded());
    span.attr("spec_judged", t.specJudged);
    span.attr("spec_hit", t.specHit);
    return t;
}

RinWidget::UpdateTiming RinWidget::setCutoff(double cutoff) {
    obs::ScopedSpan span("widget.set_cutoff");
    span.attr("cutoff", cutoff);
    UpdateTiming t;
    edgeTracesValid_ = false; // edge set changes
    const std::uint64_t preVersion = rin_.graph().version();
    {
        obs::ScopedSpan net("widget.network_update");
        t.edgeStats = rin_.setCutoff(cutoff);
        net.attr("edges_added", t.edgeStats.edgesAdded);
        net.attr("edges_removed", t.edgeStats.edgesRemoved);
        net.attr("edges_total", t.edgeStats.edgesTotal);
        t.networkUpdateMs = net.finishMs();
    }
    engine_.noteDiff(rin_.graph(), preVersion, rin_.lastAdded(), rin_.lastRemoved());
    predictor_.observeCutoff(cutoff);

    if (adoptSpeculation(t, Prediction::Kind::Cutoff, 0, cutoff, preVersion)) {
        obs::ScopedSpan layoutSpan("widget.layout");
        layoutSpan.attr("speculated", true);
        t.layoutMs = layoutSpan.finishMs();
    } else {
        recomputeLayout(t);
    }
    if (options_.autoRecompute) recomputeMeasure(t);
    // Protein-view node positions are unchanged between cutoffs: the
    // client only updates edge elements (paper: ~100 ms vs ~200 ms).
    renderAndShip(t, /*fullClientUpdate=*/false, /*markersOnly=*/false,
                  EdgeDelta::Diffed);
    span.attr("degraded", degraded());
    span.attr("spec_judged", t.specJudged);
    span.attr("spec_hit", t.specHit);
    return t;
}

RinWidget::UpdateTiming RinWidget::setMeasure(Measure measure) {
    obs::ScopedSpan span("widget.set_measure");
    span.attr("measure", measureName(measure));
    UpdateTiming t;
    measure_ = measure;
    recomputeMeasure(t);
    // Only marker colors change; the edge set is untouched.
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/true, EdgeDelta::None);
    span.attr("degraded", degraded());
    return t;
}

RinWidget::UpdateTiming RinWidget::refresh() {
    obs::ScopedSpan span("widget.refresh");
    UpdateTiming t;
    edgeTracesValid_ = false;
    // A rebuild moves the graph without matching any prediction: judge a
    // pending speculation a miss, drop the side slots, stop predicting
    // until the sliders move again.
    if (spec_.valid) {
        t.specJudged = true;
        spec_.valid = false;
    }
    rin_.dropFrameSpeculation();
    predictor_.reset();
    {
        obs::ScopedSpan net("widget.network_update");
        rin_.rebuild();
        net.attr("edges_total", rin_.graph().numberOfEdges());
        t.networkUpdateMs = net.finishMs();
    }
    // A rebuild has no diff: the dynamic measure state cannot be repaired.
    engine_.invalidateDynamic();
    recomputeLayout(t);
    recomputeMeasure(t);
    // A rebuild invalidates any incremental diff: ship the full edge list.
    renderAndShip(t, /*fullClientUpdate=*/true, /*markersOnly=*/false, EdgeDelta::Full);
    span.attr("degraded", degraded());
    return t;
}

} // namespace rinkit::viz
