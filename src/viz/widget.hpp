#pragma once

#include <array>
#include <optional>
#include <string>

#include "src/layout/maxent_stress.hpp"
#include "src/rin/dynamic_rin.hpp"
#include "src/viz/client_model.hpp"
#include "src/viz/measures.hpp"
#include "src/viz/scene.hpp"
#include "src/wire/scene_frame.hpp"

namespace rinkit::viz {

/// Payload format the widget ships to its (simulated) client.
enum class WireFormat {
    Json,   ///< full plotly figure JSON per update (PR 5 behavior, default)
    Binary, ///< rinkit::wire keyframe/delta frames (quantized typed arrays)
};

/// Server-side state machine of the paper's RIN exploration widget
/// (Fig. 5): dual 3D view (protein-based layout | Maxent-Stress layout),
/// three sliders (trajectory frame, distance cutoff, network measure), a
/// score buffer for delta visualization, and auto/on-demand recomputation.
///
/// Every slider event runs the full update cycle the paper instruments:
///   network update -> layout generation -> measure recomputation ->
///   scene build -> JSON serialization -> (simulated) client update,
/// and returns the per-phase wall-clock times — the quantities plotted in
/// Figs. 6-8.
/// RinWidget configuration. Namespace-scope (not nested) so its defaults
/// can serve the widget's single defaulted-Options constructor.
struct RinWidgetOptions {
    rin::DistanceCriterion criterion = rin::DistanceCriterion::MinimumAtomDistance;
    double initialCutoff = 4.5;
    index initialFrame = 0;
    std::optional<Measure> initialMeasure = Measure::Closeness;
    Palette palette = Palette::Spectral;
    bool autoRecompute = true; ///< recompute the measure on network change
    count layoutIterations = 30; ///< Maxent-Stress iterations per update
    /// Iteration cap when the layout is seeded with the previous
    /// result (every update after the first): the seed is already
    /// near equilibrium, so a short polish suffices. 0 disables.
    count layoutWarmStartIterations = 10;
    /// Cold layouts (first frame, degraded recovery — no previous
    /// coordinates to seed from) run the multilevel V-cycle solver
    /// (coarsen / solve coarsest / prolong+refine) instead of the full
    /// single-level iteration schedule. Warm-started updates always use
    /// the capped fine-level polish regardless of this flag.
    bool multilevelLayout = true;
    std::uint64_t seed = 1;
    /// Payload format shipped to the client. Json keeps the serialized
    /// figure byte-identical to the pre-wire-protocol behavior; Binary
    /// switches renderAndShip to stateful keyframe/delta frames.
    WireFormat wireFormat = WireFormat::Json;
    /// Binary mode: frames per keyframe epoch (see
    /// wire::DeltaEncoderOptions::keyframeInterval).
    count wireKeyframeInterval = 64;
    /// Additive error the measure engine may trade for latency (0 demands
    /// exact results). With a positive tolerance, heavy measures switch to
    /// sampling (adaptive betweenness, pivot closeness) whose achieved
    /// (epsilon, delta) is reported in UpdateTiming.
    double measureErrorTolerance = 0.0;
    /// Diff-driven dynamic measure updates (MeasureEngine tier 2): keep
    /// per-source BFS state and repair it from DynamicRin's edge diffs
    /// instead of recomputing.
    bool dynamicMeasures = true;
    /// The dynamic state is O(n^2); graphs above this node count are never
    /// primed (see MeasureEngine::Options::dynStateMaxNodes).
    count dynStateMaxNodes = 1536;
};

class RinWidget {
public:
    using Options = RinWidgetOptions;

    /// Wall-clock decomposition of one update cycle (all in ms).
    struct UpdateTiming {
        double networkUpdateMs = 0.0; ///< DynamicRin edge diff (Figs. 6ab, 7d, 8gh)
        double layoutMs = 0.0;        ///< Maxent-Stress generation (Fig. 7e)
        double measureMs = 0.0;       ///< centrality/community recompute (Fig. 6ab)
        double sceneBuildMs = 0.0;    ///< widget data handling
        double serializeMs = 0.0;     ///< figure -> JSON
        double clientMs = 0.0;        ///< simulated browser update
        rin::DynamicRin::UpdateStats edgeStats;
        std::size_t serializedBytes = 0;     ///< figure JSON size (0 in binary mode)
        std::size_t edgeBytesSerialized = 0; ///< edge-trace bytes serialized
                                             ///< fresh (0 = cache hit)
        std::size_t wireBytes = 0; ///< payload bytes actually shipped, in
                                   ///< whichever format is active
        bool binaryWire = false;   ///< payload was a wire frame, not JSON
        bool wireKeyframe = false; ///< binary mode: frame was a keyframe
        count wirePatchElements = 0; ///< binary mode: client DOM elements
                                     ///< touched applying the frame
        bool measureCacheHit = false; ///< scores served from the version-keyed
                                      ///< result cache (no recomputation)
        bool degraded = false; ///< update ran in degraded mode (stale cache /
                               ///< approximate measure, layout polish only)
        ResolutionTier measureTier = ResolutionTier::Exact; ///< how the scores
                                                            ///< were produced
        double measureEps = 0.0;    ///< achieved additive error (0 = exact)
        double measureDelta = 0.0;  ///< failure probability of that bound
        count measureSamples = 0;   ///< samples/pivots drawn (approx tier)
        count measureDiffEdges = 0; ///< diff consumed by a dynamic update

        double serverMs() const {
            return networkUpdateMs + layoutMs + measureMs + sceneBuildMs + serializeMs;
        }
        double totalMs() const { return serverMs() + clientMs; }
    };

    explicit RinWidget(const md::Trajectory& traj, Options options = {});

    // -- slider events --------------------------------------------------

    /// Trajectory-frame slider (Fig. 8): node positions change, so the
    /// client performs a full DOM update.
    UpdateTiming setFrame(index frame);

    /// Cutoff slider (Fig. 7): node positions of the protein view are
    /// unchanged; the client updates edges (and the Maxent view).
    UpdateTiming setCutoff(double cutoff);

    /// Measure slider (Fig. 6): network and layouts unchanged; only the
    /// node colors are recomputed and re-rendered. The serialized edge
    /// traces are reused from the previous update (cache hit:
    /// UpdateTiming::edgeBytesSerialized == 0).
    UpdateTiming setMeasure(Measure measure);

    /// Recomputes everything (initial draw / "recompute" button in
    /// on-demand mode).
    UpdateTiming refresh();

    // -- quality-of-life toggles (paper: "misc. components") -------------

    /// Auto vs on-demand recomputation of the measure on network changes.
    void setAutoRecompute(bool enabled) { options_.autoRecompute = enabled; }
    bool autoRecompute() const { return options_.autoRecompute; }

    /// Delta view: colors show current minus buffered scores.
    void setDeltaMode(bool enabled) { deltaMode_ = enabled; }
    bool deltaMode() const { return deltaMode_; }

    /// Stores the current scores as the delta baseline.
    void snapshotBuffer() { buffer_ = scores_; }

    /// Degraded service mode (the serving layer's shed/deadline ladder).
    /// Approx lets the measure engine substitute sampled results with a
    /// stated error bound; Stale additionally allows serving results for an
    /// older graph version. Both cap the layout at the warm-start polish.
    void setDegradeLevel(DegradeLevel level) { degradeLevel_ = level; }
    DegradeLevel degradeLevel() const { return degradeLevel_; }

    /// Legacy boolean degrade toggle: maps to the ladder's last rung
    /// (Stale), the pre-ladder behavior.
    void setDegraded(bool enabled) {
        degradeLevel_ = enabled ? DegradeLevel::Stale : DegradeLevel::None;
    }
    bool degraded() const { return degradeLevel_ != DegradeLevel::None; }

    // -- state ------------------------------------------------------------

    const Graph& graph() const { return rin_.graph(); }
    index frame() const { return rin_.frame(); }
    double cutoff() const { return rin_.cutoff(); }
    std::optional<Measure> measure() const { return measure_; }

    /// Scores of the current measure (empty until a measure ran).
    const std::vector<double>& scores() const { return scores_; }

    /// Scores shown (raw, or current - buffer in delta mode).
    std::vector<double> displayedScores() const;

    /// Maxent-Stress coordinates of the current network.
    const std::vector<Point3>& maxentLayout() const { return maxentCoords_; }

    /// The last serialized figure (two scenes side by side, like Fig. 5).
    /// Only maintained in JSON mode; empty under WireFormat::Binary.
    const std::string& figureJson() const { return figureJson_; }

    // -- binary wire protocol (WireFormat::Binary) ------------------------

    /// The last shipped wire frame (empty in JSON mode).
    const wire::Bytes& wireFrame() const { return wireFrame_; }

    /// The simulated client's decoder state (what the browser holds).
    const wire::FrameDecoder& wireClient() const { return wireClient_; }

    /// Wire stats of the last shipped frame (keyframe?, reason, sizes).
    const wire::DeltaEncoder::FrameStats& wireStats() const {
        return wireEncoder_.lastStats();
    }

    /// Simulates the client losing its state (tab reload, dropped
    /// websocket): the next update's ack mismatches and the encoder
    /// resyncs with a keyframe.
    void dropWireClient() { wireClient_.reset(); }

    /// Forces the next shipped frame to be a keyframe. Session migration
    /// calls this when a widget is re-homed onto another replica: the
    /// resync keyframe is self-contained, so the client's stream continues
    /// without depending on deltas the new replica never produced.
    void forceWireResync() { wireEncoder_.forceKeyframe(); }

private:
    /// How renderAndShip learns what happened to the edge set: nothing
    /// (measure switch), an exact DynamicRin diff (cutoff/frame switch),
    /// or an unknown change requiring the full edge list (refresh).
    enum class EdgeDelta { None, Diffed, Full };

    void recomputeLayout(UpdateTiming& t);
    void recomputeMeasure(UpdateTiming& t);
    void renderAndShip(UpdateTiming& t, bool fullClientUpdate, bool markersOnly,
                       EdgeDelta edgeDelta);

    Options options_;
    rin::DynamicRin rin_;
    // Shared CSR snapshot + per-measure result cache, both invalidated by
    // the graph's version counter (cutoff/frame switches mutate the graph).
    MeasureEngine engine_;
    std::optional<Measure> measure_;
    std::vector<double> scores_;
    std::vector<double> buffer_;
    std::vector<Point3> maxentCoords_;
    // Sweep-kernel state (rho stress weights keyed on the graph version,
    // octree, scratch buffers) kept for the session's lifetime: a layout on
    // an unchanged graph skips the rho precompute entirely.
    MaxentWorkspace layoutWorkspace_;
    std::string figureJson_;
    // Serialized edge traces of the two scenes, valid while node positions
    // and the edge set are unchanged (i.e. across measure-only updates).
    std::array<std::string, 2> edgeTraceCache_;
    bool edgeTracesValid_ = false;
    ClientCostModel client_;
    // Binary wire path: stateful encoder (server), simulated client
    // decoder, and the last frame shipped between them.
    wire::DeltaEncoder wireEncoder_;
    wire::FrameDecoder wireClient_;
    wire::Bytes wireFrame_;
    bool deltaMode_ = false;
    DegradeLevel degradeLevel_ = DegradeLevel::None;
};

} // namespace rinkit::viz
