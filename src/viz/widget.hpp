#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>

#include "src/layout/maxent_stress.hpp"
#include "src/rin/dynamic_rin.hpp"
#include "src/viz/client_model.hpp"
#include "src/viz/measures.hpp"
#include "src/viz/predictor.hpp"
#include "src/viz/scene.hpp"
#include "src/wire/scene_frame.hpp"

namespace rinkit::viz {

/// Payload format the widget ships to its (simulated) client.
enum class WireFormat {
    Json,   ///< full plotly figure JSON per update (PR 5 behavior, default)
    Binary, ///< rinkit::wire keyframe/delta frames (quantized typed arrays)
};

/// Server-side state machine of the paper's RIN exploration widget
/// (Fig. 5): dual 3D view (protein-based layout | Maxent-Stress layout),
/// three sliders (trajectory frame, distance cutoff, network measure), a
/// score buffer for delta visualization, and auto/on-demand recomputation.
///
/// Every slider event runs the full update cycle the paper instruments:
///   network update -> layout generation -> measure recomputation ->
///   scene build -> JSON serialization -> (simulated) client update,
/// and returns the per-phase wall-clock times — the quantities plotted in
/// Figs. 6-8.
/// RinWidget configuration. Namespace-scope (not nested) so its defaults
/// can serve the widget's single defaulted-Options constructor.
struct RinWidgetOptions {
    rin::DistanceCriterion criterion = rin::DistanceCriterion::MinimumAtomDistance;
    double initialCutoff = 4.5;
    index initialFrame = 0;
    std::optional<Measure> initialMeasure = Measure::Closeness;
    Palette palette = Palette::Spectral;
    bool autoRecompute = true; ///< recompute the measure on network change
    count layoutIterations = 30; ///< Maxent-Stress iterations per update
    /// Iteration cap when the layout is seeded with the previous
    /// result (every update after the first): the seed is already
    /// near equilibrium, so a short polish suffices. 0 disables.
    count layoutWarmStartIterations = 10;
    /// Cold layouts (first frame, degraded recovery — no previous
    /// coordinates to seed from) run the multilevel V-cycle solver
    /// (coarsen / solve coarsest / prolong+refine) instead of the full
    /// single-level iteration schedule. Warm-started updates always use
    /// the capped fine-level polish regardless of this flag.
    bool multilevelLayout = true;
    std::uint64_t seed = 1;
    /// Payload format shipped to the client. Json keeps the serialized
    /// figure byte-identical to the pre-wire-protocol behavior; Binary
    /// switches renderAndShip to stateful keyframe/delta frames.
    WireFormat wireFormat = WireFormat::Json;
    /// Binary mode: frames per keyframe epoch (see
    /// wire::DeltaEncoderOptions::keyframeInterval).
    count wireKeyframeInterval = 64;
    /// Additive error the measure engine may trade for latency (0 demands
    /// exact results). With a positive tolerance, heavy measures switch to
    /// sampling (adaptive betweenness, pivot closeness) whose achieved
    /// (epsilon, delta) is reported in UpdateTiming.
    double measureErrorTolerance = 0.0;
    /// Diff-driven dynamic measure updates (MeasureEngine tier 2): keep
    /// per-source BFS state and repair it from DynamicRin's edge diffs
    /// instead of recomputing.
    bool dynamicMeasures = true;
    /// The dynamic state is O(n^2); graphs above this node count are never
    /// primed (see MeasureEngine::Options::dynStateMaxNodes).
    count dynStateMaxNodes = 1536;
    /// Speculative precompute: the serving layer may call speculate()
    /// between requests to precompute the predicted next slider tick
    /// (contact diff, layout warm start, measure result) into side slots.
    /// A correct prediction turns the next setFrame/setCutoff into cache
    /// hits on every phase; a wrong one costs nothing on the interactive
    /// path. The flag only gates the serving layer's idle-time scheduling
    /// — calling speculate() directly ignores it.
    bool speculate = false;
    /// Level-of-detail progressive scenes (binary wire only): keyframes
    /// ship as a coarse keyframe (coarsened node/edge set + prolongation
    /// map, drawn immediately) followed by an ordinary refine delta that
    /// expands it to the full scene. Cuts modeled time-to-first-pixels on
    /// worst-case cutoff jumps at the price of one extra (small) frame.
    bool lodScenes = false;
    /// LOD is skipped below this node count (the coarse frame would not
    /// pay for its own overhead on small scenes).
    count lodMinNodes = 256;
    /// Coarse target size divisor: the coarse node set targets
    /// numberOfNodes() / lodFactor clusters.
    count lodFactor = 4;
};

class RinWidget {
public:
    using Options = RinWidgetOptions;

    /// Wall-clock decomposition of one update cycle (all in ms).
    struct UpdateTiming {
        double networkUpdateMs = 0.0; ///< DynamicRin edge diff (Figs. 6ab, 7d, 8gh)
        double layoutMs = 0.0;        ///< Maxent-Stress generation (Fig. 7e)
        double measureMs = 0.0;       ///< centrality/community recompute (Fig. 6ab)
        double sceneBuildMs = 0.0;    ///< widget data handling
        double serializeMs = 0.0;     ///< figure -> JSON
        double clientMs = 0.0;        ///< simulated browser update
        rin::DynamicRin::UpdateStats edgeStats;
        std::size_t serializedBytes = 0;     ///< figure JSON size (0 in binary mode)
        std::size_t edgeBytesSerialized = 0; ///< edge-trace bytes serialized
                                             ///< fresh (0 = cache hit)
        std::size_t wireBytes = 0; ///< payload bytes actually shipped, in
                                   ///< whichever format is active
        bool binaryWire = false;   ///< payload was a wire frame, not JSON
        bool wireKeyframe = false; ///< binary mode: frame was a keyframe
        count wirePatchElements = 0; ///< binary mode: client DOM elements
                                     ///< touched applying the frame
        bool measureCacheHit = false; ///< scores served from the version-keyed
                                      ///< result cache (no recomputation)
        bool degraded = false; ///< update ran in degraded mode (stale cache /
                               ///< approximate measure, layout polish only)
        ResolutionTier measureTier = ResolutionTier::Exact; ///< how the scores
                                                            ///< were produced
        double measureEps = 0.0;    ///< achieved additive error (0 = exact)
        double measureDelta = 0.0;  ///< failure probability of that bound
        count measureSamples = 0;   ///< samples/pivots drawn (approx tier)
        count measureDiffEdges = 0; ///< diff consumed by a dynamic update
        bool specJudged = false; ///< a pending speculation was judged by
                                 ///< this event (hit or miss)
        bool specHit = false;    ///< ... and matched: precomputed results
                                 ///< were adopted instead of recomputed
        bool lodCoarse = false;  ///< binary wire: keyframe shipped as a
                                 ///< coarse + refine LOD pair
        count lodCoarseNodes = 0;    ///< coarse node count of that pair
        double clientRefineMs = 0.0; ///< client time applying the refine
                                     ///< delta (clientMs = first pixels)

        double serverMs() const {
            return networkUpdateMs + layoutMs + measureMs + sceneBuildMs + serializeMs;
        }
        double totalMs() const { return serverMs() + clientMs + clientRefineMs; }
    };

    explicit RinWidget(const md::Trajectory& traj, Options options = {});

    // -- slider events --------------------------------------------------

    /// Trajectory-frame slider (Fig. 8): node positions change, so the
    /// client performs a full DOM update.
    UpdateTiming setFrame(index frame);

    /// Cutoff slider (Fig. 7): node positions of the protein view are
    /// unchanged; the client updates edges (and the Maxent view).
    UpdateTiming setCutoff(double cutoff);

    /// Measure slider (Fig. 6): network and layouts unchanged; only the
    /// node colors are recomputed and re-rendered. The serialized edge
    /// traces are reused from the previous update (cache hit:
    /// UpdateTiming::edgeBytesSerialized == 0).
    UpdateTiming setMeasure(Measure measure);

    /// Recomputes everything (initial draw / "recompute" button in
    /// on-demand mode).
    UpdateTiming refresh();

    // -- speculative precompute (idle-capacity prefetch) ------------------

    /// The predicted next slider event (Kind::None when the interaction
    /// history supports no prediction). Safe to call between requests.
    Prediction predictNext() const { return predictor_.predict(); }

    /// Precomputes the predicted next tick into side slots: the contact
    /// diff (DynamicRin side work), a warm-started layout of the predicted
    /// graph, and the current measure's exact scores on it. Nothing
    /// observable changes — live graph, coords, scores, and wire state are
    /// untouched — so a wrong or cancelled speculation never alters what a
    /// client sees. The next matching setFrame/setCutoff adopts the slots
    /// (UpdateTiming::specHit); any other graph-moving event judges the
    /// speculation a miss and drops it.
    ///
    /// @p cancelled is polled between phases; returning true abandons the
    /// speculation (partial side work such as an extended contact cache is
    /// kept — it is legal cache warming either way). Returns true when a
    /// complete speculation is pending afterwards. The caller (serving
    /// layer) must serialize this with the widget's slider events exactly
    /// like any other request — the widget itself is not thread-safe.
    bool speculate(const std::function<bool()>& cancelled);

    /// A completed speculation awaits judgement by the next event.
    bool speculationPending() const { return spec_.valid; }

    /// Drops any pending speculation and DynamicRin's side slot (session
    /// migration: the speculation's accounting stays on this replica).
    void dropSpeculation() {
        spec_.valid = false;
        rin_.dropFrameSpeculation();
    }

    // -- quality-of-life toggles (paper: "misc. components") -------------

    /// Auto vs on-demand recomputation of the measure on network changes.
    void setAutoRecompute(bool enabled) { options_.autoRecompute = enabled; }
    bool autoRecompute() const { return options_.autoRecompute; }

    /// Delta view: colors show current minus buffered scores.
    void setDeltaMode(bool enabled) { deltaMode_ = enabled; }
    bool deltaMode() const { return deltaMode_; }

    /// Stores the current scores as the delta baseline.
    void snapshotBuffer() { buffer_ = scores_; }

    /// Degraded service mode (the serving layer's shed/deadline ladder).
    /// Approx lets the measure engine substitute sampled results with a
    /// stated error bound; Stale additionally allows serving results for an
    /// older graph version. Both cap the layout at the warm-start polish.
    void setDegradeLevel(DegradeLevel level) { degradeLevel_ = level; }
    DegradeLevel degradeLevel() const { return degradeLevel_; }

    /// Legacy boolean degrade toggle: maps to the ladder's last rung
    /// (Stale), the pre-ladder behavior.
    void setDegraded(bool enabled) {
        degradeLevel_ = enabled ? DegradeLevel::Stale : DegradeLevel::None;
    }
    bool degraded() const { return degradeLevel_ != DegradeLevel::None; }

    // -- state ------------------------------------------------------------

    const Graph& graph() const { return rin_.graph(); }
    index frame() const { return rin_.frame(); }
    double cutoff() const { return rin_.cutoff(); }
    std::optional<Measure> measure() const { return measure_; }
    const Options& options() const { return options_; }

    /// Scores of the current measure (empty until a measure ran).
    const std::vector<double>& scores() const { return scores_; }

    /// Scores shown (raw, or current - buffer in delta mode).
    std::vector<double> displayedScores() const;

    /// Maxent-Stress coordinates of the current network.
    const std::vector<Point3>& maxentLayout() const { return maxentCoords_; }

    /// The last serialized figure (two scenes side by side, like Fig. 5).
    /// Only maintained in JSON mode; empty under WireFormat::Binary.
    const std::string& figureJson() const { return figureJson_; }

    // -- binary wire protocol (WireFormat::Binary) ------------------------

    /// The last shipped wire frame (empty in JSON mode). When the last
    /// update shipped an LOD pair this is the *coarse* keyframe; the
    /// refine delta is in wireRefineFrame().
    const wire::Bytes& wireFrame() const { return wireFrame_; }

    /// The refine delta of the last LOD pair (empty otherwise).
    const wire::Bytes& wireRefineFrame() const { return wireRefineFrame_; }

    /// The simulated client's decoder state (what the browser holds).
    const wire::FrameDecoder& wireClient() const { return wireClient_; }

    /// Wire stats of the last shipped frame (keyframe?, reason, sizes).
    const wire::DeltaEncoder::FrameStats& wireStats() const {
        return wireEncoder_.lastStats();
    }

    /// Simulates the client losing its state (tab reload, dropped
    /// websocket): the next update's ack mismatches and the encoder
    /// resyncs with a keyframe.
    void dropWireClient() { wireClient_.reset(); }

    /// Forces the next shipped frame to be a keyframe. Session migration
    /// calls this when a widget is re-homed onto another replica: the
    /// resync keyframe is self-contained, so the client's stream continues
    /// without depending on deltas the new replica never produced.
    void forceWireResync() { wireEncoder_.forceKeyframe(); }

private:
    /// How renderAndShip learns what happened to the edge set: nothing
    /// (measure switch), an exact DynamicRin diff (cutoff/frame switch),
    /// or an unknown change requiring the full edge list (refresh).
    enum class EdgeDelta { None, Diffed, Full };

    /// A completed speculation awaiting judgement: everything the widget
    /// would compute for the predicted event, held in side buffers. Live
    /// state is never touched until a real event proves the prediction
    /// right (adoption) — there is nothing to roll back on a miss.
    struct Speculation {
        bool valid = false;
        Prediction pred;
        std::uint64_t baseVersion = 0; ///< live graph version it assumed
        std::optional<Measure> measure; ///< measure the scores are for
        std::vector<double> scores;     ///< exact scores on the predicted graph
        std::vector<Point3> coords;     ///< warm-started layout of it
        std::vector<std::pair<node, node>> added, removed; ///< predicted diff
        /// Pre-serialized JSON edge traces of the predicted scene (cutoff
        /// predictions, JSON wire mode): built from byte-identical inputs,
        /// so a hit installs them into the edge-trace cache and the render
        /// path costs the same as a markers-only update.
        std::array<std::string, 2> edgeTraces;
        bool haveEdgeTraces = false;
    };

    void recomputeLayout(UpdateTiming& t);
    void recomputeMeasure(UpdateTiming& t);
    void renderAndShip(UpdateTiming& t, bool fullClientUpdate, bool markersOnly,
                       EdgeDelta edgeDelta);
    /// Judges the pending speculation against the real event that just ran
    /// its network update (diffs must match exactly); on a hit installs the
    /// precomputed scores into the engine's exact cache and adopts the
    /// precomputed coordinates. Returns true on adoption.
    bool adoptSpeculation(UpdateTiming& t, Prediction::Kind kind, index frame,
                          double cutoff, std::uint64_t preVersion);
    /// Version-keyed LOD mapping of the current graph; nullptr when LOD is
    /// off, the graph is too small, or it cannot be coarsened.
    const LodMapping* lodMappingFor();

    Options options_;
    rin::DynamicRin rin_;
    // Shared CSR snapshot + per-measure result cache, both invalidated by
    // the graph's version counter (cutoff/frame switches mutate the graph).
    MeasureEngine engine_;
    std::optional<Measure> measure_;
    std::vector<double> scores_;
    std::vector<double> buffer_;
    std::vector<Point3> maxentCoords_;
    // Sweep-kernel state (rho stress weights keyed on the graph version,
    // octree, scratch buffers) kept for the session's lifetime: a layout on
    // an unchanged graph skips the rho precompute entirely.
    MaxentWorkspace layoutWorkspace_;
    std::string figureJson_;
    // Serialized edge traces of the two scenes, valid while node positions
    // and the edge set are unchanged (i.e. across measure-only updates).
    std::array<std::string, 2> edgeTraceCache_;
    bool edgeTracesValid_ = false;
    ClientCostModel client_;
    // Binary wire path: stateful encoder (server), simulated client
    // decoder, and the last frame shipped between them.
    wire::DeltaEncoder wireEncoder_;
    wire::FrameDecoder wireClient_;
    wire::Bytes wireFrame_;
    wire::Bytes wireRefineFrame_;
    bool deltaMode_ = false;
    DegradeLevel degradeLevel_ = DegradeLevel::None;
    // Speculative precompute: prediction model fed by the slider events,
    // the pending side-slot result, and a dedicated layout workspace so
    // speculation never perturbs the live rho/octree cache.
    Predictor predictor_;
    Speculation spec_;
    MaxentWorkspace specLayoutWorkspace_;
    // LOD mapping cache, keyed on the graph version like the measure and
    // rho caches (rebuilt only when a keyframe fires on a moved graph).
    LodMapping lodMapping_;
    std::uint64_t lodVersion_ = 0;
    bool lodValid_ = false;
};

} // namespace rinkit::viz
