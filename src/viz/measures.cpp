#include "src/viz/measures.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "src/obs/trace.hpp"

#include "src/centrality/approx_betweenness.hpp"
#include "src/centrality/approx_closeness.hpp"
#include "src/centrality/betweenness.hpp"
#include "src/centrality/closeness.hpp"
#include "src/centrality/core_decomposition.hpp"
#include "src/centrality/degree.hpp"
#include "src/centrality/eigenvector.hpp"
#include "src/centrality/kadabra.hpp"
#include "src/centrality/local_clustering.hpp"
#include "src/centrality/pagerank.hpp"
#include "src/community/leiden.hpp"
#include "src/community/mapequation.hpp"
#include "src/community/plm.hpp"
#include "src/community/plp.hpp"

namespace rinkit::viz {

const std::vector<Measure>& allMeasures() {
    static const std::vector<Measure> measures = {
        Measure::Degree,          Measure::Closeness,
        Measure::HarmonicCloseness, Measure::Betweenness,
        Measure::PageRank,        Measure::Eigenvector,
        Measure::Katz,            Measure::CoreNumber,
        Measure::LocalClustering,
        Measure::PlmCommunities,  Measure::LeidenCommunities,
        Measure::MapEquationCommunities, Measure::PlpCommunities,
    };
    return measures;
}

std::string measureName(Measure m) {
    switch (m) {
    case Measure::Degree: return "Degree";
    case Measure::Closeness: return "Closeness";
    case Measure::HarmonicCloseness: return "Harmonic closeness";
    case Measure::Betweenness: return "Betweenness";
    case Measure::PageRank: return "PageRank";
    case Measure::Eigenvector: return "Eigenvector";
    case Measure::Katz: return "Katz";
    case Measure::CoreNumber: return "Core number";
    case Measure::LocalClustering: return "Local clustering";
    case Measure::PlmCommunities: return "PLM communities";
    case Measure::LeidenCommunities: return "Leiden communities";
    case Measure::MapEquationCommunities: return "Map-equation communities";
    case Measure::PlpCommunities: return "PLP communities";
    }
    throw std::invalid_argument("measureName: unknown measure");
}

bool isCommunityMeasure(Measure m) {
    switch (m) {
    case Measure::PlmCommunities:
    case Measure::LeidenCommunities:
    case Measure::MapEquationCommunities:
    case Measure::PlpCommunities: return true;
    default: return false;
    }
}

const char* tierName(ResolutionTier t) {
    switch (t) {
    case ResolutionTier::Exact: return "exact";
    case ResolutionTier::Dynamic: return "dynamic";
    case ResolutionTier::Approx: return "approx";
    case ResolutionTier::Stale: return "stale";
    }
    throw std::invalid_argument("tierName: unknown tier");
}

namespace {

/// Drives any kernel — centrality or detector — through the canonical
/// run(const CsrView&) entry and reads the common per-node result shape.
template <typename Kernel>
std::vector<double> runOn(Kernel&& kernel, const CsrView& v) {
    kernel.run(v);
    return kernel.scores();
}

double elapsedMs(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     t0)
        .count();
}

void feedEwma(double& ewma, double ms) {
    constexpr double kAlpha = 0.3;
    ewma = ewma < 0.0 ? ms : (1.0 - kAlpha) * ewma + kAlpha * ms;
}

} // namespace

std::vector<double> computeMeasure(const Graph& g, const CsrView& v, Measure m) {
    switch (m) {
    case Measure::Degree: return runOn(DegreeCentrality(g), v);
    case Measure::Closeness: return runOn(ClosenessCentrality(g), v);
    case Measure::HarmonicCloseness:
        return runOn(ClosenessCentrality(g, ClosenessCentrality::Variant::Harmonic), v);
    case Measure::Betweenness: return runOn(Betweenness(g, true), v);
    case Measure::PageRank:
        return runOn(PageRank(g, 0.85, 1e-9, 200, PageRank::Norm::SizeInvariant), v);
    case Measure::Eigenvector: return runOn(EigenvectorCentrality(g), v);
    case Measure::Katz: return runOn(KatzCentrality(g), v);
    case Measure::CoreNumber: return runOn(CoreDecomposition(g), v);
    case Measure::LocalClustering: return runOn(LocalClusteringCoefficient(g), v);
    case Measure::PlmCommunities: return runOn(Plm(g, true), v);
    case Measure::LeidenCommunities: return runOn(ParallelLeiden(g), v);
    case Measure::MapEquationCommunities: return runOn(LouvainMapEquation(g), v);
    case Measure::PlpCommunities: return runOn(Plp(g), v);
    }
    throw std::invalid_argument("computeMeasure: unknown measure");
}

int MeasureEngine::dynKernelFor(Measure m) {
    switch (m) {
    case Measure::Closeness:
    case Measure::HarmonicCloseness: return kDynCloseness;
    case Measure::Betweenness: return kDynBetweenness;
    case Measure::CoreNumber: return kDynCore;
    default: return -1;
    }
}

bool MeasureEngine::dynPrimed(int k) const {
    switch (k) {
    case kDynCloseness: return dynClose_.primed();
    case kDynBetweenness: return dynBet_.primed();
    case kDynCore: return dynCore_.primed();
    case kDynKadabra: return dynKad_.primed();
    }
    return false;
}

std::uint64_t MeasureEngine::dynVersion(int k) const {
    switch (k) {
    case kDynCloseness: return dynClose_.version();
    case kDynBetweenness: return dynBet_.version();
    case kDynCore: return dynCore_.version();
    case kDynKadabra: return dynKad_.version();
    }
    return 0;
}

bool MeasureEngine::dynStateCurrent(int k, const Graph& g) const {
    const DynMeta& meta = dynMeta_[static_cast<size_t>(k)];
    return dynPrimed(k) && !meta.hasPending && meta.n == g.numberOfNodes() &&
           dynVersion(k) == g.version();
}

bool MeasureEngine::dynUpdateEligible(int k, const Graph& g) const {
    const DynMeta& meta = dynMeta_[static_cast<size_t>(k)];
    if (!dynPrimed(k) || !meta.chainValid || !meta.hasPending) return false;
    if (meta.target != g.version() || meta.n != g.numberOfNodes()) return false;
    if (g.numberOfNodes() > opts_.dynStateMaxNodes) return false;
    const double diff =
        static_cast<double>(meta.pendAdd.size() + meta.pendRem.size());
    const double edges = static_cast<double>(std::max<count>(g.numberOfEdges(), 1));
    if (diff > opts_.fallbackDiffFraction * edges) return false;
    // Span-fed cost model: once updates have been observed to cost more
    // than recomputing, stop repairing until the state is re-primed.
    if (meta.ewmaDyn >= 0.0 && meta.ewmaExact >= 0.0 && meta.ewmaDyn > meta.ewmaExact)
        return false;
    return true;
}

std::vector<double> MeasureEngine::dynScores(int k, Measure m) const {
    switch (k) {
    case kDynCloseness:
        return dynClose_.scores(m == Measure::HarmonicCloseness, true);
    case kDynBetweenness: return dynBet_.scores(true);
    case kDynCore: return dynCore_.scores();
    }
    throw std::logic_error("MeasureEngine: no dynamic kernel");
}

void MeasureEngine::chainDiff(DynMeta& meta, std::uint64_t kernelVersion,
                              std::uint64_t fromVersion, std::uint64_t toVersion,
                              const std::vector<std::pair<node, node>>& added,
                              const std::vector<std::pair<node, node>>& removed) {
    const std::uint64_t base = meta.hasPending ? meta.target : kernelVersion;
    if (base != fromVersion) {
        // Version gap: a diff we never saw moved the graph. The stored
        // state can no longer be repaired; the next exact read re-primes.
        meta.chainValid = false;
        meta.hasPending = false;
        meta.pendAdd.clear();
        meta.pendRem.clear();
        return;
    }
    if (meta.hasPending) {
        dyn::composeDiff(meta.pendAdd, meta.pendRem, added, removed);
    } else {
        meta.pendAdd = added;
        meta.pendRem = removed;
    }
    meta.target = toVersion;
    meta.hasPending = true;
    meta.chainValid = true;
}

void MeasureEngine::noteDiff(const Graph& g, std::uint64_t fromVersion,
                             const std::vector<std::pair<node, node>>& added,
                             const std::vector<std::pair<node, node>>& removed) {
    if (!opts_.dynamicMeasures) return;
    const std::uint64_t to = g.version();
    for (int k = 0; k < kNumDynKernels; ++k) {
        DynMeta& meta = dynMeta_[static_cast<size_t>(k)];
        if (!dynPrimed(k)) continue;
        if (meta.n != g.numberOfNodes()) {
            meta.chainValid = false;
            meta.hasPending = false;
            meta.pendAdd.clear();
            meta.pendRem.clear();
            continue;
        }
        chainDiff(meta, dynVersion(k), fromVersion, to, added, removed);
    }
}

void MeasureEngine::storeExact(const Graph& g, Measure m, std::vector<double> scores) {
    if (scores.size() != g.numberOfNodes())
        throw std::invalid_argument("MeasureEngine: storeExact size mismatch");
    Slot& ex = exact_[static_cast<size_t>(m)];
    ex.scores = std::move(scores);
    ex.version = g.version();
    ex.g = &g;
    ex.valid = true;
    ex.eps = 0.0;
    ex.delta = 0.0;
    ex.samples = 0;
}

void MeasureEngine::invalidateDynamic() {
    dynClose_.reset();
    dynBet_.reset();
    dynCore_.reset();
    dynKad_.reset();
    for (auto& meta : dynMeta_) meta = DynMeta{};
}

const std::vector<double>& MeasureEngine::scores(const Graph& g, Measure m,
                                                 const Request& req,
                                                 ResultInfo* info) {
    obs::ScopedSpan span("engine.scores");
    span.attr("measure", measureName(m));
    ResultInfo local;
    ResultInfo& out = info ? *info : local;
    out = ResultInfo{};

    // A degraded request without its own tolerance still gets a bound: the
    // ladder's Approx rung means "sampled, with stated error", never
    // "whatever is lying around".
    const double effTol = req.degrade == DegradeLevel::None
                              ? req.tolerance
                              : std::max(req.tolerance, opts_.degradeEpsilon);
    const double delta = req.tolerance > 0.0 ? opts_.approxDelta : opts_.degradeDelta;

    const size_t mi = static_cast<size_t>(m);
    Slot& ex = exact_[mi];
    Slot& ap = approx_[mi];
    const std::uint64_t ver = g.version();
    const count n = g.numberOfNodes();

    auto finish = [&](const std::vector<double>& s) -> const std::vector<double>& {
        span.attr("tier", tierName(out.tier));
        span.attr("cache_hit", out.cacheHit);
        if (out.epsilon > 0.0) span.attr("eps", out.epsilon);
        if (out.samples > 0) span.attr("samples", out.samples);
        if (out.diffEdges > 0) span.attr("diff_edges", out.diffEdges);
        return s;
    };
    auto serveSlot = [&](Slot& s, ResolutionTier tier) -> const std::vector<double>& {
        out.tier = tier;
        out.cacheHit = true;
        out.epsilon = s.eps;
        out.delta = s.delta;
        out.samples = s.samples;
        return finish(s.scores);
    };

    // Tier 1a: fresh exact always serves — including tolerance > 0
    // requests (exact trivially satisfies any bound).
    if (ex.valid && ex.g == &g && ex.version == ver) return serveSlot(ex, ResolutionTier::Exact);
    // Tier 1b: fresh approximate serves iff its guarantee is tight enough.
    if (effTol > 0.0 && ap.valid && ap.g == &g && ap.version == ver && ap.eps <= effTol)
        return serveSlot(ap, ResolutionTier::Approx);

    // Tier 1c: the dynamic state is already at this version (the sibling
    // measure of a shared kernel computed or repaired it) — read it off.
    const int dk = dynKernelFor(m);
    if (dk >= 0 && dynStateCurrent(dk, g)) {
        ex.scores = dynScores(dk, m);
        ex.version = ver;
        ex.g = &g;
        ex.valid = true;
        ex.eps = ex.delta = 0.0;
        ex.samples = 0;
        return serveSlot(ex, ResolutionTier::Exact);
    }

    // Last rung: under Stale degradation a right-sized result for an older
    // version beats any recomputation.
    if (req.degrade == DegradeLevel::Stale) {
        for (Slot* s : {&ex, &ap}) {
            if (s->valid && s->g == &g && s->scores.size() == n &&
                (s->eps == 0.0 || s->eps <= effTol)) {
                span.attr("stale", true);
                return serveSlot(*s, ResolutionTier::Stale);
            }
        }
    }

    const CsrView& v = snapshot_.get(g);

    // Tier 2: diff-driven repair of the stored per-source state — exact
    // results without a recompute.
    if (dk >= 0 && dynUpdateEligible(dk, g)) {
        DynMeta& meta = dynMeta_[static_cast<size_t>(dk)];
        const count diffEdges = meta.pendAdd.size() + meta.pendRem.size();
        dyn::EdgeBatch batch{&meta.pendAdd, &meta.pendRem};
        const auto t0 = std::chrono::steady_clock::now();
        {
            obs::ScopedSpan upd("engine.dynamic_update");
            upd.attr("measure", measureName(m));
            upd.attr("diff_edges", diffEdges);
            switch (dk) {
            case kDynCloseness: dynClose_.update(v, batch); break;
            case kDynBetweenness: dynBet_.update(v, batch); break;
            case kDynCore: dynCore_.update(v, batch); break;
            }
        }
        feedEwma(meta.ewmaDyn, elapsedMs(t0));
        meta.hasPending = false;
        meta.pendAdd.clear();
        meta.pendRem.clear();
        ex.scores = dynScores(dk, m);
        ex.version = ver;
        ex.g = &g;
        ex.valid = true;
        ex.eps = ex.delta = 0.0;
        ex.samples = 0;
        out.tier = ResolutionTier::Dynamic;
        out.cacheHit = false;
        out.diffEdges = diffEdges;
        return finish(ex.scores);
    }

    // Tier 3: sampled approximation with an explicit (epsilon, delta).
    if (effTol > 0.0) {
        bool ran = false;
        const auto t0 = std::chrono::steady_clock::now();
        if (m == Measure::Betweenness) {
            obs::ScopedSpan apx("engine.approx");
            apx.attr("measure", measureName(m));
            DynMeta& meta = dynMeta_[kDynKadabra];
            // Warm path: the maintained sample set is one small diff behind
            // and its standing bound satisfies this request — redraw only
            // the affected samples instead of sampling from scratch.
            if (opts_.adaptiveSampling && dynUpdateEligible(kDynKadabra, g) &&
                dynKad_.achievedEpsilon() <= effTol) {
                const count diffEdges = meta.pendAdd.size() + meta.pendRem.size();
                dyn::EdgeBatch batch{&meta.pendAdd, &meta.pendRem};
                const auto ta = std::chrono::steady_clock::now();
                dynKad_.update(v, batch);
                feedEwma(meta.ewmaDyn, elapsedMs(ta));
                meta.hasPending = false;
                meta.pendAdd.clear();
                meta.pendRem.clear();
                apx.attr("diff_edges", diffEdges);
                apx.attr("resampled", dynKad_.lastResampled());
                ap.scores = dynKad_.scores();
                ap.eps = dynKad_.achievedEpsilon();
                ap.samples = dynKad_.numberOfSamples();
                out.diffEdges = diffEdges;
            } else if (opts_.adaptiveSampling && opts_.dynamicMeasures && n >= 2 &&
                       n <= opts_.dynStateMaxNodes) {
                // Cold sampling doubles as the prime of the dynamic sample
                // state, like the exact kernels' init.
                const auto ta = std::chrono::steady_clock::now();
                dynKad_.init(v, effTol, delta, opts_.seed);
                feedEwma(meta.ewmaExact, elapsedMs(ta));
                meta.chainValid = true;
                meta.hasPending = false;
                meta.pendAdd.clear();
                meta.pendRem.clear();
                meta.n = n;
                ap.scores = dynKad_.scores();
                ap.eps = dynKad_.achievedEpsilon();
                ap.samples = dynKad_.numberOfSamples();
            } else if (opts_.adaptiveSampling) {
                KadabraBetweenness kb(g, effTol, delta, opts_.seed);
                kb.run(v);
                ap.scores = kb.scores();
                ap.eps = kb.achievedEpsilon();
                ap.samples = kb.numberOfSamples();
            } else {
                ApproxBetweenness rk(g, effTol, delta, opts_.seed);
                rk.run(v);
                ap.scores = rk.scores();
                ap.eps = effTol;
                ap.samples = rk.numberOfSamples();
            }
            ran = true;
        } else if (m == Measure::Closeness || m == Measure::HarmonicCloseness) {
            // Route to pivots only when they beat the 64-wide exact
            // MS-BFS; otherwise exact is both cheaper and better.
            const count pivots = ApproxCloseness::pivotsFor(n, effTol, delta);
            if (pivots * 32 < n) {
                obs::ScopedSpan apx("engine.approx");
                apx.attr("measure", measureName(m));
                ApproxCloseness ac(g,
                                   m == Measure::HarmonicCloseness
                                       ? ApproxCloseness::Variant::Harmonic
                                       : ApproxCloseness::Variant::Standard,
                                   effTol, delta, opts_.seed);
                ac.run(v);
                ap.scores = ac.scores();
                ap.eps = ac.achievedEpsilon();
                ap.samples = ac.numberOfPivots();
                ran = true;
            }
        }
        if (ran) {
            ap.delta = delta;
            ap.version = ver;
            ap.g = &g;
            ap.valid = true;
            out.tier = ResolutionTier::Approx;
            out.cacheHit = false;
            out.epsilon = ap.eps;
            out.delta = ap.delta;
            out.samples = ap.samples;
            span.attr("approx", true);
            (void)t0;
            return finish(ap.scores);
        }
    }

    // Tier 1 (compute): exact recompute. For dyn-capable measures on graphs
    // under the state cap, the recompute *is* the kernel's init — priming
    // the repair state as a side effect at the same asymptotic cost.
    const bool prime = dk >= 0 && opts_.dynamicMeasures && n >= 2 &&
                       n <= opts_.dynStateMaxNodes;
    const auto t0 = std::chrono::steady_clock::now();
    if (prime) {
        {
            obs::ScopedSpan init("engine.dynamic_init");
            init.attr("measure", measureName(m));
            switch (dk) {
            case kDynCloseness: dynClose_.init(v); break;
            case kDynBetweenness: dynBet_.init(v); break;
            case kDynCore: dynCore_.init(v); break;
            }
        }
        DynMeta& meta = dynMeta_[static_cast<size_t>(dk)];
        meta.chainValid = true;
        meta.hasPending = false;
        meta.pendAdd.clear();
        meta.pendRem.clear();
        meta.n = n;
        ex.scores = dynScores(dk, m);
        feedEwma(meta.ewmaExact, elapsedMs(t0));
    } else {
        ex.scores = computeMeasure(g, v, m);
        if (dk >= 0) feedEwma(dynMeta_[static_cast<size_t>(dk)].ewmaExact, elapsedMs(t0));
    }
    ex.version = ver;
    ex.g = &g;
    ex.valid = true;
    ex.eps = ex.delta = 0.0;
    ex.samples = 0;
    out.tier = ResolutionTier::Exact;
    out.cacheHit = false;
    return finish(ex.scores);
}

const std::vector<double>& MeasureEngine::scores(const Graph& g, Measure m,
                                                 bool* cacheHit, bool degraded) {
    Request req;
    req.degrade = degraded ? DegradeLevel::Stale : DegradeLevel::None;
    ResultInfo resultInfo;
    const auto& s = scores(g, m, req, &resultInfo);
    if (cacheHit) *cacheHit = resultInfo.cacheHit;
    return s;
}

void MeasureEngine::reset() {
    snapshot_.reset();
    for (auto& entry : exact_) entry = Slot{};
    for (auto& entry : approx_) entry = Slot{};
    invalidateDynamic();
}

} // namespace rinkit::viz
