#include "src/viz/measures.hpp"

#include <stdexcept>

#include "src/centrality/betweenness.hpp"
#include "src/centrality/closeness.hpp"
#include "src/centrality/core_decomposition.hpp"
#include "src/centrality/degree.hpp"
#include "src/centrality/eigenvector.hpp"
#include "src/centrality/local_clustering.hpp"
#include "src/centrality/pagerank.hpp"
#include "src/community/leiden.hpp"
#include "src/community/mapequation.hpp"
#include "src/community/plm.hpp"
#include "src/community/plp.hpp"

namespace rinkit::viz {

const std::vector<Measure>& allMeasures() {
    static const std::vector<Measure> measures = {
        Measure::Degree,          Measure::Closeness,
        Measure::HarmonicCloseness, Measure::Betweenness,
        Measure::PageRank,        Measure::Eigenvector,
        Measure::Katz,            Measure::CoreNumber,
        Measure::LocalClustering,
        Measure::PlmCommunities,  Measure::LeidenCommunities,
        Measure::MapEquationCommunities, Measure::PlpCommunities,
    };
    return measures;
}

std::string measureName(Measure m) {
    switch (m) {
    case Measure::Degree: return "Degree";
    case Measure::Closeness: return "Closeness";
    case Measure::HarmonicCloseness: return "Harmonic closeness";
    case Measure::Betweenness: return "Betweenness";
    case Measure::PageRank: return "PageRank";
    case Measure::Eigenvector: return "Eigenvector";
    case Measure::Katz: return "Katz";
    case Measure::CoreNumber: return "Core number";
    case Measure::LocalClustering: return "Local clustering";
    case Measure::PlmCommunities: return "PLM communities";
    case Measure::LeidenCommunities: return "Leiden communities";
    case Measure::MapEquationCommunities: return "Map-equation communities";
    case Measure::PlpCommunities: return "PLP communities";
    }
    throw std::invalid_argument("measureName: unknown measure");
}

bool isCommunityMeasure(Measure m) {
    switch (m) {
    case Measure::PlmCommunities:
    case Measure::LeidenCommunities:
    case Measure::MapEquationCommunities:
    case Measure::PlpCommunities: return true;
    default: return false;
    }
}

namespace {

std::vector<double> fromCentrality(CentralityAlgorithm&& algo) {
    algo.run();
    return algo.scores();
}

std::vector<double> fromDetector(CommunityDetector&& det) {
    det.run();
    const auto& p = det.getPartition();
    std::vector<double> scores(p.numberOfElements());
    for (node u = 0; u < p.numberOfElements(); ++u) {
        scores[u] = static_cast<double>(p[u]);
    }
    return scores;
}

} // namespace

std::vector<double> computeMeasure(const Graph& g, Measure m) {
    // Let each algorithm materialize (and own) its snapshot.
    switch (m) {
    case Measure::Degree: return fromCentrality(DegreeCentrality(g));
    case Measure::Closeness: return fromCentrality(ClosenessCentrality(g));
    case Measure::HarmonicCloseness:
        return fromCentrality(
            ClosenessCentrality(g, ClosenessCentrality::Variant::Harmonic));
    case Measure::Betweenness: return fromCentrality(Betweenness(g, true));
    case Measure::PageRank:
        return fromCentrality(
            PageRank(g, 0.85, 1e-9, 200, PageRank::Norm::SizeInvariant));
    case Measure::Eigenvector: return fromCentrality(EigenvectorCentrality(g));
    case Measure::Katz: return fromCentrality(KatzCentrality(g));
    case Measure::CoreNumber: return fromCentrality(CoreDecomposition(g));
    case Measure::LocalClustering: return fromCentrality(LocalClusteringCoefficient(g));
    case Measure::PlmCommunities: return fromDetector(Plm(g, true));
    case Measure::LeidenCommunities: return fromDetector(ParallelLeiden(g));
    case Measure::MapEquationCommunities: return fromDetector(LouvainMapEquation(g));
    case Measure::PlpCommunities: return fromDetector(Plp(g));
    }
    throw std::invalid_argument("computeMeasure: unknown measure");
}

std::vector<double> computeMeasure(const Graph& g, const CsrView& v, Measure m) {
    switch (m) {
    case Measure::Degree: return fromCentrality(DegreeCentrality(g, v));
    case Measure::Closeness: return fromCentrality(ClosenessCentrality(g, v));
    case Measure::HarmonicCloseness:
        return fromCentrality(
            ClosenessCentrality(g, v, ClosenessCentrality::Variant::Harmonic));
    case Measure::Betweenness: return fromCentrality(Betweenness(g, v, true));
    case Measure::PageRank:
        return fromCentrality(
            PageRank(g, v, 0.85, 1e-9, 200, PageRank::Norm::SizeInvariant));
    case Measure::Eigenvector: return fromCentrality(EigenvectorCentrality(g, v));
    case Measure::Katz: return fromCentrality(KatzCentrality(g, v));
    case Measure::CoreNumber: return fromCentrality(CoreDecomposition(g, v));
    case Measure::LocalClustering:
        return fromCentrality(LocalClusteringCoefficient(g, v));
    case Measure::PlmCommunities: return fromDetector(Plm(g, v, true));
    case Measure::LeidenCommunities: return fromDetector(ParallelLeiden(g, v));
    case Measure::MapEquationCommunities: return fromDetector(LouvainMapEquation(g, v));
    case Measure::PlpCommunities: return fromDetector(Plp(g, v));
    }
    throw std::invalid_argument("computeMeasure: unknown measure");
}

const std::vector<double>& MeasureEngine::scores(const Graph& g, Measure m,
                                                 bool* cacheHit) {
    auto& entry = cache_[static_cast<size_t>(m)];
    if (entry.valid && entry.g == &g && entry.version == g.version()) {
        if (cacheHit) *cacheHit = true;
        return entry.scores;
    }
    if (cacheHit) *cacheHit = false;
    const CsrView& v = snapshot_.get(g);
    entry.scores = computeMeasure(g, v, m);
    entry.version = g.version();
    entry.g = &g;
    entry.valid = true;
    return entry.scores;
}

void MeasureEngine::reset() {
    snapshot_.reset();
    for (auto& entry : cache_) entry = Entry{};
}

} // namespace rinkit::viz
