#include "src/viz/measures.hpp"

#include <stdexcept>

#include "src/obs/trace.hpp"

#include "src/centrality/approx_betweenness.hpp"
#include "src/centrality/betweenness.hpp"
#include "src/centrality/closeness.hpp"
#include "src/centrality/core_decomposition.hpp"
#include "src/centrality/degree.hpp"
#include "src/centrality/eigenvector.hpp"
#include "src/centrality/local_clustering.hpp"
#include "src/centrality/pagerank.hpp"
#include "src/community/leiden.hpp"
#include "src/community/mapequation.hpp"
#include "src/community/plm.hpp"
#include "src/community/plp.hpp"

namespace rinkit::viz {

const std::vector<Measure>& allMeasures() {
    static const std::vector<Measure> measures = {
        Measure::Degree,          Measure::Closeness,
        Measure::HarmonicCloseness, Measure::Betweenness,
        Measure::PageRank,        Measure::Eigenvector,
        Measure::Katz,            Measure::CoreNumber,
        Measure::LocalClustering,
        Measure::PlmCommunities,  Measure::LeidenCommunities,
        Measure::MapEquationCommunities, Measure::PlpCommunities,
    };
    return measures;
}

std::string measureName(Measure m) {
    switch (m) {
    case Measure::Degree: return "Degree";
    case Measure::Closeness: return "Closeness";
    case Measure::HarmonicCloseness: return "Harmonic closeness";
    case Measure::Betweenness: return "Betweenness";
    case Measure::PageRank: return "PageRank";
    case Measure::Eigenvector: return "Eigenvector";
    case Measure::Katz: return "Katz";
    case Measure::CoreNumber: return "Core number";
    case Measure::LocalClustering: return "Local clustering";
    case Measure::PlmCommunities: return "PLM communities";
    case Measure::LeidenCommunities: return "Leiden communities";
    case Measure::MapEquationCommunities: return "Map-equation communities";
    case Measure::PlpCommunities: return "PLP communities";
    }
    throw std::invalid_argument("measureName: unknown measure");
}

bool isCommunityMeasure(Measure m) {
    switch (m) {
    case Measure::PlmCommunities:
    case Measure::LeidenCommunities:
    case Measure::MapEquationCommunities:
    case Measure::PlpCommunities: return true;
    default: return false;
    }
}

namespace {

/// Drives any kernel — centrality or detector — through the canonical
/// run(const CsrView&) entry and reads the common per-node result shape.
template <typename Kernel>
std::vector<double> runOn(Kernel&& kernel, const CsrView& v) {
    kernel.run(v);
    return kernel.scores();
}

} // namespace

std::vector<double> computeMeasure(const Graph& g, const CsrView& v, Measure m) {
    switch (m) {
    case Measure::Degree: return runOn(DegreeCentrality(g), v);
    case Measure::Closeness: return runOn(ClosenessCentrality(g), v);
    case Measure::HarmonicCloseness:
        return runOn(ClosenessCentrality(g, ClosenessCentrality::Variant::Harmonic), v);
    case Measure::Betweenness: return runOn(Betweenness(g, true), v);
    case Measure::PageRank:
        return runOn(PageRank(g, 0.85, 1e-9, 200, PageRank::Norm::SizeInvariant), v);
    case Measure::Eigenvector: return runOn(EigenvectorCentrality(g), v);
    case Measure::Katz: return runOn(KatzCentrality(g), v);
    case Measure::CoreNumber: return runOn(CoreDecomposition(g), v);
    case Measure::LocalClustering: return runOn(LocalClusteringCoefficient(g), v);
    case Measure::PlmCommunities: return runOn(Plm(g, true), v);
    case Measure::LeidenCommunities: return runOn(ParallelLeiden(g), v);
    case Measure::MapEquationCommunities: return runOn(LouvainMapEquation(g), v);
    case Measure::PlpCommunities: return runOn(Plp(g), v);
    }
    throw std::invalid_argument("computeMeasure: unknown measure");
}

const std::vector<double>& MeasureEngine::scores(const Graph& g, Measure m,
                                                 bool* cacheHit, bool degraded) {
    obs::ScopedSpan span("engine.scores");
    span.attr("measure", measureName(m));
    span.attr("degraded", degraded);
    auto& entry = cache_[static_cast<size_t>(m)];
    const bool fresh =
        entry.valid && entry.g == &g && entry.version == g.version();
    // Exact reads refuse approximate entries; degraded reads take anything
    // fresh.
    if (fresh && (degraded || !entry.approx)) {
        if (cacheHit) *cacheHit = true;
        span.attr("cache_hit", true);
        return entry.scores;
    }
    if (degraded && entry.valid && entry.g == &g &&
        entry.scores.size() == g.numberOfNodes()) {
        // Stale-but-right-sized: the latest-wins contract prefers an
        // instant slightly-old color map over a late exact one. The entry
        // keeps its old version, so the next exact read recomputes.
        if (cacheHit) *cacheHit = true;
        span.attr("cache_hit", true);
        span.attr("stale", true);
        return entry.scores;
    }
    if (cacheHit) *cacheHit = false;
    span.attr("cache_hit", false);
    const CsrView& v = snapshot_.get(g);
    if (degraded && m == Measure::Betweenness) {
        // The paper's escape hatch for heavy exact kernels: sampling
        // betweenness (Riondato-Kornaropoulos) instead of exact Brandes.
        ApproxBetweenness approx(g, 0.1, 0.1);
        approx.run(v);
        entry.scores = approx.scores();
        entry.approx = true;
        span.attr("approx", true);
    } else {
        entry.scores = computeMeasure(g, v, m);
        entry.approx = false;
    }
    entry.version = g.version();
    entry.g = &g;
    entry.valid = true;
    return entry.scores;
}

void MeasureEngine::reset() {
    snapshot_.reset();
    for (auto& entry : cache_) entry = Entry{};
}

} // namespace rinkit::viz
