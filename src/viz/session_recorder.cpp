#include "src/viz/session_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace rinkit::viz {

std::string eventKindName(SessionRecorder::EventKind kind) {
    switch (kind) {
    case SessionRecorder::EventKind::Frame: return "frame";
    case SessionRecorder::EventKind::Cutoff: return "cutoff";
    case SessionRecorder::EventKind::Measure: return "measure";
    case SessionRecorder::EventKind::Refresh: return "refresh";
    }
    return "?";
}

void SessionRecorder::record(EventKind kind, std::string detail,
                             RinWidget::UpdateTiming timing, std::string sloVerdict,
                             bool traceRetained) {
    events_.push_back({kind, std::move(detail), timing, std::move(sloVerdict), traceRetained});
}

RinWidget::UpdateTiming SessionRecorder::setFrame(RinWidget& w, index f) {
    auto t = w.setFrame(f);
    record(EventKind::Frame, "frame=" + std::to_string(f), t);
    return t;
}

RinWidget::UpdateTiming SessionRecorder::setCutoff(RinWidget& w, double cutoff) {
    auto t = w.setCutoff(cutoff);
    record(EventKind::Cutoff, "cutoff=" + std::to_string(cutoff), t);
    return t;
}

RinWidget::UpdateTiming SessionRecorder::setMeasure(RinWidget& w, Measure m) {
    auto t = w.setMeasure(m);
    record(EventKind::Measure, "measure=" + measureName(m), t);
    return t;
}

namespace {

SessionRecorder::PhaseStats aggregate(std::vector<double> samples) {
    SessionRecorder::PhaseStats stats;
    stats.samples = samples.size();
    if (samples.empty()) return stats;
    double sum = 0.0;
    for (double s : samples) {
        sum += s;
        stats.maxMs = std::max(stats.maxMs, s);
    }
    stats.meanMs = sum / static_cast<double>(samples.size());
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<size_t>(
        std::ceil(0.95 * static_cast<double>(samples.size())) - 1);
    stats.p95Ms = samples[std::min(idx, samples.size() - 1)];
    return stats;
}

} // namespace

SessionRecorder::PhaseStats SessionRecorder::totalStats(EventKind kind) const {
    std::vector<double> samples;
    for (const auto& e : events_) {
        if (e.kind == kind) samples.push_back(e.timing.totalMs());
    }
    return aggregate(std::move(samples));
}

SessionRecorder::PhaseStats SessionRecorder::phaseStats(const std::string& phase) const {
    std::vector<double> samples;
    for (const auto& e : events_) {
        const auto& t = e.timing;
        if (phase == "network") samples.push_back(t.networkUpdateMs);
        else if (phase == "layout") samples.push_back(t.layoutMs);
        else if (phase == "measure") samples.push_back(t.measureMs);
        else if (phase == "scene") samples.push_back(t.sceneBuildMs);
        else if (phase == "serialize") samples.push_back(t.serializeMs);
        else if (phase == "client") samples.push_back(t.clientMs);
        else throw std::invalid_argument("SessionRecorder: unknown phase " + phase);
    }
    return aggregate(std::move(samples));
}

void SessionRecorder::writeCsv(std::ostream& out) const {
    out << "event,detail,network_ms,layout_ms,measure_ms,scene_ms,serialize_ms,"
           "client_ms,total_ms,edges_added,edges_removed,edges_total,wire_bytes,"
           "measure_tier,measure_eps,measure_samples,slo_verdict,trace_retained,"
           "spec_judged,spec_hit,lod_coarse,client_refine_ms\n";
    for (const auto& e : events_) {
        const auto& t = e.timing;
        out << eventKindName(e.kind) << ',' << e.detail << ',' << t.networkUpdateMs
            << ',' << t.layoutMs << ',' << t.measureMs << ',' << t.sceneBuildMs << ','
            << t.serializeMs << ',' << t.clientMs << ',' << t.totalMs() << ','
            << t.edgeStats.edgesAdded << ',' << t.edgeStats.edgesRemoved << ','
            << t.edgeStats.edgesTotal << ',' << t.wireBytes << ','
            << tierName(t.measureTier) << ',' << t.measureEps << ','
            << t.measureSamples << ',' << e.sloVerdict << ','
            << (e.traceRetained ? 1 : 0) << ',' << (t.specJudged ? 1 : 0) << ','
            << (t.specHit ? 1 : 0) << ',' << (t.lodCoarse ? 1 : 0) << ','
            << t.clientRefineMs << '\n';
    }
}

bool SessionRecorder::interactive(double budgetMs) const {
    for (const auto& e : events_) {
        if (e.timing.totalMs() > budgetMs) return false;
    }
    return true;
}

} // namespace rinkit::viz
