#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/viz/widget.hpp"

namespace rinkit::viz {

/// Records widget update cycles and aggregates them into the statistics
/// the paper's Section V-B plots — the benchmarking methodology behind
/// Figs. 6-8, packaged as a reusable component.
class SessionRecorder {
public:
    enum class EventKind { Frame, Cutoff, Measure, Refresh };

    struct Event {
        EventKind kind;
        std::string detail; ///< "frame=5", "cutoff=7.5", "measure=Closeness"
        RinWidget::UpdateTiming timing;
        /// Serving-layer SLO verdict ("ok", "deadline_missed", "rejected");
        /// stays "ok" for direct widget drives with no serving layer.
        std::string sloVerdict = "ok";
        /// The request's trace survived tail-based retention.
        bool traceRetained = false;
    };

    /// Per-phase aggregate over recorded events of one kind.
    struct PhaseStats {
        double meanMs = 0.0;
        double maxMs = 0.0;
        double p95Ms = 0.0;
        count samples = 0;
    };

    /// Records one update cycle. The two trailing parameters carry the
    /// serving layer's observability verdicts (serve::RequestOutcome's
    /// sloVerdict/traceRetained); the defaults keep direct widget drives
    /// unchanged.
    void record(EventKind kind, std::string detail, RinWidget::UpdateTiming timing,
                std::string sloVerdict = "ok", bool traceRetained = false);

    // Convenience wrappers that forward to the widget and record.
    RinWidget::UpdateTiming setFrame(RinWidget& w, index f);
    RinWidget::UpdateTiming setCutoff(RinWidget& w, double cutoff);
    RinWidget::UpdateTiming setMeasure(RinWidget& w, Measure m);

    count eventCount() const { return events_.size(); }
    const std::vector<Event>& events() const { return events_; }

    /// Aggregate of total cycle time for one event kind.
    PhaseStats totalStats(EventKind kind) const;

    /// Aggregate of a single phase across all events; @p phase is one of
    /// "network", "layout", "measure", "scene", "serialize", "client".
    PhaseStats phaseStats(const std::string& phase) const;

    /// CSV with one row per event (header included): the raw data behind a
    /// Fig. 6-8 style plot.
    void writeCsv(std::ostream& out) const;

    /// True while every recorded total stays under @p budgetMs — the
    /// paper's interactivity claim as a checkable predicate.
    bool interactive(double budgetMs = 1000.0) const;

private:
    std::vector<Event> events_;
};

/// Name of an event kind ("frame", "cutoff", ...).
std::string eventKindName(SessionRecorder::EventKind kind);

} // namespace rinkit::viz
