#pragma once

#include <string>
#include <vector>

#include "src/viz/scene.hpp"

namespace rinkit::viz {

/// Plotly figure serializer — the C++ counterpart of NetworKit's
/// plotlybridge module (paper Section V-A).
///
/// Every scene becomes one pair of Scatter3d traces: a marker trace for
/// nodes (with per-node colors and hover text) and a line trace for edges
/// (consecutive endpoint pairs separated by nulls — plotly's segment-gap
/// convention). The emitted document is a valid plotly figure object
/// ({"data": [...], "layout": {...}}) that plotly.js or plotly.py renders
/// directly; the paper's dual-view widget is two side-by-side scenes.
///
/// Serialization fast path: each trace is serialized into its own JSON
/// fragment (all fragments in parallel across scenes), then spliced into
/// the preallocated document buffer. Callers that know a scene's edge
/// geometry has not changed (e.g. the widget on a measure-only update) can
/// pass the previously serialized edge trace to addScene() and skip that
/// work entirely — edge traces dominate the payload, ~3 numbers per edge
/// endpoint pair plus the null gap.
class Figure {
public:
    /// Appends a scene (a subplot). Multiple scenes render side by side.
    void addScene(const Scene& scene) { addScene(scene, std::string()); }

    /// Appends a scene with a pre-serialized edge trace (obtained from a
    /// previous edgeTraceJson() call on identical positions/edges); the
    /// fragment is spliced verbatim instead of re-serializing.
    void addScene(const Scene& scene, std::string cachedEdgeTraceJson) {
        scenes_.push_back(scene);
        edgeJson_.push_back(std::move(cachedEdgeTraceJson));
    }

    count sceneCount() const { return scenes_.size(); }

    /// The edge trace of @p s as a standalone JSON object — cacheable
    /// across updates that leave positions and edges untouched.
    static std::string edgeTraceJson(const Scene& s, count sceneIndex);

    /// The node (marker) trace of @p s as a standalone JSON object.
    static std::string nodeTraceJson(const Scene& s, count sceneIndex);

    /// Serializes to plotly JSON. This is the payload whose size drives
    /// the client-perceived update time in Figs. 6-8.
    std::string toJson() const;

private:
    std::vector<Scene> scenes_;
    std::vector<std::string> edgeJson_; // per scene; empty = serialize fresh
};

} // namespace rinkit::viz
