#pragma once

#include <string>
#include <vector>

#include "src/viz/scene.hpp"

namespace rinkit::viz {

/// Plotly figure serializer — the C++ counterpart of NetworKit's
/// plotlybridge module (paper Section V-A).
///
/// Every scene becomes one pair of Scatter3d traces: a marker trace for
/// nodes (with per-node colors and hover text) and a line trace for edges
/// (consecutive endpoint pairs separated by nulls — plotly's segment-gap
/// convention). The emitted document is a valid plotly figure object
/// ({"data": [...], "layout": {...}}) that plotly.js or plotly.py renders
/// directly; the paper's dual-view widget is two side-by-side scenes.
class Figure {
public:
    /// Appends a scene (a subplot). Multiple scenes render side by side.
    void addScene(const Scene& scene) { scenes_.push_back(scene); }

    count sceneCount() const { return scenes_.size(); }

    /// Serializes to plotly JSON. This is the payload whose size drives
    /// the client-perceived update time in Figs. 6-8.
    std::string toJson() const;

private:
    std::vector<Scene> scenes_;
};

} // namespace rinkit::viz
