#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/dyn/dyn_betweenness.hpp"
#include "src/dyn/dyn_closeness.hpp"
#include "src/dyn/dyn_core.hpp"
#include "src/dyn/dyn_kadabra.hpp"
#include "src/graph/csr_view.hpp"
#include "src/graph/graph.hpp"

namespace rinkit::viz {

/// The network measures the widget's measure slider offers ([R1]): the
/// centralities and community detectors of the paper's Figs. 6-8, computed
/// through one uniform interface so that the GUI (and the benches) can
/// iterate over them.
enum class Measure {
    Degree,
    Closeness,
    HarmonicCloseness,
    Betweenness,
    PageRank,
    Eigenvector,
    Katz,
    CoreNumber,
    LocalClustering,
    PlmCommunities,
    LeidenCommunities,
    MapEquationCommunities,
    PlpCommunities,
};

inline constexpr std::size_t kNumMeasures = 13;

/// All measures in menu order.
const std::vector<Measure>& allMeasures();

/// Human-readable name ("Closeness", "PLM communities", ...).
std::string measureName(Measure m);

/// True for community detectors (scores are categorical subset ids and
/// should be colored with the categorical palette).
bool isCommunityMeasure(Measure m);

/// Computes per-node scores of @p m by driving the measure's kernel
/// through its canonical `run(const CsrView&)` entry on @p view (a
/// snapshot of @p g). For community measures the score is the (compacted)
/// community id. This is the single measure-to-kernel adaptor; everything
/// that computes a measure — engine, benches, tests — goes through it.
std::vector<double> computeMeasure(const Graph& g, const CsrView& view, Measure m);

/// How far the serving layer allows a result to deviate from fresh-exact.
/// The SessionService overload ladder walks None -> Approx -> Stale:
/// "approximate with a stated error bound" is preferred over "exact but for
/// an old graph", because a bounded error on the current frame is more
/// useful than an unbounded one from the past.
enum class DegradeLevel { None, Approx, Stale };

/// How a result was actually produced — the engine's three-tier resolution
/// (plus the stale-serve escape hatch). Reported per request so the tier is
/// visible in span attributes, metrics, and session recordings.
enum class ResolutionTier {
    Exact,   ///< fresh exact: cache hit, dyn-state serve, or full recompute
    Dynamic, ///< exact, produced by diff-driven repair of stored state
    Approx,  ///< sampled, with an (epsilon, delta) guarantee
    Stale,   ///< exact or approx, but for an older graph version
};

const char* tierName(ResolutionTier t);

/// The widget session's measure engine: one shared CSR snapshot plus a
/// per-measure result cache, both keyed by Graph::version(), extended with
/// diff-driven dynamic kernels and sampling approximation.
///
/// Every request resolves through a three-tier policy:
///
///  1. *Cached exact* — switching the measure on an unchanged graph is an
///     O(1) lookup. Exact and approximate results live in separate slots
///     keyed by (measure, version, epsilon), so an exact read never serves
///     a sampled result silently, and vice versa.
///  2. *Dynamic update* — for Closeness / Harmonic / Betweenness / Core the
///     engine keeps per-source BFS state (rinkit::dyn) primed by the last
///     exact computation. When the graph moved by a small diff (fed in via
///     noteDiff() from DynamicRin's edge lists), the state is repaired
///     instead of recomputed — exact results at a fraction of the cost. A
///     cost model (diff fraction, node cap, EWMA of observed update vs
///     recompute times from the obs spans) decides when repair would be
///     slower than recomputing and falls back automatically.
///  3. *Sampled approximation* — when the caller states an error tolerance
///     (Request::tolerance, surfaced as RinWidgetOptions::
///     measureErrorTolerance) or the serving layer degrades to
///     DegradeLevel::Approx, betweenness switches to adaptive sampling
///     (KADABRA-style; Riondato-Kornaropoulos as the non-adaptive option)
///     and closeness to pivot sampling — each reporting the (epsilon,
///     delta) actually achieved in ResultInfo. The betweenness sample set
///     itself is diff-maintained (dyn::DynKadabra): on small diffs only
///     the sampled paths whose shortest-path DAG moved are redrawn, so a
///     warm approx read costs a fraction of a cold sampling run. Exact
///     dynamic betweenness repair exists too, but its sigma cascades are
///     global on small-diameter RINs — the cost model learns that and
///     routes betweenness to the sampled path or a recompute instead.
///
/// DegradeLevel::Stale additionally allows serving a right-sized result for
/// an older version — the last rung of the ladder, kept from the original
/// latest-wins design.
class MeasureEngine {
public:
    struct Options {
        /// Master switch for tier 2 (state priming + diff repair).
        bool dynamicMeasures = true;
        /// Dynamic state is O(n^2); above this node count never prime.
        count dynStateMaxNodes = 1536;
        /// Fall back to recompute when the accumulated diff exceeds this
        /// fraction of the graph's edges.
        double fallbackDiffFraction = 0.15;
        /// (epsilon, delta) used when the serving layer degrades a request
        /// that did not state its own tolerance.
        double degradeEpsilon = 0.1;
        double degradeDelta = 0.1;
        /// delta paired with caller-stated tolerances.
        double approxDelta = 0.1;
        /// Adaptive (KADABRA-style) betweenness sampling; false pins the
        /// fixed-size Riondato-Kornaropoulos estimator.
        bool adaptiveSampling = true;
        std::uint64_t seed = 1;
    };

    /// What the caller is willing to accept for this read.
    struct Request {
        /// 0 demands exact; > 0 permits sampled results whose guaranteed
        /// additive error is <= tolerance.
        double tolerance = 0.0;
        DegradeLevel degrade = DegradeLevel::None;
    };

    /// What the engine actually did — threaded into span attributes,
    /// serve::MetricsRegistry counters, and the session recorder.
    struct ResultInfo {
        ResolutionTier tier = ResolutionTier::Exact;
        double epsilon = 0.0; ///< achieved additive error bound (0 = exact)
        double delta = 0.0;   ///< failure probability of that bound
        count samples = 0;    ///< samples/pivots drawn (0 for exact tiers)
        bool cacheHit = false;
        count diffEdges = 0;  ///< diff size consumed by a Dynamic update
    };

    MeasureEngine() = default;
    explicit MeasureEngine(const Options& opts) : opts_(opts) {}

    /// Scores of @p m on @p g under @p req; @p info (if non-null) reports
    /// the resolution tier and achieved bounds.
    const std::vector<double>& scores(const Graph& g, Measure m, const Request& req,
                                      ResultInfo* info = nullptr);

    /// Legacy entry: exact read, or (degraded) the stale-first ladder the
    /// serving layer used before DegradeLevel existed.
    const std::vector<double>& scores(const Graph& g, Measure m,
                                      bool* cacheHit = nullptr,
                                      bool degraded = false);

    /// Installs an externally computed *exact* result for @p m at @p g's
    /// current version into the exact cache slot — the speculative
    /// precompute adoption hook. The caller guarantees @p scores equals
    /// what an exact recompute on @p g would produce (the speculation ran
    /// computeMeasure on an identical edge set); the next scores() read at
    /// this version is then an O(1) cached-exact hit. Does not prime the
    /// dynamic kernels — a later cache miss falls through the normal
    /// ladder unchanged.
    void storeExact(const Graph& g, Measure m, std::vector<double> scores);

    /// Feeds the engine the edge diff that moved @p g from @p fromVersion
    /// to its current version (DynamicRin::lastAdded/lastRemoved). Diffs
    /// compose across calls; a version gap invalidates the dynamic state
    /// (next exact read re-primes it).
    void noteDiff(const Graph& g, std::uint64_t fromVersion,
                  const std::vector<std::pair<node, node>>& added,
                  const std::vector<std::pair<node, node>>& removed);

    /// Drops all dynamic state (graph rebuilt / diff unavailable).
    void invalidateDynamic();

    /// Drops the snapshot, every cached result, and all dynamic state.
    void reset();

    const Options& options() const { return opts_; }

private:
    struct Slot {
        std::vector<double> scores;
        std::uint64_t version = 0;
        const Graph* g = nullptr;
        bool valid = false;
        double eps = 0.0;   ///< guaranteed additive error (0 = exact)
        double delta = 0.0;
        count samples = 0;
    };

    /// Chain bookkeeping for one dynamic kernel (the kernel itself stores
    /// the per-source state).
    struct DynMeta {
        bool chainValid = false; ///< pending diff leads kernel -> current
        bool hasPending = false;
        std::uint64_t target = 0; ///< version the pending diff produces
        std::vector<std::pair<node, node>> pendAdd, pendRem;
        count n = 0;              ///< node count the kernel was primed on
        double ewmaDyn = -1.0;    ///< EWMA of update cost (ms)
        double ewmaExact = -1.0;  ///< EWMA of exact/prime cost (ms)
    };

    /// kDynKadabra is the sampled sibling of the exact kernels: the approx
    /// tier's betweenness state, diff-maintained like the others but served
    /// with an (epsilon, delta) bound instead of exactness.
    enum DynKernel {
        kDynCloseness = 0,
        kDynBetweenness = 1,
        kDynCore = 2,
        kDynKadabra = 3,
    };
    static constexpr int kNumDynKernels = 4;

    /// Dynamic kernel index for @p m, or -1 when it has none.
    static int dynKernelFor(Measure m);

    void chainDiff(DynMeta& meta, std::uint64_t kernelVersion, std::uint64_t fromVersion,
                   std::uint64_t toVersion,
                   const std::vector<std::pair<node, node>>& added,
                   const std::vector<std::pair<node, node>>& removed);

    bool dynStateCurrent(int k, const Graph& g) const;
    bool dynUpdateEligible(int k, const Graph& g) const;
    std::vector<double> dynScores(int k, Measure m) const;
    bool dynPrimed(int k) const;
    std::uint64_t dynVersion(int k) const;

    Options opts_{};
    CsrSnapshot snapshot_;
    std::array<Slot, kNumMeasures> exact_{};
    std::array<Slot, kNumMeasures> approx_{};

    dyn::DynCloseness dynClose_;
    dyn::DynBetweenness dynBet_;
    dyn::DynCoreDecomposition dynCore_;
    dyn::DynKadabra dynKad_;
    std::array<DynMeta, kNumDynKernels> dynMeta_{};
};

} // namespace rinkit::viz
