#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.hpp"

namespace rinkit::viz {

/// The network measures the widget's measure slider offers ([R1]): the
/// centralities and community detectors of the paper's Figs. 6-8, computed
/// through one uniform interface so that the GUI (and the benches) can
/// iterate over them.
enum class Measure {
    Degree,
    Closeness,
    HarmonicCloseness,
    Betweenness,
    PageRank,
    Eigenvector,
    Katz,
    CoreNumber,
    LocalClustering,
    PlmCommunities,
    LeidenCommunities,
    MapEquationCommunities,
    PlpCommunities,
};

/// All measures in menu order.
const std::vector<Measure>& allMeasures();

/// Human-readable name ("Closeness", "PLM communities", ...).
std::string measureName(Measure m);

/// True for community detectors (scores are categorical subset ids and
/// should be colored with the categorical palette).
bool isCommunityMeasure(Measure m);

/// Computes per-node scores of @p m on @p g. For community measures the
/// score is the (compacted) community id.
std::vector<double> computeMeasure(const Graph& g, Measure m);

} // namespace rinkit::viz
