#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/csr_view.hpp"
#include "src/graph/graph.hpp"

namespace rinkit::viz {

/// The network measures the widget's measure slider offers ([R1]): the
/// centralities and community detectors of the paper's Figs. 6-8, computed
/// through one uniform interface so that the GUI (and the benches) can
/// iterate over them.
enum class Measure {
    Degree,
    Closeness,
    HarmonicCloseness,
    Betweenness,
    PageRank,
    Eigenvector,
    Katz,
    CoreNumber,
    LocalClustering,
    PlmCommunities,
    LeidenCommunities,
    MapEquationCommunities,
    PlpCommunities,
};

/// All measures in menu order.
const std::vector<Measure>& allMeasures();

/// Human-readable name ("Closeness", "PLM communities", ...).
std::string measureName(Measure m);

/// True for community detectors (scores are categorical subset ids and
/// should be colored with the categorical palette).
bool isCommunityMeasure(Measure m);

/// Computes per-node scores of @p m by driving the measure's kernel
/// through its canonical `run(const CsrView&)` entry on @p view (a
/// snapshot of @p g). For community measures the score is the (compacted)
/// community id. This is the single measure-to-kernel adaptor; everything
/// that computes a measure — engine, benches, tests — goes through it.
std::vector<double> computeMeasure(const Graph& g, const CsrView& view, Measure m);

/// The widget session's measure engine: one shared CSR snapshot plus a
/// per-measure result cache, both keyed by Graph::version().
///
/// Switching the measure on an unchanged graph is an O(1) lookup; switching
/// the cut-off or trajectory frame mutates the graph, which bumps the
/// version and thereby invalidates stale entries lazily — nothing is
/// cleared eagerly, an entry is simply recomputed the next time it is read
/// with a newer version. Results for the *current* version always coexist,
/// so flipping between two measures costs two computations total.
///
/// Degraded reads are the serving layer's shed/deadline path (see
/// serve::SessionService): instead of recomputing, they serve the cached
/// result even when its version is stale, and on a true miss substitute
/// sampling-approximate betweenness for exact Brandes. Approximate
/// results are tagged so an exact read never serves them.
class MeasureEngine {
public:
    /// Scores of @p m on @p g. Sets @p cacheHit (if non-null) to true iff
    /// the result came out of the version-keyed cache (for degraded reads
    /// this includes stale entries). With @p degraded set, trades accuracy
    /// for latency as described above.
    const std::vector<double>& scores(const Graph& g, Measure m,
                                      bool* cacheHit = nullptr,
                                      bool degraded = false);

    /// Drops the snapshot and every cached result.
    void reset();

private:
    struct Entry {
        std::vector<double> scores;
        std::uint64_t version = 0;
        const Graph* g = nullptr;
        bool valid = false;
        bool approx = false; ///< degraded substitute; a miss for exact reads
    };

    CsrSnapshot snapshot_;
    std::array<Entry, 13> cache_{};
};

} // namespace rinkit::viz
