#include "src/viz/scene.hpp"

#include <cstdio>
#include <stdexcept>

namespace rinkit::viz {

namespace {

void checkSizes(const Graph& g, const std::vector<Point3>& coords, count scoreCount,
                const char* who) {
    if (coords.size() != g.numberOfNodes() || scoreCount != g.numberOfNodes()) {
        throw std::invalid_argument(std::string(who) +
                                    ": graph/coordinates/scores size mismatch");
    }
}

} // namespace

Scene makeScene(const Graph& g, const std::vector<Point3>& coordinates,
                const std::vector<double>& scores, Palette palette,
                const std::string& title, bool includeEdges) {
    checkSizes(g, coordinates, scores.size(), "makeScene");
    Scene s;
    s.title = title;
    s.nodePositions = coordinates;
    s.nodeColors = mapScores(scores, palette);
    s.nodeSizes = {6.0};
    s.nodeLabels.reserve(g.numberOfNodes());
    for (node u = 0; u < g.numberOfNodes(); ++u) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "node %u: %.6g", u, scores[u]);
        s.nodeLabels.emplace_back(buf);
    }
    if (includeEdges) s.edges = g.edges();
    return s;
}

Scene makeCommunityScene(const Graph& g, const std::vector<Point3>& coordinates,
                         const std::vector<index>& communities,
                         const std::string& title, bool includeEdges) {
    checkSizes(g, coordinates, communities.size(), "makeCommunityScene");
    Scene s;
    s.title = title;
    s.nodePositions = coordinates;
    s.nodeColors.reserve(g.numberOfNodes());
    s.nodeLabels.reserve(g.numberOfNodes());
    for (node u = 0; u < g.numberOfNodes(); ++u) {
        s.nodeColors.push_back(categorical(communities[u]));
        char buf[64];
        std::snprintf(buf, sizeof(buf), "node %u: community %u", u, communities[u]);
        s.nodeLabels.emplace_back(buf);
    }
    s.nodeSizes = {6.0};
    if (includeEdges) s.edges = g.edges();
    return s;
}

} // namespace rinkit::viz
