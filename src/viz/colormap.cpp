#include "src/viz/colormap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rinkit::viz {

std::string Color::hex() const {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
    return buf;
}

namespace {

struct Anchor {
    double t;
    Color c;
};

// Anchor colors of the standard palettes (matplotlib / ColorBrewer values).
const Anchor kSpectral[] = {
    {0.0, {94, 79, 162}},  {0.2, {50, 136, 189}}, {0.4, {171, 221, 164}},
    {0.5, {255, 255, 191}}, {0.6, {254, 224, 139}}, {0.8, {244, 109, 67}},
    {1.0, {158, 1, 66}},
};
const Anchor kViridis[] = {
    {0.0, {68, 1, 84}},   {0.25, {59, 82, 139}}, {0.5, {33, 145, 140}},
    {0.75, {94, 201, 98}}, {1.0, {253, 231, 37}},
};
const Anchor kPlasma[] = {
    {0.0, {13, 8, 135}},   {0.25, {126, 3, 168}}, {0.5, {204, 71, 120}},
    {0.75, {248, 149, 64}}, {1.0, {240, 249, 33}},
};
const Anchor kCoolwarm[] = {
    {0.0, {59, 76, 192}}, {0.5, {221, 221, 221}}, {1.0, {180, 4, 38}},
};

Color interpolate(const Anchor* anchors, count n, double t) {
    t = std::clamp(t, 0.0, 1.0);
    for (count i = 1; i < n; ++i) {
        if (t <= anchors[i].t) {
            const double span = anchors[i].t - anchors[i - 1].t;
            const double f = span > 0.0 ? (t - anchors[i - 1].t) / span : 0.0;
            const Color& a = anchors[i - 1].c;
            const Color& b = anchors[i].c;
            return {static_cast<int>(std::lround(a.r + f * (b.r - a.r))),
                    static_cast<int>(std::lround(a.g + f * (b.g - a.g))),
                    static_cast<int>(std::lround(a.b + f * (b.b - a.b)))};
        }
    }
    return anchors[n - 1].c;
}

} // namespace

Color sample(Palette palette, double t) {
    switch (palette) {
    case Palette::Spectral: return interpolate(kSpectral, std::size(kSpectral), t);
    case Palette::Viridis: return interpolate(kViridis, std::size(kViridis), t);
    case Palette::Plasma: return interpolate(kPlasma, std::size(kPlasma), t);
    case Palette::Coolwarm: return interpolate(kCoolwarm, std::size(kCoolwarm), t);
    }
    return {};
}

std::vector<Color> mapScores(const std::vector<double>& scores, Palette palette) {
    double lo = 1e300, hi = -1e300;
    for (double s : scores) {
        if (std::isnan(s)) continue;
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    std::vector<Color> out(scores.size());
    const bool constant = !(hi > lo);
    for (count i = 0; i < scores.size(); ++i) {
        if (std::isnan(scores[i])) {
            out[i] = {128, 128, 128};
        } else {
            out[i] = sample(palette, constant ? 0.5 : (scores[i] - lo) / (hi - lo));
        }
    }
    return out;
}

namespace {
// 12 visually distinct hues (ColorBrewer Set3-like but saturated).
const Color kCategorical[] = {
    {31, 119, 180}, {255, 127, 14},  {44, 160, 44},   {214, 39, 40},
    {148, 103, 189}, {140, 86, 75},  {227, 119, 194}, {127, 127, 127},
    {188, 189, 34}, {23, 190, 207},  {255, 187, 120}, {152, 223, 138},
};
} // namespace

Color categorical(index id) {
    return kCategorical[id % std::size(kCategorical)];
}

count categoricalCycle() { return std::size(kCategorical); }

} // namespace rinkit::viz
