#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/point3.hpp"
#include "src/viz/colormap.hpp"

namespace rinkit::viz {

/// The 2D companion of the plotly bridge: NetworKit's `csbridge` module
/// ("NETWORKIT implements two modules csbridge (2D graphs) and
/// plotlybridge (2D and 3D graphs)", paper Section V-A).
///
/// Emits Cytoscape.js elements JSON — `{"elements": {"nodes": [...],
/// "edges": [...]}}` — with positions taken from a 3D layout projected to
/// the best-spread 2D plane (the two axes with the largest extent), and
/// node colors from scores. The document loads directly into
/// cytoscape({elements: ...}) or ipycytoscape.
class CytoscapeFigure {
public:
    /// @p coordinates is a 3D layout; the projection picks the two axes
    /// with the largest spread.
    CytoscapeFigure(const Graph& g, const std::vector<Point3>& coordinates,
                    const std::vector<double>& scores, Palette palette);

    /// Serializes to Cytoscape.js JSON.
    std::string toJson() const;

    /// The 2D positions actually used (exposed for tests).
    const std::vector<std::pair<double, double>>& positions2d() const {
        return positions_;
    }

private:
    const Graph& g_;
    std::vector<std::pair<double, double>> positions_;
    std::vector<Color> colors_;
    std::vector<double> scores_;
};

} // namespace rinkit::viz
