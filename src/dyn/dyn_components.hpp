#pragma once

#include <cstdint>
#include <vector>

#include "src/dyn/edge_batch.hpp"
#include "src/graph/csr_view.hpp"

namespace rinkit::dyn {

/// Dynamic connected components: insertions merge labels through a
/// union-find over component ids; deletions rebuild only the affected
/// components (BFS over the vertices of every component that lost an
/// edge, treating intact foreign components as super-nodes). Labels are
/// compacted in first-occurrence node order after every update, so they
/// are bit-equal to a from-scratch ConnectedComponents run.
class DynConnectedComponents {
public:
    void init(const CsrView& v);

    bool primed() const { return primed_; }
    std::uint64_t version() const { return version_; }

    void update(const CsrView& v, const EdgeBatch& batch);

    count numberOfComponents() const { return numComponents_; }
    index componentOf(node u) const { return comp_[u]; }
    const std::vector<index>& components() const { return comp_; }

    void reset();

private:
    void compact();

    count n_ = 0;
    std::uint64_t version_ = 0;
    bool primed_ = false;
    std::vector<index> comp_;
    count numComponents_ = 0;
};

} // namespace rinkit::dyn
