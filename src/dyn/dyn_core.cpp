#include "src/dyn/dyn_core.hpp"

#include <algorithm>

namespace rinkit::dyn {

namespace {

inline std::uint64_t arcKey(node a, node b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

} // namespace

bool DynCoreDecomposition::isPending(node a, node b) const {
    return !pending_.empty() && pending_.count(arcKey(a, b)) != 0;
}

count DynCoreDecomposition::hIndex(const CsrView& v, node u) const {
    // h-index of the neighbor core multiset, capped at core_[u] (the
    // capped operator keeps iterates monotone-decreasing from any upper
    // bound). Counting sort over [0, cap] makes it O(deg + cap).
    const count cap = core_[u];
    if (cap == 0) return 0;
    if (hScratch_.size() < cap + 1) hScratch_.resize(cap + 1);
    std::fill(hScratch_.begin(), hScratch_.begin() + cap + 1, 0);
    v.forNeighborsOf(u, [&](node w) {
        if (isPending(u, w)) return;
        ++hScratch_[std::min(core_[w], cap)];
    });
    count cum = 0;
    for (count h = cap; h > 0; --h) {
        cum += hScratch_[h];
        if (cum >= h) return h;
    }
    return 0;
}

void DynCoreDecomposition::settle(const CsrView& v, std::vector<node>& seeds) {
    while (!seeds.empty()) {
        const node u = seeds.back();
        seeds.pop_back();
        const count h = hIndex(v, u);
        if (h >= core_[u]) continue;
        core_[u] = h;
        v.forNeighborsOf(u, [&](node w) {
            if (!isPending(u, w) && core_[w] > h) seeds.push_back(w);
        });
    }
}

void DynCoreDecomposition::init(const CsrView& v) {
    n_ = v.numberOfNodes();
    version_ = v.version();
    core_.assign(n_, 0);
    pending_.clear();
    primed_ = true;
    if (n_ == 0) return;
    // Degrees are an upper bound; the capped h-operator worklist settles to
    // the exact core numbers (Lu et al., the h-index view of coreness).
    std::vector<node> seeds(n_);
    for (node u = 0; u < n_; ++u) {
        core_[u] = v.degree(u);
        seeds[u] = u;
    }
    settle(v, seeds);
}

void DynCoreDecomposition::update(const CsrView& v, const EdgeBatch& batch) {
    version_ = v.version();
    if (n_ == 0 || batch.size() == 0) return;

    // The snapshot is post-batch: mask every inserted arc until its edge
    // is logically applied, so the deletion phase and each insertion see
    // exactly the intermediate graph they are defined on.
    pending_.clear();
    if (batch.added) {
        for (const auto& [u, w] : *batch.added) {
            pending_.insert(arcKey(u, w));
            pending_.insert(arcKey(w, u));
        }
    }

    std::vector<node> seeds;
    if (batch.removed && !batch.removed->empty()) {
        // Deletions only lower coreness, so the stored cores stay an upper
        // bound — settle from the endpoints.
        for (const auto& [u, w] : *batch.removed) {
            seeds.push_back(u);
            seeds.push_back(w);
        }
        settle(v, seeds);
    }

    if (batch.added) {
        std::vector<node> stack, cand;
        std::vector<std::uint8_t> inSubcore(n_, 0);
        for (const auto& [eu, ew] : *batch.added) {
            pending_.erase(arcKey(eu, ew));
            pending_.erase(arcKey(ew, eu));
            // One edge raises coreness by at most one, and only inside the
            // subcore: core == k vertices reachable from the edge through
            // core == k vertices, k the smaller endpoint core.
            const count k = std::min(core_[eu], core_[ew]);
            cand.clear();
            stack.clear();
            for (node e : {eu, ew}) {
                if (core_[e] == k && !inSubcore[e]) {
                    inSubcore[e] = 1;
                    cand.push_back(e);
                    stack.push_back(e);
                }
            }
            while (!stack.empty()) {
                const node x = stack.back();
                stack.pop_back();
                v.forNeighborsOf(x, [&](node y) {
                    if (isPending(x, y) || core_[y] != k || inSubcore[y]) return;
                    inSubcore[y] = 1;
                    cand.push_back(y);
                    stack.push_back(y);
                });
            }
            for (node c : cand) {
                inSubcore[c] = 0;
                core_[c] = k + 1; // upper bound; settle peels the excess
            }
            seeds = cand;
            settle(v, seeds);
        }
    }
    pending_.clear();
}

std::vector<double> DynCoreDecomposition::scores() const {
    std::vector<double> out(n_);
    for (node u = 0; u < n_; ++u) out[u] = static_cast<double>(core_[u]);
    return out;
}

count DynCoreDecomposition::maxCore() const {
    count m = 0;
    for (count c : core_) m = std::max(m, c);
    return m;
}

void DynCoreDecomposition::reset() {
    primed_ = false;
    core_.clear();
    pending_.clear();
    n_ = 0;
    version_ = 0;
}

} // namespace rinkit::dyn
