#include "src/dyn/dyn_closeness.hpp"

#include <omp.h>

#include "src/components/csr_bfs.hpp"

namespace rinkit::dyn {

void DynCloseness::init(const CsrView& v) {
    n_ = v.numberOfNodes();
    version_ = v.version();
    lvl_.assign(n_ * n_, kUnreachedLevel);
    sumDist_.assign(n_, 0.0);
    sumInv_.assign(n_, 0.0);
    reached_.assign(n_, 0);
    lastChanged_ = 0;
    primed_ = true;
    if (n_ == 0) return;

#pragma omp parallel
    {
        CsrBfs bfs(v);
#pragma omp for schedule(dynamic, 16)
        for (long long si = 0; si < static_cast<long long>(n_); ++si) {
            const node s = static_cast<node>(si);
            bfs.run(s);
            std::uint16_t* row = lvl_.data() + static_cast<size_t>(si) * n_;
            double sd = 0.0, si2 = 0.0;
            count r = 0;
            for (node u = 0; u < n_; ++u) {
                const std::uint32_t d = bfs.levelOf(u);
                if (d == CsrBfs::unreachedLevel) continue;
                row[u] = static_cast<std::uint16_t>(d);
                if (u != s) {
                    sd += static_cast<double>(d);
                    si2 += 1.0 / static_cast<double>(d);
                    ++r;
                }
            }
            sumDist_[s] = sd;
            sumInv_[s] = si2;
            reached_[s] = r;
        }
    }
}

void DynCloseness::update(const CsrView& v, const EdgeBatch& batch) {
    lastChanged_ = 0;
    version_ = v.version();
    if (n_ == 0 || batch.size() == 0) return;
    count totalChanged = 0;

#pragma omp parallel reduction(+ : totalChanged)
    {
        LevelRepairer repairer;
        std::vector<LevelChange> changes;
#pragma omp for schedule(dynamic, 8)
        for (long long si = 0; si < static_cast<long long>(n_); ++si) {
            const node s = static_cast<node>(si);
            std::uint16_t* row = lvl_.data() + static_cast<size_t>(si) * n_;
            changes.clear();
            repairer.repair(v, s, row, batch, changes);
            double sd = sumDist_[s], sInv = sumInv_[s];
            count r = reached_[s];
            for (const LevelChange& c : changes) {
                if (c.oldLevel != kUnreachedLevel) {
                    sd -= static_cast<double>(c.oldLevel);
                    sInv -= 1.0 / static_cast<double>(c.oldLevel);
                    --r;
                }
                if (c.newLevel != kUnreachedLevel) {
                    sd += static_cast<double>(c.newLevel);
                    sInv += 1.0 / static_cast<double>(c.newLevel);
                    ++r;
                }
            }
            sumDist_[s] = sd;
            sumInv_[s] = sInv;
            reached_[s] = r;
            totalChanged += changes.size();
        }
    }
    lastChanged_ = totalChanged;
}

std::vector<double> DynCloseness::scores(bool harmonic, bool normalized) const {
    // Mirror ClosenessCentrality::runImpl exactly so the dynamic tier is
    // indistinguishable from the kernel (Standard: bit-equal).
    std::vector<double> out(n_, 0.0);
    for (node u = 0; u < n_; ++u) {
        if (harmonic) {
            const double sum = sumInv_[u];
            out[u] = normalized && n_ > 1 ? sum / static_cast<double>(n_ - 1) : sum;
        } else {
            const double sum = sumDist_[u];
            const count reached = reached_[u] + 1;
            if (reached <= 1 || sum == 0.0) {
                out[u] = 0.0;
            } else {
                const double r = static_cast<double>(reached);
                double c = (r - 1.0) / sum;
                if (normalized && n_ > 1) c *= (r - 1.0) / static_cast<double>(n_ - 1);
                out[u] = c;
            }
        }
    }
    return out;
}

void DynCloseness::reset() {
    primed_ = false;
    lvl_.clear();
    lvl_.shrink_to_fit();
    sumDist_.clear();
    sumInv_.clear();
    reached_.clear();
    n_ = 0;
    version_ = 0;
}

} // namespace rinkit::dyn
