#include "src/dyn/dyn_kadabra.hpp"

#include <algorithm>
#include <cmath>
#include <omp.h>
#include <stdexcept>

#include "src/components/csr_bfs.hpp"
#include "src/support/random.hpp"

namespace rinkit::dyn {

namespace {

constexpr std::uint64_t kGold = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kEpochMix = 0xD6E8FEB86659FD93ULL;
constexpr std::uint64_t kPathMix = 0x94D049BB133111EBULL;

/// A-priori Riondato-Kornaropoulos sample size — same formula as the
/// static KadabraBetweenness hard cap.
count rkSampleSize(double eps, double delta, count vertexDiameter) {
    const double vd = static_cast<double>(std::max<count>(vertexDiameter, 3));
    return static_cast<count>(
        std::ceil((0.5 / (eps * eps)) *
                  (std::floor(std::log2(vd - 2.0)) + 1.0 + std::log(1.0 / delta))));
}

std::uint16_t rowEccentricity(const std::uint16_t* row, count n) {
    std::uint16_t ecc = 0;
    for (count u = 0; u < n; ++u) {
        if (row[u] != kUnreachedLevel) ecc = std::max(ecc, row[u]);
    }
    return ecc;
}

} // namespace

void DynKadabra::drawPair(count i, node& s, node& t) const {
    // Keyed by the global sample index: pair i is the same regardless of
    // thread count, and extending the set (topUp) continues the sequence.
    Rng rng(seed_ + kGold * (static_cast<std::uint64_t>(i) + 1));
    s = static_cast<node>(rng.pick(n_));
    t = s;
    while (t == s) t = static_cast<node>(rng.pick(n_));
}

void DynKadabra::samplePath(const CsrView& v, Sample& smp, std::uint64_t salt,
                            GeoScratch& w, double* cnt) const {
    smp.interior.clear();
    const std::uint16_t* rs = row(smp.s);
    const std::uint16_t* rt = row(smp.t);
    const std::uint32_t dist = rs[smp.t];
    if (dist == kUnreachedLevel || dist < 2) return; // no interior vertices

    // Geodesic region off the oracle: x is on some shortest s-t path iff
    // d(s,x) + d(x,t) = d(s,t). One scan over the two rows.
    w.ensure(n_);
    if (++w.epoch == 0) {
        std::fill(w.stamp.begin(), w.stamp.end(), 0u);
        w.epoch = 1;
    }
    if (w.buckets.size() <= dist) w.buckets.resize(dist + 1);
    for (std::uint32_t d = 0; d <= dist; ++d) w.buckets[d].clear();
    for (node u = 0; u < n_; ++u) {
        const std::uint32_t du = rs[u], dt = rt[u];
        if (du == kUnreachedLevel || dt == kUnreachedLevel || du + dt != dist)
            continue;
        w.stamp[u] = w.epoch;
        w.sigma[u] = 0.0;
        w.buckets[du].push_back(u);
    }

    // Path counts restricted to the region, ascending d(s, .): the region
    // is closed under shortest-path predecessors, so these are the true
    // sigma_s values for every vertex on an s-t geodesic.
    w.sigma[smp.s] = 1.0;
    for (std::uint32_t d = 1; d <= dist; ++d) {
        for (node x : w.buckets[d]) {
            double sig = 0.0;
            v.forNeighborsOf(x, [&](node y) {
                if (w.stamp[y] == w.epoch && rs[y] + 1u == d) sig += w.sigma[y];
            });
            w.sigma[x] = sig;
        }
    }

    // Backward walk from t picking predecessors proportionally to their
    // path counts: a uniform shortest s-t path.
    Rng rng(salt);
    node x = smp.t;
    while (x != smp.s) {
        const std::uint32_t d = rs[x];
        double pick = rng.real01() * w.sigma[x];
        node chosen = none;
        v.forNeighborsOf(x, [&](node y) {
            if (pick <= 0.0 || w.stamp[y] != w.epoch || rs[y] + 1u != d) return;
            chosen = y;
            pick -= w.sigma[y];
        });
        if (chosen == none) break; // defensive; sigma > 0 on the region
        x = chosen;
        if (x == smp.s) break;
        smp.interior.push_back(x);
        if (cnt) cnt[x] += 1.0;
    }
}

void DynKadabra::refreshBound() {
    const count t = samples_.size();
    if (t == 0) {
        achievedEps_ = 0.0;
        return;
    }
    const double vd = static_cast<double>(std::max<count>(vertexDiameter_, 3));
    const double term =
        std::floor(std::log2(vd - 2.0)) + 1.0 + std::log(1.0 / delta_);
    achievedEps_ = std::sqrt(term / (2.0 * static_cast<double>(t)));
}

count DynKadabra::requiredSamples() const {
    return rkSampleSize(eps_, delta_, vertexDiameter_);
}

void DynKadabra::topUp(const CsrView& v, GeoScratch& w) {
    const count target = requiredSamples();
    while (samples_.size() < target) {
        const count i = samples_.size();
        Sample smp;
        drawPair(i, smp.s, smp.t);
        samplePath(v, smp,
                   (seed_ + kGold * (static_cast<std::uint64_t>(i) + 1)) ^ kPathMix,
                   w, cnt_.data());
        samples_.push_back(std::move(smp));
    }
}

void DynKadabra::init(const CsrView& v, double epsilon, double delta,
                      std::uint64_t seed) {
    if (epsilon <= 0.0 || epsilon >= 1.0)
        throw std::invalid_argument("DynKadabra: epsilon out of (0,1)");
    if (delta <= 0.0 || delta >= 1.0)
        throw std::invalid_argument("DynKadabra: delta out of (0,1)");
    n_ = v.numberOfNodes();
    version_ = v.version();
    eps_ = epsilon;
    delta_ = delta;
    seed_ = seed;
    epoch_ = 0;
    lastResampled_ = 0;
    vertexDiameter_ = 3;
    lvl_.assign(static_cast<size_t>(n_) * n_, kUnreachedLevel);
    ecc_.assign(n_, 0);
    cnt_.assign(n_, 0.0);
    samples_.clear();
    achievedEps_ = 0.0;
    primed_ = true;
    if (n_ < 3) return;

    const count n = n_;
#pragma omp parallel
    {
        CsrBfs bfs(v);
#pragma omp for schedule(dynamic, 16)
        for (long long si = 0; si < static_cast<long long>(n); ++si) {
            const node s = static_cast<node>(si);
            bfs.run(s);
            std::uint16_t* r = lvl_.data() + static_cast<size_t>(si) * n;
            std::uint16_t ecc = 0;
            for (node u = 0; u < n; ++u) {
                const std::uint32_t d = bfs.levelOf(u);
                if (d == CsrBfs::unreachedLevel) continue;
                r[u] = static_cast<std::uint16_t>(d);
                ecc = std::max(ecc, r[u]);
            }
            ecc_[si] = ecc;
        }
    }
    std::uint16_t maxEcc = 0;
    for (node s = 0; s < n; ++s) maxEcc = std::max(maxEcc, ecc_[s]);
    vertexDiameter_ = std::max<count>(static_cast<count>(maxEcc) + 1, 3);

    const count target = requiredSamples();
    samples_.resize(target);
    double* cnt = cnt_.data();
#pragma omp parallel
    {
        GeoScratch w;
#pragma omp for schedule(dynamic, 16) reduction(+ : cnt[:n])
        for (long long i = 0; i < static_cast<long long>(target); ++i) {
            Sample& smp = samples_[static_cast<size_t>(i)];
            drawPair(static_cast<count>(i), smp.s, smp.t);
            samplePath(
                v, smp,
                (seed_ + kGold * (static_cast<std::uint64_t>(i) + 1)) ^ kPathMix, w,
                cnt);
        }
    }
    refreshBound();
}

void DynKadabra::update(const CsrView& v, const EdgeBatch& batch) {
    lastResampled_ = 0;
    version_ = v.version();
    if (n_ < 3 || batch.size() == 0) return;
    const count n = n_;
    const count S = samples_.size();

    // ---- Pre-repair pass (old rows): record old pair distances, and flag
    // samples whose removed batch edge sat on an old s-t geodesic.
    std::vector<std::uint16_t> oldDist(S);
    std::vector<std::uint8_t> flag(S, 0);
    const auto onGeodesicEdge = [this](node s, node t, std::uint32_t dist, node a,
                                       node b) {
        // Does edge (a, b), in either orientation, carry a shortest s-t
        // path? All lookups against the *current* matrix rows.
        const std::uint32_t sa = row(s)[a], sb = row(s)[b];
        const std::uint32_t ta = row(t)[a], tb = row(t)[b];
        if (sa != kUnreachedLevel && tb != kUnreachedLevel && sa + 1 + tb == dist)
            return true;
        return sb != kUnreachedLevel && ta != kUnreachedLevel && sb + 1 + ta == dist;
    };
    for (count i = 0; i < S; ++i) {
        const Sample& smp = samples_[i];
        const std::uint16_t od = row(smp.s)[smp.t];
        oldDist[i] = od;
        if (!batch.removed || od == kUnreachedLevel) continue;
        for (const auto& [a, b] : *batch.removed) {
            if (onGeodesicEdge(smp.s, smp.t, od, a, b)) {
                flag[i] = 1;
                break;
            }
        }
    }

    // ---- Repair every level row; rows with changes refresh their stored
    // eccentricity so the vertex-diameter estimate (and with it the sample
    // size the a-priori bound needs) tracks the graph.
    std::vector<std::vector<LevelChange>> changes(n);
#pragma omp parallel
    {
        LevelRepairer repairer;
#pragma omp for schedule(dynamic, 8)
        for (long long si = 0; si < static_cast<long long>(n); ++si) {
            std::uint16_t* r = lvl_.data() + static_cast<size_t>(si) * n;
            repairer.repair(v, static_cast<node>(si), r, batch,
                            changes[static_cast<size_t>(si)]);
            if (!changes[static_cast<size_t>(si)].empty())
                ecc_[static_cast<size_t>(si)] = rowEccentricity(r, n);
        }
    }
    std::uint16_t maxEcc = 0;
    for (node s = 0; s < n; ++s) maxEcc = std::max(maxEcc, ecc_[s]);
    vertexDiameter_ = std::max<count>(static_cast<count>(maxEcc) + 1, 3);

    // ---- Post-repair pass (new rows): a sample needs redrawing iff its
    // s-t shortest-path DAG moved — pair distance changed, an added edge
    // carries a new geodesic, or a level-changed vertex lies on an old or
    // new geodesic. All O(1) tests against the oracle.
    const auto oldLevelIn = [](const std::vector<LevelChange>& ch, node x,
                               std::uint16_t cur) {
        for (const LevelChange& c : ch) {
            if (c.v == x) return c.oldLevel;
        }
        return cur;
    };
    for (count i = 0; i < S; ++i) {
        if (flag[i]) continue;
        const Sample& smp = samples_[i];
        const std::uint32_t od = oldDist[i];
        const std::uint32_t nd = row(smp.s)[smp.t];
        if (nd != od) {
            flag[i] = 1;
            continue;
        }
        if (nd == kUnreachedLevel) continue; // still disconnected: no paths
        if (batch.added) {
            for (const auto& [a, b] : *batch.added) {
                if (onGeodesicEdge(smp.s, smp.t, nd, a, b)) {
                    flag[i] = 1;
                    break;
                }
            }
            if (flag[i]) continue;
        }
        const auto touchesPair = [&](const std::vector<LevelChange>& own,
                                     const std::vector<LevelChange>& other,
                                     node otherSrc) {
            for (const LevelChange& c : own) {
                const std::uint32_t oOwn = c.oldLevel, nOwn = c.newLevel;
                const std::uint32_t nOth = row(otherSrc)[c.v];
                const std::uint32_t oOth = oldLevelIn(other, c.v, row(otherSrc)[c.v]);
                if (oOwn != kUnreachedLevel && oOth != kUnreachedLevel &&
                    oOwn + oOth == od)
                    return true;
                if (nOwn != kUnreachedLevel && nOth != kUnreachedLevel &&
                    nOwn + nOth == nd)
                    return true;
            }
            return false;
        };
        if (touchesPair(changes[smp.s], changes[smp.t], smp.t) ||
            touchesPair(changes[smp.t], changes[smp.s], smp.s))
            flag[i] = 1;
    }

    // ---- Redraw only the flagged samples, straight off the repaired
    // rows: retract the old path's contributions, draw a fresh uniform
    // path with fresh (epoch-salted, index-keyed) randomness.
    double* cnt = cnt_.data();
    count resampled = 0;
#pragma omp parallel
    {
        GeoScratch w;
#pragma omp for schedule(dynamic, 16) reduction(+ : cnt[:n]) reduction(+ : resampled)
        for (long long i = 0; i < static_cast<long long>(S); ++i) {
            if (!flag[static_cast<size_t>(i)]) continue;
            Sample& smp = samples_[static_cast<size_t>(i)];
            for (node u : smp.interior) cnt[u] -= 1.0;
            samplePath(v, smp,
                       (seed_ + kGold * (static_cast<std::uint64_t>(i) + 1)) ^
                           (kEpochMix * (static_cast<std::uint64_t>(epoch_) + 1)),
                       w, cnt);
            ++resampled;
        }
    }
    lastResampled_ = resampled;
    ++epoch_;

    // Diameter growth can raise the required sample size; extend the set
    // (continuing the deterministic pair sequence) so the stated bound
    // never silently loosens past epsilon.
    GeoScratch w;
    topUp(v, w);
    refreshBound();
}

std::vector<double> DynKadabra::scores() const {
    std::vector<double> out(n_, 0.0);
    const count t = samples_.size();
    if (t == 0) return out;
    const double inv = 1.0 / static_cast<double>(t);
    for (node u = 0; u < n_; ++u) out[u] = cnt_[u] * inv;
    return out;
}

void DynKadabra::reset() {
    primed_ = false;
    n_ = 0;
    version_ = 0;
    epoch_ = 0;
    lastResampled_ = 0;
    achievedEps_ = 0.0;
    lvl_.clear();
    lvl_.shrink_to_fit();
    ecc_.clear();
    samples_.clear();
    samples_.shrink_to_fit();
    cnt_.clear();
}

} // namespace rinkit::dyn
