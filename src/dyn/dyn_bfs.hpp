#pragma once

#include <cstdint>
#include <vector>

#include "src/dyn/edge_batch.hpp"
#include "src/graph/csr_view.hpp"

namespace rinkit::dyn {

/// Unreached marker of the packed per-source level rows. uint16 bounds the
/// dynamic state to graphs of < 65535 nodes — far above the engine's
/// dynStateMaxNodes cap, which exists for memory, not representability.
inline constexpr std::uint16_t kUnreachedLevel = 0xFFFF;

/// One distance change produced by a repair: vertex, its BFS level before
/// and after the batch (kUnreachedLevel = unreachable).
struct LevelChange {
    node v;
    std::uint16_t oldLevel;
    std::uint16_t newLevel;
};

/// Batch-dynamic single-source BFS repair (Frigioni / Ramalingam-Reps
/// style, specialised to unit weights and undirected batches).
///
/// Given a source's level row that is correct for the *pre-batch* graph
/// and the post-batch CSR snapshot, repair() updates the row in place and
/// reports every vertex whose level changed:
///
///  1. Deletion phase — candidates seeded by removed tree-relevant edges
///     (old levels differing by one) are processed in increasing old-level
///     order; a candidate without a non-affected neighbor one level up
///     (scanned in the *new* adjacency) is affected, and the cascade
///     continues one level down. Only vertices whose distance can actually
///     grow are ever visited.
///  2. Re-settle phase — affected vertices drop to "unreached" and re-enter
///     through a monotone bucket queue seeded with their best non-affected
///     support and with the insertion relaxations; unit weights make this
///     a BFS-cost Dijkstra over the touched region only.
///
/// The scratch arrays are epoch-stamped and sized once, so a repairer
/// instance amortises to O(touched) per call — one instance per OpenMP
/// thread, shared across that thread's sources.
class LevelRepairer {
public:
    /// Repairs @p lvl (row of v.numberOfNodes() levels for source @p s)
    /// against @p v and appends all changes to @p out. Returns the number
    /// of changed vertices.
    count repair(const CsrView& v, node s, std::uint16_t* lvl, const EdgeBatch& batch,
                 std::vector<LevelChange>& out);

private:
    void ensure(count n);
    void recordOrig(node x, std::uint16_t level);
    void pushCandidate(node x, std::uint32_t level);
    void pushSettle(node x, std::uint32_t dist);

    std::uint32_t epoch_ = 0;
    std::vector<std::uint32_t> affectedStamp_; ///< x is in the affected set A
    std::vector<std::uint32_t> checkedStamp_;  ///< support check done this epoch
    std::vector<std::uint32_t> origStamp_;     ///< original level recorded
    std::vector<std::uint16_t> orig_;          ///< level before the batch
    std::vector<node> touched_;                ///< nodes with orig_ recorded
    std::vector<node> affected_;
    std::vector<std::vector<node>> candBuckets_, settleBuckets_;
    std::uint32_t candMax_ = 0, settleMax_ = 0;
};

} // namespace rinkit::dyn
