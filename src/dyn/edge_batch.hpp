#pragma once

#include <utility>
#include <vector>

#include "src/support/types.hpp"

namespace rinkit::dyn {

/// One batch of edge changes between two graph versions — exactly the
/// shape DynamicRin::lastAdded()/lastRemoved() produce: unique undirected
/// edges (u < v), lexicographically sorted, additions disjoint from
/// removals. The dynamic kernels consume the batch against the *new* CSR
/// snapshot: removed edges are absent from it, added edges present.
struct EdgeBatch {
    const std::vector<std::pair<node, node>>* added = nullptr;
    const std::vector<std::pair<node, node>>* removed = nullptr;

    count addedCount() const { return added ? added->size() : 0; }
    count removedCount() const { return removed ? removed->size() : 0; }
    count size() const { return addedCount() + removedCount(); }
};

/// Composes two consecutive diffs (V0 -> V1 -> V2) into one (V0 -> V2),
/// cancelling edges that were added then removed (or vice versa). The
/// measure engine uses this when slider events arrive faster than measure
/// reads, so a dynamic kernel can catch up across several skipped versions
/// with a single repair.
void composeDiff(std::vector<std::pair<node, node>>& added,
                 std::vector<std::pair<node, node>>& removed,
                 const std::vector<std::pair<node, node>>& nextAdded,
                 const std::vector<std::pair<node, node>>& nextRemoved);

} // namespace rinkit::dyn
