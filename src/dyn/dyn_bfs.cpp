#include "src/dyn/dyn_bfs.hpp"

#include <algorithm>

namespace rinkit::dyn {

void LevelRepairer::ensure(count n) {
    if (affectedStamp_.size() < n) {
        affectedStamp_.assign(n, 0);
        checkedStamp_.assign(n, 0);
        origStamp_.assign(n, 0);
        orig_.assign(n, kUnreachedLevel);
        epoch_ = 0;
    }
    ++epoch_;
    if (epoch_ == 0) { // stamp wrap: reset and restart
        std::fill(affectedStamp_.begin(), affectedStamp_.end(), 0u);
        std::fill(checkedStamp_.begin(), checkedStamp_.end(), 0u);
        std::fill(origStamp_.begin(), origStamp_.end(), 0u);
        epoch_ = 1;
    }
}

void LevelRepairer::recordOrig(node x, std::uint16_t level) {
    if (origStamp_[x] == epoch_) return;
    origStamp_[x] = epoch_;
    orig_[x] = level;
    touched_.push_back(x);
}

void LevelRepairer::pushCandidate(node x, std::uint32_t level) {
    if (candBuckets_.size() <= level) candBuckets_.resize(level + 1);
    candBuckets_[level].push_back(x);
    candMax_ = std::max(candMax_, level);
}

void LevelRepairer::pushSettle(node x, std::uint32_t dist) {
    if (settleBuckets_.size() <= dist) settleBuckets_.resize(dist + 1);
    settleBuckets_[dist].push_back(x);
    settleMax_ = std::max(settleMax_, dist);
}

count LevelRepairer::repair(const CsrView& v, node s, std::uint16_t* lvl,
                            const EdgeBatch& batch, std::vector<LevelChange>& out) {
    const count n = v.numberOfNodes();
    ensure(n);
    affected_.clear();
    touched_.clear();
    candMax_ = settleMax_ = 0;

    // ---- Phase 1: deletion-affected detection on the old levels. A
    // removed edge is tree-relevant iff its endpoints' old levels differ
    // by one; the deeper endpoint may have lost its last support.
    if (batch.removed) {
        for (const auto& [u, w] : *batch.removed) {
            const std::uint32_t lu = lvl[u], lw = lvl[w];
            if (lu == kUnreachedLevel && lw == kUnreachedLevel) continue;
            if (lu + 1 == lw) pushCandidate(w, lw);
            else if (lw + 1 == lu) pushCandidate(u, lu);
        }
    }
    for (std::uint32_t d = 1; d <= candMax_; ++d) {
        if (d >= candBuckets_.size()) break;
        // Re-index candBuckets_[d] on every access: the cascade pushes into
        // deeper buckets, and pushCandidate may resize the outer vector —
        // a cached reference to this bucket would dangle.
        for (size_t i = 0; i < candBuckets_[d].size(); ++i) {
            const node x = candBuckets_[d][i];
            if (checkedStamp_[x] == epoch_) continue;
            checkedStamp_[x] = epoch_;
            if (lvl[x] != d) continue; // duplicate seed at a stale level
            bool supported = false;
            v.forNeighborsOf(x, [&](node y) {
                if (!supported && lvl[y] + 1u == d && affectedStamp_[y] != epoch_)
                    supported = true;
            });
            if (supported) continue;
            affectedStamp_[x] = epoch_;
            affected_.push_back(x);
            v.forNeighborsOf(x, [&](node z) {
                if (lvl[z] == d + 1) pushCandidate(z, d + 1);
            });
        }
        candBuckets_[d].clear();
    }
    // Clear any buckets past candMax_ left over from cascade pushes.
    for (std::uint32_t d = 0; d < candBuckets_.size(); ++d) candBuckets_[d].clear();

    // ---- Phase 2: re-settle. Affected vertices drop to unreached, then
    // re-enter via their best non-affected support; insertions relax both
    // endpoints. Unit weights keep the bucket queue monotone.
    for (node x : affected_) {
        recordOrig(x, lvl[x]);
        lvl[x] = kUnreachedLevel;
    }
    for (node x : affected_) {
        std::uint32_t best = kUnreachedLevel;
        v.forNeighborsOf(x, [&](node y) {
            if (lvl[y] != kUnreachedLevel && lvl[y] + 1u < best) best = lvl[y] + 1u;
        });
        if (best < kUnreachedLevel) pushSettle(x, best);
    }
    if (batch.added) {
        for (const auto& [u, w] : *batch.added) {
            const std::uint32_t lu = lvl[u], lw = lvl[w];
            if (lu != kUnreachedLevel && lu + 1 < lw) pushSettle(w, lu + 1);
            if (lw != kUnreachedLevel && lw + 1 < lu) pushSettle(u, lw + 1);
        }
    }
    for (std::uint32_t d = 1; d <= settleMax_; ++d) {
        if (d >= settleBuckets_.size()) break;
        // Same re-indexing discipline as the candidate cascade: pushSettle
        // can reallocate settleBuckets_ mid-iteration.
        for (size_t i = 0; i < settleBuckets_[d].size(); ++i) {
            const node x = settleBuckets_[d][i];
            if (d >= lvl[x] || x == s) continue; // already settled at <= d
            recordOrig(x, lvl[x]);
            lvl[x] = static_cast<std::uint16_t>(d);
            v.forNeighborsOf(x, [&](node y) {
                if (d + 1 < lvl[y]) pushSettle(y, d + 1);
            });
        }
        settleBuckets_[d].clear();
    }
    for (std::uint32_t d = 0; d < settleBuckets_.size(); ++d) settleBuckets_[d].clear();

    // ---- Emit net changes (an affected vertex can settle back to its old
    // level through a different support — that is not a change).
    count changed = 0;
    for (node x : touched_) {
        if (lvl[x] != orig_[x]) {
            out.push_back({x, orig_[x], lvl[x]});
            ++changed;
        }
    }
    return changed;
}

} // namespace rinkit::dyn
