#include "src/dyn/edge_batch.hpp"

#include <algorithm>
#include <map>

namespace rinkit::dyn {

void composeDiff(std::vector<std::pair<node, node>>& added,
                 std::vector<std::pair<node, node>>& removed,
                 const std::vector<std::pair<node, node>>& nextAdded,
                 const std::vector<std::pair<node, node>>& nextRemoved) {
    // Net effect per edge: +1 (present after, absent before), -1 (the
    // reverse), 0 (cancelled). Diffs are a few percent of m, so a sorted
    // map is plenty fast and keeps the output deterministic.
    std::map<std::pair<node, node>, int> net;
    for (const auto& e : added) net[e] += 1;
    for (const auto& e : removed) net[e] -= 1;
    for (const auto& e : nextAdded) net[e] += 1;
    for (const auto& e : nextRemoved) net[e] -= 1;
    added.clear();
    removed.clear();
    for (const auto& [e, v] : net) {
        if (v > 0) added.push_back(e);
        else if (v < 0) removed.push_back(e);
    }
}

} // namespace rinkit::dyn
