#include "src/dyn/dyn_betweenness.hpp"

#include <algorithm>
#include <omp.h>

#include "src/components/csr_bfs.hpp"

namespace rinkit::dyn {

namespace {

/// Per-thread repair scratch: one bucket queue reused by the sigma
/// (ascending) and dependency (descending) phases, epoch-stamped seed/done
/// marks, and the changed-sigma worklist.
struct RepairScratch {
    LevelRepairer repairer;
    std::vector<LevelChange> changes;
    std::vector<std::vector<node>> buckets;
    std::vector<std::uint32_t> seedStamp, doneStamp;
    std::uint32_t epoch = 0;
    std::uint32_t maxLevel = 0;
    std::vector<node> sigChanged;
    std::vector<node> infSeeds;

    void ensure(count n) {
        if (seedStamp.size() < n) {
            seedStamp.assign(n, 0);
            doneStamp.assign(n, 0);
            epoch = 0;
        }
    }

    void nextPhase() {
        ++epoch;
        if (epoch == 0) {
            std::fill(seedStamp.begin(), seedStamp.end(), 0u);
            std::fill(doneStamp.begin(), doneStamp.end(), 0u);
            epoch = 1;
        }
        maxLevel = 0;
    }

    void seed(node x, std::uint32_t level) {
        if (seedStamp[x] == epoch) return;
        seedStamp[x] = epoch;
        if (level == kUnreachedLevel) {
            infSeeds.push_back(x);
            return;
        }
        if (buckets.size() <= level) buckets.resize(level + 1);
        buckets[level].push_back(x);
        maxLevel = std::max(maxLevel, level);
    }

    void clearBuckets() {
        for (auto& b : buckets) b.clear();
        infSeeds.clear();
    }
};

/// Returned by repairSource when the cascade blows its budget: the caller
/// re-runs the source from scratch instead (see rebuildSource).
constexpr count kRepairAborted = ~count{0};

/// From-scratch rebuild of one source row (BFS + pull-style dependencies,
/// the exact summation init uses). bc receives new-minus-stored deltas, so
/// it composes with any partial repair the caller may have applied before
/// giving up — partial increments moved bc by (current - original), this
/// pass adds (new - current).
count rebuildSource(const CsrView& v, node s, CsrBfs& bfs, std::uint16_t* lv, double* sg,
                    double* dp, double* bc) {
    const count n = v.numberOfNodes();
    bfs.run(s);
    for (node u = 0; u < n; ++u) {
        const std::uint32_t d = bfs.levelOf(u);
        if (d != CsrBfs::unreachedLevel) {
            lv[u] = static_cast<std::uint16_t>(d);
            sg[u] = bfs.sigma()[u];
        } else {
            lv[u] = kUnreachedLevel;
            sg[u] = 0.0;
            if (dp[u] != 0.0) {
                bc[u] -= dp[u];
                dp[u] = 0.0;
            }
        }
    }
    const auto& order = bfs.order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const node u = *it;
        if (u == s) continue;
        const std::uint32_t du = lv[u];
        double d = 0.0;
        v.forNeighborsOf(u, [&](node y) {
            if (lv[y] == du + 1 && sg[y] > 0.0) d += sg[u] / sg[y] * (1.0 + dp[y]);
        });
        if (d != dp[u]) {
            bc[u] += d - dp[u];
            dp[u] = d;
        }
    }
    return n;
}

/// Sigma + dependency repair of one source after its level row was fixed.
/// @p bc receives the betweenness delta of this source; returns vertices
/// re-processed, or kRepairAborted once more than @p budget vertices were
/// touched — past that point a from-scratch single-source rebuild is
/// cheaper than continuing the cascade (bucket queues and support scans
/// cost several times Brandes' straight-line passes per vertex).
count repairSource(const CsrView& v, node s, std::uint16_t* lv, double* sg, double* dp,
                   const EdgeBatch& batch, RepairScratch& w, double* bc, count budget) {
    // Quick reject: untouched source. With no level changes, a batch edge
    // matters only if it creates/destroys a DAG arc, i.e. its (unchanged)
    // endpoint levels differ by exactly one.
    bool relevant = !w.changes.empty();
    const auto dagRelevant = [&](const std::vector<std::pair<node, node>>* edges) {
        if (!edges) return false;
        for (const auto& [a, b] : *edges) {
            const std::uint32_t la = lv[a], lb = lv[b];
            if (la == kUnreachedLevel || lb == kUnreachedLevel) continue;
            if (la + 1 == lb || lb + 1 == la) return true;
        }
        return false;
    };
    if (!relevant) relevant = dagRelevant(batch.added) || dagRelevant(batch.removed);
    if (!relevant) return 0;

    count processed = 0;

    // ---- Phase B: sigma repair, ascending new-level order. Seeds: level-
    // changed vertices (their parent sets changed), their neighbors (their
    // parent sets contain a changed vertex), and the deeper endpoint of
    // every DAG-relevant batch edge (its parent set gained/lost an arc).
    w.nextPhase();
    w.clearBuckets();
    for (const LevelChange& c : w.changes) {
        w.seed(c.v, lv[c.v]);
        v.forNeighborsOf(c.v, [&](node y) { w.seed(y, lv[y]); });
    }
    const auto seedDeeper = [&](const std::vector<std::pair<node, node>>* edges) {
        if (!edges) return;
        for (const auto& [a, b] : *edges) {
            const std::uint32_t la = lv[a], lb = lv[b];
            if (la == kUnreachedLevel || lb == kUnreachedLevel) continue;
            if (la + 1 == lb) w.seed(b, lb);
            else if (lb + 1 == la) w.seed(a, la);
        }
    };
    seedDeeper(batch.added);
    // A removed edge's DAG arc lived in the *old* level row: when an
    // endpoint's own level moved in the same batch, the current levels may
    // no longer differ by one even though the other endpoint just lost a
    // parent — and the removed edge is absent from the new adjacency, so
    // neighbor-of-changed seeding misses it too. Seeding both endpoints
    // unconditionally is O(batch); the exact sigma compare stops the
    // cascade immediately when nothing actually changed.
    if (batch.removed) {
        for (const auto& [a, b] : *batch.removed) {
            w.seed(a, lv[a]);
            w.seed(b, lv[b]);
        }
    }

    w.sigChanged.clear();
    for (node x : w.infSeeds) { // newly unreachable: path count drops to zero
        if (sg[x] != 0.0) {
            sg[x] = 0.0;
            w.sigChanged.push_back(x);
        }
    }
    for (std::uint32_t d = 1; d <= w.maxLevel && d < w.buckets.size(); ++d) {
        // Re-index w.buckets[d] on every access: the cascade seeds level
        // d+1, and seed() may resize the outer bucket vector — a cached
        // reference to this bucket would dangle.
        for (size_t i = 0; i < w.buckets[d].size(); ++i) {
            const node x = w.buckets[d][i];
            if (x == s || w.doneStamp[x] == w.epoch || lv[x] != d) continue;
            w.doneStamp[x] = w.epoch;
            if (++processed > budget) return kRepairAborted;
            double ns = 0.0;
            v.forNeighborsOf(x, [&](node y) {
                if (lv[y] + 1u == d) ns += sg[y];
            });
            if (ns != sg[x]) { // integer path counts: exact compare is exact
                sg[x] = ns;
                w.sigChanged.push_back(x);
                v.forNeighborsOf(x, [&](node y) {
                    if (lv[y] == d + 1) w.seed(y, d + 1);
                });
            }
        }
        w.buckets[d].clear();
    }

    // ---- Phase C: dependency repair, descending new-level order. Seeds:
    // every vertex whose level or sigma moved, their neighbors (child sums
    // reference them), and the batch endpoints (their child set changed by
    // the arc itself, possibly without any level/sigma movement nearby).
    w.nextPhase();
    w.clearBuckets();
    for (node x : w.sigChanged) {
        w.seed(x, lv[x]);
        v.forNeighborsOf(x, [&](node y) { w.seed(y, lv[y]); });
    }
    for (const LevelChange& c : w.changes) {
        w.seed(c.v, lv[c.v]);
        v.forNeighborsOf(c.v, [&](node y) { w.seed(y, lv[y]); });
    }
    const auto seedEndpoints = [&](const std::vector<std::pair<node, node>>* edges) {
        if (!edges) return;
        for (const auto& [a, b] : *edges) {
            w.seed(a, lv[a]);
            w.seed(b, lv[b]);
        }
    };
    seedEndpoints(batch.added);
    seedEndpoints(batch.removed);

    for (node x : w.infSeeds) { // unreachable: dependency is zero
        if (dp[x] != 0.0) {
            bc[x] += -dp[x];
            dp[x] = 0.0;
        }
    }
    for (std::uint32_t d = std::min<std::uint32_t>(w.maxLevel, w.buckets.size() - 1);
         d >= 1; --d) {
        // This descending pass only seeds shallower levels, so seed()
        // cannot grow w.buckets here — but keep the same re-indexing
        // discipline as the ascending cascade rather than proving it safe.
        for (size_t i = 0; i < w.buckets[d].size(); ++i) {
            const node x = w.buckets[d][i];
            if (x == s || w.doneStamp[x] == w.epoch || lv[x] != d) continue;
            w.doneStamp[x] = w.epoch;
            if (++processed > budget) return kRepairAborted;
            double nd = 0.0;
            if (sg[x] > 0.0) {
                v.forNeighborsOf(x, [&](node y) {
                    if (lv[y] == d + 1 && sg[y] > 0.0)
                        nd += sg[x] / sg[y] * (1.0 + dp[y]);
                });
            }
            if (nd != dp[x]) {
                bc[x] += nd - dp[x];
                dp[x] = nd;
                v.forNeighborsOf(x, [&](node y) {
                    if (y != s && lv[y] + 1u == d) w.seed(y, lv[y]);
                });
            }
        }
        w.buckets[d].clear();
    }
    return processed;
}

} // namespace

void DynBetweenness::init(const CsrView& v) {
    n_ = v.numberOfNodes();
    version_ = v.version();
    const size_t nn = static_cast<size_t>(n_) * n_;
    lvl_.assign(nn, kUnreachedLevel);
    sig_.assign(nn, 0.0);
    dep_.assign(nn, 0.0);
    bcRaw_.assign(n_, 0.0);
    lastTouched_ = 0;
    primed_ = true;
    if (n_ == 0) return;

    const count n = n_;
    double* bc = bcRaw_.data();
#pragma omp parallel
    {
        CsrBfs bfs(v);
#pragma omp for schedule(dynamic, 8) reduction(+ : bc[:n])
        for (long long si = 0; si < static_cast<long long>(n); ++si) {
            const node s = static_cast<node>(si);
            std::uint16_t* lv = lvl_.data() + static_cast<size_t>(si) * n;
            double* sg = sig_.data() + static_cast<size_t>(si) * n;
            double* dp = dep_.data() + static_cast<size_t>(si) * n;
            bfs.run(s);
            for (node u = 0; u < n; ++u) {
                const std::uint32_t d = bfs.levelOf(u);
                if (d != CsrBfs::unreachedLevel) {
                    lv[u] = static_cast<std::uint16_t>(d);
                    sg[u] = bfs.sigma()[u];
                }
            }
            // Pull-style dependencies in reverse level order — the exact
            // summation the repair's recompute uses, so an unchanged vertex
            // reproduces its stored value bit-identically and repair
            // cascades stop where the graph stopped changing.
            const auto& order = bfs.order();
            for (auto it = order.rbegin(); it != order.rend(); ++it) {
                const node u = *it;
                if (u == s) continue;
                const std::uint32_t du = lv[u];
                double d = 0.0;
                v.forNeighborsOf(u, [&](node y) {
                    if (lv[y] == du + 1 && sg[y] > 0.0) d += sg[u] / sg[y] * (1.0 + dp[y]);
                });
                dp[u] = d;
                bc[u] += d;
            }
        }
    }
}

void DynBetweenness::update(const CsrView& v, const EdgeBatch& batch) {
    version_ = v.version();
    lastTouched_ = 0;
    if (n_ == 0 || batch.size() == 0) return;

    const count n = n_;
    double* bc = bcRaw_.data();
    count touched = 0;
    // Worst-case guard, not a fast path: repair processes at most ~2n
    // vertices (each phase dedups), at roughly 2.5x the per-vertex cost of
    // the straight-line row rebuild — so only a near-total cascade is worth
    // aborting for. On small-diameter RINs sigma cascades are global (a
    // single contact flip moves path counts for most source rows), which is
    // why the engine's cost model, not this budget, is what keeps exact
    // betweenness repair off the hot path (see DESIGN.md).
    const count budget = std::max<count>(64, (4 * n) / 5);
#pragma omp parallel
    {
        RepairScratch scratch;
        scratch.ensure(n);
        CsrBfs bfs(v);
#pragma omp for schedule(dynamic, 4) reduction(+ : bc[:n]) reduction(+ : touched)
        for (long long si = 0; si < static_cast<long long>(n); ++si) {
            const node s = static_cast<node>(si);
            std::uint16_t* lv = lvl_.data() + static_cast<size_t>(si) * n;
            double* sg = sig_.data() + static_cast<size_t>(si) * n;
            double* dp = dep_.data() + static_cast<size_t>(si) * n;
            scratch.changes.clear();
            scratch.repairer.repair(v, s, lv, batch, scratch.changes);
            count r = repairSource(v, s, lv, sg, dp, batch, scratch, bc, budget);
            if (r == kRepairAborted) r = rebuildSource(v, s, bfs, lv, sg, dp, bc);
            touched += scratch.changes.size() + r;
        }
    }
    lastTouched_ = touched;
}

std::vector<double> DynBetweenness::scores(bool normalized) const {
    // Exact kernel semantics: halve the directed double-count, then scale
    // by 2/((n-1)(n-2)) when normalized — the two combine to 1/((n-1)(n-2)).
    std::vector<double> out(n_, 0.0);
    double scale = 0.5;
    if (normalized && n_ > 2)
        scale = 1.0 / (static_cast<double>(n_ - 1) * static_cast<double>(n_ - 2));
    for (node u = 0; u < n_; ++u) out[u] = bcRaw_[u] * scale;
    return out;
}

void DynBetweenness::reset() {
    primed_ = false;
    lvl_.clear();
    lvl_.shrink_to_fit();
    sig_.clear();
    sig_.shrink_to_fit();
    dep_.clear();
    dep_.shrink_to_fit();
    bcRaw_.clear();
    n_ = 0;
    version_ = 0;
}

} // namespace rinkit::dyn
