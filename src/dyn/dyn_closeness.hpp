#pragma once

#include <cstdint>
#include <vector>

#include "src/dyn/dyn_bfs.hpp"
#include "src/dyn/edge_batch.hpp"
#include "src/graph/csr_view.hpp"

namespace rinkit::dyn {

/// Incrementally maintained closeness (Standard *and* Harmonic from one
/// state): a packed n x n level matrix plus per-source distance sums,
/// repaired per batch by LevelRepairer and rolled into the aggregates as
/// +/- deltas. Both ClosenessCentrality variants read off the same three
/// aggregates, so one repair serves both widget measures.
///
/// Accuracy contract (see DESIGN.md): sumDist and reached are integer
/// deltas on doubles/counts — Standard closeness is bit-equal to the
/// from-scratch kernel; sumInv accumulates 1/d in changed order, so
/// Harmonic agrees to ~1e-12 relative per update (tested at 1e-9 over
/// whole random sequences).
class DynCloseness {
public:
    /// From-scratch prime on @p v: runs one BFS per source (OpenMP over
    /// sources) and stores levels + aggregates. This *is* an exact
    /// computation — the engine serves its scores as tier "exact".
    void init(const CsrView& v);

    bool primed() const { return primed_; }
    std::uint64_t version() const { return version_; }
    count numberOfNodes() const { return n_; }

    /// Applies @p batch (diff to exactly @p v's edge set). Requires
    /// primed() and an unchanged node count.
    void update(const CsrView& v, const EdgeBatch& batch);

    /// Scores in ClosenessCentrality's exact semantics (Wasserman-Faust
    /// composite for Standard, sum of reciprocals for Harmonic).
    std::vector<double> scores(bool harmonic, bool normalized = true) const;

    /// Distance entries changed by the last update (cost-model feedback).
    count lastChanged() const { return lastChanged_; }

    void reset();

private:
    count n_ = 0;
    std::uint64_t version_ = 0;
    bool primed_ = false;
    count lastChanged_ = 0;
    std::vector<std::uint16_t> lvl_;  ///< n x n, row per source
    std::vector<double> sumDist_;     ///< per source, integer-valued
    std::vector<double> sumInv_;      ///< per source
    std::vector<count> reached_;      ///< per source, excludes the source
};

} // namespace rinkit::dyn
