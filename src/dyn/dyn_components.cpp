#include "src/dyn/dyn_components.hpp"

#include <numeric>

namespace rinkit::dyn {

namespace {

/// Minimal union-find over a label space (path halving, union by size).
class LabelUnion {
public:
    explicit LabelUnion(count n) : parent_(n), size_(n, 1) {
        std::iota(parent_.begin(), parent_.end(), 0u);
    }

    index find(index x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(index a, index b) {
        a = find(a);
        b = find(b);
        if (a == b) return;
        if (size_[a] < size_[b]) std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

private:
    std::vector<index> parent_;
    std::vector<count> size_;
};

} // namespace

void DynConnectedComponents::init(const CsrView& v) {
    n_ = v.numberOfNodes();
    version_ = v.version();
    comp_.assign(n_, 0);
    primed_ = true;
    if (n_ == 0) {
        numComponents_ = 0;
        return;
    }
    LabelUnion uf(n_);
    for (node u = 0; u < n_; ++u) {
        v.forNeighborsOf(u, [&](node w) {
            if (u < w) uf.unite(u, w);
        });
    }
    for (node u = 0; u < n_; ++u) comp_[u] = uf.find(u);
    compact();
}

void DynConnectedComponents::update(const CsrView& v, const EdgeBatch& batch) {
    version_ = v.version();
    if (n_ == 0 || batch.size() == 0) return;

    if (batch.removedCount() == 0) {
        // Insert-only: pure label unions, no traversal at all.
        LabelUnion uf(numComponents_);
        for (const auto& [u, w] : *batch.added) uf.unite(comp_[u], comp_[w]);
        for (node u = 0; u < n_; ++u) comp_[u] = uf.find(comp_[u]);
        compact();
        return;
    }

    // Deletions may split: rebuild only the components that lost an edge.
    // Their vertices get fresh labels by BFS over the *new* adjacency;
    // intact foreign components act as super-nodes — reaching any of their
    // vertices unions the fresh label with the old component label instead
    // of traversing into it.
    std::vector<char> affectedComp(numComponents_, 0);
    for (const auto& [u, w] : *batch.removed)
        affectedComp[comp_[u]] = affectedComp[comp_[w]] = 1;

    std::vector<node> affectedVerts;
    for (node u = 0; u < n_; ++u)
        if (affectedComp[comp_[u]]) affectedVerts.push_back(u);

    const index freshBase = static_cast<index>(numComponents_);
    LabelUnion uf(numComponents_ + affectedVerts.size());
    std::vector<index> label(comp_);
    for (node x : affectedVerts) label[x] = none;

    index nextFresh = freshBase;
    std::vector<node> stack;
    for (node x : affectedVerts) {
        if (label[x] != none) continue;
        const index fresh = nextFresh++;
        label[x] = fresh;
        stack.assign(1, x);
        while (!stack.empty()) {
            const node y = stack.back();
            stack.pop_back();
            v.forNeighborsOf(y, [&](node z) {
                if (affectedComp[comp_[z]]) {
                    if (label[z] == none) {
                        label[z] = fresh;
                        stack.push_back(z);
                    } else if (label[z] != fresh) {
                        uf.unite(fresh, label[z]);
                    }
                } else {
                    uf.unite(fresh, comp_[z]);
                }
            });
        }
    }
    // Insertions between two intact components never enter the BFS above.
    for (const auto& [u, w] : *batch.added)
        if (!affectedComp[comp_[u]] && !affectedComp[comp_[w]])
            uf.unite(comp_[u], comp_[w]);

    for (node u = 0; u < n_; ++u) comp_[u] = uf.find(label[u]);
    compact();
}

void DynConnectedComponents::compact() {
    // First-occurrence-by-node-order remap — the exact scheme
    // ConnectedComponents::compactLabels uses, so labels are bit-equal to
    // a from-scratch run.
    index maxLabel = 0;
    for (index c : comp_) maxLabel = std::max(maxLabel, c);
    std::vector<index> remap(static_cast<size_t>(maxLabel) + 1, none);
    index next = 0;
    for (node u = 0; u < n_; ++u) {
        const index root = comp_[u];
        if (remap[root] == none) remap[root] = next++;
        comp_[u] = remap[root];
    }
    numComponents_ = next;
}

void DynConnectedComponents::reset() {
    primed_ = false;
    comp_.clear();
    n_ = 0;
    numComponents_ = 0;
    version_ = 0;
}

} // namespace rinkit::dyn
