#pragma once

#include <cstdint>
#include <vector>

#include "src/dyn/dyn_bfs.hpp"
#include "src/dyn/edge_batch.hpp"
#include "src/graph/csr_view.hpp"

namespace rinkit::dyn {

/// Incrementally maintained exact betweenness in the iBet / Kourtellis
/// (NetworKit DynBetweenness) tradition: the full Brandes per-source state
/// — BFS levels, path counts (sigma) and dependencies (delta) — is stored
/// as three n x n matrices, and an edge batch triggers a three-phase
/// per-source repair instead of a from-scratch O(nm) run:
///
///   1. level repair via LevelRepairer (touched subtrees only);
///   2. sigma repair in increasing new-level order, seeded by the changed
///      vertices, their neighbors and the batch's DAG-relevant endpoints —
///      recomputation stops where sigma settles back to its stored value;
///   3. dependency repair in decreasing new-level order, crediting the
///      betweenness accumulator with (new - stored) deltas and propagating
///      only to parents whose sum actually moved.
///
/// Sources untouched by the batch (every batch edge level-equal under that
/// source, no affected vertices) cost one O(batch) scan. The engine's cost
/// model falls back to the from-scratch CSR kernel when the diff is too
/// large a fraction of m for the repair to win (see viz::MeasureEngine).
///
/// Accuracy: sigma repair is exact (path counts are integers in doubles);
/// dependency deltas accumulate in floating point, so scores agree with
/// exact Brandes to ~1e-12 relative per update (tested at 1e-7 over whole
/// random sequences). Memory: 18 bytes per node pair — the engine caps
/// eligibility at dynStateMaxNodes.
class DynBetweenness {
public:
    /// From-scratch prime: full Brandes on @p v (OpenMP over sources) with
    /// all per-source state retained. Exact — the engine serves the primed
    /// scores as tier "exact".
    void init(const CsrView& v);

    bool primed() const { return primed_; }
    std::uint64_t version() const { return version_; }
    count numberOfNodes() const { return n_; }

    /// Applies @p batch (diff to exactly @p v's edge set). Requires
    /// primed() and an unchanged node count.
    void update(const CsrView& v, const EdgeBatch& batch);

    /// Scores in Betweenness's exact semantics (normalized: x 2/((n-1)(n-2))
    /// after halving the directed double-count).
    std::vector<double> scores(bool normalized = true) const;

    /// Vertices re-processed by the last update across all sources
    /// (cost-model feedback).
    count lastTouched() const { return lastTouched_; }

    void reset();

private:
    count n_ = 0;
    std::uint64_t version_ = 0;
    bool primed_ = false;
    count lastTouched_ = 0;
    std::vector<std::uint16_t> lvl_; ///< n x n
    std::vector<double> sig_;        ///< n x n shortest-path counts
    std::vector<double> dep_;        ///< n x n Brandes dependencies
    std::vector<double> bcRaw_;      ///< sum over sources of dep rows
};

} // namespace rinkit::dyn
