#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/dyn/edge_batch.hpp"
#include "src/graph/csr_view.hpp"

namespace rinkit::dyn {

/// Incremental core decomposition (traversal-style peeling repair,
/// Sariyuce et al.'s subcore insight combined with the h-index fixpoint of
/// Lu et al.):
///
///  - Deletions (batched): coreness can only drop, and old core numbers
///    remain a pointwise upper bound. A worklist seeded with the removed
///    edges' endpoints applies the capped h-operator — core(v) <-
///    min(core(v), h-index of neighbor cores) — until it settles. Any
///    fixpoint of the capped operator reached from an upper bound is
///    exactly the core number (each side of the sandwich is a k-core
///    witness), so the repair is exact, not heuristic.
///  - Insertions (edge at a time): inserting one edge raises coreness by
///    at most one, and only within the subcore — the vertices with
///    core == k reachable from the edge through core == k vertices, where
///    k is the smaller endpoint core. Bumping the subcore to k+1 gives a
///    valid upper bound; the same capped h-operator worklist then peels
///    the over-estimates away. Edges later in the batch are masked out of
///    every adjacency scan until their own turn (the CSR snapshot is
///    post-batch, so "not yet inserted" must be simulated).
///
/// Core numbers are integers: results are bit-equal to the from-scratch
/// Batagelj-Zaversnik kernel.
class DynCoreDecomposition {
public:
    void init(const CsrView& v);

    bool primed() const { return primed_; }
    std::uint64_t version() const { return version_; }

    void update(const CsrView& v, const EdgeBatch& batch);

    /// Core numbers in CoreDecomposition's result shape.
    std::vector<double> scores() const;
    count coreOf(node u) const { return core_[u]; }
    count maxCore() const;

    void reset();

private:
    /// Capped h-operator worklist until fixpoint; @p seeds hold an upper
    /// bound on their true core. Neighbor scans skip arcs in pending_.
    void settle(const CsrView& v, std::vector<node>& seeds);
    count hIndex(const CsrView& v, node u) const;
    bool isPending(node a, node b) const;

    count n_ = 0;
    std::uint64_t version_ = 0;
    bool primed_ = false;
    std::vector<count> core_;
    std::unordered_set<std::uint64_t> pending_; ///< batch arcs not yet "inserted"
    mutable std::vector<count> hScratch_;
};

} // namespace rinkit::dyn
