#pragma once

#include <cstdint>
#include <vector>

#include "src/dyn/dyn_bfs.hpp"
#include "src/dyn/edge_batch.hpp"
#include "src/graph/csr_view.hpp"

namespace rinkit::dyn {

/// Diff-maintained KADABRA-style approximate betweenness (after Bergamini &
/// Meyerhenke's fully-dynamic RK estimator, reworked around the engine's
/// batch diffs and level matrix).
///
/// The static sampler draws T uniform (s, t) pairs, one uniform shortest
/// s-t path each, and scores every vertex by the fraction of sampled paths
/// it sits inside. This class keeps that sample set *alive* across edge
/// batches instead of redrawing it per graph version:
///
///  - An n x n level matrix (one BFS row per source, same representation
///    as DynCloseness) is repaired per batch by LevelRepairer. The matrix
///    doubles as a distance oracle: d(s,x) and d(x,t) are O(1) lookups.
///  - A stored path for pair (s, t) stays a valid uniform sample as long
///    as the s-t shortest-path DAG did not change. That is detectable
///    exactly from the oracle: the DAG moves iff d(s,t) moved, a batch
///    edge (a, b) satisfies d(s,a) + 1 + d(b,t) = d(s,t) (removed edges
///    tested against the pre-batch rows, added edges against the repaired
///    ones), or some vertex with a changed level in row s or row t lies on
///    an old or new s-t geodesic (d(s,x) + d(x,t) = d(s,t)). Everything is
///    O(1) per (sample, change) — no traversal.
///  - Only flagged samples are redrawn, and redrawing needs no BFS either:
///    the geodesic region {x : d(s,x) + d(x,t) = d(s,t)} is one O(n) scan
///    over two rows, path counts over that region (typically a few dozen
///    vertices) take one ascending sweep, and a weighted backward walk
///    yields a uniform shortest path — a few microseconds per resample
///    against tens for a bidirectional search.
///
/// Unflagged samples keep their path, whose conditional distribution over
/// the *current* graph's shortest paths is exactly uniform; flagged ones
/// are redrawn with fresh randomness. Samples therefore stay independent
/// and per-frame unbiased, and the a-priori Riondato-Kornaropoulos bound
/// holds at every version: update() re-derives the required sample size
/// from the maintained vertex-diameter estimate (the matrix gives exact
/// eccentricities for free) and tops the set up if the diameter grew.
/// achievedEpsilon() reports that deterministic bound — update results are
/// verified against from-scratch recomputation *within* (eps, delta), not
/// bit-equal (see DESIGN.md).
class DynKadabra {
public:
    /// From-scratch prime on @p v: builds the level matrix (one BFS per
    /// source, OpenMP over sources) and draws the full a-priori sample set
    /// through the matrix sampler.
    void init(const CsrView& v, double epsilon = 0.05, double delta = 0.1,
              std::uint64_t seed = 1);

    bool primed() const { return primed_; }
    std::uint64_t version() const { return version_; }
    count numberOfNodes() const { return n_; }
    double epsilon() const { return eps_; }
    double delta() const { return delta_; }

    /// Applies @p batch (diff to exactly @p v's edge set): repairs the
    /// level rows, flags the samples whose shortest-path DAG moved, and
    /// redraws only those. Requires primed() and an unchanged node count.
    void update(const CsrView& v, const EdgeBatch& batch);

    /// Scores on KadabraBetweenness's scale (fraction of sampled paths).
    std::vector<double> scores() const;

    /// Deterministic a-priori additive-error bound currently guaranteed
    /// (with probability >= 1 - delta) by the live sample set.
    double achievedEpsilon() const { return achievedEps_; }

    count numberOfSamples() const { return samples_.size(); }

    /// Samples redrawn by the last update (cost-model/metrics feedback).
    count lastResampled() const { return lastResampled_; }

    void reset();

private:
    struct Sample {
        node s = none;
        node t = none;
        std::vector<node> interior; ///< path vertices strictly between s and t
    };

    /// Epoch-stamped scratch of the matrix path sampler (geodesic region +
    /// restricted path counts); one per thread inside update().
    struct GeoScratch {
        std::vector<double> sigma;
        std::vector<std::uint32_t> stamp;
        std::uint32_t epoch = 0;
        std::vector<std::vector<node>> buckets;

        void ensure(count n) {
            if (stamp.size() < n) {
                sigma.assign(n, 0.0);
                stamp.assign(n, 0);
                epoch = 0;
            }
        }
    };

    const std::uint16_t* row(node s) const {
        return lvl_.data() + static_cast<size_t>(s) * n_;
    }

    void drawPair(count i, node& s, node& t) const;
    void samplePath(const CsrView& v, Sample& smp, std::uint64_t salt,
                    GeoScratch& w, double* cnt) const;
    void refreshBound();
    void topUp(const CsrView& v, GeoScratch& w);
    count requiredSamples() const;

    count n_ = 0;
    std::uint64_t version_ = 0;
    bool primed_ = false;
    double eps_ = 0.05;
    double delta_ = 0.1;
    std::uint64_t seed_ = 1;
    std::uint32_t epoch_ = 0; ///< update counter, salts resample randomness
    double achievedEps_ = 0.0;
    count lastResampled_ = 0;
    count vertexDiameter_ = 3;

    std::vector<std::uint16_t> lvl_; ///< n x n, row per source
    std::vector<std::uint16_t> ecc_; ///< per-source max finite level
    std::vector<Sample> samples_;
    std::vector<double> cnt_; ///< raw per-vertex path counts
};

} // namespace rinkit::dyn
