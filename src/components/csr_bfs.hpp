#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/csr_view.hpp"

namespace rinkit {

/// Level-synchronous BFS over a CSR snapshot with flat, reusable buffers.
///
/// This is the traversal core under Brandes betweenness and the sampled
/// approximation: per node it records the BFS level, the shortest-path
/// count (sigma) and the visit order — and nothing else. Predecessor lists
/// are gone entirely; dependency accumulation recovers predecessors by
/// scanning CSR neighbor rows for level[v] == level[w] - 1, which is a
/// sequential read instead of n vectors of push_backs per source.
///
/// run() resets only the nodes reached by the previous run, so looping a
/// reusable CsrBfs over many sources costs O(reached + edges scanned) per
/// source, not O(n).
class CsrBfs {
public:
    static constexpr std::uint32_t unreachedLevel =
        std::numeric_limits<std::uint32_t>::max();

    explicit CsrBfs(const CsrView& v)
        : v_(v), level_(v.numberOfNodes(), unreachedLevel),
          sigma_(v.numberOfNodes(), 0.0) {
        order_.reserve(v.numberOfNodes());
    }

    void run(node source);

    std::uint32_t levelOf(node u) const { return level_[u]; }
    const std::vector<std::uint32_t>& levels() const { return level_; }

    /// Number of shortest source-u paths.
    const std::vector<double>& sigma() const { return sigma_; }

    /// Reached nodes in non-decreasing level order (the Brandes "stack").
    const std::vector<node>& order() const { return order_; }

    count reached() const { return order_.size(); }

    const CsrView& view() const { return v_; }

private:
    const CsrView& v_;
    std::vector<std::uint32_t> level_;
    std::vector<double> sigma_;
    std::vector<node> order_;
};

/// Distance aggregates of every single-source BFS, computed by batched
/// multi-source traversal (Then et al., "The More the Merrier: Efficient
/// Multi-Source Graph Traversal"): sources are processed 64 at a time,
/// each node carries one 64-bit visit mask per batch, and one sweep over
/// the CSR arrays advances all 64 frontiers at once. Exactly what the
/// closeness variants need — per-source distance sums, reciprocal sums and
/// reached counts — at roughly 1/64th of the row scans of n separate BFS
/// runs. OpenMP-parallel over batches.
struct DistanceSums {
    std::vector<double> sumDist;   ///< sum of d(s, t) over reached t != s
    std::vector<double> sumInv;    ///< sum of 1 / d(s, t) over reached t != s
    std::vector<count> reached;    ///< reached nodes excluding the source
};
DistanceSums batchedDistanceSums(const CsrView& v);

} // namespace rinkit
