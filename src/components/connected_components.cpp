#include "src/components/connected_components.hpp"

#include <algorithm>
#include <numeric>

#include "src/support/parallel.hpp"

namespace rinkit {

namespace {

/// Union-find with path halving and union by size.
class UnionFind {
public:
    explicit UnionFind(count n) : parent_(n), size_(n, 1) {
        std::iota(parent_.begin(), parent_.end(), 0u);
    }

    index find(index x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]]; // path halving
            x = parent_[x];
        }
        return x;
    }

    void unite(index a, index b) {
        a = find(a);
        b = find(b);
        if (a == b) return;
        if (size_[a] < size_[b]) std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

private:
    std::vector<index> parent_;
    std::vector<count> size_;
};

} // namespace

void ConnectedComponents::run() {
    if (engine_ == Engine::UnionFind) runUnionFind();
    else runLabelPropagation();
    compactLabels();
    hasRun_ = true;
}

void ConnectedComponents::runUnionFind() {
    UnionFind uf(g_.numberOfNodes());
    g_.forEdges([&](node u, node v) { uf.unite(u, v); });
    comp_.resize(g_.numberOfNodes());
    for (node u = 0; u < g_.numberOfNodes(); ++u) comp_[u] = uf.find(u);
}

void ConnectedComponents::runLabelPropagation() {
    const count n = g_.numberOfNodes();
    comp_.resize(n);
    std::iota(comp_.begin(), comp_.end(), 0u);
    bool changed = true;
    while (changed) {
        changed = false;
#pragma omp parallel for schedule(static) reduction(|| : changed)
        for (long long ui = 0; ui < static_cast<long long>(n); ++ui) {
            const node u = static_cast<node>(ui);
            index best = comp_[u];
            g_.forNeighborsOf(u, [&](node, node v) { best = std::min(best, comp_[v]); });
            if (best < comp_[u]) {
                comp_[u] = best;
                changed = true;
            }
        }
    }
}

void ConnectedComponents::compactLabels() {
    const count n = comp_.size();
    std::vector<index> remap(n, none);
    index next = 0;
    for (node u = 0; u < n; ++u) {
        const index root = comp_[u];
        if (remap[root] == none) remap[root] = next++;
        comp_[u] = remap[root];
    }
    numComponents_ = next;
}

std::vector<count> ConnectedComponents::componentSizes() const {
    requireRun();
    std::vector<count> sizes(numComponents_, 0);
    for (index c : comp_) ++sizes[c];
    return sizes;
}

std::vector<node> ConnectedComponents::largestComponent() const {
    requireRun();
    const auto sizes = componentSizes();
    if (sizes.empty()) return {};
    const index target = static_cast<index>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
    std::vector<node> nodes;
    nodes.reserve(sizes[target]);
    for (node u = 0; u < comp_.size(); ++u) {
        if (comp_[u] == target) nodes.push_back(u);
    }
    return nodes;
}

} // namespace rinkit
