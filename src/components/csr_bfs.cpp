#include "src/components/csr_bfs.hpp"

#include <bit>
#include <stdexcept>

#include "src/support/parallel.hpp"

namespace rinkit {

namespace {

/// arr[u] if lu == want, else exactly +0.0 — by bit-masking instead of a
/// data-dependent branch. Whether a neighbor sits on the wanted level is
/// close to a coin flip per arc, so the mispredicts of the obvious `if`
/// dominate an L1-resident load-and-add by a wide margin.
inline double pickIfLevel(const double* arr, node u, std::uint32_t lu,
                          std::uint32_t want) {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(arr[u]) &
                                 -static_cast<std::uint64_t>(lu == want));
}

} // namespace

void CsrBfs::run(node source) {
    if (source >= v_.numberOfNodes()) {
        throw std::out_of_range("CsrBfs: invalid source");
    }
    // Reset only what the previous run touched. Sigma needs no reset: every
    // reached node gets it assigned (not accumulated) below, and unreached
    // nodes are never read unmasked.
    for (node u : order_) level_[u] = unreachedLevel;
    order_.clear();

    const count* off = v_.offsets();
    const node* tgt = v_.targets();
    const double* sg = sigma_.data();

    level_[source] = 0;
    sigma_[source] = 1.0;
    order_.push_back(source);

    // The source row is discovery-only — there is no level below 0 to pull
    // path counts from.
    {
        const count end = off[source + 1];
        for (count a = off[source]; a < end; ++a) {
            const node w = tgt[a];
            if (level_[w] == unreachedLevel) {
                level_[w] = 1;
                order_.push_back(w);
            }
        }
    }

    // order_ doubles as the frontier queue: [head, tail) is the current
    // level, appended nodes form the next one. Sigma is *pulled*: one row
    // scan per frontier node both discovers unseen neighbors and sums the
    // path counts of neighbors one level up into a register — a single
    // sigma store per node instead of a read-modify-write per arc.
    count head = 1;
    std::uint32_t lvl = 1;
    while (head < order_.size()) {
        const count tail = order_.size();
        const std::uint32_t prevLvl = lvl - 1;
        const std::uint32_t nextLvl = lvl + 1;
        for (count i = head; i < tail; ++i) {
            const node u = order_[i];
            // Two accumulators: the FP-add latency chain, not throughput,
            // bounds long rows (dense cutoffs average ~20 arcs per row).
            double su0 = 0.0, su1 = 0.0;
            const count end = off[u + 1];
            count a = off[u];
            for (; a + 2 <= end; a += 2) {
                const node w0 = tgt[a], w1 = tgt[a + 1];
                const std::uint32_t l0 = level_[w0], l1 = level_[w1];
                if (l0 == unreachedLevel) {
                    level_[w0] = nextLvl;
                    order_.push_back(w0);
                }
                if (l1 == unreachedLevel) {
                    level_[w1] = nextLvl;
                    order_.push_back(w1);
                }
                su0 += pickIfLevel(sg, w0, l0, prevLvl);
                su1 += pickIfLevel(sg, w1, l1, prevLvl);
            }
            for (; a < end; ++a) {
                const node w = tgt[a];
                const std::uint32_t lw = level_[w];
                if (lw == unreachedLevel) {
                    level_[w] = nextLvl;
                    order_.push_back(w);
                }
                su0 += pickIfLevel(sg, w, lw, prevLvl);
            }
            sigma_[u] = su0 + su1;
        }
        head = tail;
        ++lvl;
    }
}

DistanceSums batchedDistanceSums(const CsrView& v) {
    const count n = v.numberOfNodes();
    DistanceSums out;
    out.sumDist.assign(n, 0.0);
    out.sumInv.assign(n, 0.0);
    out.reached.assign(n, 0);
    if (n == 0) return out;

    const count* off = v.offsets();
    const node* tgt = v.targets();
    const count batches = (n + 63) / 64;

#pragma omp parallel
    {
        // Per-thread workspace, reused across batches.
        std::vector<std::uint64_t> seen(n), frontier(n), next(n);
        std::vector<node> frontierNodes, nextNodes;
        frontierNodes.reserve(n);
        nextNodes.reserve(n);

#pragma omp for schedule(dynamic, 1)
        for (long long bi = 0; bi < static_cast<long long>(batches); ++bi) {
            const node b0 = static_cast<node>(bi * 64);
            const node width = static_cast<node>(
                std::min<count>(64, n - b0));

            std::fill(seen.begin(), seen.end(), 0);
            std::fill(frontier.begin(), frontier.end(), 0);
            std::fill(next.begin(), next.end(), 0);
            frontierNodes.clear();
            for (node i = 0; i < width; ++i) {
                const node s = b0 + i;
                seen[s] = frontier[s] = std::uint64_t(1) << i;
                frontierNodes.push_back(s);
            }

            std::uint32_t lvl = 0;
            while (!frontierNodes.empty()) {
                ++lvl;
                const double invLvl = 1.0 / static_cast<double>(lvl);
                nextNodes.clear();
                for (node u : frontierNodes) {
                    const std::uint64_t fu = frontier[u];
                    const count end = off[u + 1];
                    for (count a = off[u]; a < end; ++a) {
                        const node w = tgt[a];
                        const std::uint64_t nw = fu & ~seen[w];
                        if (nw) {
                            if (next[w] == 0) nextNodes.push_back(w);
                            next[w] |= nw;
                        }
                    }
                }
                for (node u : frontierNodes) frontier[u] = 0;
                for (node w : nextNodes) {
                    std::uint64_t bits = next[w];
                    next[w] = 0;
                    seen[w] |= bits;
                    frontier[w] = bits;
                    while (bits) {
                        const int i = std::countr_zero(bits);
                        bits &= bits - 1;
                        const node s = b0 + static_cast<node>(i);
                        out.sumDist[s] += static_cast<double>(lvl);
                        out.sumInv[s] += invLvl;
                        ++out.reached[s];
                    }
                }
                frontierNodes.swap(nextNodes);
            }
        }
    }
    return out;
}

} // namespace rinkit
