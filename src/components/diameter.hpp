#pragma once

#include <cstdint>

#include "src/graph/graph.hpp"

namespace rinkit {

/// Eccentricity of @p u: longest hop distance to any reachable node.
count eccentricity(const Graph& g, node u);

/// Exact diameter of the largest connected component via all-sources BFS.
/// O(n * m) — fine for RIN-sized graphs.
count diameterExact(const Graph& g);

/// Lower bound on the diameter via iterated double sweeps: BFS from a
/// random node, then from the farthest node found, repeated. Cheap and
/// usually tight on real networks; used by ApproxBetweenness to bound the
/// vertex diameter.
count diameterEstimate(const Graph& g, count sweeps = 4, std::uint64_t seed = 1);

} // namespace rinkit
