#include "src/components/bfs.hpp"

#include <queue>
#include <stdexcept>

#include "src/support/parallel.hpp"

namespace rinkit {

Bfs::Bfs(const Graph& g, node source) : g_(g), source_(source) {
    if (!g.hasNode(source)) throw std::out_of_range("Bfs: invalid source");
    const count n = g.numberOfNodes();
    dist_.resize(n);
    sigma_.resize(n);
    order_.reserve(n);
}

void Bfs::setSource(node source) {
    if (!g_.hasNode(source)) throw std::out_of_range("Bfs: invalid source");
    source_ = source;
}

void Bfs::run() {
    const count n = g_.numberOfNodes();
    std::fill(dist_.begin(), dist_.end(), infdist);
    std::fill(sigma_.begin(), sigma_.end(), 0.0);
    order_.clear();

    dist_[source_] = 0.0;
    sigma_[source_] = 1.0;
    std::vector<node> frontier{source_};
    std::vector<node> next;
    double level = 0.0;
    while (!frontier.empty()) {
        for (node u : frontier) order_.push_back(u);
        next.clear();
        for (node u : frontier) {
            g_.forNeighborsOf(u, [&](node, node v) {
                if (dist_[v] == infdist) {
                    dist_[v] = level + 1.0;
                    next.push_back(v);
                }
                if (dist_[v] == level + 1.0) {
                    sigma_[v] += sigma_[u];
                }
            });
        }
        frontier.swap(next);
        level += 1.0;
    }
    (void)n;
}

Dijkstra::Dijkstra(const Graph& g, node source) : g_(g), source_(source) {
    if (!g.hasNode(source)) throw std::out_of_range("Dijkstra: invalid source");
}

void Dijkstra::run() {
    const count n = g_.numberOfNodes();
    dist_.assign(n, infdist);
    parent_.assign(n, none);
    using Entry = std::pair<double, node>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist_[source_] = 0.0;
    pq.emplace(0.0, source_);
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist_[u]) continue; // stale entry
        g_.forWeightedNeighborsOf(u, [&](node, node v, edgeweight w) {
            if (w < 0.0) throw std::invalid_argument("Dijkstra: negative edge weight");
            if (d + w < dist_[v]) {
                dist_[v] = d + w;
                parent_[v] = u;
                pq.emplace(dist_[v], v);
            }
        });
    }
}

std::vector<node> Dijkstra::path(node t) const {
    if (dist_.empty()) throw std::logic_error("Dijkstra: call run() first");
    if (dist_[t] == infdist) return {};
    std::vector<node> p;
    for (node u = t; u != none; u = parent_[u]) p.push_back(u);
    std::reverse(p.begin(), p.end());
    return p;
}

std::vector<std::vector<double>> apspUnweighted(const Graph& g) {
    const count n = g.numberOfNodes();
    std::vector<std::vector<double>> d(n);
#pragma omp parallel
    {
        Bfs bfs(g, 0);
#pragma omp for schedule(dynamic, 8)
        for (long long s = 0; s < static_cast<long long>(n); ++s) {
            bfs.setSource(static_cast<node>(s));
            bfs.run();
            d[static_cast<size_t>(s)] = bfs.distances();
        }
    }
    return d;
}

} // namespace rinkit
