#pragma once

#include <vector>

#include "src/graph/graph.hpp"

namespace rinkit {

/// Breadth-first search from a single source.
///
/// Distances are hop counts; unreachable nodes get rinkit::infdist.
/// Exposes shortest-path counts (sigma) and the visit order. Predecessor
/// lists were dropped: the traversal-heavy algorithms (Brandes betweenness
/// and the sampled approximation) moved to the flat CsrBfs engine, which
/// recovers predecessors by level comparison instead of storing n lists.
class Bfs {
public:
    /// Prepares a BFS on @p g from @p source. Buffers are reusable: call
    /// run() repeatedly after setSource().
    Bfs(const Graph& g, node source);

    void setSource(node source);

    /// Runs the traversal.
    void run();

    /// Hop distance to @p t (infdist if unreachable). Requires run().
    double distance(node t) const { return dist_[t]; }

    /// All distances. Requires run().
    const std::vector<double>& distances() const { return dist_; }

    /// Number of shortest s-t paths (sigma values). Requires run().
    const std::vector<double>& numberOfPaths() const { return sigma_; }

    /// Nodes in non-decreasing distance order (the BFS "stack").
    const std::vector<node>& visitOrder() const { return order_; }

    /// Number of nodes reached (including the source).
    count reached() const { return order_.size(); }

private:
    const Graph& g_;
    node source_;
    std::vector<double> dist_;
    std::vector<double> sigma_;
    std::vector<node> order_;
};

/// Dijkstra single-source shortest paths for weighted graphs.
/// Edge weights must be non-negative; throws otherwise.
class Dijkstra {
public:
    Dijkstra(const Graph& g, node source);

    void run();

    double distance(node t) const { return dist_[t]; }
    const std::vector<double>& distances() const { return dist_; }

    /// One shortest path from source to @p t (empty if unreachable).
    std::vector<node> path(node t) const;

private:
    const Graph& g_;
    node source_;
    std::vector<double> dist_;
    std::vector<node> parent_;
};

/// All-pairs BFS distance matrix (row per node). Intended for the small
/// graphs where Maxent-Stress uses exact graph distances; O(n * m).
std::vector<std::vector<double>> apspUnweighted(const Graph& g);

} // namespace rinkit
