#pragma once

#include <vector>

#include "src/graph/graph.hpp"

namespace rinkit {

/// Connected components of an undirected graph.
///
/// Two interchangeable engines:
///  - UnionFind: sequential, O(m alpha(n)); the default.
///  - LabelPropagation: OpenMP-parallel iterative min-label spreading, the
///    scheme NetworKit's ParallelConnectedComponents uses.
/// Component ids are compacted to [0, numberOfComponents).
class ConnectedComponents {
public:
    enum class Engine { UnionFind, LabelPropagation };

    explicit ConnectedComponents(const Graph& g, Engine engine = Engine::UnionFind)
        : g_(g), engine_(engine) {}

    void run();

    bool hasRun() const { return hasRun_; }

    count numberOfComponents() const {
        requireRun();
        return numComponents_;
    }

    /// Component id of @p u.
    index componentOf(node u) const {
        requireRun();
        return comp_[u];
    }

    /// Component id per node.
    const std::vector<index>& components() const {
        requireRun();
        return comp_;
    }

    /// Size of each component, indexed by component id.
    std::vector<count> componentSizes() const;

    /// Nodes of the largest component.
    std::vector<node> largestComponent() const;

private:
    void runUnionFind();
    void runLabelPropagation();
    void compactLabels();
    void requireRun() const {
        if (!hasRun_) throw std::logic_error("ConnectedComponents: call run() first");
    }

    const Graph& g_;
    Engine engine_;
    std::vector<index> comp_;
    count numComponents_ = 0;
    bool hasRun_ = false;
};

} // namespace rinkit
