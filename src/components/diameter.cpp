#include "src/components/diameter.hpp"

#include <algorithm>

#include "src/components/bfs.hpp"
#include "src/support/random.hpp"

namespace rinkit {

namespace {

/// (farthest node, distance) from @p s, ignoring unreachable nodes.
std::pair<node, count> farthest(const Graph& g, node s) {
    Bfs bfs(g, s);
    bfs.run();
    node best = s;
    double bestDist = 0.0;
    for (node u = 0; u < g.numberOfNodes(); ++u) {
        const double d = bfs.distance(u);
        if (d != infdist && d > bestDist) {
            bestDist = d;
            best = u;
        }
    }
    return {best, static_cast<count>(bestDist)};
}

} // namespace

count eccentricity(const Graph& g, node u) {
    return farthest(g, u).second;
}

count diameterExact(const Graph& g) {
    count best = 0;
#pragma omp parallel
    {
        count local = 0;
        Bfs bfs(g, 0);
#pragma omp for schedule(dynamic, 8) nowait
        for (long long s = 0; s < static_cast<long long>(g.numberOfNodes()); ++s) {
            bfs.setSource(static_cast<node>(s));
            bfs.run();
            for (node u = 0; u < g.numberOfNodes(); ++u) {
                const double d = bfs.distance(u);
                if (d != infdist) local = std::max(local, static_cast<count>(d));
            }
        }
#pragma omp critical
        best = std::max(best, local);
    }
    return best;
}

count diameterEstimate(const Graph& g, count sweeps, std::uint64_t seed) {
    if (g.numberOfNodes() == 0) return 0;
    Rng rng(seed);
    count best = 0;
    node start = static_cast<node>(rng.pick(g.numberOfNodes()));
    for (count i = 0; i < sweeps; ++i) {
        const auto [far, dist] = farthest(g, start);
        best = std::max(best, dist);
        if (far == start) break;
        start = far;
    }
    return best;
}

} // namespace rinkit
