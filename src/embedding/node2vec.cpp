#include "src/embedding/node2vec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/support/random.hpp"

namespace rinkit {

Node2Vec::Node2Vec(const Graph& g, Parameters params) : g_(g), params_(params) {
    if (params.p <= 0.0 || params.q <= 0.0) {
        throw std::invalid_argument("Node2Vec: p and q must be positive");
    }
    if (params.dimensions == 0 || params.walkLength < 2) {
        throw std::invalid_argument("Node2Vec: degenerate dimensions/walkLength");
    }
}

void Node2Vec::sampleWalks() {
    const count n = g_.numberOfNodes();
    walks_.clear();
    walks_.reserve(n * params_.walksPerNode);
    Rng rng(params_.seed);

    for (count r = 0; r < params_.walksPerNode; ++r) {
        for (node start = 0; start < n; ++start) {
            if (g_.degree(start) == 0) continue;
            std::vector<node> walk;
            walk.reserve(params_.walkLength);
            walk.push_back(start);
            node prev = none;
            node cur = start;
            while (walk.size() < params_.walkLength) {
                const auto nbrs = g_.neighbors(cur);
                if (nbrs.empty()) break;
                // Second-order bias: weight 1/p to return to prev, 1 to
                // common neighbors of prev, 1/q to explore outward.
                // Rejection sampling keeps this O(1) memory.
                node chosen = none;
                if (prev == none) {
                    chosen = nbrs[rng.pick(nbrs.size())];
                } else {
                    const double wMax =
                        std::max({1.0, 1.0 / params_.p, 1.0 / params_.q});
                    for (int attempt = 0; attempt < 256; ++attempt) {
                        const node cand = nbrs[rng.pick(nbrs.size())];
                        double w;
                        if (cand == prev) {
                            w = 1.0 / params_.p;
                        } else if (g_.hasEdge(cand, prev)) {
                            w = 1.0;
                        } else {
                            w = 1.0 / params_.q;
                        }
                        if (rng.real01() * wMax <= w) {
                            chosen = cand;
                            break;
                        }
                    }
                    if (chosen == none) chosen = nbrs[rng.pick(nbrs.size())];
                }
                walk.push_back(chosen);
                prev = cur;
                cur = chosen;
            }
            walks_.push_back(std::move(walk));
        }
    }
}

void Node2Vec::train() {
    const count n = g_.numberOfNodes();
    const count d = params_.dimensions;
    Rng rng(params_.seed + 0x5bd1e995u);

    // Input (emb_) and output (context) matrices, initialized small-random.
    emb_.assign(n, std::vector<double>(d));
    std::vector<std::vector<double>> ctx(n, std::vector<double>(d, 0.0));
    for (auto& row : emb_) {
        for (auto& x : row) x = (rng.real01() - 0.5) / static_cast<double>(d);
    }

    // Negative-sampling table proportional to degree^0.75.
    std::vector<double> cdf(n, 0.0);
    double total = 0.0;
    for (node u = 0; u < n; ++u) {
        total += std::pow(static_cast<double>(g_.degree(u)), 0.75);
        cdf[u] = total;
    }
    auto sampleNegative = [&]() {
        const double x = rng.real01() * total;
        return static_cast<node>(std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin());
    };

    auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
    std::vector<double> grad(d);

    for (count epoch = 0; epoch < params_.epochs; ++epoch) {
        const double lr = params_.learningRate *
                          (1.0 - static_cast<double>(epoch) /
                                     static_cast<double>(std::max<count>(params_.epochs, 1)));
        for (const auto& walk : walks_) {
            for (count i = 0; i < walk.size(); ++i) {
                const node center = walk[i];
                const count lo = i >= params_.windowSize ? i - params_.windowSize : 0;
                const count hi = std::min<count>(i + params_.windowSize, walk.size() - 1);
                for (count j = lo; j <= hi; ++j) {
                    if (j == i) continue;
                    const node context = walk[j];
                    std::fill(grad.begin(), grad.end(), 0.0);
                    // Positive pair + k negative samples.
                    for (count s = 0; s <= params_.negativeSamples; ++s) {
                        const bool positive = (s == 0);
                        const node target = positive ? context : sampleNegative();
                        if (!positive && target == context) continue;
                        double dot = 0.0;
                        for (count k = 0; k < d; ++k) dot += emb_[center][k] * ctx[target][k];
                        const double g = (positive ? 1.0 : 0.0) - sigmoid(dot);
                        for (count k = 0; k < d; ++k) {
                            grad[k] += g * ctx[target][k];
                            ctx[target][k] += lr * g * emb_[center][k];
                        }
                    }
                    for (count k = 0; k < d; ++k) emb_[center][k] += lr * grad[k];
                }
            }
        }
    }
}

void Node2Vec::run() {
    sampleWalks();
    train();
    hasRun_ = true;
}

const std::vector<std::vector<double>>& Node2Vec::features() const {
    if (!hasRun_) throw std::logic_error("Node2Vec: call run() first");
    return emb_;
}

double Node2Vec::cosineSimilarity(node u, node v) const {
    if (!hasRun_) throw std::logic_error("Node2Vec: call run() first");
    const auto& a = emb_.at(u);
    const auto& b = emb_.at(v);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (count k = 0; k < a.size(); ++k) {
        dot += a[k] * b[k];
        na += a[k] * a[k];
        nb += b[k] * b[k];
    }
    if (na == 0.0 || nb == 0.0) return 0.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

} // namespace rinkit
