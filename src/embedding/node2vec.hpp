#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"

namespace rinkit {

/// node2vec (Grover & Leskovec, KDD 2016): biased second-order random
/// walks + skip-gram with negative sampling.
///
/// The paper's conclusions name node2vec as the NetworKit component for
/// feeding RIN structure into downstream machine-learning workflows
/// ("Graph embeddings ... could be applied to reduce the complexity of the
/// protein simulation data"). The embedding_pipeline example exercises
/// exactly that path.
class Node2Vec {
public:
    struct Parameters {
        double p = 1.0;           ///< return parameter (1/p weight to backtrack)
        double q = 1.0;           ///< in-out parameter (1/q weight to explore)
        count walkLength = 40;    ///< steps per walk
        count walksPerNode = 8;   ///< walks started at every node
        count dimensions = 32;    ///< embedding width
        count windowSize = 5;     ///< skip-gram context radius
        count epochs = 1;         ///< passes over the walk corpus
        count negativeSamples = 5;
        double learningRate = 0.025;
        std::uint64_t seed = 1;
    };

    explicit Node2Vec(const Graph& g) : Node2Vec(g, Parameters{}) {}
    Node2Vec(const Graph& g, Parameters params);

    void run();

    bool hasRun() const { return hasRun_; }

    /// Embedding matrix, one row of `dimensions` values per node.
    const std::vector<std::vector<double>>& features() const;

    /// Cosine similarity between the embeddings of two nodes.
    double cosineSimilarity(node u, node v) const;

    /// The sampled walk corpus (exposed for tests).
    const std::vector<std::vector<node>>& walks() const { return walks_; }

private:
    void sampleWalks();
    void train();

    const Graph& g_;
    Parameters params_;
    std::vector<std::vector<node>> walks_;
    std::vector<std::vector<double>> emb_;
    bool hasRun_ = false;
};

} // namespace rinkit
