#pragma once

#include <memory>
#include <string>

#include "src/md/trajectory.hpp"
#include "src/viz/widget.hpp"

namespace rinkit {

/// Top-level facade: the one-stop entry point a downstream user adopts.
///
/// Bundles trajectory acquisition (synthetic catalogue or caller-provided),
/// the interactive widget session, and the domain analyses the paper
/// discusses (how well communities track secondary structure, how the
/// cutoff changes topology). The examples/ directory drives everything
/// through this class.
/// RinExplorer configuration. Namespace-scope (not nested) so its defaults
/// can serve the facade's single defaulted-Options entry points.
struct RinExplorerOptions {
    count frames = 30;
    count unfoldingEvents = 0;
    double thermalSigma = 0.25;
    viz::RinWidget::Options widget;
    std::uint64_t seed = 1;
};

class RinExplorer {
public:
    using Options = RinExplorerOptions;

    /// Creates an explorer for a named synthetic protein from the
    /// catalogue: "alpha3D", "chignolin", "villin", "ww-domain",
    /// "lambda-repressor", or "bundle:<residues>" for an arbitrary-size
    /// helix bundle. Throws std::invalid_argument for unknown names.
    static RinExplorer forProtein(const std::string& name, Options options = {});

    /// Wraps an existing trajectory (e.g. read from XYZ).
    static RinExplorer forTrajectory(md::Trajectory traj,
                                     viz::RinWidget::Options widgetOptions = {});

    const md::Trajectory& trajectory() const { return *traj_; }
    viz::RinWidget& widget() { return *widget_; }
    const viz::RinWidget& widget() const { return *widget_; }

    /// NMI between the widget's current-network PLM communities and the
    /// protein's secondary-structure elements — quantifies the paper's
    /// Fig. 3 observation that "secondary structure elements are
    /// reflected in the community structure of the RIN".
    double communityStructureAgreement() const;

    /// Number of hub residues (degree >= threshold) in the current RIN —
    /// the topology feature the paper notes is drastically cutoff-dependent.
    count hubCount(count degreeThreshold = 10) const;

    /// Writes the current frame's conformation as PDB.
    void exportPdb(const std::string& path) const;

    /// Writes the widget's current figure JSON.
    void exportFigure(const std::string& path) const;

private:
    RinExplorer(std::unique_ptr<md::Trajectory> traj,
                viz::RinWidget::Options widgetOptions);

    std::unique_ptr<md::Trajectory> traj_;
    std::unique_ptr<viz::RinWidget> widget_;
};

} // namespace rinkit
