#include "src/core/rin_explorer.hpp"

#include <fstream>
#include <stdexcept>

#include "src/community/plm.hpp"
#include "src/community/similarity.hpp"
#include "src/graph/graph_tools.hpp"
#include "src/md/md_io.hpp"
#include "src/md/synthetic.hpp"

namespace rinkit {

RinExplorer::RinExplorer(std::unique_ptr<md::Trajectory> traj,
                         viz::RinWidget::Options widgetOptions)
    : traj_(std::move(traj)),
      widget_(std::make_unique<viz::RinWidget>(*traj_, widgetOptions)) {}

RinExplorer RinExplorer::forProtein(const std::string& name, Options options) {
    md::Protein protein;
    if (name == "alpha3D") protein = md::alpha3D();
    else if (name == "chignolin") protein = md::chignolin();
    else if (name == "villin") protein = md::villinHeadpiece();
    else if (name == "ww-domain") protein = md::wwDomain();
    else if (name == "lambda-repressor") protein = md::lambdaRepressor();
    else if (name.rfind("bundle:", 0) == 0) {
        const count residues = std::stoull(name.substr(7));
        protein = md::helixBundle(residues);
    } else {
        throw std::invalid_argument("RinExplorer: unknown protein '" + name + "'");
    }

    md::TrajectoryGenerator::Parameters genParams;
    genParams.frames = options.frames;
    genParams.unfoldingEvents = options.unfoldingEvents;
    genParams.thermalSigma = options.thermalSigma;
    genParams.seed = options.seed;
    auto traj = std::make_unique<md::Trajectory>(
        md::TrajectoryGenerator(genParams).generate(protein));
    return RinExplorer(std::move(traj), options.widget);
}

RinExplorer RinExplorer::forTrajectory(md::Trajectory traj,
                                       viz::RinWidget::Options widgetOptions) {
    return RinExplorer(std::make_unique<md::Trajectory>(std::move(traj)), widgetOptions);
}

double RinExplorer::communityStructureAgreement() const {
    const Graph& g = widget_->graph();
    Plm plm(g, true);
    plm.run();
    const auto ssLabels = traj_->topology().secondaryStructureLabels();
    return nmi(plm.getPartition(), Partition(ssLabels));
}

count RinExplorer::hubCount(count degreeThreshold) const {
    return graphtools::hubCount(widget_->graph(), degreeThreshold);
}

void RinExplorer::exportPdb(const std::string& path) const {
    md::io::writePdbFile(traj_->proteinAtFrame(widget_->frame()), path);
}

void RinExplorer::exportFigure(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << widget_->figureJson();
}

} // namespace rinkit
