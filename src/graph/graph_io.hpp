#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/graph.hpp"

/// Graph readers/writers for the two formats the paper's toolchain touches:
/// METIS (NetworKit's default exchange format, used for graphs like
/// "karate.graph" in the paper's Listing 1) and plain edge lists.
namespace rinkit::io {

/// Reads a graph in METIS format from a stream.
/// Supported header flags: 0/none (unweighted), 1 (edge weights).
Graph readMetis(std::istream& in);

/// Reads a METIS file from disk; throws std::runtime_error if unreadable.
Graph readMetisFile(const std::string& path);

/// Writes METIS format (with weights iff the graph is weighted).
void writeMetis(const Graph& g, std::ostream& out);
void writeMetisFile(const Graph& g, const std::string& path);

/// Reads a whitespace-separated edge list ("u v [w]" per line, 0-based ids,
/// '#' comments). The node count is max id + 1 unless @p n overrides it.
Graph readEdgeList(std::istream& in, count n = 0, bool weighted = false);
Graph readEdgeListFile(const std::string& path, count n = 0, bool weighted = false);

/// Writes "u v [w]" per edge.
void writeEdgeList(const Graph& g, std::ostream& out);
void writeEdgeListFile(const Graph& g, const std::string& path);

} // namespace rinkit::io
