#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/types.hpp"

namespace rinkit {

/// Immutable CSR (compressed sparse row) snapshot of a Graph.
///
/// The mutable Graph keeps one std::vector per node — ideal for the
/// widget's continuous edge diffs, but every traversal kernel pays a
/// pointer chase per node and the rows are scattered across the heap. The
/// measure engine therefore runs on this flat snapshot instead: offsets
/// (n + 1), targets (2m) and, on weighted graphs, weights (2m) live in
/// three contiguous arrays, so BFS frontiers, Brandes accumulation and the
/// local-move loops stream neighbors with sequential loads.
///
/// A snapshot remembers the Graph::version() it was built from; callers
/// (CsrSnapshot, the centrality/community bases, viz::MeasureEngine) reuse
/// it for as long as the version is unchanged and rebuild in O(n + m)
/// otherwise. Within one version the build is deterministic — adjacency
/// rows are copied in node order, each sorted ascending — so two snapshots
/// of the same graph state are byte-identical (asserted by the property
/// suite).
class CsrView {
public:
    CsrView() = default;

    /// Snapshots @p g (including its current version stamp).
    static CsrView fromGraph(const Graph& g);

    /// Builds a weighted CSR directly from a unique undirected edge list
    /// (u < v, lexicographically sorted) over @p n nodes — the contraction
    /// path of the Louvain-family coarsening, which never materializes a
    /// mutable Graph. The version stamp is 0: coarse graphs are transient.
    struct Edge {
        node u, v;
        edgeweight w;
    };
    static CsrView fromSortedEdges(count n, const std::vector<Edge>& edges);

    count numberOfNodes() const { return n_; }
    count numberOfEdges() const { return m_; }
    bool isWeighted() const { return weighted_; }
    std::uint64_t version() const { return version_; }

    count degree(node u) const { return offsets_[u + 1] - offsets_[u]; }

    std::span<const node> neighbors(node u) const {
        return {targets_.data() + offsets_[u], degree(u)};
    }

    /// Weights parallel to neighbors(u); empty on unweighted snapshots.
    std::span<const edgeweight> arcWeights(node u) const {
        if (!weighted_) return {};
        return {weights_.data() + offsets_[u], degree(u)};
    }

    /// Sum of incident edge weights (degree on unweighted graphs),
    /// precomputed at build time — O(1), unlike Graph::weightedDegree.
    double weightedDegree(node u) const { return wdeg_[u]; }

    double totalEdgeWeight() const { return totalWeight_; }

    count maxDegree() const { return maxDegree_; }

    /// f(v) for every neighbor v of u.
    template <typename F>
    void forNeighborsOf(node u, F&& f) const {
        const count end = offsets_[u + 1];
        for (count i = offsets_[u]; i < end; ++i) f(targets_[i]);
    }

    /// f(v, w) for every neighbor v of u with edge weight w.
    template <typename F>
    void forWeightedNeighborsOf(node u, F&& f) const {
        const count end = offsets_[u + 1];
        if (weighted_) {
            for (count i = offsets_[u]; i < end; ++i) f(targets_[i], weights_[i]);
        } else {
            for (count i = offsets_[u]; i < end; ++i) f(targets_[i], 1.0);
        }
    }

    /// f(u, v, w) for every undirected edge, visited once with u < v.
    template <typename F>
    void forWeightedEdges(F&& f) const {
        for (node u = 0; u < n_; ++u) {
            const count end = offsets_[u + 1];
            for (count i = offsets_[u]; i < end; ++i) {
                if (u < targets_[i]) f(u, targets_[i], weighted_ ? weights_[i] : 1.0);
            }
        }
    }

    // Raw arrays for the hot kernels.
    const count* offsets() const { return offsets_.data(); }
    const node* targets() const { return targets_.data(); }
    const edgeweight* weights() const { return weighted_ ? weights_.data() : nullptr; }

    /// Exact structural equality of the flat arrays (the storm property
    /// test compares incrementally maintained snapshots to fresh builds).
    bool operator==(const CsrView& other) const {
        return n_ == other.n_ && m_ == other.m_ && weighted_ == other.weighted_ &&
               offsets_ == other.offsets_ && targets_ == other.targets_ &&
               weights_ == other.weights_;
    }

private:
    std::vector<count> offsets_;      // n + 1
    std::vector<node> targets_;       // 2m
    std::vector<edgeweight> weights_; // 2m iff weighted
    std::vector<double> wdeg_;        // n
    count n_ = 0;
    count m_ = 0;
    count maxDegree_ = 0;
    double totalWeight_ = 0.0;
    bool weighted_ = false;
    std::uint64_t version_ = 0;
};

/// Version-keyed cache of one CsrView: the lazy "materialize once, reuse
/// until the graph mutates" handle a widget session holds.
class CsrSnapshot {
public:
    /// The snapshot of @p g, rebuilt only if @p g or its version changed
    /// since the last call.
    const CsrView& get(const Graph& g) {
        if (g_ != &g || view_.version() != g.version() || !valid_) {
            view_ = CsrView::fromGraph(g);
            g_ = &g;
            valid_ = true;
        }
        return view_;
    }

    void reset() {
        g_ = nullptr;
        valid_ = false;
        view_ = CsrView();
    }

private:
    const Graph* g_ = nullptr;
    bool valid_ = false;
    CsrView view_;
};

} // namespace rinkit
