#include "src/graph/graph.hpp"

namespace rinkit {

node Graph::addNode() {
    adj_.emplace_back();
    if (weighted_) wts_.emplace_back();
    ++version_;
    return static_cast<node>(adj_.size() - 1);
}

void Graph::addNodes(count k) {
    if (k == 0) return;
    adj_.resize(adj_.size() + k);
    if (weighted_) wts_.resize(adj_.size());
    ++version_;
}

bool Graph::insertArc(node u, node v, edgeweight w) {
    auto& nb = adj_[u];
    const auto it = std::lower_bound(nb.begin(), nb.end(), v);
    if (it != nb.end() && *it == v) return false;
    const auto pos = static_cast<size_t>(it - nb.begin());
    nb.insert(it, v);
    if (weighted_) wts_[u].insert(wts_[u].begin() + static_cast<long>(pos), w);
    return true;
}

bool Graph::eraseArc(node u, node v) {
    auto& nb = adj_[u];
    const auto it = std::lower_bound(nb.begin(), nb.end(), v);
    if (it == nb.end() || *it != v) return false;
    const auto pos = static_cast<size_t>(it - nb.begin());
    nb.erase(it);
    if (weighted_) wts_[u].erase(wts_[u].begin() + static_cast<long>(pos));
    return true;
}

bool Graph::addEdge(node u, node v, edgeweight w) {
    checkNode(u);
    checkNode(v);
    if (u == v) throw std::invalid_argument("Graph: self-loops are not supported");
    if (!insertArc(u, v, w)) return false;
    insertArc(v, u, w);
    ++m_;
    ++version_;
    return true;
}

bool Graph::removeEdge(node u, node v) {
    checkNode(u);
    checkNode(v);
    if (!eraseArc(u, v)) return false;
    eraseArc(v, u);
    --m_;
    ++version_;
    return true;
}

edgeweight Graph::weight(node u, node v) const {
    checkNode(u);
    checkNode(v);
    const auto& nb = adj_[u];
    const auto it = std::lower_bound(nb.begin(), nb.end(), v);
    if (it == nb.end() || *it != v) {
        throw std::invalid_argument("Graph: weight() of a non-existing edge");
    }
    if (!weighted_) return 1.0;
    return wts_[u][static_cast<size_t>(it - nb.begin())];
}

void Graph::setWeight(node u, node v, edgeweight w) {
    if (!weighted_) throw std::logic_error("Graph: setWeight on unweighted graph");
    checkNode(u);
    checkNode(v);
    auto update = [&](node a, node b) {
        auto& nb = adj_[a];
        const auto it = std::lower_bound(nb.begin(), nb.end(), b);
        if (it == nb.end() || *it != b) {
            throw std::invalid_argument("Graph: setWeight on a non-existing edge");
        }
        wts_[a][static_cast<size_t>(it - nb.begin())] = w;
    };
    update(u, v);
    update(v, u);
    ++version_;
}

void Graph::removeAllEdges() {
    if (m_ == 0) return;
    for (auto& nb : adj_) nb.clear();
    for (auto& ws : wts_) ws.clear();
    m_ = 0;
    ++version_;
}

edgeweight Graph::totalEdgeWeight() const {
    if (!weighted_) return static_cast<edgeweight>(m_);
    double total = 0.0;
    forWeightedEdges([&](node, node, edgeweight w) { total += w; });
    return total;
}

edgeweight Graph::weightedDegree(node u) const {
    checkNode(u);
    if (!weighted_) return static_cast<edgeweight>(adj_[u].size());
    double total = 0.0;
    for (edgeweight w : wts_[u]) total += w;
    return total;
}

std::vector<std::pair<node, node>> Graph::edges() const {
    std::vector<std::pair<node, node>> out;
    out.reserve(m_);
    forEdges([&](node u, node v) { out.emplace_back(u, v); });
    return out;
}

bool Graph::operator==(const Graph& other) const {
    if (numberOfNodes() != other.numberOfNodes()) return false;
    if (numberOfEdges() != other.numberOfEdges()) return false;
    if (adj_ != other.adj_) return false;
    if (weighted_ && other.weighted_ && wts_ != other.wts_) return false;
    return true;
}

} // namespace rinkit
