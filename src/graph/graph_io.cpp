#include "src/graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "src/graph/graph_builder.hpp"

namespace rinkit::io {

namespace {

// Skips METIS comment lines (starting with '%').
bool nextContentLine(std::istream& in, std::string& line) {
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%') return true;
    }
    return false;
}

} // namespace

Graph readMetis(std::istream& in) {
    std::string line;
    if (!nextContentLine(in, line)) {
        throw std::runtime_error("METIS: missing header line");
    }
    std::istringstream header(line);
    count n = 0, m = 0;
    int fmt = 0;
    header >> n >> m;
    if (header.fail()) throw std::runtime_error("METIS: malformed header");
    header >> fmt; // optional; absent -> 0
    const bool weighted = (fmt == 1 || fmt == 11);
    if (fmt != 0 && fmt != 1) {
        throw std::runtime_error("METIS: unsupported format flag " + std::to_string(fmt));
    }

    Graph g(n, weighted);
    for (node u = 0; u < n; ++u) {
        if (!nextContentLine(in, line)) {
            throw std::runtime_error("METIS: premature end of file at node " +
                                     std::to_string(u));
        }
        std::istringstream ls(line);
        count v1 = 0; // METIS is 1-based
        while (ls >> v1) {
            if (v1 == 0 || v1 > n) throw std::runtime_error("METIS: neighbor id out of range");
            edgeweight w = 1.0;
            if (weighted && !(ls >> w)) {
                throw std::runtime_error("METIS: missing edge weight");
            }
            const node v = static_cast<node>(v1 - 1);
            if (u < v) g.addEdge(u, v, w); // each edge appears twice; add once
        }
    }
    if (g.numberOfEdges() != m) {
        throw std::runtime_error("METIS: header edge count " + std::to_string(m) +
                                 " does not match body (" +
                                 std::to_string(g.numberOfEdges()) + ")");
    }
    return g;
}

Graph readMetisFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    return readMetis(in);
}

void writeMetis(const Graph& g, std::ostream& out) {
    out << g.numberOfNodes() << ' ' << g.numberOfEdges();
    if (g.isWeighted()) out << " 1";
    out << '\n';
    g.forNodes([&](node u) {
        bool first = true;
        g.forWeightedNeighborsOf(u, [&](node, node v, edgeweight w) {
            if (!first) out << ' ';
            first = false;
            out << (v + 1);
            if (g.isWeighted()) out << ' ' << w;
        });
        out << '\n';
    });
}

void writeMetisFile(const Graph& g, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    writeMetis(g, out);
}

Graph readEdgeList(std::istream& in, count n, bool weighted) {
    std::vector<std::tuple<node, node, edgeweight>> edges;
    count maxId = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        node u = 0, v = 0;
        if (!(ls >> u >> v)) throw std::runtime_error("edge list: malformed line: " + line);
        edgeweight w = 1.0;
        if (weighted) ls >> w;
        edges.emplace_back(u, v, w);
        maxId = std::max<count>(maxId, std::max(u, v));
    }
    const count nodes = n > 0 ? n : (edges.empty() ? 0 : maxId + 1);
    GraphBuilder builder(nodes, weighted);
    for (auto [u, v, w] : edges) builder.addEdge(u, v, w);
    return builder.build();
}

Graph readEdgeListFile(const std::string& path, count n, bool weighted) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    return readEdgeList(in, n, weighted);
}

void writeEdgeList(const Graph& g, std::ostream& out) {
    g.forWeightedEdges([&](node u, node v, edgeweight w) {
        out << u << ' ' << v;
        if (g.isWeighted()) out << ' ' << w;
        out << '\n';
    });
}

void writeEdgeListFile(const Graph& g, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    writeEdgeList(g, out);
}

} // namespace rinkit::io
