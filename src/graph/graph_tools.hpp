#pragma once

#include <vector>

#include "src/graph/graph.hpp"

namespace rinkit::graphtools {

/// 2m / (n (n - 1)): fraction of possible edges present.
double density(const Graph& g);

/// Largest node degree (0 on the empty graph).
count maxDegree(const Graph& g);

/// Mean node degree (0 on the empty graph).
double averageDegree(const Graph& g);

/// Degree of every node.
std::vector<count> degreeSequence(const Graph& g);

/// Histogram h where h[d] = number of nodes with degree d.
std::vector<count> degreeDistribution(const Graph& g);

/// Number of nodes with degree >= @p threshold ("hubs" in the RIN
/// literature; the cutoff choice drastically changes this, cf. Viloria
/// et al. 2017).
count hubCount(const Graph& g, count threshold);

/// Node-induced subgraph. @p keep lists the nodes to retain; the result's
/// node i corresponds to keep[i]. Duplicate entries throw.
Graph subgraph(const Graph& g, const std::vector<node>& keep);

/// Graph with every edge of @p g plus every edge of @p h (same node count
/// required); weights from @p h win on conflicts.
Graph unionGraph(const Graph& g, const Graph& h);

/// Number of edges present in exactly one of the two graphs (topological
/// distance between two RIN snapshots).
count symmetricDifferenceSize(const Graph& g, const Graph& h);

/// Global clustering coefficient: 3 * triangles / open triads.
double clusteringCoefficient(const Graph& g);

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges), in [-1, 1]. RINs are typically weakly assortative; hubs
/// connecting to hubs changes markedly with the cutoff. Returns 0 on
/// graphs where the correlation is undefined (no edges / constant degree).
double degreeAssortativity(const Graph& g);

/// Exact triangle count (sorted-adjacency intersection).
count triangleCount(const Graph& g);

} // namespace rinkit::graphtools
