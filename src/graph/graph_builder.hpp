#pragma once

#include <vector>

#include "src/graph/graph.hpp"

namespace rinkit {

/// Bulk graph construction.
///
/// The RIN pipeline rebuilds graphs for every (frame, cutoff) pair the user
/// sweeps over; inserting edges one by one into sorted adjacency lists would
/// be O(m * deg). The builder collects an unordered edge list and produces
/// the final Graph in O(m log deg_max) with exactly one allocation per
/// adjacency list. Duplicate edges and self-loops are dropped (the last
/// weight wins for duplicates).
class GraphBuilder {
public:
    explicit GraphBuilder(count n, bool weighted = false)
        : n_(n), weighted_(weighted) {}

    /// Number of nodes of the graph under construction.
    count numberOfNodes() const { return n_; }

    /// Queues edge {u, v}; order of calls is irrelevant.
    void addEdge(node u, node v, edgeweight w = 1.0) {
        if (u >= n_ || v >= n_) throw std::out_of_range("GraphBuilder: invalid node id");
        if (u == v) return;
        us_.push_back(u);
        vs_.push_back(v);
        if (weighted_) ws_.push_back(w);
    }

    /// Number of queued (not yet deduplicated) edges.
    count queuedEdges() const { return us_.size(); }

    /// Builds the Graph; the builder may be reused afterwards (it is reset).
    Graph build();

private:
    count n_;
    bool weighted_;
    std::vector<node> us_, vs_;
    std::vector<edgeweight> ws_;
};

} // namespace rinkit
