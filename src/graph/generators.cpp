#include "src/graph/generators.hpp"

#include <cmath>
#include <stdexcept>

#include "src/graph/graph_builder.hpp"
#include "src/support/random.hpp"

namespace rinkit::generators {

Graph erdosRenyi(count n, double p, std::uint64_t seed) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdosRenyi: p out of [0,1]");
    Graph g(n);
    if (p <= 0.0 || n < 2) return g;
    Rng rng(seed);
    if (p >= 1.0) {
        for (node u = 0; u < n; ++u) {
            for (node v = u + 1; v < n; ++v) g.addEdge(u, v);
        }
        return g;
    }
    // Walk the strictly-upper-triangular pair sequence with geometric jumps.
    const double logq = std::log(1.0 - p);
    std::uint64_t idx = 0;
    const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    while (true) {
        const double r = std::max(rng.real01(), 1e-300);
        idx += 1 + static_cast<std::uint64_t>(std::floor(std::log(r) / logq));
        if (idx > total) break;
        // Map linear index (1-based) to pair (u, v), u < v.
        const std::uint64_t k = idx - 1;
        const double nd = static_cast<double>(n);
        auto u = static_cast<node>(nd - 0.5 -
                                   std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * static_cast<double>(k)));
        // Guard against floating-point rounding at block boundaries.
        auto rowStart = [&](node uu) {
            return static_cast<std::uint64_t>(uu) * (2 * n - uu - 1) / 2;
        };
        while (u > 0 && rowStart(u) > k) --u;
        while (rowStart(u + 1) <= k) ++u;
        const node v = static_cast<node>(u + 1 + (k - rowStart(u)));
        g.addEdge(u, v);
    }
    return g;
}

Graph barabasiAlbert(count n, count attached, std::uint64_t seed) {
    if (attached == 0) throw std::invalid_argument("barabasiAlbert: attached must be > 0");
    if (n < attached + 1) throw std::invalid_argument("barabasiAlbert: n too small");
    Rng rng(seed);
    Graph g(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    std::vector<node> endpoints;
    endpoints.reserve(2 * n * attached);
    // Seed clique over the first (attached + 1) nodes.
    for (node u = 0; u <= attached; ++u) {
        for (node v = u + 1; v <= attached; ++v) {
            g.addEdge(u, v);
            endpoints.push_back(u);
            endpoints.push_back(v);
        }
    }
    for (node u = static_cast<node>(attached + 1); u < n; ++u) {
        count added = 0;
        while (added < attached) {
            const node v = endpoints[rng.pick(endpoints.size())];
            if (v != u && g.addEdge(u, v)) {
                endpoints.push_back(u);
                endpoints.push_back(v);
                ++added;
            }
        }
    }
    return g;
}

Graph randomGeometric3D(count n, double radius, std::uint64_t seed,
                        std::vector<Point3>* outPositions) {
    if (radius <= 0.0) throw std::invalid_argument("randomGeometric3D: radius must be > 0");
    Rng rng(seed);
    std::vector<Point3> pts(n);
    for (auto& p : pts) p = {rng.real01(), rng.real01(), rng.real01()};

    // Uniform grid with cell size >= radius: candidates live in the 27
    // surrounding cells only.
    const count cells = std::max<count>(1, static_cast<count>(1.0 / radius));
    const double cell = 1.0 / static_cast<double>(cells);
    auto cellOf = [&](double x) {
        auto c = static_cast<long>(x / cell);
        return std::min<long>(std::max<long>(c, 0), static_cast<long>(cells) - 1);
    };
    std::vector<std::vector<node>> grid(cells * cells * cells);
    auto cellIndex = [&](long cx, long cy, long cz) {
        return static_cast<size_t>((cx * static_cast<long>(cells) + cy) *
                                       static_cast<long>(cells) + cz);
    };
    for (node u = 0; u < n; ++u) {
        grid[cellIndex(cellOf(pts[u].x), cellOf(pts[u].y), cellOf(pts[u].z))].push_back(u);
    }

    GraphBuilder builder(n);
    const double r2 = radius * radius;
    for (node u = 0; u < n; ++u) {
        const long cx = cellOf(pts[u].x), cy = cellOf(pts[u].y), cz = cellOf(pts[u].z);
        for (long dx = -1; dx <= 1; ++dx) {
            for (long dy = -1; dy <= 1; ++dy) {
                for (long dz = -1; dz <= 1; ++dz) {
                    const long nx = cx + dx, ny = cy + dy, nz = cz + dz;
                    if (nx < 0 || ny < 0 || nz < 0 || nx >= static_cast<long>(cells) ||
                        ny >= static_cast<long>(cells) || nz >= static_cast<long>(cells)) {
                        continue;
                    }
                    for (node v : grid[cellIndex(nx, ny, nz)]) {
                        if (v > u && pts[u].squaredDistance(pts[v]) <= r2) {
                            builder.addEdge(u, v);
                        }
                    }
                }
            }
        }
    }
    if (outPositions) *outPositions = std::move(pts);
    return builder.build();
}

Graph wattsStrogatz(count n, count k, double beta, std::uint64_t seed) {
    if (k == 0 || 2 * k >= n) throw std::invalid_argument("wattsStrogatz: need 0 < 2k < n");
    Rng rng(seed);
    Graph g(n);
    for (node u = 0; u < n; ++u) {
        for (count j = 1; j <= k; ++j) {
            node v = static_cast<node>((u + j) % n);
            if (rng.chance(beta)) {
                // Rewire to a uniform random non-neighbor.
                for (int attempts = 0; attempts < 64; ++attempts) {
                    const node w = static_cast<node>(rng.pick(n));
                    if (w != u && !g.hasEdge(u, w)) {
                        v = w;
                        break;
                    }
                }
            }
            g.addEdge(u, v);
        }
    }
    return g;
}

Graph grid3D(count dimX, count dimY, count dimZ) {
    const count n = dimX * dimY * dimZ;
    Graph g(n);
    auto id = [&](count x, count y, count z) {
        return static_cast<node>((x * dimY + y) * dimZ + z);
    };
    for (count x = 0; x < dimX; ++x) {
        for (count y = 0; y < dimY; ++y) {
            for (count z = 0; z < dimZ; ++z) {
                if (x + 1 < dimX) g.addEdge(id(x, y, z), id(x + 1, y, z));
                if (y + 1 < dimY) g.addEdge(id(x, y, z), id(x, y + 1, z));
                if (z + 1 < dimZ) g.addEdge(id(x, y, z), id(x, y, z + 1));
            }
        }
    }
    return g;
}

Graph plantedPartition(count communities, count blockSize, double pIn, double pOut,
                       std::uint64_t seed, std::vector<index>* outGroundTruth) {
    const count n = communities * blockSize;
    Rng rng(seed);
    GraphBuilder builder(n);
    for (node u = 0; u < n; ++u) {
        for (node v = u + 1; v < n; ++v) {
            const bool sameBlock = (u / blockSize) == (v / blockSize);
            if (rng.chance(sameBlock ? pIn : pOut)) builder.addEdge(u, v);
        }
    }
    if (outGroundTruth) {
        outGroundTruth->resize(n);
        for (node u = 0; u < n; ++u) (*outGroundTruth)[u] = static_cast<index>(u / blockSize);
    }
    return builder.build();
}

Graph karateClub() {
    // Zachary (1977); 0-based edge list.
    static const std::pair<node, node> edges[] = {
        {0,1},{0,2},{0,3},{0,4},{0,5},{0,6},{0,7},{0,8},{0,10},{0,11},{0,12},{0,13},
        {0,17},{0,19},{0,21},{0,31},{1,2},{1,3},{1,7},{1,13},{1,17},{1,19},{1,21},
        {1,30},{2,3},{2,7},{2,8},{2,9},{2,13},{2,27},{2,28},{2,32},{3,7},{3,12},
        {3,13},{4,6},{4,10},{5,6},{5,10},{5,16},{6,16},{8,30},{8,32},{8,33},{9,33},
        {13,33},{14,32},{14,33},{15,32},{15,33},{18,32},{18,33},{19,33},{20,32},
        {20,33},{22,32},{22,33},{23,25},{23,27},{23,29},{23,32},{23,33},{24,25},
        {24,27},{24,31},{25,31},{26,29},{26,33},{27,33},{28,31},{28,33},{29,32},
        {29,33},{30,32},{30,33},{31,32},{31,33},{32,33}};
    Graph g(34);
    for (auto [u, v] : edges) g.addEdge(u, v);
    return g;
}

} // namespace rinkit::generators
