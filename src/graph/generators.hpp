#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/point3.hpp"

/// Synthetic graph generators.
///
/// Used by tests (known-structure graphs), by the Fig. 4 scaling bench
/// (plotlybridge drew generated graphs up to 50k nodes), and by the
/// community-detection ablations (planted partitions with ground truth).
namespace rinkit::generators {

/// Erdős–Rényi G(n, p) via geometric edge skipping — O(n + m) expected.
Graph erdosRenyi(count n, double p, std::uint64_t seed = 1);

/// Barabási–Albert preferential attachment; each new node attaches to
/// @p attached existing nodes. Produces the hub-dominated degree
/// distribution typical of the demo graphs in Fig. 4.
Graph barabasiAlbert(count n, count attached, std::uint64_t seed = 1);

/// Random geometric graph in the unit cube: n points, edge iff distance
/// <= radius. Structurally the closest generator to a RIN (it IS a contact
/// graph), so it is the default workload for layout/scene benches.
/// If @p outPositions is non-null the sampled points are returned.
Graph randomGeometric3D(count n, double radius, std::uint64_t seed = 1,
                        std::vector<Point3>* outPositions = nullptr);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta.
Graph wattsStrogatz(count n, count k, double beta, std::uint64_t seed = 1);

/// 3D grid graph (dimX * dimY * dimZ nodes, 6-neighborhood).
Graph grid3D(count dimX, count dimY, count dimZ);

/// Planted-partition model: @p communities blocks of @p blockSize nodes,
/// intra-block edge probability @p pIn, inter-block @p pOut.
/// @p outGroundTruth (optional) receives the planted community of each node.
Graph plantedPartition(count communities, count blockSize, double pIn, double pOut,
                       std::uint64_t seed = 1,
                       std::vector<index>* outGroundTruth = nullptr);

/// Zachary's karate club (34 nodes, 78 edges) — the graph from the paper's
/// Listing 1; also a fixture with known community structure.
Graph karateClub();

} // namespace rinkit::generators
