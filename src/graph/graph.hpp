#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/support/parallel.hpp"
#include "src/support/types.hpp"

namespace rinkit {

/// Undirected, optionally weighted graph with dynamic edge updates.
///
/// This is the central data structure of rinkit, modelled after the
/// NetworKit graph: nodes are dense ids [0, n), adjacency lists are kept
/// sorted so that hasEdge/removeEdge are O(log deg) and neighbor iteration
/// is cache-friendly. The RIN widget mutates graphs continuously (cut-off
/// and trajectory-frame switches add/remove edge batches), so edge updates
/// are first-class operations rather than rebuild-only.
///
/// Self-loops are rejected: a residue does not interact with itself in a
/// RIN, and their absence simplifies every algorithm invariant.
class Graph {
public:
    /// Creates a graph with @p n isolated nodes.
    explicit Graph(count n = 0, bool weighted = false)
        : adj_(n), weighted_(weighted) {
        if (weighted_) wts_.resize(n);
    }

    // -- topology queries ---------------------------------------------------

    count numberOfNodes() const { return adj_.size(); }
    count numberOfEdges() const { return m_; }
    bool isWeighted() const { return weighted_; }

    /// Monotonic structure version: bumped by every mutation that changes
    /// the graph (node/edge insertions and removals, weight updates).
    /// Snapshots and caches key on this value — see graph/csr_view.hpp and
    /// viz::MeasureEngine — so "unchanged version" implies "identical
    /// topology and weights" and stale results are invalidated without any
    /// explicit notification from the mutator.
    std::uint64_t version() const { return version_; }

    bool hasNode(node u) const { return u < adj_.size(); }

    count degree(node u) const {
        checkNode(u);
        return adj_[u].size();
    }

    bool hasEdge(node u, node v) const {
        checkNode(u);
        checkNode(v);
        const auto& nb = adj_[u];
        return std::binary_search(nb.begin(), nb.end(), v);
    }

    /// Neighbors of @p u in ascending id order.
    std::span<const node> neighbors(node u) const {
        checkNode(u);
        return {adj_[u].data(), adj_[u].size()};
    }

    /// Edge weights parallel to neighbors(u); empty span on unweighted
    /// graphs (every edge weighs 1.0 there).
    std::span<const edgeweight> neighborWeights(node u) const {
        checkNode(u);
        if (!weighted_) return {};
        return {wts_[u].data(), wts_[u].size()};
    }

    /// Weight of edge {u, v}; 1.0 on unweighted graphs; throws if absent.
    edgeweight weight(node u, node v) const;

    /// Sum of all edge weights (edge count on unweighted graphs).
    edgeweight totalEdgeWeight() const;

    /// Sum of weights of edges incident to u (degree on unweighted graphs).
    edgeweight weightedDegree(node u) const;

    // -- mutation -----------------------------------------------------------

    /// Appends one isolated node and returns its id.
    node addNode();

    /// Appends @p k isolated nodes.
    void addNodes(count k);

    /// Inserts edge {u, v}; returns false (and changes nothing) if the edge
    /// already exists. Throws on self-loops and invalid nodes.
    bool addEdge(node u, node v, edgeweight w = 1.0);

    /// Removes edge {u, v}; returns false if it was not present.
    bool removeEdge(node u, node v);

    /// Sets the weight of an existing edge (weighted graphs only).
    void setWeight(node u, node v, edgeweight w);

    /// Removes all edges, keeping the node set.
    void removeAllEdges();

    /// Reserves per-node adjacency capacity (bulk-build optimization).
    void reserveDegree(node u, count d) {
        checkNode(u);
        adj_[u].reserve(d);
        if (weighted_) wts_[u].reserve(d);
    }

    // -- iteration ----------------------------------------------------------

    /// f(u) for every node.
    template <typename F>
    void forNodes(F&& f) const {
        for (node u = 0; u < adj_.size(); ++u) f(u);
    }

    /// f(u) for every node, OpenMP-parallel.
    template <typename F>
    void parallelForNodes(F&& f) const {
        parallelFor(adj_.size(), [&](index u) { f(static_cast<node>(u)); });
    }

    /// f(u, v) for every neighbor v of u.
    template <typename F>
    void forNeighborsOf(node u, F&& f) const {
        checkNode(u);
        for (node v : adj_[u]) f(u, v);
    }

    /// f(u, v, w) for every neighbor v of u with edge weight w.
    template <typename F>
    void forWeightedNeighborsOf(node u, F&& f) const {
        checkNode(u);
        const auto& nb = adj_[u];
        for (count i = 0; i < nb.size(); ++i) {
            f(u, nb[i], weighted_ ? wts_[u][i] : 1.0);
        }
    }

    /// f(u, v) for every undirected edge, visited once with u < v.
    template <typename F>
    void forEdges(F&& f) const {
        for (node u = 0; u < adj_.size(); ++u) {
            for (node v : adj_[u]) {
                if (u < v) f(u, v);
            }
        }
    }

    /// f(u, v, w) for every undirected edge (u < v) with its weight.
    template <typename F>
    void forWeightedEdges(F&& f) const {
        for (node u = 0; u < adj_.size(); ++u) {
            const auto& nb = adj_[u];
            for (count i = 0; i < nb.size(); ++i) {
                if (u < nb[i]) f(u, nb[i], weighted_ ? wts_[u][i] : 1.0);
            }
        }
    }

    /// All edges as a (u, v) list with u < v, in lexicographic order.
    std::vector<std::pair<node, node>> edges() const;

    /// Structural equality (same node count, same edge set and weights).
    bool operator==(const Graph& other) const;

private:
    void checkNode(node u) const {
        if (u >= adj_.size()) throw std::out_of_range("Graph: invalid node id");
    }

    // Inserts v into u's sorted adjacency; returns false if already present.
    bool insertArc(node u, node v, edgeweight w);
    bool eraseArc(node u, node v);

    std::vector<std::vector<node>> adj_;
    std::vector<std::vector<edgeweight>> wts_; // parallel to adj_ iff weighted_
    count m_ = 0;
    bool weighted_ = false;
    std::uint64_t version_ = 0;
};

} // namespace rinkit
