#include "src/graph/graph_builder.hpp"

#include <numeric>

#include "src/support/parallel.hpp"

namespace rinkit {

Graph GraphBuilder::build() {
    Graph g(n_, weighted_);

    // Count degrees first so each adjacency list is allocated exactly once.
    std::vector<count> deg(n_, 0);
    for (count i = 0; i < us_.size(); ++i) {
        ++deg[us_[i]];
        ++deg[vs_[i]];
    }
    for (node u = 0; u < n_; ++u) {
        if (deg[u] > 0) g.reserveDegree(u, deg[u]);
    }
    for (count i = 0; i < us_.size(); ++i) {
        const edgeweight w = weighted_ ? ws_[i] : 1.0;
        if (!g.addEdge(us_[i], vs_[i], w)) {
            if (weighted_) g.setWeight(us_[i], vs_[i], w); // duplicate: last weight wins
        }
    }

    us_.clear();
    vs_.clear();
    ws_.clear();
    return g;
}

} // namespace rinkit
