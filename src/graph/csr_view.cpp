#include "src/graph/csr_view.hpp"

#include <algorithm>
#include <cstring>

namespace rinkit {

CsrView CsrView::fromGraph(const Graph& g) {
    CsrView v;
    v.n_ = g.numberOfNodes();
    v.m_ = g.numberOfEdges();
    v.weighted_ = g.isWeighted();
    v.version_ = g.version();

    v.offsets_.resize(v.n_ + 1);
    v.offsets_[0] = 0;
    for (node u = 0; u < v.n_; ++u) {
        const count d = g.degree(u);
        v.offsets_[u + 1] = v.offsets_[u] + d;
        v.maxDegree_ = std::max(v.maxDegree_, d);
    }

    v.targets_.resize(v.offsets_[v.n_]);
    if (v.weighted_) v.weights_.resize(v.offsets_[v.n_]);
    v.wdeg_.resize(v.n_);
    for (node u = 0; u < v.n_; ++u) {
        const auto nb = g.neighbors(u);
        if (!nb.empty()) {
            std::memcpy(v.targets_.data() + v.offsets_[u], nb.data(),
                        nb.size() * sizeof(node));
        }
        if (v.weighted_) {
            const auto ws = g.neighborWeights(u);
            if (!ws.empty()) {
                std::memcpy(v.weights_.data() + v.offsets_[u], ws.data(),
                            ws.size() * sizeof(edgeweight));
            }
            double wd = 0.0;
            for (edgeweight w : ws) wd += w;
            v.wdeg_[u] = wd;
        } else {
            v.wdeg_[u] = static_cast<double>(nb.size());
        }
        v.totalWeight_ += v.wdeg_[u];
    }
    v.totalWeight_ /= 2.0;
    return v;
}

CsrView CsrView::fromSortedEdges(count n, const std::vector<Edge>& edges) {
    CsrView v;
    v.n_ = n;
    v.m_ = edges.size();
    v.weighted_ = true;

    v.offsets_.assign(n + 1, 0);
    for (const auto& e : edges) {
        ++v.offsets_[e.u + 1];
        ++v.offsets_[e.v + 1];
    }
    for (node u = 0; u < n; ++u) {
        v.maxDegree_ = std::max(v.maxDegree_, v.offsets_[u + 1]);
        v.offsets_[u + 1] += v.offsets_[u];
    }

    v.targets_.resize(v.offsets_[n]);
    v.weights_.resize(v.offsets_[n]);
    v.wdeg_.assign(n, 0.0);
    std::vector<count> cursor(v.offsets_.begin(), v.offsets_.end() - 1);
    // The input is sorted by (u, v) with u < v: filling the forward arc at
    // cursor[u] keeps every row sorted; backward arcs (cursor[v] gets u in
    // increasing u) are sorted for the same reason.
    for (const auto& e : edges) {
        v.targets_[cursor[e.u]] = e.v;
        v.weights_[cursor[e.u]++] = e.w;
        v.targets_[cursor[e.v]] = e.u;
        v.weights_[cursor[e.v]++] = e.w;
        v.wdeg_[e.u] += e.w;
        v.wdeg_[e.v] += e.w;
        v.totalWeight_ += e.w;
    }
    return v;
}

} // namespace rinkit
