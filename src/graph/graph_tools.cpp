#include "src/graph/graph_tools.hpp"

#include <algorithm>
#include <stdexcept>

namespace rinkit::graphtools {

double density(const Graph& g) {
    const count n = g.numberOfNodes();
    if (n < 2) return 0.0;
    return 2.0 * static_cast<double>(g.numberOfEdges()) /
           (static_cast<double>(n) * static_cast<double>(n - 1));
}

count maxDegree(const Graph& g) {
    count best = 0;
    g.forNodes([&](node u) { best = std::max(best, g.degree(u)); });
    return best;
}

double averageDegree(const Graph& g) {
    const count n = g.numberOfNodes();
    if (n == 0) return 0.0;
    return 2.0 * static_cast<double>(g.numberOfEdges()) / static_cast<double>(n);
}

std::vector<count> degreeSequence(const Graph& g) {
    std::vector<count> deg(g.numberOfNodes());
    g.parallelForNodes([&](node u) { deg[u] = g.degree(u); });
    return deg;
}

std::vector<count> degreeDistribution(const Graph& g) {
    std::vector<count> hist(maxDegree(g) + 1, 0);
    g.forNodes([&](node u) { ++hist[g.degree(u)]; });
    return hist;
}

count hubCount(const Graph& g, count threshold) {
    count hubs = 0;
    g.forNodes([&](node u) {
        if (g.degree(u) >= threshold) ++hubs;
    });
    return hubs;
}

Graph subgraph(const Graph& g, const std::vector<node>& keep) {
    std::vector<node> mapping(g.numberOfNodes(), none);
    for (count i = 0; i < keep.size(); ++i) {
        if (keep[i] >= g.numberOfNodes()) {
            throw std::out_of_range("subgraph: invalid node id");
        }
        if (mapping[keep[i]] != none) {
            throw std::invalid_argument("subgraph: duplicate node in keep list");
        }
        mapping[keep[i]] = static_cast<node>(i);
    }
    Graph sub(keep.size(), g.isWeighted());
    g.forWeightedEdges([&](node u, node v, edgeweight w) {
        if (mapping[u] != none && mapping[v] != none) {
            sub.addEdge(mapping[u], mapping[v], w);
        }
    });
    return sub;
}

Graph unionGraph(const Graph& g, const Graph& h) {
    if (g.numberOfNodes() != h.numberOfNodes()) {
        throw std::invalid_argument("unionGraph: node counts differ");
    }
    Graph out(g.numberOfNodes(), g.isWeighted() || h.isWeighted());
    g.forWeightedEdges([&](node u, node v, edgeweight w) { out.addEdge(u, v, w); });
    h.forWeightedEdges([&](node u, node v, edgeweight w) {
        if (!out.addEdge(u, v, w) && out.isWeighted()) out.setWeight(u, v, w);
    });
    return out;
}

count symmetricDifferenceSize(const Graph& g, const Graph& h) {
    if (g.numberOfNodes() != h.numberOfNodes()) {
        throw std::invalid_argument("symmetricDifferenceSize: node counts differ");
    }
    count diff = 0;
    g.forEdges([&](node u, node v) {
        if (!h.hasEdge(u, v)) ++diff;
    });
    h.forEdges([&](node u, node v) {
        if (!g.hasEdge(u, v)) ++diff;
    });
    return diff;
}

count triangleCount(const Graph& g) {
    // For every edge (u, v) with u < v, intersect N(u) and N(v) counting
    // common neighbors w > v so each triangle is found exactly once.
    count triangles = 0;
    g.forEdges([&](node u, node v) {
        const auto nu = g.neighbors(u);
        const auto nv = g.neighbors(v);
        auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
        auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
        while (iu != nu.end() && iv != nv.end()) {
            if (*iu < *iv) ++iu;
            else if (*iv < *iu) ++iv;
            else { ++triangles; ++iu; ++iv; }
        }
    });
    return triangles;
}

double degreeAssortativity(const Graph& g) {
    // Newman (2002), eq. 4: Pearson correlation of the degrees at the two
    // ends of each edge, symmetrized over edge orientation.
    const auto m = static_cast<double>(g.numberOfEdges());
    if (m == 0.0) return 0.0;
    double sumProd = 0.0, sumHalf = 0.0, sumHalfSq = 0.0;
    g.forEdges([&](node u, node v) {
        const auto du = static_cast<double>(g.degree(u));
        const auto dv = static_cast<double>(g.degree(v));
        sumProd += du * dv;
        sumHalf += 0.5 * (du + dv);
        sumHalfSq += 0.5 * (du * du + dv * dv);
    });
    const double mean = sumHalf / m;
    const double num = sumProd / m - mean * mean;
    const double den = sumHalfSq / m - mean * mean;
    if (den <= 1e-15) return 0.0; // constant endpoint degree
    return num / den;
}

double clusteringCoefficient(const Graph& g) {
    count triads = 0;
    g.forNodes([&](node u) {
        const count d = g.degree(u);
        triads += d * (d - 1) / 2;
    });
    if (triads == 0) return 0.0;
    return 3.0 * static_cast<double>(triangleCount(g)) / static_cast<double>(triads);
}

} // namespace rinkit::graphtools
