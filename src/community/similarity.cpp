#include "src/community/similarity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace rinkit {

namespace {

struct Confusion {
    std::vector<double> rowSums, colSums;
    std::unordered_map<std::uint64_t, double> cells; // (row << 32 | col) -> count
    double n = 0.0;
};

Confusion confusion(const Partition& a, const Partition& b) {
    if (a.numberOfElements() != b.numberOfElements()) {
        throw std::invalid_argument("partition similarity: element counts differ");
    }
    Partition ca = a, cb = b;
    const count ka = ca.compact();
    const count kb = cb.compact();
    Confusion c;
    c.rowSums.assign(ka, 0.0);
    c.colSums.assign(kb, 0.0);
    c.n = static_cast<double>(a.numberOfElements());
    for (node u = 0; u < a.numberOfElements(); ++u) {
        const std::uint64_t key = (static_cast<std::uint64_t>(ca[u]) << 32) | cb[u];
        c.cells[key] += 1.0;
        c.rowSums[ca[u]] += 1.0;
        c.colSums[cb[u]] += 1.0;
    }
    return c;
}

double entropy(const std::vector<double>& sums, double n) {
    double h = 0.0;
    for (double s : sums) {
        if (s > 0.0) h -= (s / n) * std::log(s / n);
    }
    return h;
}

} // namespace

double nmi(const Partition& a, const Partition& b, NmiNormalization norm) {
    const auto c = confusion(a, b);
    if (c.n == 0.0) return 1.0;

    const double ha = entropy(c.rowSums, c.n);
    const double hb = entropy(c.colSums, c.n);
    if (ha == 0.0 && hb == 0.0) return 1.0; // both trivial partitions: identical

    double mi = 0.0;
    double hJoint = 0.0;
    for (const auto& [key, cnt] : c.cells) {
        const auto row = static_cast<index>(key >> 32);
        const auto col = static_cast<index>(key & 0xFFFFFFFFu);
        const double pij = cnt / c.n;
        mi += pij * std::log(pij / ((c.rowSums[row] / c.n) * (c.colSums[col] / c.n)));
        hJoint -= pij * std::log(pij);
    }

    double denom = 0.0;
    switch (norm) {
    case NmiNormalization::Min: denom = std::min(ha, hb); break;
    case NmiNormalization::Max: denom = std::max(ha, hb); break;
    case NmiNormalization::Arithmetic: denom = 0.5 * (ha + hb); break;
    case NmiNormalization::Geometric: denom = std::sqrt(ha * hb); break;
    case NmiNormalization::Joint: denom = hJoint; break;
    }
    if (denom == 0.0) return 0.0; // one trivial, one informative partition
    return std::clamp(mi / denom, 0.0, 1.0);
}

double adjustedRandIndex(const Partition& a, const Partition& b) {
    const auto c = confusion(a, b);
    const double n = c.n;
    if (n < 2.0) return 1.0;

    auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };
    double sumCells = 0.0;
    for (const auto& [key, cnt] : c.cells) {
        (void)key;
        sumCells += choose2(cnt);
    }
    double sumRows = 0.0, sumCols = 0.0;
    for (double s : c.rowSums) sumRows += choose2(s);
    for (double s : c.colSums) sumCols += choose2(s);

    const double expected = sumRows * sumCols / choose2(n);
    const double maxIndex = 0.5 * (sumRows + sumCols);
    if (maxIndex == expected) return 1.0; // both trivial partitions
    return (sumCells - expected) / (maxIndex - expected);
}

} // namespace rinkit
