#pragma once

#include <stdexcept>
#include <vector>

#include "src/support/types.hpp"

namespace rinkit {

/// A partition of the node set [0, n) into disjoint subsets (communities).
///
/// Subset ids are arbitrary until compact() maps them onto
/// [0, numberOfSubsets()). All community-detection algorithms return
/// compacted partitions.
class Partition {
public:
    Partition() = default;

    /// Creates a partition of @p n elements, all in subset 0.
    explicit Partition(count n) : assignment_(n, 0) {}

    /// Creates a partition from an explicit assignment vector.
    explicit Partition(std::vector<index> assignment)
        : assignment_(std::move(assignment)) {}

    count numberOfElements() const { return assignment_.size(); }

    /// Puts every element into its own subset (subset id == element id).
    void allToSingletons();

    index subsetOf(node u) const {
        if (u >= assignment_.size()) throw std::out_of_range("Partition: invalid element");
        return assignment_[u];
    }

    index& operator[](node u) { return assignment_[u]; }
    index operator[](node u) const { return assignment_[u]; }

    void moveToSubset(node u, index subset) {
        if (u >= assignment_.size()) throw std::out_of_range("Partition: invalid element");
        assignment_[u] = subset;
    }

    bool inSameSubset(node u, node v) const {
        return subsetOf(u) == subsetOf(v);
    }

    /// Number of distinct subsets actually used.
    count numberOfSubsets() const;

    /// Renames subsets to [0, numberOfSubsets()) preserving the partition.
    /// Returns the number of subsets.
    count compact();

    /// Size of each subset, indexed by subset id; requires a compacted
    /// partition (ids < numberOfSubsets()).
    std::vector<count> subsetSizes() const;

    /// Members of subset @p s.
    std::vector<node> members(index s) const;

    const std::vector<index>& vector() const { return assignment_; }

    bool operator==(const Partition& other) const = default;

private:
    std::vector<index> assignment_;
};

} // namespace rinkit
